package rhnorec_test

import (
	"sync"
	"testing"

	"rhnorec"
)

func TestQuickstartShape(t *testing.T) {
	m := rhnorec.NewMemory(1 << 16)
	sys, err := rhnorec.NewRHNOrec(m, rhnorec.Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	th := sys.NewThread()
	defer th.Close()
	var acct rhnorec.Addr
	if err := th.Run(func(tx rhnorec.Tx) error {
		acct = tx.Alloc(1)
		tx.Store(acct, 100)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := th.RunReadOnly(func(tx rhnorec.Tx) error {
		if got := tx.Load(acct); got != 100 {
			t.Errorf("balance = %d, want 100", got)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if th.Stats().Commits != 2 {
		t.Errorf("Commits = %d, want 2", th.Stats().Commits)
	}
}

func TestAllConstructors(t *testing.T) {
	mk := map[string]func(m *rhnorec.Memory) (rhnorec.System, error){
		"rh-norec": func(m *rhnorec.Memory) (rhnorec.System, error) {
			return rhnorec.NewRHNOrec(m, rhnorec.Options{Threads: 2})
		},
		"hy-norec": func(m *rhnorec.Memory) (rhnorec.System, error) {
			return rhnorec.NewHybridNOrec(m, rhnorec.Options{Threads: 2})
		},
		"lock-elision": func(m *rhnorec.Memory) (rhnorec.System, error) {
			return rhnorec.NewLockElision(m, rhnorec.Options{Threads: 2})
		},
		"rh-tl2": func(m *rhnorec.Memory) (rhnorec.System, error) {
			return rhnorec.NewRHTL2(m, rhnorec.Options{Threads: 2})
		},
		"phased-tm": func(m *rhnorec.Memory) (rhnorec.System, error) {
			return rhnorec.NewPhasedTM(m, rhnorec.Options{Threads: 2})
		},
		"norec":      func(m *rhnorec.Memory) (rhnorec.System, error) { return rhnorec.NewNOrec(m, false), nil },
		"norec-lazy": func(m *rhnorec.Memory) (rhnorec.System, error) { return rhnorec.NewNOrec(m, true), nil },
		"tl2":        func(m *rhnorec.Memory) (rhnorec.System, error) { return rhnorec.NewTL2(m, 0), nil },
		"serial":     func(m *rhnorec.Memory) (rhnorec.System, error) { return rhnorec.NewSerial(m), nil },
	}
	for name, f := range mk {
		t.Run(name, func(t *testing.T) {
			m := rhnorec.NewMemory(1 << 16)
			sys, err := f(m)
			if err != nil {
				t.Fatal(err)
			}
			if sys.Memory() != m {
				t.Error("Memory accessor broken")
			}
			th := sys.NewThread()
			defer th.Close()
			if err := th.Run(func(tx rhnorec.Tx) error {
				a := tx.Alloc(2)
				tx.Store(a, 1)
				tx.Store(a+1, tx.Load(a)+1)
				if tx.Load(a+1) != 2 {
					t.Error("read-own-write broken through facade")
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestOptionsValidation(t *testing.T) {
	m := rhnorec.NewMemory(1 << 12)
	if _, err := rhnorec.NewRHNOrec(m, rhnorec.Options{}); err == nil {
		t.Error("no error for missing Threads and Device")
	}
	other := rhnorec.NewMemory(1 << 12)
	dev := rhnorec.NewHTMDevice(other, rhnorec.HTMConfig{})
	if _, err := rhnorec.NewRHNOrec(m, rhnorec.Options{Device: dev}); err == nil {
		t.Error("no error for device over a different memory")
	}
	if _, err := rhnorec.NewRHNOrec(other, rhnorec.Options{Device: dev}); err != nil {
		t.Errorf("valid shared device rejected: %v", err)
	}
}

func TestSharedDeviceAcrossSystems(t *testing.T) {
	m := rhnorec.NewMemory(1 << 16)
	dev := rhnorec.NewHTMDevice(m, rhnorec.HTMConfig{})
	dev.SetActiveThreads(2)
	rh, err := rhnorec.NewRHNOrec(m, rhnorec.Options{Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	le, err := rhnorec.NewLockElision(m, rhnorec.Options{Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	_ = le
	th := rh.NewThread()
	defer th.Close()
	if err := th.Run(func(tx rhnorec.Tx) error { tx.Alloc(1); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestDataStructureFacade(t *testing.T) {
	m := rhnorec.NewMemory(1 << 20)
	sys, err := rhnorec.NewRHNOrec(m, rhnorec.Options{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	setup := sys.NewThread()
	var treeHead, qHead rhnorec.Addr
	if err := setup.Run(func(tx rhnorec.Tx) error {
		treeHead = rhnorec.NewRBTree(tx).Head()
		qHead = rhnorec.NewQueue(tx).Head()
		s := rhnorec.NewStack(tx)
		s.Push(tx, 1)
		h := rhnorec.NewHashMap(tx, 8)
		h.Put(tx, 1, 2)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	setup.Close()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			th := sys.NewThread()
			defer th.Close()
			tree := rhnorec.AttachRBTree(treeHead)
			q := rhnorec.AttachQueue(qHead)
			for j := uint64(0); j < 100; j++ {
				if err := th.Run(func(tx rhnorec.Tx) error {
					tree.Put(tx, id*1000+j, j)
					q.Push(tx, id*1000+j)
					return nil
				}); err != nil {
					t.Errorf("op: %v", err)
					return
				}
			}
		}(uint64(i))
	}
	wg.Wait()
	check := sys.NewThread()
	defer check.Close()
	if err := check.Run(func(tx rhnorec.Tx) error {
		tree := rhnorec.AttachRBTree(treeHead)
		if err := tree.CheckInvariants(tx); err != nil {
			return err
		}
		if tree.Size(tx) != 400 {
			t.Errorf("tree size = %d, want 400", tree.Size(tx))
		}
		if q := rhnorec.AttachQueue(qHead); q.Size(tx) != 400 {
			t.Errorf("queue size = %d, want 400", q.Size(tx))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultRetryPolicy(t *testing.T) {
	p := rhnorec.DefaultRetryPolicy()
	if p.MaxHTMRetries != 10 || p.MaxSlowPathRestarts != 10 || p.PrefixRetries != 1 || p.PostfixRetries != 1 {
		t.Errorf("DefaultRetryPolicy = %+v does not match the paper's §3.3–§3.4", p)
	}
}
