module rhnorec

go 1.22
