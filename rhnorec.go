// Package rhnorec is a Go reproduction of "Reduced Hardware NOrec: A Safe
// and Scalable Hybrid Transactional Memory" (Matveev & Shavit, ASPLOS 2015).
//
// It provides the paper's contribution — the RH NOrec hybrid TM — together
// with every system it is evaluated against (Lock Elision, the NOrec and
// TL2 STMs, Hybrid NOrec), all running over a simulated best-effort
// hardware transactional memory, plus transactional data structures and the
// benchmark workloads of the paper's evaluation. See DESIGN.md for the
// architecture and the hardware-substitution rationale, and EXPERIMENTS.md
// for the reproduced figures.
//
// # Quick start
//
//	m := rhnorec.NewMemory(1 << 22)
//	sys, _ := rhnorec.NewRHNOrec(m, rhnorec.Options{Threads: 8})
//
//	th := sys.NewThread() // one per goroutine
//	defer th.Close()
//
//	var acct rhnorec.Addr
//	th.Run(func(tx rhnorec.Tx) error {
//	    acct = tx.Alloc(1)
//	    tx.Store(acct, 100)
//	    return nil
//	})
//
// All shared state lives in a word-addressable Memory; transactions access
// it through Tx.Load and Tx.Store and are retried automatically until they
// commit. Returning an error from the callback aborts the transaction
// cleanly. RunReadOnly declares a read-only transaction (the equivalent of
// the paper's compiler hint), enabling the fast paths' clock-free commit.
//
// Transactions nest flat (the GCC TM semantics): a Run issued from inside a
// running callback on the same Thread executes inline in the enclosing
// transaction — its reads see the enclosing writes and its writes commit or
// abort with the whole flattened transaction. An error returned by a nested
// callback propagates to the enclosing callback, which aborts everything by
// returning it or continues by swallowing it.
package rhnorec

import (
	"fmt"

	"rhnorec/internal/core"
	"rhnorec/internal/htm"
	"rhnorec/internal/hynorec"
	"rhnorec/internal/lockelision"
	"rhnorec/internal/mem"
	"rhnorec/internal/norec"
	"rhnorec/internal/phasedtm"
	"rhnorec/internal/rhtl2"
	"rhnorec/internal/serial"
	"rhnorec/internal/tl2"
	"rhnorec/internal/tm"
)

// Core memory types.
type (
	// Addr is a word index into a Memory; Nil is the reserved null.
	Addr = mem.Addr
	// Memory is the word-addressable shared memory every system
	// synchronizes.
	Memory = mem.Memory
)

// Nil is the reserved null address.
const Nil = mem.Nil

// LineWords is the simulated cache-line size in words.
const LineWords = mem.LineWords

// TM runtime types.
type (
	// Tx is the transactional view passed to Run callbacks.
	Tx = tm.Tx
	// Thread is a per-goroutine execution context.
	Thread = tm.Thread
	// System is a TM algorithm instance.
	System = tm.System
	// Stats holds the per-thread counters behind the paper's analysis
	// rows.
	Stats = tm.Stats
	// RetryPolicy tunes the paper's §3.3–§3.4 retry machinery.
	RetryPolicy = tm.RetryPolicy
	// HTMConfig describes the simulated transactional hardware.
	HTMConfig = htm.Config
	// HTMDevice is a simulated processor's transactional facility.
	HTMDevice = htm.Device
)

// NewMemory creates a shared transactional memory of the given size in
// 64-bit words.
func NewMemory(sizeWords int) *Memory { return mem.New(sizeWords) }

// NewHTMDevice creates a simulated best-effort HTM over m. All hybrid
// systems sharing m must share the device. Zero config fields take
// Haswell-like defaults (8 cores, L1-sized write capacity, capacity halving
// when oversubscribed).
func NewHTMDevice(m *Memory, cfg HTMConfig) *HTMDevice { return htm.NewDevice(m, cfg) }

// Options configures the hybrid-system constructors.
type Options struct {
	// Threads declares how many worker goroutines will run transactions;
	// the simulated hardware uses it for HyperThreading capacity scaling.
	// Required unless Device is supplied.
	Threads int
	// HTM configures the simulated hardware (ignored if Device is set).
	HTM HTMConfig
	// Device supplies an existing device (e.g. to share between systems).
	Device *HTMDevice
	// Policy tunes retries; zero fields take the paper's defaults.
	Policy RetryPolicy
}

func (o Options) device(m *Memory) (*HTMDevice, error) {
	if o.Device != nil {
		if o.Device.Memory() != m {
			return nil, fmt.Errorf("rhnorec: device bound to a different memory")
		}
		return o.Device, nil
	}
	if o.Threads <= 0 {
		return nil, fmt.Errorf("rhnorec: Options.Threads must be positive (or supply Options.Device)")
	}
	d := htm.NewDevice(m, o.HTM)
	d.SetActiveThreads(o.Threads)
	return d, nil
}

// NewRHNOrec creates the paper's contribution: the Reduced Hardware NOrec
// hybrid TM (pure hardware fast path; mixed slow path with HTM prefix and
// postfix).
func NewRHNOrec(m *Memory, o Options) (System, error) {
	d, err := o.device(m)
	if err != nil {
		return nil, err
	}
	return core.New(m, d, o.Policy), nil
}

// NewHybridNOrec creates the Hybrid NOrec HyTM of Dalessandro et al., the
// paper's main comparison point.
func NewHybridNOrec(m *Memory, o Options) (System, error) {
	d, err := o.device(m)
	if err != nil {
		return nil, err
	}
	return hynorec.New(m, d, o.Policy), nil
}

// NewLockElision creates transactional lock elision: hardware transactions
// with a global-lock fallback.
func NewLockElision(m *Memory, o Options) (System, error) {
	d, err := o.device(m)
	if err != nil {
		return nil, err
	}
	return lockelision.New(m, d, o.Policy), nil
}

// NewNOrec creates the NOrec STM. lazy selects the classic deferred-write
// variant; the default eager variant is the one the paper benchmarks.
func NewNOrec(m *Memory, lazy bool) System {
	if lazy {
		return norec.New(m, norec.Lazy)
	}
	return norec.New(m, norec.Eager)
}

// NewTL2 creates the TL2 STM with the given stripe-table size (0 for the
// default).
func NewTL2(m *Memory, stripes int) System { return tl2.New(m, stripes) }

// NewPhasedTM creates a PhasedTM (paper §1.1 background): global
// all-hardware / all-software phases. Included as the background
// comparison whose phase-switch cost the hybrids avoid.
func NewPhasedTM(m *Memory, o Options) (System, error) {
	d, err := o.device(m)
	if err != nil {
		return nil, err
	}
	return phasedtm.New(m, d, o.Policy), nil
}

// NewRHTL2 creates RH-TL2, the reduced-hardware TL2 hybrid that preceded
// RH NOrec (paper §1.2). Included to make the predecessor's drawbacks —
// instrumented fast-path writes, a fragile combined commit transaction, no
// privatization — observable next to RH NOrec.
func NewRHTL2(m *Memory, o Options) (System, error) {
	d, err := o.device(m)
	if err != nil {
		return nil, err
	}
	return rhtl2.New(m, d, o.Policy, 0), nil
}

// NewSerial creates the global-lock baseline TM (also useful as a
// correctness oracle).
func NewSerial(m *Memory) System { return serial.New(m) }

// DefaultRetryPolicy returns the paper's §3.3–§3.4 policy: 10 hardware
// retries, 10 slow-path restarts before serialization, single-try prefix
// and postfix.
func DefaultRetryPolicy() RetryPolicy { return tm.DefaultPolicy() }

// SetSoftwareAccessCost adjusts the simulator's instrumentation-cost model
// (see DESIGN.md §"cost model"); 0 disables it.
func SetSoftwareAccessCost(units int) { tm.SetSoftwareAccessCost(units) }
