package rhnorec_test

import (
	"fmt"

	"rhnorec"
)

// The basic usage pattern: create a memory, pick a TM system, run
// transactions from per-goroutine threads.
func Example() {
	m := rhnorec.NewMemory(1 << 16)
	sys, err := rhnorec.NewRHNOrec(m, rhnorec.Options{Threads: 2})
	if err != nil {
		panic(err)
	}
	th := sys.NewThread()
	defer th.Close()

	var acct rhnorec.Addr
	_ = th.Run(func(tx rhnorec.Tx) error {
		acct = tx.Alloc(1)
		tx.Store(acct, 100)
		return nil
	})
	_ = th.Run(func(tx rhnorec.Tx) error {
		tx.Store(acct, tx.Load(acct)+25)
		return nil
	})
	_ = th.RunReadOnly(func(tx rhnorec.Tx) error {
		fmt.Println("balance:", tx.Load(acct))
		return nil
	})
	// Output: balance: 125
}

// Returning an error from the callback aborts the transaction with no
// visible effects and no retry.
func ExampleSystem_userAbort() {
	m := rhnorec.NewMemory(1 << 16)
	sys, _ := rhnorec.NewRHNOrec(m, rhnorec.Options{Threads: 1})
	th := sys.NewThread()
	defer th.Close()

	var a rhnorec.Addr
	_ = th.Run(func(tx rhnorec.Tx) error { a = tx.Alloc(1); return nil })

	err := th.Run(func(tx rhnorec.Tx) error {
		tx.Store(a, 42)
		return fmt.Errorf("changed my mind")
	})
	_ = th.RunReadOnly(func(tx rhnorec.Tx) error {
		fmt.Println("err:", err, "| value:", tx.Load(a))
		return nil
	})
	// Output: err: changed my mind | value: 0
}

// The transactional data structures compose inside transactions: here a
// tree indexes per-user stacks.
func ExampleNewRBTree() {
	m := rhnorec.NewMemory(1 << 18)
	sys, _ := rhnorec.NewRHNOrec(m, rhnorec.Options{Threads: 1})
	th := sys.NewThread()
	defer th.Close()

	var index rhnorec.RBTree
	_ = th.Run(func(tx rhnorec.Tx) error {
		index = rhnorec.NewRBTree(tx)
		for user := uint64(1); user <= 3; user++ {
			s := rhnorec.NewStack(tx)
			s.Push(tx, user*100)
			index.Put(tx, user, uint64(s.Head()))
		}
		return nil
	})
	// Pop mutates, so it runs in a writing transaction.
	_ = th.Run(func(tx rhnorec.Tx) error {
		head, _ := index.Get(tx, 2)
		v, _ := rhnorec.AttachStack(rhnorec.Addr(head)).Pop(tx)
		fmt.Println("user 2 top:", v)
		return nil
	})
	// Output: user 2 top: 200
}

// Statistics expose the paper's analysis quantities per thread.
func ExampleStats() {
	m := rhnorec.NewMemory(1 << 16)
	sys, _ := rhnorec.NewRHNOrec(m, rhnorec.Options{Threads: 1})
	th := sys.NewThread()
	defer th.Close()
	var a rhnorec.Addr
	for i := 0; i < 10; i++ {
		_ = th.Run(func(tx rhnorec.Tx) error {
			if a == rhnorec.Nil {
				a = tx.Alloc(1)
			}
			tx.Store(a, tx.Load(a)+1)
			return nil
		})
	}
	s := th.Stats()
	fmt.Println("commits:", s.Commits, "fast-path:", s.FastPathCommits, "fallback ratio:", s.SlowPathRatio())
	// Output: commits: 10 fast-path: 10 fallback ratio: 0
}
