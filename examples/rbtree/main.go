// Red-black tree comparison: the paper's §3.5 microbenchmark scenario as a
// library example. A shared ordered map (the transactional red-black tree)
// is hammered by concurrent readers and writers under each TM algorithm in
// turn; the program reports throughput and the abort/fallback profile so
// you can see the Figure 4 contrast — RH NOrec sustaining the hardware fast
// path where Hybrid NOrec burns it on false conflicts — on your own
// machine.
//
//	go run ./examples/rbtree
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"rhnorec"
)

const (
	treeSize = 4096
	threads  = 8
	duration = 300 * time.Millisecond
	mutation = 0.20
)

func main() {
	type mk struct {
		name string
		f    func(m *rhnorec.Memory) (rhnorec.System, error)
	}
	systems := []mk{
		{"lock-elision", func(m *rhnorec.Memory) (rhnorec.System, error) {
			return rhnorec.NewLockElision(m, rhnorec.Options{Threads: threads})
		}},
		{"norec (STM)", func(m *rhnorec.Memory) (rhnorec.System, error) { return rhnorec.NewNOrec(m, false), nil }},
		{"tl2 (STM)", func(m *rhnorec.Memory) (rhnorec.System, error) { return rhnorec.NewTL2(m, 0), nil }},
		{"hy-norec", func(m *rhnorec.Memory) (rhnorec.System, error) {
			return rhnorec.NewHybridNOrec(m, rhnorec.Options{Threads: threads})
		}},
		{"rh-norec", func(m *rhnorec.Memory) (rhnorec.System, error) {
			return rhnorec.NewRHNOrec(m, rhnorec.Options{Threads: threads})
		}},
	}
	fmt.Printf("%-14s %12s %14s %14s %12s\n", "system", "ops/sec", "conflicts/op", "slow-ratio", "tree-ok")
	for _, s := range systems {
		ops, stats, ok := run(s.name, s.f)
		fmt.Printf("%-14s %12.0f %14.5f %14.4f %12v\n",
			s.name, ops, stats.ConflictAbortsPerOp(), stats.SlowPathRatio(), ok)
	}
}

func run(name string, f func(m *rhnorec.Memory) (rhnorec.System, error)) (opsPerSec float64, total rhnorec.Stats, ok bool) {
	m := rhnorec.NewMemory(1 << 22)
	sys, err := f(m)
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	setup := sys.NewThread()
	var head rhnorec.Addr
	if err := setup.Run(func(tx rhnorec.Tx) error {
		head = rhnorec.NewRBTree(tx).Head()
		return nil
	}); err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	for k := 0; k < treeSize; k++ {
		k := k
		if err := setup.Run(func(tx rhnorec.Tx) error {
			rhnorec.AttachRBTree(head).Put(tx, uint64(2*k), uint64(k))
			return nil
		}); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
	}
	setup.Close()

	var stop atomic.Bool
	var opCount atomic.Uint64
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			th := sys.NewThread()
			defer th.Close()
			tree := rhnorec.AttachRBTree(head)
			rng := rand.New(rand.NewSource(seed))
			var ops uint64
			for !stop.Load() {
				k := uint64(rng.Intn(2 * treeSize))
				switch r := rng.Float64(); {
				case r < mutation/2:
					_ = th.Run(func(tx rhnorec.Tx) error { tree.Put(tx, k, k); return nil })
				case r < mutation:
					_ = th.Run(func(tx rhnorec.Tx) error { tree.Delete(tx, k); return nil })
				default:
					_ = th.RunReadOnly(func(tx rhnorec.Tx) error { tree.Get(tx, k); return nil })
				}
				ops++
			}
			opCount.Add(ops)
			mu.Lock()
			total.Add(th.Stats())
			mu.Unlock()
		}(int64(i + 1))
	}
	time.Sleep(duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	check := sys.NewThread()
	defer check.Close()
	ok = check.Run(func(tx rhnorec.Tx) error {
		return rhnorec.AttachRBTree(head).CheckInvariants(tx)
	}) == nil
	return float64(opCount.Load()) / elapsed.Seconds(), total, ok
}
