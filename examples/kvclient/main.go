// kvclient: a minimal TXN client for the rhserve KV service.
//
// It boots an in-process server (so the example is self-contained — point
// -addr at a running rhserve to use it as a real client), then executes a
// textbook atomic multi-key transfer over POST /txn: debit key 1, credit
// key 2, read both back, all in one transaction. A concurrent reader using
// GET /get with both keys can never observe the debit without the credit —
// the TXN endpoint maps onto exactly one memory transaction.
//
//	go run ./examples/kvclient
//	go run ./examples/kvclient -addr 127.0.0.1:7421
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"

	"rhnorec/internal/serve"
)

func main() {
	addr := flag.String("addr", "", "rhserve address (empty: boot an in-process server)")
	flag.Parse()

	if *addr == "" {
		srv, err := serve.New(serve.Config{Algo: "rh-norec", Keys: 1 << 10})
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		bound, err := srv.Start("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		*addr = bound.String()
		fmt.Printf("booted in-process %s server on %s\n", srv.Algo(), *addr)
	}
	base := "http://" + *addr

	// Seed both accounts with 100 via /put.
	for key := 1; key <= 2; key++ {
		post(fmt.Sprintf("%s/put?key=%d&val=100", base, key))
	}

	// One atomic transfer: debit 1, credit 2, and read both back. The reads
	// see the same transaction's writes, so the reply proves atomicity.
	txn := map[string]any{"ops": []map[string]any{
		{"op": "put", "key": 1, "val": 70},
		{"op": "put", "key": 2, "val": 130},
		{"op": "get", "key": 1},
		{"op": "get", "key": 2},
	}}
	body, _ := json.Marshal(txn)
	resp, err := http.Post(base+"/txn", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Results []struct {
			Val uint64 `json:"val"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transfer committed: balances now %d and %d (total %d)\n",
		out.Results[2].Val, out.Results[3].Val, out.Results[2].Val+out.Results[3].Val)
}

func post(url string) {
	resp, err := http.Post(url, "", nil)
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("POST %s: %s", url, resp.Status)
	}
}
