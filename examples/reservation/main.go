// Reservation service: a self-contained mini version of the paper's
// Vacation scenario built purely on the public API, showing how the
// transactional data structures compose into an application. An inventory
// of rooms (a red-black tree of room id → availability) is booked and
// cancelled concurrently; each customer's bookings live on a transactional
// stack; a transaction either books atomically across several rooms or
// aborts cleanly via a returned error, leaving no partial state.
//
//	go run ./examples/reservation
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"

	"rhnorec"
)

const (
	rooms           = 128
	capacityPerRoom = 4
	threads         = 6
	opsPerThread    = 3000
)

var errFull = errors.New("not enough availability")

func main() {
	m := rhnorec.NewMemory(1 << 21)
	sys, err := rhnorec.NewRHNOrec(m, rhnorec.Options{Threads: threads})
	if err != nil {
		log.Fatal(err)
	}

	// inventory: room id -> remaining capacity; ledger: customer id -> stack head.
	setup := sys.NewThread()
	var invHead, ledgerHead rhnorec.Addr
	if err := setup.Run(func(tx rhnorec.Tx) error {
		inv := rhnorec.NewRBTree(tx)
		for r := uint64(0); r < rooms; r++ {
			inv.Put(tx, r, capacityPerRoom)
		}
		invHead = inv.Head()
		ledgerHead = rhnorec.NewRBTree(tx).Head()
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	setup.Close()

	var booked, rejected, cancelled atomic.Uint64
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(customer uint64, seed int64) {
			defer wg.Done()
			th := sys.NewThread()
			defer th.Close()
			inv := rhnorec.AttachRBTree(invHead)
			ledger := rhnorec.AttachRBTree(ledgerHead)
			rng := rand.New(rand.NewSource(seed))
			for j := 0; j < opsPerThread; j++ {
				if rng.Intn(3) == 0 {
					// Cancel the most recent booking, returning capacity.
					// Go-side counters must only move once per *committed*
					// transaction, so the callback records the outcome in a
					// local (reset at its top — restarts re-run the whole
					// callback) and it is applied after Run returns.
					didCancel := false
					err := th.Run(func(tx rhnorec.Tx) error {
						didCancel = false
						head, ok := ledger.Get(tx, customer)
						if !ok {
							return nil
						}
						stack := rhnorec.AttachStack(rhnorec.Addr(head))
						room, ok := stack.Pop(tx)
						if !ok {
							return nil
						}
						avail, _ := inv.Get(tx, room)
						inv.Put(tx, room, avail+1)
						didCancel = true
						return nil
					})
					if err != nil {
						log.Fatal(err)
					}
					if didCancel {
						cancelled.Add(1)
					}
					continue
				}
				// Book two random rooms atomically: both or neither.
				r1 := uint64(rng.Intn(rooms))
				r2 := uint64(rng.Intn(rooms))
				err := th.Run(func(tx rhnorec.Tx) error {
					a1, _ := inv.Get(tx, r1)
					a2, _ := inv.Get(tx, r2)
					if a1 == 0 || a2 == 0 || (r1 == r2 && a1 < 2) {
						return errFull // aborts: nothing is booked
					}
					inv.Put(tx, r1, a1-1)
					if r1 == r2 {
						inv.Put(tx, r2, a1-2)
					} else {
						inv.Put(tx, r2, a2-1)
					}
					head, ok := ledger.Get(tx, customer)
					var stack rhnorec.Stack
					if !ok {
						stack = rhnorec.NewStack(tx)
						ledger.Put(tx, customer, uint64(stack.Head()))
					} else {
						stack = rhnorec.AttachStack(rhnorec.Addr(head))
					}
					stack.Push(tx, r1)
					stack.Push(tx, r2)
					return nil
				})
				switch {
				case err == nil:
					booked.Add(2)
				case errors.Is(err, errFull):
					rejected.Add(1)
				default:
					log.Fatal(err)
				}
			}
		}(uint64(i), int64(i+99))
	}
	wg.Wait()

	// Audit: outstanding bookings + remaining capacity == total capacity.
	audit := sys.NewThread()
	defer audit.Close()
	var outstanding, remaining uint64
	if err := audit.Run(func(tx rhnorec.Tx) error {
		outstanding, remaining = 0, 0
		inv := rhnorec.AttachRBTree(invHead)
		for _, room := range inv.Keys(tx) {
			avail, _ := inv.Get(tx, room)
			remaining += avail
		}
		ledger := rhnorec.AttachRBTree(ledgerHead)
		for _, cust := range ledger.Keys(tx) {
			head, _ := ledger.Get(tx, cust)
			rhnorec.AttachStack(rhnorec.Addr(head)).ForEach(tx, func(uint64) { outstanding++ })
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("booked %d room-nights, rejected %d requests, cancellations %d\n",
		booked.Load(), rejected.Load(), cancelled.Load())
	fmt.Printf("audit: %d outstanding + %d remaining = %d (expected %d) — %s\n",
		outstanding, remaining, outstanding+remaining, uint64(rooms*capacityPerRoom),
		map[bool]string{true: "CONSISTENT", false: "INCONSISTENT"}[outstanding+remaining == rooms*capacityPerRoom])
}
