// Quickstart: a concurrent bank built on RH NOrec.
//
// Eight goroutines transfer money between accounts transactionally while
// observers verify, inside read-only transactions, that the total balance
// is always conserved — the opacity guarantee in action. At the end the
// program prints the invariant check and the execution statistics
// (fast-path vs slow-path commits, hardware aborts, prefix/postfix success
// ratios).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	"rhnorec"
)

const (
	accounts           = 64
	initial            = 1000
	threads            = 8
	transfersPerThread = 2000
)

func main() {
	m := rhnorec.NewMemory(1 << 20)
	sys, err := rhnorec.NewRHNOrec(m, rhnorec.Options{Threads: threads})
	if err != nil {
		log.Fatal(err)
	}

	// Set up the accounts, one per cache line to avoid false sharing.
	setup := sys.NewThread()
	var base rhnorec.Addr
	if err := setup.Run(func(tx rhnorec.Tx) error {
		base = tx.Alloc(accounts * rhnorec.LineWords)
		for i := 0; i < accounts; i++ {
			tx.Store(base+rhnorec.Addr(i*rhnorec.LineWords), initial)
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	setup.Close()
	acct := func(i int) rhnorec.Addr { return base + rhnorec.Addr(i*rhnorec.LineWords) }

	var total rhnorec.Stats
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			th := sys.NewThread()
			defer th.Close()
			rng := rand.New(rand.NewSource(seed))
			for j := 0; j < transfersPerThread; j++ {
				if j%10 == 0 {
					// Observer: a read-only audit of the whole bank.
					err := th.RunReadOnly(func(tx rhnorec.Tx) error {
						var sum uint64
						for k := 0; k < accounts; k++ {
							sum += tx.Load(acct(k))
						}
						if sum != accounts*initial {
							return fmt.Errorf("audit saw inconsistent total %d", sum)
						}
						return nil
					})
					if err != nil {
						log.Fatal(err) // opacity would have to be broken
					}
					continue
				}
				from, to := rng.Intn(accounts), rng.Intn(accounts)
				amount := uint64(rng.Intn(50))
				_ = th.Run(func(tx rhnorec.Tx) error {
					balance := tx.Load(acct(from))
					if balance < amount || from == to {
						return nil // commits as a no-op
					}
					tx.Store(acct(from), balance-amount)
					tx.Store(acct(to), tx.Load(acct(to))+amount)
					return nil
				})
			}
			mu.Lock()
			total.Add(th.Stats())
			mu.Unlock()
		}(int64(i + 1))
	}
	wg.Wait()

	var sum uint64
	for i := 0; i < accounts; i++ {
		sum += m.LoadPlain(acct(i))
	}
	fmt.Printf("final total: %d (expected %d) — invariant %s\n",
		sum, accounts*initial, map[bool]string{true: "HELD", false: "VIOLATED"}[sum == accounts*initial])
	fmt.Printf("commits: %d (fast-path %d, slow-path %d)\n",
		total.Commits, total.FastPathCommits, total.SlowPathCommits)
	fmt.Printf("hardware aborts: %d conflict, %d capacity, %d explicit, %d environmental\n",
		total.HTMConflictAborts, total.HTMCapacityAborts, total.HTMExplicitAborts, total.HTMSpuriousAborts)
	fmt.Printf("slow-path ratio: %.4f\n", total.SlowPathRatio())
	fmt.Printf("HTM prefix:  %d/%d committed\n", total.PrefixCommits, total.PrefixAttempts)
	fmt.Printf("HTM postfix: %d/%d committed\n", total.PostfixCommits, total.PostfixAttempts)
}
