// Privatization: the safety property RH NOrec preserves and the earlier
// RH-TL2 lost (paper §1.2). A thread transactionally detaches a buffer
// from a shared structure and then — with the privatizing transaction
// committed — processes the buffer with ordinary non-transactional loads
// and stores, while other threads keep transacting on the rest of the
// structure. If the TM were not privatization-safe, a doomed or delayed
// writer could still scribble into the buffer after it was detached; here
// the buffer's two halves are kept equal by all transactional writers, so
// any torn pair seen non-transactionally would expose a violation.
//
//	go run ./examples/privatization
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"

	"rhnorec"
)

const (
	threads = 6
	rounds  = 1500
)

func main() {
	m := rhnorec.NewMemory(1 << 20)
	sys, err := rhnorec.NewRHNOrec(m, rhnorec.Options{Threads: threads})
	if err != nil {
		log.Fatal(err)
	}

	// slot holds the currently-shared buffer (two words on separate lines
	// that writers always update together).
	setup := sys.NewThread()
	var slot rhnorec.Addr
	newBuffer := func(tx rhnorec.Tx) rhnorec.Addr { return tx.Alloc(2 * rhnorec.LineWords) }
	if err := setup.Run(func(tx rhnorec.Tx) error {
		slot = tx.Alloc(1)
		tx.Store(slot, uint64(newBuffer(tx)))
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	setup.Close()

	var stop atomic.Bool
	var violations, processed atomic.Uint64
	var wg sync.WaitGroup

	// Writers: transactionally update both halves of the shared buffer to
	// the same value.
	for i := 0; i < threads-1; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			th := sys.NewThread()
			defer th.Close()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				v := rng.Uint64()
				_ = th.Run(func(tx rhnorec.Tx) error {
					buf := rhnorec.Addr(tx.Load(slot))
					if buf == rhnorec.Nil {
						return nil
					}
					tx.Store(buf, v)
					tx.Store(buf+rhnorec.LineWords, v)
					return nil
				})
			}
		}(int64(i + 7))
	}

	// Privatizer: detach, process non-transactionally, publish a fresh one.
	wg.Add(1)
	go func() {
		defer wg.Done()
		th := sys.NewThread()
		defer th.Close()
		for r := 0; r < rounds; r++ {
			var private rhnorec.Addr
			if err := th.Run(func(tx rhnorec.Tx) error {
				private = rhnorec.Addr(tx.Load(slot))
				tx.Store(slot, uint64(newBuffer(tx))) // swap in a new buffer
				return nil
			}); err != nil {
				log.Fatal(err)
			}
			// The old buffer is now private: plain, uninstrumented access.
			a := m.LoadPlain(private)
			b := m.LoadPlain(private + rhnorec.LineWords)
			if a != b {
				violations.Add(1)
			}
			processed.Add(1)
			// Hand the private buffer back to the allocator transactionally.
			if err := th.Run(func(tx rhnorec.Tx) error {
				tx.Free(private, 2*rhnorec.LineWords)
				return nil
			}); err != nil {
				log.Fatal(err)
			}
		}
		stop.Store(true)
	}()
	wg.Wait()

	fmt.Printf("processed %d privatized buffers non-transactionally\n", processed.Load())
	if v := violations.Load(); v == 0 {
		fmt.Println("privatization HELD: no torn buffer was ever observed outside a transaction")
	} else {
		fmt.Printf("privatization VIOLATED %d times\n", v)
	}
}
