// Order book: a miniature limit-order matching engine built on the
// transactional data structures — a skip list of price levels on each side
// of the book, a FIFO queue of resting orders per level. Each submitted
// order runs as ONE transaction that either crosses against resting orders
// (possibly walking several price levels) or joins the book, so concurrent
// traders can never observe or produce a crossed book (best bid >= best
// ask).
//
//	go run ./examples/orderbook
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"

	"rhnorec"
)

const (
	threads         = 6
	ordersPerThread = 2000
	priceLevels     = 64 // prices in [1, priceLevels]
)

// book holds both sides. Asks are keyed by price; bids are keyed by
// (maxPrice - price) so that the skip list's minimum is always the best
// price on either side.
type book struct {
	asks rhnorec.SkipList
	bids rhnorec.SkipList
}

const bidKeyBase = priceLevels + 1

func bidKey(price uint64) uint64 { return bidKeyBase - price }

func main() {
	m := rhnorec.NewMemory(1 << 22)
	sys, err := rhnorec.NewRHNOrec(m, rhnorec.Options{Threads: threads})
	if err != nil {
		log.Fatal(err)
	}
	setup := sys.NewThread()
	var b book
	if err := setup.Run(func(tx rhnorec.Tx) error {
		b = book{asks: rhnorec.NewSkipList(tx), bids: rhnorec.NewSkipList(tx)}
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	setup.Close()

	var trades, rested atomic.Uint64
	var volumeTraded atomic.Uint64
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			th := sys.NewThread()
			defer th.Close()
			rng := rand.New(rand.NewSource(seed))
			for j := 0; j < ordersPerThread; j++ {
				isBuy := rng.Intn(2) == 0
				price := uint64(1 + rng.Intn(priceLevels))
				qty := uint64(1 + rng.Intn(10))
				var filled, restedQty uint64
				if err := th.Run(func(tx rhnorec.Tx) error {
					filled, restedQty = 0, 0
					remaining := qty
					// Cross against the opposite side while the price fits.
					opp, own := b.asks, b.bids
					ownKey := bidKey(price)
					crossable := func(bestOppKey uint64) bool { return bestOppKey <= price }
					if !isBuy {
						opp, own = b.bids, b.asks
						ownKey = price
						crossable = func(bestOppKey uint64) bool { return bidKeyBase-bestOppKey >= price }
					}
					for remaining > 0 {
						levelKey, qAddr, ok := minLevel(tx, opp)
						if !ok || !crossable(levelKey) {
							break
						}
						q := rhnorec.AttachQueue(rhnorec.Addr(qAddr))
						for remaining > 0 {
							orderQty, ok := q.Pop(tx)
							if !ok {
								break
							}
							take := min(orderQty, remaining)
							remaining -= take
							filled += take
							if take < orderQty {
								// Partial fill: the remainder goes back to
								// the level (at the tail — the queue has no
								// push-front; fine for the demo since the
								// incoming order is exhausted here anyway).
								q.Push(tx, orderQty-take)
							}
						}
						if q.Size(tx) == 0 {
							opp.Delete(tx, levelKey)
							q.Dispose(tx)
						}
					}
					if remaining > 0 {
						// Join the book at our price level.
						qAddr, ok := own.Get(tx, ownKey)
						var q rhnorec.Queue
						if !ok {
							q = rhnorec.NewQueue(tx)
							own.Put(tx, ownKey, uint64(q.Head()))
						} else {
							q = rhnorec.AttachQueue(rhnorec.Addr(qAddr))
						}
						q.Push(tx, remaining)
						restedQty = remaining
					}
					return nil
				}); err != nil {
					log.Fatal(err)
				}
				if filled > 0 {
					trades.Add(1)
					volumeTraded.Add(filled)
				}
				if restedQty > 0 {
					rested.Add(1)
				}
			}
		}(int64(i + 1))
	}
	wg.Wait()

	// Audit: the book must not be crossed, and all volume must be accounted.
	audit := sys.NewThread()
	defer audit.Close()
	var bestBid, bestAsk uint64
	var haveBid, haveAsk bool
	var restingVolume uint64
	if err := audit.Run(func(tx rhnorec.Tx) error {
		bestBid, bestAsk, haveBid, haveAsk, restingVolume = 0, 0, false, false, 0
		if k, qAddr, ok := b.bids.Min(tx); ok {
			bestBid, haveBid = bidKeyBase-k, true
			_ = qAddr
		}
		if k, _, ok := b.asks.Min(tx); ok {
			bestAsk, haveAsk = k, true
		}
		sum := func(s rhnorec.SkipList) {
			s.Range(tx, 0, ^uint64(0)>>1, func(_, qAddr uint64) bool {
				rhnorec.AttachQueue(rhnorec.Addr(qAddr)).ForEach(tx, func(v uint64) {
					restingVolume += v
				})
				return true
			})
		}
		sum(b.bids)
		sum(b.asks)
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("orders: %d submitted, %d crossed (volume %d), %d rested\n",
		threads*ordersPerThread, trades.Load(), volumeTraded.Load(), rested.Load())
	switch {
	case haveBid && haveAsk && bestBid >= bestAsk:
		fmt.Printf("book CROSSED: best bid %d >= best ask %d — atomicity violated!\n", bestBid, bestAsk)
	case haveBid && haveAsk:
		fmt.Printf("book consistent: best bid %d < best ask %d, resting volume %d\n", bestBid, bestAsk, restingVolume)
	default:
		fmt.Printf("book one-sided or empty (bid:%v ask:%v), resting volume %d\n", haveBid, haveAsk, restingVolume)
	}
}

// minLevel returns the best price level of a side (smallest skip-list key).
func minLevel(tx rhnorec.Tx, side rhnorec.SkipList) (key, queueAddr uint64, ok bool) {
	return side.Min(tx)
}

func min(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
