package rhnorec

import (
	"rhnorec/internal/rbtree"
	"rhnorec/internal/txds"
)

// Transactional data structures, usable over any System. Handles are
// immutable values wrapping a header address; publish the header (Head)
// through transactional memory to share a structure, and re-attach with the
// corresponding Attach function.

type (
	// RBTree is a red-black tree keyed by uint64 (the paper's §3.5
	// microbenchmark structure, derived from java.util.TreeMap).
	RBTree = rbtree.Tree
	// Queue is an unbounded transactional FIFO queue of words.
	Queue = txds.Queue
	// Stack is an unbounded transactional LIFO stack of words.
	Stack = txds.Stack
	// HashMap is a fixed-bucket chained transactional hash map.
	HashMap = txds.HashMap
	// SkipList is a transactional ordered map with skip-list structure.
	SkipList = txds.SkipList
	// SortedList is a transactional sorted singly-linked map.
	SortedList = txds.SortedList
)

// NewRBTree allocates an empty red-black tree inside the transaction.
func NewRBTree(tx Tx) RBTree { return rbtree.New(tx) }

// AttachRBTree wraps a published tree header.
func AttachRBTree(head Addr) RBTree { return rbtree.Attach(head) }

// NewQueue allocates an empty queue inside the transaction.
func NewQueue(tx Tx) Queue { return txds.NewQueue(tx) }

// AttachQueue wraps a published queue header.
func AttachQueue(head Addr) Queue { return txds.AttachQueue(head) }

// NewStack allocates an empty stack inside the transaction.
func NewStack(tx Tx) Stack { return txds.NewStack(tx) }

// AttachStack wraps a published stack header.
func AttachStack(head Addr) Stack { return txds.AttachStack(head) }

// NewHashMap allocates a hash map with nbuckets chains inside the
// transaction.
func NewHashMap(tx Tx, nbuckets int) HashMap { return txds.NewHashMap(tx, nbuckets) }

// AttachHashMap wraps a published map header.
func AttachHashMap(head Addr) HashMap { return txds.AttachHashMap(head) }

// NewSkipList allocates an empty skip list inside the transaction.
func NewSkipList(tx Tx) SkipList { return txds.NewSkipList(tx) }

// AttachSkipList wraps a published skip-list header.
func AttachSkipList(head Addr) SkipList { return txds.AttachSkipList(head) }

// NewSortedList allocates an empty sorted list inside the transaction.
func NewSortedList(tx Tx) SortedList { return txds.NewSortedList(tx) }

// AttachSortedList wraps a published sorted-list header.
func AttachSortedList(head Addr) SortedList { return txds.AttachSortedList(head) }
