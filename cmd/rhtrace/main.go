// Command rhtrace replays the event-ring traces written by
// `rhbench -trace FILE` into a human-readable report: for every benchmark
// point, a table of the top abort causes (count, share, mean retry
// ordinal) and a per-thread timeline of the last ring events, ordered by
// the logical timestamps the rings were stamped with (the mem clock, so
// cross-thread orderings agree with the committed history).
//
// Usage:
//
//	rhbench -experiment fig4 -threads 8 -trace trace.json
//	rhtrace -in trace.json                 # abort table + timelines
//	rhtrace -in trace.json -top 5 -limit 0 # abort tables only
//	rhtrace -in trace.json -point rbtree   # only points matching a substring
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"rhnorec/internal/obs"
)

func main() {
	var (
		in    = flag.String("in", "", "trace file written by rhbench -trace (required)")
		top   = flag.Int("top", 10, "abort causes to show per point")
		limit = flag.Int("limit", 20, "timeline events to show per thread (0 hides timelines)")
		match = flag.String("point", "", "only report points whose workload/algo contains this substring")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "rhtrace: -in FILE is required (write one with rhbench -trace)")
		os.Exit(2)
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		fatal(err)
	}
	var traces []obs.Trace
	if err := json.Unmarshal(data, &traces); err != nil {
		fatal(fmt.Errorf("%s is not a trace file: %w", *in, err))
	}
	shown := 0
	for i := range traces {
		tr := &traces[i]
		if *match != "" && !strings.Contains(tr.Workload, *match) && !strings.Contains(tr.Algo, *match) {
			continue
		}
		report(tr, *top, *limit)
		shown++
	}
	if shown == 0 {
		fmt.Fprintln(os.Stderr, "rhtrace: no points matched")
		os.Exit(1)
	}
}

// causeRow aggregates one abort cause across a point's rings.
type causeRow struct {
	cause    string
	count    uint64
	retrySum uint64
}

func report(tr *obs.Trace, top, limit int) {
	fmt.Printf("==== %s / %s / %d threads ====\n", tr.Workload, tr.Algo, tr.Threads)
	var events, dropped uint64
	byCause := map[string]*causeRow{}
	for _, ring := range tr.Rings {
		events += uint64(len(ring.Events))
		dropped += ring.Dropped
		for _, e := range ring.Events {
			if e.Kind != "abort" {
				continue
			}
			row := byCause[e.Cause]
			if row == nil {
				row = &causeRow{cause: e.Cause}
				byCause[e.Cause] = row
			}
			row.count++
			row.retrySum += uint64(e.Retry)
		}
	}
	fmt.Printf("rings: %d  events held: %d  overwritten: %d\n", len(tr.Rings), events, dropped)

	rows := make([]*causeRow, 0, len(byCause))
	var aborts uint64
	for _, row := range byCause {
		rows = append(rows, row)
		aborts += row.count
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].count != rows[j].count {
			return rows[i].count > rows[j].count
		}
		return rows[i].cause < rows[j].cause
	})
	if len(rows) > top {
		rows = rows[:top]
	}
	if len(rows) == 0 {
		fmt.Println("no abort events in the held window")
	} else {
		fmt.Printf("top abort causes (of %d held abort events):\n", aborts)
		fmt.Printf("  %-16s %10s %7s %10s\n", "cause", "count", "share", "mean-retry")
		for _, row := range rows {
			fmt.Printf("  %-16s %10d %6.1f%% %10.2f\n",
				row.cause, row.count,
				100*float64(row.count)/float64(aborts),
				float64(row.retrySum)/float64(row.count))
		}
	}
	if limit > 0 {
		for _, ring := range tr.Rings {
			fmt.Printf("thread %d timeline (last %d of %d held, %d overwritten):\n",
				ring.Thread, min(limit, len(ring.Events)), len(ring.Events), ring.Dropped)
			evs := ring.Events
			if len(evs) > limit {
				evs = evs[len(evs)-limit:]
			}
			for _, e := range evs {
				line := fmt.Sprintf("  t=%-10d %-8s", e.T, e.Kind)
				if e.Path != "" {
					line += " path=" + e.Path
				}
				if e.Cause != "" {
					line += " cause=" + e.Cause
				}
				if e.Retry != 0 {
					line += fmt.Sprintf(" retry=%d", e.Retry)
				}
				fmt.Println(line)
			}
		}
	}
	fmt.Println()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rhtrace:", err)
	os.Exit(1)
}
