// Command rhload is the closed/open-loop load generator for the rhserve KV
// service (docs/SERVE.md). It drives a sweep grid — target QPS × zipfian
// key skew × read mix — over either transport, reports achieved throughput
// and client-side latency per cell, and can emit the cells as an
// rhbench.v2 dump (the BENCH_5 service trajectory) plus the server's own
// rhserve.v1 metrics dump.
//
// Usage:
//
//	rhload -addr 127.0.0.1:7421 -conns 8 -duration 5s
//	rhload -proto binary -qps 1000,5000,0 -zipf 0,0.99,1.2 -readmix 0.9
//	rhload -json bench5.json -dump serve-dump.json \
//	       -compare BENCH_5.json -compare-normalize
//
// Knobs: -addr server, -proto http|binary, -conns concurrent connections,
// -qps CSV of target rates (0 = closed loop: issue as fast as replies
// return), -duration per cell, -zipf CSV of skew exponents, -readmix CSV of
// GET fractions, -casfrac/-scanfrac/-txnfrac the other endpoint fractions
// (remainder PUT), -txnops/-scancount batch shapes, -keys key-space size,
// -seed deterministic generator seed, -pipeline CSV of in-flight depths per
// connection (binary only: N frames written through one flush, N replies
// read back — the wire shape the server coalesces into fused batches;
// depth-1 cells keep their BENCH_5-era names, deeper cells append /pN),
// -scenario NAME pins the whole traffic shape to a conformance-registry
// scenario's service profile (internal/conformance) — cells are then named
// "serve/<proto>/<scenario>/q<qps>".
// Profiling: -cpuprofile/-memprofile write generator-side pprof profiles.
//
// Shed handling: a 429/StatusShed reply is not an error — the connection
// backs off the server's Retry-After hint and resumes; sheds are reported
// per cell.
//
// Output: -json FILE writes the cells as an rhbench.v2 dump (workload
// "serve/<proto>/z<skew>/r<readmix>/q<qps>", threads = conns, ops_per_sec =
// achieved goodput); -dump FILE fetches /metrics?format=json from the
// server, validates it against the rhserve.v1 schema, and writes it;
// -compare BASELINE gates the run against a baseline dump like rhbench
// (-compare-normalize, -compare-tolerance); -fail-on-errors exits non-zero
// if any request failed transactionally.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"rhnorec/internal/bench"
	"rhnorec/internal/conformance"
	"rhnorec/internal/obs"
	"rhnorec/internal/serve"
	"rhnorec/internal/tmtest"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7421", "rhserve address")
		proto     = flag.String("proto", "http", "transport: http or binary")
		conns     = flag.Int("conns", 4, "concurrent connections")
		qpsCSV    = flag.String("qps", "0", "CSV of target QPS per cell (0 = closed loop)")
		duration  = flag.Duration("duration", 3*time.Second, "duration per sweep cell")
		zipfCSV   = flag.String("zipf", "0.99", "CSV of zipfian skew exponents")
		mixCSV    = flag.String("readmix", "0.9", "CSV of GET fractions")
		casFrac   = flag.Float64("casfrac", 0.02, "CAS fraction")
		scanFrac  = flag.Float64("scanfrac", 0.02, "SCAN fraction")
		txnFrac   = flag.Float64("txnfrac", 0.05, "TXN fraction")
		txnOps    = flag.Int("txnops", 4, "ops per generated TXN")
		scanCount = flag.Int("scancount", 16, "keys per generated SCAN")
		keys      = flag.Int("keys", 1<<16, "key-space size (must be <= the server's -keys)")
		seed      = flag.Int64("seed", 1, "generator seed")
		pipeCSV   = flag.String("pipeline", "1", "CSV of pipeline depths per cell (binary only; N>1 keeps N requests in flight per connection)")
		scenName  = flag.String("scenario", "", "drive a conformance-registry scenario's traffic shape (overrides -zipf/-readmix/-casfrac/-scanfrac/-txnfrac/-txnops/-scancount); see internal/conformance")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the generator to FILE")
		memProf   = flag.String("memprofile", "", "write a post-run heap profile of the generator to FILE")
		jsonPath  = flag.String("json", "", "write cells as an rhbench.v2 dump to FILE")
		dumpPath  = flag.String("dump", "", "fetch, validate, and write the server's rhserve.v1 dump to FILE")
		cmpPath   = flag.String("compare", "", "gate against a baseline rhbench.v2 dump")
		cmpNorm   = flag.Bool("compare-normalize", false, "normalize both dumps by their median throughput before comparing")
		cmpTol    = flag.Float64("compare-tolerance", 0.2, "allowed relative throughput drop before the gate fails")
		failOnErr = flag.Bool("fail-on-errors", false, "exit non-zero if any request failed transactionally")
	)
	flag.Parse()
	if *proto != "http" && *proto != "binary" {
		fatalf("unknown -proto %q (want http or binary)", *proto)
	}

	qpsList := parseFloats(*qpsCSV, "-qps")
	zipfList := parseFloats(*zipfCSV, "-zipf")
	mixList := parseFloats(*mixCSV, "-readmix")
	pipeList := parseInts(*pipeCSV, "-pipeline")
	cellPrefix := "serve/" + *proto
	if *scenName != "" {
		// A registry scenario pins the whole traffic shape, so the sweep
		// collapses to one (zipf, mix) point and the cell name carries the
		// scenario instead of the z/r segments. Default runs are untouched —
		// the BENCH_5/BENCH_6 baselines keep their historical cell names.
		sc, ok := conformance.ByName(*scenName)
		if !ok {
			fatalf("unknown -scenario %q (have %v)", *scenName, conformance.Names())
		}
		if sc.Traffic == nil {
			fatalf("-scenario %q has no service traffic profile", *scenName)
		}
		t := sc.Traffic
		zipfList = []float64{t.ZipfSkew}
		mixList = []float64{t.GetFrac}
		*casFrac, *scanFrac, *txnFrac = t.CasFrac, t.ScanFrac, t.TxnFrac
		if t.TxnOps > 0 {
			*txnOps = t.TxnOps
		}
		if t.ScanCount > 0 {
			*scanCount = t.ScanCount
		}
		cellPrefix += "/" + sc.Name
	}
	for _, p := range pipeList {
		if p > 1 && *proto != "binary" {
			fatalf("-pipeline %d requires -proto binary (HTTP has no frame pipelining)", p)
		}
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatalf("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("cpuprofile: %v", err)
		}
	}

	rec := &bench.JSONRecorder{}
	var totalErrs uint64
	algo := fetchAlgo(*addr)
	fmt.Printf("rhload: %s via %s, algo=%s, %d conns, %s per cell\n",
		*addr, *proto, algo, *conns, *duration)
	fmt.Printf("%-30s %10s %10s %8s %8s %10s %10s %10s\n",
		"cell", "target", "achieved", "sheds", "errors", "p50", "p99", "p999")
	for _, skew := range zipfList {
		zipf := tmtest.NewZipfKeys(*keys, skew)
		for _, readMix := range mixList {
			mix := tmtest.RequestMix{
				GetFrac: readMix, CasFrac: *casFrac, ScanFrac: *scanFrac, TxnFrac: *txnFrac,
				TxnOps: *txnOps, ScanCount: *scanCount,
			}.WithDefaults()
			for _, qps := range qpsList {
				for _, depth := range pipeList {
					cell := cellConfig{
						addr: *addr, proto: *proto, conns: *conns, qps: qps,
						duration: *duration, zipf: zipf, mix: mix, seed: *seed,
						pipeline: depth,
					}
					res := runCell(cell)
					totalErrs += res.errors
					// Depth 1 keeps the BENCH_5-era cell name, so old baselines
					// still match; deeper cells get a /pN segment. Scenario
					// runs name the scenario instead of the z/r parameters
					// (which the registry pins).
					name := fmt.Sprintf("%s/z%.2f/r%.2f/q%g", cellPrefix, skew, readMix, qps)
					if *scenName != "" {
						name = fmt.Sprintf("%s/q%g", cellPrefix, qps)
					}
					if depth > 1 {
						name += fmt.Sprintf("/p%d", depth)
					}
					fmt.Printf("%-30s %10s %10.0f %8d %8d %10s %10s %10s\n",
						name, targetStr(qps), res.achieved, res.sheds, res.errors,
						durStr(res.lat.Quantile(0.50)), durStr(res.lat.Quantile(0.99)), durStr(res.lat.Quantile(0.999)))
					rec.Record(bench.Result{
						Workload:   name,
						Algo:       algo,
						Threads:    *conns,
						Ops:        res.ops,
						Elapsed:    res.elapsed,
						Throughput: res.achieved,
					})
				}
			}
		}
	}

	if *jsonPath != "" {
		writeJSONFile(*jsonPath, rec)
	}
	if *dumpPath != "" {
		fetchServeDump(*addr, *dumpPath)
	}
	exit := 0
	if *cmpPath != "" && !gate(*cmpPath, rec, *cmpNorm, *cmpTol) {
		exit = 1
	}
	if *failOnErr && totalErrs > 0 {
		fmt.Fprintf(os.Stderr, "rhload: %d transactional errors\n", totalErrs)
		exit = 1
	}
	if *cpuProf != "" {
		pprof.StopCPUProfile()
	}
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fatalf("memprofile: %v", err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatalf("memprofile: %v", err)
		}
		f.Close()
	}
	os.Exit(exit)
}

type cellConfig struct {
	addr     string
	proto    string
	conns    int
	qps      float64
	duration time.Duration
	zipf     *tmtest.ZipfKeys
	mix      tmtest.RequestMix
	seed     int64
	pipeline int // frames in flight per connection (binary; <=1 = round trips)
}

type cellResult struct {
	ops      uint64
	sheds    uint64
	errors   uint64
	elapsed  time.Duration
	achieved float64
	lat      obs.Histogram
}

// connStats is one connection goroutine's private tally, merged after join.
type connStats struct {
	ops    uint64
	sheds  uint64
	errors uint64
	lat    obs.Histogram
}

// runCell drives one sweep cell: conns goroutines against one server, each
// pacing itself at qps/conns (or flat-out when qps is 0).
func runCell(c cellConfig) cellResult {
	var wg sync.WaitGroup
	stats := make([]connStats, c.conns)
	start := time.Now()
	deadline := start.Add(c.duration)
	for i := 0; i < c.conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			runConn(c, i, &stats[i], deadline)
		}(i)
	}
	wg.Wait()
	var res cellResult
	res.elapsed = time.Since(start)
	for i := range stats {
		res.ops += stats[i].ops
		res.sheds += stats[i].sheds
		res.errors += stats[i].errors
		res.lat.Merge(&stats[i].lat)
	}
	res.achieved = float64(res.ops) / res.elapsed.Seconds()
	return res
}

// runConn is one connection's generator loop. Open loop: fire at the
// per-conn interval, skipping ticks that fall behind (no coordinated
// omission backlog — a late reply costs throughput, not a burst). Closed
// loop: next request as soon as the reply lands.
func runConn(c cellConfig, id int, st *connStats, deadline time.Time) {
	identity := fmt.Sprintf("rhload-%d", id)
	var cl kvClient
	if c.proto == "binary" {
		bc, err := newBinClient(c.addr, identity)
		if err != nil {
			st.errors++
			return
		}
		if c.pipeline > 1 {
			defer bc.close()
			runConnPipelined(c, bc, id, st, deadline)
			return
		}
		cl = bc
	} else {
		cl = newHTTPClient(c.addr, identity)
	}
	defer cl.close()
	rng := rand.New(rand.NewSource(c.seed + int64(id)*7919))
	var interval time.Duration
	if c.qps > 0 {
		interval = time.Duration(float64(c.conns) / c.qps * float64(time.Second))
	}
	next := time.Now()
	for {
		now := time.Now()
		if !now.Before(deadline) {
			return
		}
		if interval > 0 {
			if now.Before(next) {
				time.Sleep(next.Sub(now))
			}
			next = next.Add(interval)
			if behind := time.Now(); next.Before(behind) {
				next = behind
			}
		}
		kind, ops := genRequest(c, rng)
		t0 := time.Now()
		_, err := cl.do(kind, ops)
		st.lat.Record(uint64(time.Since(t0)))
		switch e := err.(type) {
		case nil:
			st.ops++
		case *shedError:
			st.sheds++
			backoff := e.RetryAfter
			if rem := time.Until(deadline); backoff > rem {
				backoff = rem
			}
			if backoff > 0 {
				time.Sleep(backoff)
			}
		default:
			st.errors++
		}
	}
}

// runConnPipelined is runConn's binary deep-pipeline variant: each round
// generates pipeline requests, writes them all through one flush, and reads
// the replies in order — the wire pattern the server's drain loop coalesces
// into fused batches. Every request's recorded latency is its batch's round
// trip (that IS how long each reply took end to end). Open-loop pacing
// fires batches at the batch-scaled interval.
func runConnPipelined(c cellConfig, bc *binClient, id int, st *connStats, deadline time.Time) {
	rng := rand.New(rand.NewSource(c.seed + int64(id)*7919))
	depth := c.pipeline
	kinds := make([]tmtest.ReqKind, depth)
	opss := make([][]serve.Op, depth)
	out := make([]binOutcome, depth)
	var interval time.Duration
	if c.qps > 0 {
		interval = time.Duration(float64(c.conns*depth) / c.qps * float64(time.Second))
	}
	next := time.Now()
	for {
		now := time.Now()
		if !now.Before(deadline) {
			return
		}
		if interval > 0 {
			if now.Before(next) {
				time.Sleep(next.Sub(now))
			}
			next = next.Add(interval)
			if behind := time.Now(); next.Before(behind) {
				next = behind
			}
		}
		for i := 0; i < depth; i++ {
			kinds[i], opss[i] = genRequest(c, rng)
		}
		t0 := time.Now()
		if err := bc.doBatch(kinds, opss, out); err != nil {
			st.errors++
			return // transport failure: connection is dead
		}
		rtt := uint64(time.Since(t0))
		var backoff time.Duration
		for i := 0; i < depth; i++ {
			st.lat.Record(rtt)
			switch {
			case out[i].err != nil:
				st.errors++
			case out[i].shed:
				st.sheds++
				if out[i].retryAfter > backoff {
					backoff = out[i].retryAfter
				}
			default:
				st.ops++
			}
		}
		if backoff > 0 {
			if rem := time.Until(deadline); backoff > rem {
				backoff = rem
			}
			if backoff > 0 {
				time.Sleep(backoff)
			}
		}
	}
}

// genRequest draws one request from the mix.
func genRequest(c cellConfig, rng *rand.Rand) (tmtest.ReqKind, []serve.Op) {
	kind := c.mix.Pick(rng)
	key := func() uint64 { return c.zipf.ScrambledNext(rng) }
	switch kind {
	case tmtest.ReqGet:
		return kind, []serve.Op{{Kind: serve.OpGet, Key: key()}}
	case tmtest.ReqCas:
		return kind, []serve.Op{{Kind: serve.OpCas, Key: key(), Old: uint64(rng.Intn(4)), Val: rng.Uint64() >> 1}}
	case tmtest.ReqScan:
		n := uint64(c.mix.ScanCount)
		start := key()
		if max := uint64(c.zipf.N()); n >= max {
			start, n = 0, max
		} else if start+n > max {
			start = max - n
		}
		return kind, []serve.Op{{Kind: serve.OpScan, Key: start, Count: uint32(n)}}
	case tmtest.ReqTxn:
		ops := make([]serve.Op, c.mix.TxnOps)
		for i := range ops {
			if rng.Intn(2) == 0 {
				ops[i] = serve.Op{Kind: serve.OpGet, Key: key()}
			} else {
				ops[i] = serve.Op{Kind: serve.OpPut, Key: key(), Val: rng.Uint64() >> 1}
			}
		}
		return kind, ops
	default:
		return tmtest.ReqPut, []serve.Op{{Kind: serve.OpPut, Key: key(), Val: rng.Uint64() >> 1}}
	}
}

// fetchAlgo asks the server which TM system backs it ("unknown" when the
// metrics endpoint is unreachable — the sweep proceeds, the dump label
// degrades).
func fetchAlgo(addr string) string {
	d, err := fetchMetrics(addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rhload: warning: metrics fetch failed: %v\n", err)
		return "unknown"
	}
	return d.Algo
}

func fetchMetrics(addr string) (*bench.ServeDump, error) {
	resp, err := http.Get("http://" + addr + "/metrics?format=json")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return bench.ParseServeDump(data)
}

// fetchServeDump fetches the server's rhserve.v1 dump, schema-validates it,
// and writes it to path.
func fetchServeDump(addr, path string) {
	resp, err := http.Get("http://" + addr + "/metrics?format=json")
	if err != nil {
		fatalf("dump fetch: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		fatalf("dump fetch: %v", err)
	}
	if err := bench.ValidateDump(data); err != nil {
		fatalf("server dump invalid: %v", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatalf("dump write: %v", err)
	}
	fmt.Printf("rhload: wrote validated %s dump to %s\n", bench.ServeSchemaVersion, path)
}

func writeJSONFile(path string, rec *bench.JSONRecorder) {
	f, err := os.Create(path)
	if err != nil {
		fatalf("json write: %v", err)
	}
	defer f.Close()
	if err := rec.WriteJSON(f); err != nil {
		fatalf("json write: %v", err)
	}
	fmt.Printf("rhload: wrote %d points to %s\n", rec.Len(), path)
}

// gate compares this run against a baseline dump; reports true when the
// gate passes.
func gate(path string, rec *bench.JSONRecorder, normalize bool, tol float64) bool {
	baseline, err := bench.LoadDump(path)
	if err != nil {
		fatalf("compare: %v", err)
	}
	deltas := bench.Compare(baseline, rec.Dump(), normalize)
	bad := bench.Regressions(deltas, tol)
	if len(bad) == 0 {
		fmt.Printf("rhload: perf gate passed (%d baseline points, tolerance %.0f%%)\n",
			len(deltas), tol*100)
		return true
	}
	fmt.Fprintf(os.Stderr, "rhload: perf gate FAILED (%d of %d points):\n", len(bad), len(deltas))
	for _, d := range bad {
		fmt.Fprintf(os.Stderr, "  %s\n", d)
	}
	return false
}

func parseFloats(csv, flagName string) []float64 {
	parts := strings.Split(csv, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || v < 0 {
			fatalf("bad %s value %q", flagName, p)
		}
		out = append(out, v)
	}
	return out
}

func parseInts(csv, flagName string) []int {
	parts := strings.Split(csv, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			fatalf("bad %s value %q (want a positive integer)", flagName, p)
		}
		out = append(out, v)
	}
	return out
}

func targetStr(qps float64) string {
	if qps <= 0 {
		return "closed"
	}
	return fmt.Sprintf("%g", qps)
}

func durStr(ns uint64) string { return time.Duration(ns).Truncate(time.Microsecond).String() }

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rhload: "+format+"\n", args...)
	os.Exit(1)
}
