package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"rhnorec/internal/serve"
	"rhnorec/internal/tmtest"
)

func jsonBody(v any) io.Reader {
	b, _ := json.Marshal(v)
	return bytes.NewReader(b)
}

func jsonDecode(r io.Reader, v any) error { return json.NewDecoder(r).Decode(v) }

// kvClient is one connection's view of the service: one call per endpoint
// kind, so the server's per-endpoint metrics rows label the traffic the way
// the generator meant it.
type kvClient interface {
	do(kind tmtest.ReqKind, ops []serve.Op) ([]serve.OpResult, error)
	close()
}

// shedError is the client-side form of an admission shed (HTTP 429 or
// binary StatusShed): back off RetryAfter, then resume.
type shedError struct{ RetryAfter time.Duration }

func (e *shedError) Error() string {
	return fmt.Sprintf("shed (retry after %s)", e.RetryAfter)
}

// reqKindPath maps a request kind to its HTTP endpoint path.
var reqKindPath = [tmtest.NumReqKinds]string{"/get", "/put", "/cas", "/scan", "/txn"}

// httpClient drives the HTTP/JSON transport. Each generator connection owns
// one, with a distinct sticky identity in X-RH-Client.
type httpClient struct {
	base     string
	identity string
	hc       *http.Client
}

func newHTTPClient(addr, identity string) *httpClient {
	return &httpClient{
		base:     "http://" + addr,
		identity: identity,
		// One TCP connection per generator connection: MaxConnsPerHost 1
		// keeps the "conns" flag honest at the transport level too.
		hc: &http.Client{Transport: &http.Transport{MaxConnsPerHost: 1, MaxIdleConnsPerHost: 1}},
	}
}

func (c *httpClient) close() { c.hc.CloseIdleConnections() }

func (c *httpClient) do(kind tmtest.ReqKind, ops []serve.Op) ([]serve.OpResult, error) {
	var (
		req *http.Request
		err error
	)
	switch kind {
	case tmtest.ReqTxn:
		body := serve.TxnRequest{Ops: make([]serve.TxnOp, len(ops))}
		for i, op := range ops {
			body.Ops[i] = jsonOp(op)
		}
		req, err = http.NewRequest(http.MethodPost, c.base+"/txn", jsonBody(&body))
		if req != nil {
			req.Header.Set("Content-Type", "application/json")
		}
	default:
		q := url.Values{}
		op := ops[0]
		switch kind {
		case tmtest.ReqGet:
			for _, o := range ops {
				q.Add("key", strconv.FormatUint(o.Key, 10))
			}
		case tmtest.ReqPut:
			q.Set("key", strconv.FormatUint(op.Key, 10))
			q.Set("val", strconv.FormatUint(op.Val, 10))
		case tmtest.ReqCas:
			q.Set("key", strconv.FormatUint(op.Key, 10))
			q.Set("old", strconv.FormatUint(op.Old, 10))
			q.Set("new", strconv.FormatUint(op.Val, 10))
		case tmtest.ReqScan:
			q.Set("start", strconv.FormatUint(op.Key, 10))
			q.Set("count", strconv.FormatUint(uint64(op.Count), 10))
		}
		method := http.MethodGet
		if kind == tmtest.ReqPut || kind == tmtest.ReqCas {
			method = http.MethodPost
		}
		req, err = http.NewRequest(method, c.base+reqKindPath[kind]+"?"+q.Encode(), nil)
	}
	if err != nil {
		return nil, err
	}
	req.Header.Set("X-RH-Client", c.identity)
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
		var out serve.TxnResponse
		if err := jsonDecode(resp.Body, &out); err != nil {
			return nil, err
		}
		res := make([]serve.OpResult, len(out.Results))
		for i, r := range out.Results {
			res[i] = serve.OpResult{Val: r.Val, Vals: r.Vals, Swapped: r.Swapped}
		}
		return res, nil
	case http.StatusTooManyRequests:
		ra := time.Second
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			ra = time.Duration(secs) * time.Second
		}
		return nil, &shedError{RetryAfter: ra}
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, fmt.Errorf("http %d: %s", resp.StatusCode, msg)
	}
}

// jsonOp converts a normalized op back to its JSON wire form.
func jsonOp(op serve.Op) serve.TxnOp {
	switch op.Kind {
	case serve.OpGet:
		return serve.TxnOp{Op: "get", Key: op.Key}
	case serve.OpPut:
		return serve.TxnOp{Op: "put", Key: op.Key, Val: op.Val}
	case serve.OpCas:
		return serve.TxnOp{Op: "cas", Key: op.Key, Old: op.Old, New: op.Val}
	default:
		return serve.TxnOp{Op: "scan", Key: op.Key, Count: op.Count}
	}
}

// reqKindOpcode maps a request kind to its binary opcode.
var reqKindOpcode = [tmtest.NumReqKinds]uint8{
	serve.OpcodeGet, serve.OpcodePut, serve.OpcodeCas, serve.OpcodeScan, serve.OpcodeTxn,
}

// binClient drives the binary protocol over one TCP connection.
type binClient struct {
	conn  net.Conn
	br    *bufio.Reader
	bw    *bufio.Writer
	reqID uint64
	buf   []byte
	inBuf []byte
	resp  serve.ProtoResponse // recycled pipelined-reply decode target
}

func newBinClient(addr, identity string) (*binClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &binClient{conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}
	if _, err := c.bw.WriteString(serve.ProtoMagic); err != nil {
		conn.Close()
		return nil, err
	}
	if _, err := c.roundTrip(&serve.ProtoRequest{Opcode: serve.OpcodeHello, Hello: identity}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("hello: %w", err)
	}
	return c, nil
}

func (c *binClient) close() { c.conn.Close() }

func (c *binClient) roundTrip(req *serve.ProtoRequest) (*serve.ProtoResponse, error) {
	c.reqID++
	req.ReqID = c.reqID
	payload, err := serve.AppendRequest(c.buf[:0], req)
	if err != nil {
		return nil, err
	}
	c.buf = payload[:0]
	if err := serve.WriteFrame(c.bw, payload); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	frame, err := serve.ReadFrame(c.br, c.inBuf)
	if err != nil {
		return nil, err
	}
	c.inBuf = frame[:0]
	resp, err := serve.ParseResponse(frame)
	if err != nil {
		return nil, err
	}
	if resp.ReqID != req.ReqID {
		return nil, fmt.Errorf("response for req %d, want %d", resp.ReqID, req.ReqID)
	}
	return resp, nil
}

func (c *binClient) do(kind tmtest.ReqKind, ops []serve.Op) ([]serve.OpResult, error) {
	resp, err := c.roundTrip(&serve.ProtoRequest{Opcode: reqKindOpcode[kind], Ops: ops})
	if err != nil {
		return nil, err
	}
	switch resp.Status {
	case serve.StatusOK:
		return resp.Results, nil
	case serve.StatusShed:
		return nil, &shedError{RetryAfter: time.Duration(resp.RetryAfterMS) * time.Millisecond}
	default:
		return nil, fmt.Errorf("status %d: %s", resp.Status, resp.Msg)
	}
}

// binOutcome is one pipelined request's verdict.
type binOutcome struct {
	shed       bool
	retryAfter time.Duration
	err        error
}

// doBatch pipelines len(kinds) requests on the wire: all frames written
// through one flush, then all replies read in order (the server guarantees
// frame-order replies). out[i] is request i's verdict; a non-nil return is
// a transport failure and the connection is dead. The reply decode reuses
// one recycled ProtoResponse (ParseResponseInto), so a steady-state batch
// allocates only in AppendRequest's op marshaling.
func (c *binClient) doBatch(kinds []tmtest.ReqKind, opss [][]serve.Op, out []binOutcome) error {
	firstID := c.reqID + 1
	for i := range kinds {
		c.reqID++
		req := serve.ProtoRequest{Opcode: reqKindOpcode[kinds[i]], ReqID: c.reqID, Ops: opss[i]}
		payload, err := serve.AppendRequest(c.buf[:0], &req)
		if err != nil {
			return err
		}
		c.buf = payload[:0]
		if err := serve.WriteFrame(c.bw, payload); err != nil {
			return err
		}
	}
	if err := c.bw.Flush(); err != nil {
		return err
	}
	for i := range kinds {
		frame, err := serve.ReadFrame(c.br, c.inBuf)
		if err != nil {
			return err
		}
		c.inBuf = frame[:0]
		if err := serve.ParseResponseInto(frame, &c.resp); err != nil {
			return err
		}
		if want := firstID + uint64(i); c.resp.ReqID != want {
			return fmt.Errorf("response for req %d, want %d", c.resp.ReqID, want)
		}
		switch c.resp.Status {
		case serve.StatusOK:
			out[i] = binOutcome{}
		case serve.StatusShed:
			out[i] = binOutcome{shed: true, retryAfter: time.Duration(c.resp.RetryAfterMS) * time.Millisecond}
		default:
			out[i] = binOutcome{err: fmt.Errorf("status %d: %s", c.resp.Status, c.resp.Msg)}
		}
	}
	return nil
}
