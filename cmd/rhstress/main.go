// Command rhstress is a randomized correctness harness: it drives every TM
// algorithm through high-contention invariant workloads (bank transfers
// with in-transaction invariant observation, a shared red-black tree with
// structural validation) and reports any safety violation. Use it for long
// soak runs beyond what `go test` exercises; for deterministic exploration
// of the same workloads, see cmd/rhexplore.
//
// Usage:
//
//	rhstress -duration 10s -threads 8 [-algos rh-norec,hy-norec] [-spurious 0.001] [-seed 1]
//
// Every run prints its seed so a failure reproduces with the same flags.
// A panic in a worker goroutine is recovered, counted as a violation and
// reported in the summary instead of killing the process mid-print.
// Exit status is non-zero if any violation was detected.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rhnorec/internal/bench"
	"rhnorec/internal/htm"
	"rhnorec/internal/mem"
	"rhnorec/internal/tm"
	"rhnorec/internal/tmtest"
)

func main() {
	var (
		duration = flag.Duration("duration", 2*time.Second, "soak time per algorithm per scenario")
		threads  = flag.Int("threads", 8, "worker threads")
		algosCSV = flag.String("algos", "", "comma-separated algorithm subset (default: all)")
		spurious = flag.Float64("spurious", 0.001, "spurious HTM abort probability")
		tinyHTM  = flag.Bool("tiny-htm", false, "use tiny HTM capacities to force the slow paths")
		seed     = flag.Int64("seed", 1, "base RNG seed (worker i uses seed+i)")
	)
	flag.Parse()

	algos := bench.StandardAlgos()
	algos = append(algos,
		mustVariant("rh-noprefix"), mustVariant("rh-nopostfix"), mustVariant("rh-allsoft"),
		mustVariant("rh-tl2"), mustVariant("phased-tm"), mustVariant("hy-norec-lazy"), mustVariant("norec-lazy"))
	if *algosCSV != "" {
		algos = nil
		for _, name := range strings.Split(*algosCSV, ",") {
			algos = append(algos, mustVariant(strings.TrimSpace(name)))
		}
	}
	hcfg := htm.Config{SpuriousAbortProb: *spurious}
	if *tinyHTM {
		hcfg.ReadCapacityLines = 16
		hcfg.WriteCapacityLines = 8
	}

	fmt.Printf("rhstress: seed=%d threads=%d spurious=%g\n", *seed, *threads, *spurious)
	failures := 0
	for _, algo := range algos {
		for _, scenario := range []struct {
			name string
			run  func(sys tm.System, threads int, d time.Duration, seed int64) error
		}{
			{"bank", bankScenario},
			{"rbtree", treeScenario},
		} {
			m := mem.New(1 << 22)
			dev := htm.NewDevice(m, hcfg)
			dev.SetActiveThreads(*threads)
			sys := algo.New(m, dev, tm.RetryPolicy{})
			start := time.Now()
			err := scenario.run(sys, *threads, *duration, *seed)
			status := "ok"
			if err != nil {
				status = "FAIL: " + err.Error()
				failures++
			}
			fmt.Printf("%-14s %-8s %8s  %s\n", algo.Name, scenario.name, time.Since(start).Round(time.Millisecond), status)
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "rhstress: %d scenario(s) failed (seed %d)\n", failures, *seed)
		os.Exit(1)
	}
}

func mustVariant(name string) bench.Algo {
	a, ok := bench.AlgoByName(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "rhstress: unknown algorithm %q\n", name)
		os.Exit(2)
	}
	return a
}

// violationLog collects safety violations across workers; a worker panic is
// a violation too (a crashed worker proves nothing about the survivors, and
// the old behaviour — the panic killing the process before the summary —
// hid which algorithm and scenario was at fault).
type violationLog struct {
	count atomic.Uint64
	mu    sync.Mutex
	first string
}

func (v *violationLog) report(msg string) {
	if v.count.Add(1) == 1 {
		v.mu.Lock()
		v.first = msg
		v.mu.Unlock()
	}
}

func (v *violationLog) err(scenario string) error {
	n := v.count.Load()
	if n == 0 {
		return nil
	}
	v.mu.Lock()
	first := v.first
	v.mu.Unlock()
	return fmt.Errorf("%s: %d violation(s); first: %s", scenario, n, first)
}

// guard recovers a worker panic into the violation log.
func guard(v *violationLog, fn func()) {
	defer func() {
		if r := recover(); r != nil {
			v.report(fmt.Sprintf("worker panic: %v\n%s", r, debug.Stack()))
		}
	}()
	fn()
}

// bankScenario: transfers must preserve the total, and every transaction
// (including read-only observers) must see a consistent snapshot.
func bankScenario(sys tm.System, threads int, d time.Duration, seed int64) error {
	cfg := tmtest.BankConfig{Accounts: 64, TransferMax: 20, ObserverEvery: 4}
	setup := sys.NewThread()
	base, err := tmtest.BankSetup(setup, cfg)
	setup.Close()
	if err != nil {
		return err
	}
	var stop atomic.Bool
	var vlog violationLog
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			guard(&vlog, func() {
				th := sys.NewThread()
				defer th.Close()
				rng := rand.New(rand.NewSource(seed))
				if err := tmtest.BankWorker(th, cfg, base, rng, -1, stop.Load, vlog.report); err != nil {
					vlog.report(err.Error())
				}
			})
		}(seed + int64(i))
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	if err := vlog.err("bank"); err != nil {
		return err
	}
	return tmtest.BankCheck(sys.Memory(), cfg, base)
}

// treeScenario: concurrent tree mutation must preserve the red-black
// invariants.
func treeScenario(sys tm.System, threads int, d time.Duration, seed int64) error {
	setup := sys.NewThread()
	cfg := tmtest.TreeConfig{}
	tree, err := tmtest.TreeSetup(setup, cfg)
	setup.Close()
	if err != nil {
		return err
	}
	var stop atomic.Bool
	var vlog violationLog
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			guard(&vlog, func() {
				th := sys.NewThread()
				defer th.Close()
				rng := rand.New(rand.NewSource(seed))
				if err := tmtest.TreeWorker(th, tree, cfg, rng, -1, stop.Load); err != nil {
					vlog.report(err.Error())
				}
			})
		}(seed + int64(i))
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	if err := vlog.err("rbtree"); err != nil {
		return err
	}
	check := sys.NewThread()
	defer check.Close()
	return tmtest.TreeCheck(check, tree)
}
