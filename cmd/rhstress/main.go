// Command rhstress is a randomized correctness harness: it drives every TM
// algorithm through high-contention invariant workloads (bank transfers
// with in-transaction invariant observation, a shared red-black tree with
// structural validation, and an allocation churn test) and reports any
// safety violation. Use it for long soak runs beyond what `go test`
// exercises.
//
// Usage:
//
//	rhstress -duration 10s -threads 8 [-algos rh-norec,hy-norec] [-spurious 0.001]
//
// Exit status is non-zero if any violation was detected.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rhnorec/internal/bench"
	"rhnorec/internal/htm"
	"rhnorec/internal/mem"
	"rhnorec/internal/rbtree"
	"rhnorec/internal/tm"
)

func main() {
	var (
		duration = flag.Duration("duration", 2*time.Second, "soak time per algorithm per scenario")
		threads  = flag.Int("threads", 8, "worker threads")
		algosCSV = flag.String("algos", "", "comma-separated algorithm subset (default: all)")
		spurious = flag.Float64("spurious", 0.001, "spurious HTM abort probability")
		tinyHTM  = flag.Bool("tiny-htm", false, "use tiny HTM capacities to force the slow paths")
	)
	flag.Parse()

	algos := bench.StandardAlgos()
	algos = append(algos,
		mustVariant("rh-noprefix"), mustVariant("rh-nopostfix"), mustVariant("rh-allsoft"),
		mustVariant("rh-tl2"), mustVariant("phased-tm"), mustVariant("hy-norec-lazy"), mustVariant("norec-lazy"))
	if *algosCSV != "" {
		algos = nil
		for _, name := range strings.Split(*algosCSV, ",") {
			algos = append(algos, mustVariant(strings.TrimSpace(name)))
		}
	}
	hcfg := htm.Config{SpuriousAbortProb: *spurious}
	if *tinyHTM {
		hcfg.ReadCapacityLines = 16
		hcfg.WriteCapacityLines = 8
	}

	failures := 0
	for _, algo := range algos {
		for _, scenario := range []struct {
			name string
			run  func(sys tm.System, threads int, d time.Duration) error
		}{
			{"bank", bankScenario},
			{"rbtree", treeScenario},
		} {
			m := mem.New(1 << 22)
			dev := htm.NewDevice(m, hcfg)
			dev.SetActiveThreads(*threads)
			sys := algo.New(m, dev, tm.RetryPolicy{})
			start := time.Now()
			err := scenario.run(sys, *threads, *duration)
			status := "ok"
			if err != nil {
				status = "FAIL: " + err.Error()
				failures++
			}
			fmt.Printf("%-14s %-8s %8s  %s\n", algo.Name, scenario.name, time.Since(start).Round(time.Millisecond), status)
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "rhstress: %d scenario(s) failed\n", failures)
		os.Exit(1)
	}
}

func mustVariant(name string) bench.Algo {
	a, ok := bench.AlgoByName(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "rhstress: unknown algorithm %q\n", name)
		os.Exit(2)
	}
	return a
}

// bankScenario: transfers must preserve the total, and every transaction
// (including read-only observers) must see a consistent snapshot.
func bankScenario(sys tm.System, threads int, d time.Duration) error {
	const accounts = 64
	const initial = 1000
	setup := sys.NewThread()
	var base mem.Addr
	if err := setup.Run(func(tx tm.Tx) error {
		base = tx.Alloc(accounts * mem.LineWords)
		for i := 0; i < accounts; i++ {
			tx.Store(base+mem.Addr(i*mem.LineWords), initial)
		}
		return nil
	}); err != nil {
		return err
	}
	setup.Close()
	acct := func(i int) mem.Addr { return base + mem.Addr(i*mem.LineWords) }
	var stop atomic.Bool
	var violations atomic.Uint64
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			th := sys.NewThread()
			defer th.Close()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				if rng.Intn(4) == 0 { // observer
					_ = th.RunReadOnly(func(tx tm.Tx) error {
						var sum uint64
						for k := 0; k < accounts; k++ {
							sum += tx.Load(acct(k))
						}
						if sum != accounts*initial {
							violations.Add(1)
						}
						return nil
					})
					continue
				}
				from, to := rng.Intn(accounts), rng.Intn(accounts)
				amt := uint64(rng.Intn(20))
				_ = th.Run(func(tx tm.Tx) error {
					bf := tx.Load(acct(from))
					if bf < amt || from == to {
						return nil
					}
					tx.Store(acct(from), bf-amt)
					tx.Store(acct(to), tx.Load(acct(to))+amt)
					return nil
				})
			}
		}(int64(i + 1))
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	if v := violations.Load(); v != 0 {
		return fmt.Errorf("bank: %d opacity violations", v)
	}
	m := sys.Memory()
	var total uint64
	for i := 0; i < accounts; i++ {
		total += m.LoadPlain(acct(i))
	}
	if total != accounts*initial {
		return fmt.Errorf("bank: total %d, want %d", total, accounts*initial)
	}
	return nil
}

// treeScenario: concurrent tree mutation must preserve the red-black
// invariants.
func treeScenario(sys tm.System, threads int, d time.Duration) error {
	setup := sys.NewThread()
	var tree rbtree.Tree
	if err := setup.Run(func(tx tm.Tx) error {
		tree = rbtree.New(tx)
		for k := uint64(0); k < 128; k++ {
			tree.Put(tx, k*2, k)
		}
		return nil
	}); err != nil {
		return err
	}
	setup.Close()
	var stop atomic.Bool
	var wg sync.WaitGroup
	var opErr atomic.Value
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			th := sys.NewThread()
			defer th.Close()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				k := uint64(rng.Intn(256))
				var err error
				switch rng.Intn(10) {
				case 0, 1, 2:
					err = th.Run(func(tx tm.Tx) error { tree.Put(tx, k, k); return nil })
				case 3, 4:
					err = th.Run(func(tx tm.Tx) error { tree.Delete(tx, k); return nil })
				default:
					err = th.RunReadOnly(func(tx tm.Tx) error { tree.Get(tx, k); return nil })
				}
				if err != nil {
					opErr.Store(err)
					return
				}
			}
		}(int64(i + 1))
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	if err, _ := opErr.Load().(error); err != nil {
		return err
	}
	check := sys.NewThread()
	defer check.Close()
	return check.Run(func(tx tm.Tx) error { return tree.CheckInvariants(tx) })
}
