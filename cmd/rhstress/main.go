// Command rhstress is a randomized correctness harness: it drives every TM
// algorithm through the shared conformance registry's high-contention
// invariant workloads (internal/conformance: bank transfers, the red-black
// tree, the session store, the rate limiter, the inventory checkout, the
// graph fan-out) and reports any safety violation. Use it for long soak
// runs beyond what `go test` exercises; for deterministic exploration of
// the same workloads, see cmd/rhexplore.
//
// Usage:
//
//	rhstress -duration 10s -threads 8 [-algos rh-norec,hy-norec] \
//	         [-scenarios bank,session] [-spurious 0.001] [-seed 1]
//	rhstress -list
//
// Every run prints its seed so a failure reproduces with the same flags.
// A panic in a worker goroutine is recovered, counted as a violation and
// reported in the summary instead of killing the process mid-print.
// Exit status is non-zero if any violation was detected.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"rhnorec/internal/bench"
	"rhnorec/internal/conformance"
	"rhnorec/internal/htm"
	"rhnorec/internal/mem"
	"rhnorec/internal/tm"
)

func main() {
	var (
		duration  = flag.Duration("duration", 2*time.Second, "soak time per algorithm per scenario")
		threads   = flag.Int("threads", 8, "worker threads")
		algosCSV  = flag.String("algos", "", "comma-separated algorithm subset (default: all)")
		scensCSV  = flag.String("scenarios", "", "comma-separated scenario subset (default: the whole registry)")
		listScens = flag.Bool("list", false, "list the registered scenarios and exit")
		spurious  = flag.Float64("spurious", 0.001, "spurious HTM abort probability")
		tinyHTM   = flag.Bool("tiny-htm", false, "use tiny HTM capacities to force the slow paths")
		seed      = flag.Int64("seed", 1, "base RNG seed (worker i uses seed+i)")
	)
	flag.Parse()

	if *listScens {
		for _, sc := range conformance.Scenarios() {
			fmt.Printf("%-10s %s\n", sc.Name, sc.Description)
			fmt.Printf("%-10s contention: %s\n", "", sc.Profile.Contention)
		}
		return
	}

	algos := bench.StandardAlgos()
	algos = append(algos,
		mustVariant("rh-noprefix"), mustVariant("rh-nopostfix"), mustVariant("rh-allsoft"),
		mustVariant("rh-tl2"), mustVariant("phased-tm"), mustVariant("hy-norec-lazy"), mustVariant("norec-lazy"))
	if *algosCSV != "" {
		algos = nil
		for _, name := range strings.Split(*algosCSV, ",") {
			algos = append(algos, mustVariant(strings.TrimSpace(name)))
		}
	}
	scenarios := conformance.Scenarios()
	if *scensCSV != "" {
		scenarios = nil
		for _, name := range strings.Split(*scensCSV, ",") {
			sc, ok := conformance.ByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "rhstress: unknown scenario %q (have %v)\n", name, conformance.Names())
				os.Exit(2)
			}
			scenarios = append(scenarios, sc)
		}
	}
	hcfg := htm.Config{SpuriousAbortProb: *spurious}
	if *tinyHTM {
		hcfg.ReadCapacityLines = 16
		hcfg.WriteCapacityLines = 8
	}

	fmt.Printf("rhstress: seed=%d threads=%d spurious=%g\n", *seed, *threads, *spurious)
	failures := 0
	for _, algo := range algos {
		for _, sc := range scenarios {
			m := mem.New(1 << 22)
			dev := htm.NewDevice(m, hcfg)
			dev.SetActiveThreads(*threads)
			sys := algo.New(m, dev, tm.RetryPolicy{})
			start := time.Now()
			err := sc.Drive(sys, conformance.ScaleSoak, *threads, -1, *duration, *seed)
			status := "ok"
			if err != nil {
				status = "FAIL: " + err.Error()
				failures++
			}
			fmt.Printf("%-14s %-10s %8s  %s\n", algo.Name, sc.Name, time.Since(start).Round(time.Millisecond), status)
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "rhstress: %d scenario(s) failed (seed %d)\n", failures, *seed)
		os.Exit(1)
	}
}

func mustVariant(name string) bench.Algo {
	a, ok := bench.AlgoByName(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "rhstress: unknown algorithm %q\n", name)
		os.Exit(2)
	}
	return a
}
