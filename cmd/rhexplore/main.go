// Command rhexplore explores schedules of the TM systems deterministically:
// seeded random-priority search (PCT), preemption-bounded exhaustive DFS,
// fault injection, trace record/replay, and counterexample shrinking.
//
//	rhexplore -scenario bank -algo rh-norec -strategy pct -seeds 200
//	rhexplore -scenario htm-opacity -bug skip-validation -expect-violation -max-shrunk-steps 12
//	rhexplore -scenario bank -algo hy-norec -strategy dfs -depth 2 -dfs-max-runs 2000
//	rhexplore -replay trace.json
//
// Exit status is 0 when the run matched expectations (no violation found,
// or -expect-violation and one was found and shrunk within bounds; for
// -replay, a certified reproduction) and 1 otherwise.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rhnorec/internal/bench"
	"rhnorec/internal/explore"
)

func main() {
	var (
		scenario = flag.String("scenario", "bank", "scenario to explore (see -list)")
		algo     = flag.String("algo", "rh-norec", "TM algorithm for TM scenarios (see -list)")
		strategy = flag.String("strategy", "pct", "exploration strategy: pct | dfs")
		seeds    = flag.Int("seeds", 100, "pct: number of seeds to try")
		seed0    = flag.Uint64("seed0", 1, "pct: first seed")
		pctDepth = flag.Int("pct-depth", 3, "pct: bug depth d (d-1 priority change points)")
		pctHoriz = flag.Int("pct-horizon", 256, "pct: change-point horizon in steps")
		depth    = flag.Int("depth", 2, "dfs: preemption bound")
		dfsRuns  = flag.Int("dfs-max-runs", 2000, "dfs: max runs (0 = unbounded)")
		workers  = flag.Int("workers", 0, "worker count (0 = scenario default)")
		ops      = flag.Int("ops", 0, "ops per worker (0 = scenario default)")
		steps    = flag.Int("steps", 0, "max scheduler steps per run (0 = default)")
		faultPct = flag.Float64("fault-rate", 0, "pct: per-step injected-abort probability")
		bug      = flag.String("bug", "", "planted bug to enable (see -list)")
		record   = flag.String("record", "", "write a trace of the outcome to this file")
		replay   = flag.String("replay", "", "replay and certify a recorded trace instead of exploring")
		expect   = flag.Bool("expect-violation", false, "succeed only if a violation is found (CI planted-bug gate)")
		maxShr   = flag.Int("max-shrunk-steps", 0, "with -expect-violation: fail if the shrunk schedule exceeds this many steps")
		budget   = flag.Int("shrink-budget", 2000, "max replays the shrinker may spend")
		list     = flag.Bool("list", false, "list scenarios, algorithms and planted bugs, then exit")
		verbose  = flag.Bool("v", false, "print full event traces")
	)
	flag.Parse()

	if *list {
		fmt.Printf("scenarios: %s\n", strings.Join(explore.ScenarioNames(), ", "))
		var algos []string
		seen := map[string]bool{}
		for _, a := range append(bench.StandardAlgos(), bench.RHVariants()...) {
			if !seen[a.Name] {
				seen[a.Name] = true
				algos = append(algos, a.Name)
			}
		}
		fmt.Printf("algorithms: %s\n", strings.Join(algos, ", "))
		fmt.Printf("bugs: %s\n", strings.Join(explore.Bugs(), ", "))
		return
	}

	if *replay != "" {
		os.Exit(doReplay(*replay, *expect, *verbose))
	}

	cfg := explore.Config{
		Scenario: *scenario,
		Algo:     *algo,
		Workers:  *workers,
		Ops:      *ops,
		MaxSteps: *steps,
		Bug:      *bug,
	}
	if _, err := cfg.Normalize(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var (
		found *explore.Found
		runs  int
		err   error
	)
	switch *strategy {
	case "pct":
		fmt.Printf("pct: scenario=%s algo=%s seeds=%d..%d depth=%d fault-rate=%g bug=%q\n",
			*scenario, *algo, *seed0, *seed0+uint64(*seeds)-1, *pctDepth, *faultPct, *bug)
		found, runs, err = explore.ExplorePCT(cfg, *seed0, *seeds, *pctDepth, *pctHoriz, *faultPct)
	case "dfs":
		fmt.Printf("dfs: scenario=%s algo=%s preemption-bound=%d max-runs=%d bug=%q\n",
			*scenario, *algo, *depth, *dfsRuns, *bug)
		var complete bool
		found, runs, complete, err = explore.ExploreDFS(cfg, *depth, *dfsRuns)
		if err == nil && found == nil {
			if complete {
				fmt.Printf("search space exhausted: every schedule within %d preemption(s) is safe\n", *depth)
			} else {
				fmt.Printf("run budget exhausted before completing the bounded space\n")
			}
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown -strategy %q (want pct or dfs)\n", *strategy)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if found == nil {
		fmt.Printf("no violation in %d run(s)\n", runs)
		if *record != "" {
			if code := recordOne(cfg, *seed0, *pctDepth, *pctHoriz, *faultPct, *record); code != 0 {
				os.Exit(code)
			}
		}
		if *expect {
			fmt.Fprintln(os.Stderr, "FAIL: expected a violation, found none")
			os.Exit(1)
		}
		return
	}

	fmt.Printf("VIOLATION after %d run(s)", runs)
	if found.Seed != 0 {
		fmt.Printf(" (seed %d)", found.Seed)
	}
	fmt.Printf(", %d steps: %s\n", found.Result.Steps, found.Result.Violation)
	if *verbose {
		fmt.Print(explore.FormatTrace(found.Result))
	}

	sr, ok := explore.Shrink(cfg, found.Result.Choices, *budget)
	if !ok {
		fmt.Fprintln(os.Stderr, "shrink failed to reproduce the violation (determinism bug?)")
		os.Exit(1)
	}
	fmt.Printf("shrunk to %d steps in %d replay(s):\n", len(sr.Choices), sr.Runs)
	fmt.Print(explore.FormatTrace(sr.Result))
	if *record != "" {
		tr := explore.NewTrace(cfg, sr.Result)
		if err := tr.Save(*record); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("recorded %s\n", *record)
	}

	if *expect {
		if *maxShr > 0 && len(sr.Choices) > *maxShr {
			fmt.Fprintf(os.Stderr, "FAIL: shrunk schedule has %d steps, limit %d\n", len(sr.Choices), *maxShr)
			os.Exit(1)
		}
		fmt.Println("ok: violation found and shrunk as expected")
		return
	}
	os.Exit(1)
}

// recordOne runs the first seed once and saves its trace — fixture
// generation for replay tests.
func recordOne(cfg explore.Config, seed uint64, depth, horizon int, faultRate float64, path string) int {
	norm, err := cfg.Normalize()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	res, err := explore.RunOnce(cfg, explore.NewPCT(seed, norm.Workers, depth, horizon, faultRate))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	tr := explore.NewTrace(cfg, res)
	if err := tr.Save(path); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	fmt.Printf("recorded seed-%d run (%s, %d steps) to %s\n", seed, res.Outcome, res.Steps, path)
	return 0
}

// doReplay certifies a recorded trace: same outcome, same event digest.
func doReplay(path string, expect, verbose bool) int {
	tr, err := explore.LoadTrace(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	fmt.Printf("replaying %s: scenario=%s algo=%s recorded outcome=%s hash=%s\n",
		path, tr.Scenario, tr.Algo, tr.Outcome, tr.EventsHash)
	res, err := tr.Replay()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if verbose {
		fmt.Print(explore.FormatTrace(res))
	}
	fmt.Printf("certified: outcome %s reproduced, events hash matches\n", res.Outcome)
	if expect && res.Outcome != explore.OutcomeViolation {
		fmt.Fprintln(os.Stderr, "FAIL: expected a violation outcome")
		return 1
	}
	return 0
}
