// Command rhbench regenerates the paper's evaluation figures over the
// simulated-HTM substrate.
//
// Usage:
//
//	rhbench -experiment fig4            # RBTree, 4/10/40% mutations
//	rhbench -experiment fig5            # Vacation-Low, Intruder, Genome
//	rhbench -experiment fig6            # Vacation-High, SSCA2, Yada
//	rhbench -experiment extra           # Kmeans, Labyrinth
//	rhbench -experiment structures      # rbtree vs skiplist vs sortedlist
//	rhbench -experiment ablation        # RH NOrec design-choice ablations
//	rhbench -experiment disjoint        # per-thread private lines (striping scaling)
//	rhbench -experiment contention      # hotspot vs disjoint under policy variants
//	rhbench -experiment signature       # sig-filter / group-commit ablation grid
//	rhbench -experiment persist         # durability overhead: off vs group fsync vs fsync-per-commit
//	rhbench -experiment scenarios       # conformance-registry scenarios, invariant-checked
//	rhbench -experiment all             # fig4+fig5+fig6+extra
//	rhbench -experiment list            # list workloads and algorithms
//
// -experiment also accepts a comma-separated list (fig4,disjoint).
//
// Useful knobs: -duration per point, -repeat N (median of N runs),
// -threads CSV sweep, -algos CSV subset, -stripes N memory seqlock stripe
// count (1 reproduces the pre-striping single-clock substrate), -sigbits N
// write-signature bloom width (0 = off), -combine slow-path group commit,
// -spurious
// environmental-abort probability, -falseconf bloom false-conflict
// probability, -swcost instrumentation-cost units, -tsv machine-readable
// rows, -json FILE machine-readable point dump (ops/sec per system per
// thread count).
//
// Contention management (docs/POLICY.md): -policy static|backoff|adaptive
// selects the retry-policy kind (default: static, overridable via the
// RHNOREC_POLICY environment variable), -retries the fast-path retry
// budget, -backoff the base backoff bound in scheduler yields.
//
// Durability (docs/PERSIST.md): -persist group|sync arms the redo-log
// persistence plane on every point — each point logs its commits to a
// throwaway directory and durable-acks every operation (default: off, or
// RHNOREC_PERSIST). The persist experiment ignores the flag and sweeps the
// three modes side by side; CI gates it against the BENCH_7.json baseline.
//
// CI perf gate: -compare BASELINE.json re-checks this run's points against
// a baseline dump and exits non-zero when any point is missing or fell
// below 1 - -compare-tolerance of its baseline throughput;
// -compare-normalize divides each dump by its own median throughput first,
// so the gate tracks relative shape rather than machine speed.
//
// Observability (docs/METRICS.md): -obs attaches per-thread latency
// histograms and the abort-cause taxonomy to every worker and embeds the
// merged snapshot in each -json point; -trace FILE additionally attaches
// per-thread event rings (-ringsize entries each) and writes their drained
// contents for cmd/rhtrace to replay.
//
// Throughput numbers are simulator-relative: compare algorithms at equal thread
// counts, not against the paper's absolute Haswell numbers (see
// EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"rhnorec/internal/bench"
	"rhnorec/internal/htm"
	"rhnorec/internal/obs"
	"rhnorec/internal/tm"
)

func main() {
	var (
		experiment = flag.String("experiment", "list", "fig4 | fig5 | fig6 | extra | structures | ablation | disjoint | contention | signature | persist | scenarios | all | list (comma-separated ok)")
		duration   = flag.Duration("duration", 150*time.Millisecond, "measurement time per benchmark point")
		threadsCSV = flag.String("threads", "1,2,4,8,12,16", "thread counts to sweep")
		algosCSV   = flag.String("algos", "", "comma-separated algorithm subset (default: the paper's five)")
		stripes    = flag.Int("stripes", 0, "memory seqlock stripe count (0 = default; 1 reproduces the single-clock substrate)")
		sigBits    = flag.Int("sigbits", 0, "write-signature bloom width in bits (0 = off; clamped to a power of two in [64,256]); lets validators skip provably-disjoint value sweeps")
		combine    = flag.Bool("combine", false, "enable slow-path group commit (flat combining) on the algorithms that support it")
		spurious   = flag.Float64("spurious", 0.002, "per-operation spurious (environmental) HTM abort probability")
		falseConf  = flag.Float64("falseconf", 0, "bloom-filter false-conflict probability per revalidation (hardware model ablation)")
		tsv        = flag.Bool("tsv", false, "emit tab-separated rows instead of paper-style tables")
		repeat     = flag.Int("repeat", 1, "runs per point; the median-throughput run is reported")
		swcost     = flag.Int("swcost", tm.DefaultSoftwareAccessCost, "instrumentation-cost units per software-path access (see DESIGN.md)")
		jsonPath   = flag.String("json", "", "also write every benchmark point to this file as a versioned JSON dump (see docs/METRICS.md)")
		obsOn      = flag.Bool("obs", false, "attach observability recorders (per-phase latency histograms, abort-cause taxonomy); adds an obs snapshot to each -json point")
		tracePath  = flag.String("trace", "", "write per-thread event-ring traces to this file (implies -obs plus rings; replay with rhtrace)")
		ringSize   = flag.Int("ringsize", 2048, "events held per thread ring for -trace")
		verbose    = flag.Bool("v", false, "print each point as it completes")

		policyName  = flag.String("policy", "", "contention policy kind: static | backoff | adaptive (default: static, or $RHNOREC_POLICY)")
		persistName = flag.String("persist", "", "durability mode for every point: group | sync | off (default: off, or $RHNOREC_PERSIST); armed points redo-log commits and durable-ack each op")
		retries     = flag.Int("retries", 0, "fast-path HTM retry budget before fallback (0 = paper default)")
		backoffBase = flag.Int("backoff", 0, "base backoff bound in scheduler yields for the randomized policies (0 = default)")

		comparePath = flag.String("compare", "", "baseline rhbench JSON dump to gate this run against (exit 1 on regression)")
		compareTol  = flag.Float64("compare-tolerance", 0.25, "allowed fractional throughput drop per point before -compare fails")
		compareNorm = flag.Bool("compare-normalize", false, "normalize each dump by its own median throughput before comparing (machine-speed independent)")
	)
	flag.Parse()
	tm.SetSoftwareAccessCost(*swcost)

	if *experiment == "list" {
		fmt.Println("experiments: fig4 fig5 fig6 extra structures ablation disjoint contention signature persist scenarios all")
		fmt.Print("algorithms:")
		for _, a := range bench.StandardAlgos() {
			fmt.Printf(" %s", a.Name)
		}
		fmt.Print("\nablation variants:")
		for _, a := range bench.RHVariants() {
			fmt.Printf(" %s", a.Name)
		}
		fmt.Print("\npolicy variants:")
		for _, a := range bench.PolicyVariants() {
			fmt.Printf(" %s", a.Name)
		}
		fmt.Print("\nsignature variants:")
		for _, a := range bench.SignatureVariants(0) {
			fmt.Printf(" %s", a.Name)
		}
		fmt.Print("\npersist variants:")
		for _, a := range bench.PersistVariants() {
			fmt.Printf(" %s", a.Name)
		}
		fmt.Println()
		return
	}

	threads, err := parseThreads(*threadsCSV)
	if err != nil {
		fatal(err)
	}
	cfg := bench.FigureConfig{
		Threads:  threads,
		Duration: *duration,
		Stripes:  *stripes,
		SigBits:  *sigBits,
		Combine:  *combine,
		HTM:      htm.Config{SpuriousAbortProb: *spurious, FalseConflictProb: *falseConf},
		TSV:      *tsv,
		Repeat:   *repeat,
		Obs:      *obsOn || *tracePath != "",
	}
	if *policyName != "" {
		k, ok := tm.PolicyKindByName(*policyName)
		if !ok {
			fatal(fmt.Errorf("unknown -policy %q (want static, backoff or adaptive)", *policyName))
		}
		cfg.Policy.Kind = k
	}
	if *retries > 0 {
		cfg.Policy.MaxHTMRetries = *retries
	}
	if *backoffBase > 0 {
		cfg.Policy.BackoffBaseYields = *backoffBase
	}
	if *persistName != "" {
		mode, ok := tm.PersistModeByName(*persistName)
		if !ok {
			fatal(fmt.Errorf("unknown -persist %q (want group, sync or off)", *persistName))
		}
		cfg.Policy.Persist = mode
	}
	if *tracePath != "" {
		if *ringSize <= 0 {
			fatal(fmt.Errorf("-trace needs -ringsize > 0, got %d", *ringSize))
		}
		cfg.ObsRing = *ringSize
	}
	if *algosCSV != "" {
		for _, name := range strings.Split(*algosCSV, ",") {
			a, ok := bench.AlgoByName(strings.TrimSpace(name))
			if !ok {
				fatal(fmt.Errorf("unknown algorithm %q", name))
			}
			cfg.Algos = append(cfg.Algos, a)
		}
	}
	var rec *bench.JSONRecorder
	var jsonFile *os.File
	if *comparePath != "" {
		// The gate needs every point recorded even without -json.
		rec = new(bench.JSONRecorder)
	}
	if *jsonPath != "" {
		// Open the output up front: a bad path should fail before the sweep
		// runs, not after.
		f, err := os.Create(*jsonPath)
		if err != nil {
			fatal(err)
		}
		jsonFile = f
		rec = new(bench.JSONRecorder)
	}
	var traces []obs.Trace
	var traceFile *os.File
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		traceFile = f
	}
	if *verbose || rec != nil || traceFile != nil {
		cfg.Progress = func(r bench.Result) {
			if rec != nil {
				rec.Record(r)
			}
			if traceFile != nil {
				traces = append(traces, obs.Trace{
					Workload: r.Workload, Algo: r.Algo, Threads: r.Threads, Rings: r.Trace,
				})
			}
			if *verbose {
				fmt.Fprintf(os.Stderr, "  %-14s %-14s t=%-3d %12.0f ops/s\n", r.Workload, r.Algo, r.Threads, r.Throughput)
			}
		}
	}

	run := func(name string) error {
		switch name {
		case "fig4":
			return bench.Figure4(os.Stdout, cfg)
		case "fig5":
			return bench.Figure5(os.Stdout, cfg)
		case "fig6":
			return bench.Figure6(os.Stdout, cfg)
		case "extra":
			return bench.Extra(os.Stdout, cfg)
		case "structures":
			return bench.Structures(os.Stdout, cfg)
		case "disjoint":
			return bench.DisjointFigure(os.Stdout, cfg)
		case "contention":
			return bench.ContentionFigure(os.Stdout, cfg)
		case "signature":
			return bench.SignatureFigure(os.Stdout, cfg)
		case "persist":
			return bench.PersistFigure(os.Stdout, cfg)
		case "scenarios":
			return bench.ScenariosFigure(os.Stdout, cfg)
		case "ablation":
			acfg := cfg
			if *algosCSV == "" {
				acfg.Algos = bench.RHVariants()
			}
			return bench.Figure4(os.Stdout, acfg)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
	}

	var names []string
	for _, n := range strings.Split(*experiment, ",") {
		n = strings.TrimSpace(n)
		if n == "all" {
			names = append(names, "fig4", "fig5", "fig6", "extra")
			continue
		}
		names = append(names, n)
	}
	for _, n := range names {
		if err := run(n); err != nil {
			fatal(err)
		}
	}
	if rec != nil && jsonFile != nil {
		if err := rec.WriteJSON(jsonFile); err != nil {
			jsonFile.Close()
			fatal(err)
		}
		if err := jsonFile.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "rhbench: wrote %d points to %s\n", rec.Len(), *jsonPath)
	}
	if traceFile != nil {
		if err := bench.WriteTraces(traceFile, traces); err != nil {
			traceFile.Close()
			fatal(err)
		}
		if err := traceFile.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "rhbench: wrote %d traces to %s\n", len(traces), *tracePath)
	}
	if *comparePath != "" {
		baseline, err := bench.LoadDump(*comparePath)
		if err != nil {
			fatal(err)
		}
		deltas := bench.Compare(baseline, rec.Dump(), *compareNorm)
		bad := bench.Regressions(deltas, *compareTol)
		for _, d := range bad {
			fmt.Fprintf(os.Stderr, "rhbench: REGRESSION %s\n", d)
		}
		if len(bad) > 0 {
			fatal(fmt.Errorf("%d of %d baseline points regressed beyond tolerance %.0f%%",
				len(bad), len(deltas), *compareTol*100))
		}
		fmt.Fprintf(os.Stderr, "rhbench: compare ok: %d baseline points within tolerance %.0f%% of %s\n",
			len(deltas), *compareTol*100, *comparePath)
	}
}

func parseThreads(csv string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(csv, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad thread count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rhbench:", err)
	os.Exit(1)
}
