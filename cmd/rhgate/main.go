// Command rhgate evaluates SLO gate specs (internal/conformance/gate)
// over benchmark and service dumps and renders one pass/fail table. It is
// CI's single thresholding point: the perf and conformance bounds live in
// a reviewed spec file (gates/ci.json), not in inline shell.
//
// Usage:
//
//	rhgate -spec gates/ci.json -dump contention=contention.json \
//	       -dump scenarios=scenarios.json [-gates bench-regress,conformance] \
//	       [-md summary.md] [-json report.json]
//
// Each -dump NAME=PATH binds one logical dump name (Gate.Dump in the
// spec) to a file; a gate whose dump is unbound fails. -gates restricts
// evaluation to a comma-separated subset of the spec's gates (default:
// every gate). The text table always goes to stdout; -md additionally
// writes the markdown rendering (for $GITHUB_STEP_SUMMARY) and -json the
// machine-readable rhgate.v1 report.
//
// Exit status: 0 when every evaluated cell passes, 1 on any red cell or
// gate error, 2 on usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"rhnorec/internal/conformance/gate"
)

// dumpFlags collects repeated -dump NAME=PATH bindings.
type dumpFlags map[string]string

func (d dumpFlags) String() string {
	var parts []string
	for k, v := range d {
		parts = append(parts, k+"="+v)
	}
	return strings.Join(parts, ",")
}

func (d dumpFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want NAME=PATH, got %q", v)
	}
	if _, dup := d[name]; dup {
		return fmt.Errorf("dump %q bound twice", name)
	}
	d[name] = path
	return nil
}

func main() {
	dumps := dumpFlags{}
	var (
		specPath = flag.String("spec", "", "gate spec file (rhgate-spec.v1)")
		gatesCSV = flag.String("gates", "", "comma-separated gate subset (default: every gate in the spec)")
		mdPath   = flag.String("md", "", "also write the markdown table to FILE (for CI job summaries)")
		jsonPath = flag.String("json", "", "also write the machine-readable rhgate.v1 report to FILE")
	)
	flag.Var(dumps, "dump", "bind a logical dump name to a file, as NAME=PATH (repeatable)")
	flag.Parse()
	if *specPath == "" {
		fmt.Fprintln(os.Stderr, "rhgate: -spec is required")
		flag.Usage()
		os.Exit(2)
	}

	spec, err := gate.LoadSpec(*specPath)
	if err != nil {
		fatalf("%v", err)
	}
	in := gate.Inputs{SpecDir: filepath.Dir(*specPath), Dumps: dumps}
	if *gatesCSV != "" {
		for _, g := range strings.Split(*gatesCSV, ",") {
			in.Gates = append(in.Gates, strings.TrimSpace(g))
		}
	}
	rep, err := gate.Evaluate(spec, in)
	if err != nil {
		fatalf("%v", err)
	}

	gate.WriteText(os.Stdout, rep)
	if *mdPath != "" {
		f, err := os.Create(*mdPath)
		if err != nil {
			fatalf("%v", err)
		}
		gate.WriteMarkdown(f, rep)
		if err := f.Close(); err != nil {
			fatalf("%v", err)
		}
	}
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fatalf("%v", err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			fatalf("%v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("%v", err)
		}
	}
	if !rep.Pass {
		os.Exit(1)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rhgate: "+format+"\n", args...)
	os.Exit(2)
}
