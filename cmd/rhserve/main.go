// Command rhserve runs the network-facing transactional KV service: the
// striped word arena behind a GET/PUT/CAS/SCAN/TXN surface, served over
// HTTP/JSON and the length-prefixed binary protocol on one listener
// (docs/SERVE.md is the operator manual).
//
// Usage:
//
//	rhserve                              # rh-norec, :7421, 64Ki keys
//	rhserve -addr 127.0.0.1:0 -algo hybrid-norec -workers 8
//	rhserve -policy adaptive -queue 128 -batch 32 -timeout 250ms
//
// Knobs: -addr listen address, -algo TM system (rhbench -experiment list
// vocabulary), -keys KV slots, -workers sticky worker pool size (default:
// simulated core count), -queue per-worker queue depth, -batch max requests
// fused into one transaction, -timeout queued-request deadline, -retryafter
// shed backoff hint, -policy static|backoff|adaptive contention management,
// -stripes memory seqlock stripes, -sigbits write-signature bloom width,
// -ringsize per-worker event-ring entries, -pprof mounts net/http/pprof
// under /debug/pprof/ (opt-in profiling).
//
// Durability (docs/PERSIST.md): -data <dir> arms the redo-log persistence
// plane — boot replays the directory's logs (crash recovery) and committing
// writes append to them; requires -algo rh-norec. -persist group|sync picks
// group fsync vs fsync-per-commit (default: group, or RHNOREC_PERSIST).
// -durable makes every write request wait for its fsync before the reply
// (per-connection opt-in exists on the binary protocol via OpcodeDurable).
//
// Observability: GET /metrics is the human-readable counter page;
// GET /metrics?format=json is the rhserve.v1 dump (docs/METRICS.md),
// validated in CI by bench.ValidateDump and consumed by cmd/rhload.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rhnorec/internal/htm"
	"rhnorec/internal/serve"
	"rhnorec/internal/tm"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7421", "listen address (host:port; port 0 picks one)")
		algo       = flag.String("algo", "rh-norec", "TM algorithm backing the store")
		keys       = flag.Int("keys", 1<<16, "number of KV slots")
		workers    = flag.Int("workers", 0, "sticky worker pool size (0 = simulated core count)")
		queue      = flag.Int("queue", 256, "per-worker queue depth")
		batch      = flag.Int("batch", 16, "max requests fused into one transaction")
		timeout    = flag.Duration("timeout", time.Second, "queued-request deadline")
		retryAfter = flag.Duration("retryafter", time.Second, "shed backoff hint")
		policy     = flag.String("policy", "", "contention policy: static|backoff|adaptive (default: tm default / RHNOREC_POLICY)")
		stripes    = flag.Int("stripes", 0, "memory seqlock stripes (0 = default)")
		sigbits    = flag.Int("sigbits", 0, "write-signature bloom width (0 = off)")
		ringSize   = flag.Int("ringsize", 0, "per-worker event-ring entries (0 = off)")
		cores      = flag.Int("cores", 0, "simulated HTM cores (0 = default)")
		pprofFlag  = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the service mux")
		dataDir    = flag.String("data", "", "redo-log directory: arms durable persistence + boot crash recovery")
		persistStr = flag.String("persist", "", "durability mode with -data: group|sync (default: group / RHNOREC_PERSIST)")
		durable    = flag.Bool("durable", false, "every write request waits for its fsync before the reply")
	)
	flag.Parse()

	pol := tm.DefaultPolicy()
	if *policy != "" {
		kind, ok := tm.PolicyKindByName(*policy)
		if !ok {
			fmt.Fprintf(os.Stderr, "rhserve: unknown policy %q (want static|backoff|adaptive)\n", *policy)
			os.Exit(2)
		}
		pol.Kind = kind
	}
	if *persistStr != "" {
		mode, ok := tm.PersistModeByName(*persistStr)
		if !ok {
			fmt.Fprintf(os.Stderr, "rhserve: unknown persist mode %q (want group|sync)\n", *persistStr)
			os.Exit(2)
		}
		pol.Persist = mode
	}
	hcfg := htm.Config{}
	if *cores > 0 {
		hcfg.Cores = *cores
	}
	s, err := serve.New(serve.Config{
		Algo:           *algo,
		Keys:           *keys,
		Stripes:        *stripes,
		HTM:            hcfg,
		Policy:         pol,
		Workers:        *workers,
		QueueDepth:     *queue,
		BatchMax:       *batch,
		RequestTimeout: *timeout,
		RetryAfter:     *retryAfter,
		RingSize:       *ringSize,
		SigBits:        *sigbits,
		Pprof:          *pprofFlag,
		DataDir:        *dataDir,
		DurableAcks:    *durable,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rhserve: %v\n", err)
		os.Exit(1)
	}
	if stats, on := s.Recovery(); on {
		fmt.Printf("rhserve: recovered %s: replayed %d commits (%d records) to seq %d, dropped %d, torn tails %d\n",
			*dataDir, stats.Commits, stats.Records, stats.Seq, stats.Dropped, stats.TornTails)
	}
	bound, err := s.Start(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rhserve: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("rhserve: %s on %s (%d keys, %d workers)\n", s.Algo(), bound, s.Keys(), s.Workers())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("rhserve: shutting down")
	s.Close()
}
