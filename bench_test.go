// Benchmarks regenerating the paper's evaluation (one target per figure
// column, each with one sub-benchmark per TM algorithm), plus the ablation
// benchmarks for the design choices called out in DESIGN.md §5.
//
// Run everything:      go test -bench=. -benchmem
// One figure:          go test -bench=BenchmarkFigure4
// Custom metrics reported per sub-benchmark: hardware conflict and capacity
// aborts per committed operation, slow-path ratio, and (for RH NOrec)
// prefix/postfix success ratios — the analysis rows of Figures 4–6.
//
// Absolute ns/op is simulator-relative; compare algorithms within a
// sub-benchmark group, not against the paper's Haswell numbers (see
// EXPERIMENTS.md). The full thread sweeps behind EXPERIMENTS.md come from
// cmd/rhbench, which runs duration-based points; these testing.B targets
// exercise the identical workload/algorithm matrix in op-count form.
package rhnorec_test

import (
	"sync"
	"testing"

	"rhnorec/internal/bench"
	"rhnorec/internal/htm"
	"rhnorec/internal/mem"
	"rhnorec/internal/tm"
)

// benchThreads is the worker count for all benchmark targets: the paper's
// physical-core count.
const benchThreads = 8

// benchHTM mirrors the figure runs: default capacities plus the
// environmental-abort rate that drives realistic fallback ratios.
func benchHTM() htm.Config { return htm.Config{SpuriousAbortProb: 0.002} }

// runWorkload drives b.N operations of the workload across benchThreads
// workers on the given algorithm and reports the paper's analysis rows as
// custom metrics.
func runWorkload(b *testing.B, factory bench.WorkloadFactory, algo bench.Algo, pol tm.RetryPolicy) {
	b.Helper()
	m := mem.New(1 << 22)
	dev := htm.NewDevice(m, benchHTM())
	dev.SetActiveThreads(benchThreads)
	sys := algo.New(m, dev, pol)
	w := factory()
	setup := sys.NewThread()
	if err := w.Setup(setup); err != nil {
		b.Fatal(err)
	}
	setup.Close()
	b.ResetTimer()
	var wg sync.WaitGroup
	var agg tm.Stats
	var mu sync.Mutex
	per := b.N / benchThreads
	for i := 0; i < benchThreads; i++ {
		n := per
		if i == 0 {
			n += b.N % benchThreads
		}
		wg.Add(1)
		go func(seed int64, n int) {
			defer wg.Done()
			th := sys.NewThread()
			defer th.Close()
			op := w.NewOp(th, seed)
			for j := 0; j < n; j++ {
				if err := op(); err != nil {
					b.Error(err)
					return
				}
			}
			mu.Lock()
			agg.Add(th.Stats())
			mu.Unlock()
		}(int64(i)*2654435761+1, n)
	}
	wg.Wait()
	b.StopTimer()
	b.ReportMetric(agg.ConflictAbortsPerOp(), "conflicts/op")
	b.ReportMetric(agg.CapacityAbortsPerOp(), "capacity/op")
	b.ReportMetric(agg.SlowPathRatio(), "slowpath-ratio")
	if agg.PrefixAttempts > 0 || agg.PostfixAttempts > 0 {
		b.ReportMetric(agg.PrefixSuccessRatio(), "prefix-succ")
		b.ReportMetric(agg.PostfixSuccessRatio(), "postfix-succ")
	}
}

// benchAllAlgos runs the workload under every algorithm the paper compares.
func benchAllAlgos(b *testing.B, factory bench.WorkloadFactory) {
	b.Helper()
	for _, algo := range bench.StandardAlgos() {
		b.Run(algo.Name, func(b *testing.B) {
			runWorkload(b, factory, algo, tm.RetryPolicy{})
		})
	}
}

// Figure 4: the 10,000-node red-black tree at the paper's three mutation
// ratios (§3.5).

func BenchmarkFigure4_RBTree4(b *testing.B) {
	benchAllAlgos(b, bench.RBTree(bench.RBTreeConfig{Size: 10000, MutationRatio: 0.04}))
}

func BenchmarkFigure4_RBTree10(b *testing.B) {
	benchAllAlgos(b, bench.RBTree(bench.RBTreeConfig{Size: 10000, MutationRatio: 0.10}))
}

func BenchmarkFigure4_RBTree40(b *testing.B) {
	benchAllAlgos(b, bench.RBTree(bench.RBTreeConfig{Size: 10000, MutationRatio: 0.40}))
}

// Figure 5: Vacation-Low, Intruder, Genome (§3.6).

func BenchmarkFigure5_VacationLow(b *testing.B) { benchAllAlgos(b, bench.VacationLow()) }

func BenchmarkFigure5_Intruder(b *testing.B) { benchAllAlgos(b, bench.Intruder()) }

func BenchmarkFigure5_Genome(b *testing.B) { benchAllAlgos(b, bench.Genome()) }

// Figure 6: Vacation-High, SSCA2, Yada (§3.6).

func BenchmarkFigure6_VacationHigh(b *testing.B) { benchAllAlgos(b, bench.VacationHigh()) }

func BenchmarkFigure6_SSCA2(b *testing.B) { benchAllAlgos(b, bench.SSCA2()) }

func BenchmarkFigure6_Yada(b *testing.B) { benchAllAlgos(b, bench.Yada()) }

// The workloads the paper folds into the SSCA2 discussion (§3.6).

func BenchmarkExtra_Kmeans(b *testing.B) { benchAllAlgos(b, bench.Kmeans()) }

func BenchmarkExtra_Labyrinth(b *testing.B) { benchAllAlgos(b, bench.Labyrinth()) }

// Bayes is outside the paper's figures (omitted there for inconsistent
// behaviour); benchmarked for suite completeness only.
func BenchmarkExtra_Bayes(b *testing.B) { benchAllAlgos(b, bench.Bayes()) }

// Ablations (DESIGN.md §5). All run the rbtree-10 workload, where both
// small hardware transactions matter.

var ablationWorkload = bench.RBTree(bench.RBTreeConfig{Size: 10000, MutationRatio: 0.10})

func rhAlgo(b *testing.B) bench.Algo {
	a, ok := bench.AlgoByName("rh-norec")
	if !ok {
		b.Fatal("rh-norec missing")
	}
	return a
}

// BenchmarkAblationPrefix isolates the HTM prefix's contribution.
func BenchmarkAblationPrefix(b *testing.B) {
	b.Run("prefix-on", func(b *testing.B) {
		runWorkload(b, ablationWorkload, rhAlgo(b), tm.RetryPolicy{})
	})
	b.Run("prefix-off", func(b *testing.B) {
		runWorkload(b, ablationWorkload, rhAlgo(b), tm.RetryPolicy{DisablePrefix: true})
	})
	b.Run("adaptation-off", func(b *testing.B) {
		runWorkload(b, ablationWorkload, rhAlgo(b), tm.RetryPolicy{DisablePrefixAdaptation: true})
	})
}

// BenchmarkAblationPostfix isolates the HTM postfix (the clock-at-commit
// enabler); with it off, RH NOrec degenerates towards Hybrid NOrec.
func BenchmarkAblationPostfix(b *testing.B) {
	b.Run("postfix-on", func(b *testing.B) {
		runWorkload(b, ablationWorkload, rhAlgo(b), tm.RetryPolicy{})
	})
	b.Run("postfix-off", func(b *testing.B) {
		runWorkload(b, ablationWorkload, rhAlgo(b), tm.RetryPolicy{DisablePostfix: true})
	})
	b.Run("both-off", func(b *testing.B) {
		runWorkload(b, ablationWorkload, rhAlgo(b), tm.RetryPolicy{DisablePrefix: true, DisablePostfix: true})
	})
}

// BenchmarkAblationPostfixRetries checks §3.4's claim that a single postfix
// try is best.
func BenchmarkAblationPostfixRetries(b *testing.B) {
	for _, retries := range []int{1, 3, 10} {
		b.Run(map[int]string{1: "retries-1", 3: "retries-3", 10: "retries-10"}[retries], func(b *testing.B) {
			runWorkload(b, ablationWorkload, rhAlgo(b), tm.RetryPolicy{PostfixRetries: retries})
		})
	}
}

// BenchmarkAblationEagerVsLazyNOrec checks §3.1's claim that the eager
// NOrec design beats lazy at these concurrency levels.
func BenchmarkAblationEagerVsLazyNOrec(b *testing.B) {
	eager, _ := bench.AlgoByName("norec")
	lazy, _ := bench.AlgoByName("norec-lazy")
	b.Run("eager", func(b *testing.B) { runWorkload(b, ablationWorkload, eager, tm.RetryPolicy{}) })
	b.Run("lazy", func(b *testing.B) { runWorkload(b, ablationWorkload, lazy, tm.RetryPolicy{}) })
}

// BenchmarkAblationEagerVsLazyHyTM checks §3.1's claim that the eager
// hybrid design outperforms the lazy one at these concurrency levels.
func BenchmarkAblationEagerVsLazyHyTM(b *testing.B) {
	eager, _ := bench.AlgoByName("hy-norec")
	lazy, _ := bench.AlgoByName("hy-norec-lazy")
	b.Run("eager", func(b *testing.B) { runWorkload(b, ablationWorkload, eager, tm.RetryPolicy{}) })
	b.Run("lazy", func(b *testing.B) { runWorkload(b, ablationWorkload, lazy, tm.RetryPolicy{}) })
}

// BenchmarkAblationSerialLock sweeps the starvation-escape threshold
// (§3.3: the paper settled on 10).
func BenchmarkAblationSerialLock(b *testing.B) {
	for _, limit := range []int{2, 10, 50} {
		b.Run(map[int]string{2: "limit-2", 10: "limit-10", 50: "limit-50"}[limit], func(b *testing.B) {
			runWorkload(b, ablationWorkload, rhAlgo(b), tm.RetryPolicy{MaxSlowPathRestarts: limit})
		})
	}
}

// BenchmarkStructures compares ordered-map implementations under RH NOrec
// at the same operation mix: different footprints per operation mean
// different fast-path capacity and conflict profiles.
func BenchmarkStructures(b *testing.B) {
	cfg := bench.RBTreeConfig{Size: 2048, MutationRatio: 0.20}
	for _, w := range []struct {
		name string
		f    bench.WorkloadFactory
	}{
		{"rbtree", bench.RBTree(cfg)},
		{"skiplist", bench.SkipListWorkload(cfg)},
		{"sortedlist", bench.SortedListWorkload(bench.RBTreeConfig{Size: 128, MutationRatio: 0.20})},
	} {
		b.Run(w.name, func(b *testing.B) { runWorkload(b, w.f, rhAlgo(b), tm.RetryPolicy{}) })
	}
}

// BenchmarkAblationConflictBackoff contrasts the paper's no-backoff retry
// policy with exponential backoff between conflict retries (contention
// management the paper's static policy omits).
func BenchmarkAblationConflictBackoff(b *testing.B) {
	w := bench.RBTree(bench.RBTreeConfig{Size: 10000, MutationRatio: 0.40})
	b.Run("none", func(b *testing.B) { runWorkload(b, w, rhAlgo(b), tm.RetryPolicy{}) })
	b.Run("base-4", func(b *testing.B) { runWorkload(b, w, rhAlgo(b), tm.RetryPolicy{ConflictBackoff: 4}) })
	b.Run("base-32", func(b *testing.B) { runWorkload(b, w, rhAlgo(b), tm.RetryPolicy{ConflictBackoff: 32}) })
}

// BenchmarkBackgroundPhasedTM contrasts the hybrids with the PhasedTM
// approach of §1.1: with any steady trickle of fallbacks, every transaction
// pays for the software phases.
func BenchmarkBackgroundPhasedTM(b *testing.B) {
	phased, ok := bench.AlgoByName("phased-tm")
	if !ok {
		b.Fatal("phased-tm missing")
	}
	b.Run("rh-norec", func(b *testing.B) { runWorkload(b, ablationWorkload, rhAlgo(b), tm.RetryPolicy{}) })
	b.Run("phased-tm", func(b *testing.B) { runWorkload(b, ablationWorkload, phased, tm.RetryPolicy{}) })
}

// BenchmarkAblationAdaptiveRetry contrasts the paper's static retry policy
// with the dynamic-adaptive one it names as future work (§3.3).
func BenchmarkAblationAdaptiveRetry(b *testing.B) {
	w := bench.RBTree(bench.RBTreeConfig{Size: 10000, MutationRatio: 0.40})
	b.Run("static", func(b *testing.B) { runWorkload(b, w, rhAlgo(b), tm.RetryPolicy{}) })
	b.Run("adaptive", func(b *testing.B) { runWorkload(b, w, rhAlgo(b), tm.RetryPolicy{Adaptive: true}) })
}

// BenchmarkPredecessorRHTL2 contrasts RH NOrec with its predecessor RH-TL2
// (paper §1.2): the predecessor pays write instrumentation on the fast path
// and carries reads+writes in its commit transaction.
func BenchmarkPredecessorRHTL2(b *testing.B) {
	rhtl2Algo, ok := bench.AlgoByName("rh-tl2")
	if !ok {
		b.Fatal("rh-tl2 missing")
	}
	for _, w := range []struct {
		name string
		f    bench.WorkloadFactory
	}{
		{"rbtree10", bench.RBTree(bench.RBTreeConfig{Size: 10000, MutationRatio: 0.10})},
		{"rbtree40", bench.RBTree(bench.RBTreeConfig{Size: 10000, MutationRatio: 0.40})},
	} {
		b.Run(w.name+"/rh-norec", func(b *testing.B) { runWorkload(b, w.f, rhAlgo(b), tm.RetryPolicy{}) })
		b.Run(w.name+"/rh-tl2", func(b *testing.B) { runWorkload(b, w.f, rhtl2Algo, tm.RetryPolicy{}) })
	}
}

// BenchmarkHTMDevice measures the simulated hardware primitives themselves
// (useful when recalibrating the cost model).
func BenchmarkHTMDevice(b *testing.B) {
	m := mem.New(1 << 16)
	dev := htm.NewDevice(m, htm.Config{YieldPeriod: -1})
	dev.SetActiveThreads(1)
	tc := m.NewThreadCache()
	base := tc.Alloc(64 * mem.LineWords)
	tx := dev.NewTxn()
	b.Run("read-txn-32", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tx.Begin()
			for k := 0; k < 32; k++ {
				_ = tx.Load(base + mem.Addr(k*mem.LineWords))
			}
			tx.Commit()
		}
	})
	b.Run("write-txn-8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tx.Begin()
			for k := 0; k < 8; k++ {
				tx.Store(base+mem.Addr(k*mem.LineWords), uint64(i))
			}
			tx.Commit()
		}
	})
	b.Run("plain-load", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = m.LoadPlain(base)
		}
	})
	b.Run("plain-store", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.StorePlain(base, uint64(i))
		}
	})
}
