// Package rhtl2 implements RH-TL2, the reduced-hardware TL2 hybrid of
// Matveev & Shavit's earlier work ("Reduced Hardware Transactions", [18] in
// the paper), which §1.2 discusses as RH NOrec's predecessor. It is
// included so the drawbacks that motivated RH NOrec are demonstrable:
//
//  1. The fast path's reads are uninstrumented, but its *writes* are not:
//     every written location's stripe metadata must be updated inside the
//     hardware transaction before it commits.
//  2. The mixed slow path commits with one small hardware transaction that
//     must hold both the read-set validation and the write-back, so its
//     footprint — and with it the failure probability — is much larger
//     than RH NOrec's postfix (which holds only the writes).
//  3. The scheme provides no privatization (TL2-style stripe metadata,
//     lazy write-back).
//
// The stripe table lives in transactional memory so fast-path hardware
// transactions can update it speculatively.
package rhtl2

import (
	"runtime"
	"sync/atomic"

	"rhnorec/internal/htm"
	"rhnorec/internal/mem"
	"rhnorec/internal/tm"
)

// DefaultStripes is the default stripe-table size.
const DefaultStripes = 1 << 14

// System is an RH-TL2 hybrid TM over one shared memory.
type System struct {
	m      *mem.Memory
	dev    *htm.Device
	rec    *tm.Reclaimer
	policy tm.RetryPolicy
	engine *tm.Engine

	// gv is the global version clock (even values; odd = a software
	// commit's stripe-lock phase is in progress is not used here — locks
	// are per stripe).
	gv mem.Addr
	// stripes is a table of version words in transactional memory:
	// even = version, odd = locked (owner threadID<<1|1).
	stripes mem.Addr
	mask    uint64
	// gHTMLock aborts all hardware fast paths while a software-fallback
	// commit performs its non-atomic write-back (the hardware commit
	// transaction needs no such lock — its write-back is atomic).
	gHTMLock mem.Addr
	// serialLock is the starvation escape, as in the NOrec hybrids.
	serialLock mem.Addr

	nextThreadID atomic.Uint64
}

// New creates an RH-TL2 system. dev must speculate over m; stripeCount 0
// takes the default. Zero policy fields take the paper's defaults.
func New(m *mem.Memory, dev *htm.Device, policy tm.RetryPolicy, stripeCount int) *System {
	if dev.Memory() != m {
		panic("rhtl2: device bound to a different memory")
	}
	if stripeCount <= 0 {
		stripeCount = DefaultStripes
	}
	n := 1
	for n < stripeCount {
		n <<= 1
	}
	engine := tm.NewEngine(policy, dev.Config().SeedFn)
	tc := m.NewThreadCache()
	return &System{
		m:          m,
		dev:        dev,
		rec:        tm.NewReclaimer(),
		policy:     engine.Policy(),
		engine:     engine,
		gv:         tc.Alloc(mem.LineWords),
		stripes:    tc.Alloc(n),
		mask:       uint64(n - 1),
		gHTMLock:   tc.Alloc(mem.LineWords),
		serialLock: tc.Alloc(mem.LineWords),
	}
}

// Name implements tm.System.
func (s *System) Name() string { return "rh-tl2" }

// Memory implements tm.System.
func (s *System) Memory() *mem.Memory { return s.m }

func (s *System) stripeOf(a mem.Addr) mem.Addr {
	return s.stripes + mem.Addr(uint64(mem.LineOf(a))&s.mask)
}

// NewThread implements tm.System.
func (s *System) NewThread() tm.Thread {
	t := &thread{
		sys:  s,
		base: tm.NewThreadBase(s.m, s.rec),
		htx:  s.dev.NewTxn(),
		id:   s.nextThreadID.Add(1),
	}
	t.base.CM = s.engine.NewThreadPolicy(&t.base)
	return t
}

type thread struct {
	sys  *System
	base tm.ThreadBase
	htx  *htm.Txn
	id   uint64
	ro   bool

	// Fast-path write instrumentation: the stripes written this attempt.
	fastStripes []mem.Addr

	// Slow-path (TL2 lazy) state.
	rv         uint64
	readSet    []mem.Addr // stripe addresses read
	readSeen   map[mem.Addr]bool
	writeA     []mem.Addr
	writeV     []uint64
	writeIdx   map[mem.Addr]int
	serialHeld bool
}

func (t *thread) Stats() *tm.Stats { return &t.base.St }
func (t *thread) Close()           { t.base.CloseBase() }

func (t *thread) Run(fn func(tm.Tx) error) error         { return t.run(fn, false) }
func (t *thread) RunReadOnly(fn func(tm.Tx) error) error { return t.run(fn, true) }

func (t *thread) run(fn func(tm.Tx) error, ro bool) error {
	if nested := t.base.Nested(); nested != nil {
		// Flat nesting: execute inline in the enclosing transaction.
		return fn(nested)
	}
	t.base.BeginTxn()
	defer t.base.EndTxn()
	t.ro = ro
	retries := 0
	if t.base.CM.AdmitFast() {
		for {
			err, ab := t.fastAttempt(fn)
			if ab == nil {
				if err == nil {
					t.base.CM.OnFastCommit(retries)
				}
				return err
			}
			t.recordAbort(ab)
			retries++
			if t.base.CM.OnAbort(ab, retries) != tm.RetryFast {
				break
			}
		}
	}
	t.base.CM.OnFallback()
	t.base.St.Fallbacks++
	return t.slowRun(fn)
}

func (t *thread) recordAbort(ab *htm.Abort) {
	switch ab.Code {
	case htm.Conflict:
		t.base.St.HTMConflictAborts++
	case htm.Capacity:
		t.base.St.HTMCapacityAborts++
	case htm.Explicit:
		t.base.St.HTMExplicitAborts++
	case htm.Spurious:
		t.base.St.HTMSpuriousAborts++
	}
}

// fastAttempt: reads uninstrumented; writes instrumented — RH-TL2's first
// drawback. At commit the transaction bumps every written stripe and the
// global version clock inside the speculation.
func (t *thread) fastAttempt(fn func(tm.Tx) error) (err error, ab *htm.Abort) {
	defer func() {
		if r := recover(); r != nil {
			if a, ok := htm.AsAbort(r); ok {
				t.base.AbortCleanup()
				err, ab = nil, a
				return
			}
			t.htx.Cancel()
			t.base.AbortCleanup()
			if tm.IsRestart(r) {
				err, ab = nil, &htm.Abort{Code: htm.Conflict}
				return
			}
			panic(r)
		}
	}()
	t.fastStripes = t.fastStripes[:0]
	t.htx.Begin()
	if t.htx.Load(t.sys.gHTMLock) != 0 {
		t.htx.Abort(4)
	}
	if uerr := t.base.CallUser(fn, fastTx{t}); uerr != nil {
		t.htx.Cancel()
		t.base.AbortCleanup()
		t.base.St.UserAborts++
		return uerr, nil
	}
	if len(t.fastStripes) > 0 {
		if t.htx.Load(t.sys.serialLock) != 0 {
			t.htx.Abort(1)
		}
		// Write instrumentation: publish a new version for every written
		// stripe. Reading gv here puts it in the speculation's tracking
		// set — concurrent writers conflict on it, one of RH-TL2's costs.
		wv := t.htx.Load(t.sys.gv) + 2
		for _, sa := range t.fastStripes {
			if t.htx.Load(sa)&1 == 1 {
				t.htx.Abort(2) // stripe locked by a software commit
			}
			t.htx.Store(sa, wv)
		}
		t.htx.Store(t.sys.gv, wv)
	}
	t.htx.Commit()
	t.base.CommitCleanup()
	t.base.St.Commits++
	t.base.St.FastPathCommits++
	if t.ro {
		t.base.St.ReadOnlyCommits++
	}
	return nil, nil
}

// slowRun drives lazy-TL2 slow-path attempts with the serial escape.
func (t *thread) slowRun(fn func(tm.Tx) error) error {
	m := t.base.M
	defer t.base.CM.OnSlowDone()
	restarts := 0
	for {
		t.base.St.SlowPathStarts++
		err, restarted := t.slowAttempt(fn)
		if !restarted {
			if t.serialHeld {
				m.StorePlain(t.sys.serialLock, 0)
				t.serialHeld = false
			}
			return err
		}
		t.base.St.SlowPathRestarts++
		restarts++
		t.base.CM.OnSTMRestart(restarts)
		if restarts >= t.sys.policy.MaxSlowPathRestarts && !t.serialHeld {
			for !m.CASPlain(t.sys.serialLock, 0, 1) {
				runtime.Gosched()
			}
			t.serialHeld = true
		}
	}
}

func (t *thread) slowAttempt(fn func(tm.Tx) error) (err error, restarted bool) {
	defer func() {
		if r := recover(); r != nil {
			ab, isAbort := htm.AsAbort(r)
			if isAbort {
				t.recordAbort(ab)
			} else if t.htx.Active() {
				t.htx.Cancel()
			}
			t.base.AbortCleanup()
			if isAbort || tm.IsRestart(r) {
				err, restarted = nil, true
				return
			}
			panic(r)
		}
	}()
	m := t.base.M
	t.rv = m.LoadPlain(t.sys.gv)
	for t.rv&1 == 1 {
		runtime.Gosched()
		t.rv = m.LoadPlain(t.sys.gv)
	}
	t.readSet = t.readSet[:0]
	clear(t.readSeen)
	t.writeA = t.writeA[:0]
	t.writeV = t.writeV[:0]
	clear(t.writeIdx)
	if uerr := t.base.CallUser(fn, slowTx{t}); uerr != nil {
		t.base.AbortCleanup()
		t.base.St.UserAborts++
		return uerr, false
	}
	if len(t.writeA) > 0 {
		t.commitSlow()
	}
	t.base.CommitCleanup()
	t.base.St.Commits++
	t.base.St.SlowPathCommits++
	if t.ro {
		t.base.St.ReadOnlyCommits++
	}
	return nil, false
}

// commitSlow is RH-TL2's second drawback made concrete: one small hardware
// transaction revalidates the read-set stripes AND performs the write-back,
// so its footprint is reads+writes (the stats reuse the Postfix counters
// for it). When it fails, the commit falls back to the classic TL2
// software commit with stripe locks.
func (t *thread) commitSlow() {
	t.base.St.PostfixAttempts++
	committed := func() (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				if ab, isAbort := htm.AsAbort(r); isAbort {
					t.recordAbort(ab)
					ok = false
					return
				}
				panic(r)
			}
		}()
		t.htx.Begin()
		for _, sa := range t.readSet {
			s := t.htx.Load(sa)
			if s&1 == 1 || s > t.rv {
				t.htx.Abort(3)
			}
		}
		wv := t.htx.Load(t.sys.gv) + 2
		for i, a := range t.writeA {
			t.htx.Store(a, t.writeV[i])
			t.htx.Store(t.sys.stripeOf(a), wv)
		}
		t.htx.Store(t.sys.gv, wv)
		t.htx.Commit()
		return true
	}()
	if committed {
		t.base.St.PostfixCommits++
		return
	}
	t.softwareCommit()
}

// softwareCommit is the classic TL2 lazy commit: lock write stripes,
// advance gv, validate reads, write back, release.
func (t *thread) softwareCommit() {
	m := t.base.M
	// Lock every write stripe (deduplicated); on failure release and
	// restart the whole attempt.
	locked := make([]mem.Addr, 0, len(t.writeA))
	lockedVals := make([]uint64, 0, len(t.writeA))
	isLocked := func(sa mem.Addr) bool {
		for _, l := range locked {
			if l == sa {
				return true
			}
		}
		return false
	}
	release := func() {
		for i, sa := range locked {
			m.StorePlain(sa, lockedVals[i])
		}
	}
	for _, a := range t.writeA {
		sa := t.sys.stripeOf(a)
		if isLocked(sa) {
			continue
		}
		v := m.LoadPlain(sa)
		if v&1 == 1 || v > t.rv || !m.CASPlain(sa, v, t.id<<1|1) {
			release()
			tm.Restart()
		}
		locked = append(locked, sa)
		lockedVals = append(lockedVals, v)
	}
	wv := m.AddPlain(t.sys.gv, 2)
	// Validate the read set.
	for _, sa := range t.readSet {
		s := m.LoadPlain(sa)
		if s&1 == 1 {
			if !isLocked(sa) {
				release()
				tm.Restart()
			}
			continue
		}
		if s > t.rv {
			release()
			tm.Restart()
		}
	}
	// The write-back is not atomic, so hardware fast paths must not run
	// across it: take the HTM lock (their subscription aborts them), write
	// back, release the stripes at the new version, then free the lock.
	m.StorePlain(t.sys.gHTMLock, 1)
	for i, a := range t.writeA {
		m.StorePlain(a, t.writeV[i])
	}
	for _, sa := range locked {
		m.StorePlain(sa, wv)
	}
	m.StorePlain(t.sys.gHTMLock, 0)
}

// fastTx: uninstrumented reads, instrumented writes.
type fastTx struct{ t *thread }

func (v fastTx) Load(a mem.Addr) uint64 { return v.t.htx.Load(a) }

func (v fastTx) Store(a mem.Addr, val uint64) {
	t := v.t
	if t.ro {
		panic(tm.ErrStoreInReadOnly)
	}
	sa := t.sys.stripeOf(a)
	found := false
	for _, x := range t.fastStripes {
		if x == sa {
			found = true
			break
		}
	}
	if !found {
		t.fastStripes = append(t.fastStripes, sa)
	}
	t.htx.Store(a, val)
}

func (v fastTx) Alloc(n int) mem.Addr   { return v.t.base.TxAlloc(n) }
func (v fastTx) Free(a mem.Addr, n int) { v.t.base.TxFree(a, n) }

// slowTx is the lazy TL2 software view.
type slowTx struct{ t *thread }

func (v slowTx) Load(a mem.Addr) uint64 {
	t := v.t
	t.base.InstrumentedAccess()
	if t.writeIdx != nil {
		if i, ok := t.writeIdx[a]; ok {
			return t.writeV[i]
		}
	}
	m := t.base.M
	sa := t.sys.stripeOf(a)
	for {
		s1 := m.LoadPlain(sa)
		if s1&1 == 1 {
			tm.Restart()
		}
		val := m.LoadPlain(a)
		s2 := m.LoadPlain(sa)
		if s1 != s2 {
			runtime.Gosched()
			continue
		}
		if s1 > t.rv {
			tm.Restart()
		}
		if t.readSeen == nil {
			t.readSeen = make(map[mem.Addr]bool, 64)
		}
		if !t.readSeen[sa] {
			t.readSeen[sa] = true
			t.readSet = append(t.readSet, sa)
		}
		return val
	}
}

func (v slowTx) Store(a mem.Addr, val uint64) {
	t := v.t
	if t.ro {
		panic(tm.ErrStoreInReadOnly)
	}
	t.base.InstrumentedAccess()
	if t.writeIdx == nil {
		t.writeIdx = make(map[mem.Addr]int, 32)
	}
	if i, ok := t.writeIdx[a]; ok {
		t.writeV[i] = val
		return
	}
	t.writeIdx[a] = len(t.writeA)
	t.writeA = append(t.writeA, a)
	t.writeV = append(t.writeV, val)
}

func (v slowTx) Alloc(n int) mem.Addr   { return v.t.base.TxAlloc(n) }
func (v slowTx) Free(a mem.Addr, n int) { v.t.base.TxFree(a, n) }
