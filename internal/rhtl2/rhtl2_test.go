package rhtl2_test

import (
	"testing"

	"rhnorec/internal/htm"
	"rhnorec/internal/mem"
	"rhnorec/internal/rhtl2"
	"rhnorec/internal/tm"
	"rhnorec/internal/tmtest"
)

func factory(m *mem.Memory) tm.System {
	dev := htm.NewDevice(m, htm.Config{})
	dev.SetActiveThreads(4)
	return rhtl2.New(m, dev, tm.RetryPolicy{}, 0)
}

func TestConformance(t *testing.T) {
	// RH-TL2 does not provide privatization — the paper's §1.2 third
	// drawback.
	tmtest.RunConformance(t, factory, tmtest.Options{SkipPrivatization: true})
}

func TestConformanceTinyCapacity(t *testing.T) {
	tmtest.RunConformance(t, func(m *mem.Memory) tm.System {
		dev := htm.NewDevice(m, htm.Config{ReadCapacityLines: 4, WriteCapacityLines: 2})
		dev.SetActiveThreads(4)
		return rhtl2.New(m, dev, tm.RetryPolicy{}, 0)
	}, tmtest.Options{SkipPrivatization: true})
}

func TestConformanceSpurious(t *testing.T) {
	tmtest.RunConformance(t, func(m *mem.Memory) tm.System {
		dev := htm.NewDevice(m, htm.Config{SpuriousAbortProb: 0.03})
		dev.SetActiveThreads(4)
		return rhtl2.New(m, dev, tm.RetryPolicy{}, 0)
	}, tmtest.Options{SkipPrivatization: true, Ops: 150, NondeterministicAborts: true})
}

func TestName(t *testing.T) {
	m := mem.New(1 << 12)
	sys := rhtl2.New(m, htm.NewDevice(m, htm.Config{}), tm.RetryPolicy{}, 100)
	if sys.Name() != "rh-tl2" {
		t.Errorf("Name = %q", sys.Name())
	}
	if sys.Memory() != m {
		t.Error("Memory accessor broken")
	}
}

func TestMismatchedDevicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	rhtl2.New(mem.New(1024), htm.NewDevice(mem.New(1024), htm.Config{}), tm.RetryPolicy{}, 0)
}

// TestFastPathWritesAreInstrumented: the §1.2 first drawback, made
// observable — an RH-TL2 fast-path writer consumes extra write capacity for
// its stripe updates, so a write set that fits RH NOrec's uninstrumented
// fast path can overflow RH-TL2's.
func TestFastPathWritesAreInstrumented(t *testing.T) {
	m := mem.New(1 << 20)
	// 8 data lines fit exactly; stripes + the gv update push past the cap.
	dev := htm.NewDevice(m, htm.Config{WriteCapacityLines: 8})
	dev.SetActiveThreads(1)
	sys := rhtl2.New(m, dev, tm.RetryPolicy{}, 0)
	th := sys.NewThread()
	defer th.Close()
	var base mem.Addr
	if err := th.Run(func(tx tm.Tx) error { base = tx.Alloc(8 * mem.LineWords); return nil }); err != nil {
		t.Fatal(err)
	}
	before := th.Stats().FastPathCommits
	if err := th.Run(func(tx tm.Tx) error {
		for i := 0; i < 8; i++ {
			tx.Store(base+mem.Addr(i*mem.LineWords), uint64(i))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	s := th.Stats()
	if s.FastPathCommits != before {
		t.Errorf("8-line write set committed on the fast path despite stripe instrumentation (capacity aborts: %d)", s.HTMCapacityAborts)
	}
	if s.SlowPathCommits == 0 {
		t.Error("writer did not complete on the slow path")
	}
}

// TestCommitHTMCarriesReadsAndWrites: the §1.2 second drawback — the
// slow-path commit transaction must fit reads AND writes, so a transaction
// whose write set alone would fit fails in hardware and needs the software
// commit.
func TestCommitHTMCarriesReadsAndWrites(t *testing.T) {
	m := mem.New(1 << 20)
	dev := htm.NewDevice(m, htm.Config{ReadCapacityLines: 8, WriteCapacityLines: 64})
	dev.SetActiveThreads(1)
	sys := rhtl2.New(m, dev, tm.RetryPolicy{}, 1<<12)
	th := sys.NewThread()
	defer th.Close()
	var base, out mem.Addr
	if err := th.Run(func(tx tm.Tx) error {
		base = tx.Alloc(64 * 512 * mem.LineWords)
		out = tx.Alloc(mem.LineWords)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// 32 read lines spaced 512 lines apart map to 32 *distinct stripe
	// lines* (the table packs 8 stripes per line, so consecutive data
	// lines would share stripe lines). They overflow both the fast path
	// and — because the commit HTM revalidates all 32 read stripes — the
	// hardware commit, even though the write set is one line.
	if err := th.Run(func(tx tm.Tx) error {
		var sum uint64
		for i := 0; i < 32; i++ {
			sum += tx.Load(base + mem.Addr(i*512*mem.LineWords))
		}
		tx.Store(out, sum+1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	s := th.Stats()
	if s.SlowPathCommits == 0 {
		t.Fatal("transaction did not take the slow path")
	}
	if s.PostfixAttempts == 0 {
		t.Fatal("no hardware commit attempt recorded")
	}
	if s.PostfixCommits != 0 {
		t.Errorf("hardware commit succeeded despite a 32-stripe read validation (capacity %d lines)", 8)
	}
	if got := m.LoadPlain(out); got != 1 {
		t.Errorf("out = %d, want 1 (software commit must have completed)", got)
	}
}

// TestHardwareCommitUsedWhenItFits: with room for reads and writes, the
// slow path commits through the small hardware transaction.
func TestHardwareCommitUsedWhenItFits(t *testing.T) {
	m := mem.New(1 << 20)
	dev := htm.NewDevice(m, htm.Config{ReadCapacityLines: 8, WriteCapacityLines: 64, SpuriousAbortProb: 0})
	dev.SetActiveThreads(1)
	sys := rhtl2.New(m, dev, tm.RetryPolicy{}, 1<<12)
	th := sys.NewThread()
	defer th.Close()
	var base, out mem.Addr
	if err := th.Run(func(tx tm.Tx) error {
		base = tx.Alloc(32 * mem.LineWords)
		out = tx.Alloc(mem.LineWords)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// The fast path fails on WRITE capacity (2 data lines + their stripes
	// + the version clock exceed 2 lines — the instrumentation overhead),
	// while the commit HTM's write set fits the larger budget of a second
	// device... but devices are per-system, so instead give this system a
	// write budget the instrumented fast path cannot meet and the commit
	// HTM can: the fast path writes data+stripes+gv, the commit HTM writes
	// the same set, so the separating lever is the READ side — force the
	// fast-path fallback via read capacity and leave writes roomy.
	dev2 := htm.NewDevice(m, htm.Config{ReadCapacityLines: 4, WriteCapacityLines: 64})
	dev2.SetActiveThreads(1)
	sys2 := rhtl2.New(m, dev2, tm.RetryPolicy{}, 1<<12)
	th2 := sys2.NewThread()
	defer th2.Close()
	if err := th2.Run(func(tx tm.Tx) error {
		// Five spaced read lines exceed the 4-line fast-path read budget
		// (plus the HTM-lock subscription line); the slow-path commit HTM
		// revalidates only these stripes, which share few stripe lines.
		var sum uint64
		for i := 0; i < 5; i++ {
			sum += tx.Load(base + mem.Addr(i*mem.LineWords))
		}
		tx.Store(out, sum+1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	s := th2.Stats()
	if s.SlowPathCommits == 0 {
		t.Skip("fast path fit after all; instrumentation overhead not triggered at this geometry")
	}
	if s.PostfixCommits == 0 {
		t.Errorf("slow path did not use the hardware commit: %+v", s)
	}
}
