// Package intruder reimplements the STAMP "intruder" kernel: a simulated
// network intrusion detector (paper §3.6). Packet fragments flow through a
// shared capture queue into a reassembly map; completed flows move to a
// detection queue and are scanned. The workload generates a large number of
// short-to-moderate transactions with high contention — the queue heads and
// the reassembly map are hot — which is why the paper sees TL2 scale poorly
// on it and the hybrid schemes win.
package intruder

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"rhnorec/internal/mem"
	"rhnorec/internal/tm"
	"rhnorec/internal/txds"
)

// Fragment token encoding: flowID<<24 | total<<16 | index<<8 | payload.
func token(flow uint64, total, index int, payload uint64) uint64 {
	return flow<<24 | uint64(total)<<16 | uint64(index)<<8 | payload&0xff
}

func tokenFlow(t uint64) uint64  { return t >> 24 }
func tokenTotal(t uint64) int    { return int(t >> 16 & 0xff) }
func tokenPayload(t uint64) byte { return byte(t) }

// Flow-record layout in the reassembly map's satellite blocks.
const (
	frSeen = iota
	frTotal
	frSum
	frWords
)

// Config sizes the workload.
type Config struct {
	// InitialFlows seeds the capture queue at setup.
	InitialFlows int
	// MaxFragments bounds the fragments per flow (2..MaxFragments).
	MaxFragments int
}

// Default matches the paper's short-transaction/high-contention profile.
func Default() Config { return Config{InitialFlows: 64, MaxFragments: 8} }

// App is one intruder pipeline instance.
type App struct {
	cfg        Config
	capture    txds.Queue
	reassembly txds.HashMap
	detection  txds.Queue

	nextFlow  atomic.Uint64
	completed atomic.Uint64
	attacks   atomic.Uint64
}

// New creates an app; call Setup before workers.
func New(cfg Config) *App {
	if cfg.MaxFragments < 2 {
		cfg = Default()
	}
	return &App{cfg: cfg}
}

// Name identifies the workload.
func (a *App) Name() string { return "intruder" }

// Setup creates the shared pipeline and seeds initial flows.
func (a *App) Setup(th tm.Thread) error {
	if err := th.Run(func(tx tm.Tx) error {
		a.capture = txds.NewQueue(tx)
		a.reassembly = txds.NewHashMap(tx, 64)
		a.detection = txds.NewQueue(tx)
		return nil
	}); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(0xf10c))
	for i := 0; i < a.cfg.InitialFlows; i++ {
		if err := a.injectFlow(th, rng); err != nil {
			return err
		}
	}
	return nil
}

// injectFlow pushes one complete flow's fragments (shuffled) in a single
// transaction.
func (a *App) injectFlow(th tm.Thread, rng *rand.Rand) error {
	flow := a.nextFlow.Add(1)
	total := 2 + rng.Intn(a.cfg.MaxFragments-1)
	frags := make([]uint64, total)
	for i := range frags {
		frags[i] = token(flow, total, i, uint64(rng.Intn(256)))
	}
	rng.Shuffle(total, func(i, j int) { frags[i], frags[j] = frags[j], frags[i] })
	return th.Run(func(tx tm.Tx) error {
		for _, f := range frags {
			a.capture.Push(tx, f)
		}
		return nil
	})
}

// Worker drives the pipeline on its own TM thread.
type Worker struct {
	app *App
	th  tm.Thread
	rng *rand.Rand
}

// NewWorker creates a worker bound to th.
func (a *App) NewWorker(th tm.Thread, seed int64) *Worker {
	return &Worker{app: a, th: th, rng: rand.New(rand.NewSource(seed))}
}

// Op advances the pipeline by one step: reassemble a fragment, or scan a
// completed flow, or inject fresh traffic when both queues are drained.
//
// Outcome counters are Go-side state and may only move once per committed
// transaction, so the callback records outcomes in locals (reset at its
// top, since a restarted callback re-runs from the top) and Op applies them
// after the commit.
func (w *Worker) Op() error {
	var state int // 0 = reassembled, 1 = detected, 2 = idle
	var completedFlow, attack bool
	err := w.th.Run(func(tx tm.Tx) error {
		state, completedFlow, attack = 0, false, false
		if frag, ok := w.app.capture.Pop(tx); ok {
			completedFlow = w.reassemble(tx, frag)
			return nil
		}
		if flow, ok := w.app.detection.Pop(tx); ok {
			// "Detection": a trivial signature check on the flow checksum.
			attack = flow&0x7 == 0
			state = 1
			return nil
		}
		state = 2
		return nil
	})
	if err != nil {
		return err
	}
	if completedFlow {
		w.app.completed.Add(1)
	}
	if attack {
		w.app.attacks.Add(1)
	}
	if state == 2 {
		return w.app.injectFlow(w.th, w.rng)
	}
	return nil
}

// reassemble merges one fragment into its flow record, reporting whether
// this fragment completed the flow.
func (w *Worker) reassemble(tx tm.Tx, frag uint64) bool {
	flow := tokenFlow(frag)
	recAddr, ok := w.app.reassembly.Get(tx, flow)
	var rec mem.Addr
	if !ok {
		rec = tx.Alloc(frWords)
		tx.Store(rec+frTotal, uint64(tokenTotal(frag)))
		w.app.reassembly.Put(tx, flow, uint64(rec))
	} else {
		rec = mem.Addr(recAddr)
	}
	seen := tx.Load(rec+frSeen) + 1
	tx.Store(rec+frSeen, seen)
	tx.Store(rec+frSum, tx.Load(rec+frSum)+uint64(tokenPayload(frag)))
	if seen == tx.Load(rec+frTotal) {
		sum := tx.Load(rec + frSum)
		w.app.reassembly.Delete(tx, flow)
		tx.Free(rec, frWords)
		w.app.detection.Push(tx, flow<<16|sum&0xffff)
		return true
	}
	return false
}

// Completed reports how many flows finished reassembly.
func (a *App) Completed() uint64 { return a.completed.Load() }

// CheckIntegrity verifies pipeline conservation on a quiescent system:
// every injected flow is either still in flight (fragments in the capture
// queue / partial record in the map / entry in the detection queue) or was
// completed.
func (a *App) CheckIntegrity(th tm.Thread) error {
	return th.Run(func(tx tm.Tx) error {
		partial := uint64(0)
		a.reassembly.ForEach(tx, func(_, recAddr uint64) {
			rec := mem.Addr(recAddr)
			seen, total := tx.Load(rec+frSeen), tx.Load(rec+frTotal)
			if seen >= total {
				partial = ^uint64(0) // complete flow stuck in the map
			}
			partial++
		})
		if partial == ^uint64(0) {
			return fmt.Errorf("intruder: completed flow left in reassembly map")
		}
		inCapture := a.capture.Size(tx)
		inDetection := a.detection.Size(tx)
		injected := a.nextFlow.Load()
		done := a.completed.Load()
		if done+partial > injected {
			return fmt.Errorf("intruder: %d done + %d partial > %d injected", done, partial, injected)
		}
		_ = inCapture
		_ = inDetection
		return nil
	})
}
