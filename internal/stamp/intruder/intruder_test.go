package intruder_test

import (
	"testing"

	"rhnorec/internal/stamp/intruder"
	"rhnorec/internal/stamp/stamptest"
	"rhnorec/internal/tm"
)

func TestIntegrityAcrossSystems(t *testing.T) {
	for name, factory := range stamptest.Systems(1 << 22) {
		app := intruder.New(intruder.Default())
		t.Run(name, func(t *testing.T) {
			stamptest.Run(t, factory(), app,
				func(th tm.Thread, seed int64) func() error {
					w := app.NewWorker(th, seed)
					return w.Op
				},
				app.CheckIntegrity, 4, 200)
			if app.Completed() == 0 {
				t.Error("no flows completed")
			}
		})
	}
}

func TestSingleThreadDrainsInitialFlows(t *testing.T) {
	app := intruder.New(intruder.Config{InitialFlows: 16, MaxFragments: 4})
	sys := stamptest.Systems(1 << 22)["serial"]()
	stamptest.Run(t, sys, app,
		func(th tm.Thread, seed int64) func() error {
			w := app.NewWorker(th, seed)
			return w.Op
		},
		app.CheckIntegrity, 1, 400)
	if app.Completed() < 16 {
		t.Errorf("completed %d flows, want at least the 16 initial ones", app.Completed())
	}
}

func TestZeroConfigDefaults(t *testing.T) {
	if intruder.New(intruder.Config{}).Name() != "intruder" {
		t.Error("name")
	}
}
