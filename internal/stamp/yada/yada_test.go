package yada_test

import (
	"testing"

	"rhnorec/internal/stamp/stamptest"
	"rhnorec/internal/stamp/yada"
	"rhnorec/internal/tm"
)

func TestIntegrityAcrossSystems(t *testing.T) {
	for name, factory := range stamptest.Systems(1 << 22) {
		app := yada.New(yada.Config{Regions: 128, Degree: 4, GoodQuality: 50})
		t.Run(name, func(t *testing.T) {
			stamptest.Run(t, factory(), app,
				func(th tm.Thread, seed int64) func() error {
					w := app.NewWorker(th, seed)
					return w.Op
				},
				app.CheckIntegrity, 4, 150)
		})
	}
}

func TestRefinementDrainsQueue(t *testing.T) {
	app := yada.New(yada.Config{Regions: 32, Degree: 4, GoodQuality: 50})
	sys := stamptest.Systems(1 << 20)["serial"]()
	stamptest.Run(t, sys, app,
		func(th tm.Thread, seed int64) func() error {
			w := app.NewWorker(th, seed)
			return w.Op
		},
		app.CheckIntegrity, 1, 2000)
	// After many single-threaded refinement steps the queue depth must be
	// bounded by the mesh size (no unbounded re-queueing).
	th := sys.NewThread()
	defer th.Close()
	depth, err := app.QueueDepth(th)
	if err != nil {
		t.Fatal(err)
	}
	if depth > 32 {
		t.Errorf("queue depth %d exceeds mesh size", depth)
	}
}

func TestZeroConfigDefaults(t *testing.T) {
	if yada.New(yada.Config{}).Name() != "yada" {
		t.Error("name")
	}
}
