// Package yada reimplements the STAMP "yada" kernel (Yet Another Delaunay
// Application): mesh refinement by cavity retriangulation (paper §3.6).
// A shared work stack holds "bad" region ids; each transaction pops one,
// reads its neighbourhood (the cavity), improves the region and its
// neighbours, and may push neighbours whose quality degraded back onto the
// stack. Transactions are moderate-to-large with moderate contention — the
// profile on which the paper shows all hybrid schemes clustering together.
package yada

import (
	"fmt"
	"math/rand"

	"rhnorec/internal/mem"
	"rhnorec/internal/tm"
	"rhnorec/internal/txds"
)

// Region record layout: [quality, inQueue, neighbor0..neighborDeg-1],
// padded to a whole line.
const (
	regQuality = iota
	regInQueue
	regNbrBase
)

// Config sizes the workload.
type Config struct {
	// Regions is the mesh size.
	Regions int
	// Degree is the neighbour count per region (cavity size).
	Degree int
	// GoodQuality is the threshold at which a region stops being "bad".
	GoodQuality uint64
}

// Default matches the paper's moderate profile at simulator scale.
func Default() Config { return Config{Regions: 1024, Degree: 6, GoodQuality: 100} }

func (c Config) regionWords() int {
	w := regNbrBase + c.Degree
	return (w + mem.LineWords - 1) / mem.LineWords * mem.LineWords
}

// App is one mesh-refinement instance.
type App struct {
	cfg     Config
	regions mem.Addr
	work    txds.Stack
}

// New creates an app; call Setup before workers.
func New(cfg Config) *App {
	if cfg.Regions <= 0 || cfg.Degree <= 0 {
		cfg = Default()
	}
	return &App{cfg: cfg}
}

// Name identifies the workload.
func (a *App) Name() string { return "yada" }

// Setup builds the mesh (ring-with-chords neighbourhood) and seeds the work
// stack with every region (all start "bad" at quality 0..GoodQuality/2).
func (a *App) Setup(th tm.Thread) error {
	rng := rand.New(rand.NewSource(0xda1a))
	if err := th.Run(func(tx tm.Tx) error {
		a.regions = tx.Alloc(a.cfg.Regions * a.cfg.regionWords())
		a.work = txds.NewStack(tx)
		return nil
	}); err != nil {
		return err
	}
	const batch = 64
	for start := 0; start < a.cfg.Regions; start += batch {
		end := start + batch
		if end > a.cfg.Regions {
			end = a.cfg.Regions
		}
		if err := th.Run(func(tx tm.Tx) error {
			for i := start; i < end; i++ {
				r := a.region(i)
				tx.Store(r+regQuality, uint64(rng.Intn(int(a.cfg.GoodQuality/2)+1)))
				for d := 0; d < a.cfg.Degree; d++ {
					var nbr int
					if d < 2 {
						// Ring edges keep the mesh connected.
						nbr = (i + 1 - 2*(d%2) + a.cfg.Regions) % a.cfg.Regions
					} else {
						nbr = rng.Intn(a.cfg.Regions)
					}
					tx.Store(r+regNbrBase+mem.Addr(d), uint64(nbr)+1)
				}
				a.work.Push(tx, uint64(i))
				tx.Store(r+regInQueue, 1)
			}
			return nil
		}); err != nil {
			return err
		}
	}
	return nil
}

func (a *App) region(i int) mem.Addr {
	return a.regions + mem.Addr(i*a.cfg.regionWords())
}

// Worker refines the mesh on its own TM thread.
type Worker struct {
	app *App
	th  tm.Thread
	rng *rand.Rand
}

// NewWorker creates a worker bound to th.
func (a *App) NewWorker(th tm.Thread, seed int64) *Worker {
	return &Worker{app: a, th: th, rng: rand.New(rand.NewSource(seed))}
}

// Op refines one bad region: pop it, read its cavity, raise its quality,
// take a small toll on two random neighbours, and re-queue any region that
// fell below the threshold. When the stack is empty the worker damages a
// random region instead (keeping the workload endless for duration-based
// runs).
func (w *Worker) Op() error {
	damage := uint64(w.rng.Intn(3))
	victim := w.rng.Intn(w.app.cfg.Regions)
	return w.th.Run(func(tx tm.Tx) error {
		idWord, ok := w.app.work.Pop(tx)
		if !ok {
			// Refinement ran dry: introduce new badness.
			r := w.app.region(victim)
			tx.Store(r+regQuality, damage)
			if tx.Load(r+regInQueue) == 0 {
				w.app.work.Push(tx, uint64(victim))
				tx.Store(r+regInQueue, 1)
			}
			return nil
		}
		id := int(idWord)
		r := w.app.region(id)
		tx.Store(r+regInQueue, 0)
		q := tx.Load(r + regQuality)
		if q >= w.app.cfg.GoodQuality {
			return nil // already refined by a neighbour's cascade
		}
		// Read the whole cavity (region + all neighbours).
		cavity := make([]mem.Addr, w.app.cfg.Degree)
		var worst uint64 = ^uint64(0)
		for d := 0; d < w.app.cfg.Degree; d++ {
			nbr := tx.Load(r + regNbrBase + mem.Addr(d))
			cavity[d] = w.app.region(int(nbr - 1))
			if nq := tx.Load(cavity[d] + regQuality); nq < worst {
				worst = nq
			}
		}
		// Retriangulate: this region becomes good; two neighbours pay a
		// toll and may become bad.
		tx.Store(r+regQuality, w.app.cfg.GoodQuality+q%16)
		for k := 0; k < 2; k++ {
			n := cavity[(id+k)%w.app.cfg.Degree]
			nq := tx.Load(n + regQuality)
			if nq < damage {
				nq = 0
			} else {
				nq -= damage
			}
			tx.Store(n+regQuality, nq)
			if nq < w.app.cfg.GoodQuality && tx.Load(n+regInQueue) == 0 {
				// Recover the neighbour's id from its address.
				nid := int(n-w.app.regions) / w.app.cfg.regionWords()
				w.app.work.Push(tx, uint64(nid))
				tx.Store(n+regInQueue, 1)
			}
		}
		return nil
	})
}

// CheckIntegrity validates on a quiescent system: the inQueue flags agree
// with stack membership and every stack entry is a valid region id.
func (a *App) CheckIntegrity(th tm.Thread) error {
	return th.Run(func(tx tm.Tx) error {
		queued := make(map[uint64]int)
		bad := false
		a.work.ForEach(tx, func(v uint64) {
			if v >= uint64(a.cfg.Regions) {
				bad = true
			}
			queued[v]++
		})
		if bad {
			return fmt.Errorf("yada: work stack contains out-of-range region id")
		}
		for id, n := range queued {
			if n != 1 {
				return fmt.Errorf("yada: region %d queued %d times", id, n)
			}
			if tx.Load(a.region(int(id))+regInQueue) != 1 {
				return fmt.Errorf("yada: region %d queued but flag clear", id)
			}
		}
		for i := 0; i < a.cfg.Regions; i++ {
			if tx.Load(a.region(i)+regInQueue) == 1 {
				if _, ok := queued[uint64(i)]; !ok {
					return fmt.Errorf("yada: region %d flagged but not queued", i)
				}
			}
		}
		return nil
	})
}

// QueueDepth reports the current work-stack depth.
func (a *App) QueueDepth(th tm.Thread) (uint64, error) {
	var n uint64
	err := th.RunReadOnly(func(tx tm.Tx) error {
		n = a.work.Size(tx)
		return nil
	})
	return n, err
}
