package genome_test

import (
	"testing"

	"rhnorec/internal/stamp/genome"
	"rhnorec/internal/stamp/stamptest"
	"rhnorec/internal/tm"
)

func TestIntegrityAcrossSystems(t *testing.T) {
	for name, factory := range stamptest.Systems(1 << 22) {
		app := genome.New(genome.Config{GenomeLength: 512, SegmentLength: 8})
		t.Run(name, func(t *testing.T) {
			sys := factory()
			stamptest.Run(t, sys, app,
				func(th tm.Thread, seed int64) func() error {
					w := app.NewWorker(th, seed)
					return w.Op
				},
				app.CheckIntegrity, 4, 200)
			th := sys.NewThread()
			defer th.Close()
			n, err := app.Segments(th)
			if err != nil {
				t.Fatal(err)
			}
			if n == 0 {
				t.Error("no segments discovered")
			}
		})
	}
}

func TestDeduplicationIsStable(t *testing.T) {
	// Processing the same genome exhaustively twice must not grow the map
	// beyond the distinct-position count.
	app := genome.New(genome.Config{GenomeLength: 128, SegmentLength: 8})
	sys := stamptest.Systems(1 << 22)["serial"]()
	stamptest.Run(t, sys, app,
		func(th tm.Thread, seed int64) func() error {
			w := app.NewWorker(th, seed)
			return w.Op
		},
		app.CheckIntegrity, 1, 2000)
	th := sys.NewThread()
	defer th.Close()
	n, err := app.Segments(th)
	if err != nil {
		t.Fatal(err)
	}
	if n > 128 {
		t.Errorf("segments = %d > %d positions (dedup failed)", n, 128)
	}
}

func TestZeroConfigDefaults(t *testing.T) {
	if genome.New(genome.Config{}).Name() != "genome" {
		t.Error("name")
	}
}
