// Package genome reimplements the STAMP "genome" kernel: gene sequencing by
// segment deduplication and overlap chaining (paper §3.6). A synthetic
// genome is cut into overlapping fixed-length segments; workers insert
// segments into a shared transactional hash map (deduplication) and link
// each inserted segment to the segment starting where it ends (chaining).
// Transactions are moderate-length and read-heavy — the profile on which
// the paper reports very high instrumentation costs for the STMs and a
// large win for the HTM-based schemes.
package genome

import (
	"fmt"
	"math/rand"

	"rhnorec/internal/mem"
	"rhnorec/internal/tm"
	"rhnorec/internal/txds"
)

// Config sizes the workload.
type Config struct {
	// GenomeLength is the synthetic genome's length in bases.
	GenomeLength int
	// SegmentLength is the length of each extracted segment.
	SegmentLength int
}

// Default matches the paper's moderate-transaction profile at simulator
// scale.
func Default() Config { return Config{GenomeLength: 4096, SegmentLength: 16} }

// App is one genome-assembly instance.
type App struct {
	cfg Config
	// genome is immutable after New and read without instrumentation, like
	// STAMP's private gene pool.
	genome []byte
	// segments deduplicates segment content-hash -> start position.
	segments txds.HashMap
	// links is a transactional array: links[pos] = 1 + position of the
	// segment chained after the segment at pos (0 = unlinked).
	links mem.Addr
}

// New creates an app; call Setup before workers.
func New(cfg Config) *App {
	if cfg.GenomeLength <= 0 || cfg.SegmentLength <= 0 || cfg.SegmentLength > cfg.GenomeLength {
		cfg = Default()
	}
	a := &App{cfg: cfg}
	rng := rand.New(rand.NewSource(0x9e40))
	a.genome = make([]byte, cfg.GenomeLength)
	bases := []byte{'a', 'c', 'g', 't'}
	for i := range a.genome {
		a.genome[i] = bases[rng.Intn(4)]
	}
	return a
}

// Name identifies the workload.
func (a *App) Name() string { return "genome" }

// Setup allocates the shared structures.
func (a *App) Setup(th tm.Thread) error {
	return th.Run(func(tx tm.Tx) error {
		a.segments = txds.NewHashMap(tx, 256)
		a.links = tx.Alloc(a.cfg.GenomeLength)
		return nil
	})
}

// segmentHash hashes the segment starting at pos.
func (a *App) segmentHash(pos int) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < a.cfg.SegmentLength; i++ {
		h ^= uint64(a.genome[(pos+i)%a.cfg.GenomeLength])
		h *= 1099511628211
	}
	return h
}

// Worker performs assembly steps on its own TM thread.
type Worker struct {
	app *App
	th  tm.Thread
	rng *rand.Rand
}

// NewWorker creates a worker bound to th.
func (a *App) NewWorker(th tm.Thread, seed int64) *Worker {
	return &Worker{app: a, th: th, rng: rand.New(rand.NewSource(seed))}
}

// Op processes one random segment: deduplicate it into the shared map, then
// chain it to its successor segment if that one is already known. One
// transaction covers both phases, mirroring STAMP's per-segment work.
func (w *Worker) Op() error {
	pos := w.rng.Intn(w.app.cfg.GenomeLength)
	h := w.app.segmentHash(pos)
	succPos := (pos + w.app.cfg.SegmentLength) % w.app.cfg.GenomeLength
	succHash := w.app.segmentHash(succPos)
	return w.th.Run(func(tx tm.Tx) error {
		// Deduplication: first inserter wins; later duplicates read the
		// chain and stop.
		cur, inserted := w.app.segments.PutIfAbsent(tx, h, uint64(pos)+1)
		canonical := int(cur - 1)
		if !inserted && canonical != pos {
			// Content-hash collision between different positions is
			// possible but astronomically unlikely with 64-bit FNV over
			// short segments; treat the canonical copy as the segment.
			pos = canonical
		}
		// Chaining: if the successor segment is known, link to it.
		if succ, ok := w.app.segments.Get(tx, succHash); ok {
			tx.Store(w.app.links+mem.Addr(pos), succ) // succ is position+1
		}
		return nil
	})
}

// CheckIntegrity validates on a quiescent system: every link target is a
// known segment position whose content hash matches the successor hash of
// the link source.
func (a *App) CheckIntegrity(th tm.Thread) error {
	return th.Run(func(tx tm.Tx) error {
		known := make(map[uint64]bool)
		a.segments.ForEach(tx, func(_, v uint64) { known[v] = true })
		for pos := 0; pos < a.cfg.GenomeLength; pos++ {
			l := tx.Load(a.links + mem.Addr(pos))
			if l == 0 {
				continue
			}
			if !known[l] {
				return fmt.Errorf("genome: link at %d targets unknown segment %d", pos, l-1)
			}
			succPos := (pos + a.cfg.SegmentLength) % a.cfg.GenomeLength
			if a.segmentHash(int(l-1)) != a.segmentHash(succPos) {
				return fmt.Errorf("genome: link at %d chains to non-overlapping segment %d", pos, l-1)
			}
		}
		return nil
	})
}

// Segments reports the number of distinct segments discovered.
func (a *App) Segments(th tm.Thread) (uint64, error) {
	var n uint64
	err := th.RunReadOnly(func(tx tm.Tx) error {
		n = a.segments.Size(tx)
		return nil
	})
	return n, err
}
