// Package bayes reimplements the STAMP "bayes" kernel: structure learning
// of a Bayesian network by hill climbing. Workers repeatedly propose adding,
// removing or reversing an edge of a shared directed acyclic graph; a
// transaction scores the proposal against the adjacency state, applies it
// if it improves the local score, and keeps the graph acyclic.
//
// The paper OMITS bayes from its evaluation "due to its inconsistent
// behavior" (§3.6, as did [21]); the kernel is included here for suite
// completeness — it participates in the correctness tests but no figure
// reproduction depends on it, and EXPERIMENTS.md makes no claims about it.
package bayes

import (
	"fmt"
	"math/rand"

	"rhnorec/internal/mem"
	"rhnorec/internal/tm"
)

// Node record layout: [score, parentCount, parent0..parent{maxParents-1}],
// padded to a line multiple.
const (
	nScore     = 0
	nParents   = 1
	nFirst     = 2
	maxParents = 4
)

// Config sizes the workload.
type Config struct {
	// Vars is the number of network variables (nodes).
	Vars int
}

// Default matches a small learning problem.
func Default() Config { return Config{Vars: 128} }

func nodeWords() int {
	w := nFirst + maxParents
	return (w + mem.LineWords - 1) / mem.LineWords * mem.LineWords
}

// App is one structure-learning instance.
type App struct {
	cfg   Config
	nodes mem.Addr
}

// New creates an app; call Setup before workers.
func New(cfg Config) *App {
	if cfg.Vars <= 2 {
		cfg = Default()
	}
	return &App{cfg: cfg}
}

// Name identifies the workload.
func (a *App) Name() string { return "bayes" }

// Setup allocates the node table (no edges; scores start at zero).
func (a *App) Setup(th tm.Thread) error {
	return th.Run(func(tx tm.Tx) error {
		a.nodes = tx.Alloc(a.cfg.Vars * nodeWords())
		return nil
	})
}

func (a *App) node(i int) mem.Addr { return a.nodes + mem.Addr(i*nodeWords()) }

// Worker proposes structure changes on its own TM thread.
type Worker struct {
	app *App
	th  tm.Thread
	rng *rand.Rand
}

// NewWorker creates a worker bound to th.
func (a *App) NewWorker(th tm.Thread, seed int64) *Worker {
	return &Worker{app: a, th: th, rng: rand.New(rand.NewSource(seed))}
}

// hasParent reports whether p is a parent of child (transactional read).
func (a *App) hasParent(tx tm.Tx, child, p int) bool {
	n := a.node(child)
	cnt := tx.Load(n + nParents)
	for i := uint64(0); i < cnt; i++ {
		if tx.Load(n+nFirst+mem.Addr(i)) == uint64(p)+1 {
			return true
		}
	}
	return false
}

// reachable reports whether `to` is reachable from `from` along parent
// edges reversed (i.e. along child→parent pointers), bounded by the node
// count — the acyclicity check a real learner performs on each proposal.
func (a *App) reachable(tx tm.Tx, from, to int) bool {
	// Iterative DFS over parent pointers.
	stack := []int{from}
	seen := make(map[int]bool, 16)
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if x == to {
			return true
		}
		if seen[x] {
			continue
		}
		seen[x] = true
		n := a.node(x)
		cnt := tx.Load(n + nParents)
		for i := uint64(0); i < cnt; i++ {
			stack = append(stack, int(tx.Load(n+nFirst+mem.Addr(i))-1))
		}
	}
	return false
}

// Op proposes one structure change: add a parent edge p→c if it keeps the
// graph acyclic and c has capacity (score +1), or remove a random parent
// (score −1 with small probability, modelling the learner escaping local
// optima).
func (w *Worker) Op() error {
	c := w.rng.Intn(w.app.cfg.Vars)
	p := w.rng.Intn(w.app.cfg.Vars)
	remove := w.rng.Intn(8) == 0
	return w.th.Run(func(tx tm.Tx) error {
		n := w.app.node(c)
		cnt := tx.Load(n + nParents)
		if remove {
			if cnt == 0 {
				return nil
			}
			// Remove the last parent.
			tx.Store(n+nFirst+mem.Addr(cnt-1), 0)
			tx.Store(n+nParents, cnt-1)
			tx.Store(n+nScore, tx.Load(n+nScore)-1)
			return nil
		}
		if p == c || cnt >= maxParents || w.app.hasParent(tx, c, p) {
			return nil
		}
		// Adding p as a parent of c creates the edge p→c; a cycle exists
		// iff c is already an ancestor of p (reachable via parent links).
		if w.app.reachable(tx, p, c) {
			return nil
		}
		tx.Store(n+nFirst+mem.Addr(cnt), uint64(p)+1)
		tx.Store(n+nParents, cnt+1)
		tx.Store(n+nScore, tx.Load(n+nScore)+1)
		return nil
	})
}

// CheckIntegrity validates on a quiescent system: parent counts in bounds,
// parent slots consistent with counts, no self-loops or duplicate parents,
// score equals the net edge count, and the graph is acyclic.
func (a *App) CheckIntegrity(th tm.Thread) error {
	return th.Run(func(tx tm.Tx) error {
		for c := 0; c < a.cfg.Vars; c++ {
			n := a.node(c)
			cnt := tx.Load(n + nParents)
			if cnt > maxParents {
				return fmt.Errorf("bayes: node %d has %d parents", c, cnt)
			}
			if score := tx.Load(n + nScore); score != cnt {
				return fmt.Errorf("bayes: node %d score %d != parent count %d", c, score, cnt)
			}
			seen := map[uint64]bool{}
			for i := uint64(0); i < maxParents; i++ {
				v := tx.Load(n + nFirst + mem.Addr(i))
				if i < cnt {
					if v == 0 {
						return fmt.Errorf("bayes: node %d slot %d empty below count", c, i)
					}
					if v == uint64(c)+1 {
						return fmt.Errorf("bayes: node %d has a self-loop", c)
					}
					if seen[v] {
						return fmt.Errorf("bayes: node %d has duplicate parent %d", c, v-1)
					}
					seen[v] = true
				} else if v != 0 {
					return fmt.Errorf("bayes: node %d slot %d populated above count", c, i)
				}
			}
		}
		// Acyclicity via DFS coloring over parent links.
		const (
			white = 0
			gray  = 1
			black = 2
		)
		color := make([]int, a.cfg.Vars)
		var visit func(x int) error
		visit = func(x int) error {
			color[x] = gray
			n := a.node(x)
			cnt := tx.Load(n + nParents)
			for i := uint64(0); i < cnt; i++ {
				p := int(tx.Load(n+nFirst+mem.Addr(i)) - 1)
				switch color[p] {
				case gray:
					return fmt.Errorf("bayes: cycle through nodes %d and %d", x, p)
				case white:
					if err := visit(p); err != nil {
						return err
					}
				}
			}
			color[x] = black
			return nil
		}
		for c := 0; c < a.cfg.Vars; c++ {
			if color[c] == white {
				if err := visit(c); err != nil {
					return err
				}
			}
		}
		return nil
	})
}
