package bayes_test

import (
	"testing"

	"rhnorec/internal/stamp/bayes"
	"rhnorec/internal/stamp/stamptest"
	"rhnorec/internal/tm"
)

func TestIntegrityAcrossSystems(t *testing.T) {
	for name, factory := range stamptest.Systems(1 << 22) {
		app := bayes.New(bayes.Config{Vars: 48})
		t.Run(name, func(t *testing.T) {
			stamptest.Run(t, factory(), app,
				func(th tm.Thread, seed int64) func() error {
					w := app.NewWorker(th, seed)
					return w.Op
				},
				app.CheckIntegrity, 4, 200)
		})
	}
}

func TestSingleThreadBuildsAcyclicGraph(t *testing.T) {
	app := bayes.New(bayes.Config{Vars: 24})
	sys := stamptest.Systems(1 << 20)["serial"]()
	stamptest.Run(t, sys, app,
		func(th tm.Thread, seed int64) func() error {
			w := app.NewWorker(th, seed)
			return w.Op
		},
		app.CheckIntegrity, 1, 1500)
}

func TestZeroConfigDefaults(t *testing.T) {
	if bayes.New(bayes.Config{}).Name() != "bayes" {
		t.Error("name")
	}
}
