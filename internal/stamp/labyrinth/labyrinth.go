// Package labyrinth reimplements the STAMP "labyrinth" kernel: concurrent
// maze routing (paper §3.6; the paper folds its results in with SSCA2 as
// "similar"). Each transaction routes one path across a shared grid,
// reading every cell along several candidate routes and claiming one —
// STAMP's router snapshots the whole grid, making this the suite's
// capacity-abort generator: transactions are far too large for hardware and
// live almost entirely on the software paths.
package labyrinth

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"rhnorec/internal/mem"
	"rhnorec/internal/tm"
)

// Config sizes the workload.
type Config struct {
	// Width and Height size the routing grid.
	Width, Height int
	// SnapshotGrid mimics STAMP's whole-grid private copy at transaction
	// start (reads Width×Height cells per transaction). Disabling it reads
	// only the candidate route cells.
	SnapshotGrid bool
}

// Default matches the paper's capacity-heavy profile.
func Default() Config { return Config{Width: 48, Height: 48, SnapshotGrid: true} }

// App is one routing-grid instance.
type App struct {
	cfg    Config
	grid   mem.Addr // Width*Height cells; 0 = free, else path id
	nextID atomic.Uint64
	routed atomic.Uint64
	failed atomic.Uint64
	// lengths records committed path lengths by id for the integrity check.
	lengths sync.Map
}

// New creates an app; call Setup before workers.
func New(cfg Config) *App {
	if cfg.Width <= 2 || cfg.Height <= 2 {
		cfg = Default()
	}
	return &App{cfg: cfg}
}

// Name identifies the workload.
func (a *App) Name() string { return "labyrinth" }

// Setup allocates the grid.
func (a *App) Setup(th tm.Thread) error {
	return th.Run(func(tx tm.Tx) error {
		a.grid = tx.Alloc(a.cfg.Width * a.cfg.Height)
		return nil
	})
}

func (a *App) cell(x, y int) mem.Addr {
	return a.grid + mem.Addr(y*a.cfg.Width+x)
}

// Worker routes paths on its own TM thread.
type Worker struct {
	app *App
	th  tm.Thread
	rng *rand.Rand
}

// NewWorker creates a worker bound to th.
func (a *App) NewWorker(th tm.Thread, seed int64) *Worker {
	return &Worker{app: a, th: th, rng: rand.New(rand.NewSource(seed))}
}

// lPath returns the L-shaped route from (x0,y0) to (x1,y1), x-leg first or
// y-leg first.
func lPath(x0, y0, x1, y1 int, yFirst bool) [][2]int {
	var path [][2]int
	step := func(v0, v1 int) int {
		if v1 > v0 {
			return 1
		}
		return -1
	}
	x, y := x0, y0
	path = append(path, [2]int{x, y})
	if yFirst {
		for y != y1 {
			y += step(y0, y1)
			path = append(path, [2]int{x, y})
		}
		for x != x1 {
			x += step(x0, x1)
			path = append(path, [2]int{x, y})
		}
	} else {
		for x != x1 {
			x += step(x0, x1)
			path = append(path, [2]int{x, y})
		}
		for y != y1 {
			y += step(y0, y1)
			path = append(path, [2]int{x, y})
		}
	}
	return path
}

// Op routes one path: snapshot the grid (if configured), try both L-shaped
// candidate routes, and claim the first fully-free one. A blocked pair
// still commits (as a read-only transaction) and counts as a routing
// failure, like STAMP's router giving up on a work item.
func (w *Worker) Op() error {
	x0, y0 := w.rng.Intn(w.app.cfg.Width), w.rng.Intn(w.app.cfg.Height)
	x1, y1 := w.rng.Intn(w.app.cfg.Width), w.rng.Intn(w.app.cfg.Height)
	if x0 == x1 && y0 == y1 {
		x1 = (x1 + 1) % w.app.cfg.Width
	}
	id := w.app.nextID.Add(1)
	routed := false
	var length int
	err := w.th.Run(func(tx tm.Tx) error {
		routed, length = false, 0
		if w.app.cfg.SnapshotGrid {
			// STAMP's grid copy: read every cell.
			for i := 0; i < w.app.cfg.Width*w.app.cfg.Height; i++ {
				_ = tx.Load(w.app.grid + mem.Addr(i))
			}
		}
		for _, yFirst := range []bool{false, true} {
			path := lPath(x0, y0, x1, y1, yFirst)
			free := true
			for _, c := range path {
				if tx.Load(w.app.cell(c[0], c[1])) != 0 {
					free = false
					break
				}
			}
			if !free {
				continue
			}
			for _, c := range path {
				tx.Store(w.app.cell(c[0], c[1]), id)
			}
			routed, length = true, len(path)
			return nil
		}
		return nil
	})
	if err != nil {
		return err
	}
	if routed {
		w.app.routed.Add(1)
		w.app.lengths.Store(id, length)
	} else {
		w.app.failed.Add(1)
	}
	return nil
}

// Routed reports how many paths were committed.
func (a *App) Routed() uint64 { return a.routed.Load() }

// Failed reports how many routing attempts found no free path.
func (a *App) Failed() uint64 { return a.failed.Load() }

// CheckIntegrity validates on a quiescent system: every committed path's
// cells carry exactly its id, cell-count per id matches the recorded
// length, and no cell carries an unknown id — i.e. committed paths are
// disjoint and complete.
func (a *App) CheckIntegrity(th tm.Thread) error {
	return th.Run(func(tx tm.Tx) error {
		counts := make(map[uint64]int)
		for i := 0; i < a.cfg.Width*a.cfg.Height; i++ {
			if id := tx.Load(a.grid + mem.Addr(i)); id != 0 {
				counts[id]++
			}
		}
		for id, n := range counts {
			v, ok := a.lengths.Load(id)
			if !ok {
				return fmt.Errorf("labyrinth: grid contains cells of unknown path %d", id)
			}
			if v.(int) != n {
				return fmt.Errorf("labyrinth: path %d has %d cells, recorded length %d", id, n, v.(int))
			}
		}
		var recorded int
		a.lengths.Range(func(any, any) bool { recorded++; return true })
		if recorded != len(counts) {
			return fmt.Errorf("labyrinth: %d paths recorded, %d present in grid", recorded, len(counts))
		}
		return nil
	})
}
