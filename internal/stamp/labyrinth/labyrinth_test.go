package labyrinth_test

import (
	"testing"

	"rhnorec/internal/stamp/labyrinth"
	"rhnorec/internal/stamp/stamptest"
	"rhnorec/internal/tm"
)

func TestIntegrityAcrossSystems(t *testing.T) {
	for name, factory := range stamptest.Systems(1 << 22) {
		app := labyrinth.New(labyrinth.Config{Width: 24, Height: 24, SnapshotGrid: true})
		t.Run(name, func(t *testing.T) {
			stamptest.Run(t, factory(), app,
				func(th tm.Thread, seed int64) func() error {
					w := app.NewWorker(th, seed)
					return w.Op
				},
				app.CheckIntegrity, 4, 30)
			if app.Routed() == 0 {
				t.Error("no paths routed")
			}
		})
	}
}

func TestPathsAreDisjoint(t *testing.T) {
	app := labyrinth.New(labyrinth.Config{Width: 16, Height: 16, SnapshotGrid: false})
	sys := stamptest.Systems(1 << 20)["serial"]()
	stamptest.Run(t, sys, app,
		func(th tm.Thread, seed int64) func() error {
			w := app.NewWorker(th, seed)
			return w.Op
		},
		app.CheckIntegrity, 1, 100)
	if app.Routed()+app.Failed() != 100 {
		t.Errorf("routed %d + failed %d != 100 ops", app.Routed(), app.Failed())
	}
}

func TestZeroConfigDefaults(t *testing.T) {
	if labyrinth.New(labyrinth.Config{}).Name() != "labyrinth" {
		t.Error("name")
	}
}
