// Package stamptest provides the shared test driver for the STAMP-style
// workloads: set up an app over a TM system, hammer it from several worker
// goroutines, then run its integrity check on the quiesced state. Each app
// package invokes it against the serial oracle and the hybrid systems.
package stamptest

import (
	"sync"
	"testing"

	"rhnorec/internal/core"
	"rhnorec/internal/htm"
	"rhnorec/internal/hynorec"
	"rhnorec/internal/mem"
	"rhnorec/internal/norec"
	"rhnorec/internal/serial"
	"rhnorec/internal/tm"
)

// App is the structural interface every workload satisfies.
type App interface {
	Name() string
	Setup(th tm.Thread) error
}

// Factory builds a fresh system over a fresh memory.
type Factory func() tm.System

// Systems returns the standard matrix of systems the apps are tested over:
// the serial oracle, the NOrec STM, Hybrid NOrec, RH NOrec, and RH NOrec
// with a tiny HTM that forces the mixed slow path.
func Systems(memWords int) map[string]Factory {
	newMem := func() *mem.Memory { return mem.New(memWords) }
	return map[string]Factory{
		"serial": func() tm.System { return serial.New(newMem()) },
		"norec":  func() tm.System { return norec.New(newMem(), norec.Eager) },
		"hy-norec": func() tm.System {
			m := newMem()
			d := htm.NewDevice(m, htm.Config{})
			d.SetActiveThreads(4)
			return hynorec.New(m, d, tm.RetryPolicy{})
		},
		"rh-norec": func() tm.System {
			m := newMem()
			d := htm.NewDevice(m, htm.Config{})
			d.SetActiveThreads(4)
			return core.New(m, d, tm.RetryPolicy{})
		},
		"rh-norec-tiny-htm": func() tm.System {
			m := newMem()
			d := htm.NewDevice(m, htm.Config{ReadCapacityLines: 16, WriteCapacityLines: 8})
			d.SetActiveThreads(4)
			return core.New(m, d, tm.RetryPolicy{})
		},
	}
}

// Run sets up the app on sys, runs threads×ops operations, and calls check
// on the quiesced state.
func Run(t *testing.T, sys tm.System, app App,
	newWorker func(th tm.Thread, seed int64) func() error,
	check func(th tm.Thread) error, threads, ops int) {
	t.Helper()
	setup := sys.NewThread()
	if err := app.Setup(setup); err != nil {
		t.Fatalf("%s setup: %v", app.Name(), err)
	}
	setup.Close()
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			th := sys.NewThread()
			defer th.Close()
			op := newWorker(th, seed)
			for j := 0; j < ops; j++ {
				if err := op(); err != nil {
					t.Errorf("%s op: %v", app.Name(), err)
					return
				}
			}
		}(int64(i + 1))
	}
	wg.Wait()
	if check != nil {
		th := sys.NewThread()
		defer th.Close()
		if err := check(th); err != nil {
			t.Errorf("%s integrity: %v", app.Name(), err)
		}
	}
}
