package ssca2_test

import (
	"testing"

	"rhnorec/internal/stamp/ssca2"
	"rhnorec/internal/stamp/stamptest"
	"rhnorec/internal/tm"
)

func TestIntegrityAcrossSystems(t *testing.T) {
	for name, factory := range stamptest.Systems(1 << 22) {
		app := ssca2.New(ssca2.Config{Nodes: 256})
		t.Run(name, func(t *testing.T) {
			stamptest.Run(t, factory(), app,
				func(th tm.Thread, seed int64) func() error {
					w := app.NewWorker(th, seed)
					return w.Op
				},
				app.CheckIntegrity, 4, 250)
			if app.Edges() != 4*250 {
				t.Errorf("Edges = %d, want %d", app.Edges(), 4*250)
			}
		})
	}
}

func TestAdjacencySaturation(t *testing.T) {
	// With one node, the array fills and then slots get overwritten; the
	// invariant must hold throughout.
	app := ssca2.New(ssca2.Config{Nodes: 1})
	sys := stamptest.Systems(1 << 20)["serial"]()
	stamptest.Run(t, sys, app,
		func(th tm.Thread, seed int64) func() error {
			w := app.NewWorker(th, seed)
			return w.Op
		},
		app.CheckIntegrity, 1, 100)
}

func TestZeroConfigDefaults(t *testing.T) {
	if ssca2.New(ssca2.Config{}).Name() != "ssca2" {
		t.Error("name")
	}
}
