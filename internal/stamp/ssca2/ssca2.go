// Package ssca2 reimplements the STAMP "ssca2" kernel (Scalable Synthetic
// Compact Applications 2, kernel 1): concurrent construction of a directed
// multigraph's adjacency structure (paper §3.6). Each transaction appends
// one edge to a random node's adjacency array — small, uncontended
// read-modify-write transactions over a large node set. The paper reports
// all HTM-based schemes behaving alike here (hardly any fallbacks), which
// is the expected signature for this profile.
package ssca2

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"rhnorec/internal/mem"
	"rhnorec/internal/tm"
)

// Node record layout: [degree, edge0..edge{cap-1}], padded to two lines.
const (
	edgeCap   = 8
	nodeWords = 2 * mem.LineWords
)

// Config sizes the workload.
type Config struct {
	// Nodes is the graph's node count; contention scales inversely.
	Nodes int
}

// Default matches the paper's uncontended profile.
func Default() Config { return Config{Nodes: 4096} }

// App is one graph-construction instance.
type App struct {
	cfg   Config
	nodes mem.Addr // contiguous array of node records
	edges atomic.Uint64
}

// New creates an app; call Setup before workers.
func New(cfg Config) *App {
	if cfg.Nodes <= 0 {
		cfg = Default()
	}
	return &App{cfg: cfg}
}

// Name identifies the workload.
func (a *App) Name() string { return "ssca2" }

// Setup allocates the node array.
func (a *App) Setup(th tm.Thread) error {
	return th.Run(func(tx tm.Tx) error {
		a.nodes = tx.Alloc(a.cfg.Nodes * nodeWords)
		return nil
	})
}

func (a *App) node(i int) mem.Addr { return a.nodes + mem.Addr(i*nodeWords) }

// Worker adds edges on its own TM thread.
type Worker struct {
	app *App
	th  tm.Thread
	rng *rand.Rand
}

// NewWorker creates a worker bound to th.
func (a *App) NewWorker(th tm.Thread, seed int64) *Worker {
	return &Worker{app: a, th: th, rng: rand.New(rand.NewSource(seed))}
}

// Op appends one random edge u→v; when u's adjacency array is full it
// overwrites a random slot (keeping the workload endless, as the harness
// requires).
func (w *Worker) Op() error {
	u := w.rng.Intn(w.app.cfg.Nodes)
	v := uint64(w.rng.Intn(w.app.cfg.Nodes))
	slot := w.rng.Intn(edgeCap)
	err := w.th.Run(func(tx tm.Tx) error {
		n := w.app.node(u)
		deg := tx.Load(n)
		if deg < edgeCap {
			tx.Store(n+1+mem.Addr(deg), v+1)
			tx.Store(n, deg+1)
		} else {
			tx.Store(n+1+mem.Addr(slot), v+1)
		}
		return nil
	})
	if err == nil {
		w.app.edges.Add(1)
	}
	return err
}

// Edges reports the number of edge insertions performed.
func (a *App) Edges() uint64 { return a.edges.Load() }

// CheckIntegrity validates on a quiescent system: every degree is within
// bounds, exactly the first degree slots are populated, and every edge
// target is a valid node.
func (a *App) CheckIntegrity(th tm.Thread) error {
	return th.Run(func(tx tm.Tx) error {
		for i := 0; i < a.cfg.Nodes; i++ {
			n := a.node(i)
			deg := tx.Load(n)
			if deg > edgeCap {
				return fmt.Errorf("ssca2: node %d degree %d > cap %d", i, deg, edgeCap)
			}
			for s := 0; s < edgeCap; s++ {
				e := tx.Load(n + 1 + mem.Addr(s))
				if uint64(s) < deg {
					if e == 0 {
						return fmt.Errorf("ssca2: node %d slot %d empty below degree %d", i, s, deg)
					}
					if e > uint64(a.cfg.Nodes) {
						return fmt.Errorf("ssca2: node %d edge target %d out of range", i, e-1)
					}
				} else if e != 0 {
					return fmt.Errorf("ssca2: node %d slot %d populated above degree %d", i, s, deg)
				}
			}
		}
		return nil
	})
}
