package kmeans_test

import (
	"testing"

	"rhnorec/internal/stamp/kmeans"
	"rhnorec/internal/stamp/stamptest"
	"rhnorec/internal/tm"
)

func TestIntegrityAcrossSystems(t *testing.T) {
	for name, factory := range stamptest.Systems(1 << 22) {
		app := kmeans.New(kmeans.Config{K: 8, Dims: 4, Points: 256})
		t.Run(name, func(t *testing.T) {
			stamptest.Run(t, factory(), app,
				func(th tm.Thread, seed int64) func() error {
					w := app.NewWorker(th, seed)
					return w.Op
				},
				app.CheckIntegrity, 4, 250)
			if app.Assignments() != 4*250 {
				t.Errorf("Assignments = %d, want %d", app.Assignments(), 4*250)
			}
		})
	}
}

func TestZeroConfigDefaults(t *testing.T) {
	if kmeans.New(kmeans.Config{}).Name() != "kmeans" {
		t.Error("name")
	}
}
