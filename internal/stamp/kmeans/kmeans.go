// Package kmeans reimplements the STAMP "kmeans" kernel: iterative K-means
// clustering where the per-point work is a small transaction updating the
// chosen cluster's accumulator (paper §3.6; the paper folds its results in
// with SSCA2 as "similar"). Points are private; only the K center
// accumulators are shared, so transactions are tiny with contention set by
// K.
package kmeans

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"rhnorec/internal/mem"
	"rhnorec/internal/tm"
)

// Config sizes the workload.
type Config struct {
	// K is the number of clusters (contention is ~threads/K).
	K int
	// Dims is the point dimensionality.
	Dims int
	// Points is the private dataset size per app.
	Points int
}

// Default mirrors the STAMP low-contention configuration at simulator
// scale.
func Default() Config { return Config{K: 16, Dims: 4, Points: 2048} }

// Center accumulator layout: [count, sum0..sumD-1], padded to a line
// multiple so centers do not share lines.
func centerWords(dims int) int {
	w := 1 + dims
	return (w + mem.LineWords - 1) / mem.LineWords * mem.LineWords
}

// App is one clustering instance.
type App struct {
	cfg     Config
	centers mem.Addr
	// points and seeds are immutable after New (STAMP's private input).
	points [][]uint64
	seeds  [][]uint64
	adds   atomic.Uint64
}

// New creates an app; call Setup before workers.
func New(cfg Config) *App {
	if cfg.K <= 0 || cfg.Dims <= 0 || cfg.Points <= 0 {
		cfg = Default()
	}
	a := &App{cfg: cfg}
	rng := rand.New(rand.NewSource(0x4ea5))
	a.points = make([][]uint64, cfg.Points)
	for i := range a.points {
		p := make([]uint64, cfg.Dims)
		for d := range p {
			p[d] = uint64(rng.Intn(1024))
		}
		a.points[i] = p
	}
	a.seeds = make([][]uint64, cfg.K)
	for i := range a.seeds {
		a.seeds[i] = a.points[rng.Intn(cfg.Points)]
	}
	return a
}

// Name identifies the workload.
func (a *App) Name() string { return "kmeans" }

// Setup allocates the center accumulators.
func (a *App) Setup(th tm.Thread) error {
	return th.Run(func(tx tm.Tx) error {
		a.centers = tx.Alloc(a.cfg.K * centerWords(a.cfg.Dims))
		return nil
	})
}

func (a *App) center(i int) mem.Addr {
	return a.centers + mem.Addr(i*centerWords(a.cfg.Dims))
}

// Worker assigns points on its own TM thread.
type Worker struct {
	app *App
	th  tm.Thread
	rng *rand.Rand
}

// NewWorker creates a worker bound to th.
func (a *App) NewWorker(th tm.Thread, seed int64) *Worker {
	return &Worker{app: a, th: th, rng: rand.New(rand.NewSource(seed))}
}

// Op assigns one random point: the nearest seed center is computed outside
// the transaction (as STAMP does, against the stable previous-iteration
// centers), then a small transaction folds the point into that center's
// accumulator.
func (w *Worker) Op() error {
	p := w.app.points[w.rng.Intn(w.app.cfg.Points)]
	best, bestDist := 0, ^uint64(0)
	for k := 0; k < w.app.cfg.K; k++ {
		var d uint64
		for i := 0; i < w.app.cfg.Dims; i++ {
			diff := int64(p[i]) - int64(w.app.seeds[k][i])
			d += uint64(diff * diff)
		}
		if d < bestDist {
			best, bestDist = k, d
		}
	}
	err := w.th.Run(func(tx tm.Tx) error {
		c := w.app.center(best)
		tx.Store(c, tx.Load(c)+1)
		for i := 0; i < w.app.cfg.Dims; i++ {
			s := c + 1 + mem.Addr(i)
			tx.Store(s, tx.Load(s)+p[i])
		}
		return nil
	})
	if err == nil {
		w.app.adds.Add(1)
	}
	return err
}

// Assignments reports the number of points folded into centers.
func (a *App) Assignments() uint64 { return a.adds.Load() }

// CheckIntegrity validates conservation on a quiescent system: the center
// counts sum to the number of assignments, and each center's mean lies
// within the coordinate domain.
func (a *App) CheckIntegrity(th tm.Thread) error {
	return th.Run(func(tx tm.Tx) error {
		var total uint64
		for k := 0; k < a.cfg.K; k++ {
			c := a.center(k)
			n := tx.Load(c)
			total += n
			for i := 0; i < a.cfg.Dims; i++ {
				sum := tx.Load(c + 1 + mem.Addr(i))
				if n == 0 {
					if sum != 0 {
						return fmt.Errorf("kmeans: center %d empty but sum[%d]=%d", k, i, sum)
					}
					continue
				}
				if mean := sum / n; mean >= 1024 {
					return fmt.Errorf("kmeans: center %d mean[%d]=%d out of domain", k, i, mean)
				}
			}
		}
		if total != a.adds.Load() {
			return fmt.Errorf("kmeans: counts sum to %d, %d assignments performed", total, a.adds.Load())
		}
		return nil
	})
}
