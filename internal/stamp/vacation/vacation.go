// Package vacation reimplements the STAMP "vacation" application kernel: an
// online transaction processing emulation over a travel reservation
// database (paper §3.6). Three resource tables (cars, flights, rooms) and a
// customer table are red-black trees in transactional memory; each task is
// one transaction that queries several resources and reserves the best one,
// cancels a customer, or updates the tables.
//
// The Low configuration matches the paper's Vacation-Low profile
// (moderately long transactions, low contention: few queries over a wide
// range, almost all tasks are user reservations); High matches
// Vacation-High (more queries over a narrower range and more administrative
// tasks, i.e. heavier and more conflict-prone transactions).
package vacation

import (
	"fmt"
	"math/rand"

	"rhnorec/internal/mem"
	"rhnorec/internal/rbtree"
	"rhnorec/internal/tm"
	"rhnorec/internal/txds"
)

// Resource kinds.
const (
	kindCar = iota
	kindFlight
	kindRoom
	numKinds
)

// Resource record layout (padded to its own cache line by allocation size).
const (
	resTotal = iota
	resFree
	resPrice
	resWords = mem.LineWords
)

// Config sizes the workload.
type Config struct {
	// Relations is the number of rows in each resource table.
	Relations int
	// Queries is the number of resources examined per reservation task.
	Queries int
	// QueryRange is the fraction of each table a task may touch.
	QueryRange float64
	// UserPct is the percentage of tasks that are reservations; the rest
	// split evenly between customer deletions and table updates.
	UserPct int
}

// Low is the paper's Vacation-Low profile (scaled to simulator size).
func Low() Config {
	return Config{Relations: 256, Queries: 2, QueryRange: 0.9, UserPct: 98}
}

// High is the paper's Vacation-High profile.
func High() Config {
	return Config{Relations: 256, Queries: 4, QueryRange: 0.6, UserPct: 90}
}

// App is one vacation database instance.
type App struct {
	cfg       Config
	resources [numKinds]rbtree.Tree
	customers rbtree.Tree
}

// New creates an app with the given config; call Setup before workers.
func New(cfg Config) *App {
	if cfg.Relations <= 0 {
		cfg = Low()
	}
	return &App{cfg: cfg}
}

// Name identifies the workload variant.
func (a *App) Name() string {
	if a.cfg.Queries >= 4 {
		return "vacation-high"
	}
	return "vacation-low"
}

// Setup populates the tables.
func (a *App) Setup(th tm.Thread) error {
	if err := th.Run(func(tx tm.Tx) error {
		for k := 0; k < numKinds; k++ {
			a.resources[k] = rbtree.New(tx)
		}
		a.customers = rbtree.New(tx)
		return nil
	}); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(0x5eed))
	const batch = 32
	for start := 0; start < a.cfg.Relations; start += batch {
		end := start + batch
		if end > a.cfg.Relations {
			end = a.cfg.Relations
		}
		if err := th.Run(func(tx tm.Tx) error {
			for id := start; id < end; id++ {
				for k := 0; k < numKinds; k++ {
					rec := tx.Alloc(resWords)
					n := uint64(50 + rng.Intn(50))
					tx.Store(rec+resTotal, n)
					tx.Store(rec+resFree, n)
					tx.Store(rec+resPrice, uint64(50+rng.Intn(450)))
					a.resources[k].Put(tx, uint64(id), uint64(rec))
				}
			}
			return nil
		}); err != nil {
			return err
		}
	}
	return nil
}

// Worker issues vacation tasks on its own TM thread.
type Worker struct {
	app *App
	th  tm.Thread
	rng *rand.Rand
}

// NewWorker creates a worker bound to th.
func (a *App) NewWorker(th tm.Thread, seed int64) *Worker {
	return &Worker{app: a, th: th, rng: rand.New(rand.NewSource(seed))}
}

// Op runs one task transaction.
func (w *Worker) Op() error {
	r := w.rng.Intn(100)
	switch {
	case r < w.app.cfg.UserPct:
		return w.makeReservation()
	case r < w.app.cfg.UserPct+(100-w.app.cfg.UserPct)/2:
		return w.deleteCustomer()
	default:
		return w.updateTables()
	}
}

func (w *Worker) randID() uint64 {
	span := int(float64(w.app.cfg.Relations) * w.app.cfg.QueryRange)
	if span < 1 {
		span = 1
	}
	return uint64(w.rng.Intn(span))
}

// makeReservation queries cfg.Queries random resources and reserves the
// highest-priced available one for a (possibly new) customer — the STAMP
// client logic.
func (w *Worker) makeReservation() error {
	type query struct {
		kind int
		id   uint64
	}
	queries := make([]query, w.app.cfg.Queries)
	for i := range queries {
		queries[i] = query{w.rng.Intn(numKinds), w.randID()}
	}
	custID := w.randID()
	return w.th.Run(func(tx tm.Tx) error {
		bestPrice := uint64(0)
		bestRec := mem.Nil
		bestKind, bestID := 0, uint64(0)
		for _, q := range queries {
			recAddr, ok := w.app.resources[q.kind].Get(tx, q.id)
			if !ok {
				continue
			}
			rec := mem.Addr(recAddr)
			if tx.Load(rec+resFree) == 0 {
				continue
			}
			if p := tx.Load(rec + resPrice); p > bestPrice {
				bestPrice, bestRec, bestKind, bestID = p, rec, q.kind, q.id
			}
		}
		if bestRec == mem.Nil {
			return nil // nothing available; the task still commits
		}
		// Ensure the customer exists, with a reservation list.
		listAddr, ok := w.app.customers.Get(tx, custID)
		var list txds.Stack
		if !ok {
			list = txds.NewStack(tx)
			w.app.customers.Put(tx, custID, uint64(list.Head()))
		} else {
			list = txds.AttachStack(mem.Addr(listAddr))
		}
		tx.Store(bestRec+resFree, tx.Load(bestRec+resFree)-1)
		list.Push(tx, uint64(bestKind)<<32|bestID)
		return nil
	})
}

// deleteCustomer releases all of a random customer's reservations and
// removes the customer.
func (w *Worker) deleteCustomer() error {
	custID := w.randID()
	return w.th.Run(func(tx tm.Tx) error {
		listAddr, ok := w.app.customers.Get(tx, custID)
		if !ok {
			return nil
		}
		list := txds.AttachStack(mem.Addr(listAddr))
		for {
			v, ok := list.Pop(tx)
			if !ok {
				break
			}
			kind := int(v >> 32)
			id := v & 0xffffffff
			if recAddr, ok := w.app.resources[kind].Get(tx, id); ok {
				rec := mem.Addr(recAddr)
				tx.Store(rec+resFree, tx.Load(rec+resFree)+1)
			}
		}
		w.app.customers.Delete(tx, custID)
		list.Dispose(tx)
		return nil
	})
}

// updateTables performs the administrative task: price changes and capacity
// growth on random rows.
func (w *Worker) updateTables() error {
	kind := w.rng.Intn(numKinds)
	id := w.randID()
	newPrice := uint64(50 + w.rng.Intn(450))
	grow := w.rng.Intn(2) == 0
	return w.th.Run(func(tx tm.Tx) error {
		recAddr, ok := w.app.resources[kind].Get(tx, id)
		if !ok {
			return nil
		}
		rec := mem.Addr(recAddr)
		if grow {
			tx.Store(rec+resTotal, tx.Load(rec+resTotal)+1)
			tx.Store(rec+resFree, tx.Load(rec+resFree)+1)
		} else {
			tx.Store(rec+resPrice, newPrice)
		}
		return nil
	})
}

// CheckConservation verifies that for every resource, total − free equals
// the number of outstanding customer reservations referencing it. It must
// run on a quiescent system.
func (a *App) CheckConservation(th tm.Thread) error {
	return th.Run(func(tx tm.Tx) error {
		held := make(map[[2]uint64]uint64) // (kind,id) -> count
		for _, cust := range a.customers.Keys(tx) {
			listAddr, ok := a.customers.Get(tx, cust)
			if !ok {
				return fmt.Errorf("vacation: customer %d vanished mid-check", cust)
			}
			list := txds.AttachStack(mem.Addr(listAddr))
			list.ForEach(tx, func(v uint64) {
				held[[2]uint64{v >> 32, v & 0xffffffff}]++
			})
		}
		for k := 0; k < numKinds; k++ {
			for _, id := range a.resources[k].Keys(tx) {
				recAddr, _ := a.resources[k].Get(tx, id)
				rec := mem.Addr(recAddr)
				total, free := tx.Load(rec+resTotal), tx.Load(rec+resFree)
				if free > total {
					return fmt.Errorf("vacation: resource (%d,%d) free %d > total %d", k, id, free, total)
				}
				if want := held[[2]uint64{uint64(k), id}]; total-free != want {
					return fmt.Errorf("vacation: resource (%d,%d) reserved %d but %d held by customers", k, id, total-free, want)
				}
			}
		}
		return nil
	})
}
