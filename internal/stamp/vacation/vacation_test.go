package vacation_test

import (
	"testing"

	"rhnorec/internal/stamp/stamptest"
	"rhnorec/internal/stamp/vacation"
	"rhnorec/internal/tm"
)

func TestNames(t *testing.T) {
	if vacation.New(vacation.Low()).Name() != "vacation-low" {
		t.Error("low name")
	}
	if vacation.New(vacation.High()).Name() != "vacation-high" {
		t.Error("high name")
	}
	// Zero config falls back to Low.
	if vacation.New(vacation.Config{}).Name() != "vacation-low" {
		t.Error("zero-config name")
	}
}

func TestConservationAcrossSystems(t *testing.T) {
	for name, factory := range stamptest.Systems(1 << 22) {
		for _, cfg := range []vacation.Config{vacation.Low(), vacation.High()} {
			app := vacation.New(cfg)
			t.Run(name+"/"+app.Name(), func(t *testing.T) {
				stamptest.Run(t, factory(), app,
					func(th tm.Thread, seed int64) func() error {
						w := app.NewWorker(th, seed)
						return w.Op
					},
					app.CheckConservation, 4, 150)
			})
		}
	}
}

func TestSingleThreadDeterministicConservation(t *testing.T) {
	app := vacation.New(vacation.Config{Relations: 32, Queries: 3, QueryRange: 1.0, UserPct: 80})
	sys := stamptest.Systems(1 << 22)["serial"]()
	stamptest.Run(t, sys, app,
		func(th tm.Thread, seed int64) func() error {
			w := app.NewWorker(th, seed)
			return w.Op
		},
		app.CheckConservation, 1, 500)
}
