package htm

import (
	"sync/atomic"

	"rhnorec/internal/mem"
)

// counter is an atomic counter padded out to its own 64-byte cache line, so
// that the per-device statistics below do not false-share: every
// transaction bumps starts and one of commits/aborts, and with unpadded
// adjacent words those RMWs ping the same line between every hardware
// thread on the machine.
type counter struct {
	atomic.Uint64
	_ [56]byte
}

// Device is one simulated processor's transactional-memory facility. All
// hardware transactions over the same mem.Memory must share one Device so
// that capacity scaling and statistics are coherent.
type Device struct {
	m   *mem.Memory
	cfg Config

	// activeThreads is the number of simulated hardware threads currently
	// running; above cfg.Cores, HyperThreading halves capacity.
	activeThreads atomic.Int64

	// seedCounter hands out distinct RNG seeds to transactions.
	seedCounter atomic.Uint64

	// hook, when non-nil, observes every transactional operation (see Hook).
	hook Hook

	_       [48]byte // keep starts off the line holding the fields above
	starts  counter
	commits counter
	aborts  [Spurious + 1]counter
}

// NewDevice creates a transactional device over m. Zero fields of cfg take
// their defaults.
func NewDevice(m *mem.Memory, cfg Config) *Device {
	return &Device{m: m, cfg: cfg.withDefaults()}
}

// Memory returns the memory this device speculates over.
func (d *Device) Memory() *mem.Memory { return d.m }

// Config returns the effective device configuration.
func (d *Device) Config() Config { return d.cfg }

// SetActiveThreads tells the device how many simulated hardware threads are
// running; the benchmark harness calls this before each run. When the count
// exceeds the core count, per-transaction capacities halve.
func (d *Device) SetActiveThreads(n int) { d.activeThreads.Store(int64(n)) }

// ActiveThreads reports the current simulated thread count.
func (d *Device) ActiveThreads() int { return int(d.activeThreads.Load()) }

// hyperThreaded reports whether capacity halving is in effect.
func (d *Device) hyperThreaded() bool {
	return int(d.activeThreads.Load()) > d.cfg.Cores
}

// effectiveCaps returns the current read and write line capacities.
func (d *Device) effectiveCaps() (readCap, writeCap int) {
	readCap, writeCap = d.cfg.ReadCapacityLines, d.cfg.WriteCapacityLines
	if d.hyperThreaded() {
		readCap /= 2
		writeCap /= 2
	}
	return readCap, writeCap
}

// DeviceStats is a snapshot of device-wide counters.
type DeviceStats struct {
	Starts         uint64
	Commits        uint64
	ConflictAborts uint64
	CapacityAborts uint64
	ExplicitAborts uint64
	SpuriousAborts uint64
}

// Stats returns a snapshot of the device-wide counters.
func (d *Device) Stats() DeviceStats {
	return DeviceStats{
		Starts:         d.starts.Load(),
		Commits:        d.commits.Load(),
		ConflictAborts: d.aborts[Conflict].Load(),
		CapacityAborts: d.aborts[Capacity].Load(),
		ExplicitAborts: d.aborts[Explicit].Load(),
		SpuriousAborts: d.aborts[Spurious].Load(),
	}
}

// NewTxn creates a reusable hardware-transaction context bound to this
// device. A Txn belongs to one thread; each simulated hardware thread
// creates its own. The per-transaction RNG seed comes from Config.SeedFn
// when set; the default arrival-order counter depends on goroutine
// scheduling, which is exactly what deterministic-replay harnesses cannot
// tolerate.
func (d *Device) NewTxn() *Txn {
	seed := d.seedCounter.Add(1)
	if fn := d.cfg.SeedFn; fn != nil {
		seed = fn()
	}
	return &Txn{
		d:        d,
		rngState: seed*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D,
	}
}
