package htm

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"rhnorec/internal/mem"
)

// TestRaceReadOnlyTxnsAgainstWriters hammers lock-free read-only hardware
// commits (duplicate-heavy, so they exercise both the read index and the
// seqlock validation) against transactional writers AND a plain CommitWrites
// writer, all keeping x + y == total. A read-only transaction that commits
// has validated its log at a stable clock, so the invariant must hold over
// the values it returned. Run under -race this also checks the lock-free
// commit path is race-free against every writer the memory supports.
func TestRaceReadOnlyTxnsAgainstWriters(t *testing.T) {
	const total = 1000
	m, d, c := newTestDevice(Config{})
	d.SetActiveThreads(6)
	x := c.Alloc(mem.LineWords)
	y := c.Alloc(mem.LineWords)
	m.StorePlain(x, total)

	writerOps := 1500
	if testing.Short() {
		writerOps = 300
	}
	var wg sync.WaitGroup
	var writersDone atomic.Int32

	// Transactional writers: move value between x and y.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer writersDone.Add(1)
			tx := d.NewTxn()
			for j := 0; j < writerOps; j++ {
				attempt(tx, func() {
					vx := tx.Load(x)
					vy := tx.Load(y)
					if vx > 0 {
						tx.Store(x, vx-1)
						tx.Store(y, vy+1)
					} else {
						tx.Store(x, vx+vy)
						tx.Store(y, 0)
					}
				})
			}
		}()
	}
	// Plain writer: atomic two-word publishes through CommitWrites.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer writersDone.Add(1)
		for j := uint64(1); j <= uint64(writerOps); j++ {
			v := j % total
			m.CommitWrites([]mem.WriteEntry{{Addr: x, Value: v}, {Addr: y, Value: total - v}}, nil)
			if j%8 == 0 {
				runtime.Gosched()
			}
		}
	}()

	var bad atomic.Uint64
	var commits atomic.Uint64
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tx := d.NewTxn()
			// Run while any writer is still live, then make a few quiet
			// attempts: under the storm every writer commit touches both x
			// and y, so a reader on one OS thread may conflict every single
			// time until the writers drain.
			quiet := 0
			for quiet < 10 {
				if writersDone.Load() == 3 {
					quiet++
				}
				var vx, vy uint64
				ab := attempt(tx, func() {
					vx = tx.Load(x)
					vy = tx.Load(y)
					// Duplicate loads: answered from the read log, so the
					// commit still validates only two distinct words.
					for k := 0; k < 8; k++ {
						vx = tx.Load(x)
						vy = tx.Load(y)
					}
				})
				if ab == nil {
					commits.Add(1)
					if vx+vy != total {
						bad.Add(1)
					}
				}
				runtime.Gosched() // don't starve the writers on few OS threads
			}
		}()
	}
	wg.Wait()
	if bad.Load() != 0 {
		t.Errorf("invariant violated %d times: committed read-only txns saw x+y != %d", bad.Load(), total)
	}
	if commits.Load() == 0 {
		t.Error("no read-only txn ever committed; the stress proved nothing")
	}
	if got := m.LoadPlain(x) + m.LoadPlain(y); got != total {
		t.Errorf("final x+y = %d, want %d", got, total)
	}
}
