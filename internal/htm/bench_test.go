package htm

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"rhnorec/internal/mem"
)

// benchConfig disables the scheduling and environmental noise sources so the
// benchmarks measure the hot path itself.
func benchConfig() Config { return Config{YieldPeriod: -1} }

// BenchmarkTxnLoadDup measures a long transaction that re-reads a small set
// of addresses while foreign plain stores keep forcing revalidations: the
// cost must scale with the number of *distinct* addresses in the read set,
// not with the dynamic read count. Each iteration is one 4096-load
// transaction over 16 distinct words with a clock-moving foreign store every
// 64 loads.
func BenchmarkTxnLoadDup(b *testing.B) {
	m := mem.New(1 << 16)
	d := NewDevice(m, benchConfig())
	d.SetActiveThreads(1)
	tc := m.NewThreadCache()
	var addrs [16]mem.Addr
	for i := range addrs {
		addrs[i] = tc.Alloc(mem.LineWords)
	}
	foreign := tc.Alloc(mem.LineWords)
	tx := d.NewTxn()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx.Begin()
		for j := 0; j < 4096; j++ {
			if j%64 == 63 {
				m.StorePlain(foreign, uint64(j))
			}
			_ = tx.Load(addrs[j%len(addrs)])
		}
		tx.Commit()
	}
}

// BenchmarkReadOnlyCommit measures read-only fast-path commits from 8
// simulated hardware threads at once while a plain writer publishes to an
// unrelated line — the paper's read-dominated scenario. Each transaction
// re-reads a 4-word hot set 16 times (a traversal revisiting its upper
// levels). Real RTM commits a read-only transaction without touching
// anything shared; the simulated commit must not serialize these
// transactions on the memory's writeback mutex.
func BenchmarkReadOnlyCommit(b *testing.B) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	m := mem.New(1 << 16)
	d := NewDevice(m, benchConfig())
	d.SetActiveThreads(8)
	tc := m.NewThreadCache()
	var addrs [4]mem.Addr
	for i := range addrs {
		addrs[i] = tc.Alloc(mem.LineWords)
	}
	foreign := tc.Alloc(mem.LineWords)
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(1); !stop.Load(); i++ {
			m.StorePlain(foreign, i)
			runtime.Gosched()
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		tx := d.NewTxn()
		for pb.Next() {
			tx.Begin()
			for rep := 0; rep < 16; rep++ {
				for _, a := range addrs {
					_ = tx.Load(a)
				}
			}
			tx.Commit()
		}
	})
	b.StopTimer()
	stop.Store(true)
	wg.Wait()
}

// BenchmarkCommitWriteback measures a writer transaction's commit: 16
// buffered stores on distinct lines published per commit. This is the path
// that must publish the write buffer without an intermediate copy.
func BenchmarkCommitWriteback(b *testing.B) {
	m := mem.New(1 << 16)
	d := NewDevice(m, benchConfig())
	d.SetActiveThreads(1)
	tc := m.NewThreadCache()
	var addrs [16]mem.Addr
	for i := range addrs {
		addrs[i] = tc.Alloc(mem.LineWords)
	}
	tx := d.NewTxn()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx.Begin()
		for j, a := range addrs {
			tx.Store(a, uint64(i+j))
		}
		tx.Commit()
	}
}
