package htm

import (
	"runtime"

	"rhnorec/internal/mem"
)

// Txn is one thread's hardware-transaction context. It is reusable: Begin
// resets it for a fresh speculation. Methods must be called from the owning
// thread only.
//
// Load, Store, Commit and Abort unwind with a panic carrying *Abort when the
// transaction dies; the caller's attempt loop recovers it (this mirrors RTM
// transferring control to the XBEGIN checkpoint).
type Txn struct {
	d      *Device
	active bool

	// snap is the even memory-clock value the whole read log is known to be
	// valid at. It doubles as the validation watermark: any validation that
	// observes the clock still at snap is a no-op, because the clock is
	// monotonic and no mutation can have happened since the log was last
	// validated. Successful revalidations advance it.
	snap uint64

	// reads value-logs every *distinct* speculative read; duplicate loads
	// are answered from the log (an L1 hit on real hardware) and are not
	// re-logged, so validation is O(distinct addresses). The line set does
	// the capacity accounting.
	reads     readSet
	readLines lineSet

	writes writeSet
	wLines lineSet

	// Per-transaction cached limits and probability thresholds (copied out
	// of the device config at Begin so the per-operation hot path never
	// chases the device pointer).
	readCap, writeCap int
	yieldPeriod       int
	spuriousThresh    uint64
	falseConfThresh   uint64

	rngState uint64
	opCount  int
}

// Begin starts a hardware transaction. The Txn must not already be active.
func (t *Txn) Begin() {
	if t.active {
		panic("htm: Begin inside an active transaction (no nesting in this simulator)")
	}
	t.active = true
	if t.reads.len() > 0 {
		t.reads.reset()
		t.readLines.reset()
	}
	if t.writes.len() > 0 {
		t.writes.reset()
		t.wLines.reset()
	}
	t.readCap, t.writeCap = t.d.effectiveCaps()
	t.yieldPeriod = t.d.cfg.YieldPeriod
	if p := t.d.cfg.SpuriousAbortProb; p > 0 {
		t.spuriousThresh = uint64(p * (1 << 53))
	} else {
		t.spuriousThresh = 0
	}
	if p := t.d.cfg.FalseConflictProb; p > 0 {
		t.falseConfThresh = uint64(p * (1 << 53))
	} else {
		t.falseConfThresh = 0
	}
	t.snap = t.d.m.ClockStable()
	t.d.starts.Add(1)
}

// Active reports whether a speculation is in progress.
func (t *Txn) Active() bool { return t.active }

// ReadLineCount reports the distinct cache lines currently in the read set.
func (t *Txn) ReadLineCount() int { return t.readLines.count() }

// WriteLineCount reports the distinct cache lines currently in the write set.
func (t *Txn) WriteLineCount() int { return t.wLines.count() }

func (t *Txn) mustActive(op string) {
	if !t.active {
		panic("htm: " + op + " outside a transaction")
	}
}

// fail aborts the transaction and unwinds.
func (t *Txn) fail(code Code, arg uint64) {
	t.active = false
	t.d.aborts[code].Add(1)
	panic(&Abort{Code: code, Arg: arg})
}

// nextRand is a xorshift64* step for the spurious-abort dice.
func (t *Txn) nextRand() uint64 {
	x := t.rngState
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	t.rngState = x
	return x * 0x2545F4914F6CDD1D
}

// maybeYield periodically yields the processor so that simulated hardware
// threads interleave mid-transaction even on few OS threads.
func (t *Txn) maybeYield() {
	p := t.yieldPeriod
	if p <= 0 {
		return
	}
	t.opCount++
	if t.opCount%p == 0 {
		runtime.Gosched()
	}
}

// maybeSpurious rolls for an environmental abort against a 53-bit
// fixed-point threshold precomputed at Begin.
func (t *Txn) maybeSpurious() {
	if t.spuriousThresh == 0 {
		return
	}
	if t.nextRand()>>11 < t.spuriousThresh {
		t.fail(Spurious, 0)
	}
}

// Load speculatively reads a word. It aborts (conflict) if the read set can
// no longer be validated, and (capacity) if the read set overflows.
//
// A duplicate load — an address already in the read log — is answered from
// the log without touching shared memory, like the L1 hit it would be on
// real hardware. The logged value is by construction the address's value at
// the snapshot the whole log is valid at, so returning it preserves
// opacity; if the location has since changed, the next validation (or the
// commit) aborts the transaction exactly as it would have in the seed
// protocol.
func (t *Txn) Load(a mem.Addr) uint64 {
	t.mustActive("Load")
	t.maybeYield()
	t.maybeSpurious()
	if t.writes.len() > 0 {
		if v, ok := t.writes.get(a); ok {
			return v
		}
	}
	if v, ok := t.reads.get(a); ok {
		return v
	}
	v := t.readConsistent(a)
	t.reads.add(a, v)
	if t.readLines.add(mem.LineOf(a)) && t.readLines.count() > t.readCap {
		t.fail(Capacity, 0)
	}
	return v
}

// readConsistent returns a's value at a snapshot the whole read log is valid
// at, extending the snapshot if the clock moved (NOrec-style incremental
// validation — this is what makes the simulated HTM opaque). Validation is
// skipped entirely while the clock still reads the snap watermark.
func (t *Txn) readConsistent(a mem.Addr) uint64 {
	m := t.d.m
	for {
		c0 := m.Clock()
		if c0&1 == 1 {
			runtime.Gosched() // a write-back is in flight
			continue
		}
		v := m.LoadPlain(a)
		if m.Clock() != c0 {
			continue // raced with a mutation
		}
		if c0 == t.snap {
			return v
		}
		// The clock moved since our snapshot: revalidate every logged read
		// by value, then confirm the clock still reads c0 so the validation
		// itself was not torn. A bloom-filter hardware would not compare
		// values — model its false positives first.
		if t.falseConfThresh != 0 && t.reads.len() > 0 && t.nextRand()>>11 < t.falseConfThresh {
			t.fail(Conflict, 0)
		}
		for _, r := range t.reads.entries {
			if m.LoadPlain(r.addr) != r.val {
				t.fail(Conflict, 0)
			}
		}
		if m.Clock() != c0 {
			continue
		}
		t.snap = c0
		return v
	}
}

// validateReads is the commit-time validation: skip if the clock still
// reads the snap watermark, roll the bloom false-positive dice otherwise,
// then re-check every distinct logged read by value. The caller guarantees
// the verdict is only used if the clock was stable across the call (either
// by holding the writeback lock or via the seqlock read protocol).
func (t *Txn) validateReads() bool {
	m := t.d.m
	if m.Clock() == t.snap {
		return true
	}
	// Bloom-filter false positives hit commit-time validation too: if
	// memory moved since our snapshot, a filter-based hardware might see a
	// phantom intersection.
	if t.falseConfThresh != 0 && t.reads.len() > 0 && t.nextRand()>>11 < t.falseConfThresh {
		return false
	}
	for _, r := range t.reads.entries {
		if m.LoadPlain(r.addr) != r.val {
			return false
		}
	}
	return true
}

// Store speculatively writes a word into the private write buffer. It aborts
// (capacity) if the write set overflows.
func (t *Txn) Store(a mem.Addr, v uint64) {
	t.mustActive("Store")
	t.maybeYield()
	t.maybeSpurious()
	if t.writes.put(a, v) {
		if t.wLines.add(mem.LineOf(a)) && t.wLines.count() > t.writeCap {
			t.fail(Capacity, 0)
		}
	}
}

// Abort explicitly aborts the transaction (XABORT) with a payload code.
func (t *Txn) Abort(arg uint64) {
	t.mustActive("Abort")
	t.fail(Explicit, arg)
}

// Cancel quietly discards an active speculation without panicking. TM
// drivers use it when an outer restart (not a hardware abort) unwinds
// through an active hardware transaction.
func (t *Txn) Cancel() {
	t.active = false
}

// Commit atomically publishes the write buffer after a final validation. On
// success the transaction becomes inactive; on failure it aborts (conflict).
//
// A writer commit publishes the write set directly from the write buffer
// (no intermediate copy) under the memory's writeback lock. A read-only
// commit publishes nothing and takes no lock: CommitWrites validates it
// under the seqlock read protocol, which mirrors real RTM, where a
// read-only commit touches nothing shared.
func (t *Txn) Commit() {
	t.mustActive("Commit")
	t.maybeSpurious()
	if !t.d.m.CommitWrites(t.writes.entries, t.validateReads) {
		t.fail(Conflict, 0)
	}
	t.active = false
	t.d.commits.Add(1)
}

// Attempt runs body inside a fresh hardware transaction and commits it,
// recovering any hardware abort. It returns nil on commit and the *Abort
// otherwise. Non-abort panics propagate. Convenience for all-hardware
// paths; drivers needing mid-function commits use Begin/Commit directly.
func (t *Txn) Attempt(body func()) (ab *Abort) {
	defer func() {
		if r := recover(); r != nil {
			if a, ok := AsAbort(r); ok {
				ab = a
				return
			}
			if t.active {
				t.Cancel()
			}
			panic(r)
		}
	}()
	t.Begin()
	body()
	t.Commit()
	return nil
}
