package htm

import (
	"runtime"

	"rhnorec/internal/mem"
)

// Txn is one thread's hardware-transaction context. It is reusable: Begin
// resets it for a fresh speculation. Methods must be called from the owning
// thread only.
//
// Load, Store, Commit and Abort unwind with a panic carrying *Abort when the
// transaction dies; the caller's attempt loop recovers it (this mirrors RTM
// transferring control to the XBEGIN checkpoint).
type Txn struct {
	d      *Device
	active bool

	// marks is the per-stripe watermark vector: for every stripe in the
	// read footprint, the even stripe-clock value the stripe's logged reads
	// are known to be valid at — all of them at one common snapshot
	// instant. It doubles as the validation filter: a stripe whose clock
	// still reads its watermark needs no re-checking (an unchanged even
	// stripe clock proves no store landed there), so a mutation only
	// triggers revalidation in transactions whose footprint intersects its
	// stripe. Successful sweeps advance the watermarks.
	marks markSet

	// owned flags the stripes whose writeback locks the commit path holds
	// (the write footprint); valid only inside commitValidate.
	owned ownedBits

	// reads value-logs every *distinct* speculative read; duplicate loads
	// are answered from the log (an L1 hit on real hardware) and are not
	// re-logged, so validation is O(distinct addresses). The line set does
	// the capacity accounting.
	reads     readSet
	readLines lineSet

	writes writeSet
	wLines lineSet

	// Per-transaction cached limits and probability thresholds (copied out
	// of the device config at Begin so the per-operation hot path never
	// chases the device pointer).
	readCap, writeCap int
	yieldPeriod       int
	spuriousThresh    uint64
	falseConfThresh   uint64

	// Signature filtering (Config.SignatureFiltering + a signature-publishing
	// memory): rsig blooms the read footprint by line, checkStripe consults
	// it before any per-entry value sweep, filter tallies the outcomes.
	sigOn   bool
	sigBits uint32
	rsig    mem.Signature
	filter  FilterStats

	// abortVal is the recycled panic payload of fail: aborts are part of the
	// steady-state hot path (every fallback starts with one), so they must
	// not allocate. Safe because an abort is fully handled by the recovering
	// attempt loop before the same thread can abort again.
	abortVal Abort

	rngState uint64
	opCount  int
}

// FilterStats tallies signature-filter outcomes: Misses are validations the
// filter proved disjoint (value sweep skipped), Hits are signature
// intersections that went to the value check, FalsePositives the subset of
// hits whose value check then passed, and Uncovered the windows the ring
// could not answer for (wrapped or unpublished).
type FilterStats struct {
	Hits           uint64
	Misses         uint64
	FalsePositives uint64
	Uncovered      uint64
}

// TakeFilterStats returns the accumulated filter tallies and resets them.
func (t *Txn) TakeFilterStats() FilterStats {
	f := t.filter
	t.filter = FilterStats{}
	return f
}

// Begin starts a hardware transaction. The Txn must not already be active.
func (t *Txn) Begin() {
	if t.active {
		panic("htm: Begin inside an active transaction (no nesting in this simulator)")
	}
	t.active = true
	if t.reads.len() > 0 {
		t.reads.reset()
		t.readLines.reset()
	}
	if t.writes.len() > 0 {
		t.writes.reset()
		t.wLines.reset()
	}
	t.readCap, t.writeCap = t.d.effectiveCaps()
	t.yieldPeriod = t.d.cfg.YieldPeriod
	if p := t.d.cfg.SpuriousAbortProb; p > 0 {
		t.spuriousThresh = uint64(p * (1 << 53))
	} else {
		t.spuriousThresh = 0
	}
	if p := t.d.cfg.FalseConflictProb; p > 0 {
		t.falseConfThresh = uint64(p * (1 << 53))
	} else {
		t.falseConfThresh = 0
	}
	if !t.marks.empty() {
		t.marks.reset()
	}
	t.sigOn = t.d.cfg.SignatureFiltering && t.d.m.SignatureBits() != 0
	if t.sigOn {
		t.sigBits = uint32(t.d.m.SignatureBits())
		t.rsig.Reset()
	}
	t.d.starts.Add(1)
	t.hookYield(HookBegin, mem.Nil, 0)
}

// Active reports whether a speculation is in progress.
func (t *Txn) Active() bool { return t.active }

// ReadLineCount reports the distinct cache lines currently in the read set.
func (t *Txn) ReadLineCount() int { return t.readLines.count() }

// WriteLineCount reports the distinct cache lines currently in the write set.
func (t *Txn) WriteLineCount() int { return t.wLines.count() }

func (t *Txn) mustActive(op string) {
	if !t.active {
		panic("htm: " + op + " outside a transaction")
	}
}

// fail aborts the transaction and unwinds.
func (t *Txn) fail(code Code, arg uint64) {
	t.active = false
	t.d.aborts[code].Add(1)
	if h := t.d.hook; h != nil {
		// Announce the abort so traces can label it with its taxonomy cell;
		// the directive is ignored — the transaction is already dead.
		h.Yield(HookAbort, mem.Nil, AbortInfo(code, arg))
	}
	t.abortVal = Abort{Code: code, Arg: arg}
	panic(&t.abortVal)
}

// nextRand is a xorshift64* step for the spurious-abort dice.
func (t *Txn) nextRand() uint64 {
	x := t.rngState
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	t.rngState = x
	return x * 0x2545F4914F6CDD1D
}

// maybeYield periodically yields the processor so that simulated hardware
// threads interleave mid-transaction even on few OS threads.
func (t *Txn) maybeYield() {
	p := t.yieldPeriod
	if p <= 0 {
		return
	}
	t.opCount++
	if t.opCount%p == 0 {
		runtime.Gosched()
	}
}

// maybeSpurious rolls for an environmental abort against a 53-bit
// fixed-point threshold precomputed at Begin.
func (t *Txn) maybeSpurious() {
	if t.spuriousThresh == 0 {
		return
	}
	if t.nextRand()>>11 < t.spuriousThresh {
		t.fail(Spurious, 0)
	}
}

// Load speculatively reads a word. It aborts (conflict) if the read set can
// no longer be validated, and (capacity) if the read set overflows.
//
// A duplicate load — an address already in the read log — is answered from
// the log without touching shared memory, like the L1 hit it would be on
// real hardware. The logged value is by construction the address's value at
// the snapshot the whole log is valid at, so returning it preserves
// opacity; if the location has since changed, the next validation (or the
// commit) aborts the transaction exactly as it would have in the seed
// protocol.
func (t *Txn) Load(a mem.Addr) uint64 {
	t.mustActive("Load")
	t.hookYield(HookLoad, a, 0)
	t.maybeYield()
	t.maybeSpurious()
	if t.writes.len() > 0 {
		if v, ok := t.writes.get(a); ok {
			return v
		}
	}
	if v, ok := t.reads.get(a); ok {
		return v
	}
	v := t.readConsistent(a)
	t.reads.add(a, v)
	if t.sigOn {
		t.rsig.AddLine(mem.LineOf(a), t.sigBits)
	}
	if t.readLines.add(mem.LineOf(a)) && t.readLines.count() > t.readCap {
		t.fail(Capacity, 0)
	}
	return v
}

// readConsistent returns a's value at a snapshot the whole read log is valid
// at, extending the snapshot if a's stripe moved (NOrec-style incremental
// validation — this is what makes the simulated HTM opaque). A stripe whose
// clock still reads its watermark needs no validation at all, so mutations
// in stripes outside the footprint never perturb this transaction.
func (t *Txn) readConsistent(a mem.Addr) uint64 {
	m := t.d.m
	s := int32(m.StripeOf(a))
	for {
		c0 := m.StripeClock(int(s))
		if c0&1 == 1 {
			runtime.Gosched() // a write-back is publishing into this stripe
			continue
		}
		v := m.LoadPlain(a)
		if m.StripeClock(int(s)) != c0 {
			continue // raced with a mutation of this stripe
		}
		mark, seen := t.marks.get(s)
		if seen && mark == c0 {
			// The stripe is unchanged since the snapshot instant the whole
			// log is valid at, so v was a's value at that same instant:
			// returning it extends the log without any re-validation.
			return v
		}
		if seen {
			// The stripe moved since its watermark, so its logged reads
			// must be re-proved current at c0 before the watermark may
			// advance — the sweep below would otherwise take the new mark
			// at face value and skip them. Dice first: bloom hardware
			// would see the motion, not the values.
			t.hookYield(HookValidate, a, 0)
			diced := false
			if !t.rollFalseConflict(&diced) || !t.checkStripe(int(s), mark, c0) {
				t.fail(Conflict, 0)
			}
			if m.StripeClock(int(s)) != c0 {
				continue // the re-check itself was torn
			}
		}
		// Watermark s at c0 (for a first read of the stripe there is
		// nothing logged there yet, so c0 needs no proof) and sweep the
		// whole footprint to a fresh common instant. If s moves again
		// during the sweep, v may predate the new instant — discard it
		// and retry.
		t.marks.set(s, c0)
		if !t.sweepReads(false) {
			t.fail(Conflict, 0)
		}
		if m.StripeClock(int(s)) == c0 {
			return v
		}
	}
}

// Validation pass/spin budgets for the commit path. While a committing
// writer validates, it holds its write stripes' locks with their windows
// open; another committer may symmetrically be validating reads against
// those stripes while holding stripes *we* are validating against, so
// unbounded waiting could deadlock. A bounded wait followed by a conflict
// abort (the TL2 abort-on-locked rule) breaks the cycle; real best-effort
// HTM is free to abort in such windows too.
const (
	commitSpinBudget = 128
	commitPassBudget = 64
)

// rollFalseConflict models bloom-filter conflict detection: the first time
// a sweep finds a moved stripe, roll the false-positive dice; a hit is a
// phantom intersection. Reports false on a hit. At most one roll per sweep.
func (t *Txn) rollFalseConflict(diced *bool) bool {
	if *diced {
		return true
	}
	*diced = true
	if t.falseConfThresh == 0 || t.reads.len() == 0 {
		return true
	}
	return t.nextRand()>>11 >= t.falseConfThresh
}

// checkStripe decides whether stripe s's logged reads survived the clock
// motion (mark, cur]. With signature filtering on it first intersects the
// transaction's read signature against the write signatures of exactly the
// publishes in that window (mem.SigDisjointSince): provably disjoint means
// the logged reads cannot have changed and the per-entry value sweep is
// skipped entirely. A signature hit, or a window the ring cannot answer
// for, falls back to the value check the unfiltered path always runs — the
// filter can only be wrong in the safe direction (a false positive costs a
// redundant sweep; false negatives are impossible because publisher and
// validator hash the same lines at the same width). The caller supplies the
// same stability argument valueCheckStripe requires.
func (t *Txn) checkStripe(s int, mark, cur uint64) bool {
	if t.sigOn {
		disjoint, known := t.d.m.SigDisjointSince(s, mark, cur, &t.rsig)
		if known {
			if disjoint {
				t.filter.Misses++
				return true
			}
			t.filter.Hits++
			if t.valueCheckStripe(s) {
				t.filter.FalsePositives++
				return true
			}
			return false
		}
		t.filter.Uncovered++
	}
	return t.valueCheckStripe(s)
}

// AddReadSignature folds the transaction's read footprint, by line, into
// sig at the given bloom width. TM drivers piggybacking software reads on a
// committed hardware prefix use it to seed their software read signature.
func (t *Txn) AddReadSignature(sig *mem.Signature, bits uint32) {
	for i := range t.reads.entries {
		sig.AddLine(mem.LineOf(t.reads.entries[i].addr), bits)
	}
}

// AddWriteSignature folds the buffered write footprint, by line, into sig
// at the given bloom width. Group-commit holders use it to seed the group's
// accumulated write signature before draining the combining ring.
func (t *Txn) AddWriteSignature(sig *mem.Signature, bits uint32) {
	for i := range t.writes.entries {
		sig.AddLine(mem.LineOf(t.writes.entries[i].Addr), bits)
	}
}

// valueCheckStripe re-checks every logged read that lives in stripe s by
// value. The caller supplies the stability argument (stripe seqlock
// protocol, or holding the stripe's writeback lock).
func (t *Txn) valueCheckStripe(s int) bool {
	if PlantedBugs.SkipValueRevalidation.Load() {
		return true
	}
	m := t.d.m
	for i := range t.reads.entries {
		r := &t.reads.entries[i]
		if m.StripeOf(r.addr) == s && m.LoadPlain(r.addr) != r.val {
			return false
		}
	}
	return true
}

// sweepReads drives the read log to a single consistent snapshot instant:
// it passes over the footprint watermarks until one clean pass observes
// every stripe's clock equal to a watermark established before that pass
// began. Each watermark certifies the stripe's logged reads were current
// when it was set; an unchanged even clock at pass time certifies no store
// landed in the stripe since — so at the instant the clean pass began,
// every logged value was simultaneously current (opacity). A stripe whose
// clock moved is re-checked by value under its seqlock read protocol and
// its watermark advanced, which forces a further confirming pass.
//
// committing selects the writer-commit variant, called from inside
// mem.CommitWrites with the write stripes locked and their windows open:
// owned stripes read odd by our own hand, so they are checked by value
// directly (stable — we hold the lock and have published nothing), against
// the pre-open clock c-1; and waiting on other commits' windows is bounded
// (see commitSpinBudget) to break symmetric validation deadlocks. Owned
// stripes are frozen for the whole validation, so their checks need no
// confirming pass.
//
// Returns false on a value mismatch, a false-conflict roll, or a commit
// budget exhaustion; all are conflict aborts to the caller.
func (t *Txn) sweepReads(committing bool) bool {
	m := t.d.m
	if t.marks.empty() {
		return true
	}
	diced := false
	for pass := 0; ; pass++ {
		if committing && pass > commitPassBudget {
			return false
		}
		clean := true
		failed := false
		t.marks.forEach(func(idx int32, mark uint64) bool {
			s := int(idx)
			c := m.StripeClock(s)
			if committing && t.owned.has(s) {
				// c is odd because our own window is open; c-1 is the value
				// the clock had when CommitWrites opened it. Equal to the
				// watermark means no store landed in s since the log was
				// last valid (restored windows return the clock unchanged).
				if c-1 == mark {
					return true
				}
				if !t.rollFalseConflict(&diced) || !t.checkStripe(s, mark, c-1) {
					failed = true
					return false
				}
				t.marks.set(idx, c-1)
				return true
			}
			if c == mark {
				return true
			}
			for spins := 0; c&1 == 1; spins++ {
				if committing && spins > commitSpinBudget {
					failed = true
					return false
				}
				runtime.Gosched() // a write-back is publishing into this stripe
				c = m.StripeClock(s)
			}
			if c == mark {
				return true // the open window restored without publishing
			}
			if !t.rollFalseConflict(&diced) || !t.checkStripe(s, mark, c) {
				failed = true
				return false
			}
			if m.StripeClock(s) != c {
				clean = false // the check itself was torn: retry the pass
				return true
			}
			t.marks.set(idx, c)
			clean = false // watermark advanced: a confirming pass must follow
			return true
		})
		if failed {
			return false
		}
		if clean {
			return true
		}
	}
}

// commitValidate is the writer-commit validation callback, run by
// mem.CommitWrites with the write stripes (t.owned) locked and their
// seqlock windows open.
func (t *Txn) commitValidate() bool { return t.sweepReads(true) }

// Store speculatively writes a word into the private write buffer. It aborts
// (capacity) if the write set overflows.
func (t *Txn) Store(a mem.Addr, v uint64) {
	t.mustActive("Store")
	t.hookYield(HookStore, a, 0)
	t.maybeYield()
	t.maybeSpurious()
	if t.writes.put(a, v) {
		if t.wLines.add(mem.LineOf(a)) && t.wLines.count() > t.writeCap {
			t.fail(Capacity, 0)
		}
	}
}

// Abort explicitly aborts the transaction (XABORT) with a payload code.
func (t *Txn) Abort(arg uint64) {
	t.mustActive("Abort")
	t.fail(Explicit, arg)
}

// Cancel quietly discards an active speculation without panicking. TM
// drivers use it when an outer restart (not a hardware abort) unwinds
// through an active hardware transaction.
func (t *Txn) Cancel() {
	t.active = false
}

// Commit atomically publishes the write buffer after a final validation. On
// success the transaction becomes inactive; on failure it aborts (conflict).
//
// A writer commit publishes the write set directly from the write buffer
// (no intermediate copy) under the writeback locks of exactly the stripes
// it touches, taken in canonical order by mem.CommitWrites; disjoint-stripe
// commits therefore do not serialize against each other, mirroring per-line
// conflict detection on real hardware. A read-only commit publishes nothing
// and takes no lock: it sweeps only its read-footprint stripes under the
// per-stripe seqlock read protocol, which mirrors real RTM, where a
// read-only commit touches nothing shared.
func (t *Txn) Commit() {
	t.mustActive("Commit")
	t.hookYield(HookCommit, mem.Nil, 0)
	t.maybeSpurious()
	if t.writes.len() == 0 {
		if !t.sweepReads(false) {
			t.fail(Conflict, 0)
		}
	} else {
		t.owned.clear()
		for i := range t.writes.entries {
			t.owned.set(t.d.m.StripeOf(t.writes.entries[i].Addr))
		}
		if !t.d.m.CommitWrites(t.writes.entries, t.commitValidate) {
			t.fail(Conflict, 0)
		}
	}
	t.active = false
	t.d.commits.Add(1)
}

// Attempt runs body inside a fresh hardware transaction and commits it,
// recovering any hardware abort. It returns nil on commit and the *Abort
// otherwise. Non-abort panics propagate. Convenience for all-hardware
// paths; drivers needing mid-function commits use Begin/Commit directly.
func (t *Txn) Attempt(body func()) (ab *Abort) {
	defer func() {
		if r := recover(); r != nil {
			if a, ok := AsAbort(r); ok {
				ab = a
				return
			}
			if t.active {
				t.Cancel()
			}
			panic(r)
		}
	}()
	t.Begin()
	body()
	t.Commit()
	return nil
}
