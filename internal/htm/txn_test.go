package htm

import (
	"sync"
	"sync/atomic"
	"testing"

	"rhnorec/internal/mem"
)

func newTestDevice(cfg Config) (*mem.Memory, *Device, *mem.ThreadCache) {
	m := mem.New(1 << 18)
	d := NewDevice(m, cfg)
	d.SetActiveThreads(1)
	return m, d, m.NewThreadCache()
}

// attempt runs body in a transaction, returning the abort if any.
func attempt(t *Txn, body func()) *Abort {
	return t.Attempt(body)
}

func TestCommitPublishesWrites(t *testing.T) {
	m, d, c := newTestDevice(Config{})
	a := c.Alloc(4)
	tx := d.NewTxn()
	if ab := attempt(tx, func() {
		tx.Store(a, 10)
		tx.Store(a+1, 20)
	}); ab != nil {
		t.Fatalf("unexpected abort: %v", ab)
	}
	if m.LoadPlain(a) != 10 || m.LoadPlain(a+1) != 20 {
		t.Error("committed writes not visible")
	}
}

func TestWritesInvisibleBeforeCommit(t *testing.T) {
	m, d, c := newTestDevice(Config{})
	a := c.Alloc(1)
	tx := d.NewTxn()
	tx.Begin()
	tx.Store(a, 99)
	if m.LoadPlain(a) != 0 {
		t.Error("speculative write escaped before commit")
	}
	tx.Commit()
	if m.LoadPlain(a) != 99 {
		t.Error("write lost at commit")
	}
}

func TestReadOwnWrites(t *testing.T) {
	_, d, c := newTestDevice(Config{})
	a := c.Alloc(1)
	tx := d.NewTxn()
	tx.Begin()
	tx.Store(a, 7)
	if got := tx.Load(a); got != 7 {
		t.Errorf("Load after own Store = %d, want 7", got)
	}
	tx.Commit()
}

func TestExplicitAbort(t *testing.T) {
	m, d, c := newTestDevice(Config{})
	a := c.Alloc(1)
	tx := d.NewTxn()
	ab := attempt(tx, func() {
		tx.Store(a, 1)
		tx.Abort(42)
	})
	if ab == nil || ab.Code != Explicit || ab.Arg != 42 {
		t.Fatalf("abort = %v, want explicit(42)", ab)
	}
	if ab.MayRetry() {
		t.Error("explicit abort should not suggest retry")
	}
	if m.LoadPlain(a) != 0 {
		t.Error("aborted write escaped")
	}
	if tx.Active() {
		t.Error("txn still active after abort")
	}
}

func TestConflictAbortOnPlainStore(t *testing.T) {
	m, d, c := newTestDevice(Config{})
	a := c.Alloc(1)
	tx := d.NewTxn()
	ab := attempt(tx, func() {
		_ = tx.Load(a)
		m.StorePlain(a, 5) // simulate another thread's plain store
		_ = tx.Load(a + 1) // next speculative access must notice
	})
	if ab == nil || ab.Code != Conflict {
		t.Fatalf("abort = %v, want conflict", ab)
	}
	if !ab.MayRetry() {
		t.Error("conflict abort should suggest retry")
	}
}

func TestConflictAbortAtCommit(t *testing.T) {
	m, d, c := newTestDevice(Config{})
	a := c.Alloc(1)
	tx := d.NewTxn()
	ab := attempt(tx, func() {
		_ = tx.Load(a)
		m.StorePlain(a, 5)
		// no further loads: the conflict must be caught by commit validation
	})
	if ab == nil || ab.Code != Conflict {
		t.Fatalf("abort = %v, want conflict at commit", ab)
	}
}

func TestUnrelatedPlainStoreDoesNotAbort(t *testing.T) {
	m, d, c := newTestDevice(Config{})
	a := c.Alloc(2)
	b := c.Alloc(2)
	tx := d.NewTxn()
	ab := attempt(tx, func() {
		_ = tx.Load(a)
		m.StorePlain(b, 5) // disjoint location: value-based validation passes
		_ = tx.Load(a + 1)
	})
	if ab != nil {
		t.Fatalf("unexpected abort on disjoint plain store: %v", ab)
	}
}

func TestWriteCapacityAbort(t *testing.T) {
	_, d, c := newTestDevice(Config{WriteCapacityLines: 4})
	base := c.Alloc(16 * mem.LineWords)
	tx := d.NewTxn()
	ab := attempt(tx, func() {
		for i := 0; i < 16; i++ {
			tx.Store(base+mem.Addr(i*mem.LineWords), 1)
		}
	})
	if ab == nil || ab.Code != Capacity {
		t.Fatalf("abort = %v, want capacity", ab)
	}
	if ab.MayRetry() {
		t.Error("capacity abort must not suggest retry")
	}
}

func TestReadCapacityAbort(t *testing.T) {
	_, d, c := newTestDevice(Config{ReadCapacityLines: 4})
	base := c.Alloc(16 * mem.LineWords)
	tx := d.NewTxn()
	ab := attempt(tx, func() {
		for i := 0; i < 16; i++ {
			_ = tx.Load(base + mem.Addr(i*mem.LineWords))
		}
	})
	if ab == nil || ab.Code != Capacity {
		t.Fatalf("abort = %v, want capacity", ab)
	}
}

func TestSameLineDoesNotConsumeCapacity(t *testing.T) {
	_, d, c := newTestDevice(Config{ReadCapacityLines: 2, WriteCapacityLines: 2})
	base := c.Alloc(mem.LineWords)
	tx := d.NewTxn()
	ab := attempt(tx, func() {
		for i := 0; i < mem.LineWords; i++ {
			_ = tx.Load(base + mem.Addr(i))
			tx.Store(base+mem.Addr(i), uint64(i))
		}
	})
	if ab != nil {
		t.Fatalf("unexpected abort within a single line: %v", ab)
	}
}

func TestHyperThreadingHalvesCapacity(t *testing.T) {
	_, d, c := newTestDevice(Config{Cores: 2, WriteCapacityLines: 8})
	base := c.Alloc(8 * mem.LineWords)
	write6 := func(tx *Txn) *Abort {
		return attempt(tx, func() {
			for i := 0; i < 6; i++ {
				tx.Store(base+mem.Addr(i*mem.LineWords), 1)
			}
		})
	}
	tx := d.NewTxn()
	d.SetActiveThreads(2)
	if ab := write6(tx); ab != nil {
		t.Fatalf("6 lines should fit at full capacity: %v", ab)
	}
	d.SetActiveThreads(3) // oversubscribed: capacity halves to 4
	if ab := write6(tx); ab == nil || ab.Code != Capacity {
		t.Fatalf("abort = %v, want capacity with HyperThreading", ab)
	}
}

func TestSpuriousAborts(t *testing.T) {
	_, d, c := newTestDevice(Config{SpuriousAbortProb: 1.0})
	a := c.Alloc(1)
	tx := d.NewTxn()
	ab := attempt(tx, func() { _ = tx.Load(a) })
	if ab == nil || ab.Code != Spurious {
		t.Fatalf("abort = %v, want spurious with probability 1", ab)
	}
	if ab.MayRetry() {
		t.Error("spurious (fault-like) abort should clear the retry hint")
	}
}

// TestFalseConflictModel: with the bloom false-positive probability at 1,
// any foreign commit into a stripe of the read footprint forces a
// revalidation that kills the reader even though no tracked value changed.
// A mutation in a stripe the footprint never touched triggers no
// revalidation at all — per-stripe conflict filtering is the point of the
// striped substrate — so the reader survives it even at probability 1.
func TestFalseConflictModel(t *testing.T) {
	m, d, c := newTestDevice(Config{FalseConflictProb: 1.0})
	a := c.Alloc(2 * mem.LineWords)
	tx := d.NewTxn()
	ab := attempt(tx, func() {
		_ = tx.Load(a)
		m.StorePlain(a+1, 9) // foreign mutation in the read set's own stripe
		_ = tx.Load(a)
	})
	if ab == nil || ab.Code != Conflict {
		t.Fatalf("abort = %v, want false-positive conflict", ab)
	}
	// The second line of the allocation lives on the next stripe; mutating
	// it moves no clock the footprint watermarks, hence no false positive.
	if ab := attempt(tx, func() {
		_ = tx.Load(a)
		m.StorePlain(a+mem.LineWords, 9) // disjoint-stripe foreign mutation
		_ = tx.Load(a)
	}); ab != nil {
		t.Fatalf("unexpected abort without a footprint intersection: %v", ab)
	}
}

// TestDupLoadsNotRelogged: re-reading an address must not grow the read log —
// validation cost is O(distinct addresses), not O(dynamic reads).
func TestDupLoadsNotRelogged(t *testing.T) {
	_, d, c := newTestDevice(Config{})
	a := c.Alloc(4)
	tx := d.NewTxn()
	if ab := attempt(tx, func() {
		for i := 0; i < 100; i++ {
			_ = tx.Load(a)
		}
		if got := tx.reads.len(); got != 1 {
			t.Errorf("read log has %d entries after 100 loads of one word, want 1", got)
		}
		_ = tx.Load(a + 1)
		for i := 0; i < 100; i++ {
			_ = tx.Load(a)
			_ = tx.Load(a + 1)
		}
		if got := tx.reads.len(); got != 2 {
			t.Errorf("read log has %d entries for 2 distinct words, want 2", got)
		}
	}); ab != nil {
		t.Fatalf("unexpected abort: %v", ab)
	}
}

// TestDupLoadReturnsSnapshotValue: a duplicate load answered from the read
// log must return the value the log was validated at, even if the word has
// since been overwritten by a plain store — that is the only answer
// consistent with the transaction's snapshot. The stale read then dooms the
// transaction at commit, exactly like the seed protocol.
func TestDupLoadReturnsSnapshotValue(t *testing.T) {
	m, d, c := newTestDevice(Config{})
	a := c.Alloc(1)
	m.StorePlain(a, 11)
	tx := d.NewTxn()
	ab := attempt(tx, func() {
		if got := tx.Load(a); got != 11 {
			t.Errorf("first load = %d, want 11", got)
		}
		m.StorePlain(a, 22) // foreign overwrite of a logged word
		if got := tx.Load(a); got != 11 {
			t.Errorf("dup load = %d, want snapshot value 11", got)
		}
	})
	if ab == nil || ab.Code != Conflict {
		t.Fatalf("abort = %v, want conflict at commit for the stale read", ab)
	}
}

// TestDupLoadDisjointStoreCommits: duplicate loads plus a foreign store to an
// untracked word must still commit — value validation sees no change.
func TestDupLoadDisjointStoreCommits(t *testing.T) {
	m, d, c := newTestDevice(Config{})
	a := c.Alloc(2 * mem.LineWords)
	tx := d.NewTxn()
	if ab := attempt(tx, func() {
		_ = tx.Load(a)
		m.StorePlain(a+mem.LineWords, 9)
		_ = tx.Load(a) // dup: served from the log
		_ = tx.Load(a) // and again
	}); ab != nil {
		t.Fatalf("unexpected abort on disjoint store: %v", ab)
	}
}

func TestReadOnlyCommitDoesNotMoveClock(t *testing.T) {
	m, d, c := newTestDevice(Config{})
	a := c.Alloc(1)
	tx := d.NewTxn()
	before := m.Clock()
	if ab := attempt(tx, func() { _ = tx.Load(a) }); ab != nil {
		t.Fatalf("unexpected abort: %v", ab)
	}
	if m.Clock() != before {
		t.Error("read-only commit moved the memory clock")
	}
}

func TestNoNesting(t *testing.T) {
	_, d, _ := newTestDevice(Config{})
	tx := d.NewTxn()
	tx.Begin()
	defer tx.Cancel()
	defer func() {
		if recover() == nil {
			t.Error("nested Begin did not panic")
		}
	}()
	tx.Begin()
}

func TestOpsOutsideTxnPanic(t *testing.T) {
	_, d, c := newTestDevice(Config{})
	a := c.Alloc(1)
	tx := d.NewTxn()
	for name, f := range map[string]func(){
		"load":   func() { tx.Load(a) },
		"store":  func() { tx.Store(a, 1) },
		"commit": func() { tx.Commit() },
		"abort":  func() { tx.Abort(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s outside txn did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestTxnReusableAfterAbort(t *testing.T) {
	m, d, c := newTestDevice(Config{})
	a := c.Alloc(1)
	tx := d.NewTxn()
	if ab := attempt(tx, func() { tx.Abort(1) }); ab == nil {
		t.Fatal("expected abort")
	}
	if ab := attempt(tx, func() { tx.Store(a, 3) }); ab != nil {
		t.Fatalf("reuse after abort failed: %v", ab)
	}
	if m.LoadPlain(a) != 3 {
		t.Error("write after reuse lost")
	}
}

func TestDeviceStatsCount(t *testing.T) {
	_, d, c := newTestDevice(Config{})
	a := c.Alloc(1)
	tx := d.NewTxn()
	attempt(tx, func() { tx.Store(a, 1) })
	attempt(tx, func() { tx.Abort(0) })
	s := d.Stats()
	if s.Starts != 2 || s.Commits != 1 || s.ExplicitAborts != 1 {
		t.Errorf("stats = %+v, want starts=2 commits=1 explicit=1", s)
	}
}

// TestConflictBetweenHardwareTxns: two transactions race on one word; exactly
// one of each conflicting pair commits, and the final value reflects a
// serial order.
func TestConflictBetweenHardwareTxns(t *testing.T) {
	m, d, c := newTestDevice(Config{})
	d.SetActiveThreads(4)
	a := c.Alloc(1)
	const threads, per = 4, 300
	var commits atomic.Uint64
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tx := d.NewTxn()
			for j := 0; j < per; j++ {
				for { // retry until commit
					ab := attempt(tx, func() {
						v := tx.Load(a)
						tx.Store(a, v+1)
					})
					if ab == nil {
						commits.Add(1)
						break
					}
					if ab.Code != Conflict {
						t.Errorf("unexpected abort code %v", ab.Code)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := m.LoadPlain(a); got != threads*per {
		t.Errorf("counter = %d, want %d (lost updates)", got, threads*per)
	}
	if commits.Load() != threads*per {
		t.Errorf("commits = %d, want %d", commits.Load(), threads*per)
	}
}

// TestOpacityInvariant: writers keep x+y constant transactionally; readers
// (including doomed ones) must never observe a violated invariant at the
// moment both loads have returned.
func TestOpacityInvariant(t *testing.T) {
	m, d, c := newTestDevice(Config{})
	d.SetActiveThreads(4)
	base := c.Alloc(mem.LineWords * 2)
	x, y := base, base+mem.LineWords // separate lines
	m.StorePlain(x, 1000)
	var stop atomic.Bool
	var bad atomic.Uint64
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() { // writer: move value between x and y
			defer wg.Done()
			tx := d.NewTxn()
			for !stop.Load() {
				attempt(tx, func() {
					vx := tx.Load(x)
					vy := tx.Load(y)
					if vx > 0 {
						tx.Store(x, vx-1)
						tx.Store(y, vy+1)
					} else {
						tx.Store(x, vx+vy)
						tx.Store(y, 0)
					}
				})
			}
		}()
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() { // reader: check the invariant inside the transaction
			defer wg.Done()
			tx := d.NewTxn()
			for !stop.Load() {
				attempt(tx, func() {
					vx := tx.Load(x)
					vy := tx.Load(y)
					if vx+vy != 1000 {
						bad.Add(1)
					}
				})
			}
		}()
	}
	for i := 0; i < 200000 && bad.Load() == 0; i++ {
	}
	stop.Store(true)
	wg.Wait()
	if bad.Load() != 0 {
		t.Errorf("opacity violated %d times: a speculative reader saw x+y != 1000", bad.Load())
	}
	if got := m.LoadPlain(x) + m.LoadPlain(y); got != 1000 {
		t.Errorf("final x+y = %d, want 1000", got)
	}
}

// TestStrongAtomicityWithPlainWriter: a plain (non-transactional) writer
// keeps x+y constant under the writeback lock one word at a time is NOT
// atomic, so instead it updates both words in one CommitWrites; hardware
// readers must never see a torn pair.
func TestStrongAtomicityWithPlainWriter(t *testing.T) {
	m, d, c := newTestDevice(Config{})
	d.SetActiveThreads(3)
	base := c.Alloc(mem.LineWords * 2)
	x, y := base, base+mem.LineWords
	m.StorePlain(x, 500)
	m.StorePlain(y, 500)
	var stop atomic.Bool
	var bad atomic.Uint64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // plain writer using an atomic two-word publish
		defer wg.Done()
		v := uint64(500)
		for !stop.Load() {
			v++
			m.CommitWrites([]mem.WriteEntry{{Addr: x, Value: v}, {Addr: y, Value: 1000 - v%1000}}, nil)
		}
	}()
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tx := d.NewTxn()
			for !stop.Load() {
				attempt(tx, func() {
					vx := tx.Load(x)
					vy := tx.Load(y)
					if vx%1000+vy != 1000 && !(vx%1000 == 0 && vy == 1000) {
						bad.Add(1)
					}
				})
			}
		}()
	}
	for i := 0; i < 200000 && bad.Load() == 0; i++ {
	}
	stop.Store(true)
	wg.Wait()
	if bad.Load() != 0 {
		t.Errorf("strong atomicity violated %d times", bad.Load())
	}
}

func TestAbortStringAndError(t *testing.T) {
	if (&Abort{Code: Conflict}).Error() != "htm abort: conflict" {
		t.Error("conflict Error() text")
	}
	if (&Abort{Code: Explicit, Arg: 7}).Error() != "htm abort: explicit(7)" {
		t.Error("explicit Error() text")
	}
	for c, want := range map[Code]string{Conflict: "conflict", Capacity: "capacity", Explicit: "explicit", Spurious: "spurious", Code(99): "htm.Code(99)"} {
		if c.String() != want {
			t.Errorf("Code(%d).String() = %q, want %q", c, c.String(), want)
		}
	}
}

func TestAsAbort(t *testing.T) {
	if _, ok := AsAbort("boom"); ok {
		t.Error("AsAbort matched a non-abort")
	}
	if a, ok := AsAbort(&Abort{Code: Capacity}); !ok || a.Code != Capacity {
		t.Error("AsAbort failed to match an abort")
	}
}

func TestAttemptPropagatesForeignPanics(t *testing.T) {
	_, d, _ := newTestDevice(Config{})
	tx := d.NewTxn()
	defer func() {
		if r := recover(); r != "user bug" {
			t.Errorf("recovered %v, want user bug", r)
		}
		if tx.Active() {
			t.Error("txn left active after foreign panic")
		}
	}()
	tx.Attempt(func() { panic("user bug") })
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	def := DefaultConfig()
	if cfg.Cores != def.Cores || cfg.ReadCapacityLines != def.ReadCapacityLines || cfg.WriteCapacityLines != def.WriteCapacityLines {
		t.Errorf("withDefaults = %+v, want %+v", cfg, def)
	}
	custom := Config{Cores: 4, ReadCapacityLines: 10, WriteCapacityLines: 5}.withDefaults()
	if custom.Cores != 4 || custom.ReadCapacityLines != 10 || custom.WriteCapacityLines != 5 {
		t.Errorf("withDefaults clobbered explicit values: %+v", custom)
	}
}
