package htm

import (
	"sync"
	"testing"

	"rhnorec/internal/mem"
)

func TestDeviceAccessors(t *testing.T) {
	m := mem.New(1 << 12)
	d := NewDevice(m, Config{Cores: 4})
	if d.Memory() != m {
		t.Error("Memory accessor broken")
	}
	if d.Config().Cores != 4 {
		t.Errorf("Config().Cores = %d", d.Config().Cores)
	}
	d.SetActiveThreads(6)
	if d.ActiveThreads() != 6 {
		t.Errorf("ActiveThreads = %d", d.ActiveThreads())
	}
}

func TestEffectiveCapsHalveExactlyAboveCores(t *testing.T) {
	m := mem.New(1 << 12)
	d := NewDevice(m, Config{Cores: 8, ReadCapacityLines: 100, WriteCapacityLines: 40})
	d.SetActiveThreads(8) // at the core count: full capacity
	r, w := d.effectiveCaps()
	if r != 100 || w != 40 {
		t.Errorf("caps at 8 threads = %d,%d want 100,40", r, w)
	}
	d.SetActiveThreads(9) // one over: halved
	r, w = d.effectiveCaps()
	if r != 50 || w != 20 {
		t.Errorf("caps at 9 threads = %d,%d want 50,20", r, w)
	}
}

func TestYieldDisabled(t *testing.T) {
	m := mem.New(1 << 14)
	d := NewDevice(m, Config{YieldPeriod: -1})
	d.SetActiveThreads(1)
	tc := m.NewThreadCache()
	a := tc.Alloc(1)
	tx := d.NewTxn()
	// Just exercise the disabled-yield path over many ops.
	tx.Begin()
	for i := 0; i < 1000; i++ {
		_ = tx.Load(a)
	}
	tx.Commit()
}

func TestConcurrentDeviceStats(t *testing.T) {
	m := mem.New(1 << 16)
	d := NewDevice(m, Config{})
	d.SetActiveThreads(4)
	tc := m.NewThreadCache()
	a := tc.Alloc(1)
	_ = a
	var wg sync.WaitGroup
	const threads, per = 4, 200
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tx := d.NewTxn()
			ctc := m.NewThreadCache()
			b := ctc.Alloc(1)
			for j := 0; j < per; j++ {
				tx.Attempt(func() { tx.Store(b, uint64(j)) })
			}
		}()
	}
	wg.Wait()
	s := d.Stats()
	if s.Starts < threads*per {
		t.Errorf("Starts = %d, want >= %d", s.Starts, threads*per)
	}
	if s.Commits+s.ConflictAborts+s.CapacityAborts+s.ExplicitAborts+s.SpuriousAborts < threads*per {
		t.Errorf("outcome counters do not cover all starts: %+v", s)
	}
}

func TestClockStableSkipsOddValues(t *testing.T) {
	m := mem.New(1 << 12)
	if c := m.ClockStable(); c&1 != 0 {
		t.Errorf("ClockStable returned odd value %d", c)
	}
}
