package htm

import (
	"testing"

	"rhnorec/internal/mem"
)

// Allocation budget for the simulated HTM device: a steady-state hardware
// transaction — Begin, speculative loads and stores, Commit — performs zero
// heap allocations, and so does a hardware abort unwinding through Attempt
// (the abort value is recycled per Txn; the panic/recover pair is
// allocation-free). The read/write sets, the write buffer, and the spill
// structures are all recycled across Begin calls on the same Txn.
// testing.AllocsPerRun warm-calls the function once, and each test runs a
// few transactions first so lazily-grown structures reach steady size.

func TestZeroAllocTxnReadWrite(t *testing.T) {
	m := mem.New(1 << 14)
	d := NewDevice(m, Config{YieldPeriod: -1})
	d.SetActiveThreads(1)
	tc := m.NewThreadCache()
	addrs := make([]mem.Addr, 16)
	for i := range addrs {
		addrs[i] = tc.Alloc(mem.LineWords)
	}
	tx := d.NewTxn()
	run := func() {
		tx.Begin()
		for _, a := range addrs {
			tx.Store(a, tx.Load(a)+1)
		}
		tx.Commit()
	}
	for i := 0; i < 16; i++ {
		run()
	}
	if avg := testing.AllocsPerRun(100, run); avg != 0 {
		t.Fatalf("steady-state hardware txn allocates: %v allocs/run, want 0", avg)
	}
}

// TestZeroAllocTxnAbortRecovery proves the abort path recycles too: a
// deterministic capacity abort (third read line against a two-line budget)
// unwinds through Attempt and the immediate retry commits — all without
// allocating.
func TestZeroAllocTxnAbortRecovery(t *testing.T) {
	m := mem.New(1 << 14)
	d := NewDevice(m, Config{YieldPeriod: -1, ReadCapacityLines: 2})
	d.SetActiveThreads(1)
	tc := m.NewThreadCache()
	addrs := make([]mem.Addr, 3)
	for i := range addrs {
		addrs[i] = tc.Alloc(mem.LineWords)
	}
	tx := d.NewTxn()
	run := func() {
		ab := tx.Attempt(func() {
			_ = tx.Load(addrs[0])
			_ = tx.Load(addrs[1])
			_ = tx.Load(addrs[2]) // third distinct line: capacity abort
		})
		if ab == nil || ab.Code != Capacity {
			t.Fatalf("want capacity abort, got %v", ab)
		}
		if ab := tx.Attempt(func() {
			tx.Store(addrs[0], tx.Load(addrs[0])+1)
		}); ab != nil {
			t.Fatalf("retry aborted: %v", ab)
		}
	}
	for i := 0; i < 16; i++ {
		run()
	}
	if avg := testing.AllocsPerRun(100, run); avg != 0 {
		t.Fatalf("abort/recover cycle allocates: %v allocs/run, want 0", avg)
	}
}
