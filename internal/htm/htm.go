// Package htm simulates a best-effort hardware transactional memory in the
// style of Intel Haswell RTM, which the paper's fast paths and the RH NOrec
// prefix/postfix transactions run on. Go exposes no HTM intrinsics, so this
// package is the reproduction's stand-in substrate (see DESIGN.md §1).
//
// Semantics provided, matching what the paper relies on from real RTM:
//
//   - Opacity: a speculative Load never returns a value inconsistent with a
//     single memory snapshot. The transaction value-logs its reads and
//     revalidates the whole log whenever the global memory clock has moved,
//     exactly the way NOrec validates; a failed revalidation is a conflict
//     abort.
//   - Isolation of speculative writes: Stores are buffered privately and
//     published atomically at Commit (under the memory's writeback lock), so
//     no other thread — transactional or not — ever observes a partial
//     write set. This is the property Figure 2 of the paper leans on.
//     Read-only commits publish nothing and take no lock: they validate via
//     the memory's seqlock read protocol, like a real RTM commit of a
//     read-only transaction, which touches nothing shared.
//   - Strong atomicity with plain accesses: every plain mutation moves the
//     memory clock, so it aborts (at their next validation point) all
//     hardware transactions that have read the mutated locations.
//   - Best effort: transactions abort on conflicts, on read/write-set
//     capacity overflow (accounted in distinct 64-byte lines, like a
//     transactional L1), on explicit request (XABORT), and — optionally —
//     spuriously, modelling interrupts, page faults and other environmental
//     aborts. There is no progress guarantee; callers must provide a
//     software fallback.
//
// Timing fidelity: a real HTM aborts a reader the instant a conflicting
// cache line is invalidated; this simulator aborts it at its next Load or at
// Commit. Both orderings admit exactly the same committed histories, which
// is what the algorithms above care about.
//
// Aborts unwind as panics carrying *Abort, mirroring how RTM aborts transfer
// control back to the XBEGIN checkpoint. The TM drivers (packages
// lockelision, hynorec, core, ...) recover them at their attempt loop.
package htm

import (
	"fmt"

	"rhnorec/internal/obs"
)

// Code classifies why a hardware transaction aborted, mirroring the RTM
// abort status bits the paper's retry policy (§3.3) inspects. Figures 4–6
// break HTM aborts per operation into the conflict and capacity series;
// the Abort.Cause mapping below refines Explicit into the protocol-level
// taxonomy the observability layer reports.
type Code uint8

const (
	// Conflict: another thread's commit or plain store invalidated the
	// transaction's read or write set. Retrying in hardware may help —
	// the only code whose RTM status sets the may-retry hint (paper §3.3;
	// the "HTM conflict aborts" series of Figures 4–6).
	Conflict Code = iota + 1
	// Capacity: the read or write set overflowed the transactional cache
	// (paper §3.2's L1/L2-bounded domains). Retrying in hardware is futile
	// — the paper's NO_RETRY case (§3.3; the "HTM capacity aborts" series
	// of Figures 4–6).
	Capacity
	// Explicit: the transaction executed Abort (XABORT), e.g. after
	// observing a taken global_htm_lock (Algorithm 1 line 3). The payload
	// distinguishes the protocol-level causes — see the Arg constants.
	Explicit
	// Spurious: an environmental abort (interrupt, page fault, TLB miss,
	// ...; paper §3.2's non-transactional abort sources). Like most such
	// aborts on Haswell, it clears the retry hint: the condition that
	// killed the transaction is likely to recur immediately, so the right
	// response is the software fallback.
	Spurious
)

// Canonical XABORT payloads of the protocols in this repository. Every TM
// driver passes one of these to Txn.Abort, so the observability layer can
// join the hardware abort code with the algorithm-level cause (Abort.Cause
// below; the obs.Cause taxonomy documents the join).
const (
	// ArgHTMLockTaken: the fast path's begin-time subscription found the
	// global HTM lock — or Lock Elision's elided global lock — held
	// (Algorithm 1 line 3; paper §1.2 for lock elision).
	ArgHTMLockTaken uint64 = 1
	// ArgClockLocked: the fast path's commit point found the NOrec global
	// clock locked by a software writer (Algorithm 1 lines 29–32), or an
	// RH NOrec prefix commit found it locked (Algorithm 3 lines 47–56).
	ArgClockLocked uint64 = 2
	// ArgSerialTaken: the serial starvation lock of §3.3 was held at the
	// fast path's commit point.
	ArgSerialTaken uint64 = 3
	// ArgWrongPhase: PhasedTM's phase subscription found the system in (or
	// entering) a software phase (paper §1.1, [16]).
	ArgWrongPhase uint64 = 4
)

// Cause joins the hardware abort code with the algorithm-level XABORT
// payload into the observability taxonomy. This is the device-boundary
// mapping: TM drivers never classify aborts themselves, so every abort in
// the system lands in exactly one taxonomy cell (obs.Cause).
func (a *Abort) Cause() obs.Cause {
	switch a.Code {
	case Conflict:
		return obs.CauseConflict
	case Capacity:
		return obs.CauseCapacity
	case Spurious:
		return obs.CauseSpurious
	case Explicit:
		switch a.Arg {
		case ArgHTMLockTaken:
			return obs.CauseHTMLockTaken
		case ArgClockLocked:
			return obs.CauseClockLocked
		case ArgSerialTaken:
			return obs.CauseSerialTaken
		case ArgWrongPhase:
			return obs.CauseWrongPhase
		}
		return obs.CauseExplicitOther
	}
	return obs.CauseExplicitOther
}

func (c Code) String() string {
	switch c {
	case Conflict:
		return "conflict"
	case Capacity:
		return "capacity"
	case Explicit:
		return "explicit"
	case Spurious:
		return "spurious"
	default:
		return fmt.Sprintf("htm.Code(%d)", uint8(c))
	}
}

// Abort is the panic payload of a hardware abort. Arg carries the XABORT
// immediate for explicit aborts and is zero otherwise.
type Abort struct {
	Code Code
	Arg  uint64
}

func (a *Abort) Error() string {
	if a.Code == Explicit {
		return fmt.Sprintf("htm abort: explicit(%d)", a.Arg)
	}
	return "htm abort: " + a.Code.String()
}

// MayRetry reports whether the RTM status would set the "retry may succeed"
// hint: true only for conflicts; capacity, explicit and environmental
// aborts fall back (the paper's NO_RETRY case, §3.3).
func (a *Abort) MayRetry() bool { return a.Code == Conflict }

// AsAbort extracts an *Abort from a recovered panic value.
func AsAbort(r any) (*Abort, bool) {
	a, ok := r.(*Abort)
	return a, ok
}

// Config describes the simulated transactional hardware.
type Config struct {
	// Cores is the number of simulated physical cores. When more active
	// threads than cores run, per-transaction capacity halves, modelling
	// HyperThreading's split of the L1 (paper §3.2).
	Cores int
	// ReadCapacityLines bounds the distinct cache lines a transaction may
	// read (Haswell tracks reads in an L2-sized bloom filter, so this is
	// larger than the write capacity).
	ReadCapacityLines int
	// WriteCapacityLines bounds the distinct cache lines a transaction may
	// write (L1-bounded on Haswell).
	WriteCapacityLines int
	// SpuriousAbortProb is the per-operation probability of an
	// environmental abort. Zero disables spurious aborts.
	SpuriousAbortProb float64
	// FalseConflictProb models Haswell's bloom-filter read-set tracking
	// (§3.2 of the paper): with this probability, a revalidation event
	// triggered by a foreign commit aborts the transaction even though no
	// tracked value actually changed — a filter false positive. Zero
	// disables the model.
	FalseConflictProb float64
	// YieldPeriod makes every Nth speculative operation yield the
	// processor. Real hardware threads interleave at instruction
	// granularity; goroutines on few OS threads do not, which would hide
	// exactly the transaction overlaps the paper measures. Yield points
	// restore that interleaving. Zero takes the default; negative
	// disables.
	YieldPeriod int
	// SeedFn, when non-nil, supplies each transaction's RNG seed instead of
	// the device's arrival-order counter, whose value depends on goroutine
	// scheduling. The explorer installs a deterministic source here so runs
	// are bit-reproducible; nil keeps the counter.
	SeedFn func() uint64
	// SignatureFiltering makes transactions maintain a bloom signature of
	// their read footprint and consult the memory's published write
	// signatures (mem.SigDisjointSince) before falling back to per-entry
	// value validation. Effective only when the memory publishes signatures
	// (mem.SetSignatureBits); off by default — consultation skips the value
	// sweep's memory loads, which perturbs deterministic-exploration yield
	// sequences, so recorded schedules assume it off unless re-recorded.
	SignatureFiltering bool
}

// DefaultConfig mirrors the paper's testbed: 8 cores, a 32 KiB L1 write
// domain (512 lines) and a larger read domain.
func DefaultConfig() Config {
	return Config{
		Cores:              8,
		ReadCapacityLines:  2048,
		WriteCapacityLines: 512,
		SpuriousAbortProb:  0,
		YieldPeriod:        7,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Cores <= 0 {
		c.Cores = d.Cores
	}
	if c.ReadCapacityLines <= 0 {
		c.ReadCapacityLines = d.ReadCapacityLines
	}
	if c.WriteCapacityLines <= 0 {
		c.WriteCapacityLines = d.WriteCapacityLines
	}
	if c.YieldPeriod == 0 {
		c.YieldPeriod = d.YieldPeriod
	}
	return c
}
