package htm

import (
	"testing"

	"rhnorec/internal/mem"
)

// TestOpacityReaderSpansTwoStripes is the striping opacity regression: a
// reader whose footprint spans two stripes must never observe half of a
// commit that mutated both. The reader logs a from stripe A; one commit
// then atomically rewrites a (stripe A) and b (stripe B); the subsequent
// read of b has to abort rather than pair the stale a with the fresh b —
// the cross-stripe sweep must catch stripe A's motion even though b's own
// stripe looks pristine.
func TestOpacityReaderSpansTwoStripes(t *testing.T) {
	m, d, c := newTestDevice(Config{})
	a := c.Alloc(2 * mem.LineWords)
	b := a + mem.LineWords
	if m.StripeOf(a) == m.StripeOf(b) {
		t.Fatalf("a and b share stripe %d; the regression needs two stripes", m.StripeOf(a))
	}
	m.StorePlain(a, 10)
	m.StorePlain(b, 20)
	tx := d.NewTxn()
	ab := attempt(tx, func() {
		if got := tx.Load(a); got != 10 {
			t.Fatalf("Load(a) = %d, want 10", got)
		}
		if !m.CommitWrites([]mem.WriteEntry{{Addr: a, Value: 11}, {Addr: b, Value: 21}}, nil) {
			t.Fatal("foreign commit failed")
		}
		if got := tx.Load(b); true {
			t.Fatalf("Load(b) returned %d; the transaction observed {a:10, b:%d}, which no memory state ever held", got, got)
		}
	})
	if ab == nil || ab.Code != Conflict {
		t.Fatalf("abort = %v, want conflict", ab)
	}
}

// TestReaderSurvivesDisjointStripeCommit is the payoff side of striping: a
// commit whose write set never intersects the reader's footprint stripes
// must not disturb the reader at all — no revalidation, no abort, and the
// commit goes through while the reader is mid-flight.
func TestReaderSurvivesDisjointStripeCommit(t *testing.T) {
	m, d, c := newTestDevice(Config{})
	a := c.Alloc(4 * mem.LineWords)
	foreign1 := a + 2*mem.LineWords
	foreign2 := a + 3*mem.LineWords
	m.StorePlain(a, 10)
	tx := d.NewTxn()
	ab := attempt(tx, func() {
		if got := tx.Load(a); got != 10 {
			t.Fatalf("Load(a) = %d, want 10", got)
		}
		if !m.CommitWrites([]mem.WriteEntry{{Addr: foreign1, Value: 1}, {Addr: foreign2, Value: 2}}, nil) {
			t.Fatal("disjoint foreign commit failed")
		}
		if got := tx.Load(a + 1); got != 0 {
			t.Fatalf("Load(a+1) = %d, want 0", got)
		}
	})
	if ab != nil {
		t.Fatalf("reader aborted on a disjoint-stripe commit: %v", ab)
	}
}

// TestCommitValidatesOwnWriteStripeReads covers the read∩write stripe case
// at commit: the transaction reads a word, another thread's store then
// changes it, and the transaction tries to commit a write to a *different*
// word of the same stripe. The commit holds that stripe's lock with the
// window open, so the validation must check the read by value under its
// own lock — and abort.
func TestCommitValidatesOwnWriteStripeReads(t *testing.T) {
	m, d, c := newTestDevice(Config{})
	a := c.Alloc(mem.LineWords)
	tx := d.NewTxn()
	ab := attempt(tx, func() {
		if got := tx.Load(a); got != 0 {
			t.Fatalf("Load(a) = %d, want 0", got)
		}
		m.StorePlain(a, 99) // foreign store to the read word
		tx.Store(a+1, 7)    // write lands in the same stripe
	})
	if ab == nil || ab.Code != Conflict {
		t.Fatalf("abort = %v, want conflict from the owned-stripe value check", ab)
	}
	if got := m.LoadPlain(a + 1); got != 0 {
		t.Errorf("aborted commit leaked its write: a+1 = %d", got)
	}
}
