package htm

import "sync/atomic"

// PlantedBugs holds deliberately injectable protocol defects, off by
// default. They exist so the schedule explorer (internal/explore,
// cmd/rhexplore) can demonstrate that it finds and shrinks real safety
// violations: CI flips one on, asserts rhexplore produces a minimal
// counterexample, and flips it back off (docs/EXPLORE.md walks through the
// resulting trace). Production code never sets these.
var PlantedBugs struct {
	// SkipValueRevalidation makes valueCheckStripe vacuously succeed, so a
	// transaction whose read stripe moved keeps its stale log — an opacity
	// bug: a reader can observe values from two different snapshots.
	SkipValueRevalidation atomic.Bool
}
