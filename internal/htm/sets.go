package htm

import (
	"rhnorec/internal/mem"
)

// smallSetCap is the inline capacity of lineSet and writeSet. Typical
// transactions stay under it and never touch a map; larger ones spill.
const smallSetCap = 16

// lineSet tracks distinct cache lines. Small sets live in an inline array
// (linear scan beats hashing at this size and reset is free); big sets
// spill to a map.
type lineSet struct {
	arr [smallSetCap]mem.Line
	n   int
	m   map[mem.Line]struct{} // nil until first spill
}

func (s *lineSet) reset() {
	s.n = 0
	if len(s.m) > 0 {
		clear(s.m)
	}
}

// add inserts l, reporting whether it was new.
func (s *lineSet) add(l mem.Line) bool {
	if len(s.m) > 0 {
		if _, ok := s.m[l]; ok {
			return false
		}
		s.m[l] = struct{}{}
		return true
	}
	for i := 0; i < s.n; i++ {
		if s.arr[i] == l {
			return false
		}
	}
	if s.n < smallSetCap {
		s.arr[s.n] = l
		s.n++
		return true
	}
	// Spill to the map.
	if s.m == nil {
		s.m = make(map[mem.Line]struct{}, 4*smallSetCap)
	}
	for i := 0; i < s.n; i++ {
		s.m[s.arr[i]] = struct{}{}
	}
	s.n = 0
	s.m[l] = struct{}{}
	return true
}

func (s *lineSet) count() int {
	if len(s.m) > 0 {
		return len(s.m)
	}
	return s.n
}

// writeSet is the speculative write buffer: insertion-ordered address/value
// pairs with an index map for large transactions.
type writeSet struct {
	addrs []mem.Addr
	vals  []uint64
	idx   map[mem.Addr]int // nil until first spill
}

func (s *writeSet) reset() {
	s.addrs = s.addrs[:0]
	s.vals = s.vals[:0]
	if len(s.idx) > 0 {
		clear(s.idx)
	}
}

func (s *writeSet) len() int { return len(s.addrs) }

// get returns the buffered value for a, if any.
func (s *writeSet) get(a mem.Addr) (uint64, bool) {
	if s.idx != nil && len(s.idx) > 0 {
		if i, ok := s.idx[a]; ok {
			return s.vals[i], true
		}
		return 0, false
	}
	for i := len(s.addrs) - 1; i >= 0; i-- {
		if s.addrs[i] == a {
			return s.vals[i], true
		}
	}
	return 0, false
}

// put buffers a write, reporting whether the address was new.
func (s *writeSet) put(a mem.Addr, v uint64) bool {
	if len(s.idx) > 0 {
		if i, ok := s.idx[a]; ok {
			s.vals[i] = v
			return false
		}
		s.idx[a] = len(s.addrs)
		s.addrs = append(s.addrs, a)
		s.vals = append(s.vals, v)
		return true
	}
	for i := range s.addrs {
		if s.addrs[i] == a {
			s.vals[i] = v
			return false
		}
	}
	s.addrs = append(s.addrs, a)
	s.vals = append(s.vals, v)
	if len(s.addrs) > smallSetCap {
		if s.idx == nil {
			s.idx = make(map[mem.Addr]int, 4*smallSetCap)
		}
		for i, addr := range s.addrs {
			s.idx[addr] = i
		}
	}
	return true
}
