package htm

import (
	"math/bits"

	"rhnorec/internal/mem"
)

// smallSetCap is the inline capacity of lineSet and the addr-indexed sets.
// Typical transactions stay under it and never touch a map; larger ones
// spill.
const smallSetCap = 16

// spillIdleResets is the spill-decay hysteresis: after this many
// consecutive resets in which a previously-spilled set never outgrew its
// inline storage, the spill structure is dropped. One oversized transaction
// then stops taxing every later small one with map traffic (each insert
// paying a hash probe instead of a short linear scan), while a workload
// that alternates sizes keeps its map warm instead of reallocating it every
// flip. Dropping the map is the lone steady-state allocation release — it
// re-allocates only if the footprint outgrows smallSetCap again.
const spillIdleResets = 8

// lineSet tracks distinct cache lines. Small sets live in an inline array
// (linear scan beats hashing at this size and reset is free); big sets
// spill to a map, which decays back to inline-only after spillIdleResets
// transactions that fit.
type lineSet struct {
	arr  [smallSetCap]mem.Line
	n    int
	m    map[mem.Line]struct{} // nil until first spill
	idle uint8                 // consecutive resets with the map unused
}

func (s *lineSet) reset() {
	s.n = 0
	if s.m == nil {
		return
	}
	if len(s.m) > 0 {
		clear(s.m)
		s.idle = 0
		return
	}
	if s.idle++; s.idle >= spillIdleResets {
		s.m = nil
		s.idle = 0
	}
}

// add inserts l, reporting whether it was new.
func (s *lineSet) add(l mem.Line) bool {
	if len(s.m) > 0 {
		if _, ok := s.m[l]; ok {
			return false
		}
		s.m[l] = struct{}{}
		return true
	}
	for i := 0; i < s.n; i++ {
		if s.arr[i] == l {
			return false
		}
	}
	if s.n < smallSetCap {
		s.arr[s.n] = l
		s.n++
		return true
	}
	// Spill to the map.
	if s.m == nil {
		s.m = make(map[mem.Line]struct{}, 4*smallSetCap)
	}
	for i := 0; i < s.n; i++ {
		s.m[s.arr[i]] = struct{}{}
	}
	s.n = 0
	s.m[l] = struct{}{}
	return true
}

func (s *lineSet) count() int {
	if len(s.m) > 0 {
		return len(s.m)
	}
	return s.n
}

// writeSet is the speculative write buffer: insertion-ordered
// mem.WriteEntry values (so Commit publishes the slice as-is, no copy) with
// an index map for large transactions.
type writeSet struct {
	entries []mem.WriteEntry
	idx     map[mem.Addr]int // nil until first spill
	idle    uint8            // consecutive resets with the index unused
}

func (s *writeSet) reset() {
	s.entries = s.entries[:0]
	if s.idx == nil {
		return
	}
	if len(s.idx) > 0 {
		clear(s.idx)
		s.idle = 0
		return
	}
	if s.idle++; s.idle >= spillIdleResets {
		s.idx = nil
		s.idle = 0
	}
}

func (s *writeSet) len() int { return len(s.entries) }

// get returns the buffered value for a, if any.
func (s *writeSet) get(a mem.Addr) (uint64, bool) {
	if len(s.idx) > 0 {
		if i, ok := s.idx[a]; ok {
			return s.entries[i].Value, true
		}
		return 0, false
	}
	for i := len(s.entries) - 1; i >= 0; i-- {
		if s.entries[i].Addr == a {
			return s.entries[i].Value, true
		}
	}
	return 0, false
}

// put buffers a write, reporting whether the address was new.
func (s *writeSet) put(a mem.Addr, v uint64) bool {
	if len(s.idx) > 0 {
		if i, ok := s.idx[a]; ok {
			s.entries[i].Value = v
			return false
		}
		s.idx[a] = len(s.entries)
		s.entries = append(s.entries, mem.WriteEntry{Addr: a, Value: v})
		return true
	}
	for i := range s.entries {
		if s.entries[i].Addr == a {
			s.entries[i].Value = v
			return false
		}
	}
	s.entries = append(s.entries, mem.WriteEntry{Addr: a, Value: v})
	if len(s.entries) > smallSetCap {
		s.spill()
	}
	return true
}

// spill populates the index from the inline prefix, once, at the boundary.
func (s *writeSet) spill() {
	if s.idx == nil {
		s.idx = make(map[mem.Addr]int, 4*smallSetCap)
	}
	for i := range s.entries {
		s.idx[s.entries[i].Addr] = i
	}
}

// ownedBits is a fixed bitmap over stripe indices, flagging the stripes
// whose writeback locks the commit path holds.
type ownedBits [mem.MaxStripes / 64]uint64

func (b *ownedBits) clear()         { *b = ownedBits{} }
func (b *ownedBits) set(s int)      { b[s>>6] |= 1 << (uint(s) & 63) }
func (b *ownedBits) has(s int) bool { return b[s>>6]&(1<<(uint(s)&63)) != 0 }

// markSet is the per-stripe watermark vector: for every stripe in the read
// footprint, the even clock value the stripe's logged reads were last
// validated at. The stripe index space is small and bounded, so the set is
// direct-mapped: get/set on the per-read hot path are O(1) array accesses
// gated by the footprint bitmap. (A small-set/spill variant measurably
// taxed large footprints — an RBTree traversal touches dozens of stripes,
// pushing every per-read lookup into a map.) Stale mark slots are never
// read: the bitmap gates them, so reset is O(stripes/64), not O(stripes).
type markSet struct {
	marks   [mem.MaxStripes]uint64
	present ownedBits
	n       int
}

func (s *markSet) reset() {
	if s.n != 0 {
		s.present.clear()
		s.n = 0
	}
}

func (s *markSet) empty() bool { return s.n == 0 }

// get returns the watermark for stripe idx, if one is recorded.
func (s *markSet) get(idx int32) (uint64, bool) {
	if !s.present.has(int(idx)) {
		return 0, false
	}
	return s.marks[idx], true
}

// set records or updates the watermark for stripe idx.
func (s *markSet) set(idx int32, mark uint64) {
	if !s.present.has(int(idx)) {
		s.present.set(int(idx))
		s.n++
	}
	s.marks[idx] = mark
}

// forEach visits every (stripe, watermark) pair in ascending stripe order.
// Updating the current stripe's mark from fn is allowed; adding stripes is
// not.
func (s *markSet) forEach(fn func(idx int32, mark uint64) bool) bool {
	for w, word := range s.present {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << uint(b)
			idx := int32(w<<6 + b)
			if !fn(idx, s.marks[idx]) {
				return false
			}
		}
	}
	return true
}

// readEntry value-logs one speculative read for revalidation.
type readEntry struct {
	addr mem.Addr
	val  uint64
}

// readSet is the deduplicated speculative read log: insertion-ordered
// (addr, value) pairs — the value log validation walks — plus a spill index,
// the same shape as writeSet. Deduplication keeps validation O(distinct
// addresses) instead of O(dynamic reads): a transaction that re-reads a hot
// word a thousand times validates it once.
type readSet struct {
	entries []readEntry
	idx     map[mem.Addr]int // nil until first spill
	idle    uint8            // consecutive resets with the index unused
}

func (s *readSet) reset() {
	s.entries = s.entries[:0]
	if s.idx == nil {
		return
	}
	if len(s.idx) > 0 {
		clear(s.idx)
		s.idle = 0
		return
	}
	if s.idle++; s.idle >= spillIdleResets {
		s.idx = nil
		s.idle = 0
	}
}

func (s *readSet) len() int { return len(s.entries) }

// get returns the logged value for a, if a was read before.
func (s *readSet) get(a mem.Addr) (uint64, bool) {
	if len(s.idx) > 0 {
		if i, ok := s.idx[a]; ok {
			return s.entries[i].val, true
		}
		return 0, false
	}
	for i := len(s.entries) - 1; i >= 0; i-- {
		if s.entries[i].addr == a {
			return s.entries[i].val, true
		}
	}
	return 0, false
}

// add logs a first read of a. The caller must have checked get(a) first:
// duplicate addresses must not be re-logged.
func (s *readSet) add(a mem.Addr, v uint64) {
	if len(s.idx) > 0 {
		s.idx[a] = len(s.entries)
		s.entries = append(s.entries, readEntry{a, v})
		return
	}
	s.entries = append(s.entries, readEntry{a, v})
	if len(s.entries) > smallSetCap {
		s.spill()
	}
}

// spill populates the index from the inline prefix, once, at the boundary.
func (s *readSet) spill() {
	if s.idx == nil {
		s.idx = make(map[mem.Addr]int, 4*smallSetCap)
	}
	for i := range s.entries {
		s.idx[s.entries[i].addr] = i
	}
}
