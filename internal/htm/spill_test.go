package htm

import (
	"testing"

	"rhnorec/internal/mem"
)

// fillLines inserts n distinct lines starting at base.
func fillLines(s *lineSet, base, n int) {
	for i := 0; i < n; i++ {
		s.add(mem.Line(base + i))
	}
}

// TestLineSetSpillDecay: one oversized transaction spills the set; after
// spillIdleResets consecutive transactions that fit inline, the map is
// dropped — and correctness holds across the decay and a re-spill.
func TestLineSetSpillDecay(t *testing.T) {
	var s lineSet
	fillLines(&s, 0, 3*smallSetCap)
	if s.m == nil {
		t.Fatal("set never spilled")
	}
	if s.count() != 3*smallSetCap {
		t.Fatalf("count = %d, want %d", s.count(), 3*smallSetCap)
	}
	for i := 0; i < spillIdleResets; i++ {
		if s.m == nil {
			t.Fatalf("map dropped after only %d idle resets, want %d", i, spillIdleResets)
		}
		s.reset()
		fillLines(&s, 100*i, smallSetCap/2) // fits inline: map stays idle
		if s.count() != smallSetCap/2 {
			t.Fatalf("reset %d: count = %d, want %d", i, s.count(), smallSetCap/2)
		}
	}
	s.reset()
	if s.m != nil {
		t.Fatalf("map survived %d idle resets", spillIdleResets)
	}
	// Life after decay: inline behavior, then a clean re-spill.
	fillLines(&s, 0, 2*smallSetCap)
	if s.m == nil || s.count() != 2*smallSetCap {
		t.Fatalf("re-spill broken: m=%v count=%d", s.m != nil, s.count())
	}
}

// TestLineSetSpillDecayResetsOnUse: a workload that keeps outgrowing the
// inline capacity must keep its map warm — every spilled transaction resets
// the idle counter, so alternating sizes never reallocates.
func TestLineSetSpillDecayResetsOnUse(t *testing.T) {
	var s lineSet
	for round := 0; round < 4*spillIdleResets; round++ {
		fillLines(&s, 0, smallSetCap+1) // outgrows inline every round
		if s.m == nil {
			t.Fatalf("round %d: map dropped while in active use", round)
		}
		s.reset()
	}
	if s.m == nil {
		t.Fatal("map dropped despite steady spilling")
	}
}

// TestWriteReadSetSpillDecay: the writeSet and readSet indexes follow the
// same hysteresis.
func TestWriteReadSetSpillDecay(t *testing.T) {
	var w writeSet
	var r readSet
	for i := 0; i < 2*smallSetCap; i++ {
		w.put(mem.Addr(i), uint64(i))
		r.add(mem.Addr(i), uint64(i))
	}
	if w.idx == nil || r.idx == nil {
		t.Fatal("sets never spilled")
	}
	for i := 0; i <= spillIdleResets; i++ {
		w.reset()
		r.reset()
		w.put(mem.Addr(i), 1)
		if _, ok := r.get(mem.Addr(i)); !ok {
			r.add(mem.Addr(i), 1)
		}
	}
	if w.idx != nil {
		t.Fatal("writeSet index survived the idle resets")
	}
	if r.idx != nil {
		t.Fatal("readSet index survived the idle resets")
	}
}

// BenchmarkLineSetSmallTxn quantifies what the decay buys: the per-
// transaction cost of a small (8-line) footprint through a set that is
// inline versus one still carrying live spilled state. The inline case is
// what a decayed set returns to; the spilled case is what every small
// transaction would keep paying if one oversized transaction pinned the map
// forever.
func BenchmarkLineSetSmallTxn(b *testing.B) {
	const small = smallSetCap / 2
	b.Run("inline", func(b *testing.B) {
		var s lineSet
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.reset()
			for j := 0; j < small; j++ {
				s.add(mem.Line(j))
				s.add(mem.Line(j)) // duplicate hit: the common re-read
			}
		}
	})
	b.Run("spilled", func(b *testing.B) {
		var s lineSet
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.reset()
			fillLines(&s, 1000, smallSetCap+1) // keep the map live each round
			for j := 0; j < small; j++ {
				s.add(mem.Line(j))
				s.add(mem.Line(j))
			}
		}
	})
}
