package htm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rhnorec/internal/mem"
)

// TestQuickLineSetMatchesMap: lineSet must behave exactly like a map-based
// set across any insertion sequence, including across the spill boundary
// and resets.
func TestQuickLineSetMatchesMap(t *testing.T) {
	f := func(ops []uint8, resetAt uint8) bool {
		var s lineSet
		ref := make(map[mem.Line]struct{})
		for i, raw := range ops {
			if resetAt > 0 && i == int(resetAt) {
				s.reset()
				ref = make(map[mem.Line]struct{})
			}
			l := mem.Line(raw % 40) // force duplicates and spills
			_, had := ref[l]
			ref[l] = struct{}{}
			if added := s.add(l); added == had {
				return false
			}
			if s.count() != len(ref) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickWriteSetMatchesMap: writeSet must behave exactly like a map
// across puts, overwrite updates, lookups, and the spill boundary.
func TestQuickWriteSetMatchesMap(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var s writeSet
		ref := make(map[mem.Addr]uint64)
		for i := 0; i < int(n)+40; i++ { // cross the spill threshold
			a := mem.Addr(rng.Intn(30) + 1)
			switch rng.Intn(3) {
			case 0, 1: // put
				v := rng.Uint64()
				_, had := ref[a]
				isNew := s.put(a, v)
				if isNew == had {
					return false
				}
				ref[a] = v
			case 2: // get
				v, ok := s.get(a)
				want, wok := ref[a]
				if ok != wok || (ok && v != want) {
					return false
				}
			}
			if s.len() != len(ref) {
				return false
			}
		}
		// Full content check via the commit iteration order.
		seen := make(map[mem.Addr]uint64)
		for _, e := range s.entries {
			seen[e.Addr] = e.Value
		}
		if len(seen) != len(ref) {
			return false
		}
		for a, v := range ref {
			if seen[a] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickReadSetMatchesMap: readSet must behave exactly like a map across
// first-read logging, duplicate lookups, and the spill boundary. add is only
// legal for addresses get misses on, mirroring how Load uses it.
func TestQuickReadSetMatchesMap(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var s readSet
		ref := make(map[mem.Addr]uint64)
		for i := 0; i < int(n)+40; i++ { // cross the spill threshold
			a := mem.Addr(rng.Intn(30) + 1)
			v, ok := s.get(a)
			want, wok := ref[a]
			if ok != wok || (ok && v != want) {
				return false
			}
			if !ok {
				nv := rng.Uint64()
				s.add(a, nv)
				ref[a] = nv
			}
			if s.len() != len(ref) {
				return false
			}
		}
		// Full content check via the validation iteration order.
		seen := make(map[mem.Addr]uint64)
		for _, e := range s.entries {
			seen[e.addr] = e.val
		}
		if len(seen) != len(ref) {
			return false
		}
		for a, v := range ref {
			if seen[a] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestReadSetResetReusable(t *testing.T) {
	var s readSet
	for i := 0; i < 3; i++ {
		for a := mem.Addr(1); a <= 30; a++ { // spill every round
			if _, ok := s.get(a); !ok {
				s.add(a, uint64(a)*3)
			}
		}
		if s.len() != 30 {
			t.Fatalf("round %d: len = %d, want 30", i, s.len())
		}
		if v, ok := s.get(15); !ok || v != 45 {
			t.Fatalf("round %d: get(15) = %d,%v", i, v, ok)
		}
		s.reset()
		if s.len() != 0 {
			t.Fatalf("round %d: len after reset = %d", i, s.len())
		}
		if _, ok := s.get(15); ok {
			t.Fatalf("round %d: stale entry visible after reset", i)
		}
	}
}

func TestWriteSetResetReusable(t *testing.T) {
	var s writeSet
	for i := 0; i < 3; i++ {
		for a := mem.Addr(1); a <= 30; a++ { // spill every round
			s.put(a, uint64(a)*7)
		}
		if s.len() != 30 {
			t.Fatalf("round %d: len = %d, want 30", i, s.len())
		}
		if v, ok := s.get(15); !ok || v != 105 {
			t.Fatalf("round %d: get(15) = %d,%v", i, v, ok)
		}
		s.reset()
		if s.len() != 0 {
			t.Fatalf("round %d: len after reset = %d", i, s.len())
		}
		if _, ok := s.get(15); ok {
			t.Fatalf("round %d: stale entry visible after reset", i)
		}
	}
}

func TestLineSetSpillExactlyAtBoundary(t *testing.T) {
	var s lineSet
	for i := 0; i <= smallSetCap; i++ {
		if !s.add(mem.Line(i)) {
			t.Fatalf("line %d reported duplicate", i)
		}
	}
	if s.count() != smallSetCap+1 {
		t.Fatalf("count = %d, want %d", s.count(), smallSetCap+1)
	}
	// Every pre-spill element must still be a duplicate.
	for i := 0; i <= smallSetCap; i++ {
		if s.add(mem.Line(i)) {
			t.Fatalf("line %d lost across the spill", i)
		}
	}
}
