package htm

import (
	"testing"

	"rhnorec/internal/obs"
)

// protocolArgs are every XABORT payload a TM driver in this repository can
// pass to Txn.Abort, plus a non-canonical one standing in for application
// XABORTs.
var protocolArgs = []uint64{ArgHTMLockTaken, ArgClockLocked, ArgSerialTaken, ArgWrongPhase, 99}

// TestAbortCauseMapping asserts that every hardware abort code and every
// algorithm-level explicit-abort payload maps to exactly one taxonomy
// label, and that the mapping is exhaustive against the obs.Cause enum:
// every cause except the two non-HTM ones (CauseNone, CauseSTMValidation)
// is reachable from some (code, arg) pair.
func TestAbortCauseMapping(t *testing.T) {
	produced := map[obs.Cause][]string{}
	record := func(desc string, a *Abort) {
		c := a.Cause()
		if c == obs.CauseNone || c == obs.CauseSTMValidation || c >= obs.NumCauses {
			t.Errorf("%s maps to non-HTM cause %v", desc, c)
		}
		produced[c] = append(produced[c], desc)
	}
	for _, code := range []Code{Conflict, Capacity, Spurious} {
		// Non-explicit codes must classify identically whatever the arg.
		base := (&Abort{Code: code}).Cause()
		for _, arg := range protocolArgs {
			if got := (&Abort{Code: code, Arg: arg}).Cause(); got != base {
				t.Errorf("code %v classification depends on arg %d: %v vs %v", code, arg, got, base)
			}
		}
		record(code.String(), &Abort{Code: code})
	}
	for _, arg := range protocolArgs {
		record("explicit("+(&Abort{Code: Explicit, Arg: arg}).Error()+")", &Abort{Code: Explicit, Arg: arg})
	}

	// Each (code, arg) pair above is one abort source; exactly one label
	// each means no label collision *within* the explicit args.
	explicitCauses := map[obs.Cause]bool{}
	for _, arg := range protocolArgs {
		c := (&Abort{Code: Explicit, Arg: arg}).Cause()
		if explicitCauses[c] {
			t.Errorf("two explicit payloads map to the same cause %v", c)
		}
		explicitCauses[c] = true
	}

	// Exhaustiveness against the enum: every HTM-reachable cause must be
	// produced. This test fails when a new Cause is added to the taxonomy
	// without a corresponding abort source (or vice versa).
	for c := obs.Cause(0); c < obs.NumCauses; c++ {
		if c == obs.CauseNone || c == obs.CauseSTMValidation {
			if len(produced[c]) != 0 {
				t.Errorf("non-HTM cause %v produced by %v", c, produced[c])
			}
			continue
		}
		if len(produced[c]) == 0 {
			t.Errorf("taxonomy cause %v unreachable from any (code, arg) pair — extend the mapping or the test's abort sources", c)
		}
	}
}

// TestCanonicalArgsDistinct pins the canonical payload values: they are
// part of the trace schema (docs/METRICS.md) and must stay distinct and
// stable.
func TestCanonicalArgsDistinct(t *testing.T) {
	seen := map[uint64]bool{}
	for _, arg := range []uint64{ArgHTMLockTaken, ArgClockLocked, ArgSerialTaken, ArgWrongPhase} {
		if arg == 0 || seen[arg] {
			t.Fatalf("canonical args must be distinct and non-zero, got %d twice or zero", arg)
		}
		seen[arg] = true
	}
}
