package htm

import "rhnorec/internal/mem"

// HookOp identifies which device boundary a Hook observes. Together with the
// mem.Hook sites these are the yield points of the deterministic schedule
// explorer (internal/explore): every speculative operation announces itself
// here before touching shared state, so a cooperative scheduler that owns
// both hooks sees every interleaving-relevant step.
type HookOp uint8

const (
	// HookBegin fires at the end of Begin, once the transaction is set up.
	HookBegin HookOp = iota
	// HookLoad fires at the top of Load, before the read is served.
	HookLoad
	// HookStore fires at the top of Store, before the write is buffered.
	HookStore
	// HookValidate fires when an in-flight validation sweep starts
	// (incremental NOrec-style revalidation; commit-time sweeps are covered
	// by HookCommit).
	HookValidate
	// HookCommit fires at the top of Commit, before any validation or
	// publish.
	HookCommit
	// HookAbort fires as the transaction dies, before the abort panic
	// unwinds. The info argument carries AbortInfo(code, arg); any returned
	// directive is ignored — the transaction is already dead.
	HookAbort
)

// Directive is a fault-injection command a Hook may return from Yield,
// modelling environmental hazards at a *chosen* operation instead of the
// device-wide SpuriousAbortProb dice: DirSpurious kills the transaction the
// way an interrupt or page fault would, DirCapacity the way a cache-set
// eviction would. Directives only make sense at points with an active
// transaction (begin/load/store/validate/commit); elsewhere they are
// ignored.
type Directive uint8

const (
	DirNone Directive = iota
	DirSpurious
	DirCapacity
)

// Hook observes (and may redirect) every transactional operation on a
// Device. See mem.Hook for the substrate half of the yield-point map.
type Hook interface {
	Yield(op HookOp, a mem.Addr, info uint64) Directive
}

// AbortInfo packs an abort's code and XABORT payload into the info word of a
// HookAbort yield; UnpackAbortInfo recovers them. The explorer uses the pair
// to label trace events with the obs.Cause taxonomy.
func AbortInfo(code Code, arg uint64) uint64 { return uint64(code) | arg<<8 }

// UnpackAbortInfo is the inverse of AbortInfo.
func UnpackAbortInfo(info uint64) (Code, uint64) { return Code(info & 0xff), info >> 8 }

// SetHook installs (or, with nil, removes) the device hook. It must be
// called while no transaction is in flight.
func (d *Device) SetHook(h Hook) { d.hook = h }

// hookYield announces op to the device hook, if any, and applies the
// returned fault directive by aborting the transaction.
func (t *Txn) hookYield(op HookOp, a mem.Addr, info uint64) {
	h := t.d.hook
	if h == nil {
		return
	}
	switch h.Yield(op, a, info) {
	case DirSpurious:
		t.fail(Spurious, 0)
	case DirCapacity:
		t.fail(Capacity, 0)
	}
}
