package tl2_test

import (
	"sync"
	"testing"

	"rhnorec/internal/mem"
	"rhnorec/internal/tl2"
	"rhnorec/internal/tm"
	"rhnorec/internal/tmtest"
)

func factory(m *mem.Memory) tm.System { return tl2.New(m, 0) }

func TestConformance(t *testing.T) {
	// TL2 does not claim privatization safety (see package comment and the
	// paper's discussion of RH-TL2's limitations).
	tmtest.RunConformance(t, factory, tmtest.Options{SkipPrivatization: true})
}

func TestName(t *testing.T) {
	m := mem.New(1024)
	sys := tl2.New(m, 0)
	if sys.Name() != "tl2" {
		t.Errorf("Name = %q", sys.Name())
	}
	if sys.Memory() != m {
		t.Error("Memory accessor broken")
	}
}

func TestStripeCountRoundsUp(t *testing.T) {
	// Just exercise a non-power-of-two stripe count end to end.
	m := mem.New(1 << 14)
	sys := tl2.New(m, 1000)
	th := sys.NewThread()
	defer th.Close()
	if err := th.Run(func(tx tm.Tx) error {
		a := tx.Alloc(4)
		tx.Store(a, 1)
		if tx.Load(a) != 1 {
			t.Error("read-own-write failed")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestDisjointWritersDoNotInvalidateEachOther: TL2's per-location metadata
// means writers to different stripes proceed without restarts — the
// scalability property the paper contrasts against NOrec.
func TestDisjointWritersDoNotInvalidateEachOther(t *testing.T) {
	m := mem.New(1 << 20)
	sys := tl2.New(m, 1<<12)
	setup := sys.NewThread()
	const threads = 4
	addrs := make([]mem.Addr, threads)
	if err := setup.Run(func(tx tm.Tx) error {
		for i := range addrs {
			addrs[i] = tx.Alloc(mem.LineWords * 64) // far apart
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	setup.Close()
	var wg sync.WaitGroup
	restarts := make([]uint64, threads)
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := sys.NewThread()
			defer th.Close()
			for j := 0; j < 400; j++ {
				if err := th.Run(func(tx tm.Tx) error {
					a := addrs[id]
					tx.Store(a, tx.Load(a)+1)
					return nil
				}); err != nil {
					t.Errorf("writer error: %v", err)
					return
				}
			}
			restarts[id] = th.Stats().STMRestarts
		}(i)
	}
	wg.Wait()
	for i := 0; i < threads; i++ {
		if got := m.LoadPlain(addrs[i]); got != 400 {
			t.Errorf("counter %d = %d, want 400", i, got)
		}
		// Different lines can share a stripe (hashing), so allow a small
		// number of incidental restarts but not systematic invalidation.
		if restarts[i] > 50 {
			t.Errorf("thread %d restarted %d times on disjoint data", i, restarts[i])
		}
	}
}

// TestReadOnlyCommitIsValidationFree is behavioural: a read-only
// transaction that saw a consistent snapshot commits even while writers
// are active (it must not need commit-time locks).
func TestReadOnlySnapshotUnderWriters(t *testing.T) {
	m := mem.New(1 << 16)
	sys := tl2.New(m, 0)
	setup := sys.NewThread()
	var x, y mem.Addr
	if err := setup.Run(func(tx tm.Tx) error {
		x = tx.Alloc(mem.LineWords)
		y = tx.Alloc(mem.LineWords)
		tx.Store(x, 100)
		tx.Store(y, 100)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	setup.Close()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		th := sys.NewThread()
		defer th.Close()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = th.Run(func(tx tm.Tx) error {
				vx := tx.Load(x)
				vy := tx.Load(y)
				tx.Store(x, vx+1)
				tx.Store(y, vy-1)
				return nil
			})
		}
	}()
	th := sys.NewThread()
	defer th.Close()
	for i := 0; i < 300; i++ {
		if err := th.RunReadOnly(func(tx tm.Tx) error {
			if sum := tx.Load(x) + tx.Load(y); sum != 200 {
				t.Errorf("snapshot sum = %d, want 200", sum)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestUndoRestoresOnWriteWriteConflict: force a write-write stripe conflict
// and check nothing is lost.
func TestWriteWriteConflictNoLostUpdates(t *testing.T) {
	m := mem.New(1 << 16)
	sys := tl2.New(m, 0)
	setup := sys.NewThread()
	var a mem.Addr
	if err := setup.Run(func(tx tm.Tx) error { a = tx.Alloc(2); return nil }); err != nil {
		t.Fatal(err)
	}
	setup.Close()
	const threads, per = 4, 250
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := sys.NewThread()
			defer th.Close()
			for j := 0; j < per; j++ {
				if err := th.Run(func(tx tm.Tx) error {
					tx.Store(a, tx.Load(a)+1)
					tx.Store(a+1, tx.Load(a+1)+1)
					return nil
				}); err != nil {
					t.Errorf("writer error: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if m.LoadPlain(a) != threads*per || m.LoadPlain(a+1) != threads*per {
		t.Errorf("counters = %d,%d want %d", m.LoadPlain(a), m.LoadPlain(a+1), threads*per)
	}
}
