// Package tl2 implements the TL2 STM of Dice, Shalev and Shavit in the
// eager encounter-time-write flavour the paper benchmarks (§3.1, "TL2"):
// per-stripe versioned write-locks, a global version clock, direct memory
// writes under stripe locks with an undo log, and commit-time read-set
// revalidation.
//
// Compared to NOrec, TL2 pays per-location metadata costs on every access
// but scales better under write load because disjoint writers never
// invalidate each other. It does not provide privatization safety (doomed
// writers may still be mid-undo when a privatizer starts reading
// non-transactionally) — the same limitation the paper notes for TL2-style
// systems.
package tl2

import (
	"runtime"
	"sync/atomic"

	"rhnorec/internal/mem"
	"rhnorec/internal/tm"
)

// DefaultStripes is the default size of the stripe (ownership) table.
const DefaultStripes = 1 << 16

// System is a TL2 STM over one shared memory.
type System struct {
	m   *mem.Memory
	rec *tm.Reclaimer

	// stripes maps cache lines to versioned locks. Even value: version<<1.
	// Odd value: threadID<<1|1 (locked).
	stripes []atomic.Uint64
	mask    uint64

	// gv is the global version clock; it counts writer commits.
	gv atomic.Uint64

	nextThreadID atomic.Uint64
}

// New creates a TL2 system with the given stripe count (rounded up to a
// power of two; 0 means DefaultStripes).
func New(m *mem.Memory, stripeCount int) *System {
	if stripeCount <= 0 {
		stripeCount = DefaultStripes
	}
	n := 1
	for n < stripeCount {
		n <<= 1
	}
	return &System{
		m:       m,
		rec:     tm.NewReclaimer(),
		stripes: make([]atomic.Uint64, n),
		mask:    uint64(n - 1),
	}
}

// Name implements tm.System.
func (s *System) Name() string { return "tl2" }

// Memory implements tm.System.
func (s *System) Memory() *mem.Memory { return s.m }

// stripeOf maps an address to its stripe index (one stripe per cache line,
// modulo table size).
func (s *System) stripeOf(a mem.Addr) uint64 {
	return uint64(mem.LineOf(a)) & s.mask
}

// NewThread implements tm.System.
func (s *System) NewThread() tm.Thread {
	return &thread{
		sys:   s,
		base:  tm.NewThreadBase(s.m, s.rec),
		id:    s.nextThreadID.Add(1),
		owned: make(map[uint64]uint64, 16),
	}
}

type thread struct {
	sys  *System
	base tm.ThreadBase
	id   uint64
	ro   bool

	rv       uint64            // read version (gv snapshot)
	readSet  []uint64          // stripe indices read
	readSeen map[uint64]bool   // nil until first use; avoids dup stripes
	owned    map[uint64]uint64 // stripe -> pre-lock value (version<<1)
	undo     []mem.WriteEntry
}

func (t *thread) Stats() *tm.Stats { return &t.base.St }
func (t *thread) Close()           { t.base.CloseBase() }

func (t *thread) Run(fn func(tm.Tx) error) error         { return t.run(fn, false) }
func (t *thread) RunReadOnly(fn func(tm.Tx) error) error { return t.run(fn, true) }

func (t *thread) run(fn func(tm.Tx) error, ro bool) error {
	if nested := t.base.Nested(); nested != nil {
		// Flat nesting: execute inline in the enclosing transaction.
		return fn(nested)
	}
	t.base.BeginTxn()
	defer t.base.EndTxn()
	t.ro = ro
	backoff := 0
	for {
		err, restarted := t.attempt(fn)
		if !restarted {
			return err
		}
		t.base.St.STMRestarts++
		// Bounded randomized-ish backoff keeps two writers from
		// live-locking on crossed stripe locks.
		backoff++
		for i := 0; i < backoff&7; i++ {
			runtime.Gosched()
		}
	}
}

func (t *thread) attempt(fn func(tm.Tx) error) (err error, restarted bool) {
	defer func() {
		if r := recover(); r != nil {
			t.abortAttempt()
			if tm.IsRestart(r) {
				err, restarted = nil, true
				return
			}
			panic(r)
		}
	}()
	t.beginAttempt()
	if uerr := t.base.CallUser(fn, txView{t}); uerr != nil {
		t.abortAttempt()
		t.base.St.UserAborts++
		return uerr, false
	}
	t.commit()
	t.base.CommitCleanup()
	t.base.St.Commits++
	t.base.St.SlowPathCommits++
	if t.ro {
		t.base.St.ReadOnlyCommits++
	}
	return nil, false
}

func (t *thread) beginAttempt() {
	t.rv = t.sys.gv.Load()
	t.readSet = t.readSet[:0]
	clear(t.readSeen)
	clear(t.owned)
	t.undo = t.undo[:0]
}

// abortAttempt rolls back eager writes and releases stripe locks, restoring
// their pre-lock versions.
func (t *thread) abortAttempt() {
	for i := len(t.undo) - 1; i >= 0; i-- {
		t.base.M.StorePlain(t.undo[i].Addr, t.undo[i].Value)
	}
	t.undo = t.undo[:0]
	for idx, old := range t.owned {
		t.sys.stripes[idx].Store(old)
	}
	clear(t.owned)
	t.base.AbortCleanup()
}

func (t *thread) commit() {
	if len(t.owned) == 0 {
		// Read-only transactions validated every read against rv and need
		// no commit-time work — the classic TL2 fast read-only commit.
		return
	}
	wv := t.sys.gv.Add(1)
	// TL2 optimization: if wv == rv+1 no concurrent writer committed since
	// our snapshot, so the read set cannot have changed.
	if wv != t.rv+1 {
		for _, idx := range t.readSet {
			s := t.sys.stripes[idx].Load()
			if s&1 == 1 {
				if s != t.id<<1|1 {
					tm.Restart() // locked by another writer
				}
				continue // our own write stripe
			}
			if s>>1 > t.rv {
				tm.Restart()
			}
		}
	}
	// Publish: release every owned stripe at the new version.
	for idx := range t.owned {
		t.sys.stripes[idx].Store(wv << 1)
	}
	clear(t.owned)
	t.undo = t.undo[:0]
}

type txView struct{ t *thread }

func (v txView) Load(a mem.Addr) uint64 {
	t := v.t
	t.base.InstrumentedAccess()
	idx := t.sys.stripeOf(a)
	if _, mine := t.owned[idx]; mine {
		// We hold the stripe: memory reflects our snapshot plus our own
		// writes (the lock acquisition verified version <= rv).
		return t.base.M.LoadPlain(a)
	}
	for {
		s1 := t.sys.stripes[idx].Load()
		if s1&1 == 1 {
			tm.Restart() // locked by a writer
		}
		val := t.base.M.LoadPlain(a)
		s2 := t.sys.stripes[idx].Load()
		if s1 != s2 {
			continue // raced with a lock/release; re-sample
		}
		if s1>>1 > t.rv {
			tm.Restart() // stripe newer than our snapshot
		}
		if t.readSeen == nil {
			t.readSeen = make(map[uint64]bool, 64)
		}
		if !t.readSeen[idx] {
			t.readSeen[idx] = true
			t.readSet = append(t.readSet, idx)
		}
		return val
	}
}

func (v txView) Store(a mem.Addr, val uint64) {
	t := v.t
	if t.ro {
		panic(tm.ErrStoreInReadOnly)
	}
	t.base.InstrumentedAccess()
	idx := t.sys.stripeOf(a)
	if _, mine := t.owned[idx]; !mine {
		s := t.sys.stripes[idx].Load()
		if s&1 == 1 {
			tm.Restart() // try-lock failure: release everything and retry
		}
		if s>>1 > t.rv {
			// Locking a stripe newer than our snapshot would let later
			// reads of its other words return post-snapshot data.
			tm.Restart()
		}
		if !t.sys.stripes[idx].CompareAndSwap(s, t.id<<1|1) {
			tm.Restart()
		}
		t.owned[idx] = s
	}
	t.undo = append(t.undo, mem.WriteEntry{Addr: a, Value: t.base.M.LoadPlain(a)})
	t.base.M.StorePlain(a, val)
}

func (v txView) Alloc(n int) mem.Addr   { return v.t.base.TxAlloc(n) }
func (v txView) Free(a mem.Addr, n int) { v.t.base.TxFree(a, n) }
