package core_test

import (
	"sync"
	"testing"

	"rhnorec/internal/core"
	"rhnorec/internal/htm"
	"rhnorec/internal/mem"
	"rhnorec/internal/tm"
	"rhnorec/internal/tmtest"
)

func newSys(m *mem.Memory, cfg htm.Config, pol tm.RetryPolicy) *core.System {
	dev := htm.NewDevice(m, cfg)
	dev.SetActiveThreads(4)
	return core.New(m, dev, pol)
}

func TestConformance(t *testing.T) {
	tmtest.RunConformance(t, func(m *mem.Memory) tm.System {
		return newSys(m, htm.Config{}, tm.RetryPolicy{})
	}, tmtest.Options{})
}

// TestConformanceTinyCapacity forces every transaction through the mixed
// slow path, with the prefix and postfix carrying the load.
func TestConformanceTinyCapacity(t *testing.T) {
	tmtest.RunConformance(t, func(m *mem.Memory) tm.System {
		return newSys(m, htm.Config{ReadCapacityLines: 2, WriteCapacityLines: 1}, tm.RetryPolicy{})
	}, tmtest.Options{})
}

// TestConformanceNoPrefix isolates the postfix (ablation knob).
func TestConformanceNoPrefix(t *testing.T) {
	tmtest.RunConformance(t, func(m *mem.Memory) tm.System {
		return newSys(m, htm.Config{}, tm.RetryPolicy{DisablePrefix: true})
	}, tmtest.Options{})
}

// TestConformanceNoPostfix isolates the prefix (ablation knob).
func TestConformanceNoPostfix(t *testing.T) {
	tmtest.RunConformance(t, func(m *mem.Memory) tm.System {
		return newSys(m, htm.Config{}, tm.RetryPolicy{DisablePostfix: true})
	}, tmtest.Options{})
}

// TestConformanceFullSoftwareSlowPath disables both small transactions: the
// mixed path degenerates to the Hybrid NOrec software slow path.
func TestConformanceFullSoftware(t *testing.T) {
	tmtest.RunConformance(t, func(m *mem.Memory) tm.System {
		return newSys(m, htm.Config{ReadCapacityLines: 2, WriteCapacityLines: 1},
			tm.RetryPolicy{DisablePrefix: true, DisablePostfix: true})
	}, tmtest.Options{})
}

// TestConformanceSpurious exercises every retry path at once.
func TestConformanceSpurious(t *testing.T) {
	tmtest.RunConformance(t, func(m *mem.Memory) tm.System {
		return newSys(m, htm.Config{SpuriousAbortProb: 0.05}, tm.RetryPolicy{})
	}, tmtest.Options{Ops: 150, NondeterministicAborts: true})
}

// TestConformanceTinyPrefixBudget exercises prefix exhaustion mid-read-run.
func TestConformanceTinyPrefixBudget(t *testing.T) {
	tmtest.RunConformance(t, func(m *mem.Memory) tm.System {
		return newSys(m, htm.Config{ReadCapacityLines: 4, WriteCapacityLines: 2},
			tm.RetryPolicy{InitialPrefixLength: 5, MinPrefixLength: 2})
	}, tmtest.Options{})
}

func TestNameAndAccessors(t *testing.T) {
	m := mem.New(1024)
	sys := core.New(m, htm.NewDevice(m, htm.Config{}), tm.RetryPolicy{})
	if sys.Name() != "rh-norec" {
		t.Errorf("Name = %q", sys.Name())
	}
	if sys.Memory() != m {
		t.Error("Memory accessor broken")
	}
	if sys.Policy().MaxHTMRetries != 10 {
		t.Errorf("default MaxHTMRetries = %d, want 10", sys.Policy().MaxHTMRetries)
	}
}

func TestMismatchedDevicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for device over a different memory")
		}
	}()
	core.New(mem.New(1024), htm.NewDevice(mem.New(1024), htm.Config{}), tm.RetryPolicy{})
}

// TestScenarioFigure2: the paper's opacity scenario. A mixed slow path
// writes X then Y; a hardware fast path reading X and Y concurrently must
// see both-old or both-new, never new-X/old-Y — guaranteed by the HTM
// postfix publishing atomically.
func TestScenarioFigure2(t *testing.T) {
	m := mem.New(1 << 18)
	dev := htm.NewDevice(m, htm.Config{ReadCapacityLines: 4, WriteCapacityLines: 2})
	dev.SetActiveThreads(2)
	sys := core.New(m, dev, tm.RetryPolicy{})
	setup := sys.NewThread()
	var x, y, filler mem.Addr
	if err := setup.Run(func(tx tm.Tx) error {
		x = tx.Alloc(mem.LineWords)
		y = tx.Alloc(mem.LineWords)
		filler = tx.Alloc(64 * mem.LineWords)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	setup.Close()
	var wg sync.WaitGroup
	done := make(chan struct{})
	wg.Add(1)
	go func() { // slow-path writer: X and Y move together (capacity-bound)
		defer wg.Done()
		th := sys.NewThread()
		defer th.Close()
		for i := uint64(1); ; i++ {
			select {
			case <-done:
				return
			default:
			}
			_ = th.Run(func(tx tm.Tx) error {
				// Touch enough lines to overflow hardware capacity so the
				// transaction must take the mixed slow path.
				for k := 0; k < 8; k++ {
					tx.Store(filler+mem.Addr(k*8*mem.LineWords), i)
				}
				tx.Store(x, i)
				tx.Store(y, i)
				return nil
			})
		}
	}()
	th := sys.NewThread()
	defer th.Close()
	torn := 0
	for i := 0; i < 2000; i++ {
		_ = th.RunReadOnly(func(tx tm.Tx) error {
			vx := tx.Load(x)
			vy := tx.Load(y)
			if vx != vy {
				torn++
			}
			return nil
		})
	}
	close(done)
	wg.Wait()
	if torn != 0 {
		t.Errorf("fast path observed %d torn X/Y pairs (Figure 1 hazard not prevented)", torn)
	}
}

// TestFastPathAvoidsClockUntilCommit: a read-only fast path must commit
// even when slow paths are constantly committing writes — in Hybrid NOrec
// the htm-lock subscription would kill it; in RH NOrec the postfix keeps
// the htm lock free. We verify RH's postfix success keeps fast-path aborts
// far below one per slow commit.
func TestFastPathSurvivesSlowWriters(t *testing.T) {
	m := mem.New(1 << 18)
	// Read capacity forces the big reader-writer onto the slow path; its
	// 8-line write set fits the postfix comfortably.
	dev := htm.NewDevice(m, htm.Config{ReadCapacityLines: 8, WriteCapacityLines: 64})
	dev.SetActiveThreads(2)
	sys := core.New(m, dev, tm.RetryPolicy{})
	setup := sys.NewThread()
	var big, small mem.Addr
	if err := setup.Run(func(tx tm.Tx) error {
		big = tx.Alloc(32 * mem.LineWords)
		small = tx.Alloc(mem.LineWords)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	setup.Close()
	var wg sync.WaitGroup
	const rounds = 200
	var slowStats tm.Stats
	wg.Add(1)
	go func() { // permanent slow-path writer on unrelated data
		defer wg.Done()
		th := sys.NewThread()
		defer th.Close()
		for i := 0; i < rounds; i++ {
			_ = th.Run(func(tx tm.Tx) error {
				for k := 0; k < 32; k++ {
					_ = tx.Load(big + mem.Addr(k*mem.LineWords))
				}
				for k := 0; k < 8; k++ {
					tx.Store(big+mem.Addr(k*mem.LineWords), uint64(i))
				}
				return nil
			})
		}
		slowStats = *th.Stats()
	}()
	th := sys.NewThread()
	defer th.Close()
	for i := 0; i < rounds*4; i++ {
		if err := th.Run(func(tx tm.Tx) error {
			tx.Store(small, tx.Load(small)+1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if got := m.LoadPlain(small); got != rounds*4 {
		t.Errorf("fast counter = %d, want %d", got, rounds*4)
	}
	if slowStats.SlowPathCommits == 0 {
		t.Fatal("slow writer never took the slow path; test is vacuous")
	}
	if slowStats.PostfixCommits == 0 {
		t.Error("slow writer never used the HTM postfix")
	}
}

// TestPrefixCoversReadOnlySlowPath: a capacity-fitting read-only
// transaction forced onto the slow path should commit entirely inside the
// HTM prefix, never registering as a fallback.
func TestPrefixCoversReadOnlySlowPath(t *testing.T) {
	m := mem.New(1 << 18)
	// Write capacity 0 lines is impossible; instead use spurious-free
	// config and force fallback via an explicit full fast-path failure:
	// set MaxHTMRetries=1 and make the fast path abort with a conflicting
	// writer... Simpler: tiny write capacity with a transaction that only
	// reads fits the prefix; to force the fallback at all we give the READ
	// capacity a small value for the fast path — but the prefix shares it.
	// So instead: drive the fast path to fall back using spurious aborts
	// with probability 1 is too blunt (prefix would die too).
	// The clean lever: run the transaction via the slow path directly by
	// exhausting fast-path retries with a high-contention warmup is
	// nondeterministic. We accept prefix coverage being exercised by the
	// conformance tiny-capacity suite and here check the accounting only.
	dev := htm.NewDevice(m, htm.Config{})
	dev.SetActiveThreads(1)
	sys := core.New(m, dev, tm.RetryPolicy{})
	th := sys.NewThread()
	defer th.Close()
	var a mem.Addr
	if err := th.Run(func(tx tm.Tx) error { a = tx.Alloc(1); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := th.RunReadOnly(func(tx tm.Tx) error {
		_ = tx.Load(a)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	s := th.Stats()
	if s.FastPathCommits != 2 {
		t.Errorf("FastPathCommits = %d, want 2 (uncontended)", s.FastPathCommits)
	}
}

// TestCapacityBoundWriterCommitsViaMixedPath checks end-to-end integrity of
// an oversized writer through the postfix-or-software pipeline.
func TestCapacityBoundWriterCommitsViaMixedPath(t *testing.T) {
	m := mem.New(1 << 20)
	dev := htm.NewDevice(m, htm.Config{WriteCapacityLines: 4})
	dev.SetActiveThreads(1)
	sys := core.New(m, dev, tm.RetryPolicy{})
	th := sys.NewThread()
	defer th.Close()
	var base mem.Addr
	if err := th.Run(func(tx tm.Tx) error { base = tx.Alloc(64 * mem.LineWords); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := th.Run(func(tx tm.Tx) error {
		for i := 0; i < 64; i++ {
			tx.Store(base+mem.Addr(i*mem.LineWords), uint64(i+1))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if got := m.LoadPlain(base + mem.Addr(i*mem.LineWords)); got != uint64(i+1) {
			t.Fatalf("word %d = %d", i, got)
		}
	}
	s := th.Stats()
	if s.SlowPathCommits == 0 {
		t.Error("oversized writer did not use the mixed slow path")
	}
	// The postfix itself overflows (64 > 4 lines), so the writer must have
	// reverted to full software: the postfix attempt failed.
	if s.PostfixAttempts == 0 {
		t.Error("no postfix attempt recorded")
	}
	if s.PostfixCommits != 0 {
		t.Errorf("PostfixCommits = %d, want 0 (postfix cannot fit 64 lines)", s.PostfixCommits)
	}
}

// TestPostfixFitsSmallWriteSet: with a fallback forced by read capacity,
// a small write set must commit through the postfix.
func TestPostfixCommitsSmallWriteSet(t *testing.T) {
	m := mem.New(1 << 20)
	dev := htm.NewDevice(m, htm.Config{ReadCapacityLines: 8, WriteCapacityLines: 64})
	dev.SetActiveThreads(1)
	sys := core.New(m, dev, tm.RetryPolicy{})
	th := sys.NewThread()
	defer th.Close()
	var base, out mem.Addr
	if err := th.Run(func(tx tm.Tx) error {
		base = tx.Alloc(64 * mem.LineWords)
		out = tx.Alloc(mem.LineWords)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Read 32 lines (over the 8-line read capacity) then write one word.
	if err := th.Run(func(tx tm.Tx) error {
		var sum uint64
		for i := 0; i < 32; i++ {
			sum += tx.Load(base + mem.Addr(i*mem.LineWords))
		}
		tx.Store(out, sum+1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	s := th.Stats()
	if s.SlowPathCommits == 0 {
		t.Fatal("reader did not fall back despite read-capacity overflow")
	}
	if s.PostfixCommits == 0 {
		t.Errorf("stats = %+v: expected a postfix commit for the 1-line write set", s)
	}
	if got := m.LoadPlain(out); got != 1 {
		t.Errorf("out = %d, want 1", got)
	}
}

// TestPrefixAdaptationShrinks: hammering the prefix with conflicting
// commits must shrink the prefix budget over time.
func TestPrefixAdaptationShrinksOnAborts(t *testing.T) {
	m := mem.New(1 << 18)
	// Read capacity 8 lines: the prefix needs ~3 of them for protocol
	// metadata (htm lock, fallback count, clock), so budgets above ~5
	// reads capacity-abort and the adaptation must walk down to one that
	// commits.
	dev := htm.NewDevice(m, htm.Config{ReadCapacityLines: 8, WriteCapacityLines: 4})
	dev.SetActiveThreads(2)
	sys := core.New(m, dev, tm.RetryPolicy{InitialPrefixLength: 64})
	th := sys.NewThread()
	defer th.Close()
	var base mem.Addr
	if err := th.Run(func(tx tm.Tx) error { base = tx.Alloc(64 * mem.LineWords); return nil }); err != nil {
		t.Fatal(err)
	}
	// Reading 32 distinct lines overflows the 4-line read capacity inside
	// the prefix too, so every prefix attempt capacity-aborts and the
	// budget halves until it goes below the read count... but the prefix
	// budget counts reads, and capacity counts lines: after enough shrink
	// the prefix commits early and the rest runs in software.
	for i := 0; i < 20; i++ {
		if err := th.RunReadOnly(func(tx tm.Tx) error {
			var sum uint64
			for k := 0; k < 32; k++ {
				sum += tx.Load(base + mem.Addr(k*mem.LineWords))
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	s := th.Stats()
	if s.PrefixAttempts == 0 {
		t.Fatal("no prefix attempts recorded")
	}
	if s.PrefixCommits == 0 {
		t.Error("prefix never adapted to a committable length")
	}
}

// TestSerialLockProgress: a slow path restarting past the budget must
// finish via the serial lock even under a hostile fast-writer stream.
func TestSerialLockProgress(t *testing.T) {
	m := mem.New(1 << 20)
	dev := htm.NewDevice(m, htm.Config{WriteCapacityLines: 4})
	dev.SetActiveThreads(2)
	sys := core.New(m, dev, tm.RetryPolicy{MaxSlowPathRestarts: 2, DisablePrefix: true})
	setup := sys.NewThread()
	var big, hot mem.Addr
	if err := setup.Run(func(tx tm.Tx) error {
		big = tx.Alloc(32 * mem.LineWords)
		hot = tx.Alloc(mem.LineWords)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	setup.Close()
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		th := sys.NewThread()
		defer th.Close()
		for {
			select {
			case <-done:
				return
			default:
			}
			_ = th.Run(func(tx tm.Tx) error {
				tx.Store(hot, tx.Load(hot)+1)
				return nil
			})
		}
	}()
	th := sys.NewThread()
	defer th.Close()
	for i := 0; i < 15; i++ {
		if err := th.Run(func(tx tm.Tx) error {
			_ = tx.Load(hot)
			for k := 0; k < 32; k++ {
				tx.Store(big+mem.Addr(k*mem.LineWords), uint64(i))
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
	if th.Stats().SlowPathCommits == 0 {
		t.Error("no slow-path commits under capacity pressure")
	}
}

// TestUserAbortOnMixedPathWithWrites: a user abort after the first write
// must roll back cleanly whether the writes were in the postfix or in
// software.
func TestUserAbortOnMixedPathWithWrites(t *testing.T) {
	for _, disablePostfix := range []bool{false, true} {
		m := mem.New(1 << 18)
		dev := htm.NewDevice(m, htm.Config{ReadCapacityLines: 2, WriteCapacityLines: 8})
		dev.SetActiveThreads(1)
		sys := core.New(m, dev, tm.RetryPolicy{DisablePostfix: disablePostfix})
		th := sys.NewThread()
		var base mem.Addr
		if err := th.Run(func(tx tm.Tx) error { base = tx.Alloc(8 * mem.LineWords); return nil }); err != nil {
			t.Fatal(err)
		}
		errBoom := th.Run(func(tx tm.Tx) error {
			// Overflow read capacity to force the slow path, then write.
			for k := 0; k < 4; k++ {
				_ = tx.Load(base + mem.Addr(k*mem.LineWords))
			}
			tx.Store(base, 111)
			tx.Store(base+mem.Addr(mem.LineWords), 222)
			return errSentinel
		})
		if errBoom != errSentinel {
			t.Fatalf("disablePostfix=%v: err = %v, want sentinel", disablePostfix, errBoom)
		}
		if got := m.LoadPlain(base); got != 0 {
			t.Errorf("disablePostfix=%v: write leaked after user abort: %d", disablePostfix, got)
		}
		// The system must be fully unlocked: another transaction commits.
		if err := th.Run(func(tx tm.Tx) error { tx.Store(base, 1); return nil }); err != nil {
			t.Fatalf("disablePostfix=%v: system wedged after user abort: %v", disablePostfix, err)
		}
		th.Close()
	}
}

type sentinelError struct{}

func (sentinelError) Error() string { return "sentinel" }

var errSentinel = sentinelError{}

// TestHighContentionIntegrity is the end-to-end stress: many threads, tiny
// capacities, all paths active at once.
func TestHighContentionIntegrity(t *testing.T) {
	m := mem.New(1 << 20)
	dev := htm.NewDevice(m, htm.Config{ReadCapacityLines: 16, WriteCapacityLines: 8, SpuriousAbortProb: 0.01})
	dev.SetActiveThreads(8)
	sys := core.New(m, dev, tm.RetryPolicy{})
	setup := sys.NewThread()
	const words = 16
	var base mem.Addr
	if err := setup.Run(func(tx tm.Tx) error {
		base = tx.Alloc(words * mem.LineWords)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	setup.Close()
	const threads, per = 8, 200
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := sys.NewThread()
			defer th.Close()
			for j := 0; j < per; j++ {
				if err := th.Run(func(tx tm.Tx) error {
					// Move value between two slots; total conserved.
					src := base + mem.Addr(((id+j)%words)*mem.LineWords)
					dst := base + mem.Addr(((id+j+1)%words)*mem.LineWords)
					v := tx.Load(src)
					tx.Store(src, v+1)
					tx.Store(dst, tx.Load(dst)+1)
					return nil
				}); err != nil {
					t.Errorf("run error: %v", err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	var total uint64
	for i := 0; i < words; i++ {
		total += m.LoadPlain(base + mem.Addr(i*mem.LineWords))
	}
	if total != 2*threads*per {
		t.Errorf("total = %d, want %d", total, 2*threads*per)
	}
}
