package core_test

import (
	"runtime"
	"sync"
	"testing"

	"rhnorec/internal/core"
	"rhnorec/internal/htm"
	"rhnorec/internal/mem"
	"rhnorec/internal/tm"
)

// combineWorld builds a system with group commit on and every transaction
// capacity-bound off the fast path (each reads three lines against a
// two-line hardware read budget), so the slow-path combining machinery
// carries the whole load. The write budget stays roomy so the HTM postfix
// can hold a whole drained group.
func combineWorld(t *testing.T, pol tm.RetryPolicy) (*core.System, *mem.Memory, []mem.Addr) {
	t.Helper()
	m := mem.New(1 << 14)
	dev := htm.NewDevice(m, htm.Config{ReadCapacityLines: 2, WriteCapacityLines: 8})
	dev.SetActiveThreads(4)
	pol.Combine = true
	sys := core.New(m, dev, pol)
	setup := sys.NewThread()
	addrs := make([]mem.Addr, 8)
	if err := setup.Run(func(tx tm.Tx) error {
		for i := range addrs {
			addrs[i] = tx.Alloc(mem.LineWords)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	setup.Close()
	return sys, m, addrs
}

// runGroupCommitScenario drives the one interleaving the combining path
// exists for, deterministically:
//
//  1. B begins a software slow-path attempt (snapshot base txv) and performs
//     a read, then parks.
//  2. A begins at the same base, writes (locking the clock at txv|1), and
//     waits for B's commit to enqueue on the ring.
//  3. B resumes, writes — finds the clock locked at its own base and enters
//     combine mode instead of restarting — and its commit enqueues.
//  4. A commits: the holder drains B's disjoint write set under its single
//     ticket window. Both transactions commit; B's commit is a CombinedCommit.
//
// Each thread's first attempt is the doomed fast attempt (capacity abort at
// its third read line); the handshake only engages on the second, which the
// static policy guarantees is the mixed slow path.
func runGroupCommitScenario(t *testing.T, pol tm.RetryPolicy) (aSt, bSt *tm.Stats) {
	t.Helper()
	sys, m, addrs := combineWorld(t, pol)
	x1, x2, y1, y2 := addrs[0], addrs[1], addrs[2], addrs[3]
	f1, f2, f3 := addrs[4], addrs[5], addrs[6]

	bStarted := make(chan struct{})
	aLocked := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)

	go func() { // B: the enqueuer
		defer wg.Done()
		th := sys.NewThread()
		defer th.Close()
		attempt := 0
		if err := th.Run(func(tx tm.Tx) error {
			attempt++
			_ = tx.Load(y1)
			_ = tx.Load(f1)
			_ = tx.Load(f2) // third read line: fast attempt dies here
			if attempt == 2 {
				close(bStarted)
				<-aLocked
			}
			tx.Store(y1, 7)
			tx.Store(y2, 8)
			return nil
		}); err != nil {
			t.Errorf("B: %v", err)
		}
		bSt = new(tm.Stats)
		bSt.Add(th.Stats())
	}()

	go func() { // A: the holder
		defer wg.Done()
		th := sys.NewThread()
		defer th.Close()
		attempt := 0
		if err := th.Run(func(tx tm.Tx) error {
			attempt++
			if attempt == 2 {
				<-bStarted
			}
			_ = tx.Load(f1)
			_ = tx.Load(f2)
			_ = tx.Load(f3) // third read line: fast attempt dies here
			tx.Store(x1, 5) // slow path: locks the clock at the shared base
			if attempt == 2 {
				close(aLocked)
				// Wait for B's commit to reach the ring, so the drain below
				// finds it. Bounded: if B somehow never enqueues, the commit
				// proceeds and B restarts — and the assertions below fail
				// loudly rather than hang.
				for i := 0; i < 1<<20 && sys.CombineRing().PendingCount() == 0; i++ {
					runtime.Gosched()
				}
			}
			tx.Store(x2, 6)
			return nil
		}); err != nil {
			t.Errorf("A: %v", err)
		}
		aSt = new(tm.Stats)
		aSt.Add(th.Stats())
	}()

	wg.Wait()
	for a, want := range map[mem.Addr]uint64{x1: 5, x2: 6, y1: 7, y2: 8} {
		if got := m.LoadPlain(a); got != want {
			t.Errorf("mem[%d] = %d, want %d", a, got, want)
		}
	}
	return aSt, bSt
}

// TestGroupCommitPostfixHolder: the holder publishes through the HTM
// postfix; the drained group commits atomically with the clock release.
func TestGroupCommitPostfixHolder(t *testing.T) {
	aSt, bSt := runGroupCommitScenario(t, tm.RetryPolicy{DisablePrefix: true})
	if aSt.PostfixCommits == 0 {
		t.Errorf("holder never committed a postfix: %+v", aSt)
	}
	if aSt.CombineDrains != 1 {
		t.Errorf("holder CombineDrains = %d, want 1", aSt.CombineDrains)
	}
	if bSt.CombinedCommits != 1 {
		t.Errorf("enqueuer CombinedCommits = %d, want 1", bSt.CombinedCommits)
	}
	if bSt.Commits != 1 {
		t.Errorf("enqueuer Commits = %d, want 1", bSt.Commits)
	}
}

// TestGroupCommitSoftwareHolder: the holder publishes eagerly in software
// under the global HTM lock; queued writes publish before the clock
// releases.
func TestGroupCommitSoftwareHolder(t *testing.T) {
	aSt, bSt := runGroupCommitScenario(t,
		tm.RetryPolicy{DisablePrefix: true, DisablePostfix: true})
	if aSt.CombineDrains != 1 {
		t.Errorf("holder CombineDrains = %d, want 1", aSt.CombineDrains)
	}
	if bSt.CombinedCommits != 1 {
		t.Errorf("enqueuer CombinedCommits = %d, want 1", bSt.CombinedCommits)
	}
}

// TestGroupCommitRejectsIntersecting: an enqueued commit whose read set
// overlaps the holder's writes must be rejected (its enqueue-time validation
// is stale once the group publishes) and must then restart and commit on its
// own — never publish stale state.
func TestGroupCommitRejectsIntersecting(t *testing.T) {
	sys, m, addrs := combineWorld(t, tm.RetryPolicy{DisablePrefix: true, DisablePostfix: true})
	x1, x2, y2 := addrs[0], addrs[1], addrs[3]
	f1, f2, f3 := addrs[4], addrs[5], addrs[6]

	bStarted := make(chan struct{})
	aLocked := make(chan struct{})
	var bSt tm.Stats
	var wg sync.WaitGroup
	wg.Add(2)

	go func() { // B reads x1 — which A writes — so B's group admission must fail.
		defer wg.Done()
		th := sys.NewThread()
		defer th.Close()
		attempt := 0
		if err := th.Run(func(tx tm.Tx) error {
			attempt++
			v := tx.Load(x1)
			_ = tx.Load(f1)
			_ = tx.Load(f2) // third read line: fast attempt dies here
			if attempt == 2 {
				close(bStarted)
				<-aLocked
			}
			tx.Store(y2, v+100)
			return nil
		}); err != nil {
			t.Errorf("B: %v", err)
		}
		bSt.Add(th.Stats())
	}()

	go func() {
		defer wg.Done()
		th := sys.NewThread()
		defer th.Close()
		attempt := 0
		if err := th.Run(func(tx tm.Tx) error {
			attempt++
			if attempt == 2 {
				<-bStarted
			}
			_ = tx.Load(f1)
			_ = tx.Load(f2)
			_ = tx.Load(f3) // third read line: fast attempt dies here
			tx.Store(x1, 500)
			if attempt == 2 {
				close(aLocked)
				for i := 0; i < 1<<20 && sys.CombineRing().PendingCount() == 0; i++ {
					runtime.Gosched()
				}
			}
			tx.Store(x2, 6)
			return nil
		}); err != nil {
			t.Errorf("A: %v", err)
		}
	}()

	wg.Wait()
	if bSt.CombinedCommits != 0 {
		t.Errorf("intersecting enqueuer group-committed: %+v", bSt)
	}
	if bSt.Commits != 1 {
		t.Errorf("enqueuer Commits = %d, want 1", bSt.Commits)
	}
	// B re-ran after A's publish, so it must have observed A's x1.
	if got := m.LoadPlain(y2); got != 600 {
		t.Errorf("mem[y2] = %d, want 600 (B must observe the holder's write on retry)", got)
	}
}

// TestCombineHotspotStress hammers a shared counter from many goroutines
// with combining on: whatever mixture of holder, combined, rejected and
// restarted commits the scheduler produces, the counter must be exact.
func TestCombineHotspotStress(t *testing.T) {
	m := mem.New(1 << 14)
	dev := htm.NewDevice(m, htm.Config{ReadCapacityLines: 64, WriteCapacityLines: 1})
	dev.SetActiveThreads(8)
	sys := core.New(m, dev, tm.RetryPolicy{Combine: true})
	setup := sys.NewThread()
	var ctr mem.Addr
	var side [8]mem.Addr
	if err := setup.Run(func(tx tm.Tx) error {
		ctr = tx.Alloc(mem.LineWords)
		for i := range side {
			side[i] = tx.Alloc(mem.LineWords)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	setup.Close()

	const threads = 8
	const txns = 2000
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := sys.NewThread()
			defer th.Close()
			for j := 0; j < txns; j++ {
				if err := th.Run(func(tx tm.Tx) error {
					tx.Store(ctr, tx.Load(ctr)+1)
					tx.Store(side[id], tx.Load(side[id])+1) // second line: off the fast path
					return nil
				}); err != nil {
					t.Errorf("worker %d: %v", id, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if got := m.LoadPlain(ctr); got != threads*txns {
		t.Fatalf("counter = %d, want %d", got, threads*txns)
	}
	for i := range side {
		if got := m.LoadPlain(side[i]); got != txns {
			t.Fatalf("side[%d] = %d, want %d", i, got, txns)
		}
	}
}
