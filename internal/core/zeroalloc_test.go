package core_test

import (
	"testing"

	"rhnorec/internal/core"
	"rhnorec/internal/htm"
	"rhnorec/internal/mem"
	"rhnorec/internal/tm"
)

// This file is the allocation budget for the RH NOrec driver: zero heap
// allocations per steady-state transaction, on the all-hardware fast path
// and on the capacity-bound mixed slow path alike. The first transaction a
// thread runs may allocate (read/write sets, the recycled write buffer, the
// spill maps); after that warm-up, every structure is recycled in place.
// testing.AllocsPerRun itself performs one warm-up call before measuring,
// and each helper below runs a few extra transactions first so lazily-grown
// structures reach their steady size.
//
// The CI allocs gate enforces the same property a second way: every
// BenchmarkTxn* benchmark in this package and in internal/htm must report
// 0 allocs/op under -benchmem.

// allocWorld builds a single-threaded system and a warmed thread with eight
// line-aligned addresses.
func allocWorld(tb testing.TB, cfg htm.Config, pol tm.RetryPolicy) (tm.Thread, []mem.Addr) {
	tb.Helper()
	m := mem.New(1 << 14)
	dev := htm.NewDevice(m, cfg)
	dev.SetActiveThreads(1)
	sys := core.New(m, dev, pol)
	setup := sys.NewThread()
	addrs := make([]mem.Addr, 8)
	if err := setup.Run(func(tx tm.Tx) error {
		for i := range addrs {
			addrs[i] = tx.Alloc(mem.LineWords)
		}
		return nil
	}); err != nil {
		tb.Fatal(err)
	}
	setup.Close()
	th := sys.NewThread()
	tb.Cleanup(func() { th.Close() })
	return th, addrs
}

// fastPathFn reads and writes two lines — comfortably inside any hardware
// capacity, so every commit is an HTM fast-path commit.
func fastPathFn(addrs []mem.Addr) func(tm.Tx) error {
	return func(tx tm.Tx) error {
		v := tx.Load(addrs[0]) + tx.Load(addrs[1])
		tx.Store(addrs[0], v+1)
		return nil
	}
}

// slowPathFn touches four lines, which against a {2 read, 1 write}-line
// hardware budget forces the mixed slow path (prefix + software + postfix)
// on every attempt.
func slowPathFn(addrs []mem.Addr) func(tm.Tx) error {
	return func(tx tm.Tx) error {
		for i := 0; i < 4; i++ {
			tx.Store(addrs[i], tx.Load(addrs[i])+1)
		}
		return nil
	}
}

func requireZeroAllocs(t *testing.T, th tm.Thread, fn func(tm.Tx) error) {
	t.Helper()
	for i := 0; i < 16; i++ { // reach steady state before measuring
		if err := th.Run(fn); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(100, func() {
		if err := th.Run(fn); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state transaction allocates: %v allocs/run, want 0", avg)
	}
}

func TestZeroAllocFastPath(t *testing.T) {
	th, addrs := allocWorld(t, htm.Config{}, tm.RetryPolicy{})
	requireZeroAllocs(t, th, fastPathFn(addrs))
}

func TestZeroAllocMixedSlowPath(t *testing.T) {
	th, addrs := allocWorld(t,
		htm.Config{ReadCapacityLines: 2, WriteCapacityLines: 1}, tm.RetryPolicy{})
	requireZeroAllocs(t, th, slowPathFn(addrs))
}

// TestZeroAllocCombine proves turning the combining ring on does not buy
// back allocations: the combine-mode read checks, the recycled combined
// write buffer, and the (empty) holder drain are all allocation-free.
func TestZeroAllocCombine(t *testing.T) {
	th, addrs := allocWorld(t,
		htm.Config{ReadCapacityLines: 2, WriteCapacityLines: 1},
		tm.RetryPolicy{Combine: true})
	requireZeroAllocs(t, th, slowPathFn(addrs))
}

// TestZeroAllocReadOnly covers the read-only hint path (no writer commit
// work at all).
func TestZeroAllocReadOnly(t *testing.T) {
	th, addrs := allocWorld(t, htm.Config{}, tm.RetryPolicy{})
	fn := func(tx tm.Tx) error {
		_ = tx.Load(addrs[0])
		_ = tx.Load(addrs[1])
		return nil
	}
	for i := 0; i < 16; i++ {
		if err := th.RunReadOnly(fn); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(100, func() {
		if err := th.RunReadOnly(fn); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("read-only transaction allocates: %v allocs/run, want 0", avg)
	}
}

// BenchmarkTxnFastPath: one HTM fast-path read-modify-write commit per
// iteration. The CI allocs gate requires 0 allocs/op.
func BenchmarkTxnFastPath(b *testing.B) {
	th, addrs := allocWorld(b, htm.Config{YieldPeriod: -1}, tm.RetryPolicy{})
	fn := fastPathFn(addrs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := th.Run(fn); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTxnMixedSlowPath: one capacity-bound mixed slow-path commit
// (prefix + software reads + postfix publish) per iteration. 0 allocs/op.
func BenchmarkTxnMixedSlowPath(b *testing.B) {
	th, addrs := allocWorld(b,
		htm.Config{ReadCapacityLines: 2, WriteCapacityLines: 1, YieldPeriod: -1},
		tm.RetryPolicy{})
	fn := slowPathFn(addrs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := th.Run(fn); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTxnCombineSlowPath: the mixed slow path with the combining ring
// compiled in (uncontended, so the committer is always the holder). The
// delta against BenchmarkTxnMixedSlowPath is the combining overhead a
// solitary committer pays. 0 allocs/op.
func BenchmarkTxnCombineSlowPath(b *testing.B) {
	th, addrs := allocWorld(b,
		htm.Config{ReadCapacityLines: 2, WriteCapacityLines: 1, YieldPeriod: -1},
		tm.RetryPolicy{Combine: true})
	fn := slowPathFn(addrs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := th.Run(fn); err != nil {
			b.Fatal(err)
		}
	}
}
