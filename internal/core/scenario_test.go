package core_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"rhnorec/internal/core"
	"rhnorec/internal/htm"
	"rhnorec/internal/hynorec"
	"rhnorec/internal/mem"
	"rhnorec/internal/tm"
)

// Scenario tests for the paper's protocol figures (Figures 1–3). Figure 2's
// postfix-atomicity scenario lives in rhnorec_test.go (TestScenarioFigure2);
// this file covers the Figure 1 hazard on Hybrid NOrec and the Figure 3
// concurrency schedule.

// TestScenarioFigure1HybridNOrec: the Figure 1 hazard — a slow path updates
// X then Y while a hardware fast path reads both — must be prevented by
// Hybrid NOrec too (its htm-lock subscription kills the fast path instead).
// The observable property is the same as Figure 2's: no fast path ever
// returns new-X with old-Y.
func TestScenarioFigure1HybridNOrec(t *testing.T) {
	m := mem.New(1 << 18)
	dev := htm.NewDevice(m, htm.Config{ReadCapacityLines: 4, WriteCapacityLines: 2})
	dev.SetActiveThreads(2)
	sys := hynorec.New(m, dev, tm.RetryPolicy{})
	setup := sys.NewThread()
	var x, y, filler mem.Addr
	if err := setup.Run(func(tx tm.Tx) error {
		x = tx.Alloc(mem.LineWords)
		y = tx.Alloc(mem.LineWords)
		filler = tx.Alloc(64 * mem.LineWords)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	setup.Close()
	var wg sync.WaitGroup
	done := make(chan struct{})
	wg.Add(1)
	go func() { // capacity-bound writer: always the software slow path
		defer wg.Done()
		th := sys.NewThread()
		defer th.Close()
		for i := uint64(1); ; i++ {
			select {
			case <-done:
				return
			default:
			}
			_ = th.Run(func(tx tm.Tx) error {
				for k := 0; k < 8; k++ {
					tx.Store(filler+mem.Addr(k*8*mem.LineWords), i)
				}
				tx.Store(x, i)
				tx.Store(y, i)
				return nil
			})
		}
	}()
	th := sys.NewThread()
	defer th.Close()
	torn := 0
	for i := 0; i < 2000; i++ {
		_ = th.RunReadOnly(func(tx tm.Tx) error {
			if tx.Load(x) != tx.Load(y) {
				torn++
			}
			return nil
		})
	}
	close(done)
	wg.Wait()
	if torn != 0 {
		t.Errorf("Hybrid NOrec admitted %d torn X/Y reads (Figure 1 hazard)", torn)
	}
}

// TestScenarioFigure3Concurrency reproduces Figure 3's schedule property:
// hardware fast paths keep committing while a mixed slow path is executing
// — including read-only fast paths during the slow path's write phase. In
// Hybrid NOrec the first slow-path write (htm lock) would abort them all;
// in RH NOrec the postfix keeps the htm lock free, so concurrent read-only
// fast paths must keep succeeding throughout.
func TestScenarioFigure3Concurrency(t *testing.T) {
	m := mem.New(1 << 18)
	// Read capacity forces the mixed path; write capacity comfortably fits
	// the postfix.
	dev := htm.NewDevice(m, htm.Config{ReadCapacityLines: 8, WriteCapacityLines: 64})
	dev.SetActiveThreads(2)
	sys := core.New(m, dev, tm.RetryPolicy{})
	setup := sys.NewThread()
	var big, obs mem.Addr
	if err := setup.Run(func(tx tm.Tx) error {
		big = tx.Alloc(32 * mem.LineWords)
		obs = tx.Alloc(mem.LineWords)
		tx.Store(obs, 7)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	setup.Close()

	var wg sync.WaitGroup
	done := make(chan struct{})
	var slowStats tm.Stats
	wg.Add(1)
	go func() { // the mixed slow path: long read prefix + postfix writes
		defer wg.Done()
		th := sys.NewThread()
		defer th.Close()
		for i := uint64(0); ; i++ {
			select {
			case <-done:
				slowStats = *th.Stats()
				return
			default:
			}
			_ = th.Run(func(tx tm.Tx) error {
				var sum uint64
				for k := 0; k < 32; k++ {
					sum += tx.Load(big + mem.Addr(k*mem.LineWords))
				}
				for k := 0; k < 4; k++ {
					tx.Store(big+mem.Addr(k*mem.LineWords), sum+i)
				}
				return nil
			})
		}
	}()

	th := sys.NewThread()
	defer th.Close()
	var roCommits atomic.Uint64
	for i := 0; i < 3000; i++ {
		if err := th.RunReadOnly(func(tx tm.Tx) error {
			if tx.Load(obs) != 7 {
				t.Error("observer read corrupted data")
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		roCommits.Add(1)
	}
	close(done)
	wg.Wait()

	if slowStats.SlowPathCommits == 0 || slowStats.PostfixCommits == 0 {
		t.Fatalf("slow path never exercised the postfix: %+v", slowStats)
	}
	fast := th.Stats()
	if fast.FastPathCommits != 3000 {
		t.Errorf("read-only observer fell back %d times; Figure 3 concurrency requires the fast path to survive slow-path writers", fast.Fallbacks)
	}
	// The htm lock must never have been taken (postfix succeeded), so the
	// observer should have seen almost no explicit aborts.
	if fast.HTMExplicitAborts > uint64(slowStats.PostfixAttempts-slowStats.PostfixCommits+5) {
		t.Errorf("observer saw %d htm-lock aborts with only %d failed postfixes",
			fast.HTMExplicitAborts, slowStats.PostfixAttempts-slowStats.PostfixCommits)
	}
}

// TestScenarioFigure3HybridContrast runs the same schedule on Hybrid NOrec
// and asserts the opposite: the observer *is* disturbed (it suffers aborts
// caused by the slow-path writers taking the htm lock), demonstrating what
// the RH postfix buys.
func TestScenarioFigure3HybridContrast(t *testing.T) {
	m := mem.New(1 << 18)
	dev := htm.NewDevice(m, htm.Config{ReadCapacityLines: 8, WriteCapacityLines: 64})
	dev.SetActiveThreads(2)
	sys := hynorec.New(m, dev, tm.RetryPolicy{})
	setup := sys.NewThread()
	var big, obs mem.Addr
	if err := setup.Run(func(tx tm.Tx) error {
		big = tx.Alloc(32 * mem.LineWords)
		obs = tx.Alloc(mem.LineWords)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	setup.Close()
	var wg sync.WaitGroup
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		th := sys.NewThread()
		defer th.Close()
		for i := uint64(0); ; i++ {
			select {
			case <-done:
				return
			default:
			}
			_ = th.Run(func(tx tm.Tx) error {
				var sum uint64
				for k := 0; k < 32; k++ {
					sum += tx.Load(big + mem.Addr(k*mem.LineWords))
				}
				for k := 0; k < 4; k++ {
					tx.Store(big+mem.Addr(k*mem.LineWords), sum+i)
				}
				return nil
			})
		}
	}()
	th := sys.NewThread()
	defer th.Close()
	for i := 0; i < 3000; i++ {
		_ = th.RunReadOnly(func(tx tm.Tx) error {
			_ = tx.Load(obs)
			return nil
		})
	}
	close(done)
	wg.Wait()
	if th.Stats().HTMAborts() == 0 {
		t.Error("Hybrid NOrec observer saw zero aborts despite slow-path writers — the htm-lock cost did not manifest")
	}
}
