// Package core implements Reduced Hardware NOrec (RH NOrec), the paper's
// contribution (Matveev & Shavit, ASPLOS '15, Algorithms 1–3): a hybrid TM
// whose fast path is a pure uninstrumented hardware transaction that touches
// the global clock only at its commit point, and whose software slow path is
// a *mixed* path strengthened by two short hardware transactions:
//
//   - The HTM prefix executes the largest possible run of initial reads
//     speculatively, deferring the read of the global clock to the prefix's
//     commit point. This shrinks the window in which a concurrent writer
//     commit forces a slow-path restart. Its length adapts to the hardware
//     abort feedback at runtime.
//   - The HTM postfix encapsulates all of the slow path's writes in one
//     hardware transaction, so concurrent fast paths can never observe a
//     partial slow-path write set — which is what lets the fast path read
//     the clock at the end instead of the beginning without losing opacity
//     (Figure 2 of the paper).
//
// If either small transaction fails, the algorithm reverts to the Hybrid
// NOrec behaviour for that transaction: the prefix is replaced by reading
// the clock at the start and validating it on every read, and the postfix is
// replaced by setting the global HTM lock (aborting all fast paths) and
// writing in software. A serial lock provides the starvation escape of
// §3.3.
//
// One deliberate deviation from the C implementation: when the HTM postfix
// aborts mid-execution, real hardware rewinds registers to the XBEGIN
// checkpoint inside handle_first_write and resumes there in software. Go
// cannot checkpoint mid-function, so this implementation restarts the whole
// attempt with the postfix disabled for the remainder of the transaction.
// The committed histories are identical (nothing the failed postfix did was
// visible, and the clock lock is released before the retry); the only
// difference is a re-execution of the read prefix, which the statistics
// report as an extra slow-path restart.
package core

import (
	"runtime"

	"rhnorec/internal/htm"
	"rhnorec/internal/mem"
	"rhnorec/internal/obs"
	"rhnorec/internal/tm"
)

// XABORT payloads used by the protocol: the canonical htm.Arg* codes, so
// the observability taxonomy classifies our explicit aborts.
const (
	abortHTMLockTaken = htm.ArgHTMLockTaken
	abortClockLocked  = htm.ArgClockLocked
	abortSerialTaken  = htm.ArgSerialTaken
)

// System is an RH NOrec TM over one shared memory.
type System struct {
	m      *mem.Memory
	dev    *htm.Device
	rec    *tm.Reclaimer
	policy tm.RetryPolicy
	engine *tm.Engine

	// ring, when non-nil (RetryPolicy.Combine), is the flat-combining ring
	// of the group-commit slow path: writers that find the clock locked at
	// their own snapshot buffer their writes and enqueue them here instead
	// of restarting, and the lock holder drains signature-disjoint entries
	// under its one ticket window.
	ring *mem.CombineRing

	gClock     mem.Addr
	gHTMLock   mem.Addr
	gFallbacks mem.Addr
	serialLock mem.Addr
}

// combineSigBits is the bloom width of the combining ring's read/write
// signatures. It is independent of the memory's published-signature width
// (ring signatures are only ever compared with each other) and fixed at the
// maximum so group-admission false positives stay rare.
const combineSigBits = mem.MaxSigBits

// combineDrainBudget bounds the write entries a postfix holder drains into
// its hardware transaction, keeping the group inside write capacity; the
// software holder publishes in place and passes an effectively unbounded
// budget.
const combineDrainBudget = 256

// New creates an RH NOrec system. dev must speculate over m; zero policy
// fields take the paper's defaults (§3.3–§3.4).
func New(m *mem.Memory, dev *htm.Device, policy tm.RetryPolicy) *System {
	if dev.Memory() != m {
		panic("core: device bound to a different memory")
	}
	// The contention engine draws its jitter seeds from the device's seed
	// source, so explore replays stay bit-reproducible (engine.go).
	engine := tm.NewEngine(policy, dev.Config().SeedFn)
	tc := m.NewThreadCache()
	s := &System{
		m:          m,
		dev:        dev,
		rec:        tm.NewReclaimer(),
		policy:     engine.Policy(),
		engine:     engine,
		gClock:     tc.Alloc(mem.LineWords),
		gHTMLock:   tc.Alloc(mem.LineWords),
		gFallbacks: tc.Alloc(mem.LineWords),
		serialLock: tc.Alloc(mem.LineWords),
	}
	if s.policy.Combine {
		s.ring = mem.NewCombineRing()
	}
	return s
}

// Name implements tm.System.
func (s *System) Name() string { return "rh-norec" }

// Memory implements tm.System.
func (s *System) Memory() *mem.Memory { return s.m }

// Policy returns the effective retry policy (after defaulting).
func (s *System) Policy() tm.RetryPolicy { return s.policy }

// Engine returns the system's contention-management engine. The service
// layer (internal/serve) reads its live slow-path occupancy as the
// admission controller's saturation signal — the same contention-window
// state the adaptive policy throttles fast-path entry on.
func (s *System) Engine() *tm.Engine { return s.engine }

// CombineRing returns the group-commit ring, or nil when combining is off —
// a diagnostic handle for tests and benchmark instrumentation.
func (s *System) CombineRing() *mem.CombineRing { return s.ring }

// NewThread implements tm.System.
func (s *System) NewThread() tm.Thread {
	t := &thread{
		sys:         s,
		base:        tm.NewThreadBase(s.m, s.rec),
		htx:         s.dev.NewTxn(),
		expectedLen: s.policy.InitialPrefixLength,
	}
	t.base.CM = s.engine.NewThreadPolicy(&t.base)
	return t
}

type thread struct {
	sys  *System
	base tm.ThreadBase
	htx  *htm.Txn
	ro   bool

	// Mixed-slow-path attempt state.
	txv                uint64 // clock snapshot; LSB set while we hold the clock lock
	writeDetected      bool
	prefixActive       bool
	postfixActive      bool
	fullSoftware       bool // we set the global HTM lock and write in software
	fallbackRegistered bool // this Run is counted in num_of_fallbacks
	prefixBanned       bool // §3.4: one prefix try per transaction
	postfixBanned      bool // §3.4: one postfix try per transaction
	serialHeld         bool
	undo               []mem.WriteEntry

	// Group-commit state (sys.ring != nil). combineMode: the attempt found
	// the clock locked at its own base and is buffering writes for an
	// enqueue instead of holding any lock; txv then stays even. combWrites
	// is the buffered write set (grow-once, recycled), combRSig the bloom of
	// every software read since the attempt began, prefixCommitted marks
	// that htx still holds a committed prefix's read log (folded into the
	// enqueue's read signature). drainMask, on the holder side, records ring
	// slots claimed by an in-progress drain so every abort path can resolve
	// them rejected.
	combineMode     bool
	prefixCommitted bool
	combWrites      []mem.WriteEntry
	combRSig        mem.Signature
	drainMask       uint32
	// groupBuf coalesces a drained group's writes (last write per address
	// wins, like any combiner) before they are applied, so a batch of
	// same-line publishes costs one store per line instead of one per
	// entry. Grow-once, recycled.
	groupBuf []mem.WriteEntry

	// redoBuf assembles the eager-commit redo record (the final values of
	// every word the full-software path published in place) for the
	// persistence plane. Grow-once, recycled; untouched when no persister is
	// attached.
	redoBuf []mem.WriteEntry

	// Prefix-length adaptation (§2.4): expectedLen is the reads budget the
	// next prefix will attempt; it halves on prefix aborts and grows again
	// after sustained success.
	expectedLen   int
	prefixReads   int
	maxReads      int
	prefixStreak  int
	prefixLimited bool // the current prefix was cut short by maxReads

	// Observability phase anchors (obs.Recorder.Start results; 0 when
	// observability is off).
	prefixStart  int64
	postfixStart int64
}

func (t *thread) Stats() *tm.Stats { t.base.FoldFilter(t.htx); return &t.base.St }
func (t *thread) Close()           { t.base.CloseBase() }

func (t *thread) Run(fn func(tm.Tx) error) error         { return t.run(fn, false) }
func (t *thread) RunReadOnly(fn func(tm.Tx) error) error { return t.run(fn, true) }

func (t *thread) run(fn func(tm.Tx) error, ro bool) error {
	if nested := t.base.Nested(); nested != nil {
		// Flat nesting: execute inline in the enclosing transaction.
		return fn(nested)
	}
	t.base.BeginTxn()
	defer t.base.EndTxn()
	t.ro = ro
	o := t.base.St.Obs
	attemptStart := o.Start()
	t.base.ObsEvent(obs.EventBegin, obs.PathNone)
	retries := 0
	if t.base.CM.AdmitFast() {
		for {
			fastStart := o.Start()
			err, ab := t.fastAttempt(fn)
			o.RecordSince(obs.PhaseFast, fastStart)
			if ab == nil {
				if err == nil {
					t.base.CM.OnFastCommit(retries)
					t.base.ObsEvent(obs.EventCommit, obs.PathFast)
				}
				o.RecordSince(obs.PhaseAttempt, attemptStart)
				return err
			}
			t.base.RecordHTMAbort(ab, retries+1)
			retries++
			// The policy judges the abort (capacity demotion, budget,
			// backoff); protocol-specific lock spins stay here.
			if t.base.CM.OnAbort(ab, retries) != tm.RetryFast {
				break
			}
			t.waitOutAbortCause(ab)
		}
	}
	t.base.CM.OnFallback()
	t.base.St.Fallbacks++
	t.base.ObsEvent(obs.EventFallback, obs.PathNone)
	err := t.mixedSlowRun(fn)
	o.RecordSince(obs.PhaseAttempt, attemptStart)
	return err
}

func (t *thread) waitOutAbortCause(ab *htm.Abort) {
	m := t.base.M
	if ab.Code != htm.Explicit {
		return
	}
	switch ab.Arg {
	case abortHTMLockTaken:
		for m.LoadPlain(t.sys.gHTMLock) != 0 {
			runtime.Gosched()
		}
	case abortClockLocked:
		for m.LoadPlain(t.sys.gClock)&1 != 0 {
			runtime.Gosched()
		}
	case abortSerialTaken:
		for m.LoadPlain(t.sys.serialLock) != 0 {
			runtime.Gosched()
		}
	}
}

// fastAttempt is Algorithm 1: a pure hardware transaction that subscribes
// only to the global HTM lock at start and touches the clock only at its
// commit point — the paper's key change relative to Hybrid NOrec.
func (t *thread) fastAttempt(fn func(tm.Tx) error) (err error, ab *htm.Abort) {
	defer func() {
		if r := recover(); r != nil {
			if a, ok := htm.AsAbort(r); ok {
				t.base.AbortCleanup()
				err, ab = nil, a
				return
			}
			t.htx.Cancel()
			t.base.AbortCleanup()
			if tm.IsRestart(r) {
				err, ab = nil, &htm.Abort{Code: htm.Conflict}
				return
			}
			panic(r)
		}
	}()
	t.htx.Begin()
	if t.htx.Load(t.sys.gHTMLock) != 0 {
		t.htx.Abort(abortHTMLockTaken)
	}
	if uerr := t.base.CallUser(fn, fastTx{t}); uerr != nil {
		t.htx.Cancel()
		t.base.AbortCleanup()
		t.base.St.UserAborts++
		return uerr, nil
	}
	// Algorithm 1 commit: read-only transactions (compiler hint or no
	// writes at runtime) commit without looking at the clock at all — and
	// the substrate commits them lock-free (seqlock validation, no
	// writeback lock), so the whole RO fast path is mutex-free end to end.
	if !t.ro && t.htx.WriteLineCount() > 0 {
		if t.htx.Load(t.sys.gFallbacks) > 0 {
			if t.htx.Load(t.sys.serialLock) != 0 {
				t.htx.Abort(abortSerialTaken)
			}
			c := t.htx.Load(t.sys.gClock)
			if c&1 != 0 {
				t.htx.Abort(abortClockLocked)
			}
			t.htx.Store(t.sys.gClock, c+2)
		}
	}
	t.htx.Commit()
	t.base.CommitCleanup()
	t.base.St.Commits++
	t.base.St.FastPathCommits++
	if t.ro {
		t.base.St.ReadOnlyCommits++
	}
	return nil, nil
}

// mixedSlowRun drives mixed-slow-path attempts (Algorithms 2 and 3) with
// the serial starvation escape of §3.3.
func (t *thread) mixedSlowRun(fn func(tm.Tx) error) error {
	m := t.base.M
	t.fallbackRegistered = false
	t.prefixBanned = false
	t.postfixBanned = false
	restarts := 0
	defer func() {
		t.base.CM.OnSlowDone()
		if t.fallbackRegistered {
			m.SubPlain(t.sys.gFallbacks, 1)
			t.fallbackRegistered = false
		}
		if t.serialHeld {
			m.StorePlain(t.sys.serialLock, 0)
			t.serialHeld = false
		}
	}()
	o := t.base.St.Obs
	for {
		t.base.St.SlowPathStarts++
		serial := t.serialHeld
		serialStart := o.Start()
		err, restarted := t.mixedAttempt(fn, restarts+1)
		if !restarted {
			if serial {
				o.RecordSince(obs.PhaseSerial, serialStart)
			}
			return err
		}
		t.base.St.SlowPathRestarts++
		restarts++
		t.base.CM.OnSTMRestart(restarts)
		if restarts >= t.sys.policy.MaxSlowPathRestarts && !t.serialHeld {
			for !m.CASPlain(t.sys.serialLock, 0, 1) {
				runtime.Gosched()
			}
			t.serialHeld = true
		}
	}
}

// mixedAttempt is one try of the mixed slow path. attemptNo is the 1-based
// ordinal of the try, for the abort taxonomy's retry accounting.
func (t *thread) mixedAttempt(fn func(tm.Tx) error, attemptNo int) (err error, restarted bool) {
	defer func() {
		if r := recover(); r != nil {
			ab, isAbort := htm.AsAbort(r)
			if isAbort {
				t.base.RecordHTMAbort(ab, attemptNo)
			} else if t.htx.Active() {
				t.htx.Cancel()
			}
			t.mixedAbortCleanup()
			if isAbort || tm.IsRestart(r) {
				if !isAbort {
					t.base.RecordSTMRestart(attemptNo)
				}
				err, restarted = nil, true
				return
			}
			panic(r)
		}
	}()
	o := t.base.St.Obs
	t.writeDetected = false
	t.prefixActive = false
	t.postfixActive = false
	t.fullSoftware = false
	t.undo = t.undo[:0]
	t.prefixCommitted = false
	if t.sys.ring != nil {
		t.combineMode = false
		t.combWrites = t.combWrites[:0]
		t.combRSig.Reset()
	}
	swStart := o.Start()
	// Algorithm 3 start: try the HTM prefix; on no-go, the original
	// (Algorithm 2) software start.
	if t.prefixUsable() {
		t.startPrefix()
	} else {
		t.softwareStart()
	}
	if uerr := t.base.CallUser(fn, mixedTx{t}); uerr != nil {
		t.mixedUserAbort()
		t.base.St.UserAborts++
		return uerr, false
	}
	o.RecordSince(obs.PhaseSoftware, swStart)
	wbStart := o.Start()
	t.mixedCommit()
	o.RecordSince(obs.PhaseWriteback, wbStart)
	t.base.CommitCleanup()
	t.base.St.Commits++
	t.base.St.SlowPathCommits++
	if t.ro {
		t.base.St.ReadOnlyCommits++
	}
	if t.serialHeld {
		t.base.ObsEvent(obs.EventCommit, obs.PathSerial)
	} else {
		t.base.ObsEvent(obs.EventCommit, obs.PathSlow)
	}
	return nil, false
}

func (t *thread) prefixUsable() bool {
	p := &t.sys.policy
	return !p.DisablePrefix && !t.prefixBanned && t.expectedLen >= p.MinPrefixLength
}

// startPrefix is start_rh_htm_prefix (Algorithm 3 lines 9–26).
func (t *thread) startPrefix() {
	t.base.St.PrefixAttempts++
	t.prefixStart = t.base.St.Obs.Start()
	t.htx.Begin()
	t.prefixActive = true
	t.prefixLimited = false
	if t.htx.Load(t.sys.gHTMLock) != 0 {
		t.htx.Abort(abortHTMLockTaken)
	}
	t.maxReads = t.expectedLen
	t.prefixReads = 0
}

// softwareStart is the original mixed_slow_path_start (Algorithm 2 lines
// 1–8): register the fallback and snapshot the clock.
func (t *thread) softwareStart() {
	m := t.base.M
	if !t.fallbackRegistered {
		m.AddPlain(t.sys.gFallbacks, 1)
		t.fallbackRegistered = true
	}
	for {
		v := m.LoadPlain(t.sys.gClock)
		if v&1 == 0 {
			t.txv = v
			return
		}
		if t.sys.ring != nil && m.LoadPlain(t.sys.gHTMLock) == 0 {
			// Join the holder's window instead of waiting it out: begin at
			// base v&^1 in combine mode. This is sound because the combine
			// read protocol's proof (see mixedTx.Load) depends only on each
			// read's val -> clock -> lock -> clock-again load sequence, not
			// on when the transaction began; writes are buffered and offered
			// to the holder's group at commit. The gHTMLock check is only a
			// heuristic — a software holder publishes in place, so every
			// read inside its window would restart anyway.
			t.txv = v &^ 1
			t.combineMode = true
			return
		}
		runtime.Gosched()
	}
}

// commitPrefix is commit_rh_htm_prefix (Algorithm 3 lines 47–56): register
// the fallback and read the clock *inside* the hardware transaction, so
// both become visible atomically with everything the prefix read.
func (t *thread) commitPrefix() {
	if !t.fallbackRegistered {
		f := t.htx.Load(t.sys.gFallbacks)
		t.htx.Store(t.sys.gFallbacks, f+1)
	}
	v := t.htx.Load(t.sys.gClock)
	if v&1 != 0 {
		t.htx.Abort(abortClockLocked)
	}
	t.htx.Commit() // may abort: the whole attempt restarts
	t.prefixActive = false
	t.prefixCommitted = true
	t.fallbackRegistered = true
	t.txv = v
	t.base.St.PrefixCommits++
	t.base.St.Obs.RecordSince(obs.PhasePrefix, t.prefixStart)
	t.adaptPrefixAfterSuccess()
}

// adaptPrefixAfterSuccess grows the prefix budget again after sustained
// successful prefixes that were cut short by the budget (§2.4).
func (t *thread) adaptPrefixAfterSuccess() {
	if t.sys.policy.DisablePrefixAdaptation {
		return
	}
	t.prefixStreak++
	if t.prefixLimited && t.prefixStreak >= 4 && t.expectedLen < t.sys.policy.InitialPrefixLength {
		t.expectedLen *= 2
		if t.expectedLen > t.sys.policy.InitialPrefixLength {
			t.expectedLen = t.sys.policy.InitialPrefixLength
		}
		t.prefixStreak = 0
	}
}

// adaptPrefixAfterAbort shrinks the prefix budget after a hardware failure
// (§2.4: reduce the length until it commits with high probability).
func (t *thread) adaptPrefixAfterAbort() {
	t.prefixStreak = 0
	if t.sys.policy.DisablePrefixAdaptation {
		return
	}
	t.expectedLen /= 2
	if t.expectedLen < t.sys.policy.MinPrefixLength {
		t.expectedLen = t.sys.policy.MinPrefixLength
	}
}

// handleFirstWrite is Algorithm 2 lines 25–31: lock the clock, then start
// the HTM postfix; if the postfix cannot run, take the global HTM lock and
// continue in software.
func (t *thread) handleFirstWrite() {
	m := t.base.M
	// acquire_clock_lock (lines 47–56). writeDetected is set only once the
	// lock is ours, since abort cleanup releases the clock when it is set.
	if !m.CASPlain(t.sys.gClock, t.txv, t.txv|1) {
		if t.sys.ring != nil && m.LoadPlain(t.sys.gClock) == t.txv|1 {
			// The clock is locked by a holder at exactly our snapshot base,
			// so our reads are still provably valid: instead of restarting,
			// buffer the writes and try to join the holder's group at commit
			// (or take the lock ourselves if it frees first).
			t.combineMode = true
			return
		}
		tm.Restart()
	}
	t.txv |= 1
	t.writeDetected = true
	if !t.sys.policy.DisablePostfix && !t.postfixBanned {
		t.base.St.PostfixAttempts++
		t.postfixStart = t.base.St.Obs.Start()
		t.htx.Begin()
		t.postfixActive = true
		return
	}
	t.goFullSoftware()
}

// goFullSoftware is the Algorithm 2 lines 28–30 fallback: abort all
// hardware fast paths and perform the writes in software under the clock
// lock, with full NOrec opacity.
func (t *thread) goFullSoftware() {
	t.base.M.StorePlain(t.sys.gHTMLock, 1)
	t.fullSoftware = true
}

// mixedCommit is mixed_slow_path_commit (Algorithm 3 lines 58–64 falling
// back to Algorithm 2 lines 58–72).
func (t *thread) mixedCommit() {
	m := t.base.M
	if t.prefixActive {
		// The entire transaction fit in the HTM prefix: commit it. No
		// fallback was ever registered, no clock activity needed.
		t.htx.Commit()
		t.prefixActive = false
		t.base.St.PrefixCommits++
		t.base.St.Obs.RecordSince(obs.PhasePrefix, t.prefixStart)
		t.adaptPrefixAfterSuccess()
		return
	}
	if !t.writeDetected {
		if t.combineMode {
			if len(t.combWrites) == 0 {
				// Read-only transaction that began inside a holder's window:
				// every read already validated against base txv and there is
				// nothing to publish, so it commits like any NOrec read-only.
				t.combineMode = false
				return
			}
			t.combineCommit()
			return
		}
		return // read-only software slow path
	}
	if t.postfixActive {
		if t.sys.ring != nil {
			t.groupCommitPostfix()
			return
		}
		t.htx.Commit() // publish all writes atomically
		t.postfixActive = false
		t.base.St.PostfixCommits++
		t.base.St.Obs.RecordSince(obs.PhasePostfix, t.postfixStart)
	}
	if t.fullSoftware {
		if t.sys.ring != nil {
			t.groupCommitSoftware()
			return
		}
		// The eager writes are already in memory but no reader can commit a
		// transaction that saw them until the clock releases below, so the
		// redo record appended here still precedes every dependent commit's
		// record (mem.AppendRedo's ordering obligation).
		t.appendRedoEager(nil)
		m.StorePlain(t.sys.gHTMLock, 0)
		t.fullSoftware = false
	}
	m.StorePlain(t.sys.gClock, (t.txv&^1)+2)
	t.writeDetected = false
	t.undo = t.undo[:0]
}

// appendRedoEager hands the full-software path's write set to the
// persistence plane: the deduplicated undo-log addresses (plus a drained
// group's buffer, for the combining holder) re-read for their final values.
// Must run before the clock/HTM-lock release makes the values certifiable.
func (t *thread) appendRedoEager(extra []mem.WriteEntry) {
	m := t.base.M
	if !m.Persisting() {
		return
	}
	t.redoBuf = t.redoBuf[:0]
	for i := range t.undo {
		t.redoAdd(t.undo[i].Addr)
	}
	for i := range extra {
		t.redoAdd(extra[i].Addr)
	}
	if len(t.redoBuf) > 0 {
		m.AppendRedo(t.redoBuf)
	}
}

// redoAdd appends a's final value to redoBuf once (linear dedup: eager
// write sets are small, and a map would allocate on the hot path).
func (t *thread) redoAdd(a mem.Addr) {
	for i := range t.redoBuf {
		if t.redoBuf[i].Addr == a {
			return
		}
	}
	t.redoBuf = append(t.redoBuf, mem.WriteEntry{Addr: a, Value: t.base.M.LoadPlain(a)})
}

// groupCommitPostfix commits a postfix holder with the combining ring
// enabled: it drains compatible queued commits into the hardware write
// buffer and — the load-bearing difference from the plain postfix — stores
// the clock release *inside* the hardware transaction, so the group's
// writes and the clock's move to txv+2 become visible in one atomic step.
// That atomicity is what licenses combining readers to keep executing at
// clock==txv|1: until the postfix commits they can observe nothing of the
// group, and the instant it commits their next clock check restarts them.
// combineLingerBeats bounds the scheduler beats a holder yields before
// draining. One beat gives every contender a single slice — enough to reach
// its first write, not enough to restart off a dead prefix, rejoin the
// window in software, and enqueue. A handful of beats is; the early exit
// keeps the cost of an empty window to the beats actually spent.
const combineLingerBeats = 8

// lingerForGroup yields a bounded number of scheduler beats while holding
// the clock so the flat-combining batch can form: contending committers run
// to their first write (or begin inside the window via softwareStart),
// observe the locked clock, buffer, and enqueue. Real combiners spin a
// bounded window for the same reason.
func (t *thread) lingerForGroup() {
	r := t.sys.ring
	base := t.txv &^ 1
	for i := 0; i < combineLingerBeats && r.PendingAt(base) == 0; i++ {
		runtime.Gosched()
	}
}

func (t *thread) groupCommitPostfix() {
	r := t.sys.ring
	t.lingerForGroup()
	var group mem.Signature
	t.htx.AddWriteSignature(&group, combineSigBits)
	t.drainMask = 0
	t.groupBuf = t.groupBuf[:0]
	n := r.Drain(t.txv&^1, &group, combineDrainBudget, &t.drainMask, t.bufferGroup)
	for _, w := range t.groupBuf {
		t.htx.Store(w.Addr, w.Value)
	}
	t.htx.Store(t.sys.gClock, (t.txv&^1)+2)
	t.htx.Commit() // on abort: mixedAbortCleanup resolves drainMask rejected
	t.postfixActive = false
	t.base.St.PostfixCommits++
	t.base.St.Obs.RecordSince(obs.PhasePostfix, t.postfixStart)
	if n > 0 {
		t.base.St.CombineDrains++
		t.base.RecordCombine(obs.FilterCombineDrain)
	}
	if t.drainMask != 0 {
		r.Resolve(t.drainMask, true)
		t.drainMask = 0
	}
	t.writeDetected = false
	t.undo = t.undo[:0]
}

// groupCommitSoftware commits a full-software holder with the combining
// ring enabled: queued commits are published in place under the global HTM
// lock — combining readers reject any read overlapping the window via the
// HTM-lock check, exactly as they do for the holder's own eager writes. The
// clock must release *before* the HTM lock drops: a combining reader that
// observes the lock clear re-reads the clock, and this ordering guarantees
// the re-read sees the window closed (see mixedTx.Load). Claims resolve done
// only after the clock releases, when the whole group is visible.
func (t *thread) groupCommitSoftware() {
	m := t.base.M
	r := t.sys.ring
	t.lingerForGroup()
	var group mem.Signature
	for i := range t.undo {
		group.AddLine(mem.LineOf(t.undo[i].Addr), combineSigBits)
	}
	t.drainMask = 0
	t.groupBuf = t.groupBuf[:0]
	n := r.Drain(t.txv&^1, &group, 1<<30, &t.drainMask, t.bufferGroup)
	for _, w := range t.groupBuf {
		m.StorePlain(w.Addr, w.Value)
	}
	t.appendRedoEager(t.groupBuf)
	m.StorePlain(t.sys.gClock, (t.txv&^1)+2)
	m.StorePlain(t.sys.gHTMLock, 0)
	t.fullSoftware = false
	if n > 0 {
		t.base.St.CombineDrains++
		t.base.RecordCombine(obs.FilterCombineDrain)
	}
	if t.drainMask != 0 {
		r.Resolve(t.drainMask, true)
		t.drainMask = 0
	}
	t.writeDetected = false
	t.undo = t.undo[:0]
}

// bufferGroup is the Drain apply callback: it folds one claimed entry's
// writes into groupBuf, last write per address winning. Claim order is the
// group's serialization order, so the coalesced buffer is equivalent to
// applying every entry in sequence — and a batch of same-line publishes
// costs one store per line instead of one per entry.
func (t *thread) bufferGroup(ws []mem.WriteEntry) {
	for _, w := range ws {
		t.bufferGroupWrite(w)
	}
}

func (t *thread) bufferGroupWrite(w mem.WriteEntry) {
	for i := range t.groupBuf {
		if t.groupBuf[i].Addr == w.Addr {
			t.groupBuf[i].Value = w.Value
			return
		}
	}
	t.groupBuf = append(t.groupBuf, w)
}

// combineCommit commits a combine-mode transaction: its writes are buffered
// in combWrites and no lock is held. Either the clock lock frees and we
// take it ourselves (replaying the buffer through the ordinary postfix or
// software machinery), or a holder still has it and we enqueue the buffer
// for group commit and wait for the verdict.
func (t *thread) combineCommit() {
	m := t.base.M
	for {
		c := m.LoadPlain(t.sys.gClock)
		if c == t.txv {
			if !m.CASPlain(t.sys.gClock, t.txv, t.txv|1) {
				continue
			}
			t.txv |= 1
			t.writeDetected = true
			t.combineMode = false
			if !t.sys.policy.DisablePostfix && !t.postfixBanned {
				t.base.St.PostfixAttempts++
				t.postfixStart = t.base.St.Obs.Start()
				t.htx.Begin()
				t.postfixActive = true
				for _, w := range t.combWrites {
					t.htx.Store(w.Addr, w.Value)
				}
			} else {
				t.goFullSoftware()
				for _, w := range t.combWrites {
					t.base.InstrumentedAccess()
					t.undo = append(t.undo, mem.WriteEntry{Addr: w.Addr, Value: m.LoadPlain(w.Addr)})
					m.StorePlain(w.Addr, w.Value)
				}
			}
			t.mixedCommit() // the ordinary locked commit, drain included
			return
		}
		if c == t.txv|1 {
			if t.tryEnqueue() {
				return
			}
			continue
		}
		// The holder committed a group that excluded us (or a later window
		// opened): our base is stale.
		tm.Restart()
	}
}

// tryEnqueue offers the buffered write set to the current holder's group
// and waits for a verdict. It returns true when the group committed us;
// false when the entry could not be placed or was retracted (the caller
// re-examines the clock). A rejected claim restarts the attempt.
func (t *thread) tryEnqueue() bool {
	m := t.base.M
	r := t.sys.ring
	rsig := t.combRSig
	if t.prefixCommitted {
		// The committed prefix's reads are part of this attempt's footprint;
		// htx still holds their log (it is reset only by the next Begin, and
		// combine mode never starts a postfix).
		t.htx.AddReadSignature(&rsig, combineSigBits)
	}
	var wsig mem.Signature
	for i := range t.combWrites {
		wsig.AddLine(mem.LineOf(t.combWrites[i].Addr), combineSigBits)
	}
	slot := r.Enqueue(t.txv, t.combWrites, &rsig, &wsig)
	if slot < 0 {
		runtime.Gosched()
		return false
	}
	for {
		switch r.Poll(slot) {
		case mem.CombineDone:
			r.Release(slot)
			t.combineMode = false
			t.base.St.CombinedCommits++
			t.base.RecordCombine(obs.FilterCombinedCommit)
			return true
		case mem.CombineRejected:
			r.Release(slot)
			t.base.St.CombineRejects++
			t.base.RecordCombine(obs.FilterCombineReject)
			tm.Restart()
		}
		// The clock load both paces the wait (it is a yield point under the
		// deterministic explorer, letting the holder run) and detects a
		// holder that finished without claiming us.
		if m.LoadPlain(t.sys.gClock) != t.txv|1 {
			if r.TryCancel(slot) {
				return false
			}
			// A holder claimed the entry between the clock moving and the
			// cancel: its verdict is imminent — keep polling.
		}
		runtime.Gosched()
	}
}

// combGet answers a combine-mode read from the buffered write set.
func (t *thread) combGet(a mem.Addr) (uint64, bool) {
	for i := len(t.combWrites) - 1; i >= 0; i-- {
		if t.combWrites[i].Addr == a {
			return t.combWrites[i].Value, true
		}
	}
	return 0, false
}

// combPut buffers a combine-mode write (last write per address wins).
func (t *thread) combPut(a mem.Addr, v uint64) {
	for i := range t.combWrites {
		if t.combWrites[i].Addr == a {
			t.combWrites[i].Value = v
			return
		}
	}
	t.combWrites = append(t.combWrites, mem.WriteEntry{Addr: a, Value: v})
}

// mixedUserAbort cleanly discards an attempt whose callback returned an
// error: nothing it did may remain visible.
func (t *thread) mixedUserAbort() {
	if t.htx.Active() {
		t.htx.Cancel()
	}
	t.mixedAbortCleanup()
}

// mixedAbortCleanup releases every lock and rolls back eager writes after a
// restart, hardware abort, or user abort. The hardware transactions have
// already discarded their buffers by this point.
func (t *thread) mixedAbortCleanup() {
	m := t.base.M
	if t.drainMask != 0 {
		// A drain claimed ring entries but the publish died (postfix abort or
		// a panic mid-apply): every claim resolves rejected so its owner can
		// restart instead of waiting forever.
		t.sys.ring.Resolve(t.drainMask, false)
		t.drainMask = 0
	}
	t.combineMode = false
	if t.prefixActive {
		// A failed prefix: ban it for this transaction and shrink the
		// budget (§3.4 single-try policy + §2.4 adaptation).
		t.prefixActive = false
		t.prefixBanned = true
		t.adaptPrefixAfterAbort()
	}
	if t.postfixActive {
		// A failed postfix: revert to the Hybrid NOrec software writes on
		// the retry (see the package comment for the checkpoint
		// deviation).
		t.postfixActive = false
		t.postfixBanned = true
	}
	for i := len(t.undo) - 1; i >= 0; i-- {
		m.StorePlain(t.undo[i].Addr, t.undo[i].Value)
	}
	t.undo = t.undo[:0]
	if t.sys.ring != nil && t.writeDetected {
		// With combining on, an aborting holder must *advance* the clock:
		// combining readers treat clock==txv|1 as naming one unique holder
		// window, and restoring txv would let a second holder re-lock the
		// same value — an ABA that could launder a rolled-back transient
		// value past their recheck. The advance spuriously restarts
		// same-base software readers, which is safe (NOrec conservatism).
		// The clock moves before the HTM lock drops for the same
		// reader-recheck ordering reason as in groupCommitSoftware.
		m.StorePlain(t.sys.gClock, (t.txv&^1)+2)
		t.writeDetected = false
	}
	if t.fullSoftware {
		m.StorePlain(t.sys.gHTMLock, 0)
		t.fullSoftware = false
	}
	if t.writeDetected {
		// Memory is restored and nobody could observe the interim state
		// (the clock was locked), so release without advancing.
		m.StorePlain(t.sys.gClock, t.txv&^1)
		t.writeDetected = false
	}
	t.base.AbortCleanup()
}

// fastTx is the pure, uninstrumented hardware view of Algorithm 1.
type fastTx struct{ t *thread }

func (v fastTx) Load(a mem.Addr) uint64 { return v.t.htx.Load(a) }

func (v fastTx) Store(a mem.Addr, val uint64) {
	if v.t.ro {
		panic(tm.ErrStoreInReadOnly)
	}
	v.t.htx.Store(a, val)
}

func (v fastTx) Alloc(n int) mem.Addr   { return v.t.base.TxAlloc(n) }
func (v fastTx) Free(a mem.Addr, n int) { v.t.base.TxFree(a, n) }

// mixedTx is the mixed slow path view: reads route through the HTM prefix,
// plain validated software loads, or the HTM postfix, depending on phase
// (Algorithm 3 mixed_slow_path_read/write).
type mixedTx struct{ t *thread }

func (v mixedTx) Load(a mem.Addr) uint64 {
	t := v.t
	if t.prefixActive {
		t.prefixReads++
		if t.prefixReads < t.maxReads {
			return t.htx.Load(a)
		}
		t.prefixLimited = true
		t.commitPrefix()
		// Fall through: this read executes in software.
	}
	if t.postfixActive {
		return t.htx.Load(a)
	}
	t.base.InstrumentedAccess()
	m := t.base.M
	if t.combineMode {
		if val, ok := t.combGet(a); ok {
			return val
		}
	}
	val := m.LoadPlain(a)
	if c := m.LoadPlain(t.sys.gClock); c != t.txv {
		// In combine mode the clock being locked at our own base is not a
		// conflict, because nothing of the holder's can have reached val:
		// clock==txv|1 names a unique holder window (an aborting holder
		// advances the clock on release, so a base is never re-locked), a
		// postfix holder publishes atomically with the clock leaving txv|1,
		// and a software holder writes only under the global HTM lock and
		// releases the clock before that lock. Under those rules the
		// val -> clock -> lock -> clock-again load sequence accepting
		// (txv|1, 0, txv|1) proves the lock load preceded the holder's
		// lock acquisition — hence val preceded its first write — or else
		// followed a release whose prior clock move the reload would see.
		if !(t.combineMode && c == t.txv|1 &&
			m.LoadPlain(t.sys.gHTMLock) == 0 &&
			m.LoadPlain(t.sys.gClock) == t.txv|1) {
			tm.Restart()
		}
	}
	if t.sys.ring != nil {
		t.combRSig.AddLine(mem.LineOf(a), combineSigBits)
	}
	return val
}

func (v mixedTx) Store(a mem.Addr, val uint64) {
	t := v.t
	if t.ro {
		panic(tm.ErrStoreInReadOnly)
	}
	if t.prefixActive {
		t.commitPrefix() // Algorithm 3 lines 40–45: first write ends the prefix
	}
	if !t.writeDetected && !t.combineMode {
		t.handleFirstWrite()
	}
	if t.postfixActive {
		t.htx.Store(a, val)
		return
	}
	if t.combineMode {
		// No InstrumentedAccess: a combine-mode store is a thread-private
		// write-buffer append touching no shared STM metadata — the same
		// cost class as an HTM write-buffer store, which the cost model
		// does not charge either. (Combine-mode loads stay instrumented:
		// they run the full clock-validation protocol.)
		t.combPut(a, val)
		return
	}
	t.base.InstrumentedAccess()
	t.undo = append(t.undo, mem.WriteEntry{Addr: a, Value: t.base.M.LoadPlain(a)})
	t.base.M.StorePlain(a, val)
}

func (v mixedTx) Alloc(n int) mem.Addr   { return v.t.base.TxAlloc(n) }
func (v mixedTx) Free(a mem.Addr, n int) { v.t.base.TxFree(a, n) }
