// Package serial implements the degenerate baseline TM: a single global
// mutex serializes every transaction. It trivially provides opacity,
// serializability and privatization, scales not at all, and doubles as the
// correctness oracle for differential tests of the real algorithms.
package serial

import (
	"sync"

	"rhnorec/internal/mem"
	"rhnorec/internal/tm"
)

// System is a global-lock TM over one shared memory.
type System struct {
	m   *mem.Memory
	rec *tm.Reclaimer
	mu  sync.Mutex
}

// New creates a serial TM over m.
func New(m *mem.Memory) *System {
	return &System{m: m, rec: tm.NewReclaimer()}
}

// Name implements tm.System.
func (s *System) Name() string { return "serial" }

// Memory implements tm.System.
func (s *System) Memory() *mem.Memory { return s.m }

// NewThread implements tm.System.
func (s *System) NewThread() tm.Thread {
	return &thread{sys: s, base: tm.NewThreadBase(s.m, s.rec)}
}

type thread struct {
	sys  *System
	base tm.ThreadBase
	undo []mem.WriteEntry
	ro   bool
}

// txView adapts the thread to tm.Tx while the lock is held.
type txView struct{ t *thread }

func (v txView) Load(a mem.Addr) uint64 { return v.t.base.M.LoadPlain(a) }

func (v txView) Store(a mem.Addr, val uint64) {
	if v.t.ro {
		panic(tm.ErrStoreInReadOnly)
	}
	v.t.undo = append(v.t.undo, mem.WriteEntry{Addr: a, Value: v.t.base.M.LoadPlain(a)})
	v.t.base.M.StorePlain(a, val)
}

func (v txView) Alloc(n int) mem.Addr { return v.t.base.TxAlloc(n) }

func (v txView) Free(a mem.Addr, n int) { v.t.base.TxFree(a, n) }

func (t *thread) Run(fn func(tm.Tx) error) error         { return t.run(fn, false) }
func (t *thread) RunReadOnly(fn func(tm.Tx) error) error { return t.run(fn, true) }

func (t *thread) run(fn func(tm.Tx) error, ro bool) error {
	if nested := t.base.Nested(); nested != nil {
		// Flat nesting: execute inline in the enclosing transaction.
		return fn(nested)
	}
	t.base.BeginTxn()
	defer t.base.EndTxn()
	t.sys.mu.Lock()
	defer t.sys.mu.Unlock()
	t.ro = ro
	t.undo = t.undo[:0]
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				t.rollback()
				t.base.AbortCleanup()
				panic(r) // application panics and stray restarts surface
			}
		}()
		return t.base.CallUser(fn, txView{t})
	}()
	if err != nil {
		t.rollback()
		t.base.AbortCleanup()
		t.base.St.UserAborts++
		return err
	}
	t.base.CommitCleanup()
	t.base.St.Commits++
	t.base.St.SerialCommits++
	if ro {
		t.base.St.ReadOnlyCommits++
	}
	return nil
}

// rollback undoes eager writes in reverse order.
func (t *thread) rollback() {
	for i := len(t.undo) - 1; i >= 0; i-- {
		t.base.M.StorePlain(t.undo[i].Addr, t.undo[i].Value)
	}
	t.undo = t.undo[:0]
}

func (t *thread) Stats() *tm.Stats { return &t.base.St }

func (t *thread) Close() { t.base.CloseBase() }
