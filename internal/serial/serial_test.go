package serial_test

import (
	"errors"
	"testing"

	"rhnorec/internal/mem"
	"rhnorec/internal/serial"
	"rhnorec/internal/tm"
	"rhnorec/internal/tmtest"
)

func factory(m *mem.Memory) tm.System { return serial.New(m) }

func TestConformance(t *testing.T) {
	tmtest.RunConformance(t, factory, tmtest.Options{})
}

func TestName(t *testing.T) {
	if got := serial.New(mem.New(1024)).Name(); got != "serial" {
		t.Errorf("Name = %q, want serial", got)
	}
}

func TestMemoryAccessor(t *testing.T) {
	m := mem.New(1024)
	if serial.New(m).Memory() != m {
		t.Error("Memory() did not return the underlying memory")
	}
}

func TestUserAbortRollsBackEagerWritesInOrder(t *testing.T) {
	m := mem.New(1 << 12)
	sys := serial.New(m)
	th := sys.NewThread()
	defer th.Close()
	var a mem.Addr
	if err := th.Run(func(tx tm.Tx) error {
		a = tx.Alloc(1)
		tx.Store(a, 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := th.Run(func(tx tm.Tx) error {
		tx.Store(a, 2)
		tx.Store(a, 3)
		tx.Store(a, 4)
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if got := m.LoadPlain(a); got != 1 {
		t.Errorf("value = %d after rollback of chained writes, want 1", got)
	}
}

func TestApplicationPanicPropagatesAndRollsBack(t *testing.T) {
	m := mem.New(1 << 12)
	sys := serial.New(m)
	th := sys.NewThread()
	defer th.Close()
	var a mem.Addr
	if err := th.Run(func(tx tm.Tx) error { a = tx.Alloc(1); return nil }); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if r := recover(); r != "app bug" {
				t.Errorf("recovered %v, want app bug", r)
			}
		}()
		_ = th.Run(func(tx tm.Tx) error {
			tx.Store(a, 9)
			panic("app bug")
		})
	}()
	if got := m.LoadPlain(a); got != 0 {
		t.Errorf("value = %d after panic, want 0 (rolled back)", got)
	}
	// The thread must remain usable (lock released).
	if err := th.Run(func(tx tm.Tx) error { tx.Store(a, 1); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestStatsCounters(t *testing.T) {
	m := mem.New(1 << 12)
	sys := serial.New(m)
	th := sys.NewThread()
	defer th.Close()
	_ = th.Run(func(tx tm.Tx) error { return nil })
	_ = th.RunReadOnly(func(tx tm.Tx) error { return nil })
	_ = th.Run(func(tx tm.Tx) error { return errors.New("x") })
	s := th.Stats()
	if s.Commits != 2 || s.SerialCommits != 2 || s.ReadOnlyCommits != 1 || s.UserAborts != 1 {
		t.Errorf("stats = %+v", s)
	}
}
