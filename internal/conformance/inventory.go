package conformance

import (
	"fmt"
	"math/rand"

	"rhnorec/internal/mem"
	"rhnorec/internal/tm"
)

// InventoryConfig parameterizes the inventory/checkout workload: carts of
// hot-skewed SKUs decrement stock and increment sold in one transaction,
// restocks add supply, and conservation — stock + sold == initial +
// restocked, with stock never below zero — is the invariant, checked in
// the checkout transaction itself, by read-only auditors, and at the end.
type InventoryConfig struct {
	// SKUs is the catalog size (one cache line each).
	SKUs int
	// Hot is the hot-SKU subset size; 3/4 of cart picks land there.
	Hot int
	// Initial is the starting stock per SKU.
	Initial uint64
	// MaxCart bounds the items per checkout (inclusive).
	MaxCart int
	// Restock is the units added per restock operation.
	Restock uint64
}

func (c InventoryConfig) withDefaults() InventoryConfig {
	if c.SKUs <= 0 {
		c.SKUs = 16
	}
	if c.Hot <= 0 {
		c.Hot = c.SKUs / 4
		if c.Hot < 1 {
			c.Hot = 1
		}
	}
	if c.Initial == 0 {
		c.Initial = 50
	}
	if c.MaxCart <= 0 {
		c.MaxCart = 3
	}
	if c.Restock == 0 {
		c.Restock = 25
	}
	return c
}

// SKU line layout: word 0 stock, 1 sold, 2 restocked.
type inventoryInstance struct {
	cfg  InventoryConfig
	base mem.Addr
}

func (s *inventoryInstance) sku(k int) mem.Addr {
	return s.base + mem.Addr(k*mem.LineWords)
}

func (s *inventoryInstance) Setup(th tm.Thread) error {
	cfg := s.cfg.withDefaults()
	s.cfg = cfg
	return th.Run(func(tx tm.Tx) error {
		s.base = tx.Alloc(cfg.SKUs * mem.LineWords)
		for k := 0; k < cfg.SKUs; k++ {
			tx.Store(s.sku(k), cfg.Initial)
		}
		return nil
	})
}

func (s *inventoryInstance) NewWorker(th tm.Thread, seed int64, report Report) func() error {
	rng := rand.New(rand.NewSource(seed))
	return func() error { return s.op(th, rng, report) }
}

// pick draws a SKU with the hot skew: 3/4 of picks from the hot subset.
func (s *inventoryInstance) pick(rng *rand.Rand) int {
	if rng.Intn(4) != 0 {
		return rng.Intn(s.cfg.Hot)
	}
	return rng.Intn(s.cfg.SKUs)
}

// op draws one operation: 1/8 restock, 1/8 read-only catalog audit, 6/8 a
// cart checkout. The cart is drawn before the transaction so a restart
// replays the same operation.
func (s *inventoryInstance) op(th tm.Thread, rng *rand.Rand, report Report) error {
	cfg := s.cfg
	switch rng.Intn(8) {
	case 0: // restock one SKU
		k := s.pick(rng)
		return th.Run(func(tx tm.Tx) error {
			a := s.sku(k)
			tx.Store(a, tx.Load(a)+cfg.Restock)
			tx.Store(a+2, tx.Load(a+2)+cfg.Restock)
			return nil
		})
	case 1: // audit: conservation over the whole catalog in one snapshot
		return th.RunReadOnly(func(tx tm.Tx) error {
			for k := 0; k < cfg.SKUs; k++ {
				a := s.sku(k)
				if tx.Load(a)+tx.Load(a+1) != cfg.Initial+tx.Load(a+2) {
					report(fmt.Sprintf("inventory audit: sku %d stock %d + sold %d != initial %d + restocked %d",
						k, tx.Load(a), tx.Load(a+1), cfg.Initial, tx.Load(a+2)))
				}
			}
			return nil
		})
	default: // checkout: decrement stock, increment sold, per cart item
		cart := make([]int, 1+rng.Intn(cfg.MaxCart))
		for i := range cart {
			cart[i] = s.pick(rng)
		}
		return th.Run(func(tx tm.Tx) error {
			for _, k := range cart {
				a := s.sku(k)
				st := tx.Load(a)
				if st == 0 {
					continue // out of stock: skip the line item
				}
				tx.Store(a, st-1)
				tx.Store(a+1, tx.Load(a+1)+1)
			}
			// In-transaction invariant on every touched SKU.
			for _, k := range cart {
				a := s.sku(k)
				if tx.Load(a)+tx.Load(a+1) != cfg.Initial+tx.Load(a+2) {
					report(fmt.Sprintf("inventory: sku %d conservation broken in-txn", k))
				}
			}
			return nil
		})
	}
}

func (s *inventoryInstance) Check(sys tm.System) error {
	cfg := s.cfg
	snap := make([]uint64, cfg.SKUs*mem.LineWords)
	sys.Memory().Snapshot(s.base, snap)
	for k := 0; k < cfg.SKUs; k++ {
		w := k * mem.LineWords
		if snap[w]+snap[w+1] != cfg.Initial+snap[w+2] {
			return fmt.Errorf("inventory: sku %d stock %d + sold %d != initial %d + restocked %d",
				k, snap[w], snap[w+1], cfg.Initial, snap[w+2])
		}
	}
	return nil
}

// inventoryScenario models a storefront checkout path: multi-line
// read-modify-write carts colliding on a few bestseller SKUs.
var inventoryScenario = Scenario{
	Name: "inventory",
	Description: "inventory/checkout with hot SKUs: carts decrement stock and " +
		"increment sold atomically; stock+sold == initial+restocked is the invariant",
	Profile: Profile{
		Contention: "multi-line write sets colliding on bestseller SKUs (3/4 of " +
			"picks on the hot quarter); restocks and carts race on the same lines",
		Footprint: "1-3 SKU lines read+written per checkout; whole catalog per audit",
		ReadShare: 0.125,
	},
	ExploreWorkers: 3,
	ExploreOps:     4,
	Traffic: &Traffic{
		ZipfSkew: 1.2, GetFrac: 0.20, CasFrac: 0.05, TxnFrac: 0.65, TxnOps: 3,
	},
	New: func(scale Scale) Instance {
		switch scale {
		case ScaleExplore:
			return &inventoryInstance{cfg: InventoryConfig{SKUs: 3, Hot: 1, Initial: 5, MaxCart: 2, Restock: 3}}
		case ScaleSoak:
			return &inventoryInstance{cfg: InventoryConfig{SKUs: 64, Initial: 100}}
		default:
			return &inventoryInstance{cfg: InventoryConfig{}}
		}
	},
}
