// External test package so the suite can pull the TM drivers from
// internal/bench (which itself imports conformance for the scenario
// workloads) without an import cycle.
package conformance_test

import (
	"strings"
	"testing"

	"rhnorec/internal/bench"
	"rhnorec/internal/conformance"
	"rhnorec/internal/htm"
	"rhnorec/internal/mem"
	"rhnorec/internal/tm"
)

func drivers(t *testing.T) []bench.Algo {
	t.Helper()
	algos := bench.StandardAlgos()
	phased, ok := bench.AlgoByName("phased-tm")
	if !ok {
		t.Fatal("phased-tm driver missing")
	}
	return append(algos, phased)
}

// TestScenariosUnderAllDrivers runs every registry scenario through
// setup -> concurrent workers -> invariant check under all six TM drivers:
// the registry's core contract, that a scenario is a self-checking workload
// any driver must survive.
func TestScenariosUnderAllDrivers(t *testing.T) {
	for _, algo := range drivers(t) {
		algo := algo
		t.Run(algo.Name, func(t *testing.T) {
			for _, sc := range conformance.Scenarios() {
				sc := sc
				t.Run(sc.Name, func(t *testing.T) {
					t.Parallel()
					m := mem.New(1 << 20)
					dev := htm.NewDevice(m, htm.Config{SpuriousAbortProb: 0.001})
					dev.SetActiveThreads(4)
					sys := algo.New(m, dev, tm.RetryPolicy{})
					if err := sc.Drive(sys, conformance.ScaleTest, 4, 250, 0, 1); err != nil {
						t.Error(err)
					}
				})
			}
		})
	}
}

// TestRegistryShape pins the registry's self-description: unique names,
// non-empty descriptions and contention profiles, resolvable lookups, and
// instances at every scale.
func TestRegistryShape(t *testing.T) {
	scs := conformance.Scenarios()
	if len(scs) < 6 {
		t.Fatalf("registry has %d scenarios, want >= 6", len(scs))
	}
	seen := map[string]bool{}
	for _, sc := range scs {
		if sc.Name == "" || seen[sc.Name] {
			t.Errorf("scenario name %q empty or duplicated", sc.Name)
		}
		seen[sc.Name] = true
		if sc.Description == "" {
			t.Errorf("%s: empty description", sc.Name)
		}
		if sc.Profile.Contention == "" {
			t.Errorf("%s: empty contention profile", sc.Name)
		}
		if sc.ExploreWorkers <= 0 || sc.ExploreOps <= 0 {
			t.Errorf("%s: explore bounds %d workers x %d ops not positive",
				sc.Name, sc.ExploreWorkers, sc.ExploreOps)
		}
		got, ok := conformance.ByName(sc.Name)
		if !ok || got.Name != sc.Name {
			t.Errorf("ByName(%q) did not round-trip", sc.Name)
		}
		for _, scale := range []conformance.Scale{
			conformance.ScaleExplore, conformance.ScaleTest, conformance.ScaleSoak,
		} {
			if sc.New(scale) == nil {
				t.Errorf("%s: New(%v) returned nil", sc.Name, scale)
			}
		}
		if tr := sc.Traffic; tr != nil {
			sum := tr.GetFrac + tr.CasFrac + tr.ScanFrac + tr.TxnFrac
			if sum < 0 || sum > 1 {
				t.Errorf("%s: traffic fractions sum to %g, want in [0,1] (remainder is PUT)",
					sc.Name, sum)
			}
		}
	}
	if _, ok := conformance.ByName("no-such-scenario"); ok {
		t.Error("ByName resolved a nonexistent scenario")
	}
	names := conformance.Names()
	if len(names) != len(scs) {
		t.Errorf("Names() has %d entries, registry %d", len(names), len(scs))
	}
}

// TestDriveReportsViolation proves the oracle path end to end: a driver
// that silently drops committed writes must make Drive return an invariant
// failure, not pass quietly.
func TestDriveReportsViolation(t *testing.T) {
	sc, ok := conformance.ByName("bank")
	if !ok {
		t.Fatal("bank scenario missing")
	}
	m := mem.New(1 << 20)
	dev := htm.NewDevice(m, htm.Config{})
	dev.SetActiveThreads(2)
	rh, _ := bench.AlgoByName("rh-norec")
	sys := rh.New(m, dev, tm.RetryPolicy{})
	err := sc.Drive(brokenSystem{sys}, conformance.ScaleTest, 2, 150, 0, 1)
	if err == nil {
		t.Fatal("lossy system passed the bank conservation oracle")
	}
	if !strings.Contains(err.Error(), "bank") {
		t.Errorf("violation error %q does not name the scenario oracle", err)
	}
}

// brokenSystem drops one store per transaction inside the bank transfer:
// a conservation bug the invariant check must catch.
type brokenSystem struct{ tm.System }

func (b brokenSystem) NewThread() tm.Thread { return brokenThread{b.System.NewThread()} }

type brokenThread struct{ tm.Thread }

func (bt brokenThread) Run(body func(tm.Tx) error) error {
	return bt.Thread.Run(func(tx tm.Tx) error { return body(brokenTx{tx, new(int)}) })
}

type brokenTx struct {
	tm.Tx
	stores *int
}

func (bx brokenTx) Store(a mem.Addr, v uint64) {
	*bx.stores++
	if *bx.stores == 1 {
		// Swallow the first store of the transaction (the debit side of a
		// transfer): money is created from nothing.
		return
	}
	bx.Tx.Store(a, v)
}
