package conformance

import (
	"fmt"
	"math/rand"

	"rhnorec/internal/mem"
	"rhnorec/internal/tm"
)

// SessionConfig parameterizes the session-store workload: a fixed table of
// session slots under create/refresh/read traffic with TTL eviction sweeps
// against a logical clock. Every live slot carries a checksum over its
// fields, and a count word tracks the live population — both are verified
// in-transaction by readers and auditors, and over a snapshot at the end.
type SessionConfig struct {
	// Slots is the session-table size (one cache line per slot).
	Slots int
	// TTL is a lease's lifetime in logical clock ticks.
	TTL uint64
}

func (c SessionConfig) withDefaults() SessionConfig {
	if c.Slots <= 0 {
		c.Slots = 16
	}
	if c.TTL == 0 {
		c.TTL = 4
	}
	return c
}

// sessionSalt folds into every slot checksum so a zeroed slot never looks
// accidentally consistent while its state word claims it is live.
const sessionSalt = 0x5eed

// Slot line layout: word 0 state (0 free, 1 live), 1 expiry, 2 value,
// 3 checksum = value ^ expiry ^ sessionSalt. Line 0 of the region is the
// logical clock, line 1 the live count, slots start at line 2.
type sessionInstance struct {
	cfg   SessionConfig
	clock mem.Addr
	count mem.Addr
}

func (s *sessionInstance) slot(i int) mem.Addr {
	return s.clock + mem.Addr((2+i)*mem.LineWords)
}

func (s *sessionInstance) Setup(th tm.Thread) error {
	cfg := s.cfg.withDefaults()
	s.cfg = cfg
	return th.Run(func(tx tm.Tx) error {
		s.clock = tx.Alloc((2 + cfg.Slots) * mem.LineWords)
		s.count = s.clock + mem.LineWords
		return nil // fresh memory is zero: clock 0, no live sessions
	})
}

func (s *sessionInstance) NewWorker(th tm.Thread, seed int64, report Report) func() error {
	rng := rand.New(rand.NewSource(seed))
	return func() error { return s.op(th, rng, report) }
}

// op draws one operation: 1/16 clock tick, 1/16 eviction sweep, 1/16
// read-only full audit, 5/16 create-or-refresh, 8/16 single-session read.
// The clock line is read by every mutation (the classic read-mostly hot
// word), and eviction sweeps conflict with concurrent creates.
func (s *sessionInstance) op(th tm.Thread, rng *rand.Rand, report Report) error {
	cfg := s.cfg
	switch r := rng.Intn(16); {
	case r == 0: // advance the TTL clock
		return th.Run(func(tx tm.Tx) error {
			tx.Store(s.clock, tx.Load(s.clock)+1)
			return nil
		})
	case r == 1: // evict every expired session, maintaining the live count
		return th.Run(func(tx tm.Tx) error {
			now := tx.Load(s.clock)
			live := tx.Load(s.count)
			for i := 0; i < cfg.Slots; i++ {
				sl := s.slot(i)
				if tx.Load(sl) == 1 && tx.Load(sl+1) <= now {
					tx.Store(sl, 0)
					tx.Store(sl+1, 0)
					tx.Store(sl+2, 0)
					tx.Store(sl+3, 0)
					live--
				}
			}
			tx.Store(s.count, live)
			return nil
		})
	case r == 2: // read-only audit: count and checksums over one snapshot
		return th.RunReadOnly(func(tx tm.Tx) error {
			var live uint64
			for i := 0; i < cfg.Slots; i++ {
				sl := s.slot(i)
				if tx.Load(sl) != 1 {
					continue
				}
				live++
				if tx.Load(sl+3) != tx.Load(sl+2)^tx.Load(sl+1)^sessionSalt {
					report(fmt.Sprintf("session audit: slot %d checksum mismatch", i))
				}
			}
			if got := tx.Load(s.count); got != live {
				report(fmt.Sprintf("session audit: live count %d, want %d", got, live))
			}
			return nil
		})
	case r < 8: // create a session, or refresh its lease if the slot is live
		i := rng.Intn(cfg.Slots)
		v := uint64(1 + rng.Intn(1<<16))
		return th.Run(func(tx tm.Tx) error {
			sl := s.slot(i)
			exp := tx.Load(s.clock) + cfg.TTL
			if tx.Load(sl) != 1 { // create
				tx.Store(sl, 1)
				tx.Store(sl+2, v)
				tx.Store(s.count, tx.Load(s.count)+1)
			} // refresh keeps the stored value, extends the lease
			tx.Store(sl+1, exp)
			tx.Store(sl+3, tx.Load(sl+2)^exp^sessionSalt)
			return nil
		})
	default: // read one session, verifying its checksum
		i := rng.Intn(cfg.Slots)
		return th.RunReadOnly(func(tx tm.Tx) error {
			sl := s.slot(i)
			if tx.Load(sl) != 1 {
				return nil
			}
			if tx.Load(sl+3) != tx.Load(sl+2)^tx.Load(sl+1)^sessionSalt {
				report(fmt.Sprintf("session read: slot %d checksum mismatch", i))
			}
			return nil
		})
	}
}

func (s *sessionInstance) Check(sys tm.System) error {
	cfg := s.cfg
	snap := make([]uint64, (2+cfg.Slots)*mem.LineWords)
	sys.Memory().Snapshot(s.clock, snap)
	var live uint64
	for i := 0; i < cfg.Slots; i++ {
		w := (2 + i) * mem.LineWords
		if snap[w] == 0 {
			continue
		}
		if snap[w] != 1 {
			return fmt.Errorf("session: slot %d state %d, want 0 or 1", i, snap[w])
		}
		live++
		if snap[w+3] != snap[w+2]^snap[w+1]^sessionSalt {
			return fmt.Errorf("session: slot %d checksum %#x, want %#x",
				i, snap[w+3], snap[w+2]^snap[w+1]^sessionSalt)
		}
	}
	if got := snap[mem.LineWords]; got != live {
		return fmt.Errorf("session: live count %d, want %d", got, live)
	}
	return nil
}

// sessionScenario models a session cache: leases created and refreshed
// against a shared logical clock, evicted in sweeps once expired.
var sessionScenario = Scenario{
	Name: "session",
	Description: "session store with TTL eviction: checksummed leases against a " +
		"logical clock; the live count and per-slot checksums are the invariants",
	Profile: Profile{
		Contention: "shared clock word read by every mutation and bumped by tickers; " +
			"full-table eviction sweeps conflict with point creates",
		Footprint: "1 slot line + clock per create/read; whole table per evict/audit",
		ReadShare: 0.56,
	},
	ExploreWorkers: 3,
	ExploreOps:     4,
	Traffic: &Traffic{
		ZipfSkew: 0.99, GetFrac: 0.60, CasFrac: 0.10, ScanFrac: 0.05, TxnFrac: 0.15, TxnOps: 4, ScanCount: 16,
	},
	New: func(scale Scale) Instance {
		switch scale {
		case ScaleExplore:
			return &sessionInstance{cfg: SessionConfig{Slots: 4, TTL: 2}}
		case ScaleSoak:
			return &sessionInstance{cfg: SessionConfig{Slots: 64, TTL: 8}}
		default:
			return &sessionInstance{cfg: SessionConfig{}}
		}
	},
}
