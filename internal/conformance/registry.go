// Package conformance is the shared workload registry: every invariant
// scenario the repository's harnesses drive — the tmtest conformance suite,
// the rhstress soak harness, the rhexplore schedule explorer, the rhbench
// sweeps and (through traffic profiles) the rhload service generator — is
// registered here once, as a named, self-describing entry with a setup
// phase, a per-operation worker, and an end-of-run invariant check.
//
// Keeping one copy matters beyond hygiene: the explorer replays recorded
// schedules, so the worker logic driving a trace must be byte-for-byte the
// logic the other harnesses run, or a shrunk counterexample would not
// reproduce outside the explorer. Scenario workers therefore draw all
// randomness from the seeded RNG handed to NewWorker, draw it outside the
// transaction closures (a restart replays the same operation), and never
// read clocks or global state.
//
// The registry is also the row axis of the CI gate matrix: cmd/rhgate
// evaluates per-(scenario × algo) SLO specs over rhbench dumps produced by
// sweeping these entries (see internal/conformance/gate and
// docs/CONFORMANCE.md).
package conformance

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rhnorec/internal/tm"
)

// Scale selects a scenario's parameter set. The same worker logic runs at
// every scale; only footprint and mix knobs change.
type Scale int

const (
	// ScaleExplore is the tiny deterministic shape the schedule explorer
	// drives: a handful of lines, so few schedules cover the interesting
	// interleavings. Changing an explore-scale config invalidates recorded
	// trace fixtures (internal/explore/testdata) — treat it as frozen.
	ScaleExplore Scale = iota
	// ScaleTest is the shape `go test` drives: small enough for six TM
	// drivers × every scenario in seconds, large enough to exercise real
	// conflict paths.
	ScaleTest
	// ScaleSoak is the full-contention shape rhstress and rhbench drive.
	ScaleSoak
)

// String names the scale.
func (s Scale) String() string {
	switch s {
	case ScaleExplore:
		return "explore"
	case ScaleTest:
		return "test"
	case ScaleSoak:
		return "soak"
	}
	return fmt.Sprintf("Scale(%d)", int(s))
}

// Report is the violation sink handed to scenario workers. Workers call it
// for safety violations observed in-transaction (opacity breaches, torn
// invariants); the harness decides whether that aborts a test, increments a
// bench counter, or fails an explored schedule.
type Report func(msg string)

// Instance is one materialized scenario run: Setup seeds the shared state,
// NewWorker returns one worker's single-operation closure (the harness
// loops it — a fixed count for tests and exploration, until a stop flag for
// soaks and bench sweeps), and Check is the end-of-run invariant oracle,
// run after every worker has finished.
type Instance interface {
	Setup(th tm.Thread) error
	// NewWorker must derive all randomness from seed so runs replay; the
	// returned closure performs exactly one logical operation per call.
	NewWorker(th tm.Thread, seed int64, report Report) func() error
	Check(sys tm.System) error
}

// Profile is a scenario's contention-shape metadata: free-text,
// human-facing fields surfaced by the CLIs' -list output and the
// EXPERIMENTS.md writeups, so a reader can predict which TM path a
// scenario stresses before running it.
type Profile struct {
	// Contention describes the hot-spot structure (what conflicts, how often).
	Contention string
	// Footprint describes the read/write-set sizes per transaction.
	Footprint string
	// ReadShare is the approximate fraction of read-only transactions.
	ReadShare float64
}

// Traffic maps a scenario onto the KV service's request stream so rhload
// can replay its contention shape over the network (zipfian skew plus an
// endpoint mix). Fields mirror tmtest.RequestMix but stay plain so the
// registry does not import the harness packages that import it.
type Traffic struct {
	ZipfSkew  float64
	GetFrac   float64
	CasFrac   float64
	ScanFrac  float64
	TxnFrac   float64 // remainder of the four fractions is PUT
	TxnOps    int
	ScanCount int
}

// Scenario is one registry entry.
type Scenario struct {
	Name        string
	Description string
	Profile     Profile

	// ExploreWorkers/ExploreOps are the schedule explorer's default shape.
	ExploreWorkers int
	ExploreOps     int
	// MemWords sizes an explorer run's arena (0 = the explorer default).
	MemWords int

	// Traffic, when non-nil, is the scenario's service-level shape for
	// rhload -scenario.
	Traffic *Traffic

	// New materializes a fresh instance at the given scale.
	New func(scale Scale) Instance
}

// Scenarios returns the registry in presentation order.
func Scenarios() []Scenario {
	return []Scenario{
		bankScenario,
		rbtreeScenario,
		sessionScenario,
		ratelimitScenario,
		inventoryScenario,
		graphScenario,
	}
}

// Names lists the registered scenario names in order.
func Names() []string {
	var names []string
	for _, sc := range Scenarios() {
		names = append(names, sc.Name)
	}
	return names
}

// ByName finds a scenario.
func ByName(name string) (Scenario, bool) {
	for _, sc := range Scenarios() {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}

// Drive runs one instance of the scenario end to end against sys: setup,
// then threads workers — each looping its operation closure ops times, or
// until duration elapses when ops < 0 — then the invariant check. Worker
// panics are recovered and counted as violations (a crashed worker proves
// nothing about the survivors), so a Drive caller always gets a summary
// error instead of a dead process. Worker i seeds its RNG with seed+i.
func (sc Scenario) Drive(sys tm.System, scale Scale, threads, ops int, duration time.Duration, seed int64) error {
	inst := sc.New(scale)
	setup := sys.NewThread()
	err := inst.Setup(setup)
	setup.Close()
	if err != nil {
		return fmt.Errorf("%s setup: %w", sc.Name, err)
	}
	var (
		stop atomic.Bool
		vlog violationLog
		wg   sync.WaitGroup
	)
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					vlog.report(fmt.Sprintf("worker panic: %v", r))
				}
			}()
			th := sys.NewThread()
			defer th.Close()
			op := inst.NewWorker(th, seed, vlog.report)
			for j := 0; ops < 0 || j < ops; j++ {
				if ops < 0 && stop.Load() {
					return
				}
				if err := op(); err != nil {
					vlog.report(err.Error())
					return
				}
			}
		}(seed + int64(i))
	}
	if ops < 0 {
		time.Sleep(duration)
		stop.Store(true)
	}
	wg.Wait()
	if err := vlog.err(sc.Name); err != nil {
		return err
	}
	if err := inst.Check(sys); err != nil {
		return fmt.Errorf("%s check: %w", sc.Name, err)
	}
	return nil
}

// violationLog collects safety violations across workers, keeping the first
// message for the summary error.
type violationLog struct {
	count atomic.Uint64
	mu    sync.Mutex
	first string
}

func (v *violationLog) report(msg string) {
	if v.count.Add(1) == 1 {
		v.mu.Lock()
		v.first = msg
		v.mu.Unlock()
	}
}

func (v *violationLog) err(scenario string) error {
	n := v.count.Load()
	if n == 0 {
		return nil
	}
	v.mu.Lock()
	first := v.first
	v.mu.Unlock()
	return fmt.Errorf("%s: %d violation(s); first: %s", scenario, n, first)
}
