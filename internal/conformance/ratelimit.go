package conformance

import (
	"fmt"
	"math/rand"

	"rhnorec/internal/mem"
	"rhnorec/internal/tm"
)

// RateLimitConfig parameterizes the sliding-window rate limiter: per-client
// bucket rings admit at most Limit requests within any Window logical
// ticks. The cached window sum must always equal the bucket contents and
// never exceed the limit — checked in the admitting transaction itself,
// by read-only auditors, and over a snapshot at the end.
type RateLimitConfig struct {
	// Clients is the number of limited principals (one cache line each).
	Clients int
	// Window is the ring size in logical ticks (at most mem.LineWords-3,
	// so a client's whole state shares one line).
	Window int
	// Limit is the admission cap within a window.
	Limit uint64
}

func (c RateLimitConfig) withDefaults() RateLimitConfig {
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.Window <= 0 || c.Window > mem.LineWords-3 {
		c.Window = 4
	}
	if c.Limit == 0 {
		c.Limit = 6
	}
	return c
}

// Client line layout: word 0 winStart (the tick the ring is rotated to),
// 1 sum (cached bucket total), 2 admitted (monotone tally), 3..3+Window-1
// the buckets. Line 0 of the region is the shared logical clock.
type ratelimitInstance struct {
	cfg   RateLimitConfig
	clock mem.Addr
}

func (s *ratelimitInstance) client(c int) mem.Addr {
	return s.clock + mem.Addr((1+c)*mem.LineWords)
}

func (s *ratelimitInstance) Setup(th tm.Thread) error {
	cfg := s.cfg.withDefaults()
	s.cfg = cfg
	return th.Run(func(tx tm.Tx) error {
		s.clock = tx.Alloc((1 + cfg.Clients) * mem.LineWords)
		return nil // zero state: clock 0, empty rings
	})
}

func (s *ratelimitInstance) NewWorker(th tm.Thread, seed int64, report Report) func() error {
	rng := rand.New(rand.NewSource(seed))
	return func() error { return s.op(th, rng, report) }
}

// pick draws a client with a hot skew: 3/4 of requests land on the first
// quarter of the principals, so their lines carry write-write conflicts.
func (s *ratelimitInstance) pick(rng *rand.Rand) int {
	hot := s.cfg.Clients / 4
	if hot < 1 {
		hot = 1
	}
	if rng.Intn(4) != 0 {
		return rng.Intn(hot)
	}
	return rng.Intn(s.cfg.Clients)
}

// op draws one operation: 1/8 clock tick, 1/8 read-only audit over every
// client, 6/8 an admission attempt on a (hot-skewed) client.
func (s *ratelimitInstance) op(th tm.Thread, rng *rand.Rand, report Report) error {
	cfg := s.cfg
	switch rng.Intn(8) {
	case 0: // advance the shared clock
		return th.Run(func(tx tm.Tx) error {
			tx.Store(s.clock, tx.Load(s.clock)+1)
			return nil
		})
	case 1: // audit: every ring's cached sum matches its buckets and the cap
		return th.RunReadOnly(func(tx tm.Tx) error {
			for c := 0; c < cfg.Clients; c++ {
				cl := s.client(c)
				sum := tx.Load(cl + 1)
				var total uint64
				for b := 0; b < cfg.Window; b++ {
					total += tx.Load(cl + 3 + mem.Addr(b))
				}
				if total != sum {
					report(fmt.Sprintf("ratelimit audit: client %d sum %d, buckets total %d", c, sum, total))
				}
				if sum > cfg.Limit {
					report(fmt.Sprintf("ratelimit audit: client %d sum %d over limit %d", c, sum, cfg.Limit))
				}
			}
			return nil
		})
	default: // admission attempt: rotate the ring to now, then admit if under cap
		c := s.pick(rng)
		return th.Run(func(tx tm.Tx) error {
			cl := s.client(c)
			now := tx.Load(s.clock)
			ws := tx.Load(cl)
			if now > ws {
				if now-ws >= uint64(cfg.Window) {
					for b := 0; b < cfg.Window; b++ {
						tx.Store(cl+3+mem.Addr(b), 0)
					}
					tx.Store(cl+1, 0)
				} else {
					sum := tx.Load(cl + 1)
					for t := ws + 1; t <= now; t++ {
						b := cl + 3 + mem.Addr(t%uint64(cfg.Window))
						sum -= tx.Load(b)
						tx.Store(b, 0)
					}
					tx.Store(cl+1, sum)
				}
				tx.Store(cl, now)
			}
			sum := tx.Load(cl + 1)
			if sum < cfg.Limit {
				b := cl + 3 + mem.Addr(now%uint64(cfg.Window))
				tx.Store(b, tx.Load(b)+1)
				sum++
				tx.Store(cl+1, sum)
				tx.Store(cl+2, tx.Load(cl+2)+1)
			}
			// In-transaction invariant: the cached sum matches the buckets
			// (read-own-writes makes this see the admission above).
			var total uint64
			for b := 0; b < cfg.Window; b++ {
				total += tx.Load(cl + 3 + mem.Addr(b))
			}
			if total != sum {
				report(fmt.Sprintf("ratelimit: client %d sum %d, buckets total %d in-txn", c, sum, total))
			}
			if sum > cfg.Limit {
				report(fmt.Sprintf("ratelimit: client %d admitted past limit: sum %d > %d", c, sum, cfg.Limit))
			}
			return nil
		})
	}
}

func (s *ratelimitInstance) Check(sys tm.System) error {
	cfg := s.cfg
	snap := make([]uint64, (1+cfg.Clients)*mem.LineWords)
	sys.Memory().Snapshot(s.clock, snap)
	for c := 0; c < cfg.Clients; c++ {
		w := (1 + c) * mem.LineWords
		sum := snap[w+1]
		var total uint64
		for b := 0; b < cfg.Window; b++ {
			total += snap[w+3+b]
		}
		if total != sum {
			return fmt.Errorf("ratelimit: client %d sum %d, buckets total %d", c, sum, total)
		}
		if sum > cfg.Limit {
			return fmt.Errorf("ratelimit: client %d sum %d over limit %d", c, sum, cfg.Limit)
		}
	}
	return nil
}

// ratelimitScenario models an API edge's sliding-window limiter: short
// write transactions hammering a few hot lines, with a shared clock read
// on every admission.
var ratelimitScenario = Scenario{
	Name: "ratelimit",
	Description: "sliding-window rate limiter: per-client bucket rings with a " +
		"cached sum; sum==buckets and sum<=limit are the invariants",
	Profile: Profile{
		Contention: "write-write conflicts on hot client lines (3/4 of traffic on " +
			"the hottest quarter); every admission reads the shared clock",
		Footprint: "clock + 1 client line per admission; all client lines per audit",
		ReadShare: 0.125,
	},
	ExploreWorkers: 3,
	ExploreOps:     4,
	Traffic: &Traffic{
		ZipfSkew: 1.2, GetFrac: 0.10, CasFrac: 0.60, TxnFrac: 0.10, TxnOps: 2,
	},
	New: func(scale Scale) Instance {
		switch scale {
		case ScaleExplore:
			return &ratelimitInstance{cfg: RateLimitConfig{Clients: 2, Window: 3, Limit: 3}}
		case ScaleSoak:
			return &ratelimitInstance{cfg: RateLimitConfig{Clients: 32, Limit: 12}}
		default:
			return &ratelimitInstance{cfg: RateLimitConfig{}}
		}
	},
}
