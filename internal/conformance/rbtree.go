package conformance

import (
	"math/rand"

	"rhnorec/internal/rbtree"
	"rhnorec/internal/tm"
)

// TreeConfig parameterizes the red-black tree workload: concurrent
// put/delete/get traffic must preserve the structural invariants.
type TreeConfig struct {
	// InitialKeys seeds the tree with keys 0, 2, ..., 2*(InitialKeys-1).
	InitialKeys int
	// KeySpace bounds the keys workers touch (exclusive).
	KeySpace int
}

func (c TreeConfig) withDefaults() TreeConfig {
	if c.InitialKeys <= 0 {
		c.InitialKeys = 128
	}
	if c.KeySpace <= 0 {
		c.KeySpace = 2 * c.InitialKeys
	}
	return c
}

// TreeSetup builds and seeds the shared tree.
func TreeSetup(th tm.Thread, cfg TreeConfig) (rbtree.Tree, error) {
	cfg = cfg.withDefaults()
	var tree rbtree.Tree
	err := th.Run(func(tx tm.Tx) error {
		tree = rbtree.New(tx)
		for k := uint64(0); k < uint64(cfg.InitialKeys); k++ {
			tree.Put(tx, k*2, k)
		}
		return nil
	})
	return tree, err
}

// TreeOp performs one worker operation (30% put, 20% delete, 50% lookup).
func TreeOp(th tm.Thread, tree rbtree.Tree, cfg TreeConfig, rng *rand.Rand) error {
	cfg = cfg.withDefaults()
	k := uint64(rng.Intn(cfg.KeySpace))
	switch rng.Intn(10) {
	case 0, 1, 2:
		return th.Run(func(tx tm.Tx) error { tree.Put(tx, k, k); return nil })
	case 3, 4:
		return th.Run(func(tx tm.Tx) error { tree.Delete(tx, k); return nil })
	default:
		return th.RunReadOnly(func(tx tm.Tx) error { tree.Get(tx, k); return nil })
	}
}

// TreeCheck validates the red-black invariants in one transaction.
func TreeCheck(th tm.Thread, tree rbtree.Tree) error {
	return th.Run(func(tx tm.Tx) error { return tree.CheckInvariants(tx) })
}

type treeInstance struct {
	cfg  TreeConfig
	tree rbtree.Tree
}

func (t *treeInstance) Setup(th tm.Thread) error {
	tree, err := TreeSetup(th, t.cfg)
	t.tree = tree
	return err
}

func (t *treeInstance) NewWorker(th tm.Thread, seed int64, report Report) func() error {
	rng := rand.New(rand.NewSource(seed))
	return func() error { return TreeOp(th, t.tree, t.cfg, rng) }
}

func (t *treeInstance) Check(sys tm.System) error {
	th := sys.NewThread()
	defer th.Close()
	return TreeCheck(th, t.tree)
}

// rbtreeScenario is the structural-invariant workload over the
// transactional red-black tree. The explore-scale config is frozen by
// recorded trace fixtures.
var rbtreeScenario = Scenario{
	Name: "rbtree",
	Description: "concurrent put/delete/get traffic on a transactional " +
		"red-black tree preserves the structural invariants",
	Profile: Profile{
		Contention: "path conflicts near the root; rebalancing rotations touch shared interior nodes",
		Footprint:  "O(log n) nodes read per op, a handful written on rebalance",
		ReadShare:  0.50,
	},
	ExploreWorkers: 2,
	ExploreOps:     3,
	MemWords:       1 << 18,
	Traffic: &Traffic{
		ZipfSkew: 0.6, GetFrac: 0.50, ScanFrac: 0.10, TxnFrac: 0.20, TxnOps: 3, ScanCount: 16,
	},
	New: func(scale Scale) Instance {
		switch scale {
		case ScaleExplore:
			return &treeInstance{cfg: TreeConfig{InitialKeys: 8, KeySpace: 32}}
		case ScaleTest:
			return &treeInstance{cfg: TreeConfig{InitialKeys: 32, KeySpace: 64}}
		default:
			return &treeInstance{cfg: TreeConfig{}}
		}
	},
}
