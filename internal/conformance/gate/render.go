package gate

import (
	"fmt"
	"io"
	"strings"
)

// The renderers share one tabular shape: a row per cell with the measured
// value of each bound kind in a fixed column, "-" where the cell's SLO
// does not bound that kind. Text goes to the terminal and CI logs;
// markdown goes to GitHub job summaries ($GITHUB_STEP_SUMMARY).

var columnOrder = []string{
	"min_ops_per_sec", "min_baseline_ratio", "max_p99_ms", "max_abort_rate", "max_violations",
}

var columnHeader = map[string]string{
	"min_ops_per_sec":    "ops/s",
	"min_baseline_ratio": "ratio",
	"max_p99_ms":         "p99(ms)",
	"max_abort_rate":     "aborts",
	"max_violations":     "viol",
}

// cellValue renders one bound column for one cell: the measured value,
// marked with "!" when the check failed; "-" when the bound is absent.
func cellValue(cr *CellReport, name string) string {
	for _, ck := range cr.Checks {
		if ck.Name != name {
			continue
		}
		var v string
		switch name {
		case "min_ops_per_sec":
			v = fmt.Sprintf("%.3g", ck.Value)
		case "max_violations":
			v = fmt.Sprintf("%.0f", ck.Value)
		default:
			v = fmt.Sprintf("%.3f", ck.Value)
		}
		if ck.Detail != "" {
			v = "?"
		}
		if !ck.Pass {
			v += "!"
		}
		return v
	}
	// A failed "present" check (missing point) shows in the verdict; value
	// columns stay blank.
	return "-"
}

func cellVerdict(cr *CellReport) string {
	if cr.Pass {
		return "pass"
	}
	for _, ck := range cr.Checks {
		if !ck.Pass && ck.Name == "present" {
			return "MISSING"
		}
	}
	return "FAIL"
}

// WriteText renders the report as one aligned table, with failure details
// listed under it.
func WriteText(w io.Writer, rep *Report) {
	fmt.Fprintf(w, "%-16s %-26s %-22s %4s  %10s %8s %9s %8s %6s  %s\n",
		"gate", "cell", "algo", "t",
		columnHeader["min_ops_per_sec"], columnHeader["min_baseline_ratio"],
		columnHeader["max_p99_ms"], columnHeader["max_abort_rate"],
		columnHeader["max_violations"], "verdict")
	var details []string
	for gi := range rep.Gates {
		g := &rep.Gates[gi]
		if g.Error != "" {
			fmt.Fprintf(w, "%-16s %-26s %-22s %4s  %10s %8s %9s %8s %6s  %s\n",
				g.Name, "(gate error)", "", "", "-", "-", "-", "-", "-", "ERROR")
			details = append(details, fmt.Sprintf("%s: %s", g.Name, g.Error))
			continue
		}
		for ci := range g.Cells {
			cr := &g.Cells[ci]
			t := ""
			if cr.Threads > 0 {
				t = fmt.Sprintf("%d", cr.Threads)
			}
			fmt.Fprintf(w, "%-16s %-26s %-22s %4s  %10s %8s %9s %8s %6s  %s\n",
				g.Name, cr.Cell, cr.Algo, t,
				cellValue(cr, "min_ops_per_sec"), cellValue(cr, "min_baseline_ratio"),
				cellValue(cr, "max_p99_ms"), cellValue(cr, "max_abort_rate"),
				cellValue(cr, "max_violations"), cellVerdict(cr))
			for _, ck := range cr.Checks {
				if !ck.Pass {
					details = append(details, describeFailure(g.Name, cr, &ck))
				}
			}
		}
	}
	if len(details) > 0 {
		fmt.Fprintln(w, "\nfailures:")
		for _, d := range details {
			fmt.Fprintf(w, "  %s\n", d)
		}
	}
	if rep.Pass {
		fmt.Fprintln(w, "\nrhgate: all gates pass")
	} else {
		fmt.Fprintln(w, "\nrhgate: FAILED")
	}
}

// WriteMarkdown renders the report as a GitHub-flavored markdown table,
// the shape CI appends to $GITHUB_STEP_SUMMARY.
func WriteMarkdown(w io.Writer, rep *Report) {
	if rep.Pass {
		fmt.Fprintln(w, "## Conformance gate: ✅ pass")
	} else {
		fmt.Fprintln(w, "## Conformance gate: ❌ FAILED")
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "| gate | cell | algo | t | ops/s | ratio | p99(ms) | aborts | viol | verdict |")
	fmt.Fprintln(w, "|---|---|---|---|---|---|---|---|---|---|")
	var details []string
	for gi := range rep.Gates {
		g := &rep.Gates[gi]
		if g.Error != "" {
			fmt.Fprintf(w, "| %s | (gate error) | | | | | | | | ❌ |\n", g.Name)
			details = append(details, fmt.Sprintf("`%s`: %s", g.Name, g.Error))
			continue
		}
		for ci := range g.Cells {
			cr := &g.Cells[ci]
			verdict := "✅"
			if !cr.Pass {
				verdict = "❌"
			}
			t := ""
			if cr.Threads > 0 {
				t = fmt.Sprintf("%d", cr.Threads)
			}
			fmt.Fprintf(w, "| %s | %s | %s | %s | %s | %s | %s | %s | %s | %s |\n",
				g.Name, cr.Cell, cr.Algo, t,
				cellValue(cr, "min_ops_per_sec"), cellValue(cr, "min_baseline_ratio"),
				cellValue(cr, "max_p99_ms"), cellValue(cr, "max_abort_rate"),
				cellValue(cr, "max_violations"), verdict)
			for _, ck := range cr.Checks {
				if !ck.Pass {
					details = append(details, describeFailure(g.Name, cr, &ck))
				}
			}
		}
	}
	if len(details) > 0 {
		fmt.Fprintln(w, "\n**Failures:**")
		for _, d := range details {
			fmt.Fprintf(w, "- %s\n", d)
		}
	}
}

func describeFailure(gate string, cr *CellReport, ck *Check) string {
	loc := fmt.Sprintf("%s/%s", gate, cr.Cell)
	if cr.Algo != "" {
		loc += "/" + cr.Algo
	}
	if cr.Threads > 0 {
		loc += fmt.Sprintf("/t=%d", cr.Threads)
	}
	if ck.Detail != "" {
		return fmt.Sprintf("%s: %s: %s", loc, ck.Name, ck.Detail)
	}
	rel := "<"
	if strings.HasPrefix(ck.Name, "max_") {
		rel = ">"
	}
	return fmt.Sprintf("%s: %s: %.4g %s bound %.4g", loc, ck.Name, ck.Value, rel, ck.Bound)
}
