package gate

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"rhnorec/internal/bench"
)

// ReportSchemaVersion identifies the machine-readable verdict format
// cmd/rhgate emits with -json.
const ReportSchemaVersion = "rhgate.v1"

// Report is the evaluation of a whole spec: one verdict per gate per cell
// per bound.
type Report struct {
	// SchemaVersion is always ReportSchemaVersion ("rhgate.v1").
	SchemaVersion string `json:"schema_version"`
	// Pass is the conjunction of every gate verdict.
	Pass bool `json:"pass"`
	// Gates holds one entry per evaluated gate, in spec order.
	Gates []GateReport `json:"gates"`
}

// GateReport is one gate's verdict.
type GateReport struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	Pass bool   `json:"pass"`
	// Error is a gate-level failure (unbound or unreadable dump, bad
	// baseline): the gate fails with no cells.
	Error string `json:"error,omitempty"`
	// Cells holds one row per evaluated (selector match × point), sorted
	// by cell name, then algo, then threads.
	Cells []CellReport `json:"cells"`
}

// CellReport is one evaluated point's verdict: every bound that applied
// to it, with the measured value.
type CellReport struct {
	// Cell is the workload name (rhbench) or endpoint name (rhserve).
	Cell    string  `json:"cell"`
	Algo    string  `json:"algo,omitempty"`
	Threads int     `json:"threads,omitempty"`
	Pass    bool    `json:"pass"`
	Checks  []Check `json:"checks"`
}

// Check is one bound's verdict over one cell.
type Check struct {
	// Name is the SLO field the bound came from (min_ops_per_sec,
	// min_baseline_ratio, max_p99_ms, max_abort_rate, max_violations) or
	// "present" for a BaselineCells coverage check.
	Name string `json:"name"`
	// Value is the measured quantity; Bound the spec's limit.
	Value float64 `json:"value"`
	Bound float64 `json:"bound"`
	Pass  bool    `json:"pass"`
	// Detail explains a failure that is not a plain value-vs-bound miss
	// (missing point, missing obs snapshot, failed invariant check).
	Detail string `json:"detail,omitempty"`
}

// Inputs binds a spec to concrete files for one evaluation.
type Inputs struct {
	// SpecDir anchors the spec's relative baseline paths.
	SpecDir string
	// Dumps maps logical dump names (Gate.Dump) to file paths.
	Dumps map[string]string
	// Gates restricts evaluation to the named subset (nil = all).
	Gates []string
}

// Evaluate runs every (selected) gate of the spec and returns the verdict
// table. Evaluation itself never fails — a missing or unreadable dump
// fails its gate, not the call; the returned error covers only misuse
// (an unknown gate name in the subset filter).
func Evaluate(spec *Spec, in Inputs) (*Report, error) {
	selected := spec.Gates
	if len(in.Gates) > 0 {
		byName := make(map[string]*Gate, len(spec.Gates))
		for i := range spec.Gates {
			byName[spec.Gates[i].Name] = &spec.Gates[i]
		}
		selected = nil
		for _, name := range in.Gates {
			g, ok := byName[name]
			if !ok {
				return nil, fmt.Errorf("spec has no gate %q", name)
			}
			selected = append(selected, *g)
		}
	}
	rep := &Report{SchemaVersion: ReportSchemaVersion, Pass: true}
	for i := range selected {
		gr := evalGate(&selected[i], in)
		if !gr.Pass {
			rep.Pass = false
		}
		rep.Gates = append(rep.Gates, gr)
	}
	return rep, nil
}

func evalGate(g *Gate, in Inputs) GateReport {
	gr := GateReport{Name: g.Name, Kind: g.Kind, Cells: []CellReport{}}
	path, ok := in.Dumps[g.Dump]
	if !ok {
		gr.Error = fmt.Sprintf("dump %q not bound (rhgate -dump %s=PATH)", g.Dump, g.Dump)
		return gr
	}
	switch g.Kind {
	case "rhserve":
		evalServeGate(g, path, &gr)
	default:
		evalBenchGate(g, path, in.SpecDir, &gr)
	}
	gr.Pass = gr.Error == ""
	for i := range gr.Cells {
		if !gr.Cells[i].Pass {
			gr.Pass = false
		}
	}
	sort.SliceStable(gr.Cells, func(i, j int) bool {
		a, b := &gr.Cells[i], &gr.Cells[j]
		if a.Cell != b.Cell {
			return a.Cell < b.Cell
		}
		if a.Algo != b.Algo {
			return a.Algo < b.Algo
		}
		return a.Threads < b.Threads
	})
	return gr
}

func evalBenchGate(g *Gate, path, specDir string, gr *GateReport) {
	dump, err := bench.LoadDump(path)
	if err != nil {
		gr.Error = err.Error()
		return
	}
	// The baseline comparison, when configured, yields per-point
	// throughput ratios keyed like the dump's points.
	type key struct {
		w, a string
		t    int
	}
	ratios := map[key]bench.Delta{}
	if g.Baseline != "" {
		bp := g.Baseline
		if !filepath.IsAbs(bp) {
			bp = filepath.Join(specDir, bp)
		}
		baseline, err := bench.LoadDump(bp)
		if err != nil {
			gr.Error = fmt.Sprintf("baseline: %v", err)
			return
		}
		for _, d := range bench.Compare(baseline, dump, g.Normalize) {
			ratios[key{d.Workload, d.Algo, d.Threads}] = d
		}
	}
	if g.BaselineCells {
		// Every baseline point is a coverage + min-ratio cell, exactly the
		// historical `-compare` gate.
		floor := 1 - g.Tolerance
		for _, d := range ratios {
			cr := CellReport{Cell: d.Workload, Algo: d.Algo, Threads: d.Threads}
			if d.Missing {
				cr.Checks = append(cr.Checks, Check{
					Name: "present", Bound: 1,
					Detail: "baseline point missing from current run",
				})
			} else {
				cr.Checks = append(cr.Checks, Check{
					Name: "min_baseline_ratio", Value: d.Ratio, Bound: floor,
					Pass: d.Ratio >= floor,
				})
			}
			cr.Pass = allPass(cr.Checks)
			gr.Cells = append(gr.Cells, cr)
		}
	}
	for ci := range g.Cells {
		c := &g.Cells[ci]
		matched := false
		for pi := range dump.Points {
			p := &dump.Points[pi]
			if c.Workload != "" && p.Workload != c.Workload {
				continue
			}
			if c.Algo != "" && p.Algo != c.Algo {
				continue
			}
			if c.Threads != 0 && p.Threads != c.Threads {
				continue
			}
			matched = true
			cr := CellReport{Cell: p.Workload, Algo: p.Algo, Threads: p.Threads}
			cr.Checks = benchChecks(c, p, ratios[key{p.Workload, p.Algo, p.Threads}])
			cr.Pass = allPass(cr.Checks)
			gr.Cells = append(gr.Cells, cr)
		}
		if !matched {
			gr.Cells = append(gr.Cells, CellReport{
				Cell: selectorName(c), Algo: c.Algo, Threads: c.Threads,
				Checks: []Check{{
					Name: "present", Bound: 1,
					Detail: "no dump point matches this cell selector",
				}},
			})
		}
	}
}

func benchChecks(c *CellSpec, p *bench.JSONPoint, d bench.Delta) []Check {
	slo := &c.SLO
	var checks []Check
	if slo.MinOpsPerSec > 0 {
		checks = append(checks, Check{
			Name: "min_ops_per_sec", Value: p.OpsPerSec, Bound: slo.MinOpsPerSec,
			Pass: p.OpsPerSec >= slo.MinOpsPerSec,
		})
	}
	if slo.MinBaselineRatio > 0 {
		ck := Check{Name: "min_baseline_ratio", Value: d.Ratio, Bound: slo.MinBaselineRatio}
		switch {
		case d.Workload == "" || d.Missing:
			ck.Detail = "point has no baseline counterpart"
		default:
			ck.Pass = d.Ratio >= slo.MinBaselineRatio
		}
		checks = append(checks, ck)
	}
	if slo.MaxP99Ms > 0 {
		ck := Check{Name: "max_p99_ms", Bound: slo.MaxP99Ms}
		if p99, ok := attemptP99Ms(p); ok {
			ck.Value = p99
			ck.Pass = p99 <= slo.MaxP99Ms
		} else {
			ck.Detail = "point has no obs snapshot (rerun with -obs)"
		}
		checks = append(checks, ck)
	}
	if slo.MaxAbortRate != nil {
		var rate float64
		if p.TM != nil {
			rate = p.TM.AbortRate
		}
		checks = append(checks, Check{
			Name: "max_abort_rate", Value: rate, Bound: *slo.MaxAbortRate,
			Pass: rate <= *slo.MaxAbortRate,
		})
	}
	if slo.MaxViolations != nil {
		ck := Check{Name: "max_violations", Bound: float64(*slo.MaxViolations)}
		switch {
		case p.Violations == nil:
			ck.Detail = "workload carries no invariant oracle"
		case p.CheckError != "":
			ck.Value = float64(*p.Violations)
			ck.Detail = "invariant check failed: " + p.CheckError
		default:
			ck.Value = float64(*p.Violations)
			ck.Pass = *p.Violations <= *slo.MaxViolations
		}
		checks = append(checks, ck)
	}
	return checks
}

// attemptP99Ms extracts the whole-transaction p99 from the point's obs
// snapshot (the "attempt" phase spans one transaction attempt end to end).
func attemptP99Ms(p *bench.JSONPoint) (float64, bool) {
	if p.Obs == nil {
		return 0, false
	}
	for _, ph := range p.Obs.Phases {
		if ph.Phase == "attempt" {
			return float64(ph.P99NS) / 1e6, true
		}
	}
	return 0, false
}

func evalServeGate(g *Gate, path string, gr *GateReport) {
	data, err := os.ReadFile(path)
	if err != nil {
		gr.Error = err.Error()
		return
	}
	dump, err := bench.ParseServeDump(data)
	if err != nil {
		gr.Error = err.Error()
		return
	}
	for ci := range g.Cells {
		c := &g.Cells[ci]
		if c.Algo != "" && c.Algo != dump.Algo {
			gr.Cells = append(gr.Cells, CellReport{
				Cell: selectorName(c), Algo: c.Algo,
				Checks: []Check{{
					Name: "present", Bound: 1,
					Detail: fmt.Sprintf("server runs algo %q", dump.Algo),
				}},
			})
			continue
		}
		matched := false
		for ei := range dump.Endpoints {
			ep := &dump.Endpoints[ei]
			if c.Workload != "" && ep.Endpoint != c.Workload {
				continue
			}
			matched = true
			cr := CellReport{Cell: ep.Endpoint, Algo: dump.Algo}
			slo := &c.SLO
			if slo.MinOpsPerSec > 0 {
				rate := float64(ep.Requests) / dump.UptimeSec
				cr.Checks = append(cr.Checks, Check{
					Name: "min_ops_per_sec", Value: rate, Bound: slo.MinOpsPerSec,
					Pass: rate >= slo.MinOpsPerSec,
				})
			}
			if slo.MaxP99Ms > 0 {
				p99 := float64(ep.Latency.P99NS) / 1e6
				cr.Checks = append(cr.Checks, Check{
					Name: "max_p99_ms", Value: p99, Bound: slo.MaxP99Ms,
					Pass: p99 <= slo.MaxP99Ms,
				})
			}
			if slo.MaxAbortRate != nil {
				cr.Checks = append(cr.Checks, Check{
					Name: "max_abort_rate", Value: dump.TM.AbortRate, Bound: *slo.MaxAbortRate,
					Pass: dump.TM.AbortRate <= *slo.MaxAbortRate,
				})
			}
			cr.Pass = allPass(cr.Checks)
			gr.Cells = append(gr.Cells, cr)
		}
		if !matched {
			gr.Cells = append(gr.Cells, CellReport{
				Cell: selectorName(c), Algo: dump.Algo,
				Checks: []Check{{
					Name: "present", Bound: 1,
					Detail: "no endpoint row matches this cell selector",
				}},
			})
		}
	}
}

func selectorName(c *CellSpec) string {
	if c.Workload != "" {
		return c.Workload
	}
	return "(any)"
}

func allPass(checks []Check) bool {
	for _, ck := range checks {
		if !ck.Pass {
			return false
		}
	}
	return len(checks) > 0
}
