// Package gate evaluates SLO specifications over benchmark and service
// dumps: the conformance matrix's pass/fail layer. A spec (rhgate-spec.v1)
// declares named gates, each binding a logical dump (an rhbench.v2 file
// from rhbench/rhload or an rhserve.v1 file from the KV service) to a set
// of cells — (workload × algo × threads) selectors carrying SLO bounds:
// throughput floors, baseline-ratio floors, p99 latency ceilings,
// abort-rate budgets, and invariant-violation budgets. Evaluate renders
// one verdict per cell; cmd/rhgate turns the report into text, markdown
// (for CI job summaries) and machine-readable rhgate.v1 JSON, exiting
// non-zero on any red cell. CI routes its perf thresholds through specs in
// gates/ so the bounds live in one reviewed file instead of inline shell.
package gate

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// SpecSchemaVersion identifies the gate-spec format. Same versioning
// contract as the dump schemas (docs/METRICS.md): additive optional
// fields do not bump the version.
const SpecSchemaVersion = "rhgate-spec.v1"

// Spec is a versioned collection of gates, typically one file per CI
// pipeline (gates/ci.json).
type Spec struct {
	// SchemaVersion is always SpecSchemaVersion ("rhgate-spec.v1").
	SchemaVersion string `json:"schema_version"`
	// Gates are evaluated independently; the report fails if any does.
	Gates []Gate `json:"gates"`
}

// Gate binds one dump to a set of SLO cells.
type Gate struct {
	// Name identifies the gate in reports and in cmd/rhgate's -gates
	// subset filter.
	Name string `json:"name"`
	// Description explains what regression this gate catches.
	Description string `json:"description,omitempty"`
	// Dump is the logical dump name, bound to a file at evaluation time
	// (cmd/rhgate -dump name=path). Several gates may share one dump.
	Dump string `json:"dump"`
	// Kind selects the dump schema: "rhbench" (rhbench.v2, from rhbench
	// -json or rhload -json) or "rhserve" (rhserve.v1, the service's
	// /metrics snapshot).
	Kind string `json:"kind"`
	// Baseline is a checked-in rhbench.v2 dump to compare against,
	// resolved relative to the spec file. Required by BaselineCells and
	// by any cell with a MinBaselineRatio bound. rhbench gates only.
	Baseline string `json:"baseline,omitempty"`
	// Normalize divides each dump by its own median throughput before
	// the baseline comparison (machine-speed independence; see
	// bench.Compare).
	Normalize bool `json:"normalize,omitempty"`
	// Tolerance is the allowed fractional throughput drop for
	// BaselineCells (a cell fails below ratio 1-Tolerance).
	Tolerance float64 `json:"tolerance,omitempty"`
	// BaselineCells derives one min-ratio cell from every baseline
	// point; a baseline point missing from the current dump is a
	// coverage regression and fails. This replicates the historical
	// `rhbench -compare` / `rhload -compare` gate as spec cells.
	BaselineCells bool `json:"baseline_cells,omitempty"`
	// Cells are the explicit SLO selectors, evaluated in addition to any
	// BaselineCells-derived ones.
	Cells []CellSpec `json:"cells,omitempty"`
}

// CellSpec selects dump points and bounds them. An empty selector field
// matches everything, so one cell can bound a whole dump (e.g. a
// zero-violations budget over every scenario × algo × thread count).
type CellSpec struct {
	// Workload selects rhbench points by workload name, or rhserve
	// endpoint rows by endpoint name ("" = every one in the dump).
	Workload string `json:"workload,omitempty"`
	// Algo selects rhbench points (or the rhserve dump) by algorithm
	// name ("" = any).
	Algo string `json:"algo,omitempty"`
	// Threads selects rhbench points by thread count (0 = all).
	Threads int `json:"threads,omitempty"`
	// SLO holds the bounds every selected point must satisfy.
	SLO SLO `json:"slo"`
}

// SLO is the per-cell bound set. Zero-valued (or nil) bounds are not
// checked, so a cell enforces only what it declares.
type SLO struct {
	// MinOpsPerSec is an absolute throughput floor (rhbench: the point's
	// ops_per_sec; rhserve: the endpoint's requests/uptime).
	MinOpsPerSec float64 `json:"min_ops_per_sec,omitempty"`
	// MinBaselineRatio is a floor on current/baseline throughput for the
	// matching baseline point (requires Gate.Baseline; rhbench only).
	MinBaselineRatio float64 `json:"min_baseline_ratio,omitempty"`
	// MaxP99Ms is a ceiling on the p99 latency in milliseconds
	// (rhbench: the obs "attempt" phase — the whole transaction, so the
	// dump must have been made with -obs; rhserve: the endpoint's
	// service latency, which includes queueing).
	MaxP99Ms float64 `json:"max_p99_ms,omitempty"`
	// MaxAbortRate is a ceiling on the HTM abort rate,
	// aborts/(aborts+commits); pointer so a zero budget is expressible.
	MaxAbortRate *float64 `json:"max_abort_rate,omitempty"`
	// MaxViolations is a ceiling on the invariant-violation count;
	// pointer so the usual zero budget is expressible. Only
	// oracle-carrying workloads (the conformance scenarios) report the
	// count — bounding a workload without one fails the cell.
	MaxViolations *uint64 `json:"max_violations,omitempty"`
}

// LoadSpec reads and validates a gate spec.
func LoadSpec(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseSpec(data)
}

// ParseSpec decodes and validates a gate spec. Unknown fields are
// rejected so the Go structs stay the schema's single source of truth.
func ParseSpec(data []byte) (*Spec, error) {
	var s Spec
	if err := strictUnmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("spec does not parse as %s: %w", SpecSchemaVersion, err)
	}
	if s.SchemaVersion != SpecSchemaVersion {
		return nil, fmt.Errorf("spec schema_version = %q, want %q", s.SchemaVersion, SpecSchemaVersion)
	}
	if len(s.Gates) == 0 {
		return nil, fmt.Errorf("spec has no gates")
	}
	seen := map[string]bool{}
	for i := range s.Gates {
		g := &s.Gates[i]
		if err := validateGate(g); err != nil {
			return nil, fmt.Errorf("gate %d (%s): %w", i, g.Name, err)
		}
		if seen[g.Name] {
			return nil, fmt.Errorf("duplicate gate name %q", g.Name)
		}
		seen[g.Name] = true
	}
	return &s, nil
}

func validateGate(g *Gate) error {
	if g.Name == "" {
		return fmt.Errorf("empty name")
	}
	if g.Dump == "" {
		return fmt.Errorf("empty dump binding")
	}
	if g.Kind != "rhbench" && g.Kind != "rhserve" {
		return fmt.Errorf("kind = %q, want rhbench or rhserve", g.Kind)
	}
	if !g.BaselineCells && len(g.Cells) == 0 {
		return fmt.Errorf("no cells and baseline_cells unset: nothing to check")
	}
	if g.BaselineCells && g.Baseline == "" {
		return fmt.Errorf("baseline_cells requires a baseline")
	}
	if g.Kind == "rhserve" && g.Baseline != "" {
		return fmt.Errorf("rhserve gates have no baseline comparison")
	}
	if g.Tolerance < 0 || g.Tolerance >= 1 {
		return fmt.Errorf("tolerance = %g, want in [0,1)", g.Tolerance)
	}
	for i := range g.Cells {
		c := &g.Cells[i]
		slo := &c.SLO
		if slo.MinOpsPerSec == 0 && slo.MinBaselineRatio == 0 && slo.MaxP99Ms == 0 &&
			slo.MaxAbortRate == nil && slo.MaxViolations == nil {
			return fmt.Errorf("cell %d: empty SLO (nothing to check)", i)
		}
		if slo.MinBaselineRatio > 0 && g.Baseline == "" {
			return fmt.Errorf("cell %d: min_baseline_ratio requires a gate baseline", i)
		}
		if r := slo.MaxAbortRate; r != nil && (*r < 0 || *r > 1) {
			return fmt.Errorf("cell %d: max_abort_rate = %g, want in [0,1]", i, *r)
		}
		if g.Kind == "rhserve" {
			if slo.MinBaselineRatio > 0 || slo.MaxViolations != nil {
				return fmt.Errorf("cell %d: baseline/violation bounds do not apply to rhserve dumps", i)
			}
			if c.Threads != 0 {
				return fmt.Errorf("cell %d: rhserve rows carry no thread count", i)
			}
		}
	}
	return nil
}

func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}
