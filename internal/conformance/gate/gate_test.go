package gate

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// specJSON wraps one gate in a valid spec envelope.
func specJSON(gateBody string) []byte {
	return []byte(`{"schema_version":"rhgate-spec.v1","gates":[` + gateBody + `]}`)
}

func TestParseSpecRejections(t *testing.T) {
	cases := []struct {
		name string
		data string
		want string
	}{
		{"bad-version", `{"schema_version":"rhgate-spec.v2","gates":[]}`, "schema_version"},
		{"no-gates", `{"schema_version":"rhgate-spec.v1","gates":[]}`, "no gates"},
		{"unknown-field", `{"schema_version":"rhgate-spec.v1","gates":[],"extra":1}`, "does not parse"},
		{"empty-name", string(specJSON(`{"name":"","dump":"d","kind":"rhbench","cells":[{"slo":{"min_ops_per_sec":1}}]}`)), "empty name"},
		{"bad-kind", string(specJSON(`{"name":"g","dump":"d","kind":"csv","cells":[{"slo":{"min_ops_per_sec":1}}]}`)), "kind"},
		{"nothing-to-check", string(specJSON(`{"name":"g","dump":"d","kind":"rhbench"}`)), "nothing to check"},
		{"empty-slo", string(specJSON(`{"name":"g","dump":"d","kind":"rhbench","cells":[{"workload":"w","slo":{}}]}`)), "empty SLO"},
		{"baseline-cells-sans-baseline", string(specJSON(`{"name":"g","dump":"d","kind":"rhbench","baseline_cells":true}`)), "requires a baseline"},
		{"ratio-sans-baseline", string(specJSON(`{"name":"g","dump":"d","kind":"rhbench","cells":[{"slo":{"min_baseline_ratio":0.5}}]}`)), "requires a gate baseline"},
		{"serve-with-baseline", string(specJSON(`{"name":"g","dump":"d","kind":"rhserve","baseline":"b.json","cells":[{"slo":{"max_p99_ms":1}}]}`)), "no baseline comparison"},
		{"serve-with-violations", string(specJSON(`{"name":"g","dump":"d","kind":"rhserve","cells":[{"slo":{"max_violations":0}}]}`)), "do not apply"},
		{"bad-abort-rate", string(specJSON(`{"name":"g","dump":"d","kind":"rhbench","cells":[{"slo":{"max_abort_rate":1.5}}]}`)), "max_abort_rate"},
		{"dup-gate", `{"schema_version":"rhgate-spec.v1","gates":[
			{"name":"g","dump":"d","kind":"rhbench","cells":[{"slo":{"min_ops_per_sec":1}}]},
			{"name":"g","dump":"d","kind":"rhbench","cells":[{"slo":{"min_ops_per_sec":1}}]}]}`, "duplicate gate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSpec([]byte(tc.data))
			if err == nil {
				t.Fatal("parsed, want error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// benchDump writes a small rhbench.v2 dump and returns its path.
func benchDump(t *testing.T, points string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "dump.json")
	data := `{"schema_version":"rhbench.v2","points":[` + points + `]}`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const passingPoint = `{"workload":"bank","algo":"rh-norec","threads":4,"ops":1000,
	"elapsed_sec":1,"ops_per_sec":50000,
	"tm":{"commits":1000,"read_only_commits":100,"htm_aborts":100,"stm_restarts":0,
		"fallbacks":5,"abort_rate":0.0909},
	"violations":0}`

func eval(t *testing.T, spec []byte, dumps map[string]string) *Report {
	t.Helper()
	s, err := ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Evaluate(s, Inputs{Dumps: dumps})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestEvaluateBenchVerdicts(t *testing.T) {
	dump := benchDump(t, passingPoint)
	spec := specJSON(`{"name":"g","dump":"d","kind":"rhbench","cells":[
		{"workload":"bank","slo":{"min_ops_per_sec":1000,"max_abort_rate":0.5,"max_violations":0}}]}`)
	rep := eval(t, spec, map[string]string{"d": dump})
	if !rep.Pass {
		t.Fatalf("report failed: %+v", rep.Gates)
	}
	cells := rep.Gates[0].Cells
	if len(cells) != 1 || len(cells[0].Checks) != 3 {
		t.Fatalf("want 1 cell with 3 checks, got %+v", cells)
	}

	// Now a floor the point misses.
	spec = specJSON(`{"name":"g","dump":"d","kind":"rhbench","cells":[
		{"workload":"bank","slo":{"min_ops_per_sec":1e9}}]}`)
	rep = eval(t, spec, map[string]string{"d": dump})
	if rep.Pass {
		t.Fatal("impossible floor passed")
	}

	// A violation budget over budget.
	viol := strings.Replace(passingPoint, `"violations":0`, `"violations":3`, 1)
	spec = specJSON(`{"name":"g","dump":"d","kind":"rhbench","cells":[
		{"workload":"bank","slo":{"max_violations":0}}]}`)
	rep = eval(t, spec, map[string]string{"d": benchDump(t, viol)})
	if rep.Pass {
		t.Fatal("3 violations passed a zero budget")
	}

	// A violation bound over a workload with no oracle must fail loudly.
	noOracle := strings.Replace(passingPoint, `,
	"violations":0`, "", 1)
	rep = eval(t, spec, map[string]string{"d": benchDump(t, noOracle)})
	if rep.Pass {
		t.Fatal("violation bound passed on an oracle-less workload")
	}

	// A selector matching nothing is a red cell, not a silent skip.
	spec = specJSON(`{"name":"g","dump":"d","kind":"rhbench","cells":[
		{"workload":"no-such","slo":{"min_ops_per_sec":1}}]}`)
	rep = eval(t, spec, map[string]string{"d": dump})
	if rep.Pass {
		t.Fatal("unmatched selector passed")
	}

	// An unbound dump is a gate error.
	rep = eval(t, spec, map[string]string{})
	if rep.Pass || rep.Gates[0].Error == "" {
		t.Fatalf("unbound dump did not error the gate: %+v", rep.Gates[0])
	}
}

func TestEvaluateBaselineCells(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "baseline.json")
	two := `{"workload":"bank","algo":"rh-norec","threads":1,"ops":10,"elapsed_sec":1,"ops_per_sec":1000},
		{"workload":"bank","algo":"rh-norec","threads":4,"ops":10,"elapsed_sec":1,"ops_per_sec":2000}`
	if err := os.WriteFile(baseline,
		[]byte(`{"schema_version":"rhbench.v2","points":[`+two+`]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	// Current run drops the 4-thread point: a coverage regression.
	current := benchDump(t, `{"workload":"bank","algo":"rh-norec","threads":1,"ops":10,"elapsed_sec":1,"ops_per_sec":999}`)
	spec := specJSON(`{"name":"g","dump":"d","kind":"rhbench",
		"baseline":"baseline.json","tolerance":0.25,"baseline_cells":true}`)
	s, err := ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Evaluate(s, Inputs{SpecDir: dir, Dumps: map[string]string{"d": current}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Fatal("missing baseline point passed")
	}
	var sawMissing, sawRatio bool
	for _, c := range rep.Gates[0].Cells {
		for _, ck := range c.Checks {
			switch ck.Name {
			case "present":
				sawMissing = true
				if ck.Pass {
					t.Error("missing point marked pass")
				}
			case "min_baseline_ratio":
				sawRatio = true
				if !ck.Pass {
					t.Errorf("0.999 ratio failed a 0.75 floor: %+v", ck)
				}
			}
		}
	}
	if !sawMissing || !sawRatio {
		t.Fatalf("want one missing cell and one ratio cell, got %+v", rep.Gates[0].Cells)
	}
}

const serveDump = `{"schema_version":"rhserve.v1","algo":"rh-norec","workers":2,"keys":64,
	"uptime_sec":2.0,
	"endpoints":[{"endpoint":"get","requests":1000,"errors":0,"shed":0,"fused":0,
		"latency":{"count":1000,"sum_ns":2000000000,"max_ns":9000000,"p50_ns":500,
			"p90_ns":900,"p99_ns":2000000,"p999_ns":5000000}}],
	"admission":{"queue_shed":0,"saturation_shed":0,"deadline_shed":0},
	"tm":{"commits":1000,"fast_path_commits":900,"slow_path_commits":80,"serial_commits":20,
		"fallbacks":10,"htm_aborts":100,"stm_restarts":2,"abort_rate":0.0909}}`

func TestEvaluateServe(t *testing.T) {
	path := filepath.Join(t.TempDir(), "serve.json")
	if err := os.WriteFile(path, []byte(serveDump), 0o644); err != nil {
		t.Fatal(err)
	}
	// p99 is 2ms, abort rate 0.09, get throughput 500/s.
	spec := specJSON(`{"name":"slo","dump":"d","kind":"rhserve","cells":[
		{"workload":"get","slo":{"min_ops_per_sec":100,"max_p99_ms":10,"max_abort_rate":0.5}}]}`)
	rep := eval(t, spec, map[string]string{"d": path})
	if !rep.Pass {
		t.Fatalf("serve SLOs failed: %+v", rep.Gates[0].Cells)
	}
	spec = specJSON(`{"name":"slo","dump":"d","kind":"rhserve","cells":[
		{"workload":"get","slo":{"max_p99_ms":1}}]}`)
	if rep = eval(t, spec, map[string]string{"d": path}); rep.Pass {
		t.Fatal("2ms p99 passed a 1ms ceiling")
	}
	// Algo mismatch is a red cell.
	spec = specJSON(`{"name":"slo","dump":"d","kind":"rhserve","cells":[
		{"workload":"get","algo":"tl2","slo":{"max_p99_ms":10}}]}`)
	if rep = eval(t, spec, map[string]string{"d": path}); rep.Pass {
		t.Fatal("algo mismatch passed")
	}
}

func TestRenderers(t *testing.T) {
	dump := benchDump(t, passingPoint)
	spec := specJSON(`{"name":"g","dump":"d","kind":"rhbench","cells":[
		{"workload":"bank","slo":{"min_ops_per_sec":1e9,"max_violations":0}}]}`)
	rep := eval(t, spec, map[string]string{"d": dump})

	var text bytes.Buffer
	WriteText(&text, rep)
	for _, want := range []string{"bank", "rh-norec", "FAIL", "failures:", "min_ops_per_sec"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text output missing %q:\n%s", want, text.String())
		}
	}

	var md bytes.Buffer
	WriteMarkdown(&md, rep)
	for _, want := range []string{"| gate |", "| g | bank | rh-norec |", "❌", "**Failures:**"} {
		if !strings.Contains(md.String(), want) {
			t.Errorf("markdown output missing %q:\n%s", want, md.String())
		}
	}

	// The machine-readable report round-trips.
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.SchemaVersion != ReportSchemaVersion || back.Pass {
		t.Errorf("round-trip mangled the report: %+v", back)
	}
}

// TestCheckedInSpec parses the repo's CI spec, so a bad edit to
// gates/ci.json fails in tests before it fails in CI.
func TestCheckedInSpec(t *testing.T) {
	spec, err := LoadSpec(filepath.Join("..", "..", "..", "gates", "ci.json"))
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, g := range spec.Gates {
		names[g.Name] = true
	}
	for _, want := range []string{"bench-regress", "signature-gate", "serve-http",
		"serve-pipeline", "serve-slo", "persist", "conformance"} {
		if !names[want] {
			t.Errorf("gates/ci.json is missing gate %q", want)
		}
	}
}
