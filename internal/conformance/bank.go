package conformance

import (
	"fmt"
	"math/rand"

	"rhnorec/internal/mem"
	"rhnorec/internal/tm"
)

// BankConfig parameterizes the bank-transfer workload: transfers between
// random accounts must preserve the total balance, and (optionally)
// read-only observers assert the in-transaction invariant — the opacity
// check every TM in this repository claims to satisfy.
type BankConfig struct {
	// Accounts is the number of accounts (each on its own cache line).
	Accounts int
	// Initial is every account's starting balance.
	Initial uint64
	// TransferMax bounds a single transfer amount (exclusive).
	TransferMax int
	// ObserverEvery, when > 0, makes roughly 1/ObserverEvery of the
	// operations run a read-only full-sum observer instead of a transfer.
	// Zero disables observers (and draws no dice for them, so the transfer
	// RNG sequence matches the observer-free workload exactly).
	ObserverEvery int
}

func (c BankConfig) withDefaults() BankConfig {
	if c.Accounts <= 0 {
		c.Accounts = 32
	}
	if c.Initial == 0 {
		c.Initial = 1000
	}
	if c.TransferMax <= 0 {
		c.TransferMax = 50
	}
	return c
}

// BankAccount returns account i's address given the base BankSetup returned.
func BankAccount(base mem.Addr, i int) mem.Addr {
	return base + mem.Addr(i*mem.LineWords)
}

// BankSetup allocates and funds the accounts, one per cache line.
func BankSetup(th tm.Thread, cfg BankConfig) (mem.Addr, error) {
	cfg = cfg.withDefaults()
	var base mem.Addr
	err := th.Run(func(tx tm.Tx) error {
		base = tx.Alloc(cfg.Accounts * mem.LineWords)
		for i := 0; i < cfg.Accounts; i++ {
			tx.Store(BankAccount(base, i), cfg.Initial)
		}
		return nil
	})
	return base, err
}

// BankOp performs one worker operation: a random transfer, or — on a
// 1/ObserverEvery draw — a read-only full-sum observer. Observer
// transactions report invariant violations through report (which must be
// non-nil when cfg.ObserverEvery > 0); violations inside attempts that
// later restart count too — opacity promises a consistent snapshot to live
// transactions, not just committed ones.
func BankOp(th tm.Thread, cfg BankConfig, base mem.Addr, rng *rand.Rand, report Report) error {
	cfg = cfg.withDefaults()
	if cfg.ObserverEvery > 0 && rng.Intn(cfg.ObserverEvery) == 0 {
		want := uint64(cfg.Accounts) * cfg.Initial
		return th.RunReadOnly(func(tx tm.Tx) error {
			var sum uint64
			for k := 0; k < cfg.Accounts; k++ {
				sum += tx.Load(BankAccount(base, k))
			}
			if sum != want {
				report(fmt.Sprintf("bank observer: sum %d, want %d", sum, want))
			}
			return nil
		})
	}
	from, to := rng.Intn(cfg.Accounts), rng.Intn(cfg.Accounts)
	amt := uint64(rng.Intn(cfg.TransferMax))
	return th.Run(func(tx tm.Tx) error {
		bf := tx.Load(BankAccount(base, from))
		bt := tx.Load(BankAccount(base, to))
		if bf < amt {
			return nil // insufficient funds; still commits (no-op)
		}
		if from == to {
			return nil
		}
		tx.Store(BankAccount(base, from), bf-amt)
		tx.Store(BankAccount(base, to), bt+amt)
		return nil
	})
}

// BankCheck verifies the conserved total over a tear-free snapshot.
func BankCheck(m *mem.Memory, cfg BankConfig, base mem.Addr) error {
	cfg = cfg.withDefaults()
	snap := make([]uint64, cfg.Accounts*mem.LineWords)
	m.Snapshot(base, snap)
	var total uint64
	for i := 0; i < cfg.Accounts; i++ {
		total += snap[i*mem.LineWords]
	}
	if want := uint64(cfg.Accounts) * cfg.Initial; total != want {
		return fmt.Errorf("bank: total balance %d, want %d", total, want)
	}
	return nil
}

type bankInstance struct {
	cfg  BankConfig
	base mem.Addr
}

func (b *bankInstance) Setup(th tm.Thread) error {
	base, err := BankSetup(th, b.cfg)
	b.base = base
	return err
}

func (b *bankInstance) NewWorker(th tm.Thread, seed int64, report Report) func() error {
	rng := rand.New(rand.NewSource(seed))
	return func() error { return BankOp(th, b.cfg, b.base, rng, report) }
}

func (b *bankInstance) Check(sys tm.System) error {
	return BankCheck(sys.Memory(), b.cfg, b.base)
}

// bankScenario is the original conserved-total workload. The explore-scale
// config is frozen by recorded trace fixtures; the soak-scale config is the
// historical rhstress shape.
var bankScenario = Scenario{
	Name: "bank",
	Description: "random transfers between line-aligned accounts preserve the " +
		"total balance; read-only observers assert the sum in-transaction",
	Profile: Profile{
		Contention: "uniform pairwise write conflicts over a small account set; observers read every account",
		Footprint:  "2 lines read+written per transfer; full-set read-only observer scans",
		ReadShare:  0.25,
	},
	ExploreWorkers: 3,
	ExploreOps:     4,
	Traffic: &Traffic{
		ZipfSkew: 0.99, GetFrac: 0.20, CasFrac: 0.05, TxnFrac: 0.70, TxnOps: 4,
	},
	New: func(scale Scale) Instance {
		switch scale {
		case ScaleExplore:
			return &bankInstance{cfg: BankConfig{Accounts: 4, Initial: 100, TransferMax: 10, ObserverEvery: 3}}
		case ScaleSoak:
			return &bankInstance{cfg: BankConfig{Accounts: 64, TransferMax: 20, ObserverEvery: 4}}
		default:
			return &bankInstance{cfg: BankConfig{ObserverEvery: 4}}
		}
	},
}
