package conformance

import (
	"fmt"
	"math/rand"

	"rhnorec/internal/mem"
	"rhnorec/internal/tm"
)

// GraphConfig parameterizes the graph fan-out workload: a static directed
// graph where a "post" on node u increments u's post counter and pushes
// into every out-neighbor's feed counter in one transaction. Node 0 is in
// almost every adjacency list, so its feed line is a deliberate hub
// hotspot. The invariant — every feed equals the sum of its in-neighbors'
// posts — is checked by read-only auditors in-transaction and over a
// snapshot at the end.
type GraphConfig struct {
	// Nodes is the vertex count (one cache line each).
	Nodes int
}

func (c GraphConfig) withDefaults() GraphConfig {
	if c.Nodes <= 0 {
		c.Nodes = 16
	}
	return c
}

// Node line layout: word 0 posts, 1 feed.
type graphInstance struct {
	cfg  GraphConfig
	base mem.Addr
	out  [][]int // static adjacency, built once at setup
	in   [][]int // inverse adjacency, for the audit
}

func (s *graphInstance) node(v int) mem.Addr {
	return s.base + mem.Addr(v*mem.LineWords)
}

func (s *graphInstance) Setup(th tm.Thread) error {
	cfg := s.cfg.withDefaults()
	s.cfg = cfg
	n := cfg.Nodes
	s.out = make([][]int, n)
	s.in = make([][]int, n)
	for u := 0; u < n; u++ {
		// Hub + ring + stride, deduplicated, self-loops dropped: node 0
		// collects an in-edge from nearly everyone.
		for _, v := range []int{0, (u + 1) % n, (u*5 + 2) % n} {
			if v == u {
				continue
			}
			dup := false
			for _, w := range s.out[u] {
				if w == v {
					dup = true
					break
				}
			}
			if !dup {
				s.out[u] = append(s.out[u], v)
			}
		}
		for _, v := range s.out[u] {
			s.in[v] = append(s.in[v], u)
		}
	}
	return th.Run(func(tx tm.Tx) error {
		s.base = tx.Alloc(n * mem.LineWords)
		return nil // zero state: no posts, empty feeds
	})
}

func (s *graphInstance) NewWorker(th tm.Thread, seed int64, report Report) func() error {
	rng := rand.New(rand.NewSource(seed))
	return func() error { return s.op(th, rng, report) }
}

// op draws one operation: 1/4 a read-only feed audit on a random node,
// 3/4 a post fan-out from a random node.
func (s *graphInstance) op(th tm.Thread, rng *rand.Rand, report Report) error {
	if rng.Intn(4) == 0 {
		v := rng.Intn(s.cfg.Nodes)
		return th.RunReadOnly(func(tx tm.Tx) error {
			var want uint64
			for _, u := range s.in[v] {
				want += tx.Load(s.node(u))
			}
			if got := tx.Load(s.node(v) + 1); got != want {
				report(fmt.Sprintf("graph audit: node %d feed %d, in-neighbor posts total %d", v, got, want))
			}
			return nil
		})
	}
	u := rng.Intn(s.cfg.Nodes)
	return th.Run(func(tx tm.Tx) error {
		a := s.node(u)
		tx.Store(a, tx.Load(a)+1)
		for _, v := range s.out[u] {
			f := s.node(v) + 1
			tx.Store(f, tx.Load(f)+1)
		}
		return nil
	})
}

func (s *graphInstance) Check(sys tm.System) error {
	cfg := s.cfg
	snap := make([]uint64, cfg.Nodes*mem.LineWords)
	sys.Memory().Snapshot(s.base, snap)
	for v := 0; v < cfg.Nodes; v++ {
		var want uint64
		for _, u := range s.in[v] {
			want += snap[u*mem.LineWords]
		}
		if got := snap[v*mem.LineWords+1]; got != want {
			return fmt.Errorf("graph: node %d feed %d, in-neighbor posts total %d", v, got, want)
		}
	}
	return nil
}

// graphScenario models a social fan-out-on-write path: every post is a
// multi-line transaction whose write set converges on the hub's feed line.
var graphScenario = Scenario{
	Name: "graph",
	Description: "graph fan-out: a post increments the author's counter and every " +
		"follower feed in one transaction; feed == sum of in-neighbor posts",
	Profile: Profile{
		Contention: "all posts' write sets converge on the hub node's feed line; " +
			"audits read the hub's full in-neighborhood",
		Footprint: "1 + out-degree lines written per post; in-degree lines read per audit",
		ReadShare: 0.25,
	},
	ExploreWorkers: 3,
	ExploreOps:     3,
	Traffic: &Traffic{
		ZipfSkew: 0.99, GetFrac: 0.25, TxnFrac: 0.70, TxnOps: 4,
	},
	New: func(scale Scale) Instance {
		switch scale {
		case ScaleExplore:
			return &graphInstance{cfg: GraphConfig{Nodes: 4}}
		case ScaleSoak:
			return &graphInstance{cfg: GraphConfig{Nodes: 64}}
		default:
			return &graphInstance{cfg: GraphConfig{}}
		}
	},
}
