package obs

import (
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11}, {1 << 62, 63}, {^uint64(0), 64},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	for i := 1; i < histBuckets; i++ {
		lo, hi := BucketLow(i), bucketHigh(i)
		if bucketOf(lo) != i || bucketOf(hi) != i {
			t.Errorf("bucket %d bounds [%d,%d] land in buckets %d,%d", i, lo, hi, bucketOf(lo), bucketOf(hi))
		}
	}
}

func TestHistogramRecordAndQuantile(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Count() != 0 {
		t.Fatal("empty histogram not zero")
	}
	for v := uint64(1); v <= 1000; v++ {
		h.Record(v)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 1000*1001/2 {
		t.Fatalf("sum = %d", h.Sum())
	}
	if h.Max() != 1000 {
		t.Fatalf("max = %d", h.Max())
	}
	// p50 of uniform 1..1000 is ~500; the bucket estimate must land within
	// the holding bucket [512,1023] midpoint-capped range — i.e. within a
	// factor of 2 of the true value.
	p50 := h.Quantile(0.5)
	if p50 < 256 || p50 > 1000 {
		t.Errorf("p50 = %d, want within [256,1000]", p50)
	}
	if q := h.Quantile(1.0); q > h.Max() {
		t.Errorf("p100 = %d exceeds max %d", q, h.Max())
	}
	// Buckets must be ascending, non-empty, and sum to count.
	var sum uint64
	prev := -1
	for _, b := range h.Buckets() {
		if int64(b.LowNS) <= int64(prev) {
			t.Errorf("buckets not ascending at %d", b.LowNS)
		}
		prev = int(b.LowNS)
		sum += b.Count
	}
	if sum != h.Count() {
		t.Errorf("bucket counts sum to %d, want %d", sum, h.Count())
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Record(10)
	a.Record(100)
	b.Record(1 << 40)
	a.Merge(&b)
	if a.Count() != 3 || a.Max() != 1<<40 || a.Sum() != 110+(1<<40) {
		t.Fatalf("merge: count=%d max=%d sum=%d", a.Count(), a.Max(), a.Sum())
	}
}

func TestRingOverwrite(t *testing.T) {
	r := NewRing(4)
	for i := uint64(1); i <= 10; i++ {
		r.Record(Event{T: i, Kind: EventCommit})
	}
	if r.Len() != 4 || r.Dropped() != 6 {
		t.Fatalf("len=%d dropped=%d", r.Len(), r.Dropped())
	}
	ev := r.Events()
	for i, want := range []uint64{7, 8, 9, 10} {
		if ev[i].T != want {
			t.Errorf("event %d has T=%d, want %d", i, ev[i].T, want)
		}
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder enabled")
	}
	if r.Start() != 0 {
		t.Fatal("nil Start != 0")
	}
	// None of these may panic.
	r.RecordSince(PhaseFast, 0)
	r.RecordPhase(PhaseAttempt, 5)
	r.RecordAbort(CauseConflict, 1, 0)
	r.RecordEvent(EventCommit, PathFast, 0)
	if r.AbortCount(CauseConflict) != 0 || r.Ring() != nil || r.PhaseHist(PhaseFast) != nil {
		t.Fatal("nil recorder returned non-zero state")
	}
	snap := r.Snapshot()
	if snap == nil || len(snap.Phases) != 0 || len(snap.Aborts) != 0 {
		t.Fatal("nil recorder snapshot not empty")
	}
	tr := r.DrainRing(0)
	if len(tr.Events) != 0 {
		t.Fatal("nil recorder drained events")
	}
}

func TestRecorderRecordAndSnapshot(t *testing.T) {
	r := NewRecorder(Config{RingSize: 8})
	s := r.Start()
	if s < 0 {
		t.Fatal("negative start")
	}
	r.RecordSince(PhaseFast, s)
	r.RecordPhase(PhaseAttempt, 1000)
	r.RecordAbort(CauseClockLocked, 3, 42)
	r.RecordAbort(CauseClockLocked, 5, 44)
	r.RecordEvent(EventCommit, PathFast, 46)
	if r.AbortCount(CauseClockLocked) != 2 {
		t.Fatalf("abort count = %d", r.AbortCount(CauseClockLocked))
	}
	snap := r.Snapshot()
	if len(snap.Phases) != 2 {
		t.Fatalf("phases = %+v", snap.Phases)
	}
	var found bool
	for _, a := range snap.Aborts {
		if a.Cause == "clock-locked" {
			found = true
			if a.Count != 2 || a.RetryMean != 4 || a.RetryMax != 5 {
				t.Errorf("abort cell %+v", a)
			}
		}
	}
	if !found {
		t.Fatal("clock-locked cell missing")
	}
	tr := r.DrainRing(7)
	if tr.Thread != 7 || len(tr.Events) != 3 {
		t.Fatalf("trace %+v", tr)
	}
	if tr.Events[0].Kind != "abort" || tr.Events[0].Cause != "clock-locked" || tr.Events[0].Retry != 3 {
		t.Errorf("abort event %+v", tr.Events[0])
	}
	if tr.Events[2].Kind != "commit" || tr.Events[2].Path != "fast" || tr.Events[2].T != 46 {
		t.Errorf("commit event %+v", tr.Events[2])
	}
}

func TestRecorderMerge(t *testing.T) {
	a := NewRecorder(Config{})
	b := NewRecorder(Config{RingSize: 4})
	a.RecordPhase(PhaseSoftware, 100)
	b.RecordPhase(PhaseSoftware, 200)
	b.RecordAbort(CauseCapacity, 1, 0)
	a.Merge(b)
	a.Merge(nil) // no-op
	if h := a.PhaseHist(PhaseSoftware); h.Count() != 2 || h.Sum() != 300 {
		t.Fatalf("merged phase hist count=%d sum=%d", h.Count(), h.Sum())
	}
	if a.AbortCount(CauseCapacity) != 1 {
		t.Fatal("merged abort count missing")
	}
}

// TestEnumStringsRoundTrip pins the schema names: every enum value must
// have a distinct, stable, round-trippable name (docs/METRICS.md documents
// them; the bench schema validator rejects anything else).
func TestEnumStringsRoundTrip(t *testing.T) {
	seen := map[string]bool{}
	for c := Cause(0); c < NumCauses; c++ {
		n := c.String()
		if n == "" || n == "invalid" || seen[n] {
			t.Errorf("cause %d has bad name %q", c, n)
		}
		seen[n] = true
		if got, ok := CauseByName(n); !ok || got != c {
			t.Errorf("CauseByName(%q) = %v, %v", n, got, ok)
		}
	}
	seen = map[string]bool{}
	for p := Phase(0); p < NumPhases; p++ {
		n := p.String()
		if n == "" || n == "invalid" || seen[n] {
			t.Errorf("phase %d has bad name %q", p, n)
		}
		seen[n] = true
		if got, ok := PhaseByName(n); !ok || got != p {
			t.Errorf("PhaseByName(%q) = %v, %v", n, got, ok)
		}
	}
	if Cause(200).String() != "invalid" || Phase(200).String() != "invalid" {
		t.Error("out-of-range enums must stringify as invalid")
	}
}
