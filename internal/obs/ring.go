package obs

// EventKind labels one entry of the per-thread event ring.
type EventKind uint8

const (
	// EventBegin marks the start of one Run/RunReadOnly invocation.
	EventBegin EventKind = iota + 1
	// EventAbort marks one hardware abort (Cause from the taxonomy, Retry
	// the 1-based ordinal of the failed attempt) or a software restart
	// (CauseSTMValidation).
	EventAbort
	// EventFallback marks the transition from the hardware fast path to
	// the software/mixed slow path (the numerator of the paper's slow-path
	// ratio row).
	EventFallback
	// EventCommit marks a commit; Path tells which execution path it
	// committed on.
	EventCommit
	// EventDemote marks a contention-management demotion: a capacity abort
	// sent this thread past the hardware fast path until an epoch probe
	// re-promotes it (Decision carries obs.DecisionDemote).
	EventDemote
	// EventPromoteProbe marks a demoted thread's epoch-boundary probe of
	// the fast path (Decision carries obs.DecisionPromoteProbe).
	EventPromoteProbe
	// EventThrottle marks a fast-path entry delayed by the global
	// contention window (Decision carries obs.DecisionThrottle).
	EventThrottle
	// EventFuse marks a service-layer batch fuse: two or more queued
	// requests executed inside one fused transaction (internal/serve; Retry
	// carries the batch size).
	EventFuse
	// EventShed marks a service-layer deadline shed: a queued request whose
	// deadline expired before a worker dequeued it was answered with a
	// retry-later instead of executing (internal/serve).
	EventShed

	numEventKinds
)

var eventKindNames = [numEventKinds]string{
	EventBegin:        "begin",
	EventAbort:        "abort",
	EventFallback:     "fallback",
	EventCommit:       "commit",
	EventDemote:       "demote",
	EventPromoteProbe: "promote-probe",
	EventThrottle:     "throttle",
	EventFuse:         "fuse",
	EventShed:         "shed",
}

// String returns the stable schema name of the kind.
func (k EventKind) String() string {
	if k > 0 && k < numEventKinds {
		return eventKindNames[k]
	}
	return "invalid"
}

// Path labels the execution path an event happened on.
type Path uint8

const (
	// PathNone is for events with no path attribution.
	PathNone Path = iota
	// PathFast is the pure hardware fast path.
	PathFast
	// PathSlow is the software or mixed slow path.
	PathSlow
	// PathSerial is execution under the serial/global lock.
	PathSerial

	numPaths
)

var pathNames = [numPaths]string{
	PathNone:   "",
	PathFast:   "fast",
	PathSlow:   "slow",
	PathSerial: "serial",
}

// String returns the stable schema name of the path ("" for PathNone).
func (p Path) String() string {
	if p < numPaths {
		return pathNames[p]
	}
	return "invalid"
}

// Event is one fixed-size ring entry. T is a logical timestamp: the mem
// clock at recording time (monotonic; writer commits advance it by 2), so
// events from different threads order consistently with the committed
// history without any wall-clock coordination.
type Event struct {
	// T is the logical timestamp (mem clock value).
	T uint64
	// Kind is the event kind.
	Kind EventKind
	// Cause is the abort taxonomy label (abort events; CauseNone otherwise).
	Cause Cause
	// Path is the execution path (commit events; PathNone otherwise).
	Path Path
	// Retry is the 1-based attempt ordinal for abort events.
	Retry uint16
}

// Ring is a fixed-size per-thread event buffer: Record overwrites the
// oldest entry when full, so a run of any length keeps its most recent
// RingSize events per thread. Recording is allocation-free; the harness
// drains rings after workers stop.
type Ring struct {
	buf []Event
	n   uint64 // total events ever recorded
}

// NewRing creates a ring holding size events (minimum 1).
func NewRing(size int) *Ring {
	if size < 1 {
		size = 1
	}
	return &Ring{buf: make([]Event, size)}
}

// Record appends one event, overwriting the oldest when the ring is full.
func (r *Ring) Record(e Event) {
	r.buf[r.n%uint64(len(r.buf))] = e
	r.n++
}

// Len reports the number of events currently held (≤ capacity).
func (r *Ring) Len() int {
	if r.n < uint64(len(r.buf)) {
		return int(r.n)
	}
	return len(r.buf)
}

// Dropped reports how many events were overwritten.
func (r *Ring) Dropped() uint64 {
	if r.n < uint64(len(r.buf)) {
		return 0
	}
	return r.n - uint64(len(r.buf))
}

// Events returns the held events, oldest first. The slice is freshly
// allocated (drain-time only; never on the hot path).
func (r *Ring) Events() []Event {
	n := r.Len()
	out := make([]Event, 0, n)
	start := r.n - uint64(n)
	for i := 0; i < n; i++ {
		out = append(out, r.buf[(start+uint64(i))%uint64(len(r.buf))])
	}
	return out
}
