package obs

import "testing"

// BenchmarkRecorderDisabled measures the disabled-observability cost of one
// instrumentation site: a nil-receiver method call, i.e. the single branch
// the DESIGN.md overhead budget promises. Expect low single-digit
// nanoseconds (or less, after inlining).
func BenchmarkRecorderDisabled(b *testing.B) {
	var r *Recorder
	for i := 0; i < b.N; i++ {
		s := r.Start()
		r.RecordSince(PhaseFast, s)
		r.RecordAbort(CauseConflict, 1, 0)
		r.RecordEvent(EventCommit, PathFast, 0)
	}
}

// BenchmarkRecorderEnabled measures one enabled fast-path instrumentation
// round: two monotonic clock reads plus a histogram insert.
func BenchmarkRecorderEnabled(b *testing.B) {
	r := NewRecorder(Config{})
	for i := 0; i < b.N; i++ {
		s := r.Start()
		r.RecordSince(PhaseFast, s)
	}
}

// BenchmarkRecorderEnabledRing adds the abort-taxonomy update and a ring
// append to the enabled round.
func BenchmarkRecorderEnabledRing(b *testing.B) {
	r := NewRecorder(Config{RingSize: 1024})
	for i := 0; i < b.N; i++ {
		s := r.Start()
		r.RecordSince(PhaseFast, s)
		r.RecordAbort(CauseConflict, 1, uint64(i))
		r.RecordEvent(EventCommit, PathFast, uint64(i))
	}
}

// BenchmarkHistogramRecord isolates the histogram insert.
func BenchmarkHistogramRecord(b *testing.B) {
	var h Histogram
	for i := 0; i < b.N; i++ {
		h.Record(uint64(i))
	}
}
