package obs

import (
	"testing"
)

func TestLabeledHistRecordAndRows(t *testing.T) {
	l := NewLabeledHist("get", "put", "cas")
	for i := 0; i < 100; i++ {
		l.Record(0, uint64(1000+i))
	}
	l.Record(2, 5)
	l.Record(-1, 9) // out of range: dropped
	l.Record(3, 9)  // out of range: dropped

	rows := l.Rows()
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2 (idle labels omitted)", len(rows))
	}
	if rows[0].Label != "get" || rows[1].Label != "cas" {
		t.Fatalf("row labels = %q, %q", rows[0].Label, rows[1].Label)
	}
	g := rows[0].Latency
	if g.Count != 100 || g.MaxNS != 1099 {
		t.Fatalf("get summary = %+v", g)
	}
	if g.P50NS > g.P90NS || g.P90NS > g.P99NS || g.P99NS > g.P999NS || g.P999NS > g.MaxNS {
		t.Fatalf("quantiles not ordered: %+v", g)
	}
}

func TestLabeledHistMergeClone(t *testing.T) {
	a := NewLabeledHist("x", "y")
	b := NewLabeledHist("x", "y")
	a.Record(0, 10)
	b.Record(0, 20)
	b.Record(1, 30)

	c := b.Clone()
	b.Record(0, 40) // the owner keeps recording; the clone must not move
	if got := c.Hist(0).Count(); got != 1 {
		t.Fatalf("clone count = %d, want 1 (isolated from later records)", got)
	}

	a.Merge(c)
	if got := a.Hist(0).Count(); got != 2 {
		t.Fatalf("merged x count = %d, want 2", got)
	}
	if got := a.Hist(1).Max(); got != 30 {
		t.Fatalf("merged y max = %d, want 30", got)
	}

	// Nil-safety like the rest of the package.
	var nilL *LabeledHist
	nilL.Record(0, 1)
	nilL.Merge(a)
	if nilL.Clone() != nil || nilL.Hist(0) != nil || len(nilL.Rows()) != 0 {
		t.Fatal("nil LabeledHist must be inert")
	}
}

func TestRecorderCloneIsolation(t *testing.T) {
	r := NewRecorder(Config{RingSize: 8})
	r.RecordPhase(PhaseFast, 100)
	r.RecordAbort(CauseConflict, 1, 5)

	c := r.Clone()
	if c.Ring() != nil {
		t.Fatal("clone must drop the ring (rings are drained, not merged)")
	}
	r.RecordPhase(PhaseFast, 200)
	if got := c.PhaseHist(PhaseFast).Count(); got != 1 {
		t.Fatalf("clone phase count = %d, want 1 (isolated from later records)", got)
	}
	if got := c.AbortCount(CauseConflict); got != 1 {
		t.Fatalf("clone abort count = %d, want 1", got)
	}
	if (*Recorder)(nil).Clone() != nil {
		t.Fatal("nil Clone must stay nil")
	}

	// Clones feed merges: the snapshot path of a live service.
	agg := NewRecorder(Config{})
	agg.Merge(c)
	if got := agg.AbortCount(CauseConflict); got != 1 {
		t.Fatalf("merged abort count = %d, want 1", got)
	}
}
