package obs

// Trace is the JSON form of one benchmark point's drained event rings:
// what `rhbench -trace` writes and `rhtrace` replays. One Trace per
// (workload, algorithm, thread-count) point; one ThreadRing per worker.
type Trace struct {
	// Workload/Algo/Threads identify the benchmark point.
	Workload string `json:"workload"`
	Algo     string `json:"algo"`
	Threads  int    `json:"threads"`
	// Rings holds each worker thread's drained ring.
	Rings []ThreadRing `json:"rings"`
}

// ThreadRing is one thread's drained event ring.
type ThreadRing struct {
	// Thread is the worker index within the point.
	Thread int `json:"thread"`
	// Dropped is how many events the fixed-size ring overwrote; the
	// Events below are the *last* RingSize events of the run.
	Dropped uint64 `json:"dropped"`
	// Events are the held events, oldest first.
	Events []EventJSON `json:"events"`
}

// EventJSON is the schema form of one ring event.
type EventJSON struct {
	// T is the logical timestamp: the mem clock at recording time.
	T uint64 `json:"t"`
	// Kind is begin | abort | fallback | commit.
	Kind string `json:"kind"`
	// Cause is the abort taxonomy label (abort events only).
	Cause string `json:"cause,omitempty"`
	// Path is fast | slow | serial (commit events only).
	Path string `json:"path,omitempty"`
	// Retry is the 1-based attempt ordinal (abort events only).
	Retry uint16 `json:"retry,omitempty"`
}

// DrainRing renders one thread's ring for a Trace. A nil or ring-less
// recorder yields an empty ring entry.
func (r *Recorder) DrainRing(thread int) ThreadRing {
	tr := ThreadRing{Thread: thread, Events: []EventJSON{}}
	ring := r.Ring()
	if ring == nil {
		return tr
	}
	tr.Dropped = ring.Dropped()
	for _, e := range ring.Events() {
		ej := EventJSON{T: e.T, Kind: e.Kind.String(), Retry: e.Retry}
		if e.Cause != CauseNone {
			ej.Cause = e.Cause.String()
		}
		if e.Path != PathNone {
			ej.Path = e.Path.String()
		}
		tr.Events = append(tr.Events, ej)
	}
	return tr
}
