package obs

// Cause is the abort-event taxonomy: the join of the simulated hardware's
// abort status (htm.Code, mirroring the RTM status bits of paper §3.2–§3.3)
// with the algorithm-level reason carried in the XABORT payload. Every
// hardware abort in the system maps to exactly one Cause (package htm owns
// the mapping at the Device boundary, htm.(*Abort).Cause); software-path
// restarts map to CauseSTMValidation.
type Cause uint8

const (
	// CauseNone is the reserved zero value (events that carry no cause,
	// e.g. begin and commit ring events).
	CauseNone Cause = iota
	// CauseConflict: the hardware abort status reported a data conflict
	// (htm.Conflict) — another thread's commit or plain store invalidated
	// the read/write set. The paper's Figure 4–6 "HTM conflict aborts"
	// series counts these.
	CauseConflict
	// CauseCapacity: the read or write set overflowed the transactional
	// cache (htm.Capacity) — the paper's "HTM capacity aborts" series and
	// its NO_RETRY fallback trigger (§3.3).
	CauseCapacity
	// CauseSpurious: an environmental abort (htm.Spurious — interrupt,
	// page fault, TLB miss).
	CauseSpurious
	// CauseHTMLockTaken: explicit abort because the global HTM lock (or
	// Lock Elision's global lock) was held — the fast path's subscription
	// check failed (Algorithm 1 line 3; htm.ArgHTMLockTaken).
	CauseHTMLockTaken
	// CauseClockLocked: explicit abort because the NOrec global clock was
	// locked by a software writer at the fast path's commit point
	// (Algorithm 1 lines 29–32; htm.ArgClockLocked).
	CauseClockLocked
	// CauseSerialTaken: explicit abort because the serial starvation lock
	// of §3.3 was held (htm.ArgSerialTaken).
	CauseSerialTaken
	// CauseWrongPhase: explicit abort because PhasedTM's phase subscription
	// found the system in (or entering) a software phase
	// (htm.ArgWrongPhase).
	CauseWrongPhase
	// CauseExplicitOther: an explicit abort whose payload is not one of the
	// canonical protocol arguments (application XABORTs).
	CauseExplicitOther
	// CauseSTMValidation: a software-path restart — the NOrec value
	// validation failed or the global clock moved under a read (the
	// "restarts per slow-path transaction" row of Figures 4–6).
	CauseSTMValidation

	// NumCauses bounds the enum; every valid Cause is < NumCauses.
	NumCauses
)

var causeNames = [NumCauses]string{
	CauseNone:          "none",
	CauseConflict:      "conflict",
	CauseCapacity:      "capacity",
	CauseSpurious:      "spurious",
	CauseHTMLockTaken:  "htm-lock-taken",
	CauseClockLocked:   "clock-locked",
	CauseSerialTaken:   "serial-taken",
	CauseWrongPhase:    "wrong-phase",
	CauseExplicitOther: "explicit-other",
	CauseSTMValidation: "stm-validation",
}

// String returns the stable schema name of the cause (docs/METRICS.md
// documents the full enum; downstream tooling keys on these strings).
func (c Cause) String() string {
	if c < NumCauses {
		return causeNames[c]
	}
	return "invalid"
}

// CauseByName returns the Cause with the given schema name.
func CauseByName(name string) (Cause, bool) {
	for c, n := range causeNames {
		if n == name {
			return Cause(c), true
		}
	}
	return CauseNone, false
}

// Phase labels one timed section of a transaction's execution. The five TM
// algorithms record the phases they have; docs/METRICS.md defines each
// phase's exact boundaries per algorithm.
type Phase uint8

const (
	// PhaseAttempt is one whole Run/RunReadOnly invocation: first hardware
	// attempt through final commit (or user abort), retries included.
	PhaseAttempt Phase = iota
	// PhaseFast is one hardware fast-path attempt (Algorithm 1), begin to
	// commit or abort.
	PhaseFast
	// PhasePrefix is RH NOrec's HTM prefix (Algorithm 3 lines 9–26): Begin
	// to successful prefix commit. Aborted prefixes surface as abort
	// events, not histogram samples.
	PhasePrefix
	// PhaseSoftware is the instrumented software section of one committed
	// slow-path attempt: snapshot (or prefix hand-off) to the start of
	// commit publication.
	PhaseSoftware
	// PhasePostfix is RH NOrec's HTM postfix (Algorithm 2 lines 25–31):
	// Begin at the first write to the postfix's commit.
	PhasePostfix
	// PhaseWriteback is commit publication: the clock bump and (for lazy
	// variants) the buffered write-back.
	PhaseWriteback
	// PhaseSerial is execution under the serial starvation lock (§3.3) or
	// Lock Elision's acquired global lock.
	PhaseSerial

	// NumPhases bounds the enum; every valid Phase is < NumPhases.
	NumPhases
)

var phaseNames = [NumPhases]string{
	PhaseAttempt:   "attempt",
	PhaseFast:      "fast",
	PhasePrefix:    "prefix",
	PhaseSoftware:  "software",
	PhasePostfix:   "postfix",
	PhaseWriteback: "writeback",
	PhaseSerial:    "serial",
}

// String returns the stable schema name of the phase.
func (p Phase) String() string {
	if p < NumPhases {
		return phaseNames[p]
	}
	return "invalid"
}

// PhaseByName returns the Phase with the given schema name.
func PhaseByName(name string) (Phase, bool) {
	for p, n := range phaseNames {
		if n == name {
			return Phase(p), true
		}
	}
	return 0, false
}
