// Package obs is the observability layer behind the paper's analysis rows
// (Figures 4–6) and beyond them: where internal/tm's Stats counters say *how
// often* something happened over a whole run, this package says *how long*
// each execution phase took (power-of-two-bucketed latency histograms),
// *why* each hardware abort happened (a taxonomy joining htm abort codes
// with the algorithm-level cause and the retry ordinal), and *when* events
// clustered (an optional per-thread fixed-size event ring stamped with the
// mem clock).
//
// Everything on the recording path is allocation-free; every Recorder
// method is nil-safe, so a TM thread with observability disabled pays one
// nil-check branch per instrumentation site and nothing else (DESIGN.md
// § Observability has the overhead budget and proof sketch).
package obs

import "math/bits"

// histBuckets is the number of power-of-two histogram buckets: bucket 0
// holds the value 0, bucket i (i ≥ 1) holds values in [2^(i-1), 2^i).
// 65 buckets cover the full uint64 range.
const histBuckets = 65

// Histogram is a power-of-two-bucketed distribution of uint64 samples
// (latencies in nanoseconds, retry ordinals, ...). The zero value is ready
// to use. Record is allocation-free and branch-light; a Histogram belongs
// to one thread and is merged after workers stop.
type Histogram struct {
	buckets [histBuckets]uint64
	count   uint64
	sum     uint64
	max     uint64
}

// bucketOf returns the bucket index for v: 0 for 0, else floor(log2 v)+1.
func bucketOf(v uint64) int { return bits.Len64(v) }

// BucketLow returns the inclusive lower bound of bucket i.
func BucketLow(i int) uint64 {
	if i <= 0 {
		return 0
	}
	return 1 << (i - 1)
}

// Record adds one sample.
func (h *Histogram) Record(v uint64) {
	h.buckets[bucketOf(v)]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count reports the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count }

// Sum reports the exact sum of all recorded samples.
func (h *Histogram) Sum() uint64 { return h.sum }

// Max reports the largest recorded sample (0 when empty).
func (h *Histogram) Max() uint64 { return h.max }

// Mean reports the exact arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Merge accumulates o into h.
func (h *Histogram) Merge(o *Histogram) {
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// Quantile estimates the q-quantile (0 < q ≤ 1). The estimate resolves to
// the midpoint of the power-of-two bucket holding the quantile sample, so
// its relative error is bounded by the bucket width (≤ 50%); the exact Max
// caps it. Returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.count == 0 {
		return 0
	}
	rank := uint64(q * float64(h.count))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum >= rank {
			lo := BucketLow(i)
			hi := bucketHigh(i)
			mid := lo + (hi-lo)/2
			if mid > h.max {
				mid = h.max
			}
			return mid
		}
	}
	return h.max
}

// bucketHigh returns the inclusive upper bound of bucket i.
func bucketHigh(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return ^uint64(0)
	}
	return 1<<i - 1
}

// Bucket is one non-empty histogram cell: Count samples with values in
// [LowNS, next bucket's LowNS).
type Bucket struct {
	// LowNS is the bucket's inclusive lower bound.
	LowNS uint64 `json:"lo_ns"`
	// Count is the number of samples in the bucket.
	Count uint64 `json:"count"`
}

// Buckets returns the non-empty buckets in increasing value order.
func (h *Histogram) Buckets() []Bucket {
	var out []Bucket
	for i, c := range h.buckets {
		if c != 0 {
			out = append(out, Bucket{LowNS: BucketLow(i), Count: c})
		}
	}
	return out
}
