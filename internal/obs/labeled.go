package obs

// Labeled recorders: a fixed label vocabulary (service endpoints, queue
// classes, ...) with one latency Histogram and an outcome-counter block per
// label. The service layer (internal/serve) records one row per endpoint —
// GET/PUT/CAS/SCAN/TXN — so the `/metrics` surface and the rhserve.v1 dump
// can report per-endpoint p50/p99/p999 next to the engine-level phase
// histograms this package already keeps. Like Recorder, a LabeledHist
// belongs to one goroutine; owners hand out Clones for merging (the same
// drain-then-merge discipline tm.Stats.Add uses).

// LatencySummary is the JSON rendering of one Histogram: the schema block
// shared by the rhserve.v1 endpoint rows (docs/METRICS.md). All durations
// are nanoseconds; quantiles resolve to power-of-two bucket midpoints
// (≤ 50% relative error, capped by the exact MaxNS).
type LatencySummary struct {
	// Count is the number of samples.
	Count uint64 `json:"count"`
	// SumNS is the exact sum of all samples.
	SumNS uint64 `json:"sum_ns"`
	// MaxNS is the exact largest sample.
	MaxNS uint64 `json:"max_ns"`
	// P50NS/P90NS/P99NS/P999NS are quantile estimates.
	P50NS  uint64 `json:"p50_ns"`
	P90NS  uint64 `json:"p90_ns"`
	P99NS  uint64 `json:"p99_ns"`
	P999NS uint64 `json:"p999_ns"`
}

// Summary renders the histogram's latency block. An empty histogram yields
// the zero summary.
func (h *Histogram) Summary() LatencySummary {
	return LatencySummary{
		Count:  h.Count(),
		SumNS:  h.Sum(),
		MaxNS:  h.Max(),
		P50NS:  h.Quantile(0.50),
		P90NS:  h.Quantile(0.90),
		P99NS:  h.Quantile(0.99),
		P999NS: h.Quantile(0.999),
	}
}

// LabeledRow is one label's snapshot: the label name plus its latency
// summary. Field names are stable — the rhserve.v1 schema embeds them.
type LabeledRow struct {
	// Label is the row's label (e.g. an endpoint name).
	Label string `json:"label"`
	// Latency is the label's latency distribution.
	Latency LatencySummary `json:"latency"`
}

// LabeledHist is a fixed set of labelled Histograms. The label vocabulary
// is fixed at construction; Record indexes it by position, so the recording
// path stays allocation-free and branch-light like the rest of the package.
type LabeledHist struct {
	labels []string
	hists  []Histogram
}

// NewLabeledHist creates a labelled histogram set over the given label
// vocabulary (order defines the Record indices).
func NewLabeledHist(labels ...string) *LabeledHist {
	return &LabeledHist{labels: labels, hists: make([]Histogram, len(labels))}
}

// Labels returns the label vocabulary (do not mutate).
func (l *LabeledHist) Labels() []string { return l.labels }

// Record adds one sample to label index i. Out-of-range indices are
// dropped (mis-wired call sites must not corrupt neighbouring rows).
func (l *LabeledHist) Record(i int, v uint64) {
	if l == nil || i < 0 || i >= len(l.hists) {
		return
	}
	l.hists[i].Record(v)
}

// Hist exposes label index i's histogram (nil when out of range).
func (l *LabeledHist) Hist(i int) *Histogram {
	if l == nil || i < 0 || i >= len(l.hists) {
		return nil
	}
	return &l.hists[i]
}

// Merge accumulates o into l. The label vocabularies must match index for
// index; rows beyond the shorter set are ignored.
func (l *LabeledHist) Merge(o *LabeledHist) {
	if l == nil || o == nil {
		return
	}
	n := len(l.hists)
	if len(o.hists) < n {
		n = len(o.hists)
	}
	for i := 0; i < n; i++ {
		l.hists[i].Merge(&o.hists[i])
	}
}

// Clone returns an independent copy for cross-goroutine merging (the owner
// keeps recording into the original).
func (l *LabeledHist) Clone() *LabeledHist {
	if l == nil {
		return nil
	}
	c := &LabeledHist{labels: l.labels, hists: make([]Histogram, len(l.hists))}
	copy(c.hists, l.hists)
	return c
}

// Rows renders the non-empty labels in vocabulary order.
func (l *LabeledHist) Rows() []LabeledRow {
	out := []LabeledRow{}
	if l == nil {
		return out
	}
	for i := range l.hists {
		if l.hists[i].Count() == 0 {
			continue
		}
		out = append(out, LabeledRow{Label: l.labels[i], Latency: l.hists[i].Summary()})
	}
	return out
}
