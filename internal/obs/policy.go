package obs

// PolicyDecision labels one contention-management decision (internal/tm's
// policy engine). Decisions are exposed on two ledgers, like aborts: a
// per-thread counter cell here in the Recorder, and — for the rare,
// state-changing decisions — an event-ring entry, so rhtrace timelines show
// *when* a thread was demoted or throttled relative to the commits and
// aborts around it.
type PolicyDecision uint8

const (
	// DecisionDemote: a capacity abort demoted the thread past the hardware
	// fast path (its transactions are oversized for the transactional
	// cache; retrying in hardware is futile until the workload changes).
	DecisionDemote PolicyDecision = iota
	// DecisionPromoteProbe: a demoted thread reached an epoch boundary and
	// probed the fast path again; a hardware commit of the probe re-promotes
	// the thread.
	DecisionPromoteProbe
	// DecisionThrottle: fast-path entry was delayed because the global
	// contention window found the slow path hot (concurrent slow-path
	// writers above the policy threshold).
	DecisionThrottle
	// DecisionBackoff: a bounded randomized backoff before a retry
	// (hardware conflict retry or software-path restart).
	DecisionBackoff

	// NumPolicyDecisions bounds the enum; every valid decision is
	// < NumPolicyDecisions.
	NumPolicyDecisions
)

var policyDecisionNames = [NumPolicyDecisions]string{
	DecisionDemote:       "demote",
	DecisionPromoteProbe: "promote-probe",
	DecisionThrottle:     "throttle",
	DecisionBackoff:      "backoff",
}

// String returns the stable schema name of the decision (docs/POLICY.md and
// docs/METRICS.md document the enum; downstream tooling keys on these
// strings).
func (d PolicyDecision) String() string {
	if d < NumPolicyDecisions {
		return policyDecisionNames[d]
	}
	return "invalid"
}

// PolicyDecisionByName returns the PolicyDecision with the given schema
// name.
func PolicyDecisionByName(name string) (PolicyDecision, bool) {
	for d, n := range policyDecisionNames {
		if n == name {
			return PolicyDecision(d), true
		}
	}
	return 0, false
}
