package obs

// PersistKind labels one persistence-plane counter (the redo log and its
// crash recovery, internal/persist). Unlike FilterKind these are not
// Recorder cells: the log keeps its own atomic ledger (appends outrun any
// per-thread recorder and recovery happens before threads exist). The enum
// is the metric *vocabulary* — the stable names the rhserve.v1 dump and the
// /metrics text page key the log's counters on (docs/METRICS.md).
type PersistKind uint8

const (
	// PersistLogAppend: a commit's write set was appended to the redo log
	// (one per logged commit, however many segments it touched).
	PersistLogAppend PersistKind = iota
	// PersistLogRecord: one per-segment redo record was buffered.
	PersistLogRecord
	// PersistFsyncGroup: a group-fsync pass flushed the dirty segments —
	// every durable ack waiting at that moment rode this one pass.
	PersistFsyncGroup
	// PersistFsync: one segment file was fsynced (a group pass counts one
	// per dirty segment).
	PersistFsync
	// PersistRecoveryReplayed: a committed sequence number was replayed at
	// boot-time recovery.
	PersistRecoveryReplayed
	// PersistRecoveryDropped: a parsed redo record was discarded at recovery
	// because its sequence lay beyond the last consistent cut.
	PersistRecoveryDropped
	// PersistTornTail: a segment's unparseable tail bytes (short write or
	// checksum mismatch) were detected and discarded at recovery.
	PersistTornTail

	// NumPersistKinds bounds the enum; every valid kind is < NumPersistKinds.
	NumPersistKinds
)

var persistKindNames = [NumPersistKinds]string{
	PersistLogAppend:        "log-append",
	PersistLogRecord:        "log-record",
	PersistFsyncGroup:       "fsync-group",
	PersistFsync:            "fsync",
	PersistRecoveryReplayed: "recovery-replayed",
	PersistRecoveryDropped:  "recovery-dropped",
	PersistTornTail:         "torn-tail",
}

// String returns the stable schema name of the kind (docs/METRICS.md
// documents the enum; downstream tooling keys on these strings).
func (k PersistKind) String() string {
	if k < NumPersistKinds {
		return persistKindNames[k]
	}
	return "invalid"
}

// PersistKindByName returns the PersistKind with the given schema name.
func PersistKindByName(name string) (PersistKind, bool) {
	for k, n := range persistKindNames {
		if n == name {
			return PersistKind(k), true
		}
	}
	return 0, false
}
