package obs

import "time"

// epoch anchors Start/RecordSince timestamps; time.Since reads the
// monotonic clock without allocating.
var epoch = time.Now()

// Now returns the current monotonic timestamp in nanoseconds since the
// package epoch. Exposed for tests and tools; instrumentation sites use
// the nil-safe Recorder.Start instead.
func Now() int64 { return int64(time.Since(epoch)) }

// Config configures a Recorder.
type Config struct {
	// RingSize, when > 0, attaches a per-thread event ring holding that
	// many entries (begin/abort/fallback/commit events stamped with the
	// mem clock). 0 records histograms and abort taxonomy only.
	RingSize int
}

// Recorder is one thread's observability state: per-phase latency
// histograms, the abort-cause taxonomy cells (count + retry-ordinal
// distribution per cause), and the optional event ring. A Recorder is
// attached to a thread via tm.Stats.Obs; a nil *Recorder is the disabled
// state — every method is nil-safe, so call sites pay exactly one branch
// when observability is off.
//
// Recorders are single-threaded like the Stats they ride on; the harness
// merges them after workers stop.
type Recorder struct {
	phases      [NumPhases]Histogram
	abortCount  [NumCauses]uint64
	abortRetry  [NumCauses]Histogram
	policyCount [NumPolicyDecisions]uint64
	filterCount [NumFilterKinds]uint64
	ring        *Ring
}

// NewRecorder creates a Recorder per cfg.
func NewRecorder(cfg Config) *Recorder {
	r := &Recorder{}
	if cfg.RingSize > 0 {
		r.ring = NewRing(cfg.RingSize)
	}
	return r
}

// Enabled reports whether the recorder is attached (non-nil).
func (r *Recorder) Enabled() bool { return r != nil }

// Start returns a timestamp for a later RecordSince, or 0 when disabled.
func (r *Recorder) Start() int64 {
	if r == nil {
		return 0
	}
	return int64(time.Since(epoch))
}

// RecordSince records the elapsed time since start (a Start result) into
// the phase's latency histogram. No-op when disabled.
func (r *Recorder) RecordSince(p Phase, start int64) {
	if r == nil {
		return
	}
	d := int64(time.Since(epoch)) - start
	if d < 0 {
		d = 0
	}
	r.phases[p].Record(uint64(d))
}

// RecordPhase records one pre-measured phase duration in nanoseconds.
func (r *Recorder) RecordPhase(p Phase, ns uint64) {
	if r == nil {
		return
	}
	r.phases[p].Record(ns)
}

// PhaseHist exposes a phase's histogram for inspection (nil when disabled).
func (r *Recorder) PhaseHist(p Phase) *Histogram {
	if r == nil {
		return nil
	}
	return &r.phases[p]
}

// RecordAbort accounts one abort event: the taxonomy cell for its cause,
// the retry-ordinal distribution, and (when a ring is attached) an abort
// ring event stamped with logical time now. retry is the 1-based ordinal
// of the failed attempt.
func (r *Recorder) RecordAbort(c Cause, retry int, now uint64) {
	if r == nil {
		return
	}
	if c >= NumCauses {
		c = CauseExplicitOther
	}
	r.abortCount[c]++
	r.abortRetry[c].Record(uint64(retry))
	if r.ring != nil {
		r.ring.Record(Event{T: now, Kind: EventAbort, Cause: c, Retry: uint16(min(retry, 1<<16-1))})
	}
}

// RecordPolicy accounts one contention-management decision: the per-kind
// counter, and — for the state-changing decisions (demote, promote-probe,
// throttle) — a ring event stamped with logical time now, so policy
// decisions show up in rhtrace timelines next to the aborts that caused
// them. Backoffs are counter-only (one fires per conflict retry; ringing
// each would drown the window).
func (r *Recorder) RecordPolicy(d PolicyDecision, now uint64) {
	if r == nil || d >= NumPolicyDecisions {
		return
	}
	r.policyCount[d]++
	if r.ring == nil || d == DecisionBackoff {
		return
	}
	var k EventKind
	switch d {
	case DecisionDemote:
		k = EventDemote
	case DecisionPromoteProbe:
		k = EventPromoteProbe
	case DecisionThrottle:
		k = EventThrottle
	}
	r.ring.Record(Event{T: now, Kind: k})
}

// PolicyCount reports the recorded decisions of one kind.
func (r *Recorder) PolicyCount(d PolicyDecision) uint64 {
	if r == nil || d >= NumPolicyDecisions {
		return 0
	}
	return r.policyCount[d]
}

// RecordEvent appends a begin/fallback/commit event to the ring (if any).
func (r *Recorder) RecordEvent(k EventKind, p Path, now uint64) {
	if r == nil || r.ring == nil {
		return
	}
	r.ring.Record(Event{T: now, Kind: k, Path: p})
}

// AbortCount reports the recorded aborts for one cause.
func (r *Recorder) AbortCount(c Cause) uint64 {
	if r == nil {
		return 0
	}
	return r.abortCount[c]
}

// Ring exposes the event ring (nil when disabled or not configured).
func (r *Recorder) Ring() *Ring {
	if r == nil {
		return nil
	}
	return r.ring
}

// Clone returns an independent copy of the recorder's histograms and
// counter ledgers for cross-goroutine merging, deliberately without the
// event ring: rings are per-thread and are drained, not merged, and sharing
// the ring pointer would race the owner's recording. A long-running service
// (internal/serve) snapshots live workers this way — the owner keeps
// recording into the original while the clone is merged elsewhere.
func (r *Recorder) Clone() *Recorder {
	if r == nil {
		return nil
	}
	return &Recorder{
		phases:      r.phases,
		abortCount:  r.abortCount,
		abortRetry:  r.abortRetry,
		policyCount: r.policyCount,
		filterCount: r.filterCount,
	}
}

// Merge accumulates o's histograms and taxonomy cells into r. Rings are
// per-thread and are not merged — drain them individually. Merging a nil
// o is a no-op; merging into a nil r panics (aggregate into a fresh
// Recorder, see tm.Stats.Add).
func (r *Recorder) Merge(o *Recorder) {
	if o == nil {
		return
	}
	for i := range r.phases {
		r.phases[i].Merge(&o.phases[i])
	}
	for i := range r.abortCount {
		r.abortCount[i] += o.abortCount[i]
		r.abortRetry[i].Merge(&o.abortRetry[i])
	}
	for i := range r.policyCount {
		r.policyCount[i] += o.policyCount[i]
	}
	for i := range r.filterCount {
		r.filterCount[i] += o.filterCount[i]
	}
}
