package obs

// Snapshot is the JSON form of a merged Recorder: what `rhbench -obs`
// embeds in each benchmark point. Field names are stable and versioned by
// the enclosing dump's schema_version (docs/METRICS.md documents every
// field, its units, and the enums).
type Snapshot struct {
	// Phases holds one entry per phase that recorded at least one sample,
	// in Phase enum order.
	Phases []PhaseSnapshot `json:"phases"`
	// Aborts holds one entry per abort cause observed at least once, in
	// Cause enum order.
	Aborts []AbortSnapshot `json:"aborts"`
	// Policy holds one entry per contention-management decision kind taken
	// at least once, in PolicyDecision enum order. Omitted entirely when no
	// decisions fired, so pre-policy dumps stay byte-identical (additive
	// optional field — no schema_version bump, per the METRICS.md contract).
	Policy []PolicySnapshot `json:"policy,omitempty"`
	// Filter holds one entry per signature-filter/group-commit counter that
	// fired at least once, in FilterKind enum order. Additive optional field
	// like Policy: omitted when the filtering and combining layers are off,
	// so earlier dumps stay byte-identical.
	Filter []FilterSnapshot `json:"filter,omitempty"`
}

// PhaseSnapshot is one phase's latency distribution. All durations are
// nanoseconds.
type PhaseSnapshot struct {
	// Phase is the schema name of the phase (Phase.String).
	Phase string `json:"phase"`
	// Count is the number of samples.
	Count uint64 `json:"count"`
	// SumNS is the exact sum of all samples.
	SumNS uint64 `json:"sum_ns"`
	// MaxNS is the exact largest sample.
	MaxNS uint64 `json:"max_ns"`
	// P50NS/P90NS/P99NS are quantile estimates, resolved to power-of-two
	// bucket midpoints (≤ 50% relative error, capped by MaxNS).
	P50NS uint64 `json:"p50_ns"`
	P90NS uint64 `json:"p90_ns"`
	P99NS uint64 `json:"p99_ns"`
	// Buckets are the non-empty power-of-two buckets, ascending.
	Buckets []Bucket `json:"buckets"`
}

// AbortSnapshot is one abort-taxonomy cell.
type AbortSnapshot struct {
	// Cause is the schema name of the cause (Cause.String).
	Cause string `json:"cause"`
	// Count is the number of aborts with this cause.
	Count uint64 `json:"count"`
	// RetryMean is the mean 1-based attempt ordinal at which the aborts
	// struck (1 = first attempt).
	RetryMean float64 `json:"retry_mean"`
	// RetryMax is the largest observed attempt ordinal.
	RetryMax uint64 `json:"retry_max"`
}

// PolicySnapshot is one contention-management decision counter.
type PolicySnapshot struct {
	// Decision is the schema name of the decision (PolicyDecision.String).
	Decision string `json:"decision"`
	// Count is the number of times the decision fired.
	Count uint64 `json:"count"`
}

// Snapshot renders the recorder for the JSON dump. A nil recorder yields
// an empty (but non-nil) snapshot.
func (r *Recorder) Snapshot() *Snapshot {
	s := &Snapshot{Phases: []PhaseSnapshot{}, Aborts: []AbortSnapshot{}}
	if r == nil {
		return s
	}
	for p := Phase(0); p < NumPhases; p++ {
		h := &r.phases[p]
		if h.Count() == 0 {
			continue
		}
		s.Phases = append(s.Phases, PhaseSnapshot{
			Phase:   p.String(),
			Count:   h.Count(),
			SumNS:   h.Sum(),
			MaxNS:   h.Max(),
			P50NS:   h.Quantile(0.50),
			P90NS:   h.Quantile(0.90),
			P99NS:   h.Quantile(0.99),
			Buckets: h.Buckets(),
		})
	}
	for c := Cause(0); c < NumCauses; c++ {
		if r.abortCount[c] == 0 {
			continue
		}
		s.Aborts = append(s.Aborts, AbortSnapshot{
			Cause:     c.String(),
			Count:     r.abortCount[c],
			RetryMean: r.abortRetry[c].Mean(),
			RetryMax:  r.abortRetry[c].Max(),
		})
	}
	for d := PolicyDecision(0); d < NumPolicyDecisions; d++ {
		if r.policyCount[d] == 0 {
			continue
		}
		s.Policy = append(s.Policy, PolicySnapshot{
			Decision: d.String(),
			Count:    r.policyCount[d],
		})
	}
	for k := FilterKind(0); k < NumFilterKinds; k++ {
		if r.filterCount[k] == 0 {
			continue
		}
		s.Filter = append(s.Filter, FilterSnapshot{
			Kind:  k.String(),
			Count: r.filterCount[k],
		})
	}
	return s
}
