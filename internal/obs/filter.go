package obs

// FilterKind labels one signature-filter or group-commit outcome (the
// validation-filter and flat-combining layers of internal/htm and
// internal/mem). Like PolicyDecision these are counter-only ledger cells:
// filter events fire on the per-validation hot path, far too often to ring.
type FilterKind uint8

const (
	// FilterSigHit: a validation's read signature intersected a published
	// write signature, so the per-entry value sweep ran.
	FilterSigHit FilterKind = iota
	// FilterSigMiss: the signatures were provably disjoint and the value
	// sweep was skipped — the filter's payoff case.
	FilterSigMiss
	// FilterSigFalsePositive: the subset of hits whose value sweep then
	// passed — the signatures collided on hashed bits, not on data.
	FilterSigFalsePositive
	// FilterSigUncovered: the publish window could not be answered from the
	// signature ring (wrapped, or publication disabled at the time); the
	// value sweep ran unfiltered.
	FilterSigUncovered
	// FilterCombinedCommit: a transaction committed by having its write set
	// drained from the combining ring by a group-commit holder.
	FilterCombinedCommit
	// FilterCombineDrain: a group-commit holder drained at least one queued
	// commit under its ticket window.
	FilterCombineDrain
	// FilterCombineReject: a queued commit was claimed but not published
	// (signature overlap with the group, or the group aborted) and had to
	// restart.
	FilterCombineReject

	// NumFilterKinds bounds the enum; every valid kind is < NumFilterKinds.
	NumFilterKinds
)

var filterKindNames = [NumFilterKinds]string{
	FilterSigHit:           "sig-hit",
	FilterSigMiss:          "sig-miss",
	FilterSigFalsePositive: "sig-false-positive",
	FilterSigUncovered:     "sig-uncovered",
	FilterCombinedCommit:   "combined-commit",
	FilterCombineDrain:     "combine-drain",
	FilterCombineReject:    "combine-reject",
}

// String returns the stable schema name of the kind (docs/METRICS.md
// documents the enum; downstream tooling keys on these strings).
func (k FilterKind) String() string {
	if k < NumFilterKinds {
		return filterKindNames[k]
	}
	return "invalid"
}

// FilterKindByName returns the FilterKind with the given schema name.
func FilterKindByName(name string) (FilterKind, bool) {
	for k, n := range filterKindNames {
		if n == name {
			return FilterKind(k), true
		}
	}
	return 0, false
}

// RecordFilter accounts n occurrences of one filter/combining outcome.
// Batched (unlike RecordPolicy) because drivers fold whole per-transaction
// tallies at once.
func (r *Recorder) RecordFilter(k FilterKind, n uint64) {
	if r == nil || k >= NumFilterKinds || n == 0 {
		return
	}
	r.filterCount[k] += n
}

// FilterCount reports the recorded occurrences of one kind.
func (r *Recorder) FilterCount(k FilterKind) uint64 {
	if r == nil || k >= NumFilterKinds {
		return 0
	}
	return r.filterCount[k]
}

// FilterSnapshot is one signature-filter/group-commit counter.
type FilterSnapshot struct {
	// Kind is the schema name of the counter (FilterKind.String).
	Kind string `json:"kind"`
	// Count is the number of times the outcome fired.
	Count uint64 `json:"count"`
}
