package txds_test

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"rhnorec/internal/core"
	"rhnorec/internal/htm"
	"rhnorec/internal/mem"
	"rhnorec/internal/serial"
	"rhnorec/internal/tm"
	"rhnorec/internal/txds"
)

func newThread(t *testing.T) tm.Thread {
	t.Helper()
	return serial.New(mem.New(1 << 20)).NewThread()
}

func TestQueueFIFO(t *testing.T) {
	th := newThread(t)
	defer th.Close()
	if err := th.Run(func(tx tm.Tx) error {
		q := txds.NewQueue(tx)
		if _, ok := q.Pop(tx); ok {
			t.Error("Pop on empty queue succeeded")
		}
		for i := uint64(1); i <= 10; i++ {
			q.Push(tx, i)
		}
		if q.Size(tx) != 10 {
			t.Errorf("Size = %d, want 10", q.Size(tx))
		}
		for i := uint64(1); i <= 10; i++ {
			v, ok := q.Pop(tx)
			if !ok || v != i {
				t.Errorf("Pop = %d,%v want %d", v, ok, i)
			}
		}
		if q.Size(tx) != 0 {
			t.Errorf("Size = %d after draining", q.Size(tx))
		}
		// Refill after empty (tail reset path).
		q.Push(tx, 42)
		if v, ok := q.Pop(tx); !ok || v != 42 {
			t.Errorf("Pop after refill = %d,%v", v, ok)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestQueueForEachAndDispose(t *testing.T) {
	m := mem.New(1 << 16)
	th := serial.New(m).NewThread()
	defer th.Close()
	if err := th.Run(func(tx tm.Tx) error {
		q := txds.NewQueue(tx)
		for i := uint64(1); i <= 5; i++ {
			q.Push(tx, i)
		}
		var got []uint64
		q.ForEach(tx, func(v uint64) { got = append(got, v) })
		for i, v := range got {
			if v != uint64(i+1) {
				t.Errorf("ForEach[%d] = %d, want %d", i, v, i+1)
			}
		}
		if q.Size(tx) != 5 {
			t.Error("ForEach mutated the queue")
		}
		q.Dispose(tx)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	th.Close()
	if m.LiveBlocks() != 0 {
		t.Errorf("LiveBlocks = %d after Dispose and Close", m.LiveBlocks())
	}
}

func TestStackLIFO(t *testing.T) {
	th := newThread(t)
	defer th.Close()
	if err := th.Run(func(tx tm.Tx) error {
		s := txds.NewStack(tx)
		if _, ok := s.Pop(tx); ok {
			t.Error("Pop on empty stack succeeded")
		}
		for i := uint64(1); i <= 10; i++ {
			s.Push(tx, i)
		}
		if s.Size(tx) != 10 {
			t.Errorf("Size = %d, want 10", s.Size(tx))
		}
		for i := uint64(10); i >= 1; i-- {
			v, ok := s.Pop(tx)
			if !ok || v != i {
				t.Errorf("Pop = %d,%v want %d", v, ok, i)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestHashMapBasics(t *testing.T) {
	th := newThread(t)
	defer th.Close()
	if err := th.Run(func(tx tm.Tx) error {
		h := txds.NewHashMap(tx, 8)
		if _, ok := h.Get(tx, 1); ok {
			t.Error("Get on empty map succeeded")
		}
		if _, replaced := h.Put(tx, 1, 100); replaced {
			t.Error("fresh Put reported replaced")
		}
		if prev, replaced := h.Put(tx, 1, 200); !replaced || prev != 100 {
			t.Errorf("replace = %d,%v", prev, replaced)
		}
		if v, ok := h.Get(tx, 1); !ok || v != 200 {
			t.Errorf("Get = %d,%v", v, ok)
		}
		if cur, inserted := h.PutIfAbsent(tx, 1, 999); inserted || cur != 200 {
			t.Errorf("PutIfAbsent existing = %d,%v", cur, inserted)
		}
		if cur, inserted := h.PutIfAbsent(tx, 2, 300); !inserted || cur != 300 {
			t.Errorf("PutIfAbsent fresh = %d,%v", cur, inserted)
		}
		if h.Size(tx) != 2 {
			t.Errorf("Size = %d, want 2", h.Size(tx))
		}
		if v, ok := h.Delete(tx, 1); !ok || v != 200 {
			t.Errorf("Delete = %d,%v", v, ok)
		}
		if h.Contains(tx, 1) {
			t.Error("deleted key still present")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestHashMapCollisionsAndForEach(t *testing.T) {
	th := newThread(t)
	defer th.Close()
	if err := th.Run(func(tx tm.Tx) error {
		h := txds.NewHashMap(tx, 4) // force chains
		for k := uint64(0); k < 64; k++ {
			h.Put(tx, k, k*3)
		}
		seen := make(map[uint64]uint64)
		h.ForEach(tx, func(k, v uint64) { seen[k] = v })
		if len(seen) != 64 {
			t.Errorf("ForEach visited %d entries, want 64", len(seen))
		}
		for k, v := range seen {
			if v != k*3 {
				t.Errorf("entry %d = %d, want %d", k, v, k*3)
			}
		}
		// Delete middle-of-chain entries.
		for k := uint64(0); k < 64; k += 2 {
			if _, ok := h.Delete(tx, k); !ok {
				t.Errorf("Delete(%d) missed", k)
			}
		}
		if h.Size(tx) != 32 {
			t.Errorf("Size = %d, want 32", h.Size(tx))
		}
		for k := uint64(1); k < 64; k += 2 {
			if v, ok := h.Get(tx, k); !ok || v != k*3 {
				t.Errorf("survivor %d = %d,%v", k, v, ok)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickHashMapVsOracle(t *testing.T) {
	th := newThread(t)
	defer th.Close()
	var h txds.HashMap
	if err := th.Run(func(tx tm.Tx) error { h = txds.NewHashMap(tx, 16); return nil }); err != nil {
		t.Fatal(err)
	}
	oracle := make(map[uint64]uint64)
	f := func(k uint8, v uint64, del bool) bool {
		key := uint64(k)
		ok := true
		err := th.Run(func(tx tm.Tx) error {
			if del {
				got, found := h.Delete(tx, key)
				want, wfound := oracle[key]
				ok = found == wfound && (!found || got == want)
			} else {
				prev, replaced := h.Put(tx, key, v)
				want, wfound := oracle[key]
				ok = replaced == wfound && (!replaced || prev == want)
			}
			return nil
		})
		if err != nil {
			return false
		}
		if del {
			delete(oracle, key)
		} else {
			oracle[key] = v
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestConcurrentQueueConservation: pushes and pops over a hybrid TM
// conserve elements.
func TestConcurrentQueueConservation(t *testing.T) {
	m := mem.New(1 << 20)
	dev := htm.NewDevice(m, htm.Config{})
	dev.SetActiveThreads(4)
	sys := core.New(m, dev, tm.RetryPolicy{})
	setup := sys.NewThread()
	var q txds.Queue
	if err := setup.Run(func(tx tm.Tx) error { q = txds.NewQueue(tx); return nil }); err != nil {
		t.Fatal(err)
	}
	setup.Close()
	const threads, per = 4, 200
	var pushed, popped sync.Map
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := sys.NewThread()
			defer th.Close()
			rng := rand.New(rand.NewSource(int64(id)))
			for j := 0; j < per; j++ {
				if rng.Intn(2) == 0 {
					v := uint64(id)<<32 | uint64(j)
					_ = th.Run(func(tx tm.Tx) error { q.Push(tx, v); return nil })
					pushed.Store(v, true)
				} else {
					var v uint64
					var ok bool
					_ = th.Run(func(tx tm.Tx) error { v, ok = q.Pop(tx); return nil })
					if ok {
						if _, dup := popped.LoadOrStore(v, true); dup {
							t.Errorf("value %d popped twice", v)
						}
					}
				}
			}
		}(i)
	}
	wg.Wait()
	// Drain the queue; everything popped must have been pushed, exactly once.
	th := sys.NewThread()
	defer th.Close()
	for {
		var v uint64
		var ok bool
		if err := th.Run(func(tx tm.Tx) error { v, ok = q.Pop(tx); return nil }); err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if _, dup := popped.LoadOrStore(v, true); dup {
			t.Errorf("value %d popped twice (drain)", v)
		}
	}
	count := 0
	popped.Range(func(k, _ any) bool {
		if _, ok := pushed.Load(k); !ok {
			t.Errorf("popped value %v never pushed", k)
		}
		count++
		return true
	})
	pushCount := 0
	pushed.Range(func(any, any) bool { pushCount++; return true })
	if count != pushCount {
		t.Errorf("popped %d values, pushed %d", count, pushCount)
	}
}
