package txds_test

import (
	"math/rand"
	"sync"
	"testing"

	"rhnorec/internal/core"
	"rhnorec/internal/htm"
	"rhnorec/internal/linearize"
	"rhnorec/internal/mem"
	"rhnorec/internal/tm"
)

// TestOrderedLinearizability: concurrent histories over the skip list and
// sorted list must be linearizable against map semantics, on RH NOrec with
// a tiny HTM (all paths active).
func TestOrderedLinearizability(t *testing.T) {
	for _, k := range kinds() {
		t.Run(k.name, func(t *testing.T) {
			m := mem.New(1 << 21)
			dev := htm.NewDevice(m, htm.Config{ReadCapacityLines: 16, WriteCapacityLines: 8})
			dev.SetActiveThreads(4)
			sys := core.New(m, dev, tm.RetryPolicy{})
			setup := sys.NewThread()
			var head mem.Addr
			if err := setup.Run(func(tx tm.Tx) error {
				head = k.create(tx).Head()
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			setup.Close()
			rec := linearize.NewRecorder()
			const threads, ops, keys = 4, 80, 10
			var wg sync.WaitGroup
			for i := 0; i < threads; i++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					th := sys.NewThread()
					defer th.Close()
					om := k.attach(head)
					rng := rand.New(rand.NewSource(seed))
					for j := 0; j < ops; j++ {
						key := uint64(rng.Intn(keys))
						switch rng.Intn(3) {
						case 0:
							val := rng.Uint64() >> 1
							rec.Do(linearize.Put, key, val, func() (uint64, bool) {
								var prev uint64
								var replaced bool
								_ = th.Run(func(tx tm.Tx) error {
									prev, replaced = om.Put(tx, key, val)
									return nil
								})
								return prev, replaced
							})
						case 1:
							rec.Do(linearize.Get, key, 0, func() (uint64, bool) {
								var v uint64
								var ok bool
								_ = th.RunReadOnly(func(tx tm.Tx) error {
									v, ok = om.Get(tx, key)
									return nil
								})
								return v, ok
							})
						case 2:
							rec.Do(linearize.Delete, key, 0, func() (uint64, bool) {
								var v uint64
								var ok bool
								_ = th.Run(func(tx tm.Tx) error {
									v, ok = om.Delete(tx, key)
									return nil
								})
								return v, ok
							})
						}
					}
				}(int64(i + 21))
			}
			wg.Wait()
			res, err := linearize.CheckErr(rec.History())
			if err != nil {
				t.Fatal(err)
			}
			if !res.Linearizable {
				t.Errorf("%s history not linearizable (key %d)", k.name, res.FailedKey)
			}
		})
	}
}
