package txds

import (
	"fmt"

	"rhnorec/internal/mem"
	"rhnorec/internal/tm"
)

// SortedList is a transactional sorted singly-linked map — the classic
// linked-list TM microbenchmark, whose O(n) traversals make every
// transaction's read set proportional to the structure size (the opposite
// stress profile from the tree and skip list).
//
// Layout: header [first, size]; node [next, key, value].
type SortedList struct {
	head mem.Addr
}

const (
	liFirst = iota
	liSize
	liHeaderWords
)

const (
	lnNext = iota
	lnKey
	lnValue
	listNodeWords
)

// NewSortedList allocates an empty list inside the current transaction.
func NewSortedList(tx tm.Tx) SortedList {
	return SortedList{head: tx.Alloc(liHeaderWords)}
}

// AttachSortedList wraps a published list header.
func AttachSortedList(head mem.Addr) SortedList { return SortedList{head: head} }

// Head returns the list's header address for publication.
func (l SortedList) Head() mem.Addr { return l.head }

// Size returns the number of keys.
func (l SortedList) Size(tx tm.Tx) uint64 { return tx.Load(l.head + liSize) }

// locate returns the last node with key < target (or Nil if none) and the
// first node with key >= target (or Nil).
func (l SortedList) locate(tx tm.Tx, key uint64) (prev, cur mem.Addr) {
	cur = mem.Addr(tx.Load(l.head + liFirst))
	for cur != mem.Nil && tx.Load(cur+lnKey) < key {
		prev = cur
		cur = mem.Addr(tx.Load(cur + lnNext))
	}
	return prev, cur
}

// Get returns the value stored under key.
func (l SortedList) Get(tx tm.Tx, key uint64) (uint64, bool) {
	_, cur := l.locate(tx, key)
	if cur != mem.Nil && tx.Load(cur+lnKey) == key {
		return tx.Load(cur + lnValue), true
	}
	return 0, false
}

// Contains reports whether key is present.
func (l SortedList) Contains(tx tm.Tx, key uint64) bool {
	_, ok := l.Get(tx, key)
	return ok
}

// Put inserts or replaces the value under key, returning the previous
// value if one was replaced.
func (l SortedList) Put(tx tm.Tx, key, value uint64) (prev uint64, replaced bool) {
	p, cur := l.locate(tx, key)
	if cur != mem.Nil && tx.Load(cur+lnKey) == key {
		old := tx.Load(cur + lnValue)
		tx.Store(cur+lnValue, value)
		return old, true
	}
	n := tx.Alloc(listNodeWords)
	tx.Store(n+lnKey, key)
	tx.Store(n+lnValue, value)
	tx.Store(n+lnNext, uint64(cur))
	if p == mem.Nil {
		tx.Store(l.head+liFirst, uint64(n))
	} else {
		tx.Store(p+lnNext, uint64(n))
	}
	tx.Store(l.head+liSize, l.Size(tx)+1)
	return 0, false
}

// Delete removes key, returning its value if it was present.
func (l SortedList) Delete(tx tm.Tx, key uint64) (uint64, bool) {
	p, cur := l.locate(tx, key)
	if cur == mem.Nil || tx.Load(cur+lnKey) != key {
		return 0, false
	}
	val := tx.Load(cur + lnValue)
	next := tx.Load(cur + lnNext)
	if p == mem.Nil {
		tx.Store(l.head+liFirst, next)
	} else {
		tx.Store(p+lnNext, next)
	}
	tx.Store(l.head+liSize, l.Size(tx)-1)
	tx.Free(cur, listNodeWords)
	return val, true
}

// Keys returns the keys in ascending order.
func (l SortedList) Keys(tx tm.Tx) []uint64 {
	var out []uint64
	for n := mem.Addr(tx.Load(l.head + liFirst)); n != mem.Nil; n = mem.Addr(tx.Load(n + lnNext)) {
		out = append(out, tx.Load(n+lnKey))
	}
	return out
}

// CheckInvariants verifies strict ordering and the size counter.
func (l SortedList) CheckInvariants(tx tm.Tx) error {
	count := uint64(0)
	var lastKey uint64
	first := true
	for n := mem.Addr(tx.Load(l.head + liFirst)); n != mem.Nil; n = mem.Addr(tx.Load(n + lnNext)) {
		k := tx.Load(n + lnKey)
		if !first && k <= lastKey {
			return errOrder(k, lastKey)
		}
		lastKey, first = k, false
		count++
	}
	if got := l.Size(tx); got != count {
		return errSize(got, count)
	}
	return nil
}

// Shared error constructors for the ordered structures.

func errOrder(k, last uint64) error {
	return fmt.Errorf("txds: ordering violated (%d after %d)", k, last)
}

func errSize(counter, reachable uint64) error {
	return fmt.Errorf("txds: size counter %d but %d nodes reachable", counter, reachable)
}

func errLevel(k, lvl uint64) error {
	return fmt.Errorf("txds: node %d has inconsistent level %d", k, lvl)
}

func errTower(k uint64, l int) error {
	return fmt.Errorf("txds: node %d present at level %d above its tower", k, l)
}
