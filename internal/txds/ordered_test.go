package txds_test

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"rhnorec/internal/core"
	"rhnorec/internal/htm"
	"rhnorec/internal/mem"
	"rhnorec/internal/serial"
	"rhnorec/internal/tm"
	"rhnorec/internal/txds"
)

// orderedMap is the common surface of SkipList and SortedList, letting one
// test body cover both.
type orderedMap interface {
	Get(tx tm.Tx, key uint64) (uint64, bool)
	Put(tx tm.Tx, key, value uint64) (uint64, bool)
	Delete(tx tm.Tx, key uint64) (uint64, bool)
	Size(tx tm.Tx) uint64
	Keys(tx tm.Tx) []uint64
	CheckInvariants(tx tm.Tx) error
	Head() mem.Addr
}

type orderedKind struct {
	name   string
	create func(tx tm.Tx) orderedMap
	attach func(head mem.Addr) orderedMap
}

func kinds() []orderedKind {
	return []orderedKind{
		{"skiplist",
			func(tx tm.Tx) orderedMap { return txds.NewSkipList(tx) },
			func(h mem.Addr) orderedMap { return txds.AttachSkipList(h) }},
		{"sortedlist",
			func(tx tm.Tx) orderedMap { return txds.NewSortedList(tx) },
			func(h mem.Addr) orderedMap { return txds.AttachSortedList(h) }},
	}
}

func TestOrderedBasics(t *testing.T) {
	for _, k := range kinds() {
		t.Run(k.name, func(t *testing.T) {
			th := serial.New(mem.New(1 << 20)).NewThread()
			defer th.Close()
			if err := th.Run(func(tx tm.Tx) error {
				m := k.create(tx)
				if _, ok := m.Get(tx, 5); ok {
					t.Error("Get on empty structure succeeded")
				}
				for _, key := range []uint64{5, 1, 9, 3, 7, 2, 8} {
					if _, replaced := m.Put(tx, key, key*10); replaced {
						t.Errorf("fresh Put(%d) reported replaced", key)
					}
				}
				if prev, replaced := m.Put(tx, 5, 555); !replaced || prev != 50 {
					t.Errorf("replace = %d,%v", prev, replaced)
				}
				if m.Size(tx) != 7 {
					t.Errorf("Size = %d, want 7", m.Size(tx))
				}
				keys := m.Keys(tx)
				if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
					t.Errorf("Keys not sorted: %v", keys)
				}
				if v, ok := m.Delete(tx, 3); !ok || v != 30 {
					t.Errorf("Delete(3) = %d,%v", v, ok)
				}
				if _, ok := m.Delete(tx, 3); ok {
					t.Error("double delete succeeded")
				}
				if _, ok := m.Delete(tx, 1); !ok { // head deletion
					t.Error("head delete failed")
				}
				if _, ok := m.Delete(tx, 9); !ok { // tail deletion
					t.Error("tail delete failed")
				}
				return m.CheckInvariants(tx)
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestOrderedDifferentialVsMapOracle(t *testing.T) {
	for _, k := range kinds() {
		t.Run(k.name, func(t *testing.T) {
			th := serial.New(mem.New(1 << 21)).NewThread()
			defer th.Close()
			var m orderedMap
			if err := th.Run(func(tx tm.Tx) error { m = k.create(tx); return nil }); err != nil {
				t.Fatal(err)
			}
			oracle := make(map[uint64]uint64)
			rng := rand.New(rand.NewSource(11))
			for i := 0; i < 3000; i++ {
				key := uint64(rng.Intn(128))
				v := rng.Uint64()
				op := rng.Intn(3)
				if err := th.Run(func(tx tm.Tx) error {
					switch op {
					case 0:
						prev, replaced := m.Put(tx, key, v)
						want, ok := oracle[key]
						if replaced != ok || (ok && prev != want) {
							t.Fatalf("iter %d: Put mismatch", i)
						}
					case 1:
						got, ok := m.Get(tx, key)
						want, wok := oracle[key]
						if ok != wok || (ok && got != want) {
							t.Fatalf("iter %d: Get mismatch", i)
						}
					case 2:
						got, ok := m.Delete(tx, key)
						want, wok := oracle[key]
						if ok != wok || (ok && got != want) {
							t.Fatalf("iter %d: Delete mismatch", i)
						}
					}
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				switch op {
				case 0:
					oracle[key] = v
				case 2:
					delete(oracle, key)
				}
				if i%500 == 0 {
					if err := th.Run(func(tx tm.Tx) error { return m.CheckInvariants(tx) }); err != nil {
						t.Fatalf("iter %d: %v", i, err)
					}
				}
			}
		})
	}
}

func TestOrderedQuickInsertDelete(t *testing.T) {
	for _, k := range kinds() {
		t.Run(k.name, func(t *testing.T) {
			f := func(keys []uint16) bool {
				th := serial.New(mem.New(1 << 21)).NewThread()
				defer th.Close()
				ok := true
				_ = th.Run(func(tx tm.Tx) error {
					m := k.create(tx)
					distinct := map[uint64]bool{}
					for _, key := range keys {
						m.Put(tx, uint64(key), 1)
						distinct[uint64(key)] = true
					}
					if m.Size(tx) != uint64(len(distinct)) {
						ok = false
					}
					if m.CheckInvariants(tx) != nil {
						ok = false
					}
					i := 0
					for key := range distinct {
						if i%2 == 0 {
							if _, found := m.Delete(tx, key); !found {
								ok = false
							}
						}
						i++
					}
					if m.CheckInvariants(tx) != nil {
						ok = false
					}
					return nil
				})
				return ok
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestSkipListMinAndRange(t *testing.T) {
	th := serial.New(mem.New(1 << 20)).NewThread()
	defer th.Close()
	if err := th.Run(func(tx tm.Tx) error {
		s := txds.NewSkipList(tx)
		if _, _, ok := s.Min(tx); ok {
			t.Error("Min on empty skip list returned ok")
		}
		for _, k := range []uint64{40, 10, 30, 20, 50} {
			s.Put(tx, k, k+1)
		}
		if k, v, ok := s.Min(tx); !ok || k != 10 || v != 11 {
			t.Errorf("Min = %d,%d,%v", k, v, ok)
		}
		var got []uint64
		s.Range(tx, 20, 40, func(k, v uint64) bool {
			if v != k+1 {
				t.Errorf("Range value for %d = %d", k, v)
			}
			got = append(got, k)
			return true
		})
		if len(got) != 3 || got[0] != 20 || got[2] != 40 {
			t.Errorf("Range keys = %v, want [20 30 40]", got)
		}
		count := 0
		s.Range(tx, 0, 100, func(uint64, uint64) bool { count++; return false })
		if count != 1 {
			t.Errorf("early-stop Range visited %d, want 1", count)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestOrderedConcurrentOverHybrid(t *testing.T) {
	for _, k := range kinds() {
		t.Run(k.name, func(t *testing.T) {
			m := mem.New(1 << 21)
			dev := htm.NewDevice(m, htm.Config{})
			dev.SetActiveThreads(4)
			sys := core.New(m, dev, tm.RetryPolicy{})
			setup := sys.NewThread()
			var head mem.Addr
			if err := setup.Run(func(tx tm.Tx) error {
				om := k.create(tx)
				for key := uint64(0); key < 32; key++ {
					om.Put(tx, key*2, key)
				}
				head = om.Head()
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			setup.Close()
			var wg sync.WaitGroup
			for i := 0; i < 4; i++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					th := sys.NewThread()
					defer th.Close()
					om := k.attach(head)
					rng := rand.New(rand.NewSource(seed))
					for j := 0; j < 200; j++ {
						key := uint64(rng.Intn(64))
						switch rng.Intn(4) {
						case 0:
							_ = th.Run(func(tx tm.Tx) error { om.Put(tx, key, key); return nil })
						case 1:
							_ = th.Run(func(tx tm.Tx) error { om.Delete(tx, key); return nil })
						default:
							_ = th.RunReadOnly(func(tx tm.Tx) error { om.Get(tx, key); return nil })
						}
					}
				}(int64(i + 5))
			}
			wg.Wait()
			check := sys.NewThread()
			defer check.Close()
			if err := check.Run(func(tx tm.Tx) error { return k.attach(head).CheckInvariants(tx) }); err != nil {
				t.Fatal(err)
			}
		})
	}
}
