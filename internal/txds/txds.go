// Package txds provides small transactional data structures — FIFO queue,
// LIFO stack, and chained hash map — living entirely in transactional
// memory. The STAMP-style workloads (package stamp) compose them the way
// the original C applications compose their library structures.
//
// Like rbtree.Tree, every handle is an immutable value wrapping a header
// address, safe to share across threads; all mutable state is behind
// transactional loads and stores.
package txds

import (
	"rhnorec/internal/mem"
	"rhnorec/internal/tm"
)

// Queue is an unbounded FIFO queue of words.
//
// Layout: header [head, tail, size]; node [next, value].
type Queue struct {
	head mem.Addr
}

const (
	qHead = iota
	qTail
	qSize
	qHeaderWords
)

const (
	nNext = iota
	nValue
	nodeWords
)

// NewQueue allocates an empty queue inside the current transaction.
func NewQueue(tx tm.Tx) Queue {
	return Queue{head: tx.Alloc(qHeaderWords)}
}

// AttachQueue wraps an existing queue header.
func AttachQueue(head mem.Addr) Queue { return Queue{head: head} }

// Head returns the queue's header address for publication.
func (q Queue) Head() mem.Addr { return q.head }

// Size returns the number of queued values.
func (q Queue) Size(tx tm.Tx) uint64 { return tx.Load(q.head + qSize) }

// Push appends v at the tail.
func (q Queue) Push(tx tm.Tx, v uint64) {
	n := tx.Alloc(nodeWords)
	tx.Store(n+nValue, v)
	tail := mem.Addr(tx.Load(q.head + qTail))
	if tail == mem.Nil {
		tx.Store(q.head+qHead, uint64(n))
	} else {
		tx.Store(tail+nNext, uint64(n))
	}
	tx.Store(q.head+qTail, uint64(n))
	tx.Store(q.head+qSize, q.Size(tx)+1)
}

// Pop removes and returns the head value.
func (q Queue) Pop(tx tm.Tx) (uint64, bool) {
	h := mem.Addr(tx.Load(q.head + qHead))
	if h == mem.Nil {
		return 0, false
	}
	v := tx.Load(h + nValue)
	next := tx.Load(h + nNext)
	tx.Store(q.head+qHead, next)
	if next == 0 {
		tx.Store(q.head+qTail, 0)
	}
	tx.Store(q.head+qSize, q.Size(tx)-1)
	tx.Free(h, nodeWords)
	return v, true
}

// ForEach visits the queued values from head to tail without removing
// them.
func (q Queue) ForEach(tx tm.Tx, visit func(v uint64)) {
	for n := mem.Addr(tx.Load(q.head + qHead)); n != mem.Nil; n = mem.Addr(tx.Load(n + nNext)) {
		visit(tx.Load(n + nValue))
	}
}

// Dispose frees the queue's memory: any remaining nodes and the header.
// The handle must not be used afterwards.
func (q Queue) Dispose(tx tm.Tx) {
	for {
		if _, ok := q.Pop(tx); !ok {
			break
		}
	}
	tx.Free(q.head, qHeaderWords)
}

// Stack is an unbounded LIFO stack of words.
//
// Layout: header [top, size]; node [next, value].
type Stack struct {
	head mem.Addr
}

const (
	sTop = iota
	sSize
	sHeaderWords
)

// NewStack allocates an empty stack inside the current transaction.
func NewStack(tx tm.Tx) Stack {
	return Stack{head: tx.Alloc(sHeaderWords)}
}

// AttachStack wraps an existing stack header.
func AttachStack(head mem.Addr) Stack { return Stack{head: head} }

// Head returns the stack's header address for publication.
func (s Stack) Head() mem.Addr { return s.head }

// Size returns the number of stacked values.
func (s Stack) Size(tx tm.Tx) uint64 { return tx.Load(s.head + sSize) }

// Push pushes v.
func (s Stack) Push(tx tm.Tx, v uint64) {
	n := tx.Alloc(nodeWords)
	tx.Store(n+nValue, v)
	tx.Store(n+nNext, tx.Load(s.head+sTop))
	tx.Store(s.head+sTop, uint64(n))
	tx.Store(s.head+sSize, s.Size(tx)+1)
}

// Pop removes and returns the top value.
func (s Stack) Pop(tx tm.Tx) (uint64, bool) {
	top := mem.Addr(tx.Load(s.head + sTop))
	if top == mem.Nil {
		return 0, false
	}
	v := tx.Load(top + nValue)
	tx.Store(s.head+sTop, tx.Load(top+nNext))
	tx.Store(s.head+sSize, s.Size(tx)-1)
	tx.Free(top, nodeWords)
	return v, true
}

// ForEach visits the stacked values from top to bottom without removing
// them.
func (s Stack) ForEach(tx tm.Tx, visit func(v uint64)) {
	for n := mem.Addr(tx.Load(s.head + sTop)); n != mem.Nil; n = mem.Addr(tx.Load(n + nNext)) {
		visit(tx.Load(n + nValue))
	}
}

// Dispose frees the stack's memory: any remaining nodes and the header.
// The handle must not be used afterwards.
func (s Stack) Dispose(tx tm.Tx) {
	for {
		if _, ok := s.Pop(tx); !ok {
			break
		}
	}
	tx.Free(s.head, sHeaderWords)
}

// HashMap is a fixed-bucket chained hash map from word keys to word values.
//
// Layout: header [nbuckets, size, bucket0, bucket1, ...]; node
// [next, key, value].
type HashMap struct {
	head mem.Addr
}

const (
	hBuckets = iota
	hSize
	hTable // first bucket slot
)

const (
	hnNext = iota
	hnKey
	hnValue
	hashNodeWords
)

// NewHashMap allocates a hash map with nbuckets chains (rounded up to a
// power of two, minimum 4) inside the current transaction.
func NewHashMap(tx tm.Tx, nbuckets int) HashMap {
	n := 4
	for n < nbuckets {
		n <<= 1
	}
	h := tx.Alloc(hTable + n)
	tx.Store(h+hBuckets, uint64(n))
	return HashMap{head: h}
}

// AttachHashMap wraps an existing map header.
func AttachHashMap(head mem.Addr) HashMap { return HashMap{head: head} }

// Head returns the map's header address for publication.
func (h HashMap) Head() mem.Addr { return h.head }

// Size returns the number of entries.
func (h HashMap) Size(tx tm.Tx) uint64 { return tx.Load(h.head + hSize) }

// mix is a Fibonacci-hash scrambler.
func mix(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	return k
}

func (h HashMap) bucket(tx tm.Tx, key uint64) mem.Addr {
	n := tx.Load(h.head + hBuckets)
	return h.head + hTable + mem.Addr(mix(key)&(n-1))
}

// Get returns the value under key.
func (h HashMap) Get(tx tm.Tx, key uint64) (uint64, bool) {
	b := h.bucket(tx, key)
	for n := mem.Addr(tx.Load(b)); n != mem.Nil; n = mem.Addr(tx.Load(n + hnNext)) {
		if tx.Load(n+hnKey) == key {
			return tx.Load(n + hnValue), true
		}
	}
	return 0, false
}

// Contains reports whether key is present.
func (h HashMap) Contains(tx tm.Tx, key uint64) bool {
	_, ok := h.Get(tx, key)
	return ok
}

// Put inserts or replaces the value under key, returning the previous value
// if one was replaced.
func (h HashMap) Put(tx tm.Tx, key, value uint64) (prev uint64, replaced bool) {
	b := h.bucket(tx, key)
	for n := mem.Addr(tx.Load(b)); n != mem.Nil; n = mem.Addr(tx.Load(n + hnNext)) {
		if tx.Load(n+hnKey) == key {
			old := tx.Load(n + hnValue)
			tx.Store(n+hnValue, value)
			return old, true
		}
	}
	n := tx.Alloc(hashNodeWords)
	tx.Store(n+hnKey, key)
	tx.Store(n+hnValue, value)
	tx.Store(n+hnNext, tx.Load(b))
	tx.Store(b, uint64(n))
	tx.Store(h.head+hSize, h.Size(tx)+1)
	return 0, false
}

// PutIfAbsent inserts value under key only if the key is new; it returns
// the value now in the map and whether this call inserted it.
func (h HashMap) PutIfAbsent(tx tm.Tx, key, value uint64) (cur uint64, inserted bool) {
	if v, ok := h.Get(tx, key); ok {
		return v, false
	}
	h.Put(tx, key, value)
	return value, true
}

// Delete removes key, returning its value if it was present.
func (h HashMap) Delete(tx tm.Tx, key uint64) (uint64, bool) {
	b := h.bucket(tx, key)
	prev := mem.Nil
	for n := mem.Addr(tx.Load(b)); n != mem.Nil; n = mem.Addr(tx.Load(n + hnNext)) {
		if tx.Load(n+hnKey) == key {
			v := tx.Load(n + hnValue)
			next := tx.Load(n + hnNext)
			if prev == mem.Nil {
				tx.Store(b, next)
			} else {
				tx.Store(prev+hnNext, next)
			}
			tx.Store(h.head+hSize, h.Size(tx)-1)
			tx.Free(n, hashNodeWords)
			return v, true
		}
		prev = n
	}
	return 0, false
}

// ForEach visits every entry (in arbitrary order) inside the transaction.
func (h HashMap) ForEach(tx tm.Tx, visit func(key, value uint64)) {
	n := tx.Load(h.head + hBuckets)
	for i := mem.Addr(0); i < mem.Addr(n); i++ {
		for e := mem.Addr(tx.Load(h.head + hTable + i)); e != mem.Nil; e = mem.Addr(tx.Load(e + hnNext)) {
			visit(tx.Load(e+hnKey), tx.Load(e+hnValue))
		}
	}
}
