package txds

import (
	"rhnorec/internal/mem"
	"rhnorec/internal/tm"
)

// SkipList is a transactional ordered map, the other classic TM
// microbenchmark structure besides the red-black tree. Compared to the
// tree, its transactions read long "towers" near the head and write very
// locally, giving a different conflict profile for the same operation mix.
//
// A node's level is derived deterministically from its key's hash, so a
// restarted transaction re-creates exactly the same structure (and the
// expected ~2-node search cost per level holds for random keys).
//
// Layout: header [headNode, size]; node [key, value, level, next0..next{L-1}].
type SkipList struct {
	head mem.Addr
}

// MaxLevel bounds skip-list towers.
const MaxLevel = 16

const (
	slHead = iota
	slSize
	slHeaderWords
)

const (
	snKey = iota
	snValue
	snLevel
	snNext // first of level words
)

// levelOf derives a node level in [1, MaxLevel] from the key (p = 1/2).
func levelOf(key uint64) int {
	h := mix(key ^ 0xabcdef12345)
	l := 1
	for h&1 == 1 && l < MaxLevel {
		l++
		h >>= 1
	}
	return l
}

// NewSkipList allocates an empty skip list inside the current transaction.
func NewSkipList(tx tm.Tx) SkipList {
	h := tx.Alloc(slHeaderWords)
	sentinel := tx.Alloc(snNext + MaxLevel)
	tx.Store(sentinel+snLevel, MaxLevel)
	tx.Store(h+slHead, uint64(sentinel))
	return SkipList{head: h}
}

// AttachSkipList wraps a published skip-list header.
func AttachSkipList(head mem.Addr) SkipList { return SkipList{head: head} }

// Head returns the list's header address for publication.
func (s SkipList) Head() mem.Addr { return s.head }

// Size returns the number of keys.
func (s SkipList) Size(tx tm.Tx) uint64 { return tx.Load(s.head + slSize) }

func (s SkipList) sentinel(tx tm.Tx) mem.Addr { return mem.Addr(tx.Load(s.head + slHead)) }

// findPreds fills preds with the rightmost node before key at every level
// and returns the candidate node at level 0 (which may be the match).
func (s SkipList) findPreds(tx tm.Tx, key uint64, preds *[MaxLevel]mem.Addr) mem.Addr {
	x := s.sentinel(tx)
	for l := MaxLevel - 1; l >= 0; l-- {
		for {
			next := mem.Addr(tx.Load(x + snNext + mem.Addr(l)))
			if next == mem.Nil || tx.Load(next+snKey) >= key {
				break
			}
			x = next
		}
		preds[l] = x
	}
	return mem.Addr(tx.Load(x + snNext))
}

// Get returns the value stored under key.
func (s SkipList) Get(tx tm.Tx, key uint64) (uint64, bool) {
	var preds [MaxLevel]mem.Addr
	n := s.findPreds(tx, key, &preds)
	if n != mem.Nil && tx.Load(n+snKey) == key {
		return tx.Load(n + snValue), true
	}
	return 0, false
}

// Contains reports whether key is present.
func (s SkipList) Contains(tx tm.Tx, key uint64) bool {
	_, ok := s.Get(tx, key)
	return ok
}

// Put inserts or replaces the value under key, returning the previous
// value if one was replaced.
func (s SkipList) Put(tx tm.Tx, key, value uint64) (prev uint64, replaced bool) {
	var preds [MaxLevel]mem.Addr
	n := s.findPreds(tx, key, &preds)
	if n != mem.Nil && tx.Load(n+snKey) == key {
		old := tx.Load(n + snValue)
		tx.Store(n+snValue, value)
		return old, true
	}
	level := levelOf(key)
	node := tx.Alloc(snNext + level)
	tx.Store(node+snKey, key)
	tx.Store(node+snValue, value)
	tx.Store(node+snLevel, uint64(level))
	for l := 0; l < level; l++ {
		tx.Store(node+snNext+mem.Addr(l), tx.Load(preds[l]+snNext+mem.Addr(l)))
		tx.Store(preds[l]+snNext+mem.Addr(l), uint64(node))
	}
	tx.Store(s.head+slSize, s.Size(tx)+1)
	return 0, false
}

// Delete removes key, returning its value if it was present.
func (s SkipList) Delete(tx tm.Tx, key uint64) (uint64, bool) {
	var preds [MaxLevel]mem.Addr
	n := s.findPreds(tx, key, &preds)
	if n == mem.Nil || tx.Load(n+snKey) != key {
		return 0, false
	}
	val := tx.Load(n + snValue)
	level := int(tx.Load(n + snLevel))
	for l := 0; l < level; l++ {
		if mem.Addr(tx.Load(preds[l]+snNext+mem.Addr(l))) == n {
			tx.Store(preds[l]+snNext+mem.Addr(l), tx.Load(n+snNext+mem.Addr(l)))
		}
	}
	tx.Store(s.head+slSize, s.Size(tx)-1)
	tx.Free(n, snNext+level)
	return val, true
}

// Min returns the smallest key and its value.
func (s SkipList) Min(tx tm.Tx) (key, value uint64, ok bool) {
	n := mem.Addr(tx.Load(s.sentinel(tx) + snNext))
	if n == mem.Nil {
		return 0, 0, false
	}
	return tx.Load(n + snKey), tx.Load(n + snValue), true
}

// Range visits every entry with lo <= key <= hi in ascending order; visit
// returning false stops the walk early.
func (s SkipList) Range(tx tm.Tx, lo, hi uint64, visit func(key, value uint64) bool) {
	var preds [MaxLevel]mem.Addr
	n := s.findPreds(tx, lo, &preds)
	for n != mem.Nil {
		k := tx.Load(n + snKey)
		if k > hi {
			return
		}
		if !visit(k, tx.Load(n+snValue)) {
			return
		}
		n = mem.Addr(tx.Load(n + snNext))
	}
}

// Keys returns the keys in ascending order (tests and examples).
func (s SkipList) Keys(tx tm.Tx) []uint64 {
	var out []uint64
	for n := mem.Addr(tx.Load(s.sentinel(tx) + snNext)); n != mem.Nil; n = mem.Addr(tx.Load(n + snNext)) {
		out = append(out, tx.Load(n+snKey))
	}
	return out
}

// CheckInvariants verifies level-0 ordering, tower consistency (every
// level-l link lands on a node of level > l and respects ordering), and the
// size counter.
func (s SkipList) CheckInvariants(tx tm.Tx) error {
	sent := s.sentinel(tx)
	count := uint64(0)
	var lastKey uint64
	first := true
	for n := mem.Addr(tx.Load(sent + snNext)); n != mem.Nil; n = mem.Addr(tx.Load(n + snNext)) {
		k := tx.Load(n + snKey)
		if !first && k <= lastKey {
			return errOrder(k, lastKey)
		}
		lvl := tx.Load(n + snLevel)
		if lvl == 0 || lvl > MaxLevel {
			return errLevel(k, lvl)
		}
		if want := uint64(levelOf(k)); lvl != want {
			return errLevel(k, lvl)
		}
		lastKey, first = k, false
		count++
	}
	for l := 1; l < MaxLevel; l++ {
		prevKey, started := uint64(0), false
		for n := mem.Addr(tx.Load(sent + snNext + mem.Addr(l))); n != mem.Nil; n = mem.Addr(tx.Load(n + snNext + mem.Addr(l))) {
			if uint64(l) >= tx.Load(n+snLevel) {
				return errTower(tx.Load(n+snKey), l)
			}
			k := tx.Load(n + snKey)
			if started && k <= prevKey {
				return errOrder(k, prevKey)
			}
			prevKey, started = k, true
		}
	}
	if got := s.Size(tx); got != count {
		return errSize(got, count)
	}
	return nil
}
