package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io/fs"

	"rhnorec/internal/mem"
)

const (
	checkpointName = "checkpoint"
	segPrefix      = "seg-"

	// ckptMagic is "RHCKPT01" as a little-endian u64.
	ckptMagic = uint64(0x313054504b434852)
)

// RecoveryStats reports what Open's boot-time recovery did.
type RecoveryStats struct {
	// CheckpointSeq is the sequence the loaded checkpoint already covered
	// (zero when no checkpoint existed).
	CheckpointSeq uint64 `json:"checkpoint_seq"`
	// Commits is the number of complete sequence numbers replayed from the
	// segments on top of the checkpoint.
	Commits uint64 `json:"commits"`
	// Records is the number of per-segment records those commits carried.
	Records uint64 `json:"records"`
	// TornTails counts segments whose tail bytes failed to parse (short or
	// checksum-corrupt) and were discarded.
	TornTails int `json:"torn_tails"`
	// Dropped counts parsed records discarded because their sequence lies
	// beyond the last consistent cut (a later commit outran a lost earlier
	// one, or a multi-segment commit lost a sibling record).
	Dropped uint64 `json:"dropped"`
	// Seq is the recovered sequence frontier: the state equals executing
	// commits 1..Seq, and new appends continue from Seq+1.
	Seq uint64 `json:"seq"`
}

// Open runs crash recovery over the backend and returns a Log ready for
// appends. apply stores one recovered word (typically mem.Memory.StorePlain)
// and read returns a word's current value (mem.Memory.LoadPlain); both are
// only called during Open, single-threaded, over [Lo, Hi).
//
// The boot protocol makes repeated crash-restart cycles idempotent:
//
//  1. load the checkpoint (atomic-replace file: whole or absent), apply its
//     image, note its sequence base;
//  2. scan every segment, drop torn/corrupt tails, group records by
//     sequence, and replay the longest consistent prefix above the base —
//     a sequence replays only if all its per-segment records survived;
//  3. write a fresh checkpoint of the recovered image, then truncate the
//     segments. Replay applies absolute values, so a crash between those
//     two steps just replays the same records onto the same image next boot.
func Open(opts Options, apply func(mem.Addr, uint64), read func(a mem.Addr) uint64) (*Log, RecoveryStats, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, RecoveryStats{}, err
	}
	b := opts.Backend
	stats, err := recoverState(b, opts.Lo, opts.Hi, apply)
	if err != nil {
		return nil, stats, err
	}
	if err := writeCheckpoint(b, opts.Lo, opts.Hi, stats.Seq, read); err != nil {
		return nil, stats, fmt.Errorf("persist: checkpoint: %w", err)
	}
	// Reset every segment that exists plus the ones this log will write.
	names, err := b.List(segPrefix)
	if err != nil {
		return nil, stats, err
	}
	reset := map[string]bool{}
	for _, n := range names {
		reset[n] = true
	}
	for s := 0; s < opts.Segments; s++ {
		reset[segName(s)] = true
	}
	for n := range reset {
		if err := b.WriteAtomic(n, nil); err != nil {
			return nil, stats, err
		}
	}
	l := &Log{
		b:         b,
		lo:        opts.Lo,
		hi:        opts.Hi,
		nseg:      opts.Segments,
		syncEvery: opts.SyncEveryAppend,
		onEvent:   opts.OnEvent,
		seq:       stats.Seq,
		bufs:      make([][]byte, opts.Segments),
		segPairs:  make([]int, opts.Segments),
		touched:   make([]int, 0, opts.Segments),
		segStart:  make([]int, opts.Segments),
		flush:     make([][]byte, opts.Segments),
		files:     make([]File, opts.Segments),
		recovery:  stats,
	}
	l.appended.Store(stats.Seq)
	l.durable.Store(stats.Seq)
	for s := 0; s < opts.Segments; s++ {
		f, err := b.OpenAppend(segName(s))
		if err != nil {
			return nil, stats, err
		}
		l.files[s] = f
	}
	return l, stats, nil
}

func segName(s int) string { return fmt.Sprintf("%s%03d.log", segPrefix, s) }

// segRecord is one parsed segment record (pairs alias the scanned buffer).
type segRecord struct {
	seq       uint64
	nsegments uint32
	npairs    uint32
	pairs     []byte
}

// recoverState performs steps 1–2 of the boot protocol.
func recoverState(b Backend, lo, hi mem.Addr, apply func(mem.Addr, uint64)) (RecoveryStats, error) {
	var stats RecoveryStats
	base, err := loadCheckpoint(b, lo, hi, apply)
	if err != nil {
		return stats, err
	}
	stats.CheckpointSeq = base
	stats.Seq = base

	names, err := b.List(segPrefix)
	if err != nil {
		return stats, err
	}
	groups := map[uint64][]segRecord{}
	for _, name := range names {
		data, err := b.ReadFile(name)
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				continue
			}
			return stats, err
		}
		recs, torn := scanSegment(data)
		if torn {
			stats.TornTails++
		}
		for _, r := range recs {
			if r.seq <= base {
				// Already covered by the checkpoint: a crash between
				// checkpoint write and segment truncate leaves these behind.
				continue
			}
			groups[r.seq] = append(groups[r.seq], r)
		}
	}

	// The consistent cut: the longest run of sequences base+1, base+2, ...
	// where every sequence has all of its per-segment records.
	cut := base
	for {
		g, ok := groups[cut+1]
		if !ok || !complete(g) {
			break
		}
		cut++
	}
	for seq := base + 1; seq <= cut; seq++ {
		for _, r := range groups[seq] {
			if err := replayRecord(r, lo, hi, apply); err != nil {
				return stats, err
			}
			stats.Records++
		}
		stats.Commits++
	}
	for seq, g := range groups {
		if seq > cut {
			stats.Dropped += uint64(len(g))
		}
	}
	stats.Seq = cut
	return stats, nil
}

// complete reports whether a sequence's record group is whole: every record
// agrees on the segment count and all of them are present.
func complete(g []segRecord) bool {
	want := g[0].nsegments
	if uint32(len(g)) != want {
		return false
	}
	for _, r := range g {
		if r.nsegments != want {
			return false
		}
	}
	return true
}

// scanSegment parses records until the data runs out or stops verifying;
// torn reports whether unparseable tail bytes were discarded.
func scanSegment(data []byte) (recs []segRecord, torn bool) {
	off := 0
	for off < len(data) {
		rest := data[off:]
		if len(rest) < 4 {
			return recs, true
		}
		size := binary.LittleEndian.Uint32(rest)
		if size < recHeadBytes+recSumBytes || uint64(size) > uint64(len(rest)-4) {
			return recs, true
		}
		payload := rest[4 : 4+size-recSumBytes]
		sum := binary.LittleEndian.Uint64(rest[4+size-recSumBytes : 4+size])
		if fnv64a(payload) != sum {
			return recs, true
		}
		npairs := binary.LittleEndian.Uint32(payload[24:])
		if uint64(recHeadBytes)+uint64(npairs)*recPairBytes+recSumBytes != uint64(size) {
			return recs, true
		}
		recs = append(recs, segRecord{
			seq:       binary.LittleEndian.Uint64(payload),
			nsegments: binary.LittleEndian.Uint32(payload[20:]),
			npairs:    npairs,
			pairs:     payload[recHeadBytes:],
		})
		off += 4 + int(size)
	}
	return recs, false
}

func replayRecord(r segRecord, lo, hi mem.Addr, apply func(mem.Addr, uint64)) error {
	for i := uint32(0); i < r.npairs; i++ {
		p := r.pairs[i*recPairBytes:]
		a := mem.Addr(binary.LittleEndian.Uint64(p))
		if a < lo || a >= hi {
			return fmt.Errorf("persist: recovered address %d outside range [%d,%d) — log written under a different layout?", a, lo, hi)
		}
		apply(a, binary.LittleEndian.Uint64(p[8:]))
	}
	return nil
}

// Checkpoint layout (little-endian): magic, lo, hi, seq, (hi-lo) values,
// FNV-64a checksum of everything preceding. Written only via WriteAtomic.
func writeCheckpoint(b Backend, lo, hi mem.Addr, seq uint64, read func(mem.Addr) uint64) error {
	data := make([]byte, 0, 32+(int(hi)-int(lo))*8+8)
	data = binary.LittleEndian.AppendUint64(data, ckptMagic)
	data = binary.LittleEndian.AppendUint64(data, uint64(lo))
	data = binary.LittleEndian.AppendUint64(data, uint64(hi))
	data = binary.LittleEndian.AppendUint64(data, seq)
	for a := lo; a < hi; a++ {
		data = binary.LittleEndian.AppendUint64(data, read(a))
	}
	data = binary.LittleEndian.AppendUint64(data, fnv64a(data))
	return b.WriteAtomic(checkpointName, data)
}

// loadCheckpoint applies the checkpoint image (if one exists) and returns
// its sequence base. A checkpoint that exists but fails validation is an
// error, not a skip: WriteAtomic can't tear, so corruption means operator
// trouble (wrong directory, changed key-space size) that silent zeroing
// would turn into data loss.
func loadCheckpoint(b Backend, lo, hi mem.Addr, apply func(mem.Addr, uint64)) (uint64, error) {
	data, err := b.ReadFile(checkpointName)
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	want := 32 + (int(hi)-int(lo))*8 + 8
	if len(data) != want {
		return 0, fmt.Errorf("persist: checkpoint is %d bytes, want %d — log written under a different layout?", len(data), want)
	}
	body, sum := data[:len(data)-8], binary.LittleEndian.Uint64(data[len(data)-8:])
	if fnv64a(body) != sum {
		return 0, fmt.Errorf("persist: checkpoint checksum mismatch")
	}
	if binary.LittleEndian.Uint64(body) != ckptMagic {
		return 0, fmt.Errorf("persist: bad checkpoint magic")
	}
	ckLo := mem.Addr(binary.LittleEndian.Uint64(body[8:]))
	ckHi := mem.Addr(binary.LittleEndian.Uint64(body[16:]))
	if ckLo != lo || ckHi != hi {
		return 0, fmt.Errorf("persist: checkpoint range [%d,%d) does not match configured [%d,%d)", ckLo, ckHi, lo, hi)
	}
	seq := binary.LittleEndian.Uint64(body[24:])
	vals := body[32:]
	for a := lo; a < hi; a++ {
		apply(a, binary.LittleEndian.Uint64(vals[(a-lo)*8:]))
	}
	return seq, nil
}
