// Package persist is the durable persistence plane behind internal/mem: a
// per-stripe redo log with group fsync, torn-write detection, and
// crash-recovery replay (DESIGN.md §15, docs/PERSIST.md).
//
// Committing transactions append their write sets through the mem.Persister
// hook; the log assigns each in-range commit a dense sequence number, splits
// its pairs into per-stripe segment buffers, and leaves flushing to the
// group-fsync path: WaitDurable batches every waiter behind one fsync pass
// per dirty segment, so durability costs one fsync group per commit *group*,
// not per transaction. The HTM fast path stays uninstrumented — its commits
// reach the log through the same software CommitWrites funnel as everyone
// else, which is the paper's fast-path/slow-path split carried into the
// durability plane.
//
// Recovery (Open) scans the segments, drops torn or corrupt tails via
// per-record checksums, requires every segment record of a multi-stripe
// commit to be present, and replays the longest consistent sequence prefix —
// so a crash can lose only un-acked suffix commits, never resurrect an
// aborted transaction, and never tear one in half.
package persist

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"rhnorec/internal/mem"
)

// DefaultSegments is the default per-stripe segment-file count.
const DefaultSegments = 8

// Event identifies one persistence yield point (the explore crash plane
// counts these to place deterministic crashes).
type Event uint8

const (
	// EventAppend fires after a commit's records are buffered (sequence
	// assigned, nothing durable yet).
	EventAppend Event = iota
	// EventSync fires after a group-fsync pass advances the durable frontier.
	EventSync
)

// Options parameterizes Open.
type Options struct {
	// Dir is the log directory; used when Backend is nil (FileBackend).
	Dir string
	// Backend overrides the byte store (tests, crash exploration).
	Backend Backend
	// Segments is the segment-file count (default DefaultSegments). Words
	// are line-interleaved across segments, mirroring the memory stripes.
	Segments int
	// Lo, Hi bound the persisted address range [Lo, Hi): only write entries
	// inside it are logged, so TM metadata words (the global clock, the
	// fallback counter) never spam the log or get replayed over a fresh
	// system's state.
	Lo, Hi mem.Addr
	// SyncEveryAppend fsyncs inside every Append — the fsync-per-commit
	// ablation (rhbench -persist sync).
	SyncEveryAppend bool
	// OnEvent, when set, observes every append and sync (explore crash
	// plane). Called outside the log's locks.
	OnEvent func(ev Event, seq uint64)
}

// Record layout (little-endian), one record per (commit, segment):
//
//	u32 size      — byte length of everything after this field
//	u64 seq       — dense per-log commit sequence number
//	u64 ticket    — the memory's global commit ticket at append (diagnostic)
//	u32 segment   — owning segment index
//	u32 nsegments — how many segment records this commit wrote in total
//	u32 npairs    — word pairs in this record
//	npairs × (u64 addr, u64 val)
//	u64 checksum  — FNV-64a over the payload (seq through the last pair)
//
// A commit touching k segments writes k records sharing one seq; recovery
// accepts a seq only when all nsegments records parse clean, so a crash that
// syncs some segments but not others cannot replay half a commit.
const (
	recHeadBytes = 8 + 8 + 4 + 4 + 4 // payload header: seq..npairs
	recPairBytes = 16
	recSumBytes  = 8
)

// Counters is a point-in-time copy of the log's ledger, surfaced in the
// rhserve.v1 dump (obs.PersistKind names the fields' metric vocabulary).
type Counters struct {
	// Appends counts logged commits (sequence numbers assigned).
	Appends uint64
	// Records counts per-segment records buffered.
	Records uint64
	// FsyncGroups counts group-fsync passes that flushed anything.
	FsyncGroups uint64
	// Fsyncs counts individual segment-file fsyncs.
	Fsyncs uint64
	// Appended and Durable are the log's two frontiers: the last assigned
	// sequence and the last sequence guaranteed on stable storage.
	Appended uint64
	Durable  uint64
	// Recovery holds the boot-time replay outcome.
	Recovery RecoveryStats
}

// Log is the append side of the persistence plane. It implements
// mem.Persister; construct with Open (which also runs recovery).
type Log struct {
	b         Backend
	lo, hi    mem.Addr
	nseg      int
	syncEvery bool
	onEvent   func(Event, uint64)

	// appendMu orders sequence assignment and buffer encoding; holding it is
	// the linearization point of persistence. Conflicting commits reach
	// Append while still holding their stripe locks (or the software clock
	// lock), so sequence order extends the TM's serialization order.
	appendMu sync.Mutex
	seq      uint64
	bufs     [][]byte
	segPairs []int
	touched  []int
	segStart []int

	appended atomic.Uint64
	durable  atomic.Uint64

	// syncMu serializes group-fsync passes. It is never held across a
	// scheduler yield point (syncLocked performs no memory-hook traffic), so
	// the cooperative explorer cannot park a worker that owns it.
	syncMu sync.Mutex
	flush  [][]byte
	files  []File

	errMu  sync.Mutex
	err    error
	closed bool

	nAppends     atomic.Uint64
	nRecords     atomic.Uint64
	nFsyncGroups atomic.Uint64
	nFsyncs      atomic.Uint64
	recovery     RecoveryStats
}

// segOf maps an address to its segment: line-interleaved, mirroring the
// memory's stripe interleaving.
func (l *Log) segOf(a mem.Addr) int {
	return int((uint64(a) / mem.LineWords) % uint64(l.nseg))
}

// Append implements mem.Persister: it buffers one redo record per touched
// segment for the in-range entries of writes, under a dense sequence number.
// Commits with no in-range entries produce no record and no sequence. Append
// never blocks on I/O unless SyncEveryAppend is set.
func (l *Log) Append(ticket uint64, writes []mem.WriteEntry) {
	any := false
	for i := range writes {
		if writes[i].Addr >= l.lo && writes[i].Addr < l.hi {
			any = true
			break
		}
	}
	if !any {
		return
	}
	l.appendMu.Lock()
	seq := l.seq + 1
	l.touched = l.touched[:0]
	for i := range writes {
		a := writes[i].Addr
		if a < l.lo || a >= l.hi {
			continue
		}
		s := l.segOf(a)
		if l.segPairs[s] == 0 {
			l.touched = append(l.touched, s)
		}
		l.segPairs[s]++
	}
	nsegments := len(l.touched)
	for _, s := range l.touched {
		np := l.segPairs[s]
		size := uint32(recHeadBytes + np*recPairBytes + recSumBytes)
		b := l.bufs[s]
		b = binary.LittleEndian.AppendUint32(b, size)
		l.segStart[s] = len(b)
		b = binary.LittleEndian.AppendUint64(b, seq)
		b = binary.LittleEndian.AppendUint64(b, ticket)
		b = binary.LittleEndian.AppendUint32(b, uint32(s))
		b = binary.LittleEndian.AppendUint32(b, uint32(nsegments))
		b = binary.LittleEndian.AppendUint32(b, uint32(np))
		l.bufs[s] = b
	}
	for i := range writes {
		a := writes[i].Addr
		if a < l.lo || a >= l.hi {
			continue
		}
		s := l.segOf(a)
		b := l.bufs[s]
		b = binary.LittleEndian.AppendUint64(b, uint64(a))
		b = binary.LittleEndian.AppendUint64(b, writes[i].Value)
		l.bufs[s] = b
	}
	for _, s := range l.touched {
		payload := l.bufs[s][l.segStart[s]:]
		l.bufs[s] = binary.LittleEndian.AppendUint64(l.bufs[s], fnv64a(payload))
		l.segPairs[s] = 0
	}
	l.seq = seq
	l.appended.Store(seq)
	l.appendMu.Unlock()
	l.nAppends.Add(1)
	l.nRecords.Add(uint64(nsegments))
	if l.onEvent != nil {
		l.onEvent(EventAppend, seq)
	}
	if l.syncEvery {
		l.syncMu.Lock()
		l.syncLocked()
		l.syncMu.Unlock()
		if l.onEvent != nil {
			l.onEvent(EventSync, l.durable.Load())
		}
	}
}

// Appended returns the last assigned sequence number: the frontier a
// durable-acking caller should WaitDurable on after its commit returns.
func (l *Log) Appended() uint64 { return l.appended.Load() }

// Durable returns the last sequence guaranteed on stable storage.
func (l *Log) Durable() uint64 { return l.durable.Load() }

// WaitDurable blocks until every append with sequence <= seq is durable,
// running a group-fsync pass if nobody else gets there first. Concurrent
// waiters batch: one pass flushes every dirty segment once and advances the
// durable frontier past all of them. It returns the log's sticky I/O error,
// if any.
func (l *Log) WaitDurable(seq uint64) error {
	if l.durable.Load() >= seq {
		return l.Err()
	}
	l.syncMu.Lock()
	synced := false
	for l.durable.Load() < seq {
		if err := l.Err(); err != nil {
			l.syncMu.Unlock()
			return err
		}
		l.syncLocked()
		synced = true
	}
	l.syncMu.Unlock()
	if synced && l.onEvent != nil {
		l.onEvent(EventSync, l.durable.Load())
	}
	return l.Err()
}

// Sync forces one group-fsync pass over everything appended so far.
func (l *Log) Sync() error { return l.WaitDurable(l.appended.Load()) }

// syncLocked (syncMu held) swaps out the append buffers and flushes every
// dirty segment with one write+fsync each, then advances the durable
// frontier to the sequence captured at the swap.
func (l *Log) syncLocked() {
	l.appendMu.Lock()
	target := l.seq
	for s := range l.bufs {
		if len(l.bufs[s]) > 0 {
			l.bufs[s], l.flush[s] = l.flush[s][:0], l.bufs[s]
		}
	}
	l.appendMu.Unlock()
	dirty := 0
	for s := range l.flush {
		if len(l.flush[s]) == 0 {
			continue
		}
		dirty++
		if err := l.files[s].Append(l.flush[s]); err != nil {
			l.fail(err)
			return
		}
		if err := l.files[s].Sync(); err != nil {
			l.fail(err)
			return
		}
		l.flush[s] = l.flush[s][:0]
	}
	if dirty > 0 {
		l.nFsyncGroups.Add(1)
		l.nFsyncs.Add(uint64(dirty))
	}
	l.durable.Store(target)
}

func (l *Log) fail(err error) {
	l.errMu.Lock()
	if l.err == nil {
		l.err = err
	}
	l.errMu.Unlock()
}

// Err returns the log's sticky I/O error (nil while healthy). Once set, the
// durable frontier stops advancing and durable acks fail.
func (l *Log) Err() error {
	l.errMu.Lock()
	defer l.errMu.Unlock()
	return l.err
}

// Close flushes and fsyncs everything appended, then closes the segment
// files. The memory's persister must be detached (or all committers drained)
// first.
func (l *Log) Close() error {
	l.errMu.Lock()
	if l.closed {
		l.errMu.Unlock()
		return errClosed
	}
	l.closed = true
	l.errMu.Unlock()
	l.syncMu.Lock()
	l.syncLocked()
	l.syncMu.Unlock()
	err := l.Err()
	for _, f := range l.files {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// CountersSnapshot copies the log's ledger.
func (l *Log) CountersSnapshot() Counters {
	return Counters{
		Appends:     l.nAppends.Load(),
		Records:     l.nRecords.Load(),
		FsyncGroups: l.nFsyncGroups.Load(),
		Fsyncs:      l.nFsyncs.Load(),
		Appended:    l.appended.Load(),
		Durable:     l.durable.Load(),
		Recovery:    l.recovery,
	}
}

// fnv64a is the record checksum: FNV-64a over p.
func fnv64a(p []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range p {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

func (o Options) withDefaults() (Options, error) {
	if o.Backend == nil {
		if o.Dir == "" {
			return o, fmt.Errorf("persist: Options needs Dir or Backend")
		}
		b, err := NewFileBackend(o.Dir)
		if err != nil {
			return o, err
		}
		o.Backend = b
	}
	if o.Segments <= 0 {
		o.Segments = DefaultSegments
	}
	if o.Hi < o.Lo {
		return o, fmt.Errorf("persist: inverted range [%d,%d)", o.Lo, o.Hi)
	}
	return o, nil
}
