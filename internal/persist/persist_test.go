package persist

import (
	"os"
	"path/filepath"
	"testing"

	"rhnorec/internal/mem"
)

// wordStore is a recovery target: a plain map standing in for the arena.
type wordStore map[mem.Addr]uint64

func (w wordStore) apply(a mem.Addr, v uint64) { w[a] = v }
func (w wordStore) read(a mem.Addr) uint64     { return w[a] }

func openStore(t *testing.T, opts Options, w wordStore) (*Log, RecoveryStats) {
	t.Helper()
	l, stats, err := Open(opts, w.apply, w.read)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, stats
}

func TestRoundTrip(t *testing.T) {
	b := NewMemBackend()
	opts := Options{Backend: b, Segments: 4, Lo: 8, Hi: 1024}
	w := wordStore{}
	l, stats := openStore(t, opts, w)
	if stats.Seq != 0 || stats.Commits != 0 {
		t.Fatalf("fresh log recovered stats %+v", stats)
	}
	l.Append(1, []mem.WriteEntry{{Addr: 8, Value: 100}, {Addr: 200, Value: 7}})
	l.Append(2, []mem.WriteEntry{{Addr: 8, Value: 101}})
	if got := l.Appended(); got != 2 {
		t.Fatalf("Appended = %d, want 2", got)
	}
	if err := l.WaitDurable(2); err != nil {
		t.Fatalf("WaitDurable: %v", err)
	}
	if got := l.Durable(); got != 2 {
		t.Fatalf("Durable = %d, want 2", got)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	w2 := wordStore{}
	l2, stats2 := openStore(t, opts, w2)
	defer l2.Close()
	if stats2.Seq != 2 || stats2.Commits != 2 {
		t.Fatalf("recovered stats %+v, want Seq=2 Commits=2", stats2)
	}
	if w2[8] != 101 || w2[200] != 7 {
		t.Fatalf("recovered state %v", w2)
	}
	// Appends continue above the recovered frontier.
	l2.Append(9, []mem.WriteEntry{{Addr: 16, Value: 5}})
	if got := l2.Appended(); got != 3 {
		t.Fatalf("post-recovery Appended = %d, want 3", got)
	}
}

func TestRangeFilter(t *testing.T) {
	b := NewMemBackend()
	w := wordStore{}
	l, _ := openStore(t, Options{Backend: b, Segments: 2, Lo: 64, Hi: 128}, w)
	defer l.Close()
	// Entirely out of range: no record, no sequence.
	l.Append(1, []mem.WriteEntry{{Addr: 8, Value: 1}, {Addr: 130, Value: 2}})
	if got := l.Appended(); got != 0 {
		t.Fatalf("out-of-range append assigned seq %d", got)
	}
	// Mixed: only the in-range entry is logged.
	l.Append(2, []mem.WriteEntry{{Addr: 8, Value: 1}, {Addr: 64, Value: 42}})
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	c := l.CountersSnapshot()
	if c.Appends != 1 || c.Records != 1 {
		t.Fatalf("counters %+v, want Appends=1 Records=1", c)
	}
	w2 := wordStore{}
	l2, stats := openStore(t, Options{Backend: b, Segments: 2, Lo: 64, Hi: 128}, w2)
	defer l2.Close()
	if stats.Commits != 1 || w2[64] != 42 {
		t.Fatalf("recovered %+v state %v", stats, w2)
	}
	if _, ok := w2[8]; ok {
		t.Fatalf("out-of-range address leaked into the log")
	}
}

func TestSyncEveryAppend(t *testing.T) {
	b := NewMemBackend()
	w := wordStore{}
	l, _ := openStore(t, Options{Backend: b, Segments: 2, Lo: 8, Hi: 64, SyncEveryAppend: true}, w)
	defer l.Close()
	l.Append(1, []mem.WriteEntry{{Addr: 8, Value: 1}})
	l.Append(2, []mem.WriteEntry{{Addr: 9, Value: 2}})
	if got := l.Durable(); got != 2 {
		t.Fatalf("Durable = %d, want 2 without any WaitDurable", got)
	}
	c := l.CountersSnapshot()
	if c.FsyncGroups != 2 {
		t.Fatalf("FsyncGroups = %d, want one per append", c.FsyncGroups)
	}
}

func TestGroupFsyncBatches(t *testing.T) {
	b := NewMemBackend()
	w := wordStore{}
	l, _ := openStore(t, Options{Backend: b, Segments: 1, Lo: 8, Hi: 64}, w)
	defer l.Close()
	for i := 0; i < 10; i++ {
		l.Append(uint64(i), []mem.WriteEntry{{Addr: 8, Value: uint64(i)}})
	}
	if err := l.WaitDurable(10); err != nil {
		t.Fatal(err)
	}
	c := l.CountersSnapshot()
	if c.FsyncGroups != 1 || c.Fsyncs != 1 {
		t.Fatalf("10 appends flushed with %d groups / %d fsyncs, want 1/1", c.FsyncGroups, c.Fsyncs)
	}
}

// TestCheckpointCycle: recovery rewrites the checkpoint and truncates the
// segments, so back-to-back restarts converge instead of re-replaying.
func TestCheckpointCycle(t *testing.T) {
	b := NewMemBackend()
	opts := Options{Backend: b, Segments: 2, Lo: 8, Hi: 64}
	w := wordStore{}
	l, _ := openStore(t, opts, w)
	l.Append(1, []mem.WriteEntry{{Addr: 8, Value: 11}, {Addr: 40, Value: 12}})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	for cycle := 0; cycle < 3; cycle++ {
		w2 := wordStore{}
		l2, stats := openStore(t, opts, w2)
		if stats.Seq != 1 {
			t.Fatalf("cycle %d: Seq = %d, want 1", cycle, stats.Seq)
		}
		if cycle > 0 && stats.Records != 0 {
			t.Fatalf("cycle %d replayed %d records; the checkpoint should have absorbed them", cycle, stats.Records)
		}
		if w2[8] != 11 || w2[40] != 12 {
			t.Fatalf("cycle %d state %v", cycle, w2)
		}
		if err := l2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// fileState recovers the on-disk dir into a fresh store and returns it with
// the stats.
func fileState(t *testing.T, dir string, lo, hi mem.Addr) (wordStore, RecoveryStats) {
	t.Helper()
	w := wordStore{}
	l, stats, err := Open(Options{Dir: dir, Segments: 1, Lo: lo, Hi: hi}, w.apply, w.read)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return w, stats
}

// TestTornTailEveryOffset truncates and bit-flips the last record of a
// segment at every byte offset and asserts recovery stops at the previous
// consistent commit instead of replaying garbage.
func TestTornTailEveryOffset(t *testing.T) {
	const (
		lo, hi  = mem.Addr(8), mem.Addr(64)
		commits = 3
	)
	master := t.TempDir()
	{
		w := wordStore{}
		l, _, err := Open(Options{Dir: master, Segments: 1, Lo: lo, Hi: hi}, w.apply, w.read)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= commits; i++ {
			l.Append(uint64(i), []mem.WriteEntry{
				{Addr: 8, Value: uint64(100 + i)},
				{Addr: 9, Value: uint64(200 + i)},
			})
		}
		if err := l.WaitDurable(uint64(commits)); err != nil {
			t.Fatal(err)
		}
		// Flush to disk but skip Close's truncation-free shutdown: copy the
		// raw files while the log is still "live".
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
	seg := filepath.Join(master, segName(0))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	ckpt, err := os.ReadFile(filepath.Join(master, checkpointName))
	if err != nil {
		t.Fatal(err)
	}
	if len(data)%commits != 0 {
		t.Fatalf("segment is %d bytes for %d equal records", len(data), commits)
	}
	recLen := len(data) / commits
	lastStart := len(data) - recLen

	check := func(t *testing.T, corrupted []byte, wantSeq uint64, wantTorn int) {
		t.Helper()
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, checkpointName), ckpt, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, segName(0)), corrupted, 0o644); err != nil {
			t.Fatal(err)
		}
		w, stats := fileState(t, dir, lo, hi)
		if stats.Seq != wantSeq {
			t.Fatalf("recovered to seq %d, want %d (stats %+v)", stats.Seq, wantSeq, stats)
		}
		if stats.TornTails != wantTorn {
			t.Fatalf("TornTails = %d, want %d", stats.TornTails, wantTorn)
		}
		if want := uint64(100 + wantSeq); w[8] != want {
			t.Fatalf("w[8] = %d, want %d (previous consistent commit)", w[8], want)
		}
		if want := uint64(200 + wantSeq); w[9] != want {
			t.Fatalf("w[9] = %d, want %d", w[9], want)
		}
	}

	t.Run("truncate", func(t *testing.T) {
		for cut := lastStart; cut < len(data); cut++ {
			torn := 0
			if cut > lastStart {
				torn = 1 // zero-length tails are clean, partial ones are torn
			}
			check(t, append([]byte(nil), data[:cut]...), commits-1, torn)
		}
	})
	t.Run("bitflip", func(t *testing.T) {
		for off := lastStart; off < len(data); off++ {
			mut := append([]byte(nil), data...)
			mut[off] ^= 0x40
			check(t, mut, commits-1, 1)
		}
	})
	t.Run("intact", func(t *testing.T) {
		check(t, data, commits, 0)
	})
}

// TestIncompleteMultiSegmentCommit: a commit whose records reached only some
// of its segments must not replay at all, and everything after it is cut.
func TestIncompleteMultiSegmentCommit(t *testing.T) {
	const lo, hi = mem.Addr(8), mem.Addr(1024)
	dir := t.TempDir()
	w := wordStore{}
	l, _, err := Open(Options{Dir: dir, Segments: 2, Lo: lo, Hi: hi}, w.apply, w.read)
	if err != nil {
		t.Fatal(err)
	}
	// Addresses 8 and 8+LineWords land on different segments.
	a0, a1 := mem.Addr(8), mem.Addr(8+mem.LineWords)
	s0 := segName(segOf8(a0))
	l.Append(1, []mem.WriteEntry{{Addr: a0, Value: 1}, {Addr: a1, Value: 2}})
	l.Append(2, []mem.WriteEntry{{Addr: a0, Value: 3}, {Addr: a1, Value: 4}})
	l.Append(3, []mem.WriteEntry{{Addr: a1, Value: 5}})
	if err := l.WaitDurable(3); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Strand commit 2: a0's segment holds exactly commit 1's and commit 2's
	// records (equal-sized); truncating it in half removes commit 2's record
	// on a clean boundary while its sibling record survives elsewhere.
	segA0 := filepath.Join(dir, s0)
	data, err := os.ReadFile(segA0)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segA0, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	w2, stats := fileState(t, dir, lo, hi)
	if stats.Seq != 1 {
		t.Fatalf("recovered to seq %d, want 1 (commit 2 incomplete)", stats.Seq)
	}
	if stats.Dropped != 2 {
		// Commit 2's surviving record + commit 3's record lie beyond the cut.
		t.Fatalf("Dropped = %d, want 2", stats.Dropped)
	}
	if w2[a0] != 1 || w2[a1] != 2 {
		t.Fatalf("state %v, want commit 1 only", w2)
	}
}

// segOf8 mirrors the log's two-segment stripe mapping for test addressing.
func segOf8(a mem.Addr) int {
	return int((uint64(a) / mem.LineWords) % 2)
}

// TestCrashSnapshotDeterministic: the mem backend's crash image is a pure
// function of the append/sync history.
func TestCrashSnapshotDeterministic(t *testing.T) {
	build := func() *MemBackend {
		b := NewMemBackend()
		w := wordStore{}
		l, _, err := Open(Options{Backend: b, Segments: 2, Lo: 8, Hi: 64}, w.apply, w.read)
		if err != nil {
			t.Fatal(err)
		}
		l.Append(1, []mem.WriteEntry{{Addr: 8, Value: 1}, {Addr: 16, Value: 2}})
		if err := l.WaitDurable(1); err != nil {
			t.Fatal(err)
		}
		l.Append(2, []mem.WriteEntry{{Addr: 8, Value: 3}})
		return b
	}
	s1, s2 := build().CrashSnapshot(), build().CrashSnapshot()
	names, err := s1.List("")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		d1, err1 := s1.ReadFile(n)
		d2, err2 := s2.ReadFile(n)
		if err1 != nil || err2 != nil {
			t.Fatalf("read %s: %v %v", n, err1, err2)
		}
		if string(d1) != string(d2) {
			t.Fatalf("crash snapshots diverge on %s", n)
		}
	}
	// The torn tail must recover to the synced frontier.
	w := wordStore{}
	l, stats, err := Open(Options{Backend: s1, Segments: 2, Lo: 8, Hi: 64}, w.apply, w.read)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if stats.Seq != 1 || w[8] != 1 || w[16] != 2 {
		t.Fatalf("crash recovery reached seq %d state %v, want synced commit 1", stats.Seq, w)
	}
}
