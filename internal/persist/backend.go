package persist

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Backend abstracts the durable byte store under a Log: a named-file surface
// small enough that the crash plane can implement it exactly. Two
// implementations ship: FileBackend (real files + fsync, production) and
// MemBackend (in-memory, for unit tests and the explore crash plane — it can
// snapshot its "disk" at a crash instant, keeping the synced prefix of every
// file plus a deterministic torn portion of the unsynced tail).
type Backend interface {
	// ReadFile returns name's full contents, or an error wrapping
	// fs.ErrNotExist when the file does not exist.
	ReadFile(name string) ([]byte, error)
	// WriteAtomic durably replaces name with data: after it returns, a crash
	// observes either the old contents or the new, never a mix.
	WriteAtomic(name string, data []byte) error
	// OpenAppend opens name for appending, creating it empty if absent.
	OpenAppend(name string) (File, error)
	// List returns the names (not paths) of existing files whose name starts
	// with prefix, sorted.
	List(prefix string) ([]string, error)
}

// File is one append-only log segment handle.
type File interface {
	// Append writes p at the end of the file. Durability is not implied.
	Append(p []byte) error
	// Sync makes every byte appended so far durable.
	Sync() error
	Close() error
}

// FileBackend stores files in one directory with real fsync barriers.
// WriteAtomic is temp-file + fsync + rename + directory fsync, the standard
// crash-safe replace.
type FileBackend struct{ dir string }

// NewFileBackend creates dir if needed and returns a backend rooted there.
func NewFileBackend(dir string) (*FileBackend, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &FileBackend{dir: dir}, nil
}

// Dir returns the backing directory.
func (b *FileBackend) Dir() string { return b.dir }

func (b *FileBackend) ReadFile(name string) ([]byte, error) {
	return os.ReadFile(filepath.Join(b.dir, name))
}

func (b *FileBackend) WriteAtomic(name string, data []byte) error {
	tmp := filepath.Join(b.dir, name+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(b.dir, name)); err != nil {
		return err
	}
	return b.syncDir()
}

// syncDir fsyncs the directory so a completed rename survives a crash.
func (b *FileBackend) syncDir() error {
	d, err := os.Open(b.dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

func (b *FileBackend) OpenAppend(name string) (File, error) {
	f, err := os.OpenFile(filepath.Join(b.dir, name), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (b *FileBackend) List(prefix string) ([]string, error) {
	entries, err := os.ReadDir(b.dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && len(e.Name()) >= len(prefix) && e.Name()[:len(prefix)] == prefix {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

type osFile struct{ f *os.File }

func (o osFile) Append(p []byte) error {
	_, err := o.f.Write(p)
	return err
}
func (o osFile) Sync() error  { return o.f.Sync() }
func (o osFile) Close() error { return o.f.Close() }

// MemBackend is an in-memory Backend that models the only disk property the
// recovery protocol relies on: a crash preserves every synced byte and an
// arbitrary prefix of the unsynced tail. CrashSnapshot freezes that state
// deterministically, which is what lets the explore crash plane replay the
// same crash from the same schedule.
type MemBackend struct {
	mu    sync.Mutex
	files map[string]*memFile
}

type memFile struct {
	data   []byte
	synced int
}

// NewMemBackend returns an empty in-memory backend.
func NewMemBackend() *MemBackend {
	return &MemBackend{files: map[string]*memFile{}}
}

func (b *MemBackend) ReadFile(name string) ([]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	f, ok := b.files[name]
	if !ok {
		return nil, fs.ErrNotExist
	}
	return append([]byte(nil), f.data...), nil
}

func (b *MemBackend) WriteAtomic(name string, data []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.files[name] = &memFile{data: append([]byte(nil), data...), synced: len(data)}
	return nil
}

func (b *MemBackend) OpenAppend(name string) (File, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	f, ok := b.files[name]
	if !ok {
		f = &memFile{}
		b.files[name] = f
	}
	return &memHandle{b: b, f: f}, nil
}

func (b *MemBackend) List(prefix string) ([]string, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	var names []string
	for name := range b.files {
		if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// CrashSnapshot returns a new backend holding what a crash at this instant
// would leave on disk: for every file, the synced prefix plus half of the
// unsynced tail (rounded down) — enough tearing to cut records mid-byte and
// strand multi-segment commits, while staying a pure function of the
// append/sync history so explored crashes replay deterministically.
func (b *MemBackend) CrashSnapshot() *MemBackend {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := NewMemBackend()
	for name, f := range b.files {
		keep := f.synced + (len(f.data)-f.synced)/2
		out.files[name] = &memFile{data: append([]byte(nil), f.data[:keep]...), synced: keep}
	}
	return out
}

type memHandle struct {
	b *MemBackend
	f *memFile
}

func (h *memHandle) Append(p []byte) error {
	h.b.mu.Lock()
	defer h.b.mu.Unlock()
	h.f.data = append(h.f.data, p...)
	return nil
}

func (h *memHandle) Sync() error {
	h.b.mu.Lock()
	defer h.b.mu.Unlock()
	h.f.synced = len(h.f.data)
	return nil
}

func (h *memHandle) Close() error { return nil }

var errClosed = errors.New("persist: log closed")
