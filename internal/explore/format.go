package explore

import (
	"fmt"
	"strings"

	"rhnorec/internal/htm"
	"rhnorec/internal/mem"
)

// FormatTrace renders a run human-readably, one scheduler step per line:
//
//	step  worker  point          addr     note
//	   0  W0      htm-begin
//	   1  W0      htm-load       0x0040
//	   5  W1      htm-commit              [injected spurious]
//	   6  W1      htm-abort               cause=htm-spurious
//
// Abort events carry the packed abort code in Info and are labeled with the
// same obs.Cause taxonomy the stress and bench tools report, so a shrunk
// counterexample reads in the repo's own vocabulary.
func FormatTrace(res RunResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%4s  %-7s %-14s %-8s %s\n", "step", "worker", "point", "addr", "note")
	for _, ev := range res.Events {
		addr := ""
		if ev.Addr != mem.Nil {
			addr = fmt.Sprintf("0x%04x", uint64(ev.Addr))
		}
		var notes []string
		if ev.Point == PointHTMAbort {
			code, arg := htm.UnpackAbortInfo(ev.Info)
			ab := &htm.Abort{Code: code, Arg: arg}
			notes = append(notes, "cause="+ab.Cause().String())
		}
		if ev.Fault != FaultNone {
			notes = append(notes, "[injected "+ev.Fault.String()+"]")
		}
		fmt.Fprintf(&b, "%4d  W%-6d %-14s %-8s %s\n",
			ev.Step, ev.Worker, ev.Point.String(), addr, strings.Join(notes, " "))
	}
	switch res.Outcome {
	case OutcomeViolation:
		fmt.Fprintf(&b, "=> violation after %d steps: %s\n", res.Steps, res.Violation)
	default:
		fmt.Fprintf(&b, "=> %s after %d steps\n", res.Outcome, res.Steps)
	}
	return b.String()
}
