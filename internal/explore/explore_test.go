package explore

// The explorer mutates process-global knobs (cooperative mode, planted-bug
// flags, software access cost), so no test here uses t.Parallel.

import (
	"reflect"
	"testing"

	"rhnorec/internal/tm"
)

// fiveTMs are the core algorithms every scenario oracle must hold for.
var fiveTMs = []string{"lock-elision", "norec", "tl2", "hy-norec", "rh-norec"}

func mustRun(t *testing.T, cfg Config, strat Strategy) RunResult {
	t.Helper()
	res, err := RunOnce(cfg, strat)
	if err != nil {
		t.Fatalf("RunOnce(%+v): %v", cfg, err)
	}
	return res
}

// TestSchedulerDeterminism is the foundation everything else rests on: the
// same strategy seed must reproduce the identical event sequence.
func TestSchedulerDeterminism(t *testing.T) {
	for _, cfg := range []Config{
		{Scenario: "htm-opacity", Ops: 2},
		{Scenario: "bank", Algo: "rh-norec"},
		{Scenario: "kv-linearize", Algo: "hy-norec"},
	} {
		for _, seed := range []uint64{1, 7, 99} {
			a := mustRun(t, cfg, NewPCT(seed, 4, 3, 128, 0.2))
			b := mustRun(t, cfg, NewPCT(seed, 4, 3, 128, 0.2))
			if !reflect.DeepEqual(a.Events, b.Events) {
				t.Fatalf("%s seed %d: event sequences differ across identical runs", cfg.Scenario, seed)
			}
			if !reflect.DeepEqual(a.Choices, b.Choices) {
				t.Fatalf("%s seed %d: choice sequences differ across identical runs", cfg.Scenario, seed)
			}
			if a.Outcome != b.Outcome || a.Violation != b.Violation {
				t.Fatalf("%s seed %d: outcome %v/%q vs %v/%q", cfg.Scenario, seed,
					a.Outcome, a.Violation, b.Outcome, b.Violation)
			}
		}
	}
}

// TestRecordReplayTwice records a run and replays the trace twice; both
// replays must certify against the recording and against each other.
func TestRecordReplayTwice(t *testing.T) {
	cfg := Config{Scenario: "bank", Algo: "rh-norec"}
	res := mustRun(t, cfg, NewPCT(42, 3, 3, 256, 0.1))
	tr := NewTrace(cfg, res)
	r1, err := tr.Replay()
	if err != nil {
		t.Fatalf("first replay: %v", err)
	}
	r2, err := tr.Replay()
	if err != nil {
		t.Fatalf("second replay: %v", err)
	}
	if !reflect.DeepEqual(r1.Events, r2.Events) {
		t.Fatal("replayed event sequences differ between replays")
	}
	if !reflect.DeepEqual(res.Events, r1.Events) {
		t.Fatal("replayed event sequence differs from the recording")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	cfg := Config{Scenario: "htm-opacity"}
	res := mustRun(t, cfg, NewPCT(3, 2, 3, 64, 0))
	tr := NewTrace(cfg, res)
	path := t.TempDir() + "/trace.json"
	if err := tr.Save(path); err != nil {
		t.Fatalf("save: %v", err)
	}
	got, err := LoadTrace(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Fatalf("round trip mismatch:\nsaved  %+v\nloaded %+v", tr, got)
	}
	if _, err := got.Replay(); err != nil {
		t.Fatalf("replay of loaded trace: %v", err)
	}
	// A tampered events digest must fail certification.
	got.EventsHash = "0000000000000000"
	if _, err := got.Replay(); err == nil {
		t.Fatal("replay certified a trace with a corrupted events hash")
	}
}

// TestFaultInjection checks the fault plane end to end: injected directives
// surface as device aborts (visible as abort events with the spurious /
// capacity cause), and the protocols absorb them without violations.
func TestFaultInjection(t *testing.T) {
	cfg := Config{Scenario: "htm-opacity", Ops: 2}
	injected, aborted := false, false
	for seed := uint64(1); seed <= 20; seed++ {
		res := mustRun(t, cfg, NewPCT(seed, 2, 3, 64, 0.5))
		if res.Outcome == OutcomeViolation {
			t.Fatalf("seed %d: faults alone must not break the real protocol: %s", seed, res.Violation)
		}
		for _, ev := range res.Events {
			if ev.Fault != FaultNone {
				injected = true
			}
			if ev.Point == PointHTMAbort {
				aborted = true
			}
		}
	}
	if !injected {
		t.Fatal("no fault was injected across 20 half-rate seeds")
	}
	if !aborted {
		t.Fatal("injected faults never surfaced as abort events")
	}
}

// TestFaultsOnlyAtInjectablePoints: the scheduler must downgrade fault
// directives attached to non-HTM yield points.
func TestFaultsOnlyAtInjectablePoints(t *testing.T) {
	cfg := Config{Scenario: "bank", Algo: "norec"} // pure software: nothing injectable while committed to STM paths
	for seed := uint64(1); seed <= 5; seed++ {
		res := mustRun(t, cfg, NewPCT(seed, 3, 3, 128, 0.9))
		for _, ev := range res.Events {
			if ev.Fault != FaultNone && !ev.Point.injectable() {
				t.Fatalf("seed %d: fault %v recorded at non-injectable point %v", seed, ev.Fault, ev.Point)
			}
		}
	}
}

// TestPlantedBugFoundAndShrunk is the acceptance gate of ISSUE 4: with value
// revalidation disabled, PCT must find the opacity violation and ddmin must
// shrink it to at most 12 scheduler steps, and the shrunk schedule must
// replay to the same violation.
func TestPlantedBugFoundAndShrunk(t *testing.T) {
	cfg := Config{Scenario: "htm-opacity", Bug: "skip-validation"}
	found, runs, err := ExplorePCT(cfg, 1, 300, 3, 64, 0)
	if err != nil {
		t.Fatalf("ExplorePCT: %v", err)
	}
	if found == nil {
		t.Fatalf("planted opacity bug not found in %d PCT seeds", runs)
	}
	t.Logf("found by seed %d after %d runs, %d steps", found.Seed, runs, found.Result.Steps)
	sr, ok := Shrink(cfg, found.Result.Choices, 2000)
	if !ok {
		t.Fatal("shrink could not reproduce the found violation")
	}
	t.Logf("shrunk to %d steps in %d replays:\n%s", len(sr.Choices), sr.Runs, FormatTrace(sr.Result))
	if len(sr.Choices) > 12 {
		t.Fatalf("shrunk counterexample has %d steps, want <= 12", len(sr.Choices))
	}
	res := mustRun(t, cfg, newReplay(sr.Choices, false))
	if res.Outcome != OutcomeViolation {
		t.Fatalf("shrunk schedule replayed to %v, want violation", res.Outcome)
	}
}

// TestDFSFindsPlantedBug: the 12-step counterexample needs only one
// preemption, so preemption-bounded DFS must reach it too.
func TestDFSFindsPlantedBug(t *testing.T) {
	cfg := Config{Scenario: "htm-opacity", Bug: "skip-validation"}
	found, runs, _, err := ExploreDFS(cfg, 2, 4000)
	if err != nil {
		t.Fatalf("ExploreDFS: %v", err)
	}
	if found == nil {
		t.Fatalf("planted bug not found in %d DFS runs", runs)
	}
	t.Logf("DFS found it after %d runs, %d steps", runs, found.Result.Steps)
}

// TestDFSCompletes: with the bug absent and one preemption allowed the
// bounded space of the tiny scenario is fully explorable, and none of it
// violates.
func TestDFSCompletes(t *testing.T) {
	cfg := Config{Scenario: "htm-opacity"}
	found, runs, complete, err := ExploreDFS(cfg, 1, 5000)
	if err != nil {
		t.Fatalf("ExploreDFS: %v", err)
	}
	if found != nil {
		t.Fatalf("correct protocol violated:\n%s", FormatTrace(found.Result))
	}
	if !complete {
		t.Fatalf("bound-1 space not exhausted in %d runs", runs)
	}
	t.Logf("exhausted bound-1 space in %d runs", runs)
}

// TestScenarioOraclesAcrossTMs sweeps every TM scenario over all five core
// algorithms under a handful of adversarial seeds with faults enabled; the
// real protocols must never violate their oracles.
func TestScenarioOraclesAcrossTMs(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, sc := range []string{"bank", "rbtree", "kv-linearize"} {
		for _, algo := range fiveTMs {
			cfg := Config{Scenario: sc, Algo: algo}
			found, _, err := ExplorePCT(cfg, 1, 5, 3, 256, 0.1)
			if err != nil {
				t.Fatalf("%s/%s: %v", sc, algo, err)
			}
			if found != nil {
				t.Errorf("%s/%s violated (seed %d): %s\n%s", sc, algo,
					found.Seed, found.Result.Violation, FormatTrace(found.Result))
			}
		}
	}
}

// TestDivergedOutcome: an absurdly small step budget reports divergence, not
// a hang, and teardown reclaims the workers (the -race runs would flag any
// unsynchronized stragglers).
func TestDivergedOutcome(t *testing.T) {
	cfg := Config{Scenario: "bank", Algo: "rh-norec", MaxSteps: 5}
	res := mustRun(t, cfg, NewPCT(1, 3, 3, 128, 0))
	if res.Outcome != OutcomeDiverged {
		t.Fatalf("outcome %v, want diverged", res.Outcome)
	}
	if res.Steps != 5 {
		t.Fatalf("recorded %d steps, want 5", res.Steps)
	}
}

// TestFixtureReplay certifies the checked-in trace against the current
// code: any change to the yield-point map or the protocols that alters the
// recorded interleaving shows up here as an events-hash mismatch.
func TestFixtureReplay(t *testing.T) {
	// The fixture was recorded at the default combine-off configuration; a
	// recorded schedule documents the interleaving under the config it was
	// taken with, so replay pins that config regardless of the ambient
	// RHNOREC_COMBINE sweep value.
	t.Setenv(tm.CombineEnvVar, "")
	tr, err := LoadTrace("testdata/bank-rh-norec-seed7.json")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Replay(); err != nil {
		t.Fatalf("fixture no longer reproduces: %v\n(regenerate with: go run ./cmd/rhexplore -scenario bank -algo rh-norec -seeds 1 -seed0 7 -fault-rate 0.1 -record internal/explore/testdata/bank-rh-norec-seed7.json)", err)
	}
}

func TestNormalizeErrors(t *testing.T) {
	if _, err := (Config{Scenario: "no-such"}).Normalize(); err == nil {
		t.Error("unknown scenario accepted")
	}
	if _, err := (Config{Scenario: "bank"}).Normalize(); err == nil {
		t.Error("TM scenario accepted without an algorithm")
	}
	if _, err := (Config{Scenario: "htm-opacity", Bug: "no-such"}).Normalize(); err == nil {
		t.Error("unknown bug accepted")
	}
	cfg, err := (Config{Scenario: "htm-opacity", Workers: 9}).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Workers != 2 {
		t.Errorf("fixed-worker scenario normalized to %d workers, want 2", cfg.Workers)
	}
}

// TestDeterminismWithCombineOn certifies the group-commit configuration the
// default fixture cannot cover: with RHNOREC_COMBINE=1 (picked up by
// RetryPolicy.WithDefaults inside RunOnce), exploration must stay
// bit-deterministic — identical seeds reproduce identical event and choice
// sequences — and a recorded trace must replay to certification. A small
// PCT sweep doubles as the safety oracle: combining must introduce no
// violations.
func TestDeterminismWithCombineOn(t *testing.T) {
	t.Setenv(tm.CombineEnvVar, "1")
	for _, algo := range []string{"rh-norec", "hy-norec", "norec"} {
		cfg := Config{Scenario: "bank", Algo: algo}
		a := mustRun(t, cfg, NewPCT(7, 4, 3, 128, 0.2))
		b := mustRun(t, cfg, NewPCT(7, 4, 3, 128, 0.2))
		if !reflect.DeepEqual(a.Events, b.Events) || !reflect.DeepEqual(a.Choices, b.Choices) {
			t.Fatalf("%s: combine-on runs diverge across identical seeds", algo)
		}
		tr := NewTrace(cfg, a)
		if _, err := tr.Replay(); err != nil {
			t.Fatalf("%s: combine-on trace failed certification: %v", algo, err)
		}
		found, _, err := ExplorePCT(cfg, 1, 10, 3, 256, 0.1)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if found != nil {
			t.Errorf("%s violated with combining on (seed %d): %s\n%s", algo,
				found.Seed, found.Result.Violation, FormatTrace(found.Result))
		}
	}
}
