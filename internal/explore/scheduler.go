package explore

import (
	"fmt"
	"time"

	"rhnorec/internal/mem"
)

// The cooperative scheduler: worker goroutines run one at a time, handing
// control back at every yield point, so the scheduler's choice sequence
// fully determines the interleaving. The mechanism is baton passing over
// channels — the scheduler resumes exactly one worker and then blocks until
// that worker either parks at its next yield point or finishes. At every
// instant at most one of {scheduler, some worker} is running, and every
// handoff is a channel operation, so all scheduler and worker state below
// is ordered by happens-before without any locks (the -race tests in this
// package hold the proof to that claim).
//
// Liveness: yield points are placed so that no code path can park while
// holding a lock another worker's own slice could spin on — the locked span
// of mem.CommitWrites suppresses its nested yields via AtomicBegin/End, and
// every software-path spin (NOrec clock lock, RH NOrec serial lock, ...)
// loops through hooked plain-memory operations, so the scheduler regains
// control on every spin iteration. A schedule that livelocks such a spin
// (always resuming the spinner) burns its step budget and is reported as
// OutcomeDiverged, not a hang. The watchdog timeout catches anything that
// slips through as OutcomeStuck.

// killSignal unwinds a parked worker during teardown. TM drivers treat it
// like any foreign panic: they run their abort cleanup and re-panic, so the
// worker's goroutine exits cleanly without acquiring anything.
type killSignal struct{}

// wevent is a worker-to-scheduler report: parked at a yield point, or done.
type wevent struct {
	id       int
	done     bool
	point    Point
	addr     mem.Addr
	info     uint64
	panicked bool
	panicVal any
}

// worker is the scheduler's view of one goroutine.
type worker struct {
	id     int
	resume chan struct{}
	// fault and kill are written by the scheduler before a resume send and
	// read by the worker after the matching receive.
	fault Fault
	kill  bool
	done  bool
	// point/addr/info describe where the worker is parked.
	point Point
	addr  mem.Addr
	info  uint64
}

type scheduler struct {
	workers []*worker
	events  chan wevent
	// cur is the worker currently (or most recently) running.
	cur int
	// atomicDepth > 0 suppresses parking (a lock-holding critical section
	// is executing, see mem.Hook).
	atomicDepth int
	// active gates the hooks: false during setup, teardown and oracle
	// checks, so their memory traffic runs unscheduled.
	active bool
	// violated polls the environment's violation log after every step.
	violated func() string
	timeout  time.Duration
}

// yield is the single entry point both hooks funnel into; it runs on the
// current worker's goroutine. It reports the fault directive the scheduler
// attached to the resume.
func (s *scheduler) yield(p Point, a mem.Addr, info uint64) Fault {
	if !s.active || s.atomicDepth > 0 {
		return FaultNone
	}
	w := s.workers[s.cur]
	s.events <- wevent{id: w.id, point: p, addr: a, info: info}
	<-w.resume
	if w.kill {
		panic(killSignal{})
	}
	return w.fault
}

func (s *scheduler) workerMain(w *worker, body func()) {
	defer func() {
		r := recover()
		if _, ok := r.(killSignal); ok {
			s.events <- wevent{id: w.id, done: true}
			return
		}
		s.events <- wevent{id: w.id, done: true, panicked: r != nil, panicVal: r}
	}()
	<-w.resume
	if w.kill {
		return
	}
	body()
}

// run executes bodies under strat's schedule. Each body is one worker; the
// run ends when all finish, a violation is detected, the step budget is
// exhausted, or the watchdog fires.
func (s *scheduler) run(strat Strategy, bodies []func(), maxSteps int) RunResult {
	n := len(bodies)
	s.workers = make([]*worker, n)
	// Buffered for teardown strays (a stuck worker may emit one last event
	// nobody is waiting for); during a healthy run the protocol is strictly
	// alternating and the buffer stays empty.
	s.events = make(chan wevent, 2*n+2)
	for i := range s.workers {
		s.workers[i] = &worker{id: i, resume: make(chan struct{}), point: PointStart}
	}
	for i, body := range bodies {
		go s.workerMain(s.workers[i], body)
	}
	s.active = true
	var res RunResult
	outcome := OutcomeOK
	live := n
	stuckID := -1
	for live > 0 {
		if len(res.Choices) >= maxSteps {
			outcome = OutcomeDiverged
			res.Violation = fmt.Sprintf("step budget %d exhausted with %d worker(s) unfinished", maxSteps, live)
			break
		}
		enabled := make([]int, 0, n)
		for _, w := range s.workers {
			if !w.done {
				enabled = append(enabled, w.id)
			}
		}
		pick, fault := strat.Next(len(res.Choices), s.cur, enabled)
		if pick < 0 || pick >= n || s.workers[pick].done {
			// Defensive: a strategy picked an unrunnable worker; fall back
			// to the canonical default so the recorded choice stays honest.
			pick = defaultChoice(s.cur, enabled)
			fault = FaultNone
		}
		w := s.workers[pick]
		if !w.point.injectable() {
			fault = FaultNone
		}
		w.fault = fault
		s.cur = pick
		w.resume <- struct{}{}
		var ev wevent
		select {
		case ev = <-s.events:
		case <-time.After(s.timeout):
			outcome = OutcomeStuck
			res.Violation = fmt.Sprintf("worker %d made no progress within %v (possible real deadlock)", pick, s.timeout)
			stuckID = pick
		}
		if outcome == OutcomeStuck {
			break
		}
		step := len(res.Choices)
		res.Choices = append(res.Choices, Choice{Worker: pick, Fault: fault})
		res.Enabled = append(res.Enabled, enabled)
		if ev.done {
			w.done = true
			w.point = PointDone
			live--
			res.Events = append(res.Events, Event{Step: step, Worker: ev.id, Point: PointDone, Fault: fault})
			if ev.panicked {
				outcome = OutcomeViolation
				res.Violation = fmt.Sprintf("worker %d panicked: %v", ev.id, ev.panicVal)
				break
			}
		} else {
			w.point, w.addr, w.info = ev.point, ev.addr, ev.info
			res.Events = append(res.Events, Event{Step: step, Worker: ev.id, Point: ev.point, Addr: ev.addr, Info: ev.info, Fault: fault})
		}
		if msg := s.violated(); msg != "" {
			outcome = OutcomeViolation
			res.Violation = msg
			break
		}
	}
	s.active = false
	s.teardown(stuckID)
	res.Outcome = outcome
	res.Steps = len(res.Choices)
	return res
}

// teardown unwinds every parked worker (sequentially: kill one, wait for
// its done event, move on) so no goroutines outlive the run. With the
// hooks inactive the unwind's cleanup traffic runs free; cleanup paths
// only release locks, never acquire, so each unwind terminates. A stuck
// worker (skip) is not parked and cannot be killed — it leaks, which is
// acceptable for a verdict that already means "this schedule deadlocked".
func (s *scheduler) teardown(skip int) {
	for _, w := range s.workers {
		if w.done || w.id == skip {
			continue
		}
		w.kill = true
		w.resume <- struct{}{}
		deadline := time.After(s.timeout)
	wait:
		for {
			select {
			case ev := <-s.events:
				if ev.done && ev.id == w.id {
					break wait
				}
				// A stray event (from the stuck worker's last gasp): ignore.
			case <-deadline:
				return
			}
		}
	}
}

// defaultChoice is the canonical continuation every strategy shares: keep
// the current worker running if it still can (run-to-completion), else the
// lowest-id runnable worker.
func defaultChoice(cur int, enabled []int) int {
	for _, w := range enabled {
		if w == cur {
			return cur
		}
	}
	return enabled[0]
}

// memHook adapts the scheduler to the substrate boundary.
type memHook struct{ s *scheduler }

func (h memHook) Yield(op mem.HookOp, a mem.Addr) {
	h.s.yield(memPoint(op), a, 0)
}

func (h memHook) AtomicBegin() { h.s.atomicDepth++ }
func (h memHook) AtomicEnd()   { h.s.atomicDepth-- }
