// Package explore is a deterministic schedule-exploration and
// fault-injection harness for the TM systems in this repository: a
// model checker over the interleavings the paper's safety arguments
// quantify over.
//
// Worker goroutines are serialized through yield points injected at the
// internal/mem stripe-window and internal/htm device boundaries, so an
// entire multi-threaded run is a pure function of its Choice sequence.
// On top of that determinism sit: seeded random-priority exploration
// (PCT), preemption-bounded exhaustive DFS, a fault plane that injects
// spurious aborts and capacity squeezes at chosen yield points, trace
// record/replay, and delta-debugging shrinking of failing schedules to a
// minimal counterexample. Oracles — the tmtest invariant workloads and
// the internal/linearize checker — judge every explored run.
//
// cmd/rhexplore is the CLI; DESIGN.md §9 documents the yield-point map and
// the determinism argument; docs/EXPLORE.md walks a shrunk counterexample.
package explore

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"rhnorec/internal/bench"
	"rhnorec/internal/htm"
	"rhnorec/internal/mem"
	"rhnorec/internal/tm"
)

// Config describes one explorable run (one scenario × algorithm × shape).
// The zero value of a field takes the scenario's default. A Config plus a
// Choice sequence identifies a run exactly; traces serialize both.
type Config struct {
	// Scenario names a registered scenario (see Scenarios).
	Scenario string
	// Algo names a bench algorithm; required by TM scenarios, ignored by
	// raw-device ones.
	Algo string
	// Workers is the worker count.
	Workers int
	// Ops is the per-worker operation count.
	Ops int
	// MaxSteps bounds a run's schedule length (default 20000); schedules
	// that exceed it are OutcomeDiverged.
	MaxSteps int
	// Timeout is the per-step watchdog (default 10s).
	Timeout time.Duration
	// Bug names a planted defect to enable for the run (see Bugs); empty
	// runs the real protocols.
	Bug string
}

// Bugs lists the planted-defect names accepted in Config.Bug. "crash@N" is
// not a defect but a crash plan: the bank-crash scenario snapshots its
// persistence backend at the N-th persist event (1-based) and audits
// recovery from that image. It rides Config.Bug so traces serialize it and
// a recorded crash run replays as a self-contained fixture.
func Bugs() []string { return []string{"skip-validation", "crash@N"} }

func bugFlag(name string) (*atomic.Bool, error) {
	switch name {
	case "":
		return nil, nil
	case "skip-validation":
		return &htm.PlantedBugs.SkipValueRevalidation, nil
	default:
		if _, ok := crashPlan(name); ok {
			return nil, nil // consumed by the scenario, no global flag
		}
		return nil, fmt.Errorf("explore: unknown bug %q (have %v)", name, Bugs())
	}
}

// crashPlan parses a "crash@N" plan (N >= 1: crash at the N-th persist
// event).
func crashPlan(bug string) (int, bool) {
	s, ok := strings.CutPrefix(bug, "crash@")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 1 {
		return 0, false
	}
	return n, true
}

// Env is the per-run world handed to scenario builders: a fresh memory and
// device (plus a TM system for TM scenarios) and the violation log workers
// report into. Each run builds its own Env, so runs never share state.
type Env struct {
	M   *mem.Memory
	Dev *htm.Device
	Sys tm.System

	sched *scheduler
	// violations is appended by (serialized) workers and polled by the
	// scheduler after each step; the baton-passing channel protocol orders
	// every access.
	violations []string
}

// Violatef records a safety violation. Scenario bodies and oracles call it;
// the scheduler stops the run at the next step boundary.
func (e *Env) Violatef(format string, args ...any) {
	e.violations = append(e.violations, fmt.Sprintf(format, args...))
}

func (e *Env) firstViolation() string {
	if len(e.violations) == 0 {
		return ""
	}
	return e.violations[0]
}

// htmHook adapts the scheduler to the device boundary, translating the
// scheduler's fault decision into the device's abort directive.
type htmHook struct{ s *scheduler }

func (h htmHook) Yield(op htm.HookOp, a mem.Addr, info uint64) htm.Directive {
	return h.s.yield(htmPoint(op), a, info).directive()
}

// Normalize resolves scenario defaults and validates the config.
func (c Config) Normalize() (Config, error) {
	sc, ok := ScenarioByName(c.Scenario)
	if !ok {
		return c, fmt.Errorf("explore: unknown scenario %q (have %v)", c.Scenario, ScenarioNames())
	}
	if sc.FixedWorkers > 0 {
		c.Workers = sc.FixedWorkers
	} else if c.Workers <= 0 {
		c.Workers = sc.DefaultWorkers
	}
	if c.Ops <= 0 {
		c.Ops = sc.DefaultOps
	}
	if c.MaxSteps <= 0 {
		c.MaxSteps = 20000
	}
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Second
	}
	if sc.NeedsTM {
		if _, ok := bench.AlgoByName(c.Algo); !ok {
			return c, fmt.Errorf("explore: scenario %q needs a TM algorithm; unknown %q", c.Scenario, c.Algo)
		}
	}
	if _, err := bugFlag(c.Bug); err != nil {
		return c, err
	}
	return c, nil
}

// RunOnce executes one run of cfg under strat and returns its result. The
// run owns the process's scheduling knobs while it executes (cooperative
// mode, zero software access cost, the planted bug flag); concurrent
// RunOnce calls are not supported.
func RunOnce(cfg Config, strat Strategy) (RunResult, error) {
	cfg, err := cfg.Normalize()
	if err != nil {
		return RunResult{}, err
	}
	sc, _ := ScenarioByName(cfg.Scenario)
	memWords := sc.MemWords
	if memWords <= 0 {
		memWords = 1 << 16
	}
	m := mem.NewStriped(memWords, mem.DefaultStripes)
	var seedCtr uint64
	dev := htm.NewDevice(m, htm.Config{
		// The free-running yield pacing and the probabilistic fault knobs
		// are exactly the nondeterminism this harness replaces.
		YieldPeriod: -1,
		SeedFn: func() uint64 {
			seedCtr++
			return seedCtr
		},
	})
	dev.SetActiveThreads(cfg.Workers)
	env := &Env{M: m, Dev: dev}
	if sc.NeedsTM {
		algo, _ := bench.AlgoByName(cfg.Algo)
		env.Sys = algo.New(m, dev, tm.RetryPolicy{})
	}
	s := &scheduler{timeout: cfg.Timeout, violated: env.firstViolation}
	env.sched = s

	// Build (setup included) runs before the hooks activate, so its memory
	// traffic is not part of the schedule.
	bodies, finish, err := sc.Build(env, cfg)
	if err != nil {
		return RunResult{}, fmt.Errorf("explore: %s setup: %w", cfg.Scenario, err)
	}
	if len(bodies) != cfg.Workers {
		return RunResult{}, fmt.Errorf("explore: %s built %d bodies for %d workers", cfg.Scenario, len(bodies), cfg.Workers)
	}

	bug, _ := bugFlag(cfg.Bug)
	if bug != nil {
		bug.Store(true)
	}
	prevCost := tm.SoftwareAccessCost()
	tm.SetSoftwareAccessCost(0) // pure spin; irrelevant under serialization
	tm.SetCooperative(true)
	m.SetHook(memHook{s})
	dev.SetHook(htmHook{s})
	defer func() {
		m.SetHook(nil)
		dev.SetHook(nil)
		tm.SetCooperative(false)
		tm.SetSoftwareAccessCost(prevCost)
		if bug != nil {
			bug.Store(false)
		}
	}()

	res := s.run(strat, bodies, cfg.MaxSteps)
	if res.Outcome == OutcomeOK && finish != nil {
		// Oracle checks run with the hooks already inactive.
		if err := finish(); err != nil {
			res.Outcome = OutcomeViolation
			res.Violation = err.Error()
		}
	}
	return res, nil
}

// Found is a violation located by an exploration strategy.
type Found struct {
	// Seed is the PCT seed that produced it (zero for DFS).
	Seed uint64
	// Result is the failing run.
	Result RunResult
}

// ExplorePCT runs up to seeds PCT-scheduled runs (seeds baseSeed,
// baseSeed+1, ...) and returns the first violation, the number of runs
// executed, and any infrastructure error. depth and horizon parameterize
// PCT (see NewPCT); faultRate enables the fault plane.
func ExplorePCT(cfg Config, baseSeed uint64, seeds, depth, horizon int, faultRate float64) (*Found, int, error) {
	cfg, err := cfg.Normalize()
	if err != nil {
		return nil, 0, err
	}
	for i := 0; i < seeds; i++ {
		seed := baseSeed + uint64(i)
		strat := NewPCT(seed, cfg.Workers, depth, horizon, faultRate)
		res, err := RunOnce(cfg, strat)
		if err != nil {
			return nil, i, err
		}
		if res.Outcome == OutcomeViolation {
			return &Found{Seed: seed, Result: res}, i + 1, nil
		}
	}
	return nil, seeds, nil
}
