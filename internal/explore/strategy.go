package explore

import "math/rand"

// Strategy decides, at each step, which runnable worker executes next and
// whether a fault rides along on the resume. step is the 0-based step
// index, cur the worker that ran the previous step, enabled the runnable
// worker ids in ascending order (never empty). Strategies are stateful and
// single-run unless documented otherwise.
type Strategy interface {
	Next(step, cur int, enabled []int) (worker int, fault Fault)
}

// PCT is probabilistic concurrency testing (Burckhardt et al., ASPLOS'10):
// workers get random priorities, the highest-priority runnable worker runs,
// and at d-1 random change points the running worker's priority drops below
// everyone's — which is exactly a commit-point stall when the change point
// lands inside a commit sequence. Any bug of "depth" d is found with
// probability ≥ 1/(n·k^(d-1)) per seed, so a few hundred seeds cover the
// shallow adversarial schedules the HyTM impossibility literature builds
// on. A nonzero fault rate additionally rolls per-step dice for injected
// spurious/capacity aborts.
type PCT struct {
	rng      *rand.Rand
	prio     []int
	nextLow  int
	change   map[int]struct{}
	faultOdd float64
}

// NewPCT builds a PCT strategy for a run of up to horizon steps over
// workers workers. depth is the PCT d parameter (d-1 change points); seed
// fixes everything, so equal seeds give equal schedules.
func NewPCT(seed uint64, workers, depth, horizon int, faultRate float64) *PCT {
	rng := rand.New(rand.NewSource(int64(seed)))
	p := &PCT{
		rng:      rng,
		prio:     make([]int, workers),
		change:   make(map[int]struct{}, depth),
		faultOdd: faultRate,
	}
	for i, r := range rng.Perm(workers) {
		p.prio[i] = r + 1 // priorities 1..n; change points assign 0, -1, ...
	}
	if horizon < 2 {
		horizon = 2
	}
	for i := 0; i < depth-1; i++ {
		p.change[1+rng.Intn(horizon-1)] = struct{}{}
	}
	return p
}

func (p *PCT) Next(step, cur int, enabled []int) (int, Fault) {
	if _, ok := p.change[step]; ok && cur >= 0 && cur < len(p.prio) {
		p.prio[cur] = p.nextLow
		p.nextLow--
	}
	best := enabled[0]
	for _, w := range enabled[1:] {
		if w < len(p.prio) && p.prio[w] > p.prio[best] {
			best = w
		}
	}
	f := FaultNone
	if p.faultOdd > 0 && p.rng.Float64() < p.faultOdd {
		if p.rng.Intn(2) == 0 {
			f = FaultSpurious
		} else {
			f = FaultCapacity
		}
	}
	return best, f
}

// replay re-executes a recorded choice sequence. Strict mode demands the
// recording stays applicable (every recorded worker still runnable at its
// step) and records the first divergence; lenient mode — used on shrinking
// candidates, whose spliced sequences routinely mis-align — substitutes the
// default continuation and keeps going. Both fall back to the default
// continuation once the recording is exhausted.
type replay struct {
	choices    []Choice
	strict     bool
	divergedAt int
}

func newReplay(choices []Choice, strict bool) *replay {
	return &replay{choices: choices, strict: strict, divergedAt: -1}
}

func (r *replay) Next(step, cur int, enabled []int) (int, Fault) {
	if step < len(r.choices) {
		c := r.choices[step]
		for _, w := range enabled {
			if w == c.Worker {
				return c.Worker, c.Fault
			}
		}
		if r.strict && r.divergedAt < 0 {
			r.divergedAt = step
		}
	}
	return defaultChoice(cur, enabled), FaultNone
}
