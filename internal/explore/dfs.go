package explore

// Bounded exhaustive exploration in the CHESS style (Musuvathi & Qadeer):
// stateless depth-first search over schedules, restarting the program for
// each one, with a preemption bound — schedules may switch away from a
// runnable worker at most `bound` times. The insight carried over from
// CHESS is that real concurrency bugs almost always need very few
// preemptions, so bounding them tames the exponential tree while keeping
// the bug-dense part. Determinism makes the restart-based search sound:
// the same choice prefix always reaches the same state, so the enabled
// sets recorded on one run remain valid when the search revisits that
// prefix on a later run.

// dfsFrame is one decision level of the search stack.
type dfsFrame struct {
	// enabled is the runnable set observed at this step (stable across
	// runs for a fixed prefix, by determinism).
	enabled []int
	// alts are the candidate workers, default continuation first, others
	// ascending; altIdx indexes the one the current path takes.
	alts   []int
	altIdx int
	// preempts counts preemptions on the path up to and including this
	// frame's current choice.
	preempts int
}

func (f *dfsFrame) choice() int { return f.alts[f.altIdx] }

// dfsStrategy replays the persisted stack prefix and extends it with
// default continuations as the run goes deeper.
type dfsStrategy struct {
	stack []dfsFrame
	bound int
}

func (d *dfsStrategy) Next(step, cur int, enabled []int) (int, Fault) {
	if step < len(d.stack) {
		return d.stack[step].choice(), FaultNone
	}
	def := defaultChoice(cur, enabled)
	parentPreempts := 0
	if step > 0 {
		parentPreempts = d.stack[step-1].preempts
	}
	alts := []int{def}
	if parentPreempts < d.bound {
		// Non-default choices cost one preemption when they switch away
		// from a still-runnable cur; when cur just finished, any switch is
		// forced and free — but then def is already the canonical pick and
		// the alternatives still enumerate every other worker.
		for _, w := range enabled {
			if w != def {
				alts = append(alts, w)
			}
		}
	}
	d.stack = append(d.stack, dfsFrame{
		enabled:  append([]int(nil), enabled...),
		alts:     alts,
		preempts: parentPreempts, // default continuation is preemption-free
	})
	return def, FaultNone
}

// preemptCost is 1 when switching away from a runnable previous worker.
func preemptCost(prev int, enabled []int, choice int) int {
	for _, w := range enabled {
		if w == prev {
			if choice != prev {
				return 1
			}
			return 0
		}
	}
	return 0
}

// ExploreDFS searches schedules of cfg exhaustively up to `bound`
// preemptions, executing at most maxRuns runs (0 means unbounded — only
// sensible for tiny configurations). It returns the first violation, the
// number of runs executed, and whether the bounded space was fully
// explored (false when maxRuns cut the search short).
func ExploreDFS(cfg Config, bound, maxRuns int) (*Found, int, bool, error) {
	cfg, err := cfg.Normalize()
	if err != nil {
		return nil, 0, false, err
	}
	var stack []dfsFrame
	runs := 0
	for {
		if maxRuns > 0 && runs >= maxRuns {
			return nil, runs, false, nil
		}
		strat := &dfsStrategy{stack: stack, bound: cfg.dfsBound(bound)}
		res, err := RunOnce(cfg, strat)
		if err != nil {
			return nil, runs, false, err
		}
		runs++
		if res.Outcome == OutcomeViolation {
			return &Found{Result: res}, runs, false, nil
		}
		stack = strat.stack
		// Backtrack: advance the deepest frame with an untried alternative;
		// frames above it are discarded and regrow on the next run.
		for len(stack) > 0 {
			top := &stack[len(stack)-1]
			if top.altIdx+1 < len(top.alts) {
				top.altIdx++
				prev := 0
				parentPreempts := 0
				if len(stack) > 1 {
					parent := &stack[len(stack)-2]
					prev = parent.choice()
					parentPreempts = parent.preempts
				}
				top.preempts = parentPreempts + preemptCost(prev, top.enabled, top.choice())
				break
			}
			stack = stack[:len(stack)-1]
		}
		if len(stack) == 0 {
			return nil, runs, true, nil
		}
	}
}

// dfsBound clamps a nonpositive bound to the conventional default of 2
// preemptions — the depth at which CHESS found most of its bugs.
func (c Config) dfsBound(bound int) int {
	if bound <= 0 {
		return 2
	}
	return bound
}
