package explore

import (
	"fmt"
	"math/rand"

	"rhnorec/internal/conformance"
	"rhnorec/internal/linearize"
	"rhnorec/internal/mem"
	"rhnorec/internal/persist"
	"rhnorec/internal/tm"
)

// Scenario is one explorable workload. Build runs single-threaded with the
// hooks inactive (its setup traffic is not scheduled); the returned bodies
// are the workers the scheduler serializes, and finish — run after all
// workers complete, hooks inactive again — is the end-of-run oracle.
//
// Scenario bodies must not recover panics they did not raise themselves:
// the scheduler's teardown unwinds parked workers with a private panic
// value, and the TM drivers' own recover/cleanup/re-panic discipline must
// reach the worker's top frame.
type Scenario struct {
	Name string
	// NeedsTM: Build requires Config.Algo / Env.Sys.
	NeedsTM bool
	// FixedWorkers pins the worker count (0 = configurable).
	FixedWorkers int
	DefaultWorkers,
	DefaultOps int
	// MemWords sizes the run's memory (0 = 1<<16).
	MemWords int
	Build    func(env *Env, cfg Config) (bodies []func(), finish func() error, err error)
}

// Scenarios returns the registry, in presentation order: every workload in
// the shared conformance registry (internal/conformance) at its frozen
// explore scale, then the explorer-specific scenarios — the persistence
// crash plane, the linearizability oracle and the raw-device opacity demo —
// whose oracles need explorer machinery the generic adapter cannot express.
func Scenarios() []Scenario {
	scs := make([]Scenario, 0, len(conformance.Scenarios())+3)
	for _, sc := range conformance.Scenarios() {
		scs = append(scs, conformanceScenario(sc))
	}
	return append(scs, bankCrashScenario, kvScenario, htmOpacityScenario)
}

// conformanceScenario adapts a registry entry: the instance's seeded worker
// closure is looped cfg.Ops times per body, violations route to the
// explorer's oracle, and the end-of-run invariant check is the finish
// oracle. Worker i seeds with i+1, matching every other harness — and the
// recorded trace fixtures, which certify that this traffic is byte-for-byte
// the traffic the fixtures were recorded against.
func conformanceScenario(sc conformance.Scenario) Scenario {
	return Scenario{
		Name:           sc.Name,
		NeedsTM:        true,
		DefaultWorkers: sc.ExploreWorkers,
		DefaultOps:     sc.ExploreOps,
		MemWords:       sc.MemWords,
		Build: func(env *Env, cfg Config) ([]func(), func() error, error) {
			inst := sc.New(conformance.ScaleExplore)
			setup := env.Sys.NewThread()
			err := inst.Setup(setup)
			setup.Close()
			if err != nil {
				return nil, nil, err
			}
			report := func(msg string) { env.Violatef("%s", msg) }
			bodies := make([]func(), cfg.Workers)
			for i := range bodies {
				i := i
				bodies[i] = func() {
					th := env.Sys.NewThread()
					defer th.Close()
					op := inst.NewWorker(th, int64(i)+1, report)
					for j := 0; j < cfg.Ops; j++ {
						if err := op(); err != nil {
							env.Violatef("%s worker %d: %v", sc.Name, i, err)
							return
						}
					}
				}
			}
			finish := func() error { return inst.Check(env.Sys) }
			return bodies, finish, nil
		},
	}
}

// ScenarioNames lists the registered scenario names.
func ScenarioNames() []string {
	var names []string
	for _, sc := range Scenarios() {
		names = append(names, sc.Name)
	}
	return names
}

// ScenarioByName finds a scenario.
func ScenarioByName(name string) (Scenario, bool) {
	for _, sc := range Scenarios() {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}

// bankCrashScenario explores the durable persistence plane (internal/persist)
// under chosen schedules: workers run bank transfers — each transfer also
// writes the worker's own stamp word in the same transaction — against a
// memory whose commits append to a redo log on an in-memory backend, taking
// durable acks (WaitDurable) every second op. A "crash@N" plan in Config.Bug
// snapshots the backend at the N-th persist event via MemBackend.CrashSnapshot
// (the deterministic torn-write image: synced bytes plus half of any unsynced
// tail), and the finish oracle recovers that image into a fresh state and
// audits the crash-consistency contract: the recovered bank conserves the
// total exactly (replay is a prefix of whole commits — no torn mix), and each
// worker's recovered stamp is at least its last durable-acked one (no lost
// durable-acked commit; aborted transactions never reach the log, so nothing
// can resurrect either). Only rh-norec is persistence-wired (its eager
// full-software stores are instrumented), so the scenario rejects other
// algos. Persist events are counted, not scheduled: they are a pure function
// of the schedule, so runs stay replayable and crash points sweep with
// (seed × N).
var bankCrashScenario = Scenario{
	Name:           "bank-crash",
	NeedsTM:        true,
	DefaultWorkers: 3,
	DefaultOps:     4,
	Build: func(env *Env, cfg Config) ([]func(), func() error, error) {
		const (
			accounts = 4
			initial  = 100
		)
		if cfg.Algo != "rh-norec" {
			return nil, nil, fmt.Errorf("bank-crash: persistence is wired for rh-norec only, not %q", cfg.Algo)
		}
		crashAt, _ := crashPlan(cfg.Bug)
		setup := env.Sys.NewThread()
		var base mem.Addr
		err := setup.Run(func(tx tm.Tx) error {
			base = tx.Alloc((accounts + cfg.Workers) * mem.LineWords)
			return nil
		})
		if err != nil {
			setup.Close()
			return nil, nil, err
		}
		acct := func(i int) mem.Addr { return base + mem.Addr(i*mem.LineWords) }
		stampAddr := func(w int) mem.Addr { return base + mem.Addr((accounts+w)*mem.LineWords) }
		lo, hi := base, base+mem.Addr((accounts+cfg.Workers)*mem.LineWords)

		backend := persist.NewMemBackend()
		acked := make([]uint64, cfg.Workers)
		var crash struct {
			snap   *persist.MemBackend
			acked  []uint64
			events int
		}
		log, _, err := persist.Open(persist.Options{
			Backend: backend, Segments: 2, Lo: lo, Hi: hi,
			OnEvent: func(persist.Event, uint64) {
				// Workers are serialized by the scheduler, so this count (and
				// the acked copy) is exact, not racy.
				crash.events++
				if crashAt > 0 && crash.events == crashAt {
					crash.snap = backend.CrashSnapshot()
					crash.acked = append([]uint64(nil), acked...)
				}
			},
		}, env.M.StorePlain, env.M.LoadPlain)
		if err != nil {
			setup.Close()
			return nil, nil, err
		}
		env.M.SetPersister(log)
		// Fund the bank under the persister, then sync: every crash image
		// contains the funding commit, so any recovered prefix conserves.
		err = setup.Run(func(tx tm.Tx) error {
			for i := 0; i < accounts; i++ {
				tx.Store(acct(i), initial)
			}
			return nil
		})
		setup.Close()
		if err != nil {
			return nil, nil, err
		}
		if err := log.Sync(); err != nil {
			return nil, nil, err
		}

		bodies := make([]func(), cfg.Workers)
		for i := range bodies {
			i := i
			bodies[i] = func() {
				th := env.Sys.NewThread()
				defer th.Close()
				rng := rand.New(rand.NewSource(int64(i) + 1))
				for n := 1; n <= cfg.Ops; n++ {
					from, to := rng.Intn(accounts), rng.Intn(accounts)
					amt := uint64(1 + rng.Intn(10))
					if err := th.Run(func(tx tm.Tx) error {
						// Everything derives from in-transaction loads, so a
						// restart re-derives rather than compounding.
						f := tx.Load(acct(from))
						d := amt
						if d > f {
							d = f
						}
						tx.Store(acct(from), f-d)
						tx.Store(acct(to), tx.Load(acct(to))+d)
						tx.Store(stampAddr(i), uint64(n))
						return nil
					}); err != nil {
						env.Violatef("bank-crash worker %d: %v", i, err)
						return
					}
					if n%2 == 0 {
						if err := log.WaitDurable(log.Appended()); err != nil {
							env.Violatef("bank-crash worker %d: WaitDurable: %v", i, err)
							return
						}
						acked[i] = uint64(n)
					}
				}
			}
		}

		finish := func() error {
			const total = accounts * initial
			var live uint64
			for i := 0; i < accounts; i++ {
				live += env.M.LoadPlain(acct(i))
			}
			if live != total {
				return fmt.Errorf("bank-crash: live sum %d, want %d", live, total)
			}
			if crash.snap == nil {
				return nil // plan absent or crash point beyond this run's events
			}
			state := map[mem.Addr]uint64{}
			rlog, stats, err := persist.Open(persist.Options{Backend: crash.snap, Segments: 2, Lo: lo, Hi: hi},
				func(a mem.Addr, v uint64) { state[a] = v },
				func(a mem.Addr) uint64 { return state[a] })
			if err != nil {
				return fmt.Errorf("bank-crash: recovery from crash image: %w", err)
			}
			rlog.Close()
			var sum uint64
			for i := 0; i < accounts; i++ {
				sum += state[acct(i)]
			}
			// The funding commit is sequence 1, so a non-empty recovered
			// prefix conserves the total exactly; an empty prefix (crash
			// before even the funding hit stable storage) recovers a zero
			// bank — consistent too, as long as nothing was durable-acked.
			if stats.Seq == 0 {
				if sum != 0 {
					return fmt.Errorf("bank-crash: empty replay but recovered sum %d (recovery %+v)", sum, stats)
				}
			} else if sum != total {
				return fmt.Errorf("bank-crash: recovered sum %d, want %d (recovery %+v)", sum, total, stats)
			}
			for w := 0; w < cfg.Workers; w++ {
				if got := state[stampAddr(w)]; got < crash.acked[w] {
					return fmt.Errorf("bank-crash: worker %d recovered stamp %d < durable-acked %d (recovery %+v)",
						w, got, crash.acked[w], stats)
				}
			}
			return nil
		}
		return bodies, finish, nil
	},
}

// kvScenario drives a transactional key-value register map and judges the
// recorded history with the linearizability checker — the oracle adapter
// between the explorer and internal/linearize. Value 0 encodes "absent", so
// the memory's zero state matches the checker's empty-map model; workers
// therefore only write values ≥ 1.
var kvScenario = Scenario{
	Name:           "kv-linearize",
	NeedsTM:        true,
	DefaultWorkers: 3,
	DefaultOps:     4,
	Build: func(env *Env, cfg Config) ([]func(), func() error, error) {
		// Size the key space so per-key subhistories stay under the
		// checker's 64-op bitmask bound even if every op hit one key pair.
		keys := 1 + cfg.Workers*cfg.Ops/32
		setup := env.Sys.NewThread()
		var base mem.Addr
		err := setup.Run(func(tx tm.Tx) error {
			base = tx.Alloc(keys * mem.LineWords)
			return nil
		})
		setup.Close()
		if err != nil {
			return nil, nil, err
		}
		keyAddr := func(k uint64) mem.Addr { return base + mem.Addr(int(k)*mem.LineWords) }
		rec := linearize.NewRecorder()
		bodies := make([]func(), cfg.Workers)
		for i := range bodies {
			i := i
			bodies[i] = func() {
				th := env.Sys.NewThread()
				defer th.Close()
				rng := rand.New(rand.NewSource(int64(i) + 1))
				for j := 0; j < cfg.Ops; j++ {
					k := uint64(rng.Intn(keys))
					switch rng.Intn(4) {
					case 0: // put
						v := uint64(1 + rng.Intn(100))
						rec.Do(linearize.Put, k, v, func() (uint64, bool) {
							var old uint64
							if err := th.Run(func(tx tm.Tx) error {
								old = tx.Load(keyAddr(k))
								tx.Store(keyAddr(k), v)
								return nil
							}); err != nil {
								env.Violatef("kv put: %v", err)
							}
							return old, old != 0
						})
					case 1: // delete
						rec.Do(linearize.Delete, k, 0, func() (uint64, bool) {
							var old uint64
							if err := th.Run(func(tx tm.Tx) error {
								old = tx.Load(keyAddr(k))
								tx.Store(keyAddr(k), 0)
								return nil
							}); err != nil {
								env.Violatef("kv delete: %v", err)
							}
							return old, old != 0
						})
					default: // get
						rec.Do(linearize.Get, k, 0, func() (uint64, bool) {
							var v uint64
							if err := th.RunReadOnly(func(tx tm.Tx) error {
								v = tx.Load(keyAddr(k))
								return nil
							}); err != nil {
								env.Violatef("kv get: %v", err)
							}
							return v, v != 0
						})
					}
				}
			}
		}
		finish := func() error {
			res, err := linearize.CheckErr(rec.History())
			if err != nil {
				return fmt.Errorf("kv oracle: %w", err)
			}
			if !res.Linearizable {
				return fmt.Errorf("kv history not linearizable: key %d (%d ops)", res.FailedKey, res.Ops)
			}
			return nil
		}
		return bodies, finish, nil
	},
}

// htmOpacityScenario runs the raw device (no TM driver): a reader asserts
// in-transaction that x+y is conserved while a blind writer republishes the
// pair. Against the correct protocol no schedule or fault can break it —
// the reader's stale log is caught by value re-validation. With the
// skip-validation planted bug it has a 12-step counterexample, which is the
// shrinking demo of docs/EXPLORE.md and the CI acceptance gate.
var htmOpacityScenario = Scenario{
	Name:         "htm-opacity",
	FixedWorkers: 2,
	DefaultOps:   1,
	Build: func(env *Env, cfg Config) ([]func(), func() error, error) {
		const total = 1000
		tc := env.M.NewThreadCache()
		block := tc.Alloc(2 * mem.LineWords)
		x, y := block, block+mem.LineWords
		env.M.StorePlain(x, total*6/10)
		env.M.StorePlain(y, total*4/10)
		reader := func() {
			txn := env.Dev.NewTxn()
			for j := 0; j < cfg.Ops; j++ {
				for try := 0; try < 8; try++ {
					ab := txn.Attempt(func() {
						vx := txn.Load(x)
						vy := txn.Load(y)
						if vx+vy != total {
							env.Violatef("opacity: reader saw x=%d y=%d, sum %d != %d", vx, vy, vx+vy, total)
						}
					})
					if ab == nil {
						break
					}
				}
			}
		}
		writer := func() {
			txn := env.Dev.NewTxn()
			for j := 0; j < cfg.Ops; j++ {
				// Blind writes keep the writer abort-free under conflicts:
				// the round's split is computed, never read back.
				d := uint64((j + 1) * 100 % total)
				for try := 0; try < 8; try++ {
					ab := txn.Attempt(func() {
						txn.Store(x, total-d)
						txn.Store(y, d)
					})
					if ab == nil {
						break
					}
				}
			}
		}
		finish := func() error {
			if got := env.M.LoadPlain(x) + env.M.LoadPlain(y); got != total {
				return fmt.Errorf("htm-opacity: final sum %d, want %d", got, total)
			}
			return nil
		}
		return []func(){reader, writer}, finish, nil
	},
}
