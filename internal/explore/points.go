package explore

import (
	"fmt"

	"rhnorec/internal/htm"
	"rhnorec/internal/mem"
)

// Point identifies a yield point: a substrate or device boundary where a
// worker hands control to the scheduler. The mem points cover the plain
// (non-speculative) accesses every software path issues; the htm points
// cover the speculative operations. Together they are exactly the
// boundaries where one thread's step can become visible to another, so a
// schedule over these points determines the whole run (DESIGN.md §9 carries
// the argument).
type Point uint8

const (
	// PointStart marks a worker that has not yet executed its first step.
	PointStart Point = iota
	// PointMemLoad..PointMemCommit mirror mem.HookOp.
	PointMemLoad
	PointMemStore
	PointMemCAS
	PointMemAdd
	PointMemCommit
	// PointHTMBegin..PointHTMAbort mirror htm.HookOp.
	PointHTMBegin
	PointHTMLoad
	PointHTMStore
	PointHTMValidate
	PointHTMCommit
	PointHTMAbort
	// PointDone marks a finished worker.
	PointDone

	numPoints
)

var pointNames = [numPoints]string{
	PointStart:       "start",
	PointMemLoad:     "mem-load",
	PointMemStore:    "mem-store",
	PointMemCAS:      "mem-cas",
	PointMemAdd:      "mem-add",
	PointMemCommit:   "mem-commit",
	PointHTMBegin:    "htm-begin",
	PointHTMLoad:     "htm-load",
	PointHTMStore:    "htm-store",
	PointHTMValidate: "htm-validate",
	PointHTMCommit:   "htm-commit",
	PointHTMAbort:    "htm-abort",
	PointDone:        "done",
}

func (p Point) String() string {
	if int(p) < len(pointNames) && pointNames[p] != "" {
		return pointNames[p]
	}
	return fmt.Sprintf("Point(%d)", uint8(p))
}

// injectable reports whether a fault directive makes sense for a worker
// parked at p: only device points with a live transaction can be killed.
func (p Point) injectable() bool {
	switch p {
	case PointHTMBegin, PointHTMLoad, PointHTMStore, PointHTMValidate, PointHTMCommit:
		return true
	}
	return false
}

func memPoint(op mem.HookOp) Point {
	switch op {
	case mem.HookLoad:
		return PointMemLoad
	case mem.HookStore:
		return PointMemStore
	case mem.HookCAS:
		return PointMemCAS
	case mem.HookAdd:
		return PointMemAdd
	default:
		return PointMemCommit
	}
}

func htmPoint(op htm.HookOp) Point {
	switch op {
	case htm.HookBegin:
		return PointHTMBegin
	case htm.HookLoad:
		return PointHTMLoad
	case htm.HookStore:
		return PointHTMStore
	case htm.HookValidate:
		return PointHTMValidate
	case htm.HookCommit:
		return PointHTMCommit
	default:
		return PointHTMAbort
	}
}

// Fault is a scheduler-injected hazard, applied to a worker as it resumes
// from a device yield point: the explorer's replacement for the device's
// global SpuriousAbortProb knob, aimed at one chosen operation instead of
// all of them. Commit-point stalls need no Fault value: stalling a worker
// is the scheduler simply not resuming it, which exploration strategies
// express through their choice sequence.
type Fault uint8

const (
	FaultNone Fault = iota
	FaultSpurious
	FaultCapacity
)

func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultSpurious:
		return "spurious"
	case FaultCapacity:
		return "capacity"
	default:
		return fmt.Sprintf("Fault(%d)", uint8(f))
	}
}

func (f Fault) directive() htm.Directive {
	switch f {
	case FaultSpurious:
		return htm.DirSpurious
	case FaultCapacity:
		return htm.DirCapacity
	default:
		return htm.DirNone
	}
}

// Choice is one scheduler decision: which worker runs the next step, and
// the fault (if any) injected as it resumes. A run is a pure function of
// its choice sequence, which is what makes traces replayable.
type Choice struct {
	Worker int   `json:"w"`
	Fault  Fault `json:"f,omitempty"`
}

// Event is one observed step: worker Worker, resumed with Fault, ran until
// it parked at Point (address Addr, extra Info for aborts). The event
// sequence is the interleaving a trace certifies; EventsHash digests it.
type Event struct {
	Step   int
	Worker int
	Point  Point
	Addr   mem.Addr
	Info   uint64
	Fault  Fault
}

// Outcome classifies a run.
type Outcome uint8

const (
	// OutcomeOK: all workers finished and every oracle passed.
	OutcomeOK Outcome = iota
	// OutcomeViolation: a safety violation — an invariant breach, an oracle
	// rejection, or a worker panic.
	OutcomeViolation
	// OutcomeDiverged: the step budget ran out (e.g. a schedule that
	// livelocks two validators against each other). Not a safety verdict.
	OutcomeDiverged
	// OutcomeStuck: a resumed worker made no progress within the watchdog
	// timeout — a potential real deadlock, reported distinctly because it
	// is a liveness signal, not a safety one.
	OutcomeStuck
)

func (o Outcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeViolation:
		return "violation"
	case OutcomeDiverged:
		return "diverged"
	case OutcomeStuck:
		return "stuck"
	default:
		return fmt.Sprintf("Outcome(%d)", uint8(o))
	}
}

// OutcomeByName is the inverse of Outcome.String, for trace files.
func OutcomeByName(s string) (Outcome, bool) {
	for _, o := range []Outcome{OutcomeOK, OutcomeViolation, OutcomeDiverged, OutcomeStuck} {
		if o.String() == s {
			return o, true
		}
	}
	return 0, false
}

// RunResult is one explored run's outcome.
type RunResult struct {
	Outcome Outcome
	// Violation is the first violation message (when Outcome is
	// OutcomeViolation) or a diagnostic for diverged/stuck runs.
	Violation string
	// Choices are the decisions actually executed, in order; replaying them
	// reproduces the run exactly.
	Choices []Choice
	// Events align with Choices: Events[i] is where Choices[i]'s worker
	// parked.
	Events []Event
	// Enabled aligns with Choices: the runnable worker ids (ascending) the
	// scheduler chose among at each step. Exploration strategies use it to
	// enumerate alternatives.
	Enabled [][]int
	// Steps is len(Choices).
	Steps int
}
