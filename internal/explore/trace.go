package explore

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
)

// TraceVersion identifies the trace file format.
const TraceVersion = "rhexplore.v1"

// Trace is the serialized form of one run: the Config that shapes the
// world, the Choice sequence that determines the interleaving, and the
// recorded outcome plus an events digest so a replay can certify it
// reproduced the identical interleaving — not merely the same verdict.
type Trace struct {
	Version   string `json:"version"`
	Scenario  string `json:"scenario"`
	Algo      string `json:"algo,omitempty"`
	Workers   int    `json:"workers"`
	Ops       int    `json:"ops"`
	Bug       string `json:"bug,omitempty"`
	Outcome   string `json:"outcome"`
	Violation string `json:"violation,omitempty"`
	// EventsHash is an FNV-64a digest over the event sequence
	// (step, worker, point, addr, info, fault per event).
	EventsHash string   `json:"events_hash"`
	Choices    []Choice `json:"choices"`
}

// EventsHash digests an event sequence for replay certification.
func EventsHash(events []Event) string {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	for _, e := range events {
		put(uint64(e.Step))
		put(uint64(e.Worker))
		put(uint64(e.Point))
		put(uint64(e.Addr))
		put(e.Info)
		put(uint64(e.Fault))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// NewTrace packages a run for serialization. cfg should be the Config the
// run executed under (normalized or not; it is re-normalized on load).
func NewTrace(cfg Config, res RunResult) Trace {
	return Trace{
		Version:    TraceVersion,
		Scenario:   cfg.Scenario,
		Algo:       cfg.Algo,
		Workers:    cfg.Workers,
		Ops:        cfg.Ops,
		Bug:        cfg.Bug,
		Outcome:    res.Outcome.String(),
		Violation:  res.Violation,
		EventsHash: EventsHash(res.Events),
		Choices:    res.Choices,
	}
}

// Config reconstructs the run configuration a trace was recorded under.
func (tr Trace) Config() Config {
	return Config{
		Scenario: tr.Scenario,
		Algo:     tr.Algo,
		Workers:  tr.Workers,
		Ops:      tr.Ops,
		Bug:      tr.Bug,
	}
}

// Save writes the trace as indented JSON.
func (tr Trace) Save(path string) error {
	data, err := json.MarshalIndent(tr, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadTrace reads and validates a trace file.
func LoadTrace(path string) (Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Trace{}, err
	}
	var tr Trace
	if err := json.Unmarshal(data, &tr); err != nil {
		return Trace{}, fmt.Errorf("explore: %s: %w", path, err)
	}
	if tr.Version != TraceVersion {
		return Trace{}, fmt.Errorf("explore: %s: version %q, want %q", path, tr.Version, TraceVersion)
	}
	if _, ok := OutcomeByName(tr.Outcome); !ok {
		return Trace{}, fmt.Errorf("explore: %s: unknown outcome %q", path, tr.Outcome)
	}
	return tr, nil
}

// Replay re-executes a trace under strict guided replay and certifies the
// reproduction: the outcome and the events digest must both match the
// recording. It returns the replayed result; a non-nil error means the
// trace did not reproduce (or could not run).
func (tr Trace) Replay() (RunResult, error) {
	cfg := tr.Config()
	// Replays inherit a generous budget: the recording bounds the schedule
	// already, and the default continuation finishes the run after it.
	strat := newReplay(tr.Choices, true)
	res, err := RunOnce(cfg, strat)
	if err != nil {
		return res, err
	}
	if strat.divergedAt >= 0 {
		return res, fmt.Errorf("explore: replay diverged at step %d: recorded worker no longer runnable", strat.divergedAt)
	}
	if got, want := res.Outcome.String(), tr.Outcome; got != want {
		return res, fmt.Errorf("explore: replay outcome %s, recorded %s", got, want)
	}
	if got := EventsHash(res.Events); got != tr.EventsHash {
		return res, fmt.Errorf("explore: replay events hash %s, recorded %s — interleaving not reproduced", got, tr.EventsHash)
	}
	return res, nil
}
