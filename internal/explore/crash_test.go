package explore

// Tests of the explored crash plane: the bank-crash scenario sweeps crash
// plans ("crash@N") across PCT seeds, so torn redo-log images from many
// schedule × crash-point combinations all recover to a consistent cut.

import (
	"fmt"
	"reflect"
	"testing"

	"rhnorec/internal/tm"
)

// TestBankCrashSweep is the crash-recovery acceptance sweep: >= 200 explored
// schedules (seed × crash point), every one recovering its crash image with
// conservation intact and no durable-acked commit lost. Violations carry the
// full schedule for reproduction.
func TestBankCrashSweep(t *testing.T) {
	seeds, crashPoints := 10, 20
	if testing.Short() {
		seeds, crashPoints = 3, 8
	}
	runs := 0
	for ca := 1; ca <= crashPoints; ca++ {
		cfg := Config{Scenario: "bank-crash", Algo: "rh-norec", Bug: fmt.Sprintf("crash@%d", ca)}
		for seed := uint64(1); seed <= uint64(seeds); seed++ {
			res := mustRun(t, cfg, NewPCT(seed, 3, 3, 256, 0.1))
			runs++
			if res.Outcome == OutcomeViolation {
				t.Fatalf("crash@%d seed %d: %s\n%s", ca, seed, res.Violation, FormatTrace(res))
			}
		}
	}
	t.Logf("swept %d crash schedules", runs)
}

// TestBankCrashDeterminism: a crash plan must not break replayability — the
// snapshot trigger counts persist events, which are a pure function of the
// schedule.
func TestBankCrashDeterminism(t *testing.T) {
	cfg := Config{Scenario: "bank-crash", Algo: "rh-norec", Bug: "crash@7"}
	for _, seed := range []uint64{2, 11} {
		a := mustRun(t, cfg, NewPCT(seed, 3, 3, 128, 0.2))
		b := mustRun(t, cfg, NewPCT(seed, 3, 3, 128, 0.2))
		if !reflect.DeepEqual(a.Events, b.Events) || !reflect.DeepEqual(a.Choices, b.Choices) {
			t.Fatalf("seed %d: crash-plan runs diverge across identical seeds", seed)
		}
		if a.Outcome != b.Outcome {
			t.Fatalf("seed %d: outcomes %v vs %v", seed, a.Outcome, b.Outcome)
		}
	}
	// And a recorded crash run certifies under replay.
	res := mustRun(t, cfg, NewPCT(2, 3, 3, 128, 0.2))
	if _, err := NewTrace(cfg, res).Replay(); err != nil {
		t.Fatalf("crash-plan trace failed certification: %v", err)
	}
}

// TestBankCrashRejectsUnwiredAlgo: only rh-norec logs its eager
// full-software stores; the scenario must refuse to certify any other algo.
func TestBankCrashRejectsUnwiredAlgo(t *testing.T) {
	cfg := Config{Scenario: "bank-crash", Algo: "norec", Bug: "crash@3"}
	if _, err := RunOnce(cfg, NewPCT(1, 3, 3, 128, 0)); err == nil {
		t.Fatal("bank-crash accepted an unwired algorithm")
	}
}

// TestCrashFixtureReplay certifies the checked-in crash-recovery trace: a
// schedule that crashes the redo log mid-run and recovers clean. Breaking
// the log's event determinism or the recovery cut shows up here.
func TestCrashFixtureReplay(t *testing.T) {
	t.Setenv(tm.CombineEnvVar, "")
	tr, err := LoadTrace("testdata/bank-crash-rh-norec-seed3.json")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Replay(); err != nil {
		t.Fatalf("crash fixture no longer reproduces: %v\n(regenerate with: go run ./cmd/rhexplore -scenario bank-crash -algo rh-norec -seeds 1 -seed0 3 -fault-rate 0.1 -bug crash@9 -record internal/explore/testdata/bank-crash-rh-norec-seed3.json)", err)
	}
}
