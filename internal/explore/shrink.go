package explore

// Shrinking: reduce a failing choice sequence to a minimal one that still
// fails, with ddmin (Zeller & Hildebrandt's delta debugging). Candidates
// are evaluated by lenient replay — splicing chunks out of a schedule
// routinely mis-aligns the remaining choices, and the lenient strategy
// absorbs that by substituting the default continuation — and every
// accepted candidate is re-anchored to the choices the run *actually*
// executed (RunResult.Choices), which snaps the sequence back to executable
// reality and truncates it at the violation-detection step for free.

// ShrinkResult is the outcome of a shrink.
type ShrinkResult struct {
	// Choices is the minimized failing sequence.
	Choices []Choice
	// Result is the failing run the minimized sequence produces.
	Result RunResult
	// Runs is how many replays the shrink spent.
	Runs int
}

// Shrink minimizes failing (a choice sequence for cfg known to produce a
// violation) within a replay budget. It returns the smallest failing
// sequence found; if the input unexpectedly fails to reproduce (which
// determinism rules out short of an infrastructure bug), it returns ok =
// false.
func Shrink(cfg Config, failing []Choice, budget int) (ShrinkResult, bool) {
	sr := ShrinkResult{}
	try := func(cand []Choice) (RunResult, bool) {
		sr.Runs++
		res, err := RunOnce(cfg, newReplay(cand, false))
		return res, err == nil && res.Outcome == OutcomeViolation
	}
	res, ok := try(failing)
	if !ok {
		return sr, false
	}
	// Re-anchor: the executed choices end at the detection step, so this
	// alone usually drops the tail of the recording.
	cur, best := res.Choices, res
	n := 2
	for len(cur) >= 2 && (budget <= 0 || sr.Runs < budget) {
		chunk := (len(cur) + n - 1) / n
		reduced := false
		for i := 0; i < n; i++ {
			lo := i * chunk
			if lo >= len(cur) {
				break
			}
			hi := lo + chunk
			if hi > len(cur) {
				hi = len(cur)
			}
			cand := make([]Choice, 0, len(cur)-(hi-lo))
			cand = append(cand, cur[:lo]...)
			cand = append(cand, cur[hi:]...)
			res, ok := try(cand)
			// Accept only strict progress; equal-length "reductions" could
			// cycle between equivalent schedules forever.
			if ok && len(res.Choices) < len(cur) {
				cur, best = res.Choices, res
				if n > 2 {
					n--
				}
				reduced = true
				break
			}
			if budget > 0 && sr.Runs >= budget {
				break
			}
		}
		if !reduced {
			if n >= len(cur) {
				break
			}
			n *= 2
			if n > len(cur) {
				n = len(cur)
			}
		}
	}
	sr.Choices, sr.Result = cur, best
	return sr, true
}
