package tm

// Stats counts the events behind the analysis rows of the paper's Figures
// 4–6. Each Thread owns one instance and updates it without atomics (a
// thread is single-goroutine by contract); the harness aggregates snapshots
// after workers stop.
type Stats struct {
	// Commits is the number of transactions that completed, on any path.
	Commits uint64
	// ReadOnlyCommits counts commits of transactions run via RunReadOnly.
	ReadOnlyCommits uint64
	// UserAborts counts transactions whose callback returned an error.
	UserAborts uint64

	// FastPathCommits counts transactions committed entirely in (simulated)
	// hardware; SlowPathCommits those committed on the software or mixed
	// slow path; SerialCommits those that needed the serial lock or the
	// global lock (Lock Elision's fallback).
	FastPathCommits uint64
	SlowPathCommits uint64
	SerialCommits   uint64

	// Fallbacks counts transactions that gave up on the fast path and
	// entered the slow path (the numerator of the paper's "slow-path
	// execution ratio" row).
	Fallbacks uint64

	// HTM abort counters, across fast paths and the RH small transactions
	// (the paper's "HTM conflict/capacity aborts per operation" row).
	HTMConflictAborts uint64
	HTMCapacityAborts uint64
	HTMExplicitAborts uint64
	HTMSpuriousAborts uint64

	// SlowPathStarts counts slow-path attempts begun; SlowPathRestarts
	// counts restarts of slow-path attempts (the "restarts per slow-path
	// transaction" row).
	SlowPathStarts   uint64
	SlowPathRestarts uint64

	// RH NOrec small-transaction outcomes (the "prefix/postfix success
	// ratios" row). Zero for every other algorithm.
	PrefixAttempts  uint64
	PrefixCommits   uint64
	PostfixAttempts uint64
	PostfixCommits  uint64

	// STM-only counters.
	STMRestarts uint64
}

// Add accumulates o into s.
func (s *Stats) Add(o *Stats) {
	s.Commits += o.Commits
	s.ReadOnlyCommits += o.ReadOnlyCommits
	s.UserAborts += o.UserAborts
	s.FastPathCommits += o.FastPathCommits
	s.SlowPathCommits += o.SlowPathCommits
	s.SerialCommits += o.SerialCommits
	s.Fallbacks += o.Fallbacks
	s.HTMConflictAborts += o.HTMConflictAborts
	s.HTMCapacityAborts += o.HTMCapacityAborts
	s.HTMExplicitAborts += o.HTMExplicitAborts
	s.HTMSpuriousAborts += o.HTMSpuriousAborts
	s.SlowPathStarts += o.SlowPathStarts
	s.SlowPathRestarts += o.SlowPathRestarts
	s.PrefixAttempts += o.PrefixAttempts
	s.PrefixCommits += o.PrefixCommits
	s.PostfixAttempts += o.PostfixAttempts
	s.PostfixCommits += o.PostfixCommits
	s.STMRestarts += o.STMRestarts
}

// HTMAborts returns the total hardware aborts of any kind.
func (s *Stats) HTMAborts() uint64 {
	return s.HTMConflictAborts + s.HTMCapacityAborts + s.HTMExplicitAborts + s.HTMSpuriousAborts
}

// ratio returns num/den, or 0 when den is 0.
func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// ConflictAbortsPerOp is the paper's figure row 2 (conflict series).
func (s *Stats) ConflictAbortsPerOp() float64 { return ratio(s.HTMConflictAborts, s.Commits) }

// CapacityAbortsPerOp is the paper's figure row 2 (capacity series).
func (s *Stats) CapacityAbortsPerOp() float64 { return ratio(s.HTMCapacityAborts, s.Commits) }

// RestartsPerSlowPath is the paper's figure row 3.
func (s *Stats) RestartsPerSlowPath() float64 { return ratio(s.SlowPathRestarts, s.SlowPathCommits) }

// SlowPathRatio is the paper's figure row 4: the fraction of transactions
// that fell back from the fast path.
func (s *Stats) SlowPathRatio() float64 { return ratio(s.Fallbacks, s.Commits) }

// PrefixSuccessRatio is part of the paper's figure row 5.
func (s *Stats) PrefixSuccessRatio() float64 { return ratio(s.PrefixCommits, s.PrefixAttempts) }

// PostfixSuccessRatio is part of the paper's figure row 5.
func (s *Stats) PostfixSuccessRatio() float64 { return ratio(s.PostfixCommits, s.PostfixAttempts) }
