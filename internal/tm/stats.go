package tm

import (
	"reflect"

	"rhnorec/internal/obs"
)

// Stats counts the events behind the analysis rows of the paper's Figures
// 4–6 (slow-path ratio, HTM aborts per operation, restarts per slow-path
// transaction, prefix/postfix success). Each Thread owns one instance and
// updates it without atomics (a thread is single-goroutine by contract);
// the harness aggregates snapshots after workers stop via Add.
type Stats struct {
	// Commits is the number of transactions that completed, on any path
	// (the denominator of every per-operation row of Figures 4–6).
	Commits uint64
	// ReadOnlyCommits counts commits of transactions run via RunReadOnly —
	// the paper's statically-read-only compiler hint (§2.3) mapped to an
	// explicit entry point.
	ReadOnlyCommits uint64
	// UserAborts counts transactions whose callback returned an error.
	UserAborts uint64

	// FastPathCommits counts transactions committed entirely in (simulated)
	// hardware; SlowPathCommits those committed on the software or mixed
	// slow path; SerialCommits those that needed the serial lock or the
	// global lock (Lock Elision's fallback).
	FastPathCommits uint64
	SlowPathCommits uint64
	SerialCommits   uint64

	// Fallbacks counts transactions that gave up on the fast path and
	// entered the slow path (the numerator of the paper's "slow-path
	// execution ratio" row).
	Fallbacks uint64

	// HTM abort counters, across fast paths and the RH small transactions
	// (the paper's "HTM conflict/capacity aborts per operation" row).
	HTMConflictAborts uint64
	HTMCapacityAborts uint64
	HTMExplicitAborts uint64
	HTMSpuriousAborts uint64

	// SlowPathStarts counts slow-path attempts begun; SlowPathRestarts
	// counts restarts of slow-path attempts (the "restarts per slow-path
	// transaction" row).
	SlowPathStarts   uint64
	SlowPathRestarts uint64

	// RH NOrec small-transaction outcomes (the "prefix/postfix success
	// ratios" row). Zero for every other algorithm.
	PrefixAttempts  uint64
	PrefixCommits   uint64
	PostfixAttempts uint64
	PostfixCommits  uint64

	// STM-only counters: restarts of pure-software (NOrec/TL2) attempts
	// (the software baselines of §3.1).
	STMRestarts uint64

	// Signature-filter counters (htm.FilterStats folded per thread via
	// ThreadBase.FoldFilter; the obs ledger mirrors them per obs.FilterKind).
	// SigHits counts validations whose read signature intersected a
	// published write signature (value sweep ran); SigMisses provably
	// disjoint windows (sweep skipped); SigFalsePositives the hits whose
	// sweep then passed; SigUncovered windows the signature ring could not
	// answer for.
	SigHits           uint64
	SigMisses         uint64
	SigFalsePositives uint64
	SigUncovered      uint64

	// Group-commit counters (the flat-combining slow path; RetryPolicy.
	// Combine). CombinedCommits counts transactions committed by a holder
	// draining their queued write set; CombineDrains ticket windows under
	// which a holder published at least one queued commit; CombineRejects
	// queued commits that were claimed but not published and had to restart.
	CombinedCommits uint64
	CombineDrains   uint64
	CombineRejects  uint64

	// Contention-management decision counters (engine.go; the obs ledger
	// mirrors them per obs.PolicyDecision). PolicyDemotions counts capacity
	// demotions past the fast path; PolicyPromotionProbes the epoch-boundary
	// fast-path probes of demoted threads; PolicyThrottleWaits fast-path
	// entries delayed by the contention window; PolicyBackoffs randomized
	// backoffs before a retry; PolicyFastSkips transactions sent straight
	// to the slow path because their thread was demoted.
	PolicyDemotions       uint64
	PolicyPromotionProbes uint64
	PolicyThrottleWaits   uint64
	PolicyBackoffs        uint64
	PolicyFastSkips       uint64

	// Obs, when non-nil, is the thread's observability recorder: per-phase
	// latency histograms, the abort-cause taxonomy and the optional event
	// ring (package obs). The harness attaches it after NewThread
	// (Thread.Stats().Obs = ...); TM drivers consult it behind a nil
	// check, so the disabled state costs one branch per instrumentation
	// site. It is deliberately the only non-counter field of Stats — see
	// Add.
	Obs *obs.Recorder
}

// Add accumulates o into s: every uint64 counter sums, and o's
// observability recorder (if any) merges into s's. The counter sum is
// reflective so a counter added to Stats can never be silently dropped
// from aggregation; TestStatsAddAggregatesEveryField rejects any new field
// that is neither a uint64 counter nor explicitly handled here.
func (s *Stats) Add(o *Stats) {
	sv := reflect.ValueOf(s).Elem()
	ov := reflect.ValueOf(o).Elem()
	for i := 0; i < sv.NumField(); i++ {
		if f := sv.Field(i); f.Kind() == reflect.Uint64 {
			f.SetUint(f.Uint() + ov.Field(i).Uint())
		}
	}
	if o.Obs != nil {
		if s.Obs == nil {
			// Aggregates need no ring of their own: rings stay per-thread
			// and are drained, not merged.
			s.Obs = obs.NewRecorder(obs.Config{})
		}
		s.Obs.Merge(o.Obs)
	}
}

// HTMAborts returns the total hardware aborts of any kind (the sum of the
// Figures 4–6 abort series).
func (s *Stats) HTMAborts() uint64 {
	return s.HTMConflictAborts + s.HTMCapacityAborts + s.HTMExplicitAborts + s.HTMSpuriousAborts
}

// ratio returns num/den, or 0 when den is 0.
func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// ConflictAbortsPerOp is the paper's figure row 2 (conflict series).
func (s *Stats) ConflictAbortsPerOp() float64 { return ratio(s.HTMConflictAborts, s.Commits) }

// CapacityAbortsPerOp is the paper's figure row 2 (capacity series).
func (s *Stats) CapacityAbortsPerOp() float64 { return ratio(s.HTMCapacityAborts, s.Commits) }

// RestartsPerSlowPath is the paper's figure row 3.
func (s *Stats) RestartsPerSlowPath() float64 { return ratio(s.SlowPathRestarts, s.SlowPathCommits) }

// SlowPathRatio is the paper's figure row 4: the fraction of transactions
// that fell back from the fast path.
func (s *Stats) SlowPathRatio() float64 { return ratio(s.Fallbacks, s.Commits) }

// PrefixSuccessRatio is part of the paper's figure row 5.
func (s *Stats) PrefixSuccessRatio() float64 { return ratio(s.PrefixCommits, s.PrefixAttempts) }

// PostfixSuccessRatio is part of the paper's figure row 5.
func (s *Stats) PostfixSuccessRatio() float64 { return ratio(s.PostfixCommits, s.PostfixAttempts) }
