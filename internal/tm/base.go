package tm

import (
	"runtime"
	"sync/atomic"

	"rhnorec/internal/mem"
)

// yieldPeriod is how many instrumented software-path memory operations run
// between cooperative yields. Like htm.Config.YieldPeriod, this restores
// the instruction-level interleaving of real hardware threads when
// goroutines share few OS threads. A prime different from the HTM period
// avoids lock-step scheduling between paths.
const yieldPeriod = 13

// softwareAccessCost is the calibrated instrumentation-cost model (see
// DESIGN.md): on the paper's hardware an instrumented STM access costs
// several times a raw load, while this simulator naturally inverts that
// ratio (the simulated HTM pays heavy bookkeeping, the software paths pay
// almost none). Each instrumented software access therefore spins this many
// units of dummy work so the *relative* per-access costs — the quantity the
// paper's STM-vs-HyTM comparisons measure — match the published ratio.
// Tests run with the default; the benchmark harness may recalibrate.
var softwareAccessCost atomic.Int32

func init() { softwareAccessCost.Store(DefaultSoftwareAccessCost) }

// DefaultSoftwareAccessCost is the default instrumentation-cost units per
// software-path access (calibrated so an eager-NOrec access costs a few
// times a simulated-hardware access, as on the paper's testbed).
const DefaultSoftwareAccessCost = 160

// SetSoftwareAccessCost adjusts the instrumentation-cost model; 0 disables
// it. It applies process-wide (the model calibrates the simulator, not one
// system instance).
func SetSoftwareAccessCost(units int) { softwareAccessCost.Store(int32(units)) }

// SoftwareAccessCost reports the current cost-model setting.
func SoftwareAccessCost() int { return int(softwareAccessCost.Load()) }

// cooperative marks that an external deterministic scheduler (see
// internal/explore) serializes every worker, so MaybeYield's Gosched calls
// — which exist to approximate hardware interleaving under free-running
// goroutines — would only add scheduling noise. Process-wide, like the cost
// model: the explorer owns the whole process while it runs.
var cooperative atomic.Bool

// SetCooperative switches the free-running yield pacing off (true) or back
// on (false).
func SetCooperative(on bool) { cooperative.Store(on) }

// ThreadBase carries the state every algorithm's Thread needs: the memory,
// a thread-local allocator cache, a reclamation slot, per-attempt
// allocation/free tracking, and the statistics counters. Algorithm packages
// embed it.
type ThreadBase struct {
	M     *mem.Memory
	Cache *mem.ThreadCache
	Slot  *Slot
	St    Stats
	// CM is the thread's contention-management policy (engine.go). Systems
	// set it at thread construction via Engine.NewThreadPolicy; drivers
	// route their retry loops through it unconditionally.
	CM Policy

	allocs  []block // blocks allocated by the current attempt
	frees   []block // frees requested by the current attempt
	closed  bool
	ops     int
	scratch uint64

	// Flat-nesting state: while a user callback runs, CurTx holds its
	// transactional view so that a re-entrant Run executes inline in the
	// enclosing transaction (the GCC TM "flattened nesting" semantics).
	inTxn bool
	curTx Tx
}

// Nested returns the enclosing transaction's view when called from inside
// a user callback, for flat nesting: drivers call it at the top of Run and,
// if non-nil, execute the new callback inline against it. An error from
// the nested callback propagates to the enclosing callback, which decides
// whether to abort the whole flattened transaction by returning it.
func (b *ThreadBase) Nested() Tx {
	if b.inTxn {
		return b.curTx
	}
	return nil
}

// CallUser invokes a user callback with flat-nesting bookkeeping; every
// driver routes its callback invocations through it.
func (b *ThreadBase) CallUser(fn func(Tx) error, view Tx) error {
	b.inTxn, b.curTx = true, view
	defer func() { b.inTxn, b.curTx = false, nil }()
	return fn(view)
}

// MaybeYield is the software-path twin of the HTM simulator's yield points;
// algorithms call it (usually via InstrumentedAccess) so software paths
// interleave mid-transaction.
func (b *ThreadBase) MaybeYield() {
	b.ops++
	if b.ops%yieldPeriod == 0 && !cooperative.Load() {
		runtime.Gosched()
	}
}

// InstrumentedAccess marks one instrumented software-path memory access:
// it paces the scheduler and pays the calibrated instrumentation cost.
// Every STM Load/Store implementation calls it.
func (b *ThreadBase) InstrumentedAccess() {
	b.MaybeYield()
	n := softwareAccessCost.Load()
	x := b.scratch
	for i := int32(0); i < n; i++ {
		x = x*2862933555777941757 + 3037000493
	}
	b.scratch = x
}

// NewThreadBase wires a thread into memory m and reclaimer r.
func NewThreadBase(m *mem.Memory, r *Reclaimer) ThreadBase {
	cache := m.NewThreadCache()
	return ThreadBase{M: m, Cache: cache, Slot: r.Register(cache)}
}

// BeginTxn pins the reclamation epoch; call once per Run invocation.
func (b *ThreadBase) BeginTxn() { b.Slot.Enter() }

// EndTxn unpins the epoch; call when Run returns.
func (b *ThreadBase) EndTxn() { b.Slot.Exit() }

// TxAlloc allocates a block on behalf of the current attempt.
func (b *ThreadBase) TxAlloc(n int) mem.Addr {
	a := b.Cache.Alloc(n)
	b.allocs = append(b.allocs, block{a, n})
	return a
}

// TxFree records a free to be honoured if the attempt commits.
func (b *ThreadBase) TxFree(a mem.Addr, n int) {
	b.frees = append(b.frees, block{a, n})
}

// AbortCleanup rolls back the attempt's allocation effects: requested frees
// are forgotten and this attempt's allocations are retired through the
// grace period (a doomed concurrent reader may have glimpsed their
// addresses, so they cannot be recycled immediately).
func (b *ThreadBase) AbortCleanup() {
	for _, blk := range b.allocs {
		b.Slot.Defer(blk.addr, blk.n)
	}
	b.allocs = b.allocs[:0]
	b.frees = b.frees[:0]
}

// CommitCleanup finalizes the attempt's allocation effects: allocations
// stay live, requested frees retire through the grace period.
func (b *ThreadBase) CommitCleanup() {
	b.allocs = b.allocs[:0]
	for _, blk := range b.frees {
		b.Slot.Defer(blk.addr, blk.n)
	}
	b.frees = b.frees[:0]
}

// CloseBase releases the reclamation slot (idempotent).
func (b *ThreadBase) CloseBase() {
	if b.closed {
		return
	}
	b.closed = true
	b.Slot.r.unregister(b.Slot)
	b.Cache.Drain()
}
