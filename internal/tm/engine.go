package tm

import (
	"runtime"
	"sync/atomic"

	"rhnorec/internal/htm"
	"rhnorec/internal/obs"
)

// This file is the contention-management engine: the pluggable layer that
// decides *when* a transaction gives up on the pure HTM fast path, backs
// off, or is kept away from hardware entirely. The paper fixes the static
// §3.3 policy and names adaptation as future work; Brown & Ravi's cost-of-
// concurrency analysis and the OCC-for-Go line of work both argue that path
// selection should be a first-class, abort-cause-aware decision. The engine
// makes it one without touching the TM protocols themselves: drivers route
// their retry loops through a per-thread Policy, and every implementation
// of it preserves the paper's progress argument — a thread denied the fast
// path still reaches the slow path, and the slow path still escalates to
// the serial lock after MaxSlowPathRestarts (DESIGN.md §10).
//
// Determinism contract: all policy randomness derives from the engine's
// seed source, which is htm.Config.SeedFn when the device has one — under
// internal/explore that is the deterministic per-run counter, so recorded
// schedules replay bit-identically with any policy enabled. There is no
// time-seeded randomness anywhere in the retry paths. The static policy
// draws no seeds at all, keeping pre-policy explore fixtures byte-stable.

// Decision is a Policy's verdict on a hardware abort.
type Decision uint8

const (
	// RetryFast: retry the hardware fast path (the policy has already
	// applied any backoff it wanted).
	RetryFast Decision = iota
	// GiveUpFast: stop speculating and fall back to the slow path.
	GiveUpFast
)

// Policy is one thread's contention-management view. Implementations are
// single-goroutine like the ThreadBase they ride on; cross-thread state
// (the contention window) lives in the shared Engine behind atomics.
//
// Call protocol, per Run invocation:
//
//	if AdmitFast() { for { attempt; on abort: OnAbort(ab, retries) } }
//	on fast commit:   OnFastCommit(retriesUsed)
//	on fallback:      OnFallback(); ... slow path ...; OnSlowDone()
//	per slow restart: OnSTMRestart(restarts)
type Policy interface {
	// Kind identifies the policy.
	Kind() PolicyKind
	// AdmitFast gates fast-path entry at the top of Run: false sends the
	// transaction straight to the slow path (capacity demotion); it may
	// also briefly delay the caller (contention-window throttling).
	AdmitFast() bool
	// OnAbort judges a hardware abort: retries is the 1-based count of
	// failed attempts so far. A RetryFast verdict has already applied the
	// policy's backoff; protocol-specific waits (spinning out a held lock)
	// stay with the driver.
	OnAbort(ab *htm.Abort, retries int) Decision
	// OnFastCommit records a fast-path commit that needed retriesUsed
	// hardware restarts.
	OnFastCommit(retriesUsed int)
	// OnFallback records fast-path surrender (or a demotion bypass) at
	// slow-path entry.
	OnFallback()
	// OnSlowDone marks slow-path exit (commit or user abort); it closes
	// the window opened by OnFallback.
	OnSlowDone()
	// OnSTMRestart records a software-path restart (1-based); randomized
	// policies back off here too.
	OnSTMRestart(restarts int)
}

// Engine holds the policy configuration and the cross-thread contention
// state shared by a System's threads. Each System owns one Engine; each
// Thread gets a Policy from NewThreadPolicy at construction.
type Engine struct {
	policy RetryPolicy
	// seedFn, when non-nil, is the device's htm.Config.SeedFn — the single
	// deterministic seed source of the process under internal/explore.
	seedFn func() uint64
	// seedCtr seeds threads when no device seed source exists (pure STM
	// systems); deterministic by construction order.
	seedCtr atomic.Uint64
	// slowPath counts threads currently between OnFallback and OnSlowDone:
	// the "slow-path writers are hot" signal of the contention window.
	slowPath atomic.Int64
}

// NewEngine builds an engine for policy p (zero fields filled from
// DefaultPolicy, Kind resolved from RHNOREC_POLICY when unset). seedFn
// should be the device's htm.Config.SeedFn (nil for pure-software systems):
// randomized policies draw per-thread RNG seeds from it so explore replays
// stay bit-reproducible.
func NewEngine(p RetryPolicy, seedFn func() uint64) *Engine {
	return &Engine{policy: p.WithDefaults(), seedFn: seedFn}
}

// Policy returns the engine's resolved policy configuration.
func (e *Engine) Policy() RetryPolicy { return e.policy }

// SlowPathLoad reports the current contention-window occupancy (threads
// between OnFallback and OnSlowDone). Exposed for tests.
func (e *Engine) SlowPathLoad() int { return int(e.slowPath.Load()) }

// nextSeed derives one non-zero per-thread RNG seed from the engine's seed
// source through a splitmix64 finalizer (consecutive counter values must
// decorrelate, or every thread would jitter in lock-step).
func (e *Engine) nextSeed() uint64 {
	var s uint64
	if e.seedFn != nil {
		s = e.seedFn()
	} else {
		s = e.seedCtr.Add(1)
	}
	z := s + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	if z == 0 {
		z = 0x9E3779B97F4A7C15
	}
	return z
}

// NewThreadPolicy builds the per-thread Policy for b. Threads are created
// during (serialized) system setup, so the seed draw order — and with it
// every downstream jitter decision — is deterministic. The static policy
// draws no seed, keeping the device's seed stream identical to pre-policy
// builds (checked-in explore fixtures depend on that).
func (e *Engine) NewThreadPolicy(b *ThreadBase) Policy {
	base := cmBase{e: e, b: b}
	base.ctl.InitRetry(e.policy)
	switch e.policy.Kind {
	case PolicyBackoff:
		base.rng = e.nextSeed()
		return &backoffPolicy{cmBase: base}
	case PolicyAdaptive:
		base.rng = e.nextSeed()
		return &adaptivePolicy{cmBase: base}
	default:
		return &staticPolicy{cmBase: base}
	}
}

// throttleSpinRounds bounds one contention-window wait. The wait is
// best-effort backpressure, not an admission lock: a bounded spin cannot
// livelock, and under the explore scheduler (where Gosched does not pass
// the cooperative baton) it degrades to a recorded no-op.
const throttleSpinRounds = 128

// cmBase is the state shared by every policy implementation: the engine,
// the owning thread (for Stats/obs accounting), the per-thread retry-budget
// controller, and the jitter RNG (zero for the static policy).
type cmBase struct {
	e   *Engine
	b   *ThreadBase
	ctl RetryController
	rng uint64
}

// nextRand steps the thread-local xorshift64 stream.
func (c *cmBase) nextRand() uint64 {
	x := c.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	c.rng = x
	return x
}

// backoff performs one bounded randomized exponential backoff before the
// attempt-th retry (1-based): uniform in [1, base<<(attempt-1)] processor
// yields, capped at BackoffMaxYields. Counter-only on the obs ledger (one
// fires per retry; ring entries would drown the window).
func (c *cmBase) backoff(attempt int) {
	p := &c.e.policy
	bound := p.BackoffMaxYields
	if shift := uint(attempt - 1); shift < 31 {
		if b := p.BackoffBaseYields << shift; b < bound {
			bound = b
		}
	}
	n := 1 + int(c.nextRand()%uint64(bound))
	c.b.St.PolicyBackoffs++
	c.b.RecordPolicy(obs.DecisionBackoff)
	if cooperative.Load() {
		// The explore scheduler serializes workers; yielding cannot let
		// anyone else run and only adds wall-clock noise.
		return
	}
	for i := 0; i < n; i++ {
		runtime.Gosched()
	}
}

// giveUp applies the paper's static give-up rules shared by every policy:
// non-retryable non-explicit aborts (capacity, spurious) fall back at once;
// explicit aborts (lock-taken conditions the driver spins out) and
// conflicts retry until the budget is spent.
func (c *cmBase) giveUp(ab *htm.Abort, retries int) bool {
	if !ab.MayRetry() && ab.Code != htm.Explicit {
		return true
	}
	return retries >= c.ctl.Budget()
}

func (c *cmBase) OnFastCommit(retriesUsed int) { c.ctl.OnFastCommit(retriesUsed) }
func (c *cmBase) OnFallback() {
	c.ctl.OnFallback()
	c.e.slowPath.Add(1)
}
func (c *cmBase) OnSlowDone()               { c.e.slowPath.Add(-1) }
func (c *cmBase) OnSTMRestart(restarts int) {}

// staticPolicy is the paper's §3.3 policy verbatim, routed through the
// engine so every driver has exactly one retry-decision code path. Its
// decisions are bit-identical to the pre-engine drivers: fixed budget,
// immediate fallback on capacity/spurious, the deterministic
// ConflictBackoff ablation knob, no admission gating.
type staticPolicy struct{ cmBase }

func (p *staticPolicy) Kind() PolicyKind { return PolicyStatic }
func (p *staticPolicy) AdmitFast() bool  { return !p.e.policy.DisableFast }

func (p *staticPolicy) OnAbort(ab *htm.Abort, retries int) Decision {
	if p.giveUp(ab, retries) {
		return GiveUpFast
	}
	if ab.Code == htm.Conflict {
		p.e.policy.Backoff(retries - 1)
	}
	return RetryFast
}

// backoffPolicy is static plus bounded randomized exponential backoff on
// hardware conflicts and software restarts — the classic CM baseline that
// de-synchronizes colliding threads without judging abort causes.
type backoffPolicy struct{ cmBase }

func (p *backoffPolicy) Kind() PolicyKind { return PolicyBackoff }
func (p *backoffPolicy) AdmitFast() bool  { return !p.e.policy.DisableFast }

func (p *backoffPolicy) OnAbort(ab *htm.Abort, retries int) Decision {
	if p.giveUp(ab, retries) {
		return GiveUpFast
	}
	if ab.Code == htm.Conflict {
		p.backoff(retries)
	}
	return RetryFast
}

func (p *backoffPolicy) OnSTMRestart(restarts int) { p.backoff(restarts) }

// adaptivePolicy is the abort-cause-aware policy. Three mechanisms, all
// consuming the PR 2 taxonomy:
//
//   - Capacity demotion: a capacity abort proves the transaction's
//     footprint exceeds the transactional cache, so hardware retries are
//     futile — the thread is demoted past the fast path. Every
//     PromotionProbePeriod transactions it probes the fast path once; a
//     hardware commit of the probe re-promotes it, so a workload phase
//     change (smaller transactions) recovers full speed.
//   - Conflict backoff: randomized exponential, as backoffPolicy.
//   - Contention window: when ContentionWindow or more threads sit on the
//     slow path, fast-path entry waits briefly (bounded) — RH NOrec's
//     postfix commits acquire the clock lock, and hardware speculation
//     launched into that convoy mostly aborts on it.
//
// Progress is never traded away: demotion and throttling only *redirect or
// delay* entry; the slow path and its serial-lock escalation stay exactly
// as §3.3 prescribes (DESIGN.md §10).
type adaptivePolicy struct {
	cmBase
	// demoted: capacity-demoted past the fast path.
	demoted bool
	// sinceDemotion counts fast-path skips since demotion (the probe epoch).
	sinceDemotion int
	// probing: the current transaction is a re-promotion probe.
	probing bool
	// admitted: the current transaction actually attempted the fast path
	// (budget feedback must not learn from bypassed attempts).
	admitted bool
}

func (p *adaptivePolicy) Kind() PolicyKind { return PolicyAdaptive }

func (p *adaptivePolicy) AdmitFast() bool {
	if p.e.policy.DisableFast {
		p.admitted = false
		return false
	}
	if p.demoted {
		p.sinceDemotion++
		if p.sinceDemotion < p.e.policy.PromotionProbePeriod {
			p.b.St.PolicyFastSkips++
			p.admitted = false
			return false
		}
		p.sinceDemotion = 0
		p.probing = true
		p.b.St.PolicyPromotionProbes++
		p.b.RecordPolicy(obs.DecisionPromoteProbe)
		p.admitted = true
		return true
	}
	if w := p.e.policy.ContentionWindow; w > 0 && p.e.slowPath.Load() >= int64(w) {
		p.b.St.PolicyThrottleWaits++
		p.b.RecordPolicy(obs.DecisionThrottle)
		if !cooperative.Load() {
			for i := 0; i < throttleSpinRounds && p.e.slowPath.Load() >= int64(w); i++ {
				runtime.Gosched()
			}
		}
	}
	p.admitted = true
	return true
}

func (p *adaptivePolicy) OnAbort(ab *htm.Abort, retries int) Decision {
	if ab.Code == htm.Capacity {
		if !p.demoted {
			p.demoted = true
			p.b.St.PolicyDemotions++
			p.b.RecordPolicy(obs.DecisionDemote)
		}
		p.sinceDemotion = 0
		p.probing = false
		return GiveUpFast
	}
	if p.giveUp(ab, retries) {
		return GiveUpFast
	}
	if ab.Code == htm.Conflict {
		p.backoff(retries)
	}
	return RetryFast
}

func (p *adaptivePolicy) OnFastCommit(retriesUsed int) {
	p.ctl.OnFastCommit(retriesUsed)
	// A hardware commit while demoted is by construction the probe
	// committing: the fast path works again, re-promote.
	p.demoted = false
	p.probing = false
}

func (p *adaptivePolicy) OnFallback() {
	if p.admitted {
		// Budget feedback only from real fast-path surrender; a demotion
		// bypass must not shrink the budget further.
		p.ctl.OnFallback()
	}
	p.probing = false
	p.e.slowPath.Add(1)
}

func (p *adaptivePolicy) OnSTMRestart(restarts int) { p.backoff(restarts) }
