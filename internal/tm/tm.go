// Package tm defines the common transactional-memory runtime every
// algorithm in this repository plugs into: the application-facing Tx
// interface, per-thread contexts, the restart protocol, transactional
// allocation with epoch-based reclamation, retry policies (paper §3.3), and
// the statistics counters behind the analysis rows of the paper's Figures
// 4–6.
//
// The package plays the role GCC's libitm plays in the paper: one
// application code path, several interchangeable TM back ends. The paper's
// compiler hint for statically read-only transactions maps to the explicit
// RunReadOnly entry point.
package tm

import (
	"rhnorec/internal/mem"
)

// Tx is the transactional view application code runs against. All shared
// state lives in a mem.Memory and is accessed by address; Load and Store are
// instrumented (or not — on hardware fast paths they go straight to the
// speculation buffer) by the executing TM.
//
// Transactions restart by panicking internally; application callbacks must
// not recover panics they did not raise, and must be safe to re-execute from
// the top (no external side effects before commit).
type Tx interface {
	// Load reads one word of transactional memory.
	Load(a mem.Addr) uint64
	// Store writes one word of transactional memory.
	Store(a mem.Addr, v uint64)
	// Alloc returns a fresh zeroed block of transactional memory. If the
	// transaction ultimately aborts, the block is reclaimed automatically.
	Alloc(nWords int) mem.Addr
	// Free releases a block when the transaction commits. Reclamation is
	// deferred past a grace period so that doomed transactions still
	// running on stale snapshots never observe recycled memory.
	Free(a mem.Addr, nWords int)
}

// Thread is one worker's handle onto a TM system. Threads are not safe for
// concurrent use; create one per goroutine via System.NewThread.
type Thread interface {
	// Run executes fn as an atomic transaction, retrying per the system's
	// policy until it commits. If fn returns a non-nil error the
	// transaction aborts cleanly (no writes become visible) and Run
	// returns that error without retrying.
	Run(fn func(Tx) error) error
	// RunReadOnly is Run with a static read-only hint, standing in for the
	// GCC compiler analysis the paper uses: the TM may skip writer-side
	// commit work (e.g. the fast path omits the clock bump of Algorithm 1
	// line 33). Calling Store inside fn is a programming error and panics.
	RunReadOnly(fn func(Tx) error) error
	// Stats exposes this thread's counters. The caller may read them
	// between transactions; systems never reset them.
	Stats() *Stats
	// Close releases the thread's reclamation slot. The thread must not be
	// used afterwards.
	Close()
}

// System is a transactional-memory algorithm instance over one shared
// memory.
type System interface {
	// Name identifies the algorithm (e.g. "rh-norec").
	Name() string
	// Memory returns the shared memory the system synchronizes.
	Memory() *mem.Memory
	// NewThread creates a per-goroutine execution context.
	NewThread() Thread
}

// ErrStoreInReadOnly is the panic message used when a transaction declared
// read-only executes a Store.
const ErrStoreInReadOnly = "tm: Store inside a read-only transaction"

// restartSignal is the panic payload of a software-transaction restart.
type restartSignal struct{}

// Restart aborts the current software transaction attempt and transfers
// control to the owning Run loop, which will retry. It never returns.
func Restart() {
	panic(restartSignal{})
}

// IsRestart reports whether a recovered panic value is a transaction
// restart.
func IsRestart(r any) bool {
	_, ok := r.(restartSignal)
	return ok
}
