package tm

import (
	"sync"
	"testing"

	"rhnorec/internal/htm"
	"rhnorec/internal/mem"
)

func newTestEngine(p RetryPolicy) (*Engine, *ThreadBase) {
	m := mem.New(1 << 12)
	b := NewThreadBase(m, NewReclaimer())
	e := NewEngine(p, nil)
	return e, &b
}

func TestPolicyKindNames(t *testing.T) {
	for _, k := range []PolicyKind{PolicyStatic, PolicyBackoff, PolicyAdaptive} {
		got, ok := PolicyKindByName(k.String())
		if !ok || got != k {
			t.Errorf("PolicyKindByName(%q) = %v, %v", k.String(), got, ok)
		}
	}
	if _, ok := PolicyKindByName("default"); ok {
		t.Error("PolicyKindByName accepted \"default\" (the unset state)")
	}
	if _, ok := PolicyKindByName("bogus"); ok {
		t.Error("PolicyKindByName accepted an unknown name")
	}
}

func TestWithDefaultsResolvesKindFromEnv(t *testing.T) {
	t.Setenv(PolicyEnvVar, "adaptive")
	p := RetryPolicy{}.WithDefaults()
	if p.Kind != PolicyAdaptive {
		t.Fatalf("Kind = %v, want adaptive from env", p.Kind)
	}
	if !p.Adaptive {
		t.Error("PolicyAdaptive must imply the adaptive retry budget")
	}
	// An explicitly set kind wins over the environment.
	p = RetryPolicy{Kind: PolicyBackoff}.WithDefaults()
	if p.Kind != PolicyBackoff {
		t.Errorf("explicit Kind = %v, want backoff (env must not clobber)", p.Kind)
	}
	t.Setenv(PolicyEnvVar, "nonsense")
	if p := (RetryPolicy{}.WithDefaults()); p.Kind != PolicyStatic {
		t.Errorf("Kind = %v, want static for an unparseable env value", p.Kind)
	}
}

func TestEnginePicksPolicyByKind(t *testing.T) {
	for _, k := range []PolicyKind{PolicyStatic, PolicyBackoff, PolicyAdaptive} {
		e, b := newTestEngine(RetryPolicy{Kind: k})
		if got := e.NewThreadPolicy(b).Kind(); got != k {
			t.Errorf("NewThreadPolicy under %v built a %v policy", k, got)
		}
	}
}

// TestStaticPolicyDecisions pins the static policy to the paper's §3.3
// rules, which the pre-engine drivers hard-coded.
func TestStaticPolicyDecisions(t *testing.T) {
	e, b := newTestEngine(RetryPolicy{Kind: PolicyStatic, MaxHTMRetries: 3})
	p := e.NewThreadPolicy(b)
	cases := []struct {
		name    string
		ab      *htm.Abort
		retries int
		want    Decision
	}{
		{"conflict under budget", &htm.Abort{Code: htm.Conflict}, 1, RetryFast},
		{"explicit under budget", &htm.Abort{Code: htm.Explicit, Arg: htm.ArgHTMLockTaken}, 2, RetryFast},
		{"conflict at budget", &htm.Abort{Code: htm.Conflict}, 3, GiveUpFast},
		{"capacity is never retried", &htm.Abort{Code: htm.Capacity}, 1, GiveUpFast},
		{"spurious is never retried", &htm.Abort{Code: htm.Spurious}, 1, GiveUpFast},
	}
	for _, tc := range cases {
		if got := p.OnAbort(tc.ab, tc.retries); got != tc.want {
			t.Errorf("%s: OnAbort = %v, want %v", tc.name, got, tc.want)
		}
	}
	if !p.AdmitFast() {
		t.Error("static policy must always admit the fast path")
	}
	if b.St.PolicyBackoffs != 0 || b.St.PolicyDemotions != 0 {
		t.Errorf("static policy recorded CM decisions: %+v", b.St)
	}
}

// TestAdaptiveStateTransitions drives the adaptive policy through its
// demotion/probe/re-promotion state machine, table-driven: each step is one
// policy callback plus the expected externally visible state.
func TestAdaptiveStateTransitions(t *testing.T) {
	const probePeriod = 3
	e, b := newTestEngine(RetryPolicy{
		Kind:                 PolicyAdaptive,
		PromotionProbePeriod: probePeriod,
		ContentionWindow:     -1, // isolate demotion from throttling
	})
	p := e.NewThreadPolicy(b)
	capacity := &htm.Abort{Code: htm.Capacity}

	steps := []struct {
		name string
		do   func() bool // returns the AdmitFast result where relevant
		ok   func() bool
	}{
		{"fresh thread admits", p.AdmitFast, func() bool { return true }},
		{"capacity abort gives up fast", func() bool { return p.OnAbort(capacity, 1) == GiveUpFast },
			func() bool { return b.St.PolicyDemotions == 1 }},
		{"fallback after demotion", func() bool { p.OnFallback(); p.OnSlowDone(); return true },
			func() bool { return true }},
		{"skip 1", func() bool { return !p.AdmitFast() }, func() bool { return b.St.PolicyFastSkips == 1 }},
		{"skip 2", func() bool { return !p.AdmitFast() }, func() bool { return b.St.PolicyFastSkips == 2 }},
		{"epoch boundary probes", p.AdmitFast, func() bool { return b.St.PolicyPromotionProbes == 1 }},
		{"probe fails: stays demoted", func() bool { p.OnFallback(); p.OnSlowDone(); return true },
			func() bool { return true }},
		{"skip resumes after failed probe", func() bool { return !p.AdmitFast() },
			func() bool { return b.St.PolicyFastSkips == 3 }},
		{"skip 4", func() bool { return !p.AdmitFast() }, func() bool { return b.St.PolicyFastSkips == 4 }},
		{"second probe", p.AdmitFast, func() bool { return b.St.PolicyPromotionProbes == 2 }},
		{"probe commits: re-promoted", func() bool { p.OnFastCommit(0); return true }, func() bool { return true }},
		{"re-promoted thread admits freely", p.AdmitFast, func() bool { return b.St.PolicyFastSkips == 4 }},
		{"second demotion counts again", func() bool { return p.OnAbort(capacity, 1) == GiveUpFast },
			func() bool { return b.St.PolicyDemotions == 2 }},
	}
	for _, s := range steps {
		if !s.do() {
			t.Fatalf("%s: unexpected transition result", s.name)
		}
		if !s.ok() {
			t.Fatalf("%s: post-state check failed (stats %+v)", s.name, b.St)
		}
	}
	// A repeated capacity abort within one demotion must not double-count.
	p.OnFallback()
	p.OnSlowDone()
	if p.OnAbort(capacity, 1) != GiveUpFast || b.St.PolicyDemotions != 2 {
		t.Errorf("capacity abort while demoted re-counted a demotion: %d", b.St.PolicyDemotions)
	}
}

func TestAdaptiveContentionWindow(t *testing.T) {
	e, b := newTestEngine(RetryPolicy{Kind: PolicyAdaptive, ContentionWindow: 2})
	p := e.NewThreadPolicy(b)
	// Two peers sit on the slow path: the window is at threshold.
	_, b1 := newTestEngine(RetryPolicy{})
	_, b2 := newTestEngine(RetryPolicy{})
	peer1, peer2 := e.NewThreadPolicy(b1), e.NewThreadPolicy(b2)
	peer1.OnFallback()
	peer2.OnFallback()
	if e.SlowPathLoad() != 2 {
		t.Fatalf("SlowPathLoad = %d, want 2", e.SlowPathLoad())
	}
	if !p.AdmitFast() {
		t.Fatal("throttling must delay, not deny, fast-path entry")
	}
	if b.St.PolicyThrottleWaits != 1 {
		t.Errorf("PolicyThrottleWaits = %d, want 1", b.St.PolicyThrottleWaits)
	}
	// Window closes when the slow path drains.
	peer1.OnSlowDone()
	peer2.OnSlowDone()
	if !p.AdmitFast() || b.St.PolicyThrottleWaits != 1 {
		t.Errorf("open window still throttled (waits=%d)", b.St.PolicyThrottleWaits)
	}
	// Negative window disables throttling outright.
	e2, b3 := newTestEngine(RetryPolicy{Kind: PolicyAdaptive, ContentionWindow: -1})
	p3 := e2.NewThreadPolicy(b3)
	x, y := e2.NewThreadPolicy(b1), e2.NewThreadPolicy(b2)
	x.OnFallback()
	y.OnFallback()
	if !p3.AdmitFast() || b3.St.PolicyThrottleWaits != 0 {
		t.Errorf("ContentionWindow<0 still throttled (waits=%d)", b3.St.PolicyThrottleWaits)
	}
}

func TestBackoffPolicyJitterIsSeedDeterministic(t *testing.T) {
	// Two engines over the same seed source must draw identical jitter
	// streams — the property explore replay depends on.
	mkSeed := func() func() uint64 {
		var ctr uint64
		return func() uint64 { ctr++; return ctr }
	}
	drain := func(seedFn func() uint64) []uint64 {
		m := mem.New(1 << 12)
		b := NewThreadBase(m, NewReclaimer())
		e := NewEngine(RetryPolicy{Kind: PolicyBackoff}, seedFn)
		p := e.NewThreadPolicy(&b).(*backoffPolicy)
		out := make([]uint64, 8)
		for i := range out {
			out[i] = p.nextRand()
		}
		return out
	}
	a, c := drain(mkSeed()), drain(mkSeed())
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("jitter stream diverged at %d: %d vs %d", i, a[i], c[i])
		}
	}
	// Distinct threads of one engine must NOT share a stream (lock-step
	// jitter defeats backoff).
	e, _ := newTestEngine(RetryPolicy{Kind: PolicyBackoff})
	m := mem.New(1 << 12)
	b1, b2 := NewThreadBase(m, NewReclaimer()), NewThreadBase(m, NewReclaimer())
	p1 := e.NewThreadPolicy(&b1).(*backoffPolicy)
	p2 := e.NewThreadPolicy(&b2).(*backoffPolicy)
	if p1.nextRand() == p2.nextRand() {
		t.Error("two threads drew identical first jitter values")
	}
}

func TestBackoffRecordsAndClamps(t *testing.T) {
	e, b := newTestEngine(RetryPolicy{Kind: PolicyBackoff, MaxHTMRetries: 100,
		BackoffBaseYields: 4, BackoffMaxYields: 8})
	p := e.NewThreadPolicy(b)
	// A huge retry ordinal must clamp the exponent, not shift past 63 bits.
	for _, retries := range []int{1, 2, 40, 99} {
		if got := p.OnAbort(&htm.Abort{Code: htm.Conflict}, retries); got != RetryFast {
			t.Fatalf("retries=%d: OnAbort = %v, want RetryFast", retries, got)
		}
	}
	if b.St.PolicyBackoffs != 4 {
		t.Errorf("PolicyBackoffs = %d, want 4", b.St.PolicyBackoffs)
	}
	// Software restarts back off too.
	p.OnSTMRestart(1)
	if b.St.PolicyBackoffs != 5 {
		t.Errorf("PolicyBackoffs after OnSTMRestart = %d, want 5", b.St.PolicyBackoffs)
	}
}

// TestRacePolicyConcurrentWindow stresses the engine's only shared state —
// the contention window — from many goroutines under -race, interleaving
// admission checks with window opens/closes.
func TestRacePolicyConcurrentWindow(t *testing.T) {
	e, _ := newTestEngine(RetryPolicy{Kind: PolicyAdaptive, ContentionWindow: 2})
	m := mem.New(1 << 14)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b := NewThreadBase(m, NewReclaimer())
			p := e.NewThreadPolicy(&b)
			for i := 0; i < 2000; i++ {
				if p.AdmitFast() {
					switch i % 3 {
					case 0:
						p.OnFastCommit(0)
					case 1:
						if p.OnAbort(&htm.Abort{Code: htm.Conflict}, 1) == RetryFast {
							p.OnFastCommit(1)
							continue
						}
						p.OnFallback()
						p.OnSTMRestart(1)
						p.OnSlowDone()
					case 2:
						p.OnAbort(&htm.Abort{Code: htm.Capacity}, 1)
						p.OnFallback()
						p.OnSlowDone()
					}
				} else {
					p.OnFallback()
					p.OnSlowDone()
				}
			}
		}()
	}
	wg.Wait()
	if got := e.SlowPathLoad(); got != 0 {
		t.Errorf("SlowPathLoad = %d after all workers drained, want 0", got)
	}
}
