package tm

import (
	"reflect"
	"testing"

	"rhnorec/internal/obs"
)

// addSpecialFields are the Stats fields Add handles by means other than
// the reflective uint64 sum. Adding a field of any non-uint64 type to
// Stats without extending Add *and* this allowlist fails the test below.
var addSpecialFields = map[string]bool{"Obs": true}

// TestStatsAddAggregatesEveryField is the guard the hand-maintained
// field-by-field Add lacked: it walks Stats reflectively, so a newly added
// counter is automatically covered — and a newly added non-counter field
// fails loudly until Add learns to aggregate it.
func TestStatsAddAggregatesEveryField(t *testing.T) {
	var a, b Stats
	bv := reflect.ValueOf(&b).Elem()
	typ := bv.Type()
	for i := 0; i < bv.NumField(); i++ {
		name := typ.Field(i).Name
		if addSpecialFields[name] {
			continue
		}
		f := bv.Field(i)
		if f.Kind() != reflect.Uint64 {
			t.Fatalf("Stats.%s has kind %v: Stats.Add only sums uint64 counters reflectively — extend Add and addSpecialFields for it", name, f.Kind())
		}
		// Distinct per-field values so a transposed aggregation would show.
		f.SetUint(uint64(i + 1))
	}
	a.Add(&b)
	a.Add(&b)
	av := reflect.ValueOf(&a).Elem()
	for i := 0; i < av.NumField(); i++ {
		name := typ.Field(i).Name
		if addSpecialFields[name] {
			continue
		}
		want := 2 * uint64(i+1)
		if got := av.Field(i).Uint(); got != want {
			t.Errorf("after two Adds, Stats.%s = %d, want %d", name, got, want)
		}
	}
}

// TestStatsAddMergesObs checks the one non-counter aggregation path: the
// observability recorder merges (histograms and taxonomy cells sum; the
// aggregate materializes a recorder lazily and never grows a ring).
func TestStatsAddMergesObs(t *testing.T) {
	var agg Stats
	var th Stats
	th.Obs = obs.NewRecorder(obs.Config{RingSize: 8})
	th.Obs.RecordPhase(obs.PhaseFast, 100)
	th.Obs.RecordAbort(obs.CauseConflict, 2, 7)
	th.Commits = 3

	agg.Add(&th)
	agg.Add(&th)
	if agg.Commits != 6 {
		t.Fatalf("Commits = %d, want 6", agg.Commits)
	}
	if agg.Obs == nil {
		t.Fatal("aggregate recorder not materialized")
	}
	if h := agg.Obs.PhaseHist(obs.PhaseFast); h.Count() != 2 || h.Sum() != 200 {
		t.Errorf("merged fast hist count=%d sum=%d, want 2/200", h.Count(), h.Sum())
	}
	if n := agg.Obs.AbortCount(obs.CauseConflict); n != 2 {
		t.Errorf("merged conflict count = %d, want 2", n)
	}
	if agg.Obs.Ring() != nil {
		t.Error("aggregate recorder must not grow a ring (rings are per-thread)")
	}

	// Adding a Stats with no recorder must not disturb the aggregate.
	agg.Add(&Stats{Commits: 1})
	if agg.Commits != 7 || agg.Obs.AbortCount(obs.CauseConflict) != 2 {
		t.Error("nil-Obs Add disturbed the aggregate")
	}
}

// TestStatsRatios pins the derived figure rows to hand-computed values.
func TestStatsRatios(t *testing.T) {
	s := Stats{
		Commits:           10,
		Fallbacks:         4,
		HTMConflictAborts: 5,
		HTMCapacityAborts: 2,
		SlowPathCommits:   4,
		SlowPathRestarts:  8,
		PrefixAttempts:    4,
		PrefixCommits:     3,
		PostfixAttempts:   2,
		PostfixCommits:    1,
	}
	if s.SlowPathRatio() != 0.4 {
		t.Errorf("SlowPathRatio = %v", s.SlowPathRatio())
	}
	if s.ConflictAbortsPerOp() != 0.5 || s.CapacityAbortsPerOp() != 0.2 {
		t.Errorf("aborts/op = %v, %v", s.ConflictAbortsPerOp(), s.CapacityAbortsPerOp())
	}
	if s.RestartsPerSlowPath() != 2 {
		t.Errorf("RestartsPerSlowPath = %v", s.RestartsPerSlowPath())
	}
	if s.PrefixSuccessRatio() != 0.75 || s.PostfixSuccessRatio() != 0.5 {
		t.Errorf("prefix/postfix = %v, %v", s.PrefixSuccessRatio(), s.PostfixSuccessRatio())
	}
	var zero Stats
	if zero.SlowPathRatio() != 0 || zero.HTMAborts() != 0 {
		t.Error("zero Stats must yield zero ratios")
	}
}
