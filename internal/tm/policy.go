package tm

import (
	"os"
	"runtime"
)

// PolicyKind selects the contention-management policy (the Engine picks the
// Policy implementation from it; see engine.go). The paper fixes the static
// §3.3 policy; the other kinds are the contention-management layer this
// simulator adds on top, measurable head-to-head via rhbench -policy.
type PolicyKind uint8

const (
	// PolicyDefault means "unset": WithDefaults resolves it from the
	// RHNOREC_POLICY environment variable (static|backoff|adaptive), falling
	// back to PolicyStatic. An explicitly set kind always wins over the
	// environment, so CLI flags override ambient CI configuration.
	PolicyDefault PolicyKind = iota
	// PolicyStatic is the paper's §3.3 policy verbatim: a fixed hardware
	// retry budget, immediate fallback on capacity, no backoff (except the
	// deterministic ConflictBackoff ablation knob, off by default).
	PolicyStatic
	// PolicyBackoff is static plus bounded randomized exponential backoff
	// before hardware conflict retries and software-path restarts, the
	// classic contention-management baseline.
	PolicyBackoff
	// PolicyAdaptive is the abort-cause-aware policy: capacity aborts demote
	// the thread past the fast path (with epoch-based re-promotion probes),
	// conflict aborts back off randomized-exponentially, a global contention
	// window throttles fast-path entry while slow-path writers are hot, and
	// the per-thread retry budget self-tunes (implies RetryPolicy.Adaptive).
	PolicyAdaptive

	numPolicyKinds
)

var policyKindNames = [numPolicyKinds]string{
	PolicyDefault:  "default",
	PolicyStatic:   "static",
	PolicyBackoff:  "backoff",
	PolicyAdaptive: "adaptive",
}

// String returns the kind's stable name (the rhbench -policy vocabulary).
func (k PolicyKind) String() string {
	if k < numPolicyKinds {
		return policyKindNames[k]
	}
	return "invalid"
}

// PolicyKindByName parses a kind name as accepted by rhbench -policy and
// the RHNOREC_POLICY environment variable ("default" is not accepted: it
// names the unset state, not a policy).
func PolicyKindByName(name string) (PolicyKind, bool) {
	for k, n := range policyKindNames {
		if n == name && PolicyKind(k) != PolicyDefault {
			return PolicyKind(k), true
		}
	}
	return PolicyDefault, false
}

// PolicyEnvVar is the environment variable WithDefaults consults when
// RetryPolicy.Kind is PolicyDefault, mirroring RHNOREC_STRIPES: it lets CI
// sweep the conformance suite across policies without threading a knob
// through every test harness.
const PolicyEnvVar = "RHNOREC_POLICY"

// CombineEnvVar is the environment variable WithDefaults consults for
// RetryPolicy.Combine ("1" or "true" enables group commit), so CI can run
// the conformance suite with flat combining on without new harness knobs.
const CombineEnvVar = "RHNOREC_COMBINE"

// PersistEnvVar is the environment variable WithDefaults consults for
// RetryPolicy.Persist when it is PersistDefault: "group" (or "1"/"true")
// selects group-fsync durability, "sync" fsync-per-commit, "off" none.
const PersistEnvVar = "RHNOREC_PERSIST"

// PersistMode selects the durability mode of the persistence plane
// (internal/persist): whether committed write sets are redo-logged and how
// eagerly the log reaches stable storage. It lives on RetryPolicy because
// the policy is the per-deployment tuning surface every layer already
// threads through (rhbench -persist, rhserve -persist, RHNOREC_PERSIST).
type PersistMode uint8

const (
	// PersistDefault means "unset": WithDefaults resolves it from the
	// RHNOREC_PERSIST environment variable, falling back to PersistOff.
	PersistDefault PersistMode = iota
	// PersistOff runs without a redo log — the pre-durability behavior.
	PersistOff
	// PersistGroup appends redo records at commit and fsyncs in groups: a
	// durable ack waits for the group-fsync frontier, batching every
	// concurrent waiter behind one fsync pass.
	PersistGroup
	// PersistSync fsyncs inside every commit's append — the
	// fsync-per-commit ablation.
	PersistSync

	numPersistModes
)

var persistModeNames = [numPersistModes]string{
	PersistDefault: "default",
	PersistOff:     "off",
	PersistGroup:   "group",
	PersistSync:    "sync",
}

// String returns the mode's stable name (the rhbench/rhserve -persist
// vocabulary).
func (m PersistMode) String() string {
	if m < numPersistModes {
		return persistModeNames[m]
	}
	return "invalid"
}

// PersistModeByName parses a mode name as accepted by the -persist flags
// and RHNOREC_PERSIST ("default" is not accepted: it names the unset
// state).
func PersistModeByName(name string) (PersistMode, bool) {
	for m, n := range persistModeNames {
		if n == name && PersistMode(m) != PersistDefault {
			return PersistMode(m), true
		}
	}
	return PersistDefault, false
}

// RetryPolicy captures the static retry policy of paper §3.3–§3.4, shared
// by Hybrid NOrec and RH NOrec (Lock Elision uses only the fast-path part).
type RetryPolicy struct {
	// MaxHTMRetries bounds fast-path hardware restarts before falling back
	// to the slow path. Aborts whose status clears the may-retry hint
	// (capacity, explicit policy decisions) fall back immediately.
	MaxHTMRetries int
	// MaxSlowPathRestarts bounds slow-path restarts before the transaction
	// grabs the serial lock to guarantee progress (§3.3 "slow-path").
	MaxSlowPathRestarts int
	// PrefixRetries bounds HTM-prefix attempts per transaction; the paper
	// found one try best (§3.4).
	PrefixRetries int
	// PostfixRetries bounds HTM-postfix attempts per first-write; the
	// paper found one try best (§3.4).
	PostfixRetries int
	// InitialPrefixLength seeds the dynamic prefix-length adaptation: the
	// number of reads the HTM prefix attempts to execute speculatively
	// before the first adjustment.
	InitialPrefixLength int
	// MinPrefixLength floors the adaptation; below it the prefix is not
	// attempted at all.
	MinPrefixLength int
	// DisablePrefix turns the HTM prefix off entirely (ablation knob; with
	// the prefix off RH NOrec isolates the postfix contribution).
	DisablePrefix bool
	// DisablePostfix turns the HTM postfix off entirely (ablation knob;
	// first writes then go straight to the full-software path).
	DisablePostfix bool
	// DisableFast skips the pure-hardware fast path entirely, forcing every
	// transaction onto the slow path (ablation knob; isolates slow-path
	// behavior — the combining sweep uses it to create a commit-lock convoy
	// at will).
	DisableFast bool
	// DisablePrefixAdaptation freezes the prefix length at
	// InitialPrefixLength (ablation knob).
	DisablePrefixAdaptation bool
	// Adaptive enables the dynamic per-thread fast-path retry budget (the
	// paper's §3.3 future-work policy; see RetryController). MaxHTMRetries
	// then seeds the initial budget.
	Adaptive bool
	// ConflictBackoff enables exponential backoff between hardware
	// conflict retries: the k-th retry yields the processor
	// ConflictBackoff<<k times (capped). The paper's static policy has
	// none (0); the knob exists as a contention-management ablation.
	// (Deterministic; the randomized policies use BackoffBaseYields
	// instead.)
	ConflictBackoff int

	// Kind selects the contention-management policy. PolicyDefault resolves
	// from RHNOREC_POLICY, then PolicyStatic.
	Kind PolicyKind
	// BackoffBaseYields is the randomized-backoff base: before the k-th
	// conflict retry (1-based) a thread yields uniformly in
	// [1, BackoffBaseYields<<(k-1)], capped at BackoffMaxYields. Used by
	// PolicyBackoff and PolicyAdaptive.
	BackoffBaseYields int
	// BackoffMaxYields caps one randomized backoff's yield count.
	BackoffMaxYields int
	// PromotionProbePeriod is the re-promotion epoch of PolicyAdaptive: a
	// capacity-demoted thread skips the fast path for this many transactions,
	// then probes it once; a hardware commit of the probe re-promotes the
	// thread (so a workload phase change can recover the fast path).
	PromotionProbePeriod int
	// ContentionWindow is PolicyAdaptive's fast-path admission threshold:
	// when at least this many threads are concurrently on the slow path,
	// fast-path entry is briefly throttled (a bounded wait) to keep hardware
	// speculation from convoying on the slow-path commit lock. Negative
	// disables throttling; 0 takes the default.
	ContentionWindow int
	// Combine enables flat-combining group commit on the software slow
	// path: a committer that finds the sequence lock held at its own
	// snapshot base enqueues its pre-validated write set into the memory's
	// combining ring instead of restarting, and the lock holder drains
	// signature-disjoint queued commits under its one ticket window. Off by
	// default — it changes slow-path yield sequences, so recorded explore
	// schedules assume it off unless re-recorded. WithDefaults also reads
	// the RHNOREC_COMBINE environment variable ("1"/"true" enables) so CI
	// can sweep the conformance suite with combining on.
	Combine bool
	// Persist selects the durability mode (see PersistMode). PersistDefault
	// resolves from RHNOREC_PERSIST, then PersistOff. The TM drivers ignore
	// it — persistence attaches at the memory substrate — but it rides on
	// the policy so every harness that threads a policy (serve, bench, the
	// CLIs) inherits the knob without new plumbing.
	Persist PersistMode
}

// Backoff yields the processor according to the policy for the given retry
// attempt (0-based); a no-op when ConflictBackoff is 0 — the paper's
// static §3.3 policy, which backs off only by falling back.
func (p RetryPolicy) Backoff(attempt int) {
	if p.ConflictBackoff <= 0 {
		return
	}
	n := p.ConflictBackoff << uint(attempt)
	if n > 1024 {
		n = 1024
	}
	for i := 0; i < n; i++ {
		runtime.Gosched()
	}
}

// DefaultPolicy returns the paper's static policy: 10 hardware retries, 10
// slow-path restarts before serialization, single-try prefix and postfix.
func DefaultPolicy() RetryPolicy {
	return RetryPolicy{
		MaxHTMRetries:        10,
		MaxSlowPathRestarts:  10,
		PrefixRetries:        1,
		PostfixRetries:       1,
		InitialPrefixLength:  4096,
		MinPrefixLength:      4,
		Kind:                 PolicyStatic,
		BackoffBaseYields:    64,
		BackoffMaxYields:     1024,
		PromotionProbePeriod: 64,
		ContentionWindow:     2,
		Persist:              PersistOff,
	}
}

// WithDefaults fills zero fields from DefaultPolicy (the paper's static
// §3.3 policy), so callers can set only the knobs they care about.
func (p RetryPolicy) WithDefaults() RetryPolicy {
	d := DefaultPolicy()
	if p.MaxHTMRetries <= 0 {
		p.MaxHTMRetries = d.MaxHTMRetries
	}
	if p.MaxSlowPathRestarts <= 0 {
		p.MaxSlowPathRestarts = d.MaxSlowPathRestarts
	}
	if p.PrefixRetries <= 0 {
		p.PrefixRetries = d.PrefixRetries
	}
	if p.PostfixRetries <= 0 {
		p.PostfixRetries = d.PostfixRetries
	}
	if p.InitialPrefixLength <= 0 {
		p.InitialPrefixLength = d.InitialPrefixLength
	}
	if p.MinPrefixLength <= 0 {
		p.MinPrefixLength = d.MinPrefixLength
	}
	if p.Kind == PolicyDefault {
		if k, ok := PolicyKindByName(os.Getenv(PolicyEnvVar)); ok {
			p.Kind = k
		} else {
			p.Kind = d.Kind
		}
	}
	if p.Kind == PolicyAdaptive {
		// The adaptive policy subsumes the per-thread budget controller.
		p.Adaptive = true
	}
	if p.BackoffBaseYields <= 0 {
		p.BackoffBaseYields = d.BackoffBaseYields
	}
	if p.BackoffMaxYields <= 0 {
		p.BackoffMaxYields = d.BackoffMaxYields
	}
	if p.PromotionProbePeriod <= 0 {
		p.PromotionProbePeriod = d.PromotionProbePeriod
	}
	if p.ContentionWindow == 0 {
		p.ContentionWindow = d.ContentionWindow
	}
	if !p.Combine {
		if v := os.Getenv(CombineEnvVar); v == "1" || v == "true" {
			p.Combine = true
		}
	}
	if p.Persist == PersistDefault {
		switch v := os.Getenv(PersistEnvVar); v {
		case "group", "1", "true":
			p.Persist = PersistGroup
		case "sync":
			p.Persist = PersistSync
		default:
			p.Persist = PersistOff
		}
	}
	return p
}
