package tm

import "runtime"

// RetryPolicy captures the static retry policy of paper §3.3–§3.4, shared
// by Hybrid NOrec and RH NOrec (Lock Elision uses only the fast-path part).
type RetryPolicy struct {
	// MaxHTMRetries bounds fast-path hardware restarts before falling back
	// to the slow path. Aborts whose status clears the may-retry hint
	// (capacity, explicit policy decisions) fall back immediately.
	MaxHTMRetries int
	// MaxSlowPathRestarts bounds slow-path restarts before the transaction
	// grabs the serial lock to guarantee progress (§3.3 "slow-path").
	MaxSlowPathRestarts int
	// PrefixRetries bounds HTM-prefix attempts per transaction; the paper
	// found one try best (§3.4).
	PrefixRetries int
	// PostfixRetries bounds HTM-postfix attempts per first-write; the
	// paper found one try best (§3.4).
	PostfixRetries int
	// InitialPrefixLength seeds the dynamic prefix-length adaptation: the
	// number of reads the HTM prefix attempts to execute speculatively
	// before the first adjustment.
	InitialPrefixLength int
	// MinPrefixLength floors the adaptation; below it the prefix is not
	// attempted at all.
	MinPrefixLength int
	// DisablePrefix turns the HTM prefix off entirely (ablation knob; with
	// the prefix off RH NOrec isolates the postfix contribution).
	DisablePrefix bool
	// DisablePostfix turns the HTM postfix off entirely (ablation knob;
	// first writes then go straight to the full-software path).
	DisablePostfix bool
	// DisablePrefixAdaptation freezes the prefix length at
	// InitialPrefixLength (ablation knob).
	DisablePrefixAdaptation bool
	// Adaptive enables the dynamic per-thread fast-path retry budget (the
	// paper's §3.3 future-work policy; see RetryController). MaxHTMRetries
	// then seeds the initial budget.
	Adaptive bool
	// ConflictBackoff enables exponential backoff between hardware
	// conflict retries: the k-th retry yields the processor
	// ConflictBackoff<<k times (capped). The paper's static policy has
	// none (0); the knob exists as a contention-management ablation.
	ConflictBackoff int
}

// Backoff yields the processor according to the policy for the given retry
// attempt (0-based); a no-op when ConflictBackoff is 0 — the paper's
// static §3.3 policy, which backs off only by falling back.
func (p RetryPolicy) Backoff(attempt int) {
	if p.ConflictBackoff <= 0 {
		return
	}
	n := p.ConflictBackoff << uint(attempt)
	if n > 1024 {
		n = 1024
	}
	for i := 0; i < n; i++ {
		runtime.Gosched()
	}
}

// DefaultPolicy returns the paper's static policy: 10 hardware retries, 10
// slow-path restarts before serialization, single-try prefix and postfix.
func DefaultPolicy() RetryPolicy {
	return RetryPolicy{
		MaxHTMRetries:       10,
		MaxSlowPathRestarts: 10,
		PrefixRetries:       1,
		PostfixRetries:      1,
		InitialPrefixLength: 4096,
		MinPrefixLength:     4,
	}
}

// WithDefaults fills zero fields from DefaultPolicy (the paper's static
// §3.3 policy), so callers can set only the knobs they care about.
func (p RetryPolicy) WithDefaults() RetryPolicy {
	d := DefaultPolicy()
	if p.MaxHTMRetries <= 0 {
		p.MaxHTMRetries = d.MaxHTMRetries
	}
	if p.MaxSlowPathRestarts <= 0 {
		p.MaxSlowPathRestarts = d.MaxSlowPathRestarts
	}
	if p.PrefixRetries <= 0 {
		p.PrefixRetries = d.PrefixRetries
	}
	if p.PostfixRetries <= 0 {
		p.PostfixRetries = d.PostfixRetries
	}
	if p.InitialPrefixLength <= 0 {
		p.InitialPrefixLength = d.InitialPrefixLength
	}
	if p.MinPrefixLength <= 0 {
		p.MinPrefixLength = d.MinPrefixLength
	}
	return p
}
