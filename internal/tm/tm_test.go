package tm

import (
	"testing"

	"rhnorec/internal/mem"
)

func TestRestartSignal(t *testing.T) {
	defer func() {
		r := recover()
		if !IsRestart(r) {
			t.Errorf("recovered %v, want restart signal", r)
		}
	}()
	Restart()
	t.Fatal("Restart returned")
}

func TestIsRestartRejectsOthers(t *testing.T) {
	if IsRestart("nope") || IsRestart(nil) || IsRestart(42) {
		t.Error("IsRestart matched a non-restart value")
	}
}

func TestPolicyWithDefaults(t *testing.T) {
	// Zero-policy resolution reads RHNOREC_POLICY and RHNOREC_PERSIST;
	// pin both empty so the expectations hold under the CI
	// policy-conformance and crash-recovery sweeps.
	t.Setenv(PolicyEnvVar, "")
	t.Setenv(PersistEnvVar, "")
	p := RetryPolicy{}.WithDefaults()
	d := DefaultPolicy()
	if p != d {
		t.Errorf("zero policy -> %+v, want %+v", p, d)
	}
	custom := RetryPolicy{MaxHTMRetries: 3, DisablePrefix: true}.WithDefaults()
	if custom.MaxHTMRetries != 3 {
		t.Error("WithDefaults clobbered MaxHTMRetries")
	}
	if !custom.DisablePrefix {
		t.Error("WithDefaults clobbered DisablePrefix")
	}
	if custom.MaxSlowPathRestarts != d.MaxSlowPathRestarts {
		t.Error("WithDefaults did not fill MaxSlowPathRestarts")
	}
}

func TestBackoffNoopWhenDisabled(t *testing.T) {
	// Just exercise both paths; behaviourally a no-op vs bounded yields.
	RetryPolicy{}.Backoff(3)
	RetryPolicy{ConflictBackoff: 2}.Backoff(0)
	RetryPolicy{ConflictBackoff: 2}.Backoff(30) // must clamp, not 2<<30 yields
}

func TestSoftwareAccessCostSetter(t *testing.T) {
	old := SoftwareAccessCost()
	defer SetSoftwareAccessCost(old)
	SetSoftwareAccessCost(7)
	if got := SoftwareAccessCost(); got != 7 {
		t.Errorf("SoftwareAccessCost = %d, want 7", got)
	}
	SetSoftwareAccessCost(0)
	m := mem.New(1 << 12)
	b := NewThreadBase(m, NewReclaimer())
	b.InstrumentedAccess() // zero-cost path must not hang
}

func TestStatsAddAndRatios(t *testing.T) {
	a := Stats{Commits: 10, HTMConflictAborts: 5, SlowPathCommits: 2, SlowPathRestarts: 6, Fallbacks: 2, PrefixAttempts: 4, PrefixCommits: 3, PostfixAttempts: 2, PostfixCommits: 2}
	b := Stats{Commits: 10, HTMCapacityAborts: 10}
	a.Add(&b)
	if a.Commits != 20 {
		t.Errorf("Commits = %d, want 20", a.Commits)
	}
	if got := a.ConflictAbortsPerOp(); got != 0.25 {
		t.Errorf("ConflictAbortsPerOp = %v, want 0.25", got)
	}
	if got := a.CapacityAbortsPerOp(); got != 0.5 {
		t.Errorf("CapacityAbortsPerOp = %v, want 0.5", got)
	}
	if got := a.RestartsPerSlowPath(); got != 3 {
		t.Errorf("RestartsPerSlowPath = %v, want 3", got)
	}
	if got := a.SlowPathRatio(); got != 0.1 {
		t.Errorf("SlowPathRatio = %v, want 0.1", got)
	}
	if got := a.PrefixSuccessRatio(); got != 0.75 {
		t.Errorf("PrefixSuccessRatio = %v, want 0.75", got)
	}
	if got := a.PostfixSuccessRatio(); got != 1 {
		t.Errorf("PostfixSuccessRatio = %v, want 1", got)
	}
	if got := a.HTMAborts(); got != 15 {
		t.Errorf("HTMAborts = %d, want 15", got)
	}
}

func TestStatsRatiosZeroDenominator(t *testing.T) {
	var s Stats
	for name, f := range map[string]func() float64{
		"conflict": s.ConflictAbortsPerOp,
		"capacity": s.CapacityAbortsPerOp,
		"restarts": s.RestartsPerSlowPath,
		"slowpath": s.SlowPathRatio,
		"prefix":   s.PrefixSuccessRatio,
		"postfix":  s.PostfixSuccessRatio,
	} {
		if got := f(); got != 0 {
			t.Errorf("%s ratio with zero denominator = %v, want 0", name, got)
		}
	}
}

func TestThreadBaseAllocCommit(t *testing.T) {
	m := mem.New(1 << 16)
	r := NewReclaimer()
	b := NewThreadBase(m, r)
	b.BeginTxn()
	a := b.TxAlloc(8)
	if a == mem.Nil {
		t.Fatal("TxAlloc returned nil")
	}
	b.CommitCleanup()
	b.EndTxn()
	if m.LiveBlocks() != 1 {
		t.Errorf("LiveBlocks = %d, want 1 (allocation survives commit)", m.LiveBlocks())
	}
}

func TestThreadBaseAllocAbortReclaims(t *testing.T) {
	m := mem.New(1 << 16)
	r := NewReclaimer()
	b := NewThreadBase(m, r)
	b.BeginTxn()
	b.TxAlloc(8)
	b.AbortCleanup()
	b.EndTxn()
	if b.Slot.PendingBlocks() != 1 {
		t.Errorf("PendingBlocks = %d, want 1 (aborted alloc goes to limbo)", b.Slot.PendingBlocks())
	}
	if m.LiveBlocks() != 1 {
		t.Errorf("LiveBlocks = %d, want 1 before the grace period elapses", m.LiveBlocks())
	}
	// Cycle epochs with further transactions; the limbo block must
	// eventually be recycled.
	for i := 0; i < 5; i++ {
		b.BeginTxn()
		x := b.TxAlloc(1)
		b.TxFree(x, 1)
		b.CommitCleanup()
		b.EndTxn()
		r.tryAdvance()
	}
	b.CloseBase()
	if m.LiveBlocks() != 0 {
		t.Errorf("LiveBlocks = %d, want 0 after grace periods", m.LiveBlocks())
	}
}

func TestThreadBaseFreeDeferredUntilCommit(t *testing.T) {
	m := mem.New(1 << 16)
	r := NewReclaimer()
	b := NewThreadBase(m, r)
	b.BeginTxn()
	a := b.TxAlloc(8)
	b.CommitCleanup()
	b.EndTxn()

	// A free requested by an attempt that aborts must NOT happen.
	b.BeginTxn()
	b.TxFree(a, 8)
	b.AbortCleanup()
	b.EndTxn()
	if m.LiveBlocks() != 1 {
		t.Errorf("LiveBlocks = %d, want 1 (free rolled back on abort)", m.LiveBlocks())
	}

	// A free requested by a committing attempt retires through limbo and
	// lands after the grace period (here forced by CloseBase).
	b.BeginTxn()
	b.TxFree(a, 8)
	b.CommitCleanup()
	b.EndTxn()
	if b.Slot.PendingBlocks() != 1 {
		t.Errorf("PendingBlocks = %d, want 1 (free queued at commit)", b.Slot.PendingBlocks())
	}
	b.CloseBase()
	if m.LiveBlocks() != 0 {
		t.Errorf("LiveBlocks = %d, want 0 (free honoured after grace period)", m.LiveBlocks())
	}
}

func TestEpochAdvanceBlockedByActiveThread(t *testing.T) {
	m := mem.New(1 << 14)
	r := NewReclaimer()
	b1 := NewThreadBase(m, r)
	b2 := NewThreadBase(m, r)
	e0 := r.Epoch()
	b1.BeginTxn()
	r.tryAdvance()
	if r.Epoch() != e0+1 {
		t.Fatalf("epoch did not advance with all threads current: %d", r.Epoch())
	}
	// b1 is pinned at e0; a second advance must be blocked.
	r.tryAdvance()
	if r.Epoch() != e0+1 {
		t.Errorf("epoch advanced past a pinned thread: %d", r.Epoch())
	}
	b1.EndTxn()
	r.tryAdvance()
	if r.Epoch() != e0+2 {
		t.Errorf("epoch did not advance after unpin: %d", r.Epoch())
	}
	_ = b2
}

func TestDeferNilIsNoop(t *testing.T) {
	m := mem.New(1 << 14)
	r := NewReclaimer()
	b := NewThreadBase(m, r)
	b.Slot.Defer(mem.Nil, 8)
	if b.Slot.PendingBlocks() != 0 {
		t.Error("nil defer entered limbo")
	}
}

func TestCloseBaseFlushesLimbo(t *testing.T) {
	m := mem.New(1 << 14)
	r := NewReclaimer()
	b := NewThreadBase(m, r)
	b.BeginTxn()
	a := b.TxAlloc(4)
	b.TxFree(a, 4)
	b.CommitCleanup()
	b.EndTxn()
	b.CloseBase()
	if m.LiveBlocks() != 0 {
		t.Errorf("LiveBlocks = %d, want 0 after CloseBase", m.LiveBlocks())
	}
	b.CloseBase() // idempotent
}
