package tm

import (
	"rhnorec/internal/htm"
	"rhnorec/internal/obs"
)

// This file is the runtime half of the observability layer: ThreadBase
// helpers every TM driver routes its abort and lifecycle events through,
// so that (1) the Stats counters behind Figures 4–6 and the obs taxonomy
// can never disagree, and (2) a driver with observability disabled
// (Stats.Obs == nil) pays exactly one predictable branch per site.

// Obs returns the thread's observability recorder; nil when disabled.
func (b *ThreadBase) Obs() *obs.Recorder { return b.St.Obs }

// RecordHTMAbort accounts one hardware abort on both ledgers: the Stats
// counter for its RTM status code (the "HTM aborts per operation" rows of
// Figures 4–6) and — when observability is attached — the taxonomy cell,
// retry-ordinal histogram and ring event for its protocol-level cause
// (htm.(*Abort).Cause). retry is the 1-based ordinal of the attempt that
// died.
func (b *ThreadBase) RecordHTMAbort(ab *htm.Abort, retry int) {
	switch ab.Code {
	case htm.Conflict:
		b.St.HTMConflictAborts++
	case htm.Capacity:
		b.St.HTMCapacityAborts++
	case htm.Explicit:
		b.St.HTMExplicitAborts++
	case htm.Spurious:
		b.St.HTMSpuriousAborts++
	}
	if o := b.St.Obs; o != nil {
		o.RecordAbort(ab.Cause(), retry, b.M.Ticket())
	}
}

// RecordSTMRestart accounts one software-path restart (a NOrec value
// validation failing or the global clock moving under a read — the
// "restarts per slow-path transaction" row) in the taxonomy and ring. The
// corresponding Stats counter (SlowPathRestarts or STMRestarts) stays with
// the driver's retry loop, which knows which path it is on. retry is the
// 1-based ordinal of the failed attempt.
func (b *ThreadBase) RecordSTMRestart(retry int) {
	if o := b.St.Obs; o != nil {
		o.RecordAbort(obs.CauseSTMValidation, retry, b.M.Ticket())
	}
}

// RecordPolicy accounts one contention-management decision on the obs
// ledger (counter always; ring event for the rare state-changing kinds),
// stamped like every other event with the memory's commit ticket. The
// corresponding Stats counters stay with the policy implementations, which
// know which decision they just took.
func (b *ThreadBase) RecordPolicy(d obs.PolicyDecision) {
	if o := b.St.Obs; o != nil {
		o.RecordPolicy(d, b.M.Ticket())
	}
}

// FoldFilter drains tx's signature-filter tallies into the thread's Stats
// counters and (when attached) the obs ledger. Drivers whose hardware
// context may have filtered call it from Stats(), so the fold costs nothing
// per transaction and the tallies are never double-counted (TakeFilterStats
// resets them).
func (b *ThreadBase) FoldFilter(tx *htm.Txn) {
	f := tx.TakeFilterStats()
	if f == (htm.FilterStats{}) {
		return
	}
	b.St.SigHits += f.Hits
	b.St.SigMisses += f.Misses
	b.St.SigFalsePositives += f.FalsePositives
	b.St.SigUncovered += f.Uncovered
	if o := b.St.Obs; o != nil {
		o.RecordFilter(obs.FilterSigHit, f.Hits)
		o.RecordFilter(obs.FilterSigMiss, f.Misses)
		o.RecordFilter(obs.FilterSigFalsePositive, f.FalsePositives)
		o.RecordFilter(obs.FilterSigUncovered, f.Uncovered)
	}
}

// RecordCombine accounts one group-commit outcome on the obs ledger; the
// Stats counters stay with the driver's commit path, which knows which
// outcome it just took.
func (b *ThreadBase) RecordCombine(k obs.FilterKind) {
	if o := b.St.Obs; o != nil {
		o.RecordFilter(k, 1)
	}
}

// ObsEvent appends a begin/fallback/commit event to the thread's event
// ring (if one is attached), stamped with the memory's commit ticket — a
// global publish counter that keeps cross-thread event orderings
// consistent with the committed history without any lock (the striped
// substrate has no single seqlock clock to sample; see docs/METRICS.md).
func (b *ThreadBase) ObsEvent(k obs.EventKind, p obs.Path) {
	if o := b.St.Obs; o != nil {
		o.RecordEvent(k, p, b.M.Ticket())
	}
}
