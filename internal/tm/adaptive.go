package tm

// RetryController implements the dynamic-adaptive fast-path retry policy
// the paper leaves as future work (§3.3, citing the lock-elision
// self-tuning line of work): instead of a fixed hardware-retry budget, each
// thread adjusts its budget from the outcome of recent transactions —
// shrinking it when retries keep ending in fallbacks anyway (wasted
// speculation) and growing it when commits arrive only after burning most
// of the budget (speculation pays, give it more room).
//
// The controller is per-thread (no shared state, no atomics) and is
// consulted by the hybrid drivers when RetryPolicy.Adaptive is set.
type RetryController struct {
	budget   int
	min, max int
	// fallbackStreak counts consecutive transactions that exhausted the
	// budget; nearMissStreak counts consecutive commits that needed most
	// of it.
	fallbackStreak int
	nearMissStreak int
	enabled        bool
}

// InitRetry configures the controller from the policy (MaxHTMRetries seeds
// the budget, per §3.3's static default); drivers call it at thread
// construction.
func (c *RetryController) InitRetry(p RetryPolicy) {
	c.budget = p.MaxHTMRetries
	c.min = 1
	c.max = 4 * p.MaxHTMRetries
	c.enabled = p.Adaptive
	c.fallbackStreak = 0
	c.nearMissStreak = 0
}

// Budget returns the current fast-path retry budget (the bound the §3.3
// retry loop checks before falling back).
func (c *RetryController) Budget() int { return c.budget }

// OnFastCommit records a fast-path commit that needed retriesUsed hardware
// restarts.
func (c *RetryController) OnFastCommit(retriesUsed int) {
	if !c.enabled {
		return
	}
	c.fallbackStreak = 0
	if retriesUsed*4 >= c.budget*3 { // used >= 75% of the budget
		c.nearMissStreak++
		if c.nearMissStreak >= 4 && c.budget < c.max {
			c.budget++
			c.nearMissStreak = 0
		}
	} else {
		c.nearMissStreak = 0
	}
}

// OnFallback records a transaction that exhausted the budget and fell back.
func (c *RetryController) OnFallback() {
	if !c.enabled {
		return
	}
	c.nearMissStreak = 0
	c.fallbackStreak++
	if c.fallbackStreak >= 2 && c.budget > c.min {
		c.budget--
		c.fallbackStreak = 0
	}
}
