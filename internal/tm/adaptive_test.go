package tm

import "testing"

func newController(adaptive bool) RetryController {
	var c RetryController
	c.InitRetry(RetryPolicy{MaxHTMRetries: 10, Adaptive: adaptive})
	return c
}

func TestControllerDisabledIsStatic(t *testing.T) {
	c := newController(false)
	for i := 0; i < 100; i++ {
		c.OnFallback()
		c.OnFastCommit(10)
	}
	if c.Budget() != 10 {
		t.Errorf("disabled controller moved the budget to %d", c.Budget())
	}
}

func TestControllerShrinksOnFallbackStreaks(t *testing.T) {
	c := newController(true)
	for i := 0; i < 6; i++ {
		c.OnFallback()
	}
	if got := c.Budget(); got != 7 {
		t.Errorf("budget after 6 fallbacks = %d, want 7 (one decrement per pair)", got)
	}
	// It must never go below the floor.
	for i := 0; i < 1000; i++ {
		c.OnFallback()
	}
	if c.Budget() != 1 {
		t.Errorf("budget floor = %d, want 1", c.Budget())
	}
}

func TestControllerGrowsOnNearMisses(t *testing.T) {
	c := newController(true)
	for i := 0; i < 4; i++ {
		c.OnFastCommit(9) // 90% of the budget
	}
	if got := c.Budget(); got != 11 {
		t.Errorf("budget after 4 near-miss commits = %d, want 11", got)
	}
	// It must never exceed the cap.
	for i := 0; i < 10000; i++ {
		c.OnFastCommit(c.Budget())
	}
	if c.Budget() != 40 {
		t.Errorf("budget cap = %d, want 40 (4x initial)", c.Budget())
	}
}

func TestControllerCheapCommitsResetStreaks(t *testing.T) {
	c := newController(true)
	c.OnFallback()
	c.OnFastCommit(0) // cheap commit breaks the fallback streak
	c.OnFallback()
	if c.Budget() != 10 {
		t.Errorf("budget = %d after interleaved outcomes, want 10", c.Budget())
	}
	c.OnFastCommit(9)
	c.OnFastCommit(0) // cheap commit breaks the near-miss streak
	c.OnFastCommit(9)
	c.OnFastCommit(9)
	c.OnFastCommit(9)
	if c.Budget() != 10 {
		t.Errorf("budget = %d, want 10 (streak was broken)", c.Budget())
	}
}
