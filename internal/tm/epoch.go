package tm

import (
	"sync"
	"sync/atomic"

	"rhnorec/internal/mem"
)

// Epoch-based reclamation for transactional memory blocks.
//
// Why it exists: several of the STMs here (TL2 in particular) let doomed
// transactions — ones that will fail validation — keep running briefly on a
// stale snapshot. If a block freed by a committed transaction were recycled
// and zeroed immediately, such a doomed reader could observe the new bytes
// without any validation trigger and wander off the data structure. The
// paper's C implementations face the same hazard and lean on allocator
// quiescence; we make the guarantee explicit: a freed block is recycled only
// after every thread has passed through a quiescent point (finished the
// transaction it was running when the block was freed).
//
// The scheme is classic three-bucket EBR. Threads pin the global epoch for
// the duration of each Run call; frees go into the bucket of the epoch they
// happened in; bucket e is recycled once the global epoch reaches e+2.

// block records one deferred free.
type block struct {
	addr mem.Addr
	n    int
}

// Reclaimer coordinates grace periods across the threads of one System.
type Reclaimer struct {
	mu    sync.Mutex
	slots []*Slot
	epoch atomic.Uint64
}

// NewReclaimer creates an empty reclaimer. The epoch starts at 1 so that a
// zero Slot state always means "quiescent".
func NewReclaimer() *Reclaimer {
	r := &Reclaimer{}
	r.epoch.Store(1)
	return r
}

// Epoch returns the current global epoch (for tests and introspection).
func (r *Reclaimer) Epoch() uint64 { return r.epoch.Load() }

// Register adds a participating thread and returns its slot. The slot's
// frees recycle into cache.
func (r *Reclaimer) Register(cache *mem.ThreadCache) *Slot {
	s := &Slot{r: r, cache: cache}
	r.mu.Lock()
	r.slots = append(r.slots, s)
	r.mu.Unlock()
	return s
}

// unregister removes a slot, first flushing every limbo bucket to the
// thread's cache; the caller guarantees the grace periods have elapsed or
// that the system is quiescing (Thread.Close during shutdown).
func (r *Reclaimer) unregister(s *Slot) {
	r.mu.Lock()
	for i, x := range r.slots {
		if x == s {
			r.slots[i] = r.slots[len(r.slots)-1]
			r.slots = r.slots[:len(r.slots)-1]
			break
		}
	}
	r.mu.Unlock()
	for b := range s.limbo {
		s.drainBucket(b)
	}
}

// tryAdvance bumps the global epoch if every registered thread is either
// quiescent or already in the current epoch.
func (r *Reclaimer) tryAdvance() {
	e := r.epoch.Load()
	r.mu.Lock()
	for _, s := range r.slots {
		st := s.state.Load()
		if st != 0 && st != e {
			r.mu.Unlock()
			return
		}
	}
	r.epoch.CompareAndSwap(e, e+1)
	r.mu.Unlock()
}

// advancePeriod is how many deferred frees a slot accumulates before
// attempting an epoch advance.
const advancePeriod = 64

// Slot is one thread's participation handle. Not safe for concurrent use.
type Slot struct {
	r     *Reclaimer
	cache *mem.ThreadCache
	state atomic.Uint64 // 0 = quiescent, else the pinned epoch
	limbo [3][]block
	frees int
}

// Enter pins the current epoch for the duration of a transaction.
func (s *Slot) Enter() {
	for {
		e := s.r.epoch.Load()
		s.state.Store(e)
		if s.r.epoch.Load() == e {
			return
		}
		// The epoch advanced while we were pinning; re-pin at the newer
		// epoch so we never hold the reclaimer back spuriously.
	}
}

// Exit marks the thread quiescent.
func (s *Slot) Exit() {
	s.state.Store(0)
}

// Defer schedules a block for reclamation after the grace period.
func (s *Slot) Defer(a mem.Addr, n int) {
	if a == mem.Nil {
		return
	}
	e := s.r.epoch.Load()
	b := int(e % 3)
	s.limbo[b] = append(s.limbo[b], block{a, n})
	s.frees++
	if s.frees%advancePeriod == 0 {
		s.r.tryAdvance()
	}
	s.reclaim(e)
}

// reclaim recycles the bucket that is two epochs old.
func (s *Slot) reclaim(e uint64) {
	if e < 3 {
		return
	}
	s.drainBucket(int((e + 1) % 3)) // (e+1)%3 == (e-2)%3
}

func (s *Slot) drainBucket(b int) {
	for _, blk := range s.limbo[b] {
		s.cache.Free(blk.addr, blk.n)
	}
	s.limbo[b] = s.limbo[b][:0]
}

// PendingBlocks reports how many blocks await reclamation (for tests).
func (s *Slot) PendingBlocks() int {
	return len(s.limbo[0]) + len(s.limbo[1]) + len(s.limbo[2])
}
