package hynorec_test

import (
	"sync"
	"testing"

	"rhnorec/internal/htm"
	"rhnorec/internal/hynorec"
	"rhnorec/internal/mem"
	"rhnorec/internal/tm"
	"rhnorec/internal/tmtest"
)

func factory(m *mem.Memory) tm.System {
	dev := htm.NewDevice(m, htm.Config{})
	dev.SetActiveThreads(4)
	return hynorec.New(m, dev, tm.RetryPolicy{})
}

func TestConformance(t *testing.T) {
	tmtest.RunConformance(t, factory, tmtest.Options{})
}

func TestConformanceLazyVariant(t *testing.T) {
	tmtest.RunConformance(t, func(m *mem.Memory) tm.System {
		dev := htm.NewDevice(m, htm.Config{})
		dev.SetActiveThreads(4)
		return hynorec.NewVariant(m, dev, tm.RetryPolicy{}, hynorec.Lazy)
	}, tmtest.Options{})
}

func TestConformanceLazyTinyCapacity(t *testing.T) {
	tmtest.RunConformance(t, func(m *mem.Memory) tm.System {
		dev := htm.NewDevice(m, htm.Config{ReadCapacityLines: 2, WriteCapacityLines: 1})
		dev.SetActiveThreads(4)
		return hynorec.NewVariant(m, dev, tm.RetryPolicy{}, hynorec.Lazy)
	}, tmtest.Options{})
}

func TestLazyName(t *testing.T) {
	m := mem.New(1024)
	sys := hynorec.NewVariant(m, htm.NewDevice(m, htm.Config{}), tm.RetryPolicy{}, hynorec.Lazy)
	if sys.Name() != "hy-norec-lazy" {
		t.Errorf("Name = %q", sys.Name())
	}
}

// TestConformanceTinyCapacity forces constant fallbacks so the software
// slow path carries the whole conformance load.
func TestConformanceTinyCapacity(t *testing.T) {
	tmtest.RunConformance(t, func(m *mem.Memory) tm.System {
		dev := htm.NewDevice(m, htm.Config{ReadCapacityLines: 2, WriteCapacityLines: 1})
		dev.SetActiveThreads(4)
		return hynorec.New(m, dev, tm.RetryPolicy{})
	}, tmtest.Options{})
}

// TestConformanceSpurious exercises the retry machinery under environmental
// aborts.
func TestConformanceSpurious(t *testing.T) {
	tmtest.RunConformance(t, func(m *mem.Memory) tm.System {
		dev := htm.NewDevice(m, htm.Config{SpuriousAbortProb: 0.05})
		dev.SetActiveThreads(4)
		return hynorec.New(m, dev, tm.RetryPolicy{})
	}, tmtest.Options{Ops: 150, NondeterministicAborts: true})
}

func TestName(t *testing.T) {
	m := mem.New(1024)
	sys := hynorec.New(m, htm.NewDevice(m, htm.Config{}), tm.RetryPolicy{})
	if sys.Name() != "hy-norec" {
		t.Errorf("Name = %q", sys.Name())
	}
	if sys.Memory() != m {
		t.Error("Memory accessor broken")
	}
}

func TestMismatchedDevicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for device over a different memory")
		}
	}()
	hynorec.New(mem.New(1024), htm.NewDevice(mem.New(1024), htm.Config{}), tm.RetryPolicy{})
}

// TestFastPathOnlyWhenUncontended: with no conflicts everything commits in
// hardware and the fallback count stays untouched.
func TestFastPathOnlyWhenUncontended(t *testing.T) {
	m := mem.New(1 << 16)
	sys := factory(m)
	th := sys.NewThread()
	defer th.Close()
	var a mem.Addr
	for i := 0; i < 40; i++ {
		if err := th.Run(func(tx tm.Tx) error {
			if a == mem.Nil {
				a = tx.Alloc(1)
			}
			tx.Store(a, tx.Load(a)+1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	s := th.Stats()
	if s.FastPathCommits != 40 || s.Fallbacks != 0 {
		t.Errorf("stats = %+v, want 40 fast-path commits, 0 fallbacks", s)
	}
}

// TestCapacityGoesToSlowPath: an oversized transaction must complete on the
// software slow path.
func TestCapacityGoesToSlowPath(t *testing.T) {
	m := mem.New(1 << 20)
	dev := htm.NewDevice(m, htm.Config{WriteCapacityLines: 4})
	dev.SetActiveThreads(1)
	sys := hynorec.New(m, dev, tm.RetryPolicy{})
	th := sys.NewThread()
	defer th.Close()
	var base mem.Addr
	if err := th.Run(func(tx tm.Tx) error { base = tx.Alloc(32 * mem.LineWords); return nil }); err == nil {
		// Alloc alone has no HTM writes; may commit fast. Either way:
	}
	if err := th.Run(func(tx tm.Tx) error {
		for i := 0; i < 32; i++ {
			tx.Store(base+mem.Addr(i*mem.LineWords), uint64(i+1))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	s := th.Stats()
	if s.SlowPathCommits == 0 {
		t.Errorf("stats = %+v, want a slow-path commit", s)
	}
	if s.HTMCapacityAborts == 0 {
		t.Error("no capacity abort recorded")
	}
	for i := 0; i < 32; i++ {
		if got := m.LoadPlain(base + mem.Addr(i*mem.LineWords)); got != uint64(i+1) {
			t.Fatalf("word %d = %d after slow-path commit", i, got)
		}
	}
}

// TestSlowWriterAbortsFastPaths: the defining HY-NOrec behaviour — a
// slow-path writer's first write (setting the HTM lock) aborts concurrent
// hardware transactions, even ones touching unrelated data.
func TestSlowWriterAbortsFastPaths(t *testing.T) {
	m := mem.New(1 << 20)
	dev := htm.NewDevice(m, htm.Config{WriteCapacityLines: 4})
	dev.SetActiveThreads(2)
	sys := hynorec.New(m, dev, tm.RetryPolicy{})
	setup := sys.NewThread()
	var big, small mem.Addr
	if err := setup.Run(func(tx tm.Tx) error {
		big = tx.Alloc(32 * mem.LineWords)
		small = tx.Alloc(mem.LineWords)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	setup.Close()
	var wg sync.WaitGroup
	const rounds = 200
	wg.Add(2)
	go func() { // slow-path writer (capacity-bound -> always falls back)
		defer wg.Done()
		th := sys.NewThread()
		defer th.Close()
		for i := 0; i < rounds; i++ {
			_ = th.Run(func(tx tm.Tx) error {
				for k := 0; k < 32; k++ {
					tx.Store(big+mem.Addr(k*mem.LineWords), uint64(i))
				}
				return nil
			})
		}
	}()
	var fastStats tm.Stats
	go func() { // fast-path writer on unrelated data
		defer wg.Done()
		th := sys.NewThread()
		defer th.Close()
		for i := 0; i < rounds*4; i++ {
			_ = th.Run(func(tx tm.Tx) error {
				tx.Store(small, tx.Load(small)+1)
				return nil
			})
		}
		fastStats = *th.Stats()
	}()
	wg.Wait()
	if got := m.LoadPlain(small); got != rounds*4 {
		t.Errorf("fast counter = %d, want %d", got, rounds*4)
	}
	// The fast thread must have suffered aborts caused by the unrelated
	// slow writer (false aborts — the scalability problem RH NOrec fixes).
	if fastStats.HTMAborts() == 0 {
		t.Error("fast path saw zero aborts despite concurrent slow-path writers")
	}
}

// TestSerialLockEnsuresProgress: with a hostile stream of fast-path writer
// commits, a capacity-bound slow path still finishes (via the serial lock).
func TestSerialLockEnsuresProgress(t *testing.T) {
	m := mem.New(1 << 20)
	dev := htm.NewDevice(m, htm.Config{WriteCapacityLines: 4})
	dev.SetActiveThreads(2)
	sys := hynorec.New(m, dev, tm.RetryPolicy{MaxSlowPathRestarts: 3})
	setup := sys.NewThread()
	var big, hot mem.Addr
	if err := setup.Run(func(tx tm.Tx) error {
		big = tx.Alloc(32 * mem.LineWords)
		hot = tx.Alloc(mem.LineWords)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	setup.Close()
	done := make(chan struct{})
	go func() { // fast writers hammering the clock
		th := sys.NewThread()
		defer th.Close()
		for {
			select {
			case <-done:
				return
			default:
			}
			_ = th.Run(func(tx tm.Tx) error {
				tx.Store(hot, tx.Load(hot)+1)
				return nil
			})
		}
	}()
	th := sys.NewThread()
	defer th.Close()
	for i := 0; i < 20; i++ {
		if err := th.Run(func(tx tm.Tx) error {
			// Reads first (restart-prone), then a capacity-busting write set.
			_ = tx.Load(hot)
			for k := 0; k < 32; k++ {
				tx.Store(big+mem.Addr(k*mem.LineWords), uint64(i))
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	if th.Stats().SlowPathCommits == 0 {
		t.Error("expected slow-path commits under capacity pressure")
	}
}
