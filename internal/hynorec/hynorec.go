// Package hynorec implements the Hybrid NOrec HyTM of Dalessandro et al. in
// the eager flavour the paper benchmarks (§3.1, "HY-NOrec").
//
// Coordination uses three global variables (plus the serial starvation
// lock of §3.3), all living in transactional memory so hardware
// transactions subscribe to them exactly as on real hardware:
//
//   - global clock: LSB is the lock bit; writer commits advance it by 2.
//   - global htm lock: set by a software slow path at its first write,
//     aborting every hardware fast path at once (their subscription covers
//     it from their first instruction). This is the scheme's false-abort
//     source: a slow-path writer to unrelated data still kills every
//     hardware transaction — the cost RH NOrec's postfix removes.
//   - fallback count: the number of active slow paths; fast-path writers
//     bump the clock only when it is non-zero.
package hynorec

import (
	"runtime"

	"rhnorec/internal/htm"
	"rhnorec/internal/mem"
	"rhnorec/internal/obs"
	"rhnorec/internal/tm"
)

// XABORT payloads used by the protocol: the canonical htm.Arg* codes, so
// the observability taxonomy classifies our explicit aborts.
const (
	abortHTMLockTaken = htm.ArgHTMLockTaken
	abortClockLocked  = htm.ArgClockLocked
	abortSerialTaken  = htm.ArgSerialTaken
)

// Variant selects the software slow path's write strategy.
type Variant int

const (
	// Eager writes in place under the clock lock from the first write on —
	// the variant the paper found faster at its concurrency levels and the
	// one it benchmarks (§3.1).
	Eager Variant = iota
	// Lazy buffers writes and publishes them at commit (the classic
	// Hybrid NOrec design; §3.1 notes it was implemented and outperformed
	// by the eager one).
	Lazy
)

// System is a Hybrid NOrec TM over one shared memory.
type System struct {
	m       *mem.Memory
	dev     *htm.Device
	rec     *tm.Reclaimer
	policy  tm.RetryPolicy
	engine  *tm.Engine
	variant Variant

	// ring, when non-nil (RetryPolicy.Combine with the Lazy variant), is the
	// flat-combining ring of the group-commit commit path: a lazy committer
	// that finds the clock locked at exactly its own snapshot base enqueues
	// its buffered write set here instead of spinning, and the lock holder
	// drains signature-disjoint entries under its one ticket window.
	ring *mem.CombineRing

	gClock     mem.Addr
	gHTMLock   mem.Addr
	gFallbacks mem.Addr
	serialLock mem.Addr
}

// combineSigBits is the bloom width of the combining ring's signatures
// (compared only with each other, so the width is fixed at the maximum).
const combineSigBits = mem.MaxSigBits

// New creates an eager Hybrid NOrec system. dev must speculate over m; zero
// policy fields take the paper's defaults.
func New(m *mem.Memory, dev *htm.Device, policy tm.RetryPolicy) *System {
	return NewVariant(m, dev, policy, Eager)
}

// NewVariant creates a Hybrid NOrec system with the chosen slow-path
// variant.
func NewVariant(m *mem.Memory, dev *htm.Device, policy tm.RetryPolicy, v Variant) *System {
	if dev.Memory() != m {
		panic("hynorec: device bound to a different memory")
	}
	engine := tm.NewEngine(policy, dev.Config().SeedFn)
	tc := m.NewThreadCache()
	s := &System{
		m:          m,
		dev:        dev,
		rec:        tm.NewReclaimer(),
		policy:     engine.Policy(),
		engine:     engine,
		variant:    v,
		gClock:     tc.Alloc(mem.LineWords),
		gHTMLock:   tc.Alloc(mem.LineWords),
		gFallbacks: tc.Alloc(mem.LineWords),
		serialLock: tc.Alloc(mem.LineWords),
	}
	if s.policy.Combine && v == Lazy {
		s.ring = mem.NewCombineRing()
	}
	return s
}

// CombineRing returns the group-commit ring, or nil when combining is off —
// a diagnostic handle for tests and benchmark instrumentation.
func (s *System) CombineRing() *mem.CombineRing { return s.ring }

// Engine returns the system's contention-management engine (the service
// layer's admission-controller saturation signal; see core.System.Engine).
func (s *System) Engine() *tm.Engine { return s.engine }

// Name implements tm.System.
func (s *System) Name() string {
	if s.variant == Lazy {
		return "hy-norec-lazy"
	}
	return "hy-norec"
}

// Memory implements tm.System.
func (s *System) Memory() *mem.Memory { return s.m }

// NewThread implements tm.System.
func (s *System) NewThread() tm.Thread {
	t := &thread{
		sys:      s,
		base:     tm.NewThreadBase(s.m, s.rec),
		htx:      s.dev.NewTxn(),
		writeMap: make(map[mem.Addr]uint64, 16),
	}
	t.base.CM = s.engine.NewThreadPolicy(&t.base)
	return t
}

type readEntry struct {
	addr mem.Addr
	val  uint64
}

type thread struct {
	sys  *System
	base tm.ThreadBase
	htx  *htm.Txn
	ro   bool

	// Slow-path state. Eager: undo log under the clock lock. Lazy: value
	// read set with extension plus a buffered write set.
	txv           uint64
	writeDetected bool
	undo          []mem.WriteEntry
	readSet       []readEntry
	writeMap      map[mem.Addr]uint64
	wOrder        []mem.Addr
	serialHeld    bool

	// Group-commit state (sys.ring != nil). combWrites is the flattened
	// write set offered to a holder (grow-once, recycled); drainMask records
	// ring slots claimed by this thread's own in-progress drain so every
	// abort path can resolve them rejected.
	combWrites []mem.WriteEntry
	drainMask  uint32
}

func (t *thread) Stats() *tm.Stats { t.base.FoldFilter(t.htx); return &t.base.St }
func (t *thread) Close()           { t.base.CloseBase() }

func (t *thread) Run(fn func(tm.Tx) error) error         { return t.run(fn, false) }
func (t *thread) RunReadOnly(fn func(tm.Tx) error) error { return t.run(fn, true) }

func (t *thread) run(fn func(tm.Tx) error, ro bool) error {
	if nested := t.base.Nested(); nested != nil {
		// Flat nesting: execute inline in the enclosing transaction.
		return fn(nested)
	}
	t.base.BeginTxn()
	defer t.base.EndTxn()
	t.ro = ro
	o := t.base.St.Obs
	attemptStart := o.Start()
	t.base.ObsEvent(obs.EventBegin, obs.PathNone)
	retries := 0
	if t.base.CM.AdmitFast() {
		for {
			fastStart := o.Start()
			err, ab := t.fastAttempt(fn)
			o.RecordSince(obs.PhaseFast, fastStart)
			if ab == nil {
				if err == nil {
					t.base.CM.OnFastCommit(retries)
					t.base.ObsEvent(obs.EventCommit, obs.PathFast)
				}
				o.RecordSince(obs.PhaseAttempt, attemptStart)
				return err
			}
			t.base.RecordHTMAbort(ab, retries+1)
			retries++
			// The policy judges the abort (§3.3 gives capacity and other
			// no-retry statuses straight to the slow path); protocol lock
			// spins stay here.
			if t.base.CM.OnAbort(ab, retries) != tm.RetryFast {
				break
			}
			t.waitOutAbortCause(ab)
		}
	}
	t.base.CM.OnFallback()
	t.base.St.Fallbacks++
	t.base.ObsEvent(obs.EventFallback, obs.PathNone)
	err := t.slowRun(fn)
	o.RecordSince(obs.PhaseAttempt, attemptStart)
	return err
}

// waitOutAbortCause avoids restarting straight into a certain abort when
// the explicit-abort payload names a lock that is still held.
func (t *thread) waitOutAbortCause(ab *htm.Abort) {
	m := t.base.M
	if ab.Code != htm.Explicit {
		return
	}
	switch ab.Arg {
	case abortHTMLockTaken:
		for m.LoadPlain(t.sys.gHTMLock) != 0 {
			runtime.Gosched()
		}
	case abortClockLocked:
		for m.LoadPlain(t.sys.gClock)&1 != 0 {
			runtime.Gosched()
		}
	case abortSerialTaken:
		for m.LoadPlain(t.sys.serialLock) != 0 {
			runtime.Gosched()
		}
	}
}

// fastAttempt is Algorithm-1-style: subscribe to the HTM lock at start, run
// fn uninstrumented, and at commit notify slow paths via the clock when any
// exist. Transactions that wrote nothing commit lock-free in the substrate
// (seqlock validation, no writeback lock).
func (t *thread) fastAttempt(fn func(tm.Tx) error) (err error, ab *htm.Abort) {
	defer func() {
		if r := recover(); r != nil {
			if a, ok := htm.AsAbort(r); ok {
				t.base.AbortCleanup()
				err, ab = nil, a
				return
			}
			t.htx.Cancel()
			t.base.AbortCleanup()
			if tm.IsRestart(r) {
				err, ab = nil, &htm.Abort{Code: htm.Conflict}
				return
			}
			panic(r)
		}
	}()
	t.htx.Begin()
	if t.htx.Load(t.sys.gHTMLock) != 0 {
		t.htx.Abort(abortHTMLockTaken)
	}
	if uerr := t.base.CallUser(fn, fastTx{t}); uerr != nil {
		t.htx.Cancel()
		t.base.AbortCleanup()
		t.base.St.UserAborts++
		return uerr, nil
	}
	if t.htx.WriteLineCount() > 0 {
		// Writer commit: tell the slow paths memory changed, but only if
		// any exist (fallback-count subscription happens here, at the very
		// end, keeping the common no-fallback case clock-free).
		if t.htx.Load(t.sys.gFallbacks) > 0 {
			if t.htx.Load(t.sys.serialLock) != 0 {
				t.htx.Abort(abortSerialTaken)
			}
			c := t.htx.Load(t.sys.gClock)
			if c&1 != 0 {
				t.htx.Abort(abortClockLocked)
			}
			t.htx.Store(t.sys.gClock, c+2)
		}
	}
	t.htx.Commit()
	t.base.CommitCleanup()
	t.base.St.Commits++
	t.base.St.FastPathCommits++
	if t.ro {
		t.base.St.ReadOnlyCommits++
	}
	return nil, nil
}

// slowRun executes the eager NOrec software slow path with the hybrid
// coordination, including the serial starvation escape of §3.3.
func (t *thread) slowRun(fn func(tm.Tx) error) error {
	m := t.base.M
	m.AddPlain(t.sys.gFallbacks, 1)
	defer m.SubPlain(t.sys.gFallbacks, 1)
	defer t.base.CM.OnSlowDone()
	o := t.base.St.Obs
	restarts := 0
	for {
		t.base.St.SlowPathStarts++
		serial := t.serialHeld
		serialStart := o.Start()
		err, restarted := t.slowAttempt(fn)
		if !restarted {
			if serial {
				o.RecordSince(obs.PhaseSerial, serialStart)
			}
			if t.serialHeld {
				m.StorePlain(t.sys.serialLock, 0)
				t.serialHeld = false
			}
			return err
		}
		t.base.St.SlowPathRestarts++
		t.base.RecordSTMRestart(restarts + 1)
		restarts++
		t.base.CM.OnSTMRestart(restarts)
		if restarts >= t.sys.policy.MaxSlowPathRestarts && !t.serialHeld {
			for !m.CASPlain(t.sys.serialLock, 0, 1) {
				runtime.Gosched()
			}
			t.serialHeld = true
		}
	}
}

// slowAttempt is one try of the software slow path; the caller's loop
// accounts restarts in the taxonomy.
func (t *thread) slowAttempt(fn func(tm.Tx) error) (err error, restarted bool) {
	defer func() {
		if r := recover(); r != nil {
			t.slowAbortCleanup()
			if tm.IsRestart(r) {
				err, restarted = nil, true
				return
			}
			panic(r)
		}
	}()
	o := t.base.St.Obs
	m := t.base.M
	t.writeDetected = false
	t.undo = t.undo[:0]
	t.readSet = t.readSet[:0]
	clear(t.writeMap)
	t.wOrder = t.wOrder[:0]
	swStart := o.Start()
	for {
		v := m.LoadPlain(t.sys.gClock)
		if v&1 == 0 {
			t.txv = v
			break
		}
		runtime.Gosched()
	}
	if uerr := t.base.CallUser(fn, slowTx{t}); uerr != nil {
		t.slowAbortCleanup()
		t.base.St.UserAborts++
		return uerr, false
	}
	o.RecordSince(obs.PhaseSoftware, swStart)
	wbStart := o.Start()
	switch t.sys.variant {
	case Eager:
		if t.writeDetected {
			// Algorithm-2 ordering: release the HTM lock, then unlock and
			// advance the clock.
			m.StorePlain(t.sys.gHTMLock, 0)
			m.StorePlain(t.sys.gClock, (t.txv&^1)+2)
			t.writeDetected = false
		}
	case Lazy:
		if len(t.wOrder) > 0 {
			t.lazyCommit()
		}
	}
	o.RecordSince(obs.PhaseWriteback, wbStart)
	t.base.CommitCleanup()
	t.base.St.Commits++
	t.base.St.SlowPathCommits++
	if t.ro {
		t.base.St.ReadOnlyCommits++
	}
	if t.serialHeld {
		t.base.ObsEvent(obs.EventCommit, obs.PathSerial)
	} else {
		t.base.ObsEvent(obs.EventCommit, obs.PathSlow)
	}
	return nil, false
}

// lazyCommit publishes the lazy variant's buffered writes: lock the clock
// (validating or extending the snapshot as needed), kill the hardware fast
// paths for the non-atomic write-back, publish, release. With the combining
// ring enabled, a committer that loses the lock race to a holder at exactly
// its own base enqueues instead of spinning, and a committer that wins the
// lock drains compatible queued commits before releasing.
func (t *thread) lazyCommit() {
	m := t.base.M
	for !m.CASPlain(t.sys.gClock, t.txv, t.txv|1) {
		if t.sys.ring != nil && m.LoadPlain(t.sys.gClock) == t.txv|1 {
			// A holder locked the clock at our snapshot base: our value-
			// validated read set is still exactly as valid as it was, so
			// offer the write set to the holder's group instead of waiting.
			if t.tryEnqueue() {
				return
			}
			continue
		}
		t.txv = t.validate()
	}
	m.StorePlain(t.sys.gHTMLock, 1)
	for _, a := range t.wOrder {
		m.StorePlain(a, t.writeMap[a])
	}
	if t.sys.ring != nil {
		t.drainGroup()
	}
	m.StorePlain(t.sys.gHTMLock, 0)
	m.StorePlain(t.sys.gClock, t.txv+2)
	if t.drainMask != 0 {
		// The group is visible (the clock released): resolve the claims done.
		t.sys.ring.Resolve(t.drainMask, true)
		t.drainMask = 0
	}
}

// drainGroup drains compatible queued commits into the holder's window: the
// group signature starts as the holder's own write footprint, and every
// admitted entry must be read-disjoint from it (see mem.CombineRing.Drain
// for the serial-order argument). Runs with the clock locked and the HTM
// lock held, so the published writes are invisible until the clock releases
// — software readers value-validate only at even clocks.
func (t *thread) drainGroup() {
	m := t.base.M
	// Linger one scheduler beat so contending committers can reach their
	// commit, observe the locked clock, and enqueue — the combining batch
	// exists only if the holder gives it a moment to form.
	runtime.Gosched()
	var group mem.Signature
	for _, a := range t.wOrder {
		group.AddLine(mem.LineOf(a), combineSigBits)
	}
	t.drainMask = 0
	n := t.sys.ring.Drain(t.txv, &group, 1<<30, &t.drainMask, func(ws []mem.WriteEntry) {
		for _, w := range ws {
			m.StorePlain(w.Addr, w.Value)
		}
	})
	if n > 0 {
		t.base.St.CombineDrains++
		t.base.RecordCombine(obs.FilterCombineDrain)
	}
}

// tryEnqueue offers the buffered write set to the current holder's group and
// waits for a verdict. It returns true when the group committed us; false
// when the entry could not be placed or was retracted (the caller re-examines
// the clock). A rejected claim restarts the attempt.
func (t *thread) tryEnqueue() bool {
	m := t.base.M
	r := t.sys.ring
	var rsig, wsig mem.Signature
	for i := range t.readSet {
		rsig.AddLine(mem.LineOf(t.readSet[i].addr), combineSigBits)
	}
	t.combWrites = t.combWrites[:0]
	for _, a := range t.wOrder {
		t.combWrites = append(t.combWrites, mem.WriteEntry{Addr: a, Value: t.writeMap[a]})
		wsig.AddLine(mem.LineOf(a), combineSigBits)
	}
	slot := r.Enqueue(t.txv, t.combWrites, &rsig, &wsig)
	if slot < 0 {
		runtime.Gosched()
		return false
	}
	for {
		switch r.Poll(slot) {
		case mem.CombineDone:
			r.Release(slot)
			t.base.St.CombinedCommits++
			t.base.RecordCombine(obs.FilterCombinedCommit)
			return true
		case mem.CombineRejected:
			r.Release(slot)
			t.base.St.CombineRejects++
			t.base.RecordCombine(obs.FilterCombineReject)
			tm.Restart()
		}
		// The clock load paces the wait (a yield point under the
		// deterministic explorer) and detects a holder that finished
		// without claiming us.
		if m.LoadPlain(t.sys.gClock) != t.txv|1 {
			if r.TryCancel(slot) {
				return false
			}
			// A holder claimed the entry between the clock moving and the
			// cancel: its verdict is imminent — keep polling.
		}
		runtime.Gosched()
	}
}

// validate re-checks the lazy read set by value, returning the even clock
// the set is valid at; it restarts on a mismatch.
func (t *thread) validate() uint64 {
	m := t.base.M
	for {
		time := m.LoadPlain(t.sys.gClock)
		if time&1 == 1 {
			runtime.Gosched()
			continue
		}
		for _, r := range t.readSet {
			if m.LoadPlain(r.addr) != r.val {
				tm.Restart()
			}
		}
		if m.LoadPlain(t.sys.gClock) == time {
			return time
		}
	}
}

// slowAbortCleanup rolls back eager writes and releases the hybrid locks.
// Only user errors or application panics can abort after the first write
// (the clock lock makes validation failures impossible), so no concurrent
// transaction can have observed the undone values.
func (t *thread) slowAbortCleanup() {
	m := t.base.M
	if t.drainMask != 0 {
		// A drain claimed ring entries but the publish never became visible:
		// resolve them rejected so their owners can restart.
		t.sys.ring.Resolve(t.drainMask, false)
		t.drainMask = 0
	}
	for i := len(t.undo) - 1; i >= 0; i-- {
		m.StorePlain(t.undo[i].Addr, t.undo[i].Value)
	}
	t.undo = t.undo[:0]
	if t.writeDetected {
		m.StorePlain(t.sys.gHTMLock, 0)
		m.StorePlain(t.sys.gClock, t.txv&^1)
		t.writeDetected = false
	}
	t.base.AbortCleanup()
}

// fastTx is the uninstrumented hardware view.
type fastTx struct{ t *thread }

func (v fastTx) Load(a mem.Addr) uint64 { return v.t.htx.Load(a) }

func (v fastTx) Store(a mem.Addr, val uint64) {
	if v.t.ro {
		panic(tm.ErrStoreInReadOnly)
	}
	v.t.htx.Store(a, val)
}

func (v fastTx) Alloc(n int) mem.Addr   { return v.t.base.TxAlloc(n) }
func (v fastTx) Free(a mem.Addr, n int) { v.t.base.TxFree(a, n) }

// slowTx is the NOrec software view with hybrid coordination (eager or
// lazy per the system variant).
type slowTx struct{ t *thread }

func (v slowTx) Load(a mem.Addr) uint64 {
	t := v.t
	t.base.InstrumentedAccess()
	m := t.base.M
	if t.sys.variant == Eager {
		val := m.LoadPlain(a)
		if m.LoadPlain(t.sys.gClock) != t.txv {
			tm.Restart()
		}
		return val
	}
	if val, ok := t.writeMap[a]; ok {
		return val
	}
	val := m.LoadPlain(a)
	for m.LoadPlain(t.sys.gClock) != t.txv {
		t.txv = t.validate()
		val = m.LoadPlain(a)
	}
	t.readSet = append(t.readSet, readEntry{a, val})
	return val
}

func (v slowTx) Store(a mem.Addr, val uint64) {
	t := v.t
	if t.ro {
		panic(tm.ErrStoreInReadOnly)
	}
	t.base.InstrumentedAccess()
	m := t.base.M
	if t.sys.variant == Lazy {
		if _, ok := t.writeMap[a]; !ok {
			t.wOrder = append(t.wOrder, a)
		}
		t.writeMap[a] = val
		return
	}
	if !t.writeDetected {
		// First write: lock the clock, then kill every hardware fast path
		// by taking the HTM lock (their subscription reads it).
		if !m.CASPlain(t.sys.gClock, t.txv, t.txv|1) {
			tm.Restart()
		}
		t.txv |= 1
		t.writeDetected = true
		m.StorePlain(t.sys.gHTMLock, 1)
	}
	t.undo = append(t.undo, mem.WriteEntry{Addr: a, Value: m.LoadPlain(a)})
	m.StorePlain(a, val)
}

func (v slowTx) Alloc(n int) mem.Addr   { return v.t.base.TxAlloc(n) }
func (v slowTx) Free(a mem.Addr, n int) { v.t.base.TxFree(a, n) }
