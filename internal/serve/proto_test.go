package serve_test

import (
	"bufio"
	"bytes"
	"io"
	"net"
	"net/http"
	"reflect"
	"testing"
	"time"

	"rhnorec/internal/serve"
)

// requestCorpus is one request of every opcode, used by the roundtrip test
// and as the fuzz seed corpus.
func requestCorpus() []*serve.ProtoRequest {
	return []*serve.ProtoRequest{
		{Opcode: serve.OpcodeHello, ReqID: 1, Hello: "client-a"},
		{Opcode: serve.OpcodeGet, ReqID: 2, Ops: []serve.Op{
			{Kind: serve.OpGet, Key: 7}, {Kind: serve.OpGet, Key: 1<<40 + 3}}},
		{Opcode: serve.OpcodePut, ReqID: 3, Ops: []serve.Op{{Kind: serve.OpPut, Key: 9, Val: 1 << 50}}},
		{Opcode: serve.OpcodeCas, ReqID: 4, Ops: []serve.Op{{Kind: serve.OpCas, Key: 2, Old: 5, Val: 6}}},
		{Opcode: serve.OpcodeScan, ReqID: 5, Ops: []serve.Op{{Kind: serve.OpScan, Key: 10, Count: 32}}},
		{Opcode: serve.OpcodeTxn, ReqID: 6, Ops: []serve.Op{
			{Kind: serve.OpGet, Key: 1},
			{Kind: serve.OpPut, Key: 2, Val: 3},
			{Kind: serve.OpCas, Key: 4, Old: 5, Val: 6},
			{Kind: serve.OpScan, Key: 0, Count: 4},
		}},
		{Opcode: serve.OpcodePing, ReqID: 7},
	}
}

func TestProtoRequestRoundtrip(t *testing.T) {
	for _, req := range requestCorpus() {
		frame, err := serve.AppendRequest(nil, req)
		if err != nil {
			t.Fatalf("opcode %d: encode: %v", req.Opcode, err)
		}
		got, err := serve.ParseRequest(frame)
		if err != nil {
			t.Fatalf("opcode %d: decode: %v", req.Opcode, err)
		}
		if got.Opcode != req.Opcode || got.ReqID != req.ReqID || got.Hello != req.Hello ||
			!reflect.DeepEqual(normOps(got.Ops), normOps(req.Ops)) {
			t.Errorf("opcode %d roundtrip:\n got %+v\nwant %+v", req.Opcode, got, req)
		}
	}
}

// normOps normalizes nil/empty op slices so DeepEqual compares content.
func normOps(ops []serve.Op) []serve.Op {
	if len(ops) == 0 {
		return nil
	}
	return ops
}

// responseCorpus is one response of every status shape, used by the
// roundtrip and recycled-decode tests and as the fuzz seed corpus.
func responseCorpus() []*serve.ProtoResponse {
	return []*serve.ProtoResponse{
		{Status: serve.StatusOK, ReqID: 1, Results: []serve.OpResult{
			{Val: 42}, {Val: 7, Swapped: true}, {Vals: []uint64{1, 2, 3}}}},
		{Status: serve.StatusOK, ReqID: 2, Results: []serve.OpResult{}},
		{Status: serve.StatusBadRequest, ReqID: 3, Msg: "key 99 out of range"},
		{Status: serve.StatusShed, ReqID: 4, RetryAfterMS: 1500},
		{Status: serve.StatusError, ReqID: 5, Msg: "boom"},
		{Status: serve.StatusPong, ReqID: 6},
	}
}

func TestProtoResponseRoundtrip(t *testing.T) {
	for _, resp := range responseCorpus() {
		frame := serve.AppendResponse(nil, resp)
		got, err := serve.ParseResponse(frame)
		if err != nil {
			t.Fatalf("status %d: decode: %v", resp.Status, err)
		}
		if got.Status != resp.Status || got.ReqID != resp.ReqID || got.Msg != resp.Msg ||
			got.RetryAfterMS != resp.RetryAfterMS || len(got.Results) != len(resp.Results) {
			t.Errorf("status %d roundtrip:\n got %+v\nwant %+v", resp.Status, got, resp)
			continue
		}
		for i := range resp.Results {
			w, g := resp.Results[i], got.Results[i]
			if w.Val != g.Val || w.Swapped != g.Swapped || !reflect.DeepEqual(w.Vals, g.Vals) {
				t.Errorf("status %d result %d: got %+v, want %+v", resp.Status, i, g, w)
			}
		}
	}
}

// requestsEqual compares decoded requests by content (nil and empty op
// slices are the same request).
func requestsEqual(a, b *serve.ProtoRequest) bool {
	return a.Opcode == b.Opcode && a.ReqID == b.ReqID && a.Hello == b.Hello &&
		reflect.DeepEqual(normOps(a.Ops), normOps(b.Ops))
}

// responsesEqual compares decoded responses by content.
func responsesEqual(a, b *serve.ProtoResponse) bool {
	if a.Status != b.Status || a.ReqID != b.ReqID || a.Msg != b.Msg ||
		a.RetryAfterMS != b.RetryAfterMS || len(a.Results) != len(b.Results) {
		return false
	}
	for i := range a.Results {
		x, y := a.Results[i], b.Results[i]
		if x.Val != y.Val || x.Swapped != y.Swapped || len(x.Vals) != len(y.Vals) {
			return false
		}
		for j := range x.Vals {
			if x.Vals[j] != y.Vals[j] {
				return false
			}
		}
	}
	return true
}

// dirtyRequest/dirtyResponse leave a recycled decode target full of stale
// buffers (the widest corpus entries), so a recycled parse that fails to
// overwrite or re-bound a field shows through.
func dirtyRequest(t *testing.T, req *serve.ProtoRequest) {
	t.Helper()
	frame, err := serve.AppendRequest(nil, requestCorpus()[5])
	if err != nil {
		t.Fatal(err)
	}
	if err := serve.ParseRequestInto(frame, req); err != nil {
		t.Fatal(err)
	}
}

func dirtyResponse(t *testing.T, resp *serve.ProtoResponse) {
	t.Helper()
	frame := serve.AppendResponse(nil, responseCorpus()[0])
	if err := serve.ParseResponseInto(frame, resp); err != nil {
		t.Fatal(err)
	}
}

// TestParseRequestIntoRecycled: decoding into a dirty recycled struct must
// produce exactly what a fresh decode does, for every opcode — one request
// envelope serves a whole connection lifetime on the hot path.
func TestParseRequestIntoRecycled(t *testing.T) {
	var recycled serve.ProtoRequest
	for _, req := range requestCorpus() {
		frame, err := serve.AppendRequest(nil, req)
		if err != nil {
			t.Fatalf("opcode %d: encode: %v", req.Opcode, err)
		}
		dirtyRequest(t, &recycled)
		if err := serve.ParseRequestInto(frame, &recycled); err != nil {
			t.Fatalf("opcode %d: recycled decode: %v", req.Opcode, err)
		}
		fresh, err := serve.ParseRequest(frame)
		if err != nil {
			t.Fatalf("opcode %d: fresh decode: %v", req.Opcode, err)
		}
		if !requestsEqual(fresh, &recycled) {
			t.Errorf("opcode %d: recycled decode diverged:\n got %+v\nwant %+v", req.Opcode, &recycled, fresh)
		}
	}
}

// TestParseResponseIntoRecycled is the response-side recycled-decode
// equivalence (the pipelined load generator reuses one ProtoResponse per
// connection).
func TestParseResponseIntoRecycled(t *testing.T) {
	var recycled serve.ProtoResponse
	for _, resp := range responseCorpus() {
		frame := serve.AppendResponse(nil, resp)
		dirtyResponse(t, &recycled)
		if err := serve.ParseResponseInto(frame, &recycled); err != nil {
			t.Fatalf("status %d: recycled decode: %v", resp.Status, err)
		}
		fresh, err := serve.ParseResponse(frame)
		if err != nil {
			t.Fatalf("status %d: fresh decode: %v", resp.Status, err)
		}
		if !responsesEqual(fresh, &recycled) {
			t.Errorf("status %d: recycled decode diverged:\n got %+v\nwant %+v", resp.Status, &recycled, fresh)
		}
	}
}

// FuzzParseRequest asserts the decoder never panics and that whatever it
// accepts re-encodes to a frame it accepts again (decode∘encode fixpoint).
func FuzzParseRequest(f *testing.F) {
	for _, req := range requestCorpus() {
		frame, err := serve.AppendRequest(nil, req)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
	}
	f.Add([]byte{})
	f.Add([]byte{serve.OpcodeTxn, 0, 0, 0, 0, 0, 0, 0, 1, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, frame []byte) {
		req, err := serve.ParseRequest(frame)
		if err != nil {
			return
		}
		re, err := serve.AppendRequest(nil, req)
		if err != nil {
			t.Fatalf("decoded request does not re-encode: %v (%+v)", err, req)
		}
		if _, err := serve.ParseRequest(re); err != nil {
			t.Fatalf("re-encoded request does not re-decode: %v", err)
		}
		// A recycled decode target (pooled buffers full of a previous
		// request) must accept the same frames and read back identically.
		var recycled serve.ProtoRequest
		dirtyRequest(t, &recycled)
		if err := serve.ParseRequestInto(frame, &recycled); err != nil {
			t.Fatalf("recycled decode rejects what a fresh decode accepted: %v", err)
		}
		if !requestsEqual(req, &recycled) {
			t.Fatalf("recycled decode diverged:\n got %+v\nwant %+v", &recycled, req)
		}
	})
}

func FuzzParseResponse(f *testing.F) {
	f.Add(serve.AppendResponse(nil, &serve.ProtoResponse{Status: serve.StatusOK,
		Results: []serve.OpResult{{Val: 1}, {Vals: []uint64{2, 3}}}}))
	f.Add(serve.AppendResponse(nil, &serve.ProtoResponse{Status: serve.StatusShed, RetryAfterMS: 9}))
	f.Add([]byte{0, 0})
	f.Fuzz(func(t *testing.T, frame []byte) {
		resp, err := serve.ParseResponse(frame)
		if err != nil {
			return
		}
		re := serve.AppendResponse(nil, resp)
		if _, err := serve.ParseResponse(re); err != nil {
			t.Fatalf("re-encoded response does not re-decode: %v", err)
		}
		var recycled serve.ProtoResponse
		dirtyResponse(t, &recycled)
		if err := serve.ParseResponseInto(frame, &recycled); err != nil {
			t.Fatalf("recycled decode rejects what a fresh decode accepted: %v", err)
		}
		if !responsesEqual(resp, &recycled) {
			t.Fatalf("recycled decode diverged:\n got %+v\nwant %+v", &recycled, resp)
		}
	})
}

// binConn is a minimal test client for the binary protocol.
type binConn struct {
	c  net.Conn
	br *bufio.Reader
}

func dialBinary(t *testing.T, addr string) *binConn {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if _, err := io.WriteString(c, serve.ProtoMagic); err != nil {
		t.Fatalf("magic: %v", err)
	}
	return &binConn{c: c, br: bufio.NewReader(c)}
}

func (b *binConn) roundTrip(t *testing.T, req *serve.ProtoRequest) *serve.ProtoResponse {
	t.Helper()
	frame, err := serve.AppendRequest(nil, req)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if err := serve.WriteFrame(b.c, frame); err != nil {
		t.Fatalf("write: %v", err)
	}
	in, err := serve.ReadFrame(b.br, nil)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	resp, err := serve.ParseResponse(in)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.ReqID != req.ReqID {
		t.Fatalf("reqID %d, want %d", resp.ReqID, req.ReqID)
	}
	return resp
}

// TestBinarySessionAndDemux boots the real demuxed listener and exercises
// both protocols on it: a binary session end to end, then HTTP on the same
// port.
func TestBinarySessionAndDemux(t *testing.T) {
	s, err := serve.New(serve.Config{Keys: 64, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	bc := dialBinary(t, addr.String())
	defer bc.c.Close()

	if resp := bc.roundTrip(t, &serve.ProtoRequest{Opcode: serve.OpcodeHello, ReqID: 1, Hello: "bin-1"}); resp.Status != serve.StatusOK {
		t.Fatalf("hello: %+v", resp)
	}
	if resp := bc.roundTrip(t, &serve.ProtoRequest{Opcode: serve.OpcodePing, ReqID: 2}); resp.Status != serve.StatusPong {
		t.Fatalf("ping: %+v", resp)
	}
	if resp := bc.roundTrip(t, &serve.ProtoRequest{Opcode: serve.OpcodePut, ReqID: 3,
		Ops: []serve.Op{{Kind: serve.OpPut, Key: 5, Val: 77}}}); resp.Status != serve.StatusOK {
		t.Fatalf("put: %+v", resp)
	}
	resp := bc.roundTrip(t, &serve.ProtoRequest{Opcode: serve.OpcodeGet, ReqID: 4,
		Ops: []serve.Op{{Kind: serve.OpGet, Key: 5}}})
	if resp.Status != serve.StatusOK || len(resp.Results) != 1 || resp.Results[0].Val != 77 {
		t.Fatalf("get: %+v", resp)
	}
	resp = bc.roundTrip(t, &serve.ProtoRequest{Opcode: serve.OpcodeTxn, ReqID: 5,
		Ops: []serve.Op{
			{Kind: serve.OpCas, Key: 5, Old: 77, Val: 78},
			{Kind: serve.OpScan, Key: 4, Count: 3},
		}})
	if resp.Status != serve.StatusOK || !resp.Results[0].Swapped || resp.Results[1].Vals[1] != 78 {
		t.Fatalf("txn: %+v", resp)
	}
	// Out-of-range key: client error, session stays usable.
	if resp := bc.roundTrip(t, &serve.ProtoRequest{Opcode: serve.OpcodeGet, ReqID: 6,
		Ops: []serve.Op{{Kind: serve.OpGet, Key: 1 << 30}}}); resp.Status != serve.StatusBadRequest {
		t.Fatalf("bad key: %+v", resp)
	}
	if resp := bc.roundTrip(t, &serve.ProtoRequest{Opcode: serve.OpcodePing, ReqID: 7}); resp.Status != serve.StatusPong {
		t.Fatalf("ping after error: %+v", resp)
	}

	// Same port, HTTP: the demux hands non-magic connections to net/http.
	hr, err := http.Get("http://" + addr.String() + "/get?key=5")
	if err != nil {
		t.Fatalf("http on demuxed listener: %v", err)
	}
	body, _ := io.ReadAll(hr.Body)
	hr.Body.Close()
	if hr.StatusCode != 200 || !bytes.Contains(body, []byte("78")) {
		t.Fatalf("http get: %d %s", hr.StatusCode, body)
	}

	// An oversized frame kills the connection rather than allocating.
	killer := dialBinary(t, addr.String())
	defer killer.c.Close()
	var hdr [4]byte
	hdr[0] = 0xff
	if _, err := killer.c.Write(hdr[:]); err != nil {
		t.Fatalf("oversize header: %v", err)
	}
	killer.c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := killer.br.ReadByte(); err == nil {
		t.Fatal("oversized frame did not close the session")
	}
}
