package serve_test

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rhnorec/internal/serve"
)

// TestStickyRoutingChurnStress is the -race exercise for the worker pool:
// many client identities (so every worker sees traffic and identities churn
// across workers), concurrent transfers between hot keys via TXN, read-only
// conservation probes via GET, and concurrent metrics snapshots racing the
// live workers. Any cross-goroutine access to worker-owned state is a
// -race failure; any torn transfer is an atomicity failure.
func TestStickyRoutingChurnStress(t *testing.T) {
	// Writers all target one hot pair (keys 0 and 1), each txn writing a
	// split of the fixed total — whichever txn commits last, the pair sums
	// to 2*initial, so a torn read is unambiguously an atomicity bug.
	// Keys 2.. take non-invariant noise traffic (puts, scans, cas) purely
	// to churn the routing and batching machinery.
	const (
		initial = 1000
		clients = 16
	)
	s, err := serve.New(serve.Config{
		Keys: 64, Workers: 4, BatchMax: 8, QueueDepth: 64,
		RequestTimeout: 10 * time.Second, RingSize: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if _, err := s.Do("seeder", serve.EpTxn, []serve.Op{
		{Kind: serve.OpPut, Key: 0, Val: initial},
		{Kind: serve.OpPut, Key: 1, Val: initial},
	}); err != nil {
		t.Fatalf("seed: %v", err)
	}

	var (
		stop    atomic.Bool
		wg      sync.WaitGroup
		torn    atomic.Int64
		txnOK   atomic.Int64
		readsOK atomic.Int64
	)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for i := 0; !stop.Load(); i++ {
				// Churn: each request uses a fresh identity, so routing
				// hashes spray across the pool rather than pinning.
				id := fmt.Sprintf("client-%d-%d", c, i%5)
				switch rng.Intn(4) {
				case 0:
					// Read-only probe of the invariant pair.
					res, err := s.Do(id, serve.EpGet, []serve.Op{
						{Kind: serve.OpGet, Key: 0},
						{Kind: serve.OpGet, Key: 1},
					})
					if err != nil {
						continue
					}
					if res[0].Val+res[1].Val != 2*initial {
						torn.Add(1)
					} else {
						readsOK.Add(1)
					}
				case 1:
					// Atomic rebalance of the pair: a new conserved split.
					d := uint64(rng.Intn(initial))
					_, err := s.Do(id, serve.EpTxn, []serve.Op{
						{Kind: serve.OpGet, Key: 0},
						{Kind: serve.OpPut, Key: 0, Val: initial - d},
						{Kind: serve.OpPut, Key: 1, Val: initial + d},
					})
					if err == nil {
						txnOK.Add(1)
					}
				default:
					// Routing/batching noise outside the invariant pair.
					k := uint64(2 + rng.Intn(60))
					switch rng.Intn(3) {
					case 0:
						s.Do(id, serve.EpPut, []serve.Op{{Kind: serve.OpPut, Key: k, Val: rng.Uint64() >> 1}})
					case 1:
						s.Do(id, serve.EpCas, []serve.Op{{Kind: serve.OpCas, Key: k, Old: 0, Val: 5}})
					default:
						s.Do(id, serve.EpScan, []serve.Op{{Kind: serve.OpScan, Key: 2, Count: 16}})
					}
				}
			}
		}(c)
	}

	// Metrics snapshots race the live workers (ctl-channel handoff).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			d := s.Snapshot()
			if d.SchemaVersion != "rhserve.v1" {
				torn.Add(1)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	time.Sleep(400 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	if n := torn.Load(); n != 0 {
		t.Fatalf("%d conservation violations", n)
	}
	if txnOK.Load() == 0 || readsOK.Load() == 0 {
		t.Fatalf("stress made no progress (txn=%d reads=%d)", txnOK.Load(), readsOK.Load())
	}
}
