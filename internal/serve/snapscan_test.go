package serve_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"rhnorec/internal/serve"
)

// TestSnapshotScanAtomicity: single-scan read-only requests are answered
// from a seqlock-validated memory snapshot instead of an instrumented
// transaction. A writer keeps two adjacent keys summing to a constant via
// TXN; every scan covering the pair must agree — a torn snapshot is
// unambiguous. The ledger must account every eligible scan as a hit or a
// transactional fallback.
func TestSnapshotScanAtomicity(t *testing.T) {
	const total = 10000
	s, err := serve.New(serve.Config{Keys: 64, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Do("seeder", serve.EpTxn, []serve.Op{
		{Kind: serve.OpPut, Key: 0, Val: total},
		{Kind: serve.OpPut, Key: 1, Val: 0},
	}); err != nil {
		t.Fatalf("seed: %v", err)
	}

	var (
		stop atomic.Bool
		wg   sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := uint64(0); !stop.Load(); v = (v + 37) % total {
			s.Do("writer", serve.EpTxn, []serve.Op{
				{Kind: serve.OpPut, Key: 0, Val: v},
				{Kind: serve.OpPut, Key: 1, Val: total - v},
			})
		}
	}()

	const scans = 2000
	for i := 0; i < scans; i++ {
		res, err := s.Do("reader", serve.EpScan, []serve.Op{{Kind: serve.OpScan, Key: 0, Count: 2}})
		if err != nil {
			t.Fatalf("scan %d: %v", i, err)
		}
		if len(res) != 1 || len(res[0].Vals) != 2 {
			t.Fatalf("scan %d results %+v", i, res)
		}
		if sum := res[0].Vals[0] + res[0].Vals[1]; sum != total {
			t.Fatalf("scan %d tore: %d + %d != %d", i, res[0].Vals[0], res[0].Vals[1], sum)
		}
	}
	stop.Store(true)
	wg.Wait()

	d := s.Snapshot()
	if d.SnapScan == nil {
		t.Fatal("no snapscan ledger after eligible scans")
	}
	if d.SnapScan.Attempts < scans {
		t.Fatalf("snapscan attempts %d < %d scans (eligible scans bypassed the fast path)", d.SnapScan.Attempts, scans)
	}
	if d.SnapScan.Hits+d.SnapScan.Fallbacks != d.SnapScan.Attempts {
		t.Fatalf("snapscan ledger does not balance: %d hits + %d fallbacks != %d attempts",
			d.SnapScan.Hits, d.SnapScan.Fallbacks, d.SnapScan.Attempts)
	}

	// Quiescent scans must all land on the fast path: with no writer left,
	// the first validation pass is clean.
	before := s.Snapshot().SnapScan.Hits
	const quiet = 50
	for i := 0; i < quiet; i++ {
		if _, err := s.Do("reader", serve.EpScan, []serve.Op{{Kind: serve.OpScan, Key: 0, Count: 2}}); err != nil {
			t.Fatalf("quiescent scan %d: %v", i, err)
		}
	}
	if after := s.Snapshot().SnapScan.Hits; after-before != quiet {
		t.Fatalf("quiescent scans hit %d of %d times, want all", after-before, quiet)
	}
}

// TestSnapshotScanIneligible: multi-op and writing requests must stay on
// the transactional path — a read-only multi-op request needs one
// consistent cut across all its ops, which per-op snapshots cannot give.
func TestSnapshotScanIneligible(t *testing.T) {
	s, err := serve.New(serve.Config{Keys: 64, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Do("c", serve.EpTxn, []serve.Op{
		{Kind: serve.OpScan, Key: 0, Count: 4},
		{Kind: serve.OpScan, Key: 8, Count: 4},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Do("c", serve.EpTxn, []serve.Op{
		{Kind: serve.OpPut, Key: 0, Val: 1},
		{Kind: serve.OpScan, Key: 0, Count: 4},
	}); err != nil {
		t.Fatal(err)
	}
	if d := s.Snapshot(); d.SnapScan != nil {
		t.Fatalf("ineligible requests reached the snapshot path: %+v", d.SnapScan)
	}
}

// TestSnapshotScanDisabled: SnapScanAttempts < 0 turns the fast path off;
// scans still work, the ledger stays empty.
func TestSnapshotScanDisabled(t *testing.T) {
	s, err := serve.New(serve.Config{Keys: 64, Workers: 1, SnapScanAttempts: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Do("c", serve.EpPut, []serve.Op{{Kind: serve.OpPut, Key: 2, Val: 5}}); err != nil {
		t.Fatal(err)
	}
	res, err := s.Do("c", serve.EpScan, []serve.Op{{Kind: serve.OpScan, Key: 0, Count: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || len(res[0].Vals) != 4 || res[0].Vals[2] != 5 {
		t.Fatalf("scan with fast path disabled returned %+v", res)
	}
	if d := s.Snapshot(); d.SnapScan != nil {
		t.Fatalf("disabled fast path still ledgered: %+v", d.SnapScan)
	}
}
