package serve_test

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"testing"

	"rhnorec/internal/serve"
)

// zaConn is an allocation-free binary-protocol client: request frames are
// prebuilt wire bytes written in one syscall, replies decode into one
// recycled ProtoResponse. Together with the server's recycled session
// state, a steady-state round trip performs zero process-wide heap
// allocations — which is what BenchmarkServeBinary* and the CI gate
// measure (testing counts mallocs across all goroutines, so a hidden
// server-side allocation fails the client-side benchmark).
type zaConn struct {
	c     net.Conn
	br    *bufio.Reader
	inBuf []byte
	resp  serve.ProtoResponse
}

func dialZA(tb testing.TB, addr string) *zaConn {
	tb.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		tb.Fatalf("dial: %v", err)
	}
	if _, err := io.WriteString(c, serve.ProtoMagic); err != nil {
		tb.Fatalf("magic: %v", err)
	}
	z := &zaConn{c: c, br: bufio.NewReader(c)}
	hello := buildWire(tb, &serve.ProtoRequest{Opcode: serve.OpcodeHello, ReqID: 1, Hello: "za-1"})
	if err := z.exchange(hello, 1); err != nil {
		tb.Fatalf("hello: %v", err)
	}
	return z
}

// buildWire prebuilds the wire bytes of one or more frames.
func buildWire(tb testing.TB, reqs ...*serve.ProtoRequest) []byte {
	tb.Helper()
	var wire []byte
	for _, req := range reqs {
		payload, err := serve.AppendRequest(nil, req)
		if err != nil {
			tb.Fatalf("encode: %v", err)
		}
		wire = append(wire,
			byte(len(payload)>>24), byte(len(payload)>>16), byte(len(payload)>>8), byte(len(payload)))
		wire = append(wire, payload...)
	}
	return wire
}

// exchange writes prebuilt wire bytes and consumes n replies. It is
// allocation-free on the happy path after warmup.
func (z *zaConn) exchange(wire []byte, n int) error {
	if _, err := z.c.Write(wire); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		frame, err := serve.ReadFrame(z.br, z.inBuf)
		if err != nil {
			return err
		}
		z.inBuf = frame[:0]
		if err := serve.ParseResponseInto(frame, &z.resp); err != nil {
			return err
		}
		if z.resp.Status != serve.StatusOK && z.resp.Status != serve.StatusPong {
			return fmt.Errorf("status %d: %s", z.resp.Status, z.resp.Msg)
		}
	}
	return nil
}

// benchBinary measures steady-state round trips of a prebuilt frame batch.
func benchBinary(b *testing.B, reqs []*serve.ProtoRequest) {
	s, err := serve.New(serve.Config{Keys: 64, Workers: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	z := dialZA(b, addr.String())
	defer z.c.Close()
	wire := buildWire(b, reqs...)
	for i := 0; i < 32; i++ { // warm every recycled buffer on both sides
		if err := z.exchange(wire, len(reqs)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := z.exchange(wire, len(reqs)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServeBinaryGet(b *testing.B) {
	benchBinary(b, []*serve.ProtoRequest{{Opcode: serve.OpcodeGet, ReqID: 2,
		Ops: []serve.Op{{Kind: serve.OpGet, Key: 7}}}})
}

func BenchmarkServeBinaryPut(b *testing.B) {
	benchBinary(b, []*serve.ProtoRequest{{Opcode: serve.OpcodePut, ReqID: 2,
		Ops: []serve.Op{{Kind: serve.OpPut, Key: 7, Val: 42}}}})
}

func BenchmarkServeBinaryPipelined(b *testing.B) {
	reqs := make([]*serve.ProtoRequest, 8)
	for i := range reqs {
		reqs[i] = &serve.ProtoRequest{Opcode: serve.OpcodeGet, ReqID: uint64(2 + i),
			Ops: []serve.Op{{Kind: serve.OpGet, Key: uint64(i)}}}
	}
	benchBinary(b, reqs)
}

// TestServeBinarySteadyStateAllocs pins the tentpole's zero-alloc claim
// directly: after warmup, a binary get round trip — client encode, server
// parse, worker execution, reply encode, client decode — performs zero
// heap allocations process-wide.
func TestServeBinarySteadyStateAllocs(t *testing.T) {
	s, err := serve.New(serve.Config{Keys: 64, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	z := dialZA(t, addr.String())
	defer z.c.Close()
	wire := buildWire(t,
		&serve.ProtoRequest{Opcode: serve.OpcodePut, ReqID: 2, Ops: []serve.Op{{Kind: serve.OpPut, Key: 7, Val: 42}}},
		&serve.ProtoRequest{Opcode: serve.OpcodeGet, ReqID: 3, Ops: []serve.Op{{Kind: serve.OpGet, Key: 7}}},
	)
	for i := 0; i < 32; i++ {
		if err := z.exchange(wire, 2); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(100, func() {
		if err := z.exchange(wire, 2); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state binary round trip allocates %.1f times, want 0", avg)
	}
}
