package serve

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"rhnorec/internal/obs"
)

// One listener, two protocols: the accept loop reads a connection's first
// four bytes and demuxes on them — ProtoMagic selects the binary protocol,
// anything else (an HTTP method's first bytes) is replayed in front of the
// connection and handed to net/http. The split costs one extra read per
// connection, not per request.

// listener owns the TCP listener, the demux loop, the embedded HTTP server,
// and the live binary sessions (so Close can cut blocked readers).
type listener struct {
	ln   net.Listener
	srv  *http.Server
	s    *Server
	http chan net.Conn

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	down  bool
}

// Start listens on addr (e.g. "127.0.0.1:0"), serving both protocols.
// It returns the bound address; Close (on the Server) tears it down.
func (s *Server) Start(addr string) (net.Addr, error) {
	nl, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	l := &listener{
		ln:    nl,
		s:     s,
		http:  make(chan net.Conn),
		conns: map[net.Conn]struct{}{},
	}
	l.srv = &http.Server{Handler: s.Handler()}
	s.mu.Lock()
	if s.ln != nil {
		s.mu.Unlock()
		nl.Close()
		return nil, fmt.Errorf("serve: Start called twice")
	}
	s.ln = l
	s.mu.Unlock()
	go l.acceptLoop()
	go l.srv.Serve((*httpListener)(l))
	return nl.Addr(), nil
}

// Addr returns the listener's bound address (nil before Start).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.ln.Addr()
}

func (l *listener) close() {
	l.mu.Lock()
	l.down = true
	conns := make([]net.Conn, 0, len(l.conns))
	for c := range l.conns {
		conns = append(conns, c)
	}
	l.mu.Unlock()
	l.ln.Close()
	l.srv.Close()
	for _, c := range conns {
		c.Close()
	}
}

// track registers a live connection; the returned func unregisters it.
// Returns false when the listener is already down.
func (l *listener) track(c net.Conn) (func(), bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.down {
		return nil, false
	}
	l.conns[c] = struct{}{}
	return func() {
		l.mu.Lock()
		delete(l.conns, c)
		l.mu.Unlock()
	}, true
}

func (l *listener) acceptLoop() {
	for {
		c, err := l.ln.Accept()
		if err != nil {
			close(l.http)
			return
		}
		go l.demux(c)
	}
}

// demux routes one fresh connection by its first four bytes.
func (l *listener) demux(c net.Conn) {
	untrack, ok := l.track(c)
	if !ok {
		c.Close()
		return
	}
	var magic [4]byte
	c.SetReadDeadline(time.Now().Add(30 * time.Second))
	if _, err := io.ReadFull(c, magic[:]); err != nil {
		untrack()
		c.Close()
		return
	}
	c.SetReadDeadline(time.Time{})
	if string(magic[:]) == ProtoMagic {
		defer untrack()
		defer c.Close()
		l.s.serveBinary(c)
		return
	}
	// Not ours: replay the peeked bytes and hand the connection to net/http,
	// which takes over its lifetime (the http.Server is Closed with us).
	untrack()
	select {
	case l.http <- &prefixConn{Conn: c, prefix: magic[:]}:
	case <-l.s.stop:
		c.Close()
	}
}

// httpListener adapts the demuxed HTTP connection stream to net.Listener.
type httpListener listener

func (hl *httpListener) Accept() (net.Conn, error) {
	c, ok := <-hl.http
	if !ok {
		return nil, net.ErrClosed
	}
	return c, nil
}

func (hl *httpListener) Close() error   { return nil } // lifetime owned by listener.close
func (hl *httpListener) Addr() net.Addr { return hl.ln.Addr() }

// prefixConn replays already-read bytes before the live connection.
type prefixConn struct {
	net.Conn
	prefix []byte
}

func (p *prefixConn) Read(b []byte) (int, error) {
	if len(p.prefix) > 0 {
		n := copy(b, p.prefix)
		p.prefix = p.prefix[n:]
		return n, nil
	}
	return p.Conn.Read(b)
}

// opcodeEndpoint maps a data opcode to its metrics endpoint.
func opcodeEndpoint(opcode uint8) (Endpoint, bool) {
	switch opcode {
	case OpcodeGet:
		return EpGet, true
	case OpcodePut:
		return EpPut, true
	case OpcodeCas:
		return EpCas, true
	case OpcodeScan:
		return EpScan, true
	case OpcodeTxn:
		return EpTxn, true
	}
	return 0, false
}

// maxDrainFrames bounds how many frames one drain collects before replying:
// deep enough to cover any sensible pipeline depth, small enough that a
// firehosing client cannot starve its own replies.
const maxDrainFrames = 64

// binSlot is one drained frame's recycled state: the parsed request (Ops
// backing array reused), the worker envelope (results and done channel
// reused), and the immediate-reply fields for frames that never reach a
// worker (hello, ping, parse/validation errors, admission sheds).
type binSlot struct {
	preq      ProtoRequest
	req       request
	w         *worker // sticky worker at parse time (Hello mid-drain moves it)
	reqID     uint64  // echoed reply ID (0 when the frame didn't parse)
	submitted bool    // true: awaiting the worker; false: immediate reply
	status    uint8   // immediate reply status
	msg       string  // immediate reply message (bad request / error)
}

// binSession is one binary-protocol connection's recycled serving state.
// Nothing in it is shared: the connection goroutine owns every field, so
// the steady state allocates nothing (gated by BenchmarkServeBinary* and
// TestServeBinarySteadyStateAllocs).
type binSession struct {
	s        *Server
	br       *bufio.Reader
	bw       *bufio.Writer
	identity string
	w        *worker
	durable  bool // OpcodeDurable toggle: write replies wait for fsync
	slots    []*binSlot
	inBuf    []byte
	outBuf   []byte
}

// setIdentity installs a sticky-routing identity and resolves its worker
// once — per session, not per request (ISSUE 8: the per-request
// fnv.New64a() was measurable).
func (sess *binSession) setIdentity(id string) {
	sess.identity = id
	sess.w = sess.s.workerFor(id)
}

// serveBinary runs one binary-protocol session. Each round: block for one
// frame, then drain every complete frame already buffered (pipelining
// clients land many per read), submit the executable ones to the sticky
// worker as linked chains — one queue slot per chain, so the worker's fuse
// machinery coalesces the whole drain into as few transactions as BatchMax
// allows — and write all replies, in frame order, through one Flush.
func (s *Server) serveBinary(c net.Conn) {
	sess := &binSession{s: s, br: bufio.NewReader(c), bw: bufio.NewWriter(c)}
	identity := c.RemoteAddr().String()
	if host, _, err := net.SplitHostPort(identity); err == nil {
		identity = host
	}
	sess.setIdentity(identity)
	for sess.drain() {
	}
}

// drain runs one read→submit→reply round; false drops the session (EOF,
// cut connection, framing violation, or write failure).
func (sess *binSession) drain() bool {
	frame, err := ReadFrame(sess.br, sess.inBuf)
	if err != nil {
		return false
	}
	n := 0
	for {
		sess.inBuf = frame[:0] // parse copies out; buffer free for the next read
		sess.prep(n, frame)
		n++
		if n >= maxDrainFrames || !sess.frameBuffered() {
			break
		}
		if frame, err = ReadFrame(sess.br, sess.inBuf); err != nil {
			return false
		}
	}
	sess.s.pipeline.record(n)
	sess.submit(n)
	return sess.reply(n)
}

// frameBuffered reports whether a COMPLETE frame sits in the read buffer:
// reading it cannot block. Depth alone (Buffered() > 0) is not enough — a
// client that stops mid-frame must still get the replies already owed, or a
// request/reply-windowed client deadlocks against us.
func (sess *binSession) frameBuffered() bool {
	if sess.br.Buffered() < 4 {
		return false
	}
	hdr, _ := sess.br.Peek(4)
	n := binary.BigEndian.Uint32(hdr)
	if n > MaxFrame {
		return true // complete enough: let ReadFrame surface the violation
	}
	return sess.br.Buffered() >= 4+int(n)
}

// prep parses frame into slot i and classifies it: immediate (answered at
// reply time without a worker) or submitted (envelope filled, linked and
// enqueued by submit).
func (sess *binSession) prep(i int, frame []byte) {
	for len(sess.slots) <= i {
		sess.slots = append(sess.slots, &binSlot{
			req: request{done: make(chan struct{}, 1)},
		})
	}
	sl := sess.slots[i]
	sl.submitted = false
	sl.msg = ""
	sl.reqID = 0
	if err := ParseRequestInto(frame, &sl.preq); err != nil {
		sl.status = StatusBadRequest
		sl.msg = err.Error()
		return
	}
	sl.reqID = sl.preq.ReqID
	switch sl.preq.Opcode {
	case OpcodeHello:
		if sl.preq.Hello != "" {
			sess.setIdentity(sl.preq.Hello)
		}
		sl.status = StatusOK
	case OpcodePing:
		sl.status = StatusPong
	case OpcodeDurable:
		// Takes effect mid-drain: frames after this one in the same drain
		// already carry the new mode, mirroring Hello's identity move.
		sess.durable = sl.preq.Durable
		sl.status = StatusOK
	default:
		ep, ok := opcodeEndpoint(sl.preq.Opcode)
		if !ok {
			sl.status = StatusBadRequest
			sl.msg = "unknown opcode"
			return
		}
		if err := sess.s.checkOps(sl.preq.Ops); err != nil {
			sl.status = StatusBadRequest
			sl.msg = err.Error()
			return
		}
		now := obs.Now()
		r := &sl.req
		r.ep = ep
		r.ops = sl.preq.Ops
		r.readOnly = readOnlyOps(sl.preq.Ops)
		r.durable = sess.durable
		r.res = growResults(r.res, len(sl.preq.Ops))
		r.err = nil
		r.shed = false
		r.enq = now
		r.deadline = now + sess.s.cfg.RequestTimeout.Nanoseconds()
		r.next = nil
		sl.w = sess.w
		sl.submitted = true
	}
}

// growResults resizes res to n entries, reusing the backing array (and its
// entries' recycled Vals buffers) when the capacity suffices.
func growResults(res []OpResult, n int) []OpResult {
	if cap(res) < n {
		return make([]OpResult, n)
	}
	return res[:n]
}

// submit links maximal runs of same-worker submitted slots into chains and
// enqueues each chain as one queue slot. Admission happens per chain: the
// saturation and queue-full verdicts a lone request would have gotten apply
// to the whole chain (its requests arrived together and would have met the
// same queue). Shed chains are downgraded to immediate StatusShed replies.
func (sess *binSession) submit(n int) {
	i := 0
	for i < n {
		if !sess.slots[i].submitted {
			i++
			continue
		}
		w := sess.slots[i].w
		var tail *request
		count := 0
		j := i
		for ; j < n; j++ {
			sl := sess.slots[j]
			if !sl.submitted {
				continue // immediate frames don't break a chain
			}
			if sl.w != w {
				break // Hello moved the sticky identity mid-drain
			}
			if tail != nil {
				tail.next = &sl.req
			}
			tail = &sl.req
			count++
		}
		head := &sess.slots[i].req
		shed := false
		if sess.s.saturated(w) {
			sess.s.admission.saturationShed.Add(uint64(count))
			shed = true
		} else if !sess.s.enqueue(w, head, count) {
			shed = true
		}
		if shed {
			for k := i; k < j; k++ {
				if sl := sess.slots[k]; sl.submitted && sl.w == w {
					sl.submitted = false
					sl.status = StatusShed
					sl.req.next = nil
				}
			}
		}
		i = j
	}
}

// reply writes slot replies in frame order — submitted slots await their
// envelope first — and flushes once.
func (sess *binSession) reply(n int) bool {
	for i := 0; i < n; i++ {
		sl := sess.slots[i]
		var resp ProtoResponse
		switch {
		case !sl.submitted:
			resp = sess.immediate(sl)
		case !sess.s.await(sl.w, &sl.req):
			// Worker exited without dequeuing (shutdown): the envelope will
			// never be answered, and is safe to reuse.
			resp = ProtoResponse{Status: StatusError, Msg: ErrClosed.Error()}
		case sl.req.shed:
			resp = ProtoResponse{Status: StatusShed, RetryAfterMS: sess.s.retryAfterMS()}
		case sl.req.err != nil:
			resp = sess.s.protoReply(sl.reqID, nil, sl.req.err)
		default:
			resp = ProtoResponse{Status: StatusOK, Results: sl.req.res}
		}
		resp.ReqID = sl.reqID
		sess.outBuf = AppendResponse(sess.outBuf[:0], &resp)
		if err := WriteFrame(sess.bw, sess.outBuf); err != nil {
			return false
		}
	}
	return sess.bw.Flush() == nil
}

// emptyResults backs immediate StatusOK replies (hello): zero results on
// the wire without a per-reply allocation.
var emptyResults = []OpResult{}

// immediate renders a slot answered without a worker round-trip.
func (sess *binSession) immediate(sl *binSlot) ProtoResponse {
	switch sl.status {
	case StatusOK:
		return ProtoResponse{Status: StatusOK, Results: emptyResults}
	case StatusPong:
		return ProtoResponse{Status: StatusPong}
	case StatusShed:
		return ProtoResponse{Status: StatusShed, RetryAfterMS: sess.s.retryAfterMS()}
	default:
		return ProtoResponse{Status: sl.status, Msg: sl.msg}
	}
}

// retryAfterMS is the shed hint in milliseconds (at least 1).
func (s *Server) retryAfterMS() uint32 {
	ms := s.cfg.RetryAfter.Milliseconds()
	if ms < 1 {
		ms = 1
	}
	return uint32(ms)
}

// protoReply maps a Do outcome onto the response status vocabulary.
func (s *Server) protoReply(reqID uint64, res []OpResult, err error) ProtoResponse {
	switch {
	case err == nil:
		return ProtoResponse{Status: StatusOK, ReqID: reqID, Results: res}
	case errors.Is(err, ErrShed):
		return ProtoResponse{Status: StatusShed, ReqID: reqID, RetryAfterMS: s.retryAfterMS()}
	default:
		var reqErr *RequestError
		if errors.As(err, &reqErr) {
			return ProtoResponse{Status: StatusBadRequest, ReqID: reqID, Msg: reqErr.Error()}
		}
		return ProtoResponse{Status: StatusError, ReqID: reqID, Msg: err.Error()}
	}
}
