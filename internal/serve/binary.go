package serve

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"
)

// One listener, two protocols: the accept loop reads a connection's first
// four bytes and demuxes on them — ProtoMagic selects the binary protocol,
// anything else (an HTTP method's first bytes) is replayed in front of the
// connection and handed to net/http. The split costs one extra read per
// connection, not per request.

// listener owns the TCP listener, the demux loop, the embedded HTTP server,
// and the live binary sessions (so Close can cut blocked readers).
type listener struct {
	ln   net.Listener
	srv  *http.Server
	s    *Server
	http chan net.Conn

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	down  bool
}

// Start listens on addr (e.g. "127.0.0.1:0"), serving both protocols.
// It returns the bound address; Close (on the Server) tears it down.
func (s *Server) Start(addr string) (net.Addr, error) {
	nl, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	l := &listener{
		ln:    nl,
		s:     s,
		http:  make(chan net.Conn),
		conns: map[net.Conn]struct{}{},
	}
	l.srv = &http.Server{Handler: s.Handler()}
	s.mu.Lock()
	if s.ln != nil {
		s.mu.Unlock()
		nl.Close()
		return nil, fmt.Errorf("serve: Start called twice")
	}
	s.ln = l
	s.mu.Unlock()
	go l.acceptLoop()
	go l.srv.Serve((*httpListener)(l))
	return nl.Addr(), nil
}

// Addr returns the listener's bound address (nil before Start).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.ln.Addr()
}

func (l *listener) close() {
	l.mu.Lock()
	l.down = true
	conns := make([]net.Conn, 0, len(l.conns))
	for c := range l.conns {
		conns = append(conns, c)
	}
	l.mu.Unlock()
	l.ln.Close()
	l.srv.Close()
	for _, c := range conns {
		c.Close()
	}
}

// track registers a live connection; the returned func unregisters it.
// Returns false when the listener is already down.
func (l *listener) track(c net.Conn) (func(), bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.down {
		return nil, false
	}
	l.conns[c] = struct{}{}
	return func() {
		l.mu.Lock()
		delete(l.conns, c)
		l.mu.Unlock()
	}, true
}

func (l *listener) acceptLoop() {
	for {
		c, err := l.ln.Accept()
		if err != nil {
			close(l.http)
			return
		}
		go l.demux(c)
	}
}

// demux routes one fresh connection by its first four bytes.
func (l *listener) demux(c net.Conn) {
	untrack, ok := l.track(c)
	if !ok {
		c.Close()
		return
	}
	var magic [4]byte
	c.SetReadDeadline(time.Now().Add(30 * time.Second))
	if _, err := io.ReadFull(c, magic[:]); err != nil {
		untrack()
		c.Close()
		return
	}
	c.SetReadDeadline(time.Time{})
	if string(magic[:]) == ProtoMagic {
		defer untrack()
		defer c.Close()
		l.s.serveBinary(c)
		return
	}
	// Not ours: replay the peeked bytes and hand the connection to net/http,
	// which takes over its lifetime (the http.Server is Closed with us).
	untrack()
	select {
	case l.http <- &prefixConn{Conn: c, prefix: magic[:]}:
	case <-l.s.stop:
		c.Close()
	}
}

// httpListener adapts the demuxed HTTP connection stream to net.Listener.
type httpListener listener

func (hl *httpListener) Accept() (net.Conn, error) {
	c, ok := <-hl.http
	if !ok {
		return nil, net.ErrClosed
	}
	return c, nil
}

func (hl *httpListener) Close() error   { return nil } // lifetime owned by listener.close
func (hl *httpListener) Addr() net.Addr { return hl.ln.Addr() }

// prefixConn replays already-read bytes before the live connection.
type prefixConn struct {
	net.Conn
	prefix []byte
}

func (p *prefixConn) Read(b []byte) (int, error) {
	if len(p.prefix) > 0 {
		n := copy(b, p.prefix)
		p.prefix = p.prefix[n:]
		return n, nil
	}
	return p.Conn.Read(b)
}

// opcodeEndpoint maps a data opcode to its metrics endpoint.
func opcodeEndpoint(opcode uint8) (Endpoint, bool) {
	switch opcode {
	case OpcodeGet:
		return EpGet, true
	case OpcodePut:
		return EpPut, true
	case OpcodeCas:
		return EpCas, true
	case OpcodeScan:
		return EpScan, true
	case OpcodeTxn:
		return EpTxn, true
	}
	return 0, false
}

// serveBinary runs one binary-protocol session: frames are handled in
// order, one at a time (a pipelining client gets its replies in request
// order). The sticky identity starts as the remote address and is replaced
// by the first Hello.
func (s *Server) serveBinary(c net.Conn) {
	var (
		br       = bufio.NewReader(c)
		bw       = bufio.NewWriter(c)
		identity = c.RemoteAddr().String()
		inBuf    []byte
		outBuf   []byte
	)
	if host, _, err := net.SplitHostPort(identity); err == nil {
		identity = host
	}
	for {
		frame, err := ReadFrame(br, inBuf)
		if err != nil {
			return // EOF, cut connection, or framing violation: drop the session
		}
		inBuf = frame[:0]
		resp := ProtoResponse{Status: StatusError}
		req, err := ParseRequest(frame)
		switch {
		case err != nil:
			resp.Status = StatusBadRequest
			resp.Msg = err.Error()
		case req.Opcode == OpcodeHello:
			if req.Hello != "" {
				identity = req.Hello
			}
			resp = ProtoResponse{Status: StatusOK, ReqID: req.ReqID, Results: []OpResult{}}
		case req.Opcode == OpcodePing:
			resp = ProtoResponse{Status: StatusPong, ReqID: req.ReqID}
		default:
			ep, ok := opcodeEndpoint(req.Opcode)
			if !ok {
				resp = ProtoResponse{Status: StatusBadRequest, ReqID: req.ReqID, Msg: "unknown opcode"}
				break
			}
			res, err := s.Do(identity, ep, req.Ops)
			resp = s.protoReply(req.ReqID, res, err)
		}
		if req != nil {
			resp.ReqID = req.ReqID
		}
		outBuf = AppendResponse(outBuf[:0], &resp)
		if err := WriteFrame(bw, outBuf); err != nil {
			return
		}
		if br.Buffered() == 0 {
			if err := bw.Flush(); err != nil {
				return
			}
		}
	}
}

// protoReply maps a Do outcome onto the response status vocabulary.
func (s *Server) protoReply(reqID uint64, res []OpResult, err error) ProtoResponse {
	switch {
	case err == nil:
		return ProtoResponse{Status: StatusOK, ReqID: reqID, Results: res}
	case errors.Is(err, ErrShed):
		ms := s.cfg.RetryAfter.Milliseconds()
		if ms < 1 {
			ms = 1
		}
		return ProtoResponse{Status: StatusShed, ReqID: reqID, RetryAfterMS: uint32(ms)}
	default:
		var reqErr *RequestError
		if errors.As(err, &reqErr) {
			return ProtoResponse{Status: StatusBadRequest, ReqID: reqID, Msg: reqErr.Error()}
		}
		return ProtoResponse{Status: StatusError, ReqID: reqID, Msg: err.Error()}
	}
}
