package serve

import (
	"encoding/binary"
	"fmt"
	"io"
)

// The length-prefixed binary protocol, served on the same listener as HTTP
// (binary.go demuxes on the leading magic). docs/SERVE.md carries the
// byte-level framing table; this file is its source of truth. All integers
// are big-endian.
//
// A connection opens with the 4-byte magic "RHKV", then carries frames in
// both directions:
//
//	frame    := u32 length | payload            (length = len(payload))
//	request  := u8 opcode | u64 reqID | body
//	response := u8 status | u64 reqID | body
//
// The client should open with a Hello naming its routing identity; before
// (or without) one, the connection's remote address is the sticky-routing
// identity. Responses echo the request's reqID, so clients may pipeline.

// ProtoMagic is the connection preamble that selects the binary protocol.
const ProtoMagic = "RHKV"

// MaxFrame bounds one frame's payload; larger length prefixes kill the
// connection (a desynced or hostile peer, not a big request).
const MaxFrame = 1 << 20

// Request opcodes.
const (
	// OpcodeHello sets the connection's sticky-routing identity
	// (body: identity bytes).
	OpcodeHello = 1
	// OpcodeGet is a multi-key read (body: u16 n | n × u64 key).
	OpcodeGet = 2
	// OpcodePut is a single-key write (body: u64 key | u64 val).
	OpcodePut = 3
	// OpcodeCas is a compare-and-swap (body: u64 key | u64 old | u64 new).
	OpcodeCas = 4
	// OpcodeScan is a range read (body: u64 start | u32 count).
	OpcodeScan = 5
	// OpcodeTxn is a multi-op transaction
	// (body: u16 n | n × (u8 kind | u64 key | u64 val | u64 old | u32 count)).
	OpcodeTxn = 6
	// OpcodePing is a liveness no-op (empty body).
	OpcodePing = 7
	// OpcodeDurable toggles the connection's durable-ack mode (body: u8
	// 0 or 1). While on, every write request on this connection is answered
	// only after its redo record is fsynced (see docs/PERSIST.md); on a
	// server without persistence armed the toggle is accepted and inert.
	// Replies with StatusOK and zero results.
	OpcodeDurable = 8
)

// Response status codes.
const (
	// StatusOK carries results
	// (body: u16 n | n × (u8 flags | u64 val | u32 nvals | nvals × u64);
	// flags bit 0 = cas swapped).
	StatusOK = 0
	// StatusBadRequest carries a UTF-8 message (client error).
	StatusBadRequest = 1
	// StatusShed carries a u32 retry-after hint in milliseconds (admission
	// shed — retry later, not a failure).
	StatusShed = 2
	// StatusError carries a UTF-8 message (server error).
	StatusError = 3
	// StatusPong answers a ping (empty body).
	StatusPong = 4
)

// txnOpWire is the fixed wire size of one encoded txn op.
const txnOpWire = 1 + 8 + 8 + 8 + 4

// ProtoRequest is one decoded request frame.
type ProtoRequest struct {
	// Opcode is the request kind (Opcode* constants).
	Opcode uint8
	// ReqID is echoed in the response (client-chosen; pipelining key).
	ReqID uint64
	// Hello is the routing identity (OpcodeHello only).
	Hello string
	// Durable is the durable-ack toggle value (OpcodeDurable only).
	Durable bool
	// Ops is the normalized op list (get/put/cas/scan/txn).
	Ops []Op
}

// ProtoResponse is one decoded response frame.
type ProtoResponse struct {
	// Status is the outcome (Status* constants).
	Status uint8
	// ReqID echoes the request.
	ReqID uint64
	// Results holds StatusOK per-op results.
	Results []OpResult
	// Msg is the StatusBadRequest/StatusError message.
	Msg string
	// RetryAfterMS is the StatusShed backoff hint.
	RetryAfterMS uint32
}

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("proto: frame of %d bytes exceeds limit %d", len(payload), MaxFrame)
	}
	n := uint32(len(payload))
	if bw, ok := w.(io.ByteWriter); ok {
		// Byte-at-a-time header keeps the hot path allocation-free: a
		// stack header array would escape through the io.Writer interface
		// call and cost one heap allocation per frame. Buffered writers
		// (the only hot-path callers) take this branch.
		for shift := 24; shift >= 0; shift -= 8 {
			if err := bw.WriteByte(byte(n >> shift)); err != nil {
				return err
			}
		}
	} else {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], n)
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame, reusing buf when it fits. The
// header is staged in buf too (a stack header array would escape through
// the io.Reader interface call), so a recycled buf makes the whole read
// allocation-free.
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	if cap(buf) < 4 {
		buf = make([]byte, 4)
	}
	if _, err := io.ReadFull(r, buf[:4]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(buf[:4])
	if n > MaxFrame {
		return nil, fmt.Errorf("proto: frame of %d bytes exceeds limit %d", n, MaxFrame)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// AppendRequest encodes a request frame payload onto buf.
func AppendRequest(buf []byte, req *ProtoRequest) ([]byte, error) {
	buf = append(buf, req.Opcode)
	buf = binary.BigEndian.AppendUint64(buf, req.ReqID)
	switch req.Opcode {
	case OpcodeHello:
		buf = append(buf, req.Hello...)
	case OpcodeGet:
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(req.Ops)))
		for i := range req.Ops {
			buf = binary.BigEndian.AppendUint64(buf, req.Ops[i].Key)
		}
	case OpcodePut:
		if len(req.Ops) != 1 {
			return nil, fmt.Errorf("proto: put wants 1 op, have %d", len(req.Ops))
		}
		buf = binary.BigEndian.AppendUint64(buf, req.Ops[0].Key)
		buf = binary.BigEndian.AppendUint64(buf, req.Ops[0].Val)
	case OpcodeCas:
		if len(req.Ops) != 1 {
			return nil, fmt.Errorf("proto: cas wants 1 op, have %d", len(req.Ops))
		}
		buf = binary.BigEndian.AppendUint64(buf, req.Ops[0].Key)
		buf = binary.BigEndian.AppendUint64(buf, req.Ops[0].Old)
		buf = binary.BigEndian.AppendUint64(buf, req.Ops[0].Val)
	case OpcodeScan:
		if len(req.Ops) != 1 {
			return nil, fmt.Errorf("proto: scan wants 1 op, have %d", len(req.Ops))
		}
		buf = binary.BigEndian.AppendUint64(buf, req.Ops[0].Key)
		buf = binary.BigEndian.AppendUint32(buf, req.Ops[0].Count)
	case OpcodeTxn:
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(req.Ops)))
		for i := range req.Ops {
			op := &req.Ops[i]
			buf = append(buf, byte(op.Kind))
			buf = binary.BigEndian.AppendUint64(buf, op.Key)
			buf = binary.BigEndian.AppendUint64(buf, op.Val)
			buf = binary.BigEndian.AppendUint64(buf, op.Old)
			buf = binary.BigEndian.AppendUint32(buf, op.Count)
		}
	case OpcodePing:
	case OpcodeDurable:
		var b byte
		if req.Durable {
			b = 1
		}
		buf = append(buf, b)
	default:
		return nil, fmt.Errorf("proto: unknown opcode %d", req.Opcode)
	}
	return buf, nil
}

// ParseRequest decodes a request frame payload.
func ParseRequest(frame []byte) (*ProtoRequest, error) {
	req := new(ProtoRequest)
	if err := ParseRequestInto(frame, req); err != nil {
		return nil, err
	}
	return req, nil
}

// growOps resizes ops to n entries, reusing its backing array when the
// capacity suffices (the pipelined session parses every frame into recycled
// op slices, so the steady state allocates nothing).
func growOps(ops []Op, n int) []Op {
	if cap(ops) < n {
		return make([]Op, n)
	}
	return ops[:n]
}

// ParseRequestInto decodes a request frame payload into req, reusing
// req.Ops' backing array when it is large enough. Every other field is
// overwritten unconditionally, so a recycled req never leaks state between
// frames; the decoded Ops copy everything they need out of frame, so the
// caller may reuse the frame buffer immediately.
func ParseRequestInto(frame []byte, req *ProtoRequest) error {
	if len(frame) < 9 {
		return fmt.Errorf("proto: request frame of %d bytes, want >= 9", len(frame))
	}
	req.Opcode = frame[0]
	req.ReqID = binary.BigEndian.Uint64(frame[1:9])
	req.Hello = ""
	req.Durable = false
	req.Ops = req.Ops[:0]
	body := frame[9:]
	switch req.Opcode {
	case OpcodeHello:
		req.Hello = string(body)
	case OpcodeGet:
		if len(body) < 2 {
			return fmt.Errorf("proto: truncated get body")
		}
		n := int(binary.BigEndian.Uint16(body))
		body = body[2:]
		if len(body) != 8*n {
			return fmt.Errorf("proto: get body of %d bytes, want %d for %d keys", len(body), 8*n, n)
		}
		req.Ops = growOps(req.Ops, n)
		for i := 0; i < n; i++ {
			req.Ops[i] = Op{Kind: OpGet, Key: binary.BigEndian.Uint64(body[8*i:])}
		}
	case OpcodePut:
		if len(body) != 16 {
			return fmt.Errorf("proto: put body of %d bytes, want 16", len(body))
		}
		req.Ops = growOps(req.Ops, 1)
		req.Ops[0] = Op{Kind: OpPut, Key: binary.BigEndian.Uint64(body), Val: binary.BigEndian.Uint64(body[8:])}
	case OpcodeCas:
		if len(body) != 24 {
			return fmt.Errorf("proto: cas body of %d bytes, want 24", len(body))
		}
		req.Ops = growOps(req.Ops, 1)
		req.Ops[0] = Op{
			Kind: OpCas,
			Key:  binary.BigEndian.Uint64(body),
			Old:  binary.BigEndian.Uint64(body[8:]),
			Val:  binary.BigEndian.Uint64(body[16:]),
		}
	case OpcodeScan:
		if len(body) != 12 {
			return fmt.Errorf("proto: scan body of %d bytes, want 12", len(body))
		}
		req.Ops = growOps(req.Ops, 1)
		req.Ops[0] = Op{Kind: OpScan, Key: binary.BigEndian.Uint64(body), Count: binary.BigEndian.Uint32(body[8:])}
	case OpcodeTxn:
		if len(body) < 2 {
			return fmt.Errorf("proto: truncated txn body")
		}
		n := int(binary.BigEndian.Uint16(body))
		body = body[2:]
		if len(body) != txnOpWire*n {
			return fmt.Errorf("proto: txn body of %d bytes, want %d for %d ops", len(body), txnOpWire*n, n)
		}
		req.Ops = growOps(req.Ops, n)
		for i := 0; i < n; i++ {
			rec := body[txnOpWire*i:]
			req.Ops[i] = Op{
				Kind:  OpKind(rec[0]),
				Key:   binary.BigEndian.Uint64(rec[1:]),
				Val:   binary.BigEndian.Uint64(rec[9:]),
				Old:   binary.BigEndian.Uint64(rec[17:]),
				Count: binary.BigEndian.Uint32(rec[25:]),
			}
		}
	case OpcodePing:
		if len(body) != 0 {
			return fmt.Errorf("proto: ping body of %d bytes, want 0", len(body))
		}
	case OpcodeDurable:
		if len(body) != 1 || body[0] > 1 {
			return fmt.Errorf("proto: durable body must be one byte 0/1")
		}
		req.Durable = body[0] == 1
	default:
		return fmt.Errorf("proto: unknown opcode %d", req.Opcode)
	}
	return nil
}

// AppendResponse encodes a response frame payload onto buf.
func AppendResponse(buf []byte, resp *ProtoResponse) []byte {
	buf = append(buf, resp.Status)
	buf = binary.BigEndian.AppendUint64(buf, resp.ReqID)
	switch resp.Status {
	case StatusOK:
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(resp.Results)))
		for i := range resp.Results {
			res := &resp.Results[i]
			var flags byte
			if res.Swapped {
				flags |= 1
			}
			buf = append(buf, flags)
			buf = binary.BigEndian.AppendUint64(buf, res.Val)
			buf = binary.BigEndian.AppendUint32(buf, uint32(len(res.Vals)))
			for _, v := range res.Vals {
				buf = binary.BigEndian.AppendUint64(buf, v)
			}
		}
	case StatusBadRequest, StatusError:
		buf = append(buf, resp.Msg...)
	case StatusShed:
		buf = binary.BigEndian.AppendUint32(buf, resp.RetryAfterMS)
	}
	return buf
}

// ParseResponse decodes a response frame payload.
func ParseResponse(frame []byte) (*ProtoResponse, error) {
	resp := new(ProtoResponse)
	if err := ParseResponseInto(frame, resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// ParseResponseInto decodes a response frame payload into resp, reusing
// resp.Results (and each recycled result's Vals backing array) when the
// capacities suffice — the client-side twin of ParseRequestInto, used by
// pipelining clients to keep the reply-drain loop allocation-free. Every
// field is overwritten unconditionally, so a recycled resp never leaks
// state between frames.
func ParseResponseInto(frame []byte, resp *ProtoResponse) error {
	if len(frame) < 9 {
		return fmt.Errorf("proto: response frame of %d bytes, want >= 9", len(frame))
	}
	resp.Status = frame[0]
	resp.ReqID = binary.BigEndian.Uint64(frame[1:9])
	resp.Msg = ""
	resp.RetryAfterMS = 0
	recycled := resp.Results
	resp.Results = nil
	body := frame[9:]
	switch resp.Status {
	case StatusOK:
		if len(body) < 2 {
			return fmt.Errorf("proto: truncated results")
		}
		n := int(binary.BigEndian.Uint16(body))
		body = body[2:]
		if cap(recycled) < n {
			recycled = make([]OpResult, 0, n)
		}
		resp.Results = recycled[:0]
		for i := 0; i < n; i++ {
			if len(body) < 13 {
				return fmt.Errorf("proto: truncated result %d", i)
			}
			// Reclaim the recycled slot's Vals backing array (if any) before
			// the slot is overwritten by append.
			var vals []uint64
			if i < cap(resp.Results) {
				vals = resp.Results[:i+1][i].Vals[:0]
			}
			res := OpResult{Swapped: body[0]&1 != 0, Val: binary.BigEndian.Uint64(body[1:])}
			nvals := int(binary.BigEndian.Uint32(body[9:]))
			body = body[13:]
			if nvals > 0 {
				if len(body) < 8*nvals {
					return fmt.Errorf("proto: truncated scan values of result %d", i)
				}
				if cap(vals) < nvals {
					vals = make([]uint64, nvals)
				}
				vals = vals[:nvals]
				for j := 0; j < nvals; j++ {
					vals[j] = binary.BigEndian.Uint64(body[8*j:])
				}
				res.Vals = vals
				body = body[8*nvals:]
			}
			resp.Results = append(resp.Results, res)
		}
		if len(body) != 0 {
			return fmt.Errorf("proto: %d trailing bytes after results", len(body))
		}
	case StatusBadRequest, StatusError:
		resp.Msg = string(body)
	case StatusShed:
		if len(body) != 4 {
			return fmt.Errorf("proto: shed body of %d bytes, want 4", len(body))
		}
		resp.RetryAfterMS = binary.BigEndian.Uint32(body)
	case StatusPong:
		if len(body) != 0 {
			return fmt.Errorf("proto: pong body of %d bytes, want 0", len(body))
		}
	default:
		return fmt.Errorf("proto: unknown status %d", resp.Status)
	}
	return nil
}
