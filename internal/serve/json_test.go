package serve_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"rhnorec/internal/serve"
)

// TestHTTPJSONEncodingEquivalence pins the hot-path append-based JSON
// encoder byte-for-byte against what json.NewEncoder(w).Encode(&TxnResponse)
// used to emit — omitempty on vals/swapped, field order, trailing newline.
// Any divergence is a wire-format break for JSON clients.
func TestHTTPJSONEncodingEquivalence(t *testing.T) {
	cases := [][]serve.OpResult{
		nil,
		{},
		{{Val: 0}},
		{{Val: 42}},
		{{Val: 1<<64 - 1}},
		{{Val: 7, Swapped: true}},
		{{Val: 7, Swapped: false}},
		{{Vals: []uint64{}}}, // empty scan: omitempty drops vals
		{{Vals: []uint64{0}}},
		{{Vals: []uint64{1, 2, 1<<64 - 1}}},
		{{Val: 3, Vals: []uint64{4, 5}, Swapped: true}},
		{{Val: 1}, {Val: 2, Swapped: true}, {Vals: []uint64{9, 8}}, {Val: 0}},
	}
	for i, res := range cases {
		got := serve.AppendTxnResults(nil, res)

		want := serve.TxnResponse{Results: make([]serve.TxnResult, len(res))}
		for j, r := range res {
			want.Results[j] = serve.TxnResult{Val: r.Val, Vals: r.Vals, Swapped: r.Swapped}
		}
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(&want); err != nil {
			t.Fatalf("case %d: encoding/json: %v", i, err)
		}
		if !bytes.Equal(got, buf.Bytes()) {
			t.Errorf("case %d diverged:\n got %q\nwant %q", i, got, buf.Bytes())
		}
	}
}

// TestHTTPJSONEncoderAppends: the encoder must append to (not replace) the
// buffer it is handed — that is the pooling contract in respond().
func TestHTTPJSONEncoderAppends(t *testing.T) {
	prefix := []byte("xx")
	out := serve.AppendTxnResults(prefix, []serve.OpResult{{Val: 1}})
	if !bytes.HasPrefix(out, prefix) {
		t.Fatalf("encoder did not append: %q", out)
	}
	if want := `xx{"results":[{"val":1}]}` + "\n"; string(out) != want {
		t.Fatalf("got %q, want %q", out, want)
	}
}
