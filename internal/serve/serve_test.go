package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rhnorec/internal/bench"
	"rhnorec/internal/obs"
	"rhnorec/internal/serve"
)

// newTestServer boots a Server plus an httptest front end over its Handler.
func newTestServer(t *testing.T, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	s, err := serve.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

func post(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(out)
}

// bgPost fires a request from a helper goroutine (no testing.T calls off
// the test goroutine).
func bgPost(url string) {
	resp, err := http.Post(url, "", nil)
	if err != nil {
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

func decodeResults(t *testing.T, body string) []serve.TxnResult {
	t.Helper()
	var out serve.TxnResponse
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("bad response body %q: %v", body, err)
	}
	return out.Results
}

func TestPutGetScan(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Keys: 128, Workers: 2})
	if code, body := post(t, ts.URL+"/put?key=7&val=42", ""); code != 200 {
		t.Fatalf("put: %d %s", code, body)
	}
	code, body := get(t, ts.URL+"/get?key=7&key=8")
	if code != 200 {
		t.Fatalf("get: %d %s", code, body)
	}
	res := decodeResults(t, body)
	if len(res) != 2 || res[0].Val != 42 || res[1].Val != 0 {
		t.Fatalf("get results = %+v, want [42 0]", res)
	}
	code, body = get(t, ts.URL+"/scan?start=6&count=3")
	if code != 200 {
		t.Fatalf("scan: %d %s", code, body)
	}
	res = decodeResults(t, body)
	if len(res) != 1 || len(res[0].Vals) != 3 || res[0].Vals[1] != 42 {
		t.Fatalf("scan results = %+v, want middle value 42", res)
	}
}

func TestCasSemantics(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Keys: 128, Workers: 2})
	post(t, ts.URL+"/put?key=3&val=10", "")

	// Matching old value: swaps, reports the observed (old) value.
	code, body := post(t, ts.URL+"/cas?key=3&old=10&new=11", "")
	if code != 200 {
		t.Fatalf("cas: %d %s", code, body)
	}
	res := decodeResults(t, body)
	if !res[0].Swapped || res[0].Val != 10 {
		t.Fatalf("successful cas = %+v, want swapped with val 10", res[0])
	}

	// Stale old value: no swap, reports the current value.
	code, body = post(t, ts.URL+"/cas?key=3&old=10&new=99", "")
	if code != 200 {
		t.Fatalf("cas: %d %s", code, body)
	}
	res = decodeResults(t, body)
	if res[0].Swapped || res[0].Val != 11 {
		t.Fatalf("failed cas = %+v, want unswapped with val 11", res[0])
	}
	code, body = get(t, ts.URL+"/get?key=3")
	if res = decodeResults(t, body); code != 200 || res[0].Val != 11 {
		t.Fatalf("after failed cas key=3 is %+v, want 11", res)
	}
}

// TestTxnAtomicityUnderConcurrentReaders is the endpoint-level opacity
// check: writers move value between two keys inside /txn transactions while
// readers watch both keys through multi-key /get; every read must see the
// moved total conserved.
func TestTxnAtomicityUnderConcurrentReaders(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Keys: 16, Workers: 4, BatchMax: 4})
	post(t, ts.URL+"/put?key=0&val=1000", "")
	post(t, ts.URL+"/put?key=1&val=1000", "")

	var (
		stop     atomic.Bool
		wg       sync.WaitGroup
		badReads atomic.Int64
	)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := ts.Client()
			for i := 1; !stop.Load(); i++ {
				d := i % 97
				body := fmt.Sprintf(
					`{"ops":[{"op":"get","key":0},{"op":"get","key":1},{"op":"put","key":0,"val":%d},{"op":"put","key":1,"val":%d}]}`,
					1000-d, 1000+d)
				req, _ := http.NewRequest(http.MethodPost, ts.URL+"/txn", strings.NewReader(body))
				req.Header.Set("X-RH-Client", fmt.Sprintf("writer-%d", w))
				resp, err := cl.Do(req)
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cl := ts.Client()
			for !stop.Load() {
				req, _ := http.NewRequest(http.MethodGet, ts.URL+"/get?key=0&key=1", nil)
				req.Header.Set("X-RH-Client", fmt.Sprintf("reader-%d", r))
				resp, err := cl.Do(req)
				if err != nil {
					continue
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					continue
				}
				var out serve.TxnResponse
				if json.Unmarshal(body, &out) != nil || len(out.Results) != 2 {
					badReads.Add(1)
					continue
				}
				if sum := out.Results[0].Val + out.Results[1].Val; sum != 2000 {
					badReads.Add(1)
				}
			}
		}(r)
	}
	time.Sleep(300 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	if n := badReads.Load(); n != 0 {
		t.Fatalf("%d reads observed a torn transfer (atomicity violation)", n)
	}
}

// TestAdmissionShed429 overfills a single stalled worker's depth-1 queue
// and expects the overflow request to bounce with 429 + Retry-After.
func TestAdmissionShed429(t *testing.T) {
	release := make(chan struct{})
	var stalled sync.Once
	entered := make(chan struct{})
	prev := serve.SetTestBatchDelay(func() {
		stalled.Do(func() { close(entered) })
		<-release
	})
	defer serve.SetTestBatchDelay(prev)

	_, ts := newTestServer(t, serve.Config{
		Keys: 16, Workers: 1, QueueDepth: 1,
		RequestTimeout: time.Minute, RetryAfter: 3 * time.Second,
	})
	defer close(release)

	// First request occupies the worker (stalled in the batch hook). Then
	// probe with a short client timeout: the first probe occupies the
	// depth-1 queue and times out client-side (the request stays queued
	// server-side), so a following probe must bounce with 429. Every
	// request shares one source IP → one sticky worker.
	go bgPost(ts.URL + "/put?key=1&val=1")
	<-entered
	probe := &http.Client{Timeout: 100 * time.Millisecond}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("no shed observed before deadline")
		}
		resp, err := probe.Post(ts.URL+"/put?key=3&val=3", "", nil)
		if err != nil {
			continue // client timeout: this probe is now parked in the queue
		}
		code := resp.StatusCode
		ra := resp.Header.Get("Retry-After")
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if code == http.StatusTooManyRequests {
			if ra != "3" {
				t.Fatalf("Retry-After = %q, want \"3\"", ra)
			}
			return
		}
	}
}

// TestDeadlineShed queues a request behind a stalled worker with a tiny
// RequestTimeout: by dequeue time its deadline has passed, so it is shed
// (the dequeue-time tier of the admission controller).
func TestDeadlineShed(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	prev := serve.SetTestBatchDelay(func() {
		once.Do(func() {
			close(entered)
			<-release
		})
	})
	defer serve.SetTestBatchDelay(prev)

	s, ts := newTestServer(t, serve.Config{
		Keys: 16, Workers: 1, QueueDepth: 4,
		RequestTimeout: 20 * time.Millisecond,
	})

	go bgPost(ts.URL + "/put?key=1&val=1")
	<-entered

	resCh := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/put?key=2&val=2", "", nil)
		if err != nil {
			resCh <- 0
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		resCh <- resp.StatusCode
	}()
	time.Sleep(60 * time.Millisecond) // let the queued request's deadline lapse
	close(release)
	if code := <-resCh; code != http.StatusTooManyRequests {
		t.Fatalf("deadline-expired request got %d, want 429", code)
	}
	d := s.Snapshot()
	if d.Admission.DeadlineShed == 0 {
		t.Fatalf("admission.deadline_shed = 0, want > 0 (dump: %+v)", d.Admission)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Keys: 64, Workers: 1})
	cases := []struct {
		method, path string
	}{
		{"POST", "/put?key=64&val=1"},        // key out of range
		{"POST", "/put?key=1"},               // missing val
		{"GET", "/get"},                      // missing key
		{"GET", "/scan?start=60&count=10"},   // range past end
		{"GET", "/scan?start=0&count=0"},     // zero count
		{"GET", "/scan?start=0&count=99999"}, // over scan limit
		{"POST", "/txn"},                     // empty body
	}
	for _, c := range cases {
		var code int
		if c.method == "GET" {
			code, _ = get(t, ts.URL+c.path)
		} else {
			code, _ = post(t, ts.URL+c.path, "")
		}
		if code != http.StatusBadRequest {
			t.Errorf("%s %s: status %d, want 400", c.method, c.path, code)
		}
	}
	if code, _ := post(t, ts.URL+"/txn", `{"ops":[{"op":"frob","key":1}]}`); code != 400 {
		t.Errorf("unknown op: status %d, want 400", code)
	}
	if code, _ := get(t, ts.URL+"/put?key=1&val=1"); code != http.StatusMethodNotAllowed {
		t.Errorf("GET /put: status %d, want 405", code)
	}
}

// TestMetricsDump drives traffic over several endpoints, then checks that
// the JSON form of /metrics passes the rhserve.v1 schema validator, labels
// every driven endpoint, and counts the traffic.
func TestMetricsDump(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Keys: 128, Workers: 2, RingSize: 64})
	post(t, ts.URL+"/put?key=1&val=5", "")
	get(t, ts.URL+"/get?key=1")
	post(t, ts.URL+"/cas?key=1&old=5&new=6", "")
	get(t, ts.URL+"/scan?start=0&count=8")
	post(t, ts.URL+"/txn", `{"ops":[{"op":"get","key":1},{"op":"put","key":2,"val":9}]}`)

	code, body := get(t, ts.URL+"/metrics?format=json")
	if code != 200 {
		t.Fatalf("metrics: %d %s", code, body)
	}
	if err := bench.ValidateDump([]byte(body)); err != nil {
		t.Fatalf("rhserve.v1 dump invalid: %v\n%s", err, body)
	}
	d, err := bench.ParseServeDump([]byte(body))
	if err != nil {
		t.Fatalf("ParseServeDump: %v", err)
	}
	want := map[string]bool{"get": true, "put": true, "cas": true, "scan": true, "txn": true}
	for _, ep := range d.Endpoints {
		delete(want, ep.Endpoint)
		if ep.Requests == 0 || ep.Latency.Count == 0 {
			t.Errorf("endpoint %s: empty ledger %+v", ep.Endpoint, ep)
		}
	}
	if len(want) != 0 {
		t.Errorf("endpoints missing from dump: %v", want)
	}
	if d.TM.Commits == 0 {
		t.Errorf("tm.commits = 0, want > 0")
	}

	// The text form renders the same data.
	code, text := get(t, ts.URL+"/metrics")
	if code != 200 || !strings.Contains(text, "endpoint") || !strings.Contains(text, "admission:") {
		t.Errorf("text metrics missing expected sections:\n%s", text)
	}
}

// TestSnapshotAfterClose verifies Close stores final worker snapshots so
// late metrics reads still see the full ledger.
func TestSnapshotAfterClose(t *testing.T) {
	s, ts := newTestServer(t, serve.Config{Keys: 16, Workers: 2})
	post(t, ts.URL+"/put?key=1&val=1", "")
	s.Close()
	d := s.Snapshot()
	var total uint64
	for _, ep := range d.Endpoints {
		total += ep.Requests
	}
	if total == 0 {
		t.Fatalf("post-Close snapshot lost the request ledger: %+v", d.Endpoints)
	}
	b, _ := json.Marshal(d)
	if err := bench.ValidateDump(bytes.TrimSpace(b)); err != nil {
		t.Fatalf("post-Close dump invalid: %v", err)
	}
}

// TestFusedBatchRingEvents forces two requests to fuse into one
// transaction (the worker is stalled while both enqueue) and checks the
// drained post-Close rings carry a fuse event whose retry field is the
// batch size.
func TestFusedBatchRingEvents(t *testing.T) {
	s, err := serve.New(serve.Config{Keys: 16, Workers: 1, RingSize: 64})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	restore := serve.SetTestBatchDelay(func() {
		once.Do(func() {
			close(entered)
			<-release
		})
	})
	defer restore()

	var wg sync.WaitGroup
	do := func(key uint64) {
		defer wg.Done()
		if _, err := s.Do("one-client", serve.EpPut, []serve.Op{{Kind: serve.OpPut, Key: key, Val: key}}); err != nil {
			t.Errorf("Do(%d): %v", key, err)
		}
	}
	// The first request enters the worker and stalls in the hook; the next
	// two land in the queue meanwhile, so the drain fuses all three.
	wg.Add(1)
	go do(1)
	<-entered
	wg.Add(2)
	go do(2)
	go do(3)
	time.Sleep(100 * time.Millisecond)
	close(release)
	wg.Wait()

	if events := s.Events(); events[0] != nil {
		t.Fatal("Events must be nil before Close (rings drain only once)")
	}
	s.Close()
	var fuse *obs.Event
	for _, ring := range s.Events() {
		for i, ev := range ring {
			if ev.Kind == obs.EventFuse {
				fuse = &ring[i]
			}
		}
	}
	if fuse == nil {
		t.Fatal("no fuse event in the drained rings")
	}
	if fuse.Retry < 2 {
		t.Fatalf("fuse event batch size = %d, want >= 2", fuse.Retry)
	}
}
