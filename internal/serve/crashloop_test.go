package serve_test

// The real-process crash-recovery loop: build cmd/rhserve, then repeatedly
// run it with -data and -durable, drive durable-acked multi-key transactions
// at it over the binary protocol, kill -9 mid-traffic, restart on the same
// directory, and audit the recovered state. The oracle is the explored crash
// plane's (internal/explore): per-client key pairs whose sum is invariant
// under every transfer (an atomic-prefix replay preserves it), plus a
// per-client stamp key written in the same transaction — after a crash the
// recovered stamp must be at least the last durable-acked one (no lost
// durable-acked commit) and the pair sum must be exact (no torn replay).
//
// Gated behind RHNOREC_CRASHLOOP=1: it execs go build and burns real
// wall-clock on process churn, which is CI's crash-recovery job's budget,
// not the unit suite's.

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"rhnorec/internal/serve"
)

const (
	crashClients   = 4
	crashPairTotal = 1_000_000
)

// crashServer is one rhserve process under test.
type crashServer struct {
	cmd  *exec.Cmd
	addr string
}

func startCrashServer(t *testing.T, bin, dataDir string) *crashServer {
	t.Helper()
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-data", dataDir,
		"-durable",
		"-keys", "64",
		"-workers", "4",
	)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start rhserve: %v", err)
	}
	// The boot banner carries the bound address (port 0 picks one).
	sc := bufio.NewScanner(stdout)
	var addr string
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, " on 127.0.0.1:"); i >= 0 {
			addr = strings.Fields(line[i+len(" on "):])[0]
			break
		}
	}
	if addr == "" {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("rhserve never printed its bound address")
	}
	// Keep draining stdout so the process never blocks on a full pipe.
	go func() {
		for sc.Scan() {
		}
	}()
	return &crashServer{cmd: cmd, addr: addr}
}

func (cs *crashServer) kill() {
	cs.cmd.Process.Kill() // SIGKILL: no shutdown path runs
	cs.cmd.Wait()
}

// crashClient is one binary-protocol connection doing durable-acked
// transfers on its own key pair.
type crashClient struct {
	id    int
	conn  net.Conn
	bw    *bufio.Writer
	br    *bufio.Reader
	reqID uint64
	// acked is the last transfer stamp the server durable-acked; survival
	// floor for the recovered stamp key.
	acked uint64
}

// keys: client i owns pair (3i, 3i+1) and stamp 3i+2.
func (c *crashClient) keyA() uint64     { return uint64(3 * c.id) }
func (c *crashClient) keyB() uint64     { return uint64(3*c.id + 1) }
func (c *crashClient) keyStamp() uint64 { return uint64(3*c.id + 2) }

func dialCrashClient(t *testing.T, addr string, id int, acked uint64) (*crashClient, error) {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	c := &crashClient{id: id, conn: conn, bw: bufio.NewWriter(conn), br: bufio.NewReader(conn), acked: acked}
	if _, err := c.bw.WriteString(serve.ProtoMagic); err != nil {
		conn.Close()
		return nil, err
	}
	if _, err := c.do(&serve.ProtoRequest{Opcode: serve.OpcodeHello, Hello: fmt.Sprintf("crash-%d", id)}); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// do sends one frame and reads its reply (the process dying mid-exchange
// surfaces as an error, which the caller treats as "crash happened").
func (c *crashClient) do(req *serve.ProtoRequest) (*serve.ProtoResponse, error) {
	c.reqID++
	req.ReqID = c.reqID
	payload, err := serve.AppendRequest(nil, req)
	if err != nil {
		return nil, err
	}
	if err := serve.WriteFrame(c.bw, payload); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	c.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	frame, err := serve.ReadFrame(c.br, nil)
	if err != nil {
		return nil, err
	}
	return serve.ParseResponse(frame)
}

// transfer runs one durable-acked atomic transfer: repartition the pair and
// bump the stamp in ONE transaction. stamp n acked durably => this exact
// partition is recoverable.
func (c *crashClient) transfer(n uint64) error {
	x := (n * 7919) % crashPairTotal // deterministic walk over partitions
	resp, err := c.do(&serve.ProtoRequest{
		Opcode: serve.OpcodeTxn,
		Ops: []serve.Op{
			{Kind: serve.OpPut, Key: c.keyA(), Val: x},
			{Kind: serve.OpPut, Key: c.keyB(), Val: crashPairTotal - x},
			{Kind: serve.OpPut, Key: c.keyStamp(), Val: n},
		},
	})
	if err != nil {
		return err
	}
	switch resp.Status {
	case serve.StatusOK:
		c.acked = n
		return nil
	case serve.StatusShed:
		return nil // backpressure, not failure; stamp not acked
	default:
		return fmt.Errorf("transfer: status %d %s", resp.Status, resp.Msg)
	}
}

// audit reads the recovered pair and stamp through a fresh server and checks
// the crash-consistency contract.
func (c *crashClient) audit(t *testing.T, addr string, iter int) {
	t.Helper()
	ac, err := dialCrashClient(t, addr, c.id, c.acked)
	if err != nil {
		t.Fatalf("iter %d: audit dial: %v", iter, err)
	}
	defer ac.conn.Close()
	resp, err := ac.do(&serve.ProtoRequest{
		Opcode: serve.OpcodeGet,
		Ops: []serve.Op{
			{Kind: serve.OpGet, Key: c.keyA()},
			{Kind: serve.OpGet, Key: c.keyB()},
			{Kind: serve.OpGet, Key: c.keyStamp()},
		},
	})
	if err != nil || resp.Status != serve.StatusOK {
		t.Fatalf("iter %d: audit get: %v (resp %+v)", iter, err, resp)
	}
	a, b, stamp := resp.Results[0].Val, resp.Results[1].Val, resp.Results[2].Val
	if stamp > 0 || c.acked > 0 {
		if a+b != crashPairTotal {
			t.Fatalf("iter %d client %d: conservation broken after crash: %d + %d != %d (stamp %d)",
				iter, c.id, a, b, crashPairTotal, stamp)
		}
	}
	if stamp < c.acked {
		t.Fatalf("iter %d client %d: durable-acked commit lost: recovered stamp %d < acked %d",
			iter, c.id, stamp, c.acked)
	}
	if stamp > 0 {
		// The recovered partition must be stamp's exact partition: replay
		// reached a transaction boundary, not a torn mix.
		want := (stamp * 7919) % crashPairTotal
		if a != want {
			t.Fatalf("iter %d client %d: recovered partition %d/%d does not match stamp %d (want a=%d)",
				iter, c.id, a, b, stamp, want)
		}
	}
}

func TestCrashLoopKill9(t *testing.T) {
	if os.Getenv("RHNOREC_CRASHLOOP") == "" {
		t.Skip("set RHNOREC_CRASHLOOP=1 to run the kill -9 recovery loop (CI crash-recovery job)")
	}
	iters := 20
	if v := os.Getenv("RHNOREC_CRASHLOOP_ITERS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("bad RHNOREC_CRASHLOOP_ITERS=%q", v)
		}
		iters = n
	}
	bin := filepath.Join(t.TempDir(), "rhserve")
	if out, err := exec.Command("go", "build", "-o", bin, "rhnorec/cmd/rhserve").CombinedOutput(); err != nil {
		t.Fatalf("go build rhserve: %v\n%s", err, out)
	}
	dataDir := filepath.Join(t.TempDir(), "data")

	// acked stamps survive across iterations (the clients reconnect).
	acked := make([]uint64, crashClients)
	stampBase := uint64(0)

	for iter := 0; iter < iters; iter++ {
		srv := startCrashServer(t, bin, dataDir)

		// Audit last iteration's crash against this boot's recovered state.
		for id := 0; id < crashClients; id++ {
			(&crashClient{id: id, acked: acked[id]}).audit(t, srv.addr, iter)
		}

		// Drive durable transfers until the kill lands.
		type clientDone struct {
			id    int
			acked uint64
		}
		done := make(chan clientDone, crashClients)
		for id := 0; id < crashClients; id++ {
			go func(id int) {
				d := clientDone{id: id, acked: acked[id]}
				defer func() { done <- d }()
				c, err := dialCrashClient(t, srv.addr, id, acked[id])
				if err != nil {
					return // server already gone
				}
				defer c.conn.Close()
				for n := stampBase + 1; ; n++ {
					if err := c.transfer(n); err != nil {
						d.acked = c.acked
						return // crash observed mid-exchange
					}
					d.acked = c.acked
				}
			}(id)
		}
		// Vary the kill point so crashes land at different log phases.
		time.Sleep(time.Duration(20+iter*7) * time.Millisecond)
		srv.kill()
		for i := 0; i < crashClients; i++ {
			d := <-done
			acked[d.id] = d.acked
		}
		// Stamps strictly grow across iterations so a stale replay is
		// distinguishable from a fresh one.
		for _, a := range acked {
			if a > stampBase {
				stampBase = a
			}
		}
		stampBase += 1000
	}

	// One final boot: the last crash must recover too.
	srv := startCrashServer(t, bin, dataDir)
	for id := 0; id < crashClients; id++ {
		(&crashClient{id: id, acked: acked[id]}).audit(t, srv.addr, iters)
	}
	srv.kill()
}
