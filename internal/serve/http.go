package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"time"
)

// The HTTP/JSON transport. Endpoints (docs/SERVE.md has the full operator
// reference):
//
//	GET  /get?key=K[&key=K...]      multi-key transactional read
//	POST /put?key=K&val=V           single-key write
//	POST /cas?key=K&old=O&new=V     compare-and-swap
//	GET  /scan?start=K&count=N      contiguous-range read
//	POST /txn         {"ops":[...]} multi-op transaction
//	GET  /metrics[?format=json]     text page or rhserve.v1 dump
//	GET  /healthz                   liveness probe
//
// Clients pin their sticky worker with the X-RH-Client header; without it
// the client IP (sans port) is the routing identity. Sheds answer 429 with
// a Retry-After header (whole seconds, rounded up).

// TxnRequest is the POST /txn body.
type TxnRequest struct {
	// Ops is the transaction's op list, executed atomically in order.
	Ops []TxnOp `json:"ops"`
}

// TxnOp is one JSON op. Op selects the kind and which fields apply:
// "get" (key), "put" (key, val), "cas" (key, old, new), "scan" (key, count).
type TxnOp struct {
	Op    string `json:"op"`
	Key   uint64 `json:"key"`
	Val   uint64 `json:"val,omitempty"`
	Old   uint64 `json:"old,omitempty"`
	New   uint64 `json:"new,omitempty"`
	Count uint32 `json:"count,omitempty"`
}

// TxnResponse is the /txn (and /get, /put, /cas, /scan) reply body.
type TxnResponse struct {
	// Results holds one entry per request op, in op order.
	Results []TxnResult `json:"results"`
}

// TxnResult is one op's outcome.
type TxnResult struct {
	// Val is the read/written/observed value (unset for scans).
	Val uint64 `json:"val"`
	// Vals holds a scan's values.
	Vals []uint64 `json:"vals,omitempty"`
	// Swapped reports whether a cas published its new value.
	Swapped bool `json:"swapped,omitempty"`
}

// Handler returns the service's HTTP handler (also usable under httptest;
// Start serves it together with the binary protocol on one listener). With
// Config.Pprof the net/http/pprof handlers mount under /debug/pprof/.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/get", s.handleGet)
	mux.HandleFunc("/put", s.handlePut)
	mux.HandleFunc("/cas", s.handleCas)
	mux.HandleFunc("/scan", s.handleScan)
	mux.HandleFunc("/txn", s.handleTxn)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	if s.cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", httppprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	}
	return mux
}

// clientID derives the sticky-routing identity of a request.
func clientID(r *http.Request) string {
	if id := r.Header.Get("X-RH-Client"); id != "" {
		return id
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// jsonBufPool recycles reply-encoding buffers across requests (net/http
// runs each request on a pooled goroutine, so a per-connection buffer has
// no natural home; a sync.Pool is the next best).
var jsonBufPool = sync.Pool{New: func() any { return new(jsonBuf) }}

type jsonBuf struct{ b []byte }

// appendTxnResults encodes the TxnResponse JSON by hand: byte-identical to
// json.NewEncoder(w).Encode(&TxnResponse{...}) — including omitempty on
// vals/swapped and the trailing newline — without reflection or
// per-request allocation. TestHTTPJSONEncodingEquivalence pins the
// equivalence against encoding/json.
func appendTxnResults(buf []byte, res []OpResult) []byte {
	buf = append(buf, `{"results":[`...)
	for i := range res {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, `{"val":`...)
		buf = strconv.AppendUint(buf, res[i].Val, 10)
		if len(res[i].Vals) > 0 {
			buf = append(buf, `,"vals":[`...)
			for j, v := range res[i].Vals {
				if j > 0 {
					buf = append(buf, ',')
				}
				buf = strconv.AppendUint(buf, v, 10)
			}
			buf = append(buf, ']')
		}
		if res[i].Swapped {
			buf = append(buf, `,"swapped":true`...)
		}
		buf = append(buf, '}')
	}
	buf = append(buf, ']', '}', '\n')
	return buf
}

// respond runs ops through Do and writes the JSON reply (or the mapped
// error status) via the append-based encoder.
func (s *Server) respond(w http.ResponseWriter, r *http.Request, ep Endpoint, ops []Op) {
	res, err := s.Do(clientID(r), ep, ops)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	jb := jsonBufPool.Get().(*jsonBuf)
	jb.b = appendTxnResults(jb.b[:0], res)
	w.Header().Set("Content-Type", "application/json")
	w.Write(jb.b)
	jsonBufPool.Put(jb)
}

// writeErr maps a Do error onto the HTTP status vocabulary: shed → 429 +
// Retry-After, client error → 400, shutdown → 503, anything else → 500.
func (s *Server) writeErr(w http.ResponseWriter, err error) {
	var reqErr *RequestError
	switch {
	case errors.Is(err, ErrShed):
		secs := int(s.cfg.RetryAfter.Round(time.Second) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		http.Error(w, "overloaded, retry later", http.StatusTooManyRequests)
	case errors.As(err, &reqErr):
		http.Error(w, reqErr.Error(), http.StatusBadRequest)
	case errors.Is(err, ErrClosed):
		http.Error(w, "shutting down", http.StatusServiceUnavailable)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// queryU64 parses one named query parameter as a uint64.
func queryU64(r *http.Request, name string) (uint64, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return 0, fmt.Errorf("missing %q parameter", name)
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %q parameter: %v", name, err)
	}
	return n, nil
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	keys := r.URL.Query()["key"]
	if len(keys) == 0 {
		http.Error(w, "missing \"key\" parameter", http.StatusBadRequest)
		return
	}
	ops := make([]Op, len(keys))
	for i, ks := range keys {
		k, err := strconv.ParseUint(ks, 10, 64)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad \"key\" parameter: %v", err), http.StatusBadRequest)
			return
		}
		ops[i] = Op{Kind: OpGet, Key: k}
	}
	s.respond(w, r, EpGet, ops)
}

func (s *Server) handlePut(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	key, err := queryU64(r, "key")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	val, err := queryU64(r, "val")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.respond(w, r, EpPut, []Op{{Kind: OpPut, Key: key, Val: val}})
}

func (s *Server) handleCas(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	key, err := queryU64(r, "key")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	old, err := queryU64(r, "old")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	nv, err := queryU64(r, "new")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.respond(w, r, EpCas, []Op{{Kind: OpCas, Key: key, Old: old, Val: nv}})
}

func (s *Server) handleScan(w http.ResponseWriter, r *http.Request) {
	start, err := queryU64(r, "start")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	count, err := queryU64(r, "count")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if count > maxScanCount {
		http.Error(w, fmt.Sprintf("scan count %d exceeds limit %d", count, maxScanCount), http.StatusBadRequest)
		return
	}
	s.respond(w, r, EpScan, []Op{{Kind: OpScan, Key: start, Count: uint32(count)}})
}

func (s *Server) handleTxn(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var req TxnRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad txn body: %v", err), http.StatusBadRequest)
		return
	}
	ops := make([]Op, len(req.Ops))
	for i, jo := range req.Ops {
		op, err := jo.toOp()
		if err != nil {
			http.Error(w, fmt.Sprintf("op %d: %v", i, err), http.StatusBadRequest)
			return
		}
		ops[i] = op
	}
	s.respond(w, r, EpTxn, ops)
}

// toOp normalizes one JSON op.
func (jo *TxnOp) toOp() (Op, error) {
	switch strings.ToLower(jo.Op) {
	case "get":
		return Op{Kind: OpGet, Key: jo.Key}, nil
	case "put":
		return Op{Kind: OpPut, Key: jo.Key, Val: jo.Val}, nil
	case "cas":
		return Op{Kind: OpCas, Key: jo.Key, Old: jo.Old, Val: jo.New}, nil
	case "scan":
		return Op{Kind: OpScan, Key: jo.Key, Count: jo.Count}, nil
	default:
		return Op{}, fmt.Errorf("unknown op %q", jo.Op)
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	d := s.Snapshot()
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(d)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	writeMetricsText(w, d)
}
