package serve_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net"
	"testing"

	"rhnorec/internal/bench"
	"rhnorec/internal/serve"
)

// TestPersistCloseRecover: Close fsyncs and closes the redo log after the
// workers drain, so a clean Close-then-reopen loses nothing — even without
// durable acks.
func TestPersistCloseRecover(t *testing.T) {
	dir := t.TempDir()
	s, err := serve.New(serve.Config{Keys: 64, Workers: 2, DataDir: dir})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for k := uint64(0); k < 8; k++ {
		if _, err := s.Do("c", serve.EpPut, []serve.Op{{Kind: serve.OpPut, Key: k, Val: 100 + k}}); err != nil {
			t.Fatalf("put %d: %v", k, err)
		}
	}
	// Overwrite one key so recovery must replay in order.
	if _, err := s.Do("c", serve.EpPut, []serve.Op{{Kind: serve.OpPut, Key: 3, Val: 999}}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := serve.New(serve.Config{Keys: 64, Workers: 2, DataDir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	stats, on := s2.Recovery()
	if !on || stats.Seq == 0 {
		t.Fatalf("recovery stats %+v persisting=%v, want replayed commits", stats, on)
	}
	for k := uint64(0); k < 8; k++ {
		want := 100 + k
		if k == 3 {
			want = 999
		}
		res, err := s2.Do("c", serve.EpGet, []serve.Op{{Kind: serve.OpGet, Key: k}})
		if err != nil {
			t.Fatalf("get %d: %v", k, err)
		}
		if res[0].Val != want {
			t.Fatalf("key %d = %d after recovery, want %d", k, res[0].Val, want)
		}
	}
}

// TestPersistRequiresRHNorec: only the rh-norec system has its eager
// full-software stores instrumented; other algos must reject a DataDir
// instead of silently logging an incomplete write stream.
func TestPersistRequiresRHNorec(t *testing.T) {
	_, err := serve.New(serve.Config{Keys: 16, Algo: "norec", DataDir: t.TempDir()})
	if err == nil {
		t.Fatalf("New accepted DataDir with algo norec")
	}
}

// TestPersistMetricsDump: the rhserve.v1 dump grows a persist block that
// validates, and DurableAcks holds replies until the fsync frontier catches
// the append frontier.
func TestPersistMetricsDump(t *testing.T) {
	s, err := serve.New(serve.Config{Keys: 64, Workers: 2, DataDir: t.TempDir(), DurableAcks: true})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()
	for k := uint64(0); k < 4; k++ {
		if _, err := s.Do("c", serve.EpPut, []serve.Op{{Kind: serve.OpPut, Key: k, Val: k}}); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	d := s.Snapshot()
	if d.Persist == nil {
		t.Fatalf("dump has no persist block")
	}
	if d.Persist.LogAppends < 4 || d.Persist.Appended < 4 {
		t.Fatalf("persist ledger %+v, want >= 4 appends", d.Persist)
	}
	if d.Persist.Durable != d.Persist.Appended {
		t.Fatalf("durable acks on but durable=%d < appended=%d", d.Persist.Durable, d.Persist.Appended)
	}
	b, _ := json.Marshal(d)
	if err := bench.ValidateDump(bytes.TrimSpace(b)); err != nil {
		t.Fatalf("dump with persist block invalid: %v\n%s", err, b)
	}
}

// binDo sends one binary-protocol request and returns the parsed response.
func binDo(t *testing.T, bw *bufio.Writer, br *bufio.Reader, req *serve.ProtoRequest) *serve.ProtoResponse {
	t.Helper()
	payload, err := serve.AppendRequest(nil, req)
	if err != nil {
		t.Fatalf("AppendRequest: %v", err)
	}
	if err := serve.WriteFrame(bw, payload); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	frame, err := serve.ReadFrame(br, nil)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	resp, err := serve.ParseResponse(frame)
	if err != nil {
		t.Fatalf("ParseResponse: %v", err)
	}
	return resp
}

// TestDurableOpcode: OpcodeDurable toggles per-connection durable acks; a
// put after the toggle advances the fsync frontier before the reply.
func TestDurableOpcode(t *testing.T) {
	s, err := serve.New(serve.Config{Keys: 64, Workers: 2, DataDir: t.TempDir()})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	c, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	bw, br := bufio.NewWriter(c), bufio.NewReader(c)
	if _, err := bw.WriteString(serve.ProtoMagic); err != nil {
		t.Fatal(err)
	}

	resp := binDo(t, bw, br, &serve.ProtoRequest{Opcode: serve.OpcodeDurable, ReqID: 1, Durable: true})
	if resp.Status != serve.StatusOK || resp.ReqID != 1 {
		t.Fatalf("durable toggle: %+v", resp)
	}
	resp = binDo(t, bw, br, &serve.ProtoRequest{
		Opcode: serve.OpcodePut, ReqID: 2,
		Ops: []serve.Op{{Kind: serve.OpPut, Key: 5, Val: 77}},
	})
	if resp.Status != serve.StatusOK {
		t.Fatalf("durable put: %+v", resp)
	}
	d := s.Snapshot()
	if d.Persist == nil || d.Persist.Durable < 1 {
		t.Fatalf("durable put acked before fsync: %+v", d.Persist)
	}
	if d.Persist.Durable != d.Persist.Appended {
		t.Fatalf("durable=%d < appended=%d after durable-acked put", d.Persist.Durable, d.Persist.Appended)
	}

	// Toggle off: the reply no longer waits, but the bad-body guard holds.
	resp = binDo(t, bw, br, &serve.ProtoRequest{Opcode: serve.OpcodeDurable, ReqID: 3, Durable: false})
	if resp.Status != serve.StatusOK {
		t.Fatalf("durable off: %+v", resp)
	}
}
