package serve_test

import (
	"bufio"
	"encoding/binary"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rhnorec/internal/serve"
)

// appendWire encodes req and appends its length-prefixed wire frame, so a
// test can hand the kernel several frames in one Write and exercise the
// server's buffered-drain path.
func appendWire(t *testing.T, wire []byte, req *serve.ProtoRequest) []byte {
	t.Helper()
	payload, err := serve.AppendRequest(nil, req)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(payload)))
	wire = append(wire, n[:]...)
	return append(wire, payload...)
}

// appendRawWire frames an arbitrary payload (for deliberately malformed
// requests).
func appendRawWire(wire, payload []byte) []byte {
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(payload)))
	wire = append(wire, n[:]...)
	return append(wire, payload...)
}

// readResp reads and decodes the next reply frame.
func (b *binConn) readResp(t *testing.T) *serve.ProtoResponse {
	t.Helper()
	in, err := serve.ReadFrame(b.br, nil)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	resp, err := serve.ParseResponse(in)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return resp
}

func startBinaryServer(t *testing.T, cfg serve.Config) (*serve.Server, string) {
	t.Helper()
	s, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return s, addr.String()
}

// TestBinaryPipelinedDrain: frames written back to back must come back as
// in-order replies, and the server must see them as one multi-frame drain
// (ledgered in a depth>1 pipeline bucket) rather than eight round trips.
func TestBinaryPipelinedDrain(t *testing.T) {
	const depth = 8
	s, addr := startBinaryServer(t, serve.Config{Keys: 64, Workers: 2})
	bc := dialBinary(t, addr)
	defer bc.c.Close()
	if resp := bc.roundTrip(t, &serve.ProtoRequest{Opcode: serve.OpcodeHello, ReqID: 1, Hello: "pipe-1"}); resp.Status != serve.StatusOK {
		t.Fatalf("hello status %d", resp.Status)
	}

	// The kernel gets every frame in one write while the session goroutine
	// is parked in its blocking read, so the drain sees them all buffered.
	// A scheduler wakeup between partial deliveries can still split a
	// batch; retry a few times before calling the ledger wrong.
	deepDrained := func() bool {
		for _, b := range s.Snapshot().Pipeline {
			if b.Depth > 1 {
				return true
			}
		}
		return false
	}
	for attempt := 0; attempt < 50 && !deepDrained(); attempt++ {
		var wire []byte
		for i := 0; i < depth; i++ {
			wire = appendWire(t, wire, &serve.ProtoRequest{
				Opcode: serve.OpcodePut, ReqID: uint64(10 + i),
				Ops: []serve.Op{{Kind: serve.OpPut, Key: uint64(i), Val: uint64(100 + i)}},
			})
		}
		if _, err := bc.c.Write(wire); err != nil {
			t.Fatalf("write batch: %v", err)
		}
		for i := 0; i < depth; i++ {
			resp := bc.readResp(t)
			if resp.ReqID != uint64(10+i) {
				t.Fatalf("reply %d has reqID %d, want %d (replies must keep frame order)", i, resp.ReqID, 10+i)
			}
			if resp.Status != serve.StatusOK {
				t.Fatalf("reply %d status %d, want OK", i, resp.Status)
			}
		}
	}
	if !deepDrained() {
		t.Fatal("no drain ever batched more than one frame")
	}

	// The writes all landed: read them back through one pipelined batch.
	var wire []byte
	for i := 0; i < depth; i++ {
		wire = appendWire(t, wire, &serve.ProtoRequest{
			Opcode: serve.OpcodeGet, ReqID: uint64(20 + i),
			Ops: []serve.Op{{Kind: serve.OpGet, Key: uint64(i)}},
		})
	}
	if _, err := bc.c.Write(wire); err != nil {
		t.Fatalf("write batch: %v", err)
	}
	for i := 0; i < depth; i++ {
		resp := bc.readResp(t)
		if resp.ReqID != uint64(20+i) || resp.Status != serve.StatusOK {
			t.Fatalf("get reply %d: reqID %d status %d", i, resp.ReqID, resp.Status)
		}
		if len(resp.Results) != 1 || resp.Results[0].Val != uint64(100+i) {
			t.Fatalf("get reply %d results %+v, want val %d", i, resp.Results, 100+i)
		}
	}
}

// TestBinaryPipelinedMixedBatch: immediates (ping, hello), a malformed
// frame, and transactional requests interleaved in one drain must each get
// their own reply, in frame order, without killing the session.
func TestBinaryPipelinedMixedBatch(t *testing.T) {
	_, addr := startBinaryServer(t, serve.Config{Keys: 64, Workers: 2})
	bc := dialBinary(t, addr)
	defer bc.c.Close()

	// Seed key 3 before the batch: the batch's rebound get reads it from a
	// different sticky worker, and cross-worker execution order within one
	// drain is not defined (only reply order is), so the read target must
	// be stable beforehand.
	if resp := bc.roundTrip(t, &serve.ProtoRequest{Opcode: serve.OpcodePut, ReqID: 99,
		Ops: []serve.Op{{Kind: serve.OpPut, Key: 3, Val: 7}}}); resp.Status != serve.StatusOK {
		t.Fatalf("seed status %d", resp.Status)
	}

	var wire []byte
	wire = appendWire(t, wire, &serve.ProtoRequest{Opcode: serve.OpcodeHello, ReqID: 1, Hello: "ident-a"})
	wire = appendWire(t, wire, &serve.ProtoRequest{Opcode: serve.OpcodePut, ReqID: 2,
		Ops: []serve.Op{{Kind: serve.OpPut, Key: 9, Val: 11}}})
	// Truncated request: an opcode byte with no reqID. Parse fails, so the
	// reply cannot echo a request ID.
	wire = appendRawWire(wire, []byte{serve.OpcodeGet})
	wire = appendWire(t, wire, &serve.ProtoRequest{Opcode: serve.OpcodePing, ReqID: 4})
	// Mid-drain rebind: later frames in the same drain belong to the new
	// identity (and possibly a different sticky worker).
	wire = appendWire(t, wire, &serve.ProtoRequest{Opcode: serve.OpcodeHello, ReqID: 5, Hello: "ident-b"})
	wire = appendWire(t, wire, &serve.ProtoRequest{Opcode: serve.OpcodeGet, ReqID: 6,
		Ops: []serve.Op{{Kind: serve.OpGet, Key: 3}}})
	if _, err := bc.c.Write(wire); err != nil {
		t.Fatalf("write batch: %v", err)
	}

	want := []struct {
		reqID  uint64
		status uint8
	}{
		{1, serve.StatusOK},
		{2, serve.StatusOK},
		{0, serve.StatusBadRequest},
		{4, serve.StatusPong},
		{5, serve.StatusOK},
		{6, serve.StatusOK},
	}
	for i, w := range want {
		resp := bc.readResp(t)
		if resp.ReqID != w.reqID || resp.Status != w.status {
			t.Fatalf("reply %d: reqID %d status %d, want reqID %d status %d",
				i, resp.ReqID, resp.Status, w.reqID, w.status)
		}
		if w.reqID == 6 && (len(resp.Results) != 1 || resp.Results[0].Val != 7) {
			t.Fatalf("get after rebind returned %+v, want val 7", resp.Results)
		}
	}
}

// TestBinaryRecycledBuffersNoAliasing: the session recycles request
// envelopes, result slices, and frame buffers across drains; every reply
// must still carry exactly its own request's data. Scans are the sharpest
// probe — their result buffers are the largest recycled object.
func TestBinaryRecycledBuffersNoAliasing(t *testing.T) {
	const (
		ranges = 4
		span   = 4
	)
	_, addr := startBinaryServer(t, serve.Config{Keys: 64, Workers: 2})
	bc := dialBinary(t, addr)
	defer bc.c.Close()
	if resp := bc.roundTrip(t, &serve.ProtoRequest{Opcode: serve.OpcodeHello, ReqID: 1, Hello: "alias-1"}); resp.Status != serve.StatusOK {
		t.Fatalf("hello status %d", resp.Status)
	}

	for round := uint64(1); round <= 3; round++ {
		// Distinct value per key per round.
		var wire []byte
		for k := uint64(0); k < ranges*span; k++ {
			wire = appendWire(t, wire, &serve.ProtoRequest{Opcode: serve.OpcodePut, ReqID: 100*round + k,
				Ops: []serve.Op{{Kind: serve.OpPut, Key: k, Val: 1000*round + k}}})
		}
		for r := uint64(0); r < ranges; r++ {
			wire = appendWire(t, wire, &serve.ProtoRequest{Opcode: serve.OpcodeScan, ReqID: 200*round + r,
				Ops: []serve.Op{{Kind: serve.OpScan, Key: r * span, Count: span}}})
		}
		if _, err := bc.c.Write(wire); err != nil {
			t.Fatalf("round %d write: %v", round, err)
		}
		for k := uint64(0); k < ranges*span; k++ {
			if resp := bc.readResp(t); resp.ReqID != 100*round+k || resp.Status != serve.StatusOK {
				t.Fatalf("round %d put reply %d: reqID %d status %d", round, k, resp.ReqID, resp.Status)
			}
		}
		for r := uint64(0); r < ranges; r++ {
			resp := bc.readResp(t)
			if resp.ReqID != 200*round+r || resp.Status != serve.StatusOK {
				t.Fatalf("round %d scan reply %d: reqID %d status %d", round, r, resp.ReqID, resp.Status)
			}
			if len(resp.Results) != 1 || len(resp.Results[0].Vals) != span {
				t.Fatalf("round %d scan %d results %+v", round, r, resp.Results)
			}
			for j, v := range resp.Results[0].Vals {
				if want := 1000*round + r*span + uint64(j); v != want {
					t.Fatalf("round %d scan %d val[%d] = %d, want %d (recycled buffer bled across requests)",
						round, r, j, v, want)
				}
			}
		}
	}
}

// TestRacePipelinedDrainVsClose is the -race exercise for the drain path:
// several connections firehose pipelined batches while the server shuts
// down underneath them. Clients must only ever see clean transport errors
// or well-formed replies — never a torn frame or a race report.
func TestRacePipelinedDrainVsClose(t *testing.T) {
	s, err := serve.New(serve.Config{Keys: 64, Workers: 2, QueueDepth: 32, BatchMax: 4})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	const conns = 4
	var (
		wg      sync.WaitGroup
		batches atomic.Int64
		broken  atomic.Int64
	)
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr.String())
			if err != nil {
				return
			}
			defer conn.Close()
			if _, err := io.WriteString(conn, serve.ProtoMagic); err != nil {
				return
			}
			br := bufio.NewReader(conn)
			var wire []byte
			for i := 0; i < 8; i++ {
				req := serve.ProtoRequest{Opcode: serve.OpcodePut, ReqID: uint64(i + 1),
					Ops: []serve.Op{{Kind: serve.OpPut, Key: uint64(c*8 + i), Val: uint64(i)}}}
				payload, err := serve.AppendRequest(nil, &req)
				if err != nil {
					broken.Add(1)
					return
				}
				wire = appendRawWire(wire, payload)
			}
			var inBuf []byte
			for {
				if _, err := conn.Write(wire); err != nil {
					return
				}
				for i := 0; i < 8; i++ {
					frame, err := serve.ReadFrame(br, inBuf)
					if err != nil {
						return // shutdown closed the conn mid-stream: fine
					}
					inBuf = frame[:0]
					if _, err := serve.ParseResponse(frame); err != nil {
						broken.Add(1) // a torn or corrupt frame is never fine
						return
					}
				}
				batches.Add(1)
			}
		}(c)
	}

	time.Sleep(100 * time.Millisecond)
	s.Close()
	wg.Wait()
	if broken.Load() != 0 {
		t.Fatalf("%d connections saw corrupt frames", broken.Load())
	}
	if batches.Load() == 0 {
		t.Fatal("no client completed a batch before shutdown")
	}
}
