package serve

import (
	"fmt"
	"io"
	"sort"
	"time"

	"rhnorec/internal/bench"
	"rhnorec/internal/obs"
	"rhnorec/internal/tm"
)

// Snapshot assembles the rhserve.v1 metrics dump from live worker
// snapshots: each worker copies its state out over its ctl channel between
// batches (or the stored exit snapshot after Close), so no goroutine ever
// reads another's counters in place.
func (s *Server) Snapshot() *bench.ServeDump {
	var (
		agg   tm.Stats
		rec   = obs.NewRecorder(obs.Config{})
		lat   = obs.NewLabeledHist(endpointLabels()...)
		eps   [numEndpoints]endpointCounters
		sscan snapScanCounters
		snaps = make([]*workerSnap, 0, len(s.workers))
	)
	for _, w := range s.workers {
		if snap := w.snapshot(); snap != nil {
			snaps = append(snaps, snap)
		}
	}
	for _, snap := range snaps {
		st := snap.stats
		agg.Add(&st)
		rec.Merge(snap.rec)
		lat.Merge(snap.lat)
		for e := range eps {
			eps[e].requests += snap.eps[e].requests
			eps[e].errors += snap.eps[e].errors
			eps[e].shed += snap.eps[e].shed
			eps[e].fused += snap.eps[e].fused
		}
		sscan.attempts += snap.snap.attempts
		sscan.hits += snap.snap.hits
		sscan.fallbacks += snap.snap.fallbacks
	}
	d := &bench.ServeDump{
		SchemaVersion: bench.ServeSchemaVersion,
		Algo:          s.sys.Name(),
		Workers:       len(s.workers),
		Keys:          s.cfg.Keys,
		UptimeSec:     time.Since(s.start).Seconds(),
		Endpoints:     []bench.ServeEndpoint{},
		Admission: bench.ServeAdmission{
			QueueShed:      s.admission.queueShed.Load(),
			SaturationShed: s.admission.saturationShed.Load(),
			DeadlineShed:   s.admission.deadlineShed.Load(),
		},
		TM: bench.ServeTM{
			Commits:         agg.Commits,
			FastPathCommits: agg.FastPathCommits,
			SlowPathCommits: agg.SlowPathCommits,
			SerialCommits:   agg.SerialCommits,
			Fallbacks:       agg.Fallbacks,
			HTMAborts:       agg.HTMAborts(),
			STMRestarts:     agg.STMRestarts,
		},
	}
	if total := d.TM.HTMAborts + d.TM.Commits; total > 0 {
		d.TM.AbortRate = float64(d.TM.HTMAborts) / float64(total)
	}
	for i := 0; i < pipelineBucketCount; i++ {
		if c := s.pipeline.buckets[i].Load(); c > 0 {
			d.Pipeline = append(d.Pipeline, bench.ServePipelineBucket{Depth: 1 << i, Drains: c})
		}
	}
	if sscan.attempts > 0 {
		d.SnapScan = &bench.ServeSnapScan{
			Attempts:  sscan.attempts,
			Hits:      sscan.hits,
			Fallbacks: sscan.fallbacks,
		}
	}
	if s.log != nil {
		c := s.log.CountersSnapshot()
		d.Persist = &bench.ServePersist{
			LogAppends:       c.Appends,
			LogRecords:       c.Records,
			FsyncGroups:      c.FsyncGroups,
			Fsyncs:           c.Fsyncs,
			Appended:         c.Appended,
			Durable:          c.Durable,
			RecoveryReplayed: c.Recovery.Commits,
			RecoveryDropped:  uint64(c.Recovery.Dropped),
			TornTails:        uint64(c.Recovery.TornTails),
		}
	}
	for e := Endpoint(0); e < numEndpoints; e++ {
		c := eps[e]
		if c.requests == 0 {
			continue
		}
		d.Endpoints = append(d.Endpoints, bench.ServeEndpoint{
			Endpoint: e.String(),
			Requests: c.requests,
			Errors:   c.errors,
			Shed:     c.shed,
			Fused:    c.fused,
			Latency:  lat.Hist(int(e)).Summary(),
		})
	}
	if snap := rec.Snapshot(); snap != nil &&
		(len(snap.Phases) > 0 || len(snap.Aborts) > 0 || len(snap.Policy) > 0 || len(snap.Filter) > 0) {
		d.Obs = snap
	}
	return d
}

// writeMetricsText renders the human-readable /metrics page (the JSON form
// is the same data via Snapshot + json.Marshal; see http.go).
func writeMetricsText(w io.Writer, d *bench.ServeDump) {
	fmt.Fprintf(w, "rhserve algo=%s workers=%d keys=%d uptime=%.1fs\n\n",
		d.Algo, d.Workers, d.Keys, d.UptimeSec)
	fmt.Fprintf(w, "%-8s %10s %8s %6s %8s %10s %10s %10s %10s\n",
		"endpoint", "requests", "errors", "shed", "fused", "p50", "p99", "p999", "max")
	for _, ep := range d.Endpoints {
		l := ep.Latency
		fmt.Fprintf(w, "%-8s %10d %8d %6d %8d %10s %10s %10s %10s\n",
			ep.Endpoint, ep.Requests, ep.Errors, ep.Shed, ep.Fused,
			fmtNS(l.P50NS), fmtNS(l.P99NS), fmtNS(l.P999NS), fmtNS(l.MaxNS))
	}
	fmt.Fprintf(w, "\nadmission: queue_shed=%d saturation_shed=%d deadline_shed=%d\n",
		d.Admission.QueueShed, d.Admission.SaturationShed, d.Admission.DeadlineShed)
	t := d.TM
	fmt.Fprintf(w, "tm: commits=%d fast=%d slow=%d serial=%d fallbacks=%d htm_aborts=%d stm_restarts=%d abort_rate=%.4f\n",
		t.Commits, t.FastPathCommits, t.SlowPathCommits, t.SerialCommits,
		t.Fallbacks, t.HTMAborts, t.STMRestarts, t.AbortRate)
	if len(d.Pipeline) > 0 {
		fmt.Fprintf(w, "pipeline:")
		for _, b := range d.Pipeline {
			fmt.Fprintf(w, " d%d=%d", b.Depth, b.Drains)
		}
		fmt.Fprintln(w)
	}
	if sc := d.SnapScan; sc != nil {
		fmt.Fprintf(w, "snapscan: attempts=%d hits=%d fallbacks=%d\n",
			sc.Attempts, sc.Hits, sc.Fallbacks)
	}
	if p := d.Persist; p != nil {
		fmt.Fprintf(w, "persist: log-append=%d log-record=%d fsync-group=%d fsync=%d appended=%d durable=%d\n",
			p.LogAppends, p.LogRecords, p.FsyncGroups, p.Fsyncs, p.Appended, p.Durable)
		fmt.Fprintf(w, "persist-recovery: recovery-replayed=%d recovery-dropped=%d torn-tail=%d\n",
			p.RecoveryReplayed, p.RecoveryDropped, p.TornTails)
	}
	if d.Obs == nil {
		return
	}
	if len(d.Obs.Aborts) > 0 {
		causes := append([]obs.AbortSnapshot(nil), d.Obs.Aborts...)
		sort.Slice(causes, func(i, j int) bool { return causes[i].Count > causes[j].Count })
		fmt.Fprintf(w, "aborts:")
		for _, c := range causes {
			fmt.Fprintf(w, " %s=%d", c.Cause, c.Count)
		}
		fmt.Fprintln(w)
	}
}

// fmtNS renders a nanosecond duration compactly (µs/ms precision scales
// with magnitude).
func fmtNS(ns uint64) string {
	d := time.Duration(ns)
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", ns)
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	default:
		return fmt.Sprintf("%.3fs", float64(ns)/1e9)
	}
}
