package serve

import (
	"sync/atomic"

	"rhnorec/internal/obs"
	"rhnorec/internal/tm"
)

// admissionCounters ledgers the three shed causes (rhserve.v1 "admission").
type admissionCounters struct {
	queueShed      atomic.Uint64 // sticky worker's queue was full at enqueue
	saturationShed atomic.Uint64 // engine contention window saturated + backlog
	deadlineShed   atomic.Uint64 // deadline expired while queued
}

// endpointCounters is one worker's per-endpoint request ledger. Worker-
// goroutine-owned; published only inside workerSnap copies.
type endpointCounters struct {
	requests uint64
	errors   uint64
	shed     uint64 // deadline sheds (enqueue-time sheds never reach a worker)
	fused    uint64 // requests that shared a fused transaction with others
}

// workerSnap is one worker's state copied out over the ctl channel (or
// stored at exit): a value copy of the tm counters, clones of the
// observability state, and the endpoint ledger. Everything in it is owned
// by the receiver.
type workerSnap struct {
	stats tm.Stats
	rec   *obs.Recorder
	lat   *obs.LabeledHist
	eps   [numEndpoints]endpointCounters
	ring  []obs.Event // drained only in the final (exit-time) snapshot
}

// worker is one sticky service thread: a queue, a TM thread, and the
// thread-owned metrics. All fields below q/ctl/done are owned by the worker
// goroutine; other goroutines reach them only via ctl-channel snapshots, so
// the hot path takes no locks and the single-goroutine Thread/Stats/Recorder
// contract holds.
type worker struct {
	s    *Server
	id   int
	q    chan *request
	ctl  chan chan *workerSnap
	done chan struct{}

	th    tm.Thread
	rec   *obs.Recorder
	lat   *obs.LabeledHist
	eps   [numEndpoints]endpointCounters
	batch []*request
}

func newWorker(s *Server, id int) *worker {
	return &worker{
		s:     s,
		id:    id,
		q:     make(chan *request, s.cfg.QueueDepth),
		ctl:   make(chan chan *workerSnap),
		done:  make(chan struct{}),
		batch: make([]*request, 0, s.cfg.BatchMax),
	}
}

// backlog reports the worker's current queue length (admission signal).
func (w *worker) backlog() int { return len(w.q) }

// snapshot requests a live state copy from the worker goroutine. It returns
// the stored final snapshot if the worker has exited.
func (w *worker) snapshot() *workerSnap {
	reply := make(chan *workerSnap, 1)
	select {
	case w.ctl <- reply:
		select {
		case snap := <-reply:
			return snap
		case <-w.done:
		}
	case <-w.done:
	}
	w.s.mu.Lock()
	defer w.s.mu.Unlock()
	return w.s.finalSnaps[w.id]
}

// makeSnap copies the worker-owned state (worker goroutine only).
func (w *worker) makeSnap(final bool) *workerSnap {
	snap := &workerSnap{
		stats: *w.th.Stats(),
		rec:   w.rec.Clone(),
		lat:   w.lat.Clone(),
		eps:   w.eps,
	}
	snap.stats.Obs = nil // cloned above; the live pointer stays worker-owned
	if final {
		if ring := w.rec.Ring(); ring != nil {
			snap.ring = ring.Events()
		}
	}
	return snap
}

// loop is the worker goroutine: dequeue, fuse, execute, reply. The TM
// thread is created here so its whole lifetime stays on one goroutine.
func (w *worker) loop() {
	w.th = w.s.sys.NewThread()
	w.rec = obs.NewRecorder(obs.Config{RingSize: w.s.cfg.RingSize})
	w.th.Stats().Obs = w.rec
	w.lat = obs.NewLabeledHist(endpointLabels()...)
	defer func() {
		snap := w.makeSnap(true)
		w.th.Close()
		w.s.mu.Lock()
		w.s.finalSnaps[w.id] = snap
		w.s.mu.Unlock()
		close(w.done)
	}()
	for {
		select {
		case <-w.s.stop:
			w.drainClosed()
			return
		case reply := <-w.ctl:
			reply <- w.makeSnap(false)
		case r := <-w.q:
			w.serve(r)
		}
	}
}

// drainClosed answers everything still queued with ErrClosed (shutdown).
func (w *worker) drainClosed() {
	for {
		select {
		case r := <-w.q:
			r.err = ErrClosed
			close(r.done)
		default:
			return
		}
	}
}

// serve executes r plus everything else already queued, fused into one
// transaction (up to BatchMax requests). A fused batch is trivially atomic —
// it IS one transaction — and a batch of pure reads keeps the read-only
// fast path. Deadline-expired requests are shed at dequeue: by the time a
// backlogged worker reaches them the client has typically given up, and
// executing them anyway is work the admission controller exists to avoid.
func (w *worker) serve(first *request) {
	testBatchDelay()
	now := obs.Now()
	batch := w.admit(w.batch[:0], first, now)
	for len(batch) < w.s.cfg.BatchMax {
		select {
		case r := <-w.q:
			batch = w.admit(batch, r, now)
		default:
			goto drained
		}
	}
drained:
	if len(batch) == 0 {
		return
	}
	readOnly := true
	for _, r := range batch {
		if !r.readOnly {
			readOnly = false
			break
		}
	}
	run := w.th.Run
	if readOnly {
		run = w.th.RunReadOnly
	}
	err := run(func(tx tm.Tx) error {
		// Re-executed from the top on every restart; applyOps overwrites
		// results idempotently.
		for _, r := range batch {
			w.s.applyOps(tx, r.ops, r.res)
		}
		return nil
	})
	fused := len(batch) > 1
	if fused {
		if ring := w.rec.Ring(); ring != nil {
			ring.Record(obs.Event{T: w.s.m.Clock(), Kind: obs.EventFuse, Retry: uint16(min(len(batch), 1<<16-1))})
		}
	}
	done := obs.Now()
	for _, r := range batch {
		w.eps[r.ep].requests++
		if fused {
			w.eps[r.ep].fused++
		}
		if err != nil {
			w.eps[r.ep].errors++
			r.err = err
		}
		w.lat.Record(int(r.ep), uint64(done-r.enq))
		close(r.done)
	}
	w.batch = batch[:0]
}

// admit appends r to the batch, or sheds it if its deadline expired while
// queued.
func (w *worker) admit(batch []*request, r *request, now int64) []*request {
	if now > r.deadline {
		w.s.admission.deadlineShed.Add(1)
		w.eps[r.ep].requests++
		w.eps[r.ep].shed++
		r.shed = true
		if ring := w.rec.Ring(); ring != nil {
			ring.Record(obs.Event{T: w.s.m.Clock(), Kind: obs.EventShed})
		}
		close(r.done)
		return batch
	}
	return append(batch, r)
}

// endpointLabels returns the rhserve.v1 endpoint vocabulary for the
// latency LabeledHist.
func endpointLabels() []string {
	labels := make([]string, numEndpoints)
	for e := Endpoint(0); e < numEndpoints; e++ {
		labels[e] = e.String()
	}
	return labels
}

// testBatchDelay is a test seam: the shed tests stall the worker between
// dequeue and batching so queued requests verifiably expire. No-op in
// production.
var testBatchDelay = func() {}
