package serve

import (
	"sync/atomic"

	"rhnorec/internal/mem"
	"rhnorec/internal/obs"
	"rhnorec/internal/tm"
)

// admissionCounters ledgers the three shed causes (rhserve.v1 "admission").
type admissionCounters struct {
	queueShed      atomic.Uint64 // sticky worker's queue was full at enqueue
	saturationShed atomic.Uint64 // engine contention window saturated + backlog
	deadlineShed   atomic.Uint64 // deadline expired while queued
}

// endpointCounters is one worker's per-endpoint request ledger. Worker-
// goroutine-owned; published only inside workerSnap copies.
type endpointCounters struct {
	requests uint64
	errors   uint64
	shed     uint64 // deadline sheds (enqueue-time sheds never reach a worker)
	fused    uint64 // requests that shared a fused transaction with others
}

// snapScanCounters ledgers the snapshot-scan fast path (rhserve.v1
// "snapscan"): attempts = eligible requests, hits = answered by a clean
// seqlock snapshot, fallbacks = dirtied every pass and re-ran
// transactionally. hits + fallbacks == attempts always.
type snapScanCounters struct {
	attempts  uint64
	hits      uint64
	fallbacks uint64
}

// workerSnap is one worker's state copied out over the ctl channel (or
// stored at exit): a value copy of the tm counters, clones of the
// observability state, and the endpoint ledger. Everything in it is owned
// by the receiver.
type workerSnap struct {
	stats tm.Stats
	rec   *obs.Recorder
	lat   *obs.LabeledHist
	eps   [numEndpoints]endpointCounters
	snap  snapScanCounters
	ring  []obs.Event // drained only in the final (exit-time) snapshot
}

// worker is one sticky service thread: a queue, a TM thread, and the
// thread-owned metrics. All fields below q/ctl/done are owned by the worker
// goroutine; other goroutines reach them only via ctl-channel snapshots, so
// the hot path takes no locks and the single-goroutine Thread/Stats/Recorder
// contract holds.
type worker struct {
	s    *Server
	id   int
	q    chan *request
	ctl  chan chan *workerSnap
	done chan struct{}

	th tm.Thread
	// run/runRO are th.Run and th.RunReadOnly bound once at loop start: a
	// method value is a fresh closure per evaluation, so binding per batch
	// would heap-allocate on the hot path. body is the batch-executing
	// closure, likewise created once (it reads w.batch at call time).
	run   func(func(tm.Tx) error) error
	runRO func(func(tm.Tx) error) error
	body  func(tm.Tx) error
	rec   *obs.Recorder
	lat   *obs.LabeledHist
	eps   [numEndpoints]endpointCounters
	snap  snapScanCounters
	batch []*request
}

func newWorker(s *Server, id int) *worker {
	return &worker{
		s:     s,
		id:    id,
		q:     make(chan *request, s.cfg.QueueDepth),
		ctl:   make(chan chan *workerSnap),
		done:  make(chan struct{}),
		batch: make([]*request, 0, s.cfg.BatchMax),
	}
}

// backlog reports the worker's current queue length (admission signal).
func (w *worker) backlog() int { return len(w.q) }

// snapshot requests a live state copy from the worker goroutine. It returns
// the stored final snapshot if the worker has exited.
func (w *worker) snapshot() *workerSnap {
	reply := make(chan *workerSnap, 1)
	select {
	case w.ctl <- reply:
		select {
		case snap := <-reply:
			return snap
		case <-w.done:
		}
	case <-w.done:
	}
	w.s.mu.Lock()
	defer w.s.mu.Unlock()
	return w.s.finalSnaps[w.id]
}

// makeSnap copies the worker-owned state (worker goroutine only).
func (w *worker) makeSnap(final bool) *workerSnap {
	snap := &workerSnap{
		stats: *w.th.Stats(),
		rec:   w.rec.Clone(),
		lat:   w.lat.Clone(),
		eps:   w.eps,
		snap:  w.snap,
	}
	snap.stats.Obs = nil // cloned above; the live pointer stays worker-owned
	if final {
		if ring := w.rec.Ring(); ring != nil {
			snap.ring = ring.Events()
		}
	}
	return snap
}

// loop is the worker goroutine: dequeue, fuse, execute, reply. The TM
// thread is created here so its whole lifetime stays on one goroutine.
func (w *worker) loop() {
	w.th = w.s.sys.NewThread()
	w.run, w.runRO = w.th.Run, w.th.RunReadOnly
	w.body = func(tx tm.Tx) error {
		// Re-executed from the top on every restart; applyOps overwrites
		// results idempotently.
		for _, r := range w.batch {
			w.s.applyOps(tx, r.ops, r.res)
		}
		return nil
	}
	w.rec = obs.NewRecorder(obs.Config{RingSize: w.s.cfg.RingSize})
	w.th.Stats().Obs = w.rec
	w.lat = obs.NewLabeledHist(endpointLabels()...)
	defer func() {
		snap := w.makeSnap(true)
		w.th.Close()
		w.s.mu.Lock()
		w.s.finalSnaps[w.id] = snap
		w.s.mu.Unlock()
		close(w.done)
	}()
	for {
		select {
		case <-w.s.stop:
			w.drainClosed()
			return
		case reply := <-w.ctl:
			reply <- w.makeSnap(false)
		case r := <-w.q:
			w.serve(r)
		}
	}
}

// drainClosed answers everything still queued with ErrClosed (shutdown),
// walking each queue slot's whole submit chain.
func (w *worker) drainClosed() {
	for {
		select {
		case r := <-w.q:
			for r != nil {
				next := r.next
				r.next = nil
				r.err = ErrClosed
				r.finish()
				r = next
			}
		default:
			return
		}
	}
}

// serve executes the submit chain headed at first plus everything else
// already queued, in batches of up to BatchMax requests fused into one
// transaction each. A fused batch is trivially atomic — it IS one
// transaction — and a batch of pure reads keeps the read-only fast path. A
// chain longer than BatchMax carries its remainder into the next batch
// without going back through the queue.
func (w *worker) serve(first *request) {
	for first != nil {
		first = w.serveBatch(first)
	}
}

// serveBatch fills one batch from the chain at head (then from the queue),
// executes it, and returns the unconsumed chain remainder. Deadline-expired
// requests are shed at dequeue: by the time a backlogged worker reaches
// them the client has typically given up, and executing them anyway is work
// the admission controller exists to avoid.
func (w *worker) serveBatch(head *request) *request {
	testBatchDelay()
	now := obs.Now()
	max := w.s.cfg.BatchMax
	batch := w.batch[:0]
	for {
		for head != nil && len(batch) < max {
			r := head
			head, r.next = r.next, nil
			batch = w.admit(batch, r, now)
		}
		if head != nil || len(batch) >= max {
			break
		}
		select {
		case r := <-w.q:
			head = r
		default:
			head = nil
			goto drained
		}
	}
drained:
	batch = w.snapScans(batch)
	if len(batch) > 0 {
		w.batch = batch
		w.execBatch(batch)
	}
	w.batch = batch[:0]
	return head
}

// execBatch runs one non-empty batch as a single transaction and answers
// every request in it.
func (w *worker) execBatch(batch []*request) {
	readOnly := true
	for _, r := range batch {
		if !r.readOnly {
			readOnly = false
			break
		}
	}
	run := w.run
	if readOnly {
		run = w.runRO
	}
	err := run(w.body)
	if err == nil && !readOnly && w.s.log != nil && w.wantDurable(batch) {
		// Durable ack: hold the replies until the batch's redo records are
		// fsynced. Appended() is read after the commit returned, so it covers
		// this batch's sequence; concurrent workers waiting here ride one
		// group-fsync pass together.
		err = w.s.log.WaitDurable(w.s.log.Appended())
	}
	fused := len(batch) > 1
	if fused {
		if ring := w.rec.Ring(); ring != nil {
			ring.Record(obs.Event{T: w.s.m.Clock(), Kind: obs.EventFuse, Retry: uint16(min(len(batch), 1<<16-1))})
		}
	}
	done := obs.Now()
	for _, r := range batch {
		w.eps[r.ep].requests++
		if fused {
			w.eps[r.ep].fused++
		}
		if err != nil {
			w.eps[r.ep].errors++
			r.err = err
		}
		w.lat.Record(int(r.ep), uint64(done-r.enq))
		r.finish()
	}
}

// wantDurable reports whether any request in the batch asked for a durable
// ack (or the server forces them). A fused batch is one transaction — one
// redo record — so a single durable request upgrades the whole batch.
func (w *worker) wantDurable(batch []*request) bool {
	if w.s.cfg.DurableAcks {
		return true
	}
	for _, r := range batch {
		if r.durable {
			return true
		}
	}
	return false
}

// snapScans peels snapshot-eligible requests — read-only, exactly one scan
// op — off the batch and answers them from a bounded seqlock snapshot
// (mem.SnapshotStrideTry): O(touched stripes) validation instead of
// O(words) instrumented TxnLoads, and no read-set bookkeeping at all. A
// clean pass certifies the copied values coexisted in memory (DESIGN.md
// §14); a request whose passes were all dirtied falls back into the
// transactional batch. Requests with more than one op stay transactional
// even when read-only: their ops must observe ONE consistent cut, which is
// the transaction's job.
func (w *worker) snapScans(batch []*request) []*request {
	if w.s.cfg.SnapScanAttempts < 0 {
		return batch
	}
	kept := batch[:0]
	for _, r := range batch {
		if !r.readOnly || len(r.ops) != 1 || r.ops[0].Kind != OpScan {
			kept = append(kept, r)
			continue
		}
		op := &r.ops[0]
		w.snap.attempts++
		vals := r.res[0].Vals
		if cap(vals) < int(op.Count) {
			vals = make([]uint64, op.Count)
		}
		vals = vals[:op.Count]
		if !w.s.m.SnapshotStrideTry(w.s.addrOf(op.Key), mem.LineWords, vals, w.s.cfg.SnapScanAttempts) {
			w.snap.fallbacks++
			r.res[0].Vals = vals // keep the grown buffer for the txn path
			kept = append(kept, r)
			continue
		}
		w.snap.hits++
		r.res[0] = OpResult{Vals: vals}
		w.eps[EpScan].requests++
		w.lat.Record(int(EpScan), uint64(obs.Now()-r.enq))
		r.finish()
	}
	return kept
}

// admit appends r to the batch, or sheds it if its deadline expired while
// queued.
func (w *worker) admit(batch []*request, r *request, now int64) []*request {
	if now > r.deadline {
		w.s.admission.deadlineShed.Add(1)
		w.eps[r.ep].requests++
		w.eps[r.ep].shed++
		r.shed = true
		if ring := w.rec.Ring(); ring != nil {
			ring.Record(obs.Event{T: w.s.m.Clock(), Kind: obs.EventShed})
		}
		r.finish()
		return batch
	}
	return append(batch, r)
}

// endpointLabels returns the rhserve.v1 endpoint vocabulary for the
// latency LabeledHist.
func endpointLabels() []string {
	labels := make([]string, numEndpoints)
	for e := Endpoint(0); e < numEndpoints; e++ {
		labels[e] = e.String()
	}
	return labels
}

// testBatchDelay is a test seam: the shed tests stall the worker between
// dequeue and batching so queued requests verifiably expire. No-op in
// production.
var testBatchDelay = func() {}
