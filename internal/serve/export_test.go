package serve

// AppendTxnResults exposes the hand-rolled HTTP JSON encoder so the
// equivalence test can pin it against encoding/json.
func AppendTxnResults(buf []byte, res []OpResult) []byte { return appendTxnResults(buf, res) }

// SetTestBatchDelay installs a hook run by a worker between dequeuing a
// request and batching it, so tests can hold a worker still while they
// overfill its queue. Restore the returned previous hook when done.
func SetTestBatchDelay(fn func()) (prev func()) {
	prev = testBatchDelay
	if fn == nil {
		fn = func() {}
	}
	testBatchDelay = fn
	return prev
}
