// Package serve is the network-facing transactional KV service layer: the
// first layer of this repository that serves traffic instead of running
// benchmarks (ROADMAP PR 7). It maps a
// fixed key space onto the striped word arena (key k lives at one cache
// line, so distinct keys conflict only through real stripe sharing), runs a
// sticky pool of worker threads sized to htm.Config.Cores, fuses queued
// requests into batched transactions, and admission-controls the request
// stream off the contention-management engine's live slow-path occupancy —
// the service-level analogue of the adaptive policy's contention window
// (DESIGN.md §13, docs/SERVE.md).
//
// Request flow: a transport handler (HTTP JSON or the length-prefixed
// binary protocol, both on one listener — see http.go and binary.go)
// normalizes a request into ops, routes it to a worker by client-identity
// hash (sticky, so one client's hot keys stay on one thread's stripe and
// cache footprint), and waits. The worker dequeues, drains up to
// Config.BatchMax-1 more queued requests, and executes the whole batch in
// ONE transaction — single-key traffic coalesces into fused transactions
// the way the flat-combining ring fuses slow-path commits, and a fused
// batch is trivially atomic (it is one transaction). Read-only batches run
// via RunReadOnly, keeping the fast paths' clock-free commit.
//
// Admission control (paper-level motivation: Brown & Ravi's
// cost-of-concurrency analysis says the fast/slow path mix, not raw
// throughput, is what saturates a HyTM): a request is shed with a
// retry-later verdict when (1) its sticky worker's queue is full, (2) the
// engine's contention window is saturated — at least ContentionWindow
// threads on the slow path — while the worker is backlogged, or (3) its
// deadline expired while queued. Sheds are ledgered per cause in the
// rhserve.v1 dump (internal/bench) and surface as HTTP 429 + Retry-After.
package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rhnorec/internal/bench"
	"rhnorec/internal/htm"
	"rhnorec/internal/mem"
	"rhnorec/internal/obs"
	"rhnorec/internal/persist"
	"rhnorec/internal/tm"
)

// Endpoint identifies one service endpoint; the vocabulary matches
// bench.ServeEndpointNames (the rhserve.v1 schema).
type Endpoint uint8

const (
	// EpGet is multi-key transactional GET.
	EpGet Endpoint = iota
	// EpPut is single-key transactional PUT.
	EpPut
	// EpCas is compare-and-swap.
	EpCas
	// EpScan is a contiguous-range read.
	EpScan
	// EpTxn is the multi-op transactional batch endpoint.
	EpTxn

	numEndpoints
)

// String returns the endpoint's schema name.
func (e Endpoint) String() string {
	if int(e) < len(bench.ServeEndpointNames) {
		return bench.ServeEndpointNames[e]
	}
	return "invalid"
}

// OpKind is one transactional sub-operation's kind.
type OpKind uint8

const (
	// OpGet reads one key.
	OpGet OpKind = iota + 1
	// OpPut writes one key.
	OpPut
	// OpCas compares-and-swaps one key.
	OpCas
	// OpScan reads Count contiguous keys starting at Key.
	OpScan
)

// Op is one normalized sub-operation of a request.
type Op struct {
	Kind OpKind
	// Key is the target key (scan: the range start).
	Key uint64
	// Val is the value to write (put) or swap in (cas).
	Val uint64
	// Old is the expected value (cas only).
	Old uint64
	// Count is the range length (scan only).
	Count uint32
}

// OpResult is one sub-operation's result.
type OpResult struct {
	// Val is the read value (get) or the value observed by a cas.
	Val uint64
	// Vals holds a scan's values.
	Vals []uint64
	// Swapped reports whether a cas published its new value.
	Swapped bool
}

// Config parameterizes a Server. Zero fields take defaults.
type Config struct {
	// Algo names the backing TM system (bench.AlgoByName vocabulary;
	// default "rh-norec").
	Algo string
	// Keys is the number of KV slots (default 1 << 16). Key k occupies its
	// own cache line at arena offset k*mem.LineWords.
	Keys int
	// Stripes is the memory stripe count (0 = mem.DefaultStripes).
	Stripes int
	// HTM configures the simulated hardware (zero fields take Haswell-like
	// defaults).
	HTM htm.Config
	// Policy tunes retries and contention management; zero fields take the
	// paper's defaults. Its ContentionWindow doubles as the saturation-shed
	// threshold (negative disables that shed).
	Policy tm.RetryPolicy
	// Workers sizes the sticky worker pool (default: the HTM core count —
	// one transaction-running thread per simulated core).
	Workers int
	// QueueDepth bounds each worker's request queue (default 256); a full
	// queue sheds at enqueue.
	QueueDepth int
	// BatchMax bounds how many queued requests one transaction fuses
	// (default 16, minimum 1).
	BatchMax int
	// RequestTimeout sheds requests whose deadline expires while queued
	// (default 1s).
	RequestTimeout time.Duration
	// RetryAfter is the client backpressure hint returned with a shed
	// (default 1s; HTTP rounds up to whole seconds for the Retry-After
	// header, the binary protocol carries milliseconds).
	RetryAfter time.Duration
	// RingSize, when > 0, attaches per-worker event rings (fuse/shed events
	// next to the engine's begin/abort/commit stream).
	RingSize int
	// SigBits, when > 0, publishes write signatures of that bloom width on
	// the memory and arms signature-filtered validation.
	SigBits int
	// Pprof mounts the net/http/pprof handlers under /debug/pprof/ on the
	// service mux (off by default: profiling endpoints are opt-in).
	Pprof bool
	// SnapScanAttempts bounds the seqlock copy passes the snapshot-scan fast
	// path tries before falling back to the transactional read (default 3;
	// negative disables the fast path).
	SnapScanAttempts int
	// DataDir, when non-empty, arms the durable persistence plane
	// (internal/persist): boot-time crash recovery replays the directory's
	// redo logs into the key arena, and every committing write transaction
	// appends its write set. Only the rh-norec system is persistence-wired
	// (its eager full-software stores are instrumented); other algos reject
	// a DataDir. Policy.Persist (or RHNOREC_PERSIST) picks group fsync vs
	// fsync-per-commit.
	DataDir string
	// DurableAcks, when true, makes EVERY write request wait for its redo
	// record to be fsynced before the reply (as if each connection had sent
	// OpcodeDurable). No effect without DataDir.
	DurableAcks bool
}

func (c Config) withDefaults() Config {
	if c.Algo == "" {
		c.Algo = "rh-norec"
	}
	if c.Keys <= 0 {
		c.Keys = 1 << 16
	}
	if c.Workers <= 0 {
		c.Workers = c.HTM.Cores
		if c.Workers <= 0 {
			c.Workers = htm.DefaultConfig().Cores
		}
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 16
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.SnapScanAttempts == 0 {
		c.SnapScanAttempts = 3
	}
	return c
}

// maxScanCount bounds one scan's range length.
const maxScanCount = 4096

// maxTxnOps bounds one TXN request's op count.
const maxTxnOps = 128

// engineHolder is the optional accessor hybrid systems implement; the
// admission controller reads the engine's live slow-path occupancy.
type engineHolder interface{ Engine() *tm.Engine }

// RequestError is a client-side error (bad key, malformed op): HTTP 400.
type RequestError struct{ msg string }

func (e *RequestError) Error() string { return e.msg }

// reqErrf builds a RequestError.
func reqErrf(format string, args ...any) error {
	return &RequestError{msg: fmt.Sprintf(format, args...)}
}

// ErrShed is the admission controller's retry-later verdict: HTTP 429 with
// a Retry-After hint.
var ErrShed = fmt.Errorf("serve: overloaded, retry later")

// ErrClosed reports a request caught in server shutdown.
var ErrClosed = fmt.Errorf("serve: server closed")

// request is one in-flight request envelope. Envelopes are recyclable: the
// binary session embeds one per pipeline slot and reuses it across frames,
// so completion is a buffered-1 send on done (a close would be one-shot) and
// every field is rewritten before each enqueue.
type request struct {
	ep       Endpoint
	ops      []Op
	readOnly bool
	// durable asks for a durable ack: the reply waits until the request's
	// redo record is fsynced (binary protocol OpcodeDurable, or
	// Config.DurableAcks). Meaningless on read-only requests.
	durable  bool
	res      []OpResult
	err      error
	shed     bool
	enq      int64 // obs.Now at admission
	deadline int64 // obs.Now after which a queued request is shed
	done     chan struct{}
	// next links a pipelined submit group: a connection that drained several
	// frames enqueues the whole chain as ONE queue slot, and the worker
	// unlinks it back into its batch (worker.serveBatch).
	next *request
}

// finish answers the request (worker side). The buffered send never blocks:
// each envelope has exactly one waiter per enqueue.
func (r *request) finish() { r.done <- struct{}{} }

// pipelineBucketCount is the number of power-of-two pipeline-depth buckets
// (1, 2, 4, ..., 64); the last bucket absorbs deeper drains.
const pipelineBucketCount = 7

// pipelineCounters ledgers binary-session drain depths: one count per
// drain, bucketed by the smallest power of two >= the number of frames the
// drain carried. Incremented by connection goroutines (atomics — sessions
// are not worker-owned).
type pipelineCounters struct {
	buckets [pipelineBucketCount]atomic.Uint64
}

func (p *pipelineCounters) record(depth int) {
	i := 0
	for d := 1; d < depth && i < pipelineBucketCount-1; d <<= 1 {
		i++
	}
	p.buckets[i].Add(1)
}

// Server is one KV service instance: the memory, the TM system, and the
// sticky worker pool. Construct with New, expose transports via Handler
// (HTTP only, e.g. under httptest) or Start (the demuxed HTTP+binary
// listener), and always Close.
type Server struct {
	cfg    Config
	m      *mem.Memory
	sys    tm.System
	dev    *htm.Device
	engine *tm.Engine
	base   mem.Addr
	start  time.Time

	workers []*worker
	stop    chan struct{}
	once    sync.Once

	// log is the durable redo log (nil without Config.DataDir); recovery is
	// what boot-time replay found in DataDir before the workers started.
	log      *persist.Log
	recovery persist.RecoveryStats

	admission admissionCounters
	pipeline  pipelineCounters

	mu         sync.Mutex
	finalSnaps []*workerSnap
	ln         *listener
}

// New builds a Server: allocates the arena, constructs the TM system, and
// starts the worker pool. The caller must Close it.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	algo, ok := bench.AlgoByName(cfg.Algo)
	if !ok {
		return nil, fmt.Errorf("serve: unknown algo %q", cfg.Algo)
	}
	// Arena: one line per key, doubled so the allocator's size-class
	// rounding (tcmalloc midpoint classes can round a small request up by
	// 50%) can never exhaust it, plus fixed slack for the reserved nil line
	// and the allocator's refill batching (a small-class refill carves up
	// to 64 blocks at once — the TM system's global words must not starve
	// the key arena).
	words := 2*(cfg.Keys+1)*mem.LineWords + 8192
	stripes := cfg.Stripes
	if stripes <= 0 {
		stripes = mem.DefaultStripes
	}
	m := mem.NewStriped(words, stripes)
	if cfg.SigBits > 0 {
		m.SetSignatureBits(cfg.SigBits)
		cfg.HTM.SignatureFiltering = true
	}
	dev := htm.NewDevice(m, cfg.HTM)
	dev.SetActiveThreads(cfg.Workers)
	sys := algo.New(m, dev, cfg.Policy)

	s := &Server{
		cfg:        cfg,
		m:          m,
		sys:        sys,
		dev:        dev,
		base:       m.NewThreadCache().Alloc(cfg.Keys * mem.LineWords),
		start:      time.Now(),
		stop:       make(chan struct{}),
		finalSnaps: make([]*workerSnap, cfg.Workers),
	}
	if cfg.DataDir != "" {
		// Persistence rides the write-commit paths; only rh-norec has its
		// eager full-software stores instrumented (internal/core), so other
		// algos would silently lose those writes from the log.
		if cfg.Algo != "rh-norec" {
			return nil, fmt.Errorf("serve: -data persistence requires algo rh-norec, not %q", cfg.Algo)
		}
		// Recovery replays into the arena here, before any worker exists:
		// the plain stores need no synchronization and no commit can race
		// the replay.
		log, stats, err := persist.Open(persist.Options{
			Dir:             cfg.DataDir,
			Lo:              s.base,
			Hi:              s.base + mem.Addr(cfg.Keys*mem.LineWords),
			SyncEveryAppend: cfg.Policy.WithDefaults().Persist == tm.PersistSync,
		}, m.StorePlain, m.LoadPlain)
		if err != nil {
			return nil, fmt.Errorf("serve: persistence: %w", err)
		}
		s.log, s.recovery = log, stats
		m.SetPersister(log)
	}
	if eh, ok := sys.(engineHolder); ok {
		s.engine = eh.Engine()
	}
	s.workers = make([]*worker, cfg.Workers)
	for i := range s.workers {
		s.workers[i] = newWorker(s, i)
	}
	for _, w := range s.workers {
		go w.loop()
	}
	return s, nil
}

// Algo reports the backing TM system's name.
func (s *Server) Algo() string { return s.sys.Name() }

// Keys reports the key-space size.
func (s *Server) Keys() int { return s.cfg.Keys }

// Workers reports the sticky worker pool size.
func (s *Server) Workers() int { return len(s.workers) }

// Recovery reports what boot-time crash recovery replayed from
// Config.DataDir (zero stats, false when persistence is off).
func (s *Server) Recovery() (persist.RecoveryStats, bool) {
	return s.recovery, s.log != nil
}

// Close stops the workers and the listener (idempotent). In-flight and
// queued requests are answered with ErrClosed. With persistence armed, Close
// drains the workers FIRST and only then fsyncs and closes the redo log, so
// every commit a worker acked before shutdown is durable on return — a
// Close-then-reopen loses nothing.
func (s *Server) Close() {
	s.once.Do(func() { close(s.stop) })
	s.mu.Lock()
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.close()
	}
	for _, w := range s.workers {
		<-w.done
	}
	if s.log != nil {
		s.log.Close() // final group fsync + file close
	}
}

// Events returns each worker's drained event ring, indexed by worker ID —
// the last Config.RingSize events per worker, including the service-layer
// fuse and shed kinds (docs/METRICS.md). Rings are drained, not merged, so
// they surface only here, after Close; before Close (or with RingSize 0)
// every slice is nil.
func (s *Server) Events() [][]obs.Event {
	out := make([][]obs.Event, len(s.workers))
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, snap := range s.finalSnaps {
		if snap != nil {
			out[i] = snap.ring
		}
	}
	return out
}

// addrOf maps a key onto its arena slot.
func (s *Server) addrOf(key uint64) mem.Addr {
	return s.base + mem.Addr(key*mem.LineWords)
}

// sum64a is an inline FNV-1a over s: the same hash hash/fnv computes, minus
// the heap-allocated hasher object and the []byte(client) copy a
// fnv.New64a()+Write pair costs on every request.
func sum64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// workerFor routes a client identity to its sticky worker (FNV-1a hash).
// Binary sessions call this once per identity (at connect and at Hello) and
// cache the worker; the HTTP path calls it per request but allocates
// nothing either way.
func (s *Server) workerFor(client string) *worker {
	return s.workers[sum64a(client)%uint64(len(s.workers))]
}

// checkOps validates a request's ops against the key space and clamps.
func (s *Server) checkOps(ops []Op) error {
	if len(ops) == 0 {
		return reqErrf("empty op list")
	}
	if len(ops) > maxTxnOps {
		return reqErrf("%d ops exceed the per-request limit %d", len(ops), maxTxnOps)
	}
	n := uint64(s.cfg.Keys)
	for i := range ops {
		op := &ops[i]
		switch op.Kind {
		case OpGet, OpPut, OpCas:
			if op.Key >= n {
				return reqErrf("key %d out of range [0,%d)", op.Key, n)
			}
		case OpScan:
			if op.Count == 0 {
				return reqErrf("scan count must be positive")
			}
			if op.Count > maxScanCount {
				return reqErrf("scan count %d exceeds limit %d", op.Count, maxScanCount)
			}
			if op.Key >= n || uint64(op.Count) > n-op.Key {
				return reqErrf("scan [%d,%d) out of range [0,%d)", op.Key, op.Key+uint64(op.Count), n)
			}
		default:
			return reqErrf("invalid op kind %d", op.Kind)
		}
	}
	return nil
}

// readOnlyOps reports whether every op is a read.
func readOnlyOps(ops []Op) bool {
	for i := range ops {
		if ops[i].Kind == OpPut || ops[i].Kind == OpCas {
			return false
		}
	}
	return true
}

// saturated reports whether the saturation shed trips for w: the engine's
// contention window is the adaptive policy's fast-path admission signal; at
// the service boundary the same signal sheds new work while this worker is
// already backlogged, so the convoy drains instead of growing.
func (s *Server) saturated(w *worker) bool {
	if s.engine == nil {
		return false
	}
	win := s.engine.Policy().ContentionWindow
	return win > 0 && s.engine.SlowPathLoad() >= win && w.backlog() >= s.cfg.QueueDepth/2
}

// enqueue offers a request chain (head, counting n requests) to w's queue
// without blocking; the whole chain occupies ONE queue slot, which is what
// lets a pipelined drain coalesce. A full queue sheds the chain.
func (s *Server) enqueue(w *worker, head *request, n int) bool {
	select {
	case w.q <- head:
		return true
	default:
		s.admission.queueShed.Add(uint64(n))
		return false
	}
}

// await blocks until r completes. A false return means the worker exited
// (shutdown) without ever dequeuing r — and never will, so the envelope is
// safe to recycle: workers answer everything they dequeued before closing
// done.
func (s *Server) await(w *worker, r *request) bool {
	select {
	case <-r.done:
		return true
	case <-w.done:
		select {
		case <-r.done:
			return true
		default:
			return false
		}
	}
}

// Do validates, admits, and executes one request on the client's sticky
// worker, blocking until the reply. It returns the per-op results, ErrShed
// (retry later), a *RequestError (client error), or ErrClosed. Do allocates
// its envelope (the results escape to the caller); the binary session keeps
// per-connection recycled envelopes and speaks submit/await directly.
func (s *Server) Do(client string, ep Endpoint, ops []Op) ([]OpResult, error) {
	if err := s.checkOps(ops); err != nil {
		return nil, err
	}
	select {
	case <-s.stop:
		return nil, ErrClosed
	default:
	}
	w := s.workerFor(client)
	if s.saturated(w) {
		s.admission.saturationShed.Add(1)
		return nil, ErrShed
	}
	now := obs.Now()
	r := &request{
		ep:       ep,
		ops:      ops,
		readOnly: readOnlyOps(ops),
		res:      make([]OpResult, len(ops)),
		enq:      now,
		deadline: now + s.cfg.RequestTimeout.Nanoseconds(),
		done:     make(chan struct{}, 1),
	}
	if !s.enqueue(w, r, 1) {
		return nil, ErrShed
	}
	if !s.await(w, r) {
		return nil, ErrClosed
	}
	if r.shed {
		return nil, ErrShed
	}
	if r.err != nil {
		return nil, r.err
	}
	return r.res, nil
}

// applyOps executes one request's ops against the transactional view,
// overwriting res. It is re-executed from the top on every restart, so it
// writes results idempotently and allocates nothing in steady state (a
// scan's Vals backing array is grown once and recycled across uses of the
// envelope).
func (s *Server) applyOps(tx tm.Tx, ops []Op, res []OpResult) {
	for i := range ops {
		op := &ops[i]
		switch op.Kind {
		case OpGet:
			res[i] = OpResult{Val: tx.Load(s.addrOf(op.Key))}
		case OpPut:
			tx.Store(s.addrOf(op.Key), op.Val)
			res[i] = OpResult{Val: op.Val}
		case OpCas:
			cur := tx.Load(s.addrOf(op.Key))
			if cur == op.Old {
				tx.Store(s.addrOf(op.Key), op.Val)
				res[i] = OpResult{Val: op.Old, Swapped: true}
			} else {
				res[i] = OpResult{Val: cur}
			}
		case OpScan:
			vals := res[i].Vals
			if cap(vals) < int(op.Count) {
				vals = make([]uint64, op.Count)
			}
			vals = vals[:op.Count]
			for j := uint64(0); j < uint64(op.Count); j++ {
				vals[j] = tx.Load(s.addrOf(op.Key + j))
			}
			res[i] = OpResult{Vals: vals}
		}
	}
}
