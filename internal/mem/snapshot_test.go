package mem

import (
	"sync"
	"testing"
)

// TestSnapshotStrideTryValues: a strided snapshot must fill dst[i] from
// a + i*stride — the service layer's one-word-per-line scan footprint.
func TestSnapshotStrideTryValues(t *testing.T) {
	m := New(1 << 12)
	c := m.NewThreadCache()
	a := c.Alloc(16 * LineWords)
	for i := 0; i < 16; i++ {
		m.StorePlain(a+Addr(i*LineWords), uint64(100+i))
	}
	dst := make([]uint64, 16)
	if !m.SnapshotStrideTry(a, LineWords, dst, 3) {
		t.Fatal("quiescent strided snapshot did not succeed")
	}
	for i, v := range dst {
		if v != uint64(100+i) {
			t.Errorf("dst[%d] = %d, want %d", i, v, 100+i)
		}
	}
}

// TestSnapshotStrideTryClampsArgs: stride and attempts below 1 degrade to
// 1, so a stride-0 call is a contiguous bounded snapshot.
func TestSnapshotStrideTryClampsArgs(t *testing.T) {
	m := New(1 << 12)
	c := m.NewThreadCache()
	a := c.Alloc(LineWords)
	for i := 0; i < 4; i++ {
		m.StorePlain(a+Addr(i), uint64(7+i))
	}
	dst := make([]uint64, 4)
	if !m.SnapshotStrideTry(a, 0, dst, -5) {
		t.Fatal("quiescent clamped snapshot did not succeed")
	}
	for i, v := range dst {
		if v != uint64(7+i) {
			t.Errorf("dst[%d] = %d, want %d", i, v, 7+i)
		}
	}
	if !m.SnapshotStrideTry(a, 1, nil, 1) {
		t.Fatal("empty snapshot must trivially succeed")
	}
}

// TestSnapshotStrideTryConsistent: the strided snapshot must never observe
// a cross-stripe commit half-applied — same invariant as the contiguous
// form, over the service layer's scan footprint.
func TestSnapshotStrideTryConsistent(t *testing.T) {
	const total = 1000
	m := NewStriped(1<<14, 64)
	c := m.NewThreadCache()
	a := c.Alloc(2 * LineWords)
	b := a + LineWords
	m.StorePlain(a, total)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(0); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			v := i % total
			m.CommitWrites([]WriteEntry{{a, v}, {b, total - v}}, nil)
		}
	}()
	dst := make([]uint64, 2)
	clean := 0
	for i := 0; i < 3000; i++ {
		if !m.SnapshotStrideTry(a, LineWords, dst, 1000) {
			continue
		}
		clean++
		if dst[0]+dst[1] != total {
			t.Errorf("strided snapshot tore across stripes: %d + %d != %d", dst[0], dst[1], total)
			break
		}
	}
	close(stop)
	wg.Wait()
	if clean == 0 {
		t.Fatal("no snapshot pass came back clean in 3000 tries")
	}
}

// TestSnapshotTryBoundedFailure: when a writer dirties a touched stripe on
// every pass, a bounded budget must give up (return false) instead of
// spinning — the contract the service fast path relies on for its
// transactional fallback. The per-pass hook plays the writer at exactly
// the point a concurrent commit would land, so the test is deterministic
// even on one CPU.
func TestSnapshotTryBoundedFailure(t *testing.T) {
	m := New(1 << 12)
	c := m.NewThreadCache()
	a := c.Alloc(4 * LineWords)
	dst := make([]uint64, 4)
	s := int((uint64(a) >> lineShift) & m.mask)
	passes := 0
	snapshotTestHook = func() {
		// An even-to-even bump looks like a complete committed write
		// landing between the copy and the recheck.
		passes++
		m.stripes[s].clock.Add(2)
	}
	defer func() { snapshotTestHook = nil }()
	if m.SnapshotTry(a, dst, 2) {
		t.Fatal("SnapshotTry reported a clean pass while every pass was dirtied")
	}
	if passes != 2 {
		t.Fatalf("bounded SnapshotTry ran %d passes, want exactly 2", passes)
	}
	// The budget is per-call, not sticky: with the writer gone the next
	// call succeeds on its first pass.
	snapshotTestHook = nil
	if !m.SnapshotTry(a, dst, 2) {
		t.Fatal("SnapshotTry failed with the writer stopped")
	}
	// The strided form shares the loop and the same give-up contract.
	snapshotTestHook = func() { m.stripes[s].clock.Add(2) }
	if m.SnapshotStrideTry(a, LineWords, dst, 3) {
		t.Fatal("SnapshotStrideTry reported a clean pass while every pass was dirtied")
	}
}

// TestSnapshotZeroAllocs: the snapshot loop is on the service's per-request
// fast path and must not heap-allocate (the stripe-mark array has to stay
// on the stack; a closure capturing it would drag 8KiB onto the heap per
// scan).
func TestSnapshotZeroAllocs(t *testing.T) {
	m := New(1 << 12)
	c := m.NewThreadCache()
	a := c.Alloc(16 * LineWords)
	dst := make([]uint64, 16)
	avg := testing.AllocsPerRun(100, func() {
		if !m.SnapshotStrideTry(a, LineWords, dst, 3) {
			t.Fatal("quiescent snapshot failed")
		}
	})
	if avg != 0 {
		t.Fatalf("SnapshotStrideTry allocates %.1f times per call, want 0", avg)
	}
	avg = testing.AllocsPerRun(100, func() {
		m.Snapshot(a, dst[:1])
	})
	if avg != 0 {
		t.Fatalf("Snapshot allocates %.1f times per call, want 0", avg)
	}
}
