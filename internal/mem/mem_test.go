package mem

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestNewReservesNil(t *testing.T) {
	m := New(1024)
	if m.Size() != 1024 {
		t.Fatalf("Size = %d, want 1024", m.Size())
	}
	c := m.NewThreadCache()
	a := c.Alloc(1)
	if a == Nil {
		t.Fatal("Alloc returned the nil address")
	}
	if a < LineWords {
		t.Fatalf("Alloc returned %d inside the reserved first line", a)
	}
}

func TestNewClampsTinySizes(t *testing.T) {
	m := New(1)
	if m.Size() < 2*LineWords {
		t.Fatalf("Size = %d, want at least %d", m.Size(), 2*LineWords)
	}
}

func TestLoadStorePlain(t *testing.T) {
	m := New(1024)
	c := m.NewThreadCache()
	a := c.Alloc(4)
	m.StorePlain(a, 42)
	m.StorePlain(a+1, 43)
	if got := m.LoadPlain(a); got != 42 {
		t.Errorf("LoadPlain(a) = %d, want 42", got)
	}
	if got := m.LoadPlain(a + 1); got != 43 {
		t.Errorf("LoadPlain(a+1) = %d, want 43", got)
	}
}

func TestStoreAdvancesClock(t *testing.T) {
	m := New(1024)
	c := m.NewThreadCache()
	a := c.Alloc(1)
	before := m.Clock()
	m.StorePlain(a, 7)
	if after := m.Clock(); after != before+2 || after&1 != 0 {
		t.Errorf("clock went %d -> %d, want +2 and even", before, after)
	}
}

func TestLoadDoesNotAdvanceClock(t *testing.T) {
	m := New(1024)
	c := m.NewThreadCache()
	a := c.Alloc(1)
	before := m.Clock()
	_ = m.LoadPlain(a)
	if after := m.Clock(); after != before {
		t.Errorf("clock moved on a load: %d -> %d", before, after)
	}
}

func TestCASPlain(t *testing.T) {
	m := New(1024)
	c := m.NewThreadCache()
	a := c.Alloc(1)
	m.StorePlain(a, 5)
	before := m.Clock()
	if m.CASPlain(a, 4, 9) {
		t.Error("CAS with wrong expected value succeeded")
	}
	if m.Clock() != before {
		t.Error("failed CAS advanced the clock")
	}
	if !m.CASPlain(a, 5, 9) {
		t.Error("CAS with correct expected value failed")
	}
	if got := m.LoadPlain(a); got != 9 {
		t.Errorf("after CAS value = %d, want 9", got)
	}
	if m.Clock() != before+2 {
		t.Error("successful CAS did not advance the clock by exactly one mutation")
	}
}

func TestAddSubPlain(t *testing.T) {
	m := New(1024)
	c := m.NewThreadCache()
	a := c.Alloc(1)
	if got := m.AddPlain(a, 10); got != 10 {
		t.Errorf("AddPlain returned %d, want 10", got)
	}
	if got := m.SubPlain(a, 3); got != 7 {
		t.Errorf("SubPlain returned %d, want 7", got)
	}
	if got := m.LoadPlain(a); got != 7 {
		t.Errorf("value = %d, want 7", got)
	}
}

func TestCommitWritesPublishesAtomically(t *testing.T) {
	m := New(1024)
	c := m.NewThreadCache()
	a := c.Alloc(2)
	before := m.Clock()
	ok := m.CommitWrites([]WriteEntry{{a, 1}, {a + 1, 2}}, func() bool { return true })
	if !ok {
		t.Fatal("CommitWrites failed with passing validation")
	}
	if m.LoadPlain(a) != 1 || m.LoadPlain(a+1) != 2 {
		t.Error("CommitWrites did not publish all entries")
	}
	if m.Clock() != before+2 {
		t.Error("CommitWrites should advance the clock by exactly one mutation")
	}
}

func TestCommitWritesValidationFailure(t *testing.T) {
	m := New(1024)
	c := m.NewThreadCache()
	a := c.Alloc(1)
	before := m.Clock()
	if m.CommitWrites([]WriteEntry{{a, 1}}, func() bool { return false }) {
		t.Fatal("CommitWrites succeeded despite failing validation")
	}
	if m.LoadPlain(a) != 0 {
		t.Error("failed commit leaked a write")
	}
	if m.Clock() != before {
		t.Error("failed commit advanced the clock")
	}
}

func TestCommitWritesReadOnly(t *testing.T) {
	m := New(1024)
	before := m.Clock()
	if !m.CommitWrites(nil, func() bool { return true }) {
		t.Fatal("read-only commit failed")
	}
	if m.Clock() != before {
		t.Error("read-only commit advanced the clock")
	}
}

// TestReadOnlyValidationHoldsNoLock: a read-only commit's validation runs
// without the writeback lock. The validate callback itself performs a plain
// store — under the old under-the-lock discipline this would self-deadlock —
// and because the store moves the clock, the first (torn) verdict must be
// discarded and validation retried at a new stable clock.
func TestReadOnlyValidationHoldsNoLock(t *testing.T) {
	m := New(1024)
	c := m.NewThreadCache()
	a := c.Alloc(1)
	calls := 0
	ok := m.CommitWrites(nil, func() bool {
		calls++
		if calls == 1 {
			m.StorePlain(a, 7) // would deadlock if validation held wb
			return false       // torn verdict: the clock moved under us
		}
		return true
	})
	if !ok {
		t.Fatal("read-only commit rejected a verdict that became clean on retry")
	}
	if calls != 2 {
		t.Errorf("validate ran %d times, want 2 (initial torn attempt + clean retry)", calls)
	}
	if m.LoadPlain(a) != 7 {
		t.Error("store from validate lost")
	}
}

// TestReadOnlyValidationGenuineFailure: a false verdict at a stable clock is
// a genuine conflict and must be returned as-is, without moving the clock.
func TestReadOnlyValidationGenuineFailure(t *testing.T) {
	m := New(1024)
	before := m.Clock()
	calls := 0
	if m.CommitWrites(nil, func() bool { calls++; return false }) {
		t.Fatal("read-only commit succeeded despite failing validation")
	}
	if calls != 1 {
		t.Errorf("validate ran %d times, want 1 (stable clock, no retry)", calls)
	}
	if m.Clock() != before {
		t.Error("failed read-only commit moved the clock")
	}
}

func TestValidateLockFreeNil(t *testing.T) {
	m := New(1024)
	if !m.ValidateLockFree(nil) {
		t.Error("nil validation must trivially succeed")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	m := New(1024)
	for name, f := range map[string]func(){
		"load nil":           func() { m.LoadPlain(Nil) },
		"store nil":          func() { m.StorePlain(Nil, 1) },
		"load past end":      func() { m.LoadPlain(Addr(m.Size())) },
		"store past end":     func() { m.StorePlain(Addr(m.Size()+5), 1) },
		"alloc non-positive": func() { m.NewThreadCache().Alloc(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestLineOf(t *testing.T) {
	cases := []struct {
		a    Addr
		want Line
	}{{0, 0}, {7, 0}, {8, 1}, {15, 1}, {16, 2}, {1024, 128}}
	for _, c := range cases {
		if got := LineOf(c.a); got != c.want {
			t.Errorf("LineOf(%d) = %d, want %d", c.a, got, c.want)
		}
	}
}

func TestSnapshot(t *testing.T) {
	m := New(1024)
	c := m.NewThreadCache()
	a := c.Alloc(4)
	for i := 0; i < 4; i++ {
		m.StorePlain(a+Addr(i), uint64(i*11))
	}
	dst := make([]uint64, 4)
	m.Snapshot(a, dst)
	for i, v := range dst {
		if v != uint64(i*11) {
			t.Errorf("Snapshot[%d] = %d, want %d", i, v, i*11)
		}
	}
}

// TestConcurrentPlainStoresClockCount checks that N concurrent plain stores
// advance the clock by exactly N (every mutation is clocked).
func TestConcurrentPlainStoresClockCount(t *testing.T) {
	m := New(1 << 14)
	c := m.NewThreadCache()
	a := c.Alloc(64)
	const threads, per = 8, 200
	before := m.Clock()
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				m.StorePlain(a+Addr(id%64), uint64(j))
			}
		}(i)
	}
	wg.Wait()
	if got := m.Clock() - before; got != 2*threads*per {
		t.Errorf("clock advanced %d, want %d", got, 2*threads*per)
	}
}

// TestConcurrentAdds checks fetch-and-add linearizability on one word.
func TestConcurrentAdds(t *testing.T) {
	m := New(1 << 12)
	c := m.NewThreadCache()
	a := c.Alloc(1)
	const threads, per = 8, 500
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				m.AddPlain(a, 1)
			}
		}()
	}
	wg.Wait()
	if got := m.LoadPlain(a); got != threads*per {
		t.Errorf("counter = %d, want %d", got, threads*per)
	}
}

func TestQuickStoreLoadRoundTrip(t *testing.T) {
	m := New(1 << 16)
	c := m.NewThreadCache()
	base := c.Alloc(4096)
	f := func(off uint16, v uint64) bool {
		a := base + Addr(off)%4096
		m.StorePlain(a, v)
		return m.LoadPlain(a) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
