package mem

import (
	"sync"
	"testing"
)

func TestNewStripedRoundsAndClamps(t *testing.T) {
	cases := []struct{ in, want int }{
		{-3, 1}, {0, 1}, {1, 1}, {2, 2}, {3, 4}, {63, 64}, {64, 64},
		{65, 128}, {MaxStripes, MaxStripes}, {MaxStripes + 1, MaxStripes},
	}
	for _, c := range cases {
		if got := NewStriped(1024, c.in).StripeCount(); got != c.want {
			t.Errorf("NewStriped(_, %d).StripeCount() = %d, want %d", c.in, got, c.want)
		}
	}
	if got := New(1024).StripeCount(); got != DefaultStripes {
		t.Errorf("New stripe count = %d, want %d", got, DefaultStripes)
	}
}

func TestStripeOfInterleavesLines(t *testing.T) {
	m := NewStriped(1<<16, 64)
	for _, c := range []struct {
		a    Addr
		want int
	}{{8, 1}, {15, 1}, {16, 2}, {8 * 64, 0}, {8*64 + 8, 1}, {8 * 63, 63}} {
		if got := m.StripeOf(c.a); got != c.want {
			t.Errorf("StripeOf(%d) = %d, want %d", c.a, got, c.want)
		}
	}
	// Words of one line never straddle stripes.
	for a := Addr(8); a < 8+LineWords; a++ {
		if m.StripeOf(a) != m.StripeOf(8) {
			t.Fatalf("line 1 straddles stripes at word %d", a)
		}
	}
}

// TestSingleStripeDegenerate: -stripes 1 reproduces the original
// global-seqlock substrate — one clock, every mutation serializes on it.
func TestSingleStripeDegenerate(t *testing.T) {
	m := NewStriped(1024, 1)
	c := m.NewThreadCache()
	a := c.Alloc(2 * LineWords)
	b := a + LineWords
	if m.StripeOf(a) != 0 || m.StripeOf(b) != 0 {
		t.Fatal("single-stripe memory mapped addresses off stripe 0")
	}
	before := m.StripeClock(0)
	m.StorePlain(a, 1)
	m.StorePlain(b, 2)
	if got := m.StripeClock(0); got != before+4 {
		t.Errorf("stripe clock advanced %d, want 4 (two serialized mutations)", got-before)
	}
	if m.Clock() != m.StripeClock(0) {
		t.Errorf("with one stripe Clock()=%d should track the stripe clock %d", m.Clock(), m.StripeClock(0))
	}
}

// TestCommitWritesTouchesOnlyWrittenStripes: a commit must not perturb the
// clocks of stripes outside its write set — that independence is what lets
// disjoint commits run in parallel and spares unrelated readers a
// revalidation.
func TestCommitWritesTouchesOnlyWrittenStripes(t *testing.T) {
	m := NewStriped(1<<14, 64)
	c := m.NewThreadCache()
	a := c.Alloc(4 * LineWords)
	s0, s1 := m.StripeOf(a), m.StripeOf(a+LineWords)
	other := m.StripeOf(a + 2*LineWords)
	c0, c1, co := m.StripeClock(s0), m.StripeClock(s1), m.StripeClock(other)
	tk := m.Ticket()
	if !m.CommitWrites([]WriteEntry{{a, 1}, {a + LineWords, 2}}, nil) {
		t.Fatal("commit failed")
	}
	if m.StripeClock(s0) != c0+2 || m.StripeClock(s1) != c1+2 {
		t.Error("written stripes did not advance by one mutation each")
	}
	if m.StripeClock(other) != co {
		t.Error("commit perturbed an untouched stripe's clock")
	}
	if m.Ticket() != tk+1 {
		t.Errorf("ticket advanced %d, want 1 per publish", m.Ticket()-tk)
	}
}

// TestCommitWritesFailedValidationRestoresWindows: a failed multi-stripe
// commit must leave every touched stripe clock exactly where it was —
// restored, not advanced — since nothing was published.
func TestCommitWritesFailedValidationRestoresWindows(t *testing.T) {
	m := NewStriped(1<<14, 64)
	c := m.NewThreadCache()
	a := c.Alloc(2 * LineWords)
	s0, s1 := m.StripeOf(a), m.StripeOf(a+LineWords)
	c0, c1 := m.StripeClock(s0), m.StripeClock(s1)
	tk := m.Ticket()
	var sawOpen bool
	ok := m.CommitWrites([]WriteEntry{{a, 1}, {a + LineWords, 2}}, func() bool {
		// Validation runs with every touched window open (odd).
		sawOpen = m.StripeClock(s0)&1 == 1 && m.StripeClock(s1)&1 == 1
		return false
	})
	if ok {
		t.Fatal("commit succeeded despite failing validation")
	}
	if !sawOpen {
		t.Error("validation did not observe the touched seqlock windows open")
	}
	if m.StripeClock(s0) != c0 || m.StripeClock(s1) != c1 {
		t.Error("failed commit did not restore the stripe clocks")
	}
	if m.Ticket() != tk {
		t.Error("failed commit retired a ticket")
	}
}

// TestSnapshotConsistentAcrossStripes: Snapshot must never observe a
// cross-stripe commit half-applied. A writer keeps two words in different
// stripes summing to a constant; every snapshot must agree.
func TestSnapshotConsistentAcrossStripes(t *testing.T) {
	const total = 1000
	m := NewStriped(1<<14, 64)
	c := m.NewThreadCache()
	a := c.Alloc(2 * LineWords)
	b := a + LineWords
	m.StorePlain(a, total)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(0); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			v := i % total
			m.CommitWrites([]WriteEntry{{a, v}, {b, total - v}}, nil)
		}
	}()
	dst := make([]uint64, 2*LineWords)
	for i := 0; i < 3000; i++ {
		m.Snapshot(a, dst)
		if dst[0]+dst[LineWords] != total {
			t.Errorf("snapshot tore across stripes: %d + %d != %d", dst[0], dst[LineWords], total)
			break
		}
	}
	close(stop)
	wg.Wait()
}
