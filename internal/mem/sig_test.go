package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// sigOf builds a signature over lines at the given width.
func sigOf(lines []Line, bits uint32) Signature {
	var g Signature
	for _, l := range lines {
		g.AddLine(l, bits)
	}
	return g
}

// TestQuickSigNoFalseNegatives is the one property the whole filter rests
// on: whenever a reader's footprint and a writer's footprint share a cache
// line, their signatures — built at the same width — must intersect. A miss
// here would let a validator skip a value sweep it needed; a false positive
// only costs a redundant sweep, so it is not checked.
func TestQuickSigNoFalseNegatives(t *testing.T) {
	f := func(reads, writes []uint16, widthSel uint8) bool {
		bits := uint32(MinSigBits << (widthSel % 3)) // 64, 128, 256
		rl := make([]Line, len(reads))
		for i, v := range reads {
			rl[i] = Line(v)
		}
		wl := make([]Line, len(writes))
		for i, v := range writes {
			wl[i] = Line(v)
		}
		shared := false
		for _, r := range rl {
			for _, w := range wl {
				if r == w {
					shared = true
				}
			}
		}
		rsig := sigOf(rl, bits)
		wsig := sigOf(wl, bits)
		if shared && !rsig.Intersects(&wsig) {
			return false // false negative: forbidden
		}
		if !shared && len(rl) == 0 && !rsig.IsZero() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestSigFalsePositiveRateBounded pins the filter's precision with a seeded
// workload: disjoint 4-line footprints must intersect rarely, the rate must
// shrink as the width grows, and at the full width it must stay under the
// analytic bound 1-(1-k/b)^k (~6.1% for k=4, b=256) with slack for seed
// variance.
func TestSigFalsePositiveRateBounded(t *testing.T) {
	const trials = 20000
	const k = 4
	rng := rand.New(rand.NewSource(7))
	rate := func(bits uint32) float64 {
		fp := 0
		for i := 0; i < trials; i++ {
			seen := make(map[Line]bool, 2*k)
			draw := func() []Line {
				ls := make([]Line, 0, k)
				for len(ls) < k {
					l := Line(rng.Intn(1 << 20))
					if !seen[l] {
						seen[l] = true
						ls = append(ls, l)
					}
				}
				return ls
			}
			rsig := sigOf(draw(), bits)
			wsig := sigOf(draw(), bits)
			if rsig.Intersects(&wsig) {
				fp++
			}
		}
		return float64(fp) / trials
	}
	r64, r128, r256 := rate(64), rate(128), rate(256)
	t.Logf("false-positive rates: 64b=%.4f 128b=%.4f 256b=%.4f", r64, r128, r256)
	if !(r64 > r128 && r128 > r256) {
		t.Errorf("rate must shrink with width: 64b=%.4f 128b=%.4f 256b=%.4f", r64, r128, r256)
	}
	for _, c := range []struct {
		bits  uint32
		rate  float64
		bound float64 // 1.25 * (1-(1-4/b)^4)
	}{
		{64, r64, 0.30}, {128, r128, 0.15}, {256, r256, 0.08},
	} {
		if c.rate > c.bound {
			t.Errorf("%db: false-positive rate %.4f exceeds bound %.4f", c.bits, c.rate, c.bound)
		}
	}
}

// TestSigDisjointSinceVerdicts drives the published per-stripe rings end to
// end through the Memory's own mutation paths: plain stores and commit
// write-backs publish, and a validator watching the stripe clock gets the
// right three-way verdict — provably disjoint, possibly intersecting, or
// unknown (wrap / disabled).
func TestSigDisjointSinceVerdicts(t *testing.T) {
	m := NewStriped(1<<14, 4)
	m.SetSignatureBits(256)
	bits := uint32(m.SignatureBits())
	// Two distinct lines on the same stripe: stripe index is (addr>>lineShift)
	// & mask, so stepping by stripeCount*LineWords words stays on one stripe.
	a1 := Addr(LineWords * m.StripeCount())
	a2 := a1 + Addr(m.StripeCount()*LineWords)
	s := m.StripeOf(a1)
	if m.StripeOf(a2) != s {
		t.Fatalf("test setup: addresses on different stripes %d vs %d", s, m.StripeOf(a2))
	}

	mark := m.StripeClock(s)
	m.StorePlain(a2, 1)
	cur := m.StripeClock(s)
	var readsA1, readsA2 Signature
	readsA1.AddLine(LineOf(a1), bits)
	readsA2.AddLine(LineOf(a2), bits)

	if dis, known := m.SigDisjointSince(s, mark, cur, &readsA1); !known || !dis {
		t.Errorf("disjoint publish: got (disjoint=%v, known=%v), want (true, true)", dis, known)
	}
	if dis, known := m.SigDisjointSince(s, mark, cur, &readsA2); !known || dis {
		t.Errorf("intersecting publish: got (disjoint=%v, known=%v), want (false, true)", dis, known)
	}
	if dis, known := m.SigDisjointSince(s, mark, mark, &readsA2); !known || !dis {
		t.Errorf("empty window: got (disjoint=%v, known=%v), want (true, true)", dis, known)
	}

	// A commit write-back publishes one signature covering all its lines.
	mark = m.StripeClock(s)
	if !m.CommitWrites([]WriteEntry{{Addr: a2, Value: 9}}, func() bool { return true }) {
		t.Fatal("commit failed")
	}
	cur = m.StripeClock(s)
	if dis, known := m.SigDisjointSince(s, mark, cur, &readsA2); !known || dis {
		t.Errorf("commit publish vs its own line: got (%v, %v), want (false, true)", dis, known)
	}
	if dis, known := m.SigDisjointSince(s, mark, cur, &readsA1); !known || !dis {
		t.Errorf("commit publish vs other line: got (%v, %v), want (true, true)", dis, known)
	}

	// Ring wrap: a validator lagging more than sigRingSlots publishes gets
	// "unknown", never a wrong verdict.
	mark = m.StripeClock(s)
	for i := 0; i <= sigRingSlots; i++ {
		m.StorePlain(a2, uint64(i))
	}
	cur = m.StripeClock(s)
	if _, known := m.SigDisjointSince(s, mark, cur, &readsA1); known {
		t.Error("wrapped window reported a verdict; want unknown")
	}

	// Publication disabled: always unknown, and the plain path publishes
	// nothing to a later-enabled ring.
	m2 := NewStriped(1<<10, 4)
	m2.StorePlain(a2, 1)
	if _, known := m2.SigDisjointSince(m2.StripeOf(a2), 0, m2.StripeClock(m2.StripeOf(a2)), &readsA2); known {
		t.Error("signatures disabled: got a verdict, want unknown")
	}
}

// TestSigDisjointSinceUncoveredPrefix: publishes that ran before
// SetSignatureBits have no ring entry; a window including one must report
// unknown even though later publishes are covered.
func TestSigDisjointSinceUncoveredPrefix(t *testing.T) {
	m := NewStriped(1<<10, 4)
	a := Addr(LineWords)
	s := m.StripeOf(a)
	mark := m.StripeClock(s)
	m.StorePlain(a, 1) // uncovered publish
	m.SetSignatureBits(64)
	m.StorePlain(a, 2) // covered publish
	cur := m.StripeClock(s)
	var rsig Signature
	rsig.AddLine(LineOf(a)+100, uint32(m.SignatureBits()))
	if _, known := m.SigDisjointSince(s, mark, cur, &rsig); known {
		t.Error("window spanning an uncovered publish reported a verdict; want unknown")
	}
}
