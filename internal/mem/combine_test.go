package mem

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestCombineRingSlotLifecycle walks one slot through every edge of the
// state machine single-threaded.
func TestCombineRingSlotLifecycle(t *testing.T) {
	r := NewCombineRing()
	var rsig, wsig Signature
	rsig.AddLine(1, 64)
	wsig.AddLine(2, 64)
	writes := []WriteEntry{{Addr: 100, Value: 1}}

	slot := r.Enqueue(4, writes, &rsig, &wsig)
	if slot < 0 {
		t.Fatal("empty ring refused an enqueue")
	}
	if got := r.Poll(slot); got != CombinePending {
		t.Fatalf("fresh entry outcome = %v, want pending", got)
	}
	if r.PendingCount() != 1 {
		t.Fatalf("PendingCount = %d, want 1", r.PendingCount())
	}

	// A holder at the wrong base must leave the entry pending.
	var group Signature
	var mask uint32
	if n := r.Drain(6, &group, 1<<30, &mask, func([]WriteEntry) { t.Fatal("applied at wrong base") }); n != 0 || mask != 0 {
		t.Fatalf("wrong-base drain claimed %d (mask %b)", n, mask)
	}

	// A group whose accumulated writes hit the entry's reads must reject it.
	group = rsig
	if n := r.Drain(4, &group, 1<<30, &mask, func([]WriteEntry) { t.Fatal("applied an intersecting entry") }); n != 0 {
		t.Fatalf("intersecting drain claimed %d", n)
	}
	if got := r.Poll(slot); got != CombineRejected {
		t.Fatalf("intersecting entry outcome = %v, want rejected", got)
	}
	r.Release(slot)

	// Disjoint drain applies and completes.
	slot = r.Enqueue(4, writes, &rsig, &wsig)
	group.Reset()
	mask = 0
	applied := 0
	if n := r.Drain(4, &group, 1<<30, &mask, func(ws []WriteEntry) { applied += len(ws) }); n != 1 || applied != 1 {
		t.Fatalf("drain claimed %d applied %d, want 1/1", n, applied)
	}
	if !group.Intersects(&wsig) {
		t.Error("drain did not fold the entry's write signature into the group")
	}
	if got := r.Poll(slot); got != CombinePending {
		t.Fatalf("claimed-but-unresolved entry outcome = %v, want pending", got)
	}
	r.Resolve(mask, true)
	if got := r.Poll(slot); got != CombineDone {
		t.Fatalf("resolved entry outcome = %v, want done", got)
	}
	r.Release(slot)

	// A budget too small for the entry leaves it pending.
	slot = r.Enqueue(4, writes, &rsig, &wsig)
	group.Reset()
	mask = 0
	if n := r.Drain(4, &group, 0, &mask, func([]WriteEntry) { t.Fatal("applied over budget") }); n != 0 {
		t.Fatalf("over-budget drain claimed %d", n)
	}
	if !r.TryCancel(slot) {
		t.Fatal("pending entry refused cancellation")
	}
	if r.PendingCount() != 0 {
		t.Fatalf("PendingCount = %d after cancel, want 0", r.PendingCount())
	}
}

// TestCombineRingFull: the ring reports exhaustion instead of blocking.
func TestCombineRingFull(t *testing.T) {
	r := NewCombineRing()
	var sig Signature
	for i := 0; i < CombineSlots; i++ {
		if r.Enqueue(2, nil, &sig, &sig) < 0 {
			t.Fatalf("ring full after %d of %d enqueues", i, CombineSlots)
		}
	}
	if slot := r.Enqueue(2, nil, &sig, &sig); slot >= 0 {
		t.Fatalf("over-full enqueue got slot %d, want -1", slot)
	}
}

// TestCombineRingConcurrentDrain is the -race stress for the cross-thread
// payload handoff: enqueuers publish write sets while a holder loop drains
// and resolves, and a canceller retracts entries at a base the holder never
// claims. Every write the holder applies must be observed exactly once, and
// every Done verdict must correspond to exactly one applied entry.
func TestCombineRingConcurrentDrain(t *testing.T) {
	r := NewCombineRing()
	const enqueuers = 3
	const rounds = 300
	var applied atomic.Uint64 // sum of applied entry values
	var doneSum atomic.Uint64 // sum of values whose enqueuer saw Done
	stop := make(chan struct{})

	var holderWG sync.WaitGroup
	holderWG.Add(1)
	go func() { // the holder: drains base 0 forever
		defer holderWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var group Signature
			var mask uint32
			r.Drain(0, &group, 1<<30, &mask, func(ws []WriteEntry) {
				for _, w := range ws {
					applied.Add(w.Value)
				}
			})
			r.Resolve(mask, true)
			runtime.Gosched()
		}
	}()

	var wg sync.WaitGroup
	for e := 0; e < enqueuers; e++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			writes := make([]WriteEntry, 1)
			for i := 0; i < rounds; i++ {
				val := uint64(id*rounds + i + 1)
				writes[0] = WriteEntry{Addr: Addr(8 * (id + 1)), Value: val}
				var rsig, wsig Signature
				// Line-disjoint per enqueuer so rejects can't happen; the
				// lifecycle test covers rejection.
				rsig.AddLine(Line(100+id), MaxSigBits)
				wsig.AddLine(Line(200+id), MaxSigBits)
				slot := r.Enqueue(0, writes, &rsig, &wsig)
				if slot < 0 {
					continue // ring momentarily full
				}
				for r.Poll(slot) == CombinePending {
					runtime.Gosched()
				}
				if r.Poll(slot) == CombineDone {
					doneSum.Add(val)
				} else {
					t.Errorf("enqueuer %d round %d: rejected despite disjoint signatures", id, i)
				}
				r.Release(slot)
			}
		}(e)
	}

	var cancelWG sync.WaitGroup
	cancelWG.Add(1)
	go func() { // enqueues at base 2, which no holder ever drains
		defer cancelWG.Done()
		var sig Signature
		sig.AddLine(Line(999), MaxSigBits)
		writes := []WriteEntry{{Addr: 8, Value: 0}}
		for i := 0; i < rounds; i++ {
			slot := r.Enqueue(2, writes, &sig, &sig)
			if slot < 0 {
				continue
			}
			// Drain may hold a transient claim while checking the base;
			// keep retrying until the retraction lands.
			for !r.TryCancel(slot) {
				runtime.Gosched()
				if r.Poll(slot) != CombinePending {
					t.Errorf("base-2 entry got a verdict; no holder should claim it")
					r.Release(slot)
					break
				}
			}
		}
	}()

	wg.Wait()
	cancelWG.Wait()
	close(stop)
	holderWG.Wait()
	if applied.Load() != doneSum.Load() {
		t.Fatalf("applied value sum %d != done value sum %d", applied.Load(), doneSum.Load())
	}
}
