package mem

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestClassFor(t *testing.T) {
	cases := []struct{ n, wantSize int }{
		{1, 1}, {2, 2}, {3, 3}, {4, 4}, {5, 6}, {6, 6}, {7, 8}, {8, 8},
		{9, 12}, {17, 24}, {100, 128}, {4096, 4096},
	}
	for _, c := range cases {
		cl := classFor(c.n)
		if cl < 0 {
			t.Errorf("classFor(%d) = -1", c.n)
			continue
		}
		if classSizes[cl] != c.wantSize {
			t.Errorf("classFor(%d) -> size %d, want %d", c.n, classSizes[cl], c.wantSize)
		}
	}
	if classFor(4097) != -1 {
		t.Error("classFor(4097) should be oversize (-1)")
	}
}

func TestClassSizesSortedAndCounted(t *testing.T) {
	if len(classSizes) != numClasses {
		t.Fatalf("numClasses = %d but len(classSizes) = %d", numClasses, len(classSizes))
	}
	for i := 1; i < len(classSizes); i++ {
		if classSizes[i] <= classSizes[i-1] {
			t.Fatalf("classSizes not strictly increasing at %d", i)
		}
	}
}

func TestAllocZeroesReusedBlocks(t *testing.T) {
	m := New(1 << 14)
	c := m.NewThreadCache()
	a := c.Alloc(8)
	for i := 0; i < 8; i++ {
		m.StorePlain(a+Addr(i), ^uint64(0))
	}
	c.Free(a, 8)
	b := c.Alloc(8)
	if a != b {
		t.Logf("allocator did not reuse block immediately (a=%d b=%d); still checking zeroing", a, b)
	}
	for i := 0; i < 8; i++ {
		if got := m.LoadPlain(b + Addr(i)); got != 0 {
			t.Fatalf("reused block word %d = %d, want 0", i, got)
		}
	}
}

func TestAllocDistinctBlocks(t *testing.T) {
	m := New(1 << 16)
	c := m.NewThreadCache()
	seen := make(map[Addr]bool)
	for i := 0; i < 500; i++ {
		a := c.Alloc(6)
		if seen[a] {
			t.Fatalf("Alloc returned live address %d twice", a)
		}
		seen[a] = true
	}
}

func TestFreeNilIsNoop(t *testing.T) {
	m := New(1 << 12)
	c := m.NewThreadCache()
	before := m.LiveBlocks()
	c.Free(Nil, 8)
	if m.LiveBlocks() != before {
		t.Error("Free(Nil) changed live-block accounting")
	}
}

func TestLiveAccountingBalances(t *testing.T) {
	m := New(1 << 16)
	c := m.NewThreadCache()
	rng := rand.New(rand.NewSource(1))
	type blk struct {
		a Addr
		n int
	}
	var live []blk
	for i := 0; i < 2000; i++ {
		if len(live) == 0 || rng.Intn(2) == 0 {
			n := 1 + rng.Intn(64)
			live = append(live, blk{c.Alloc(n), n})
		} else {
			j := rng.Intn(len(live))
			c.Free(live[j].a, live[j].n)
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	for _, b := range live {
		c.Free(b.a, b.n)
	}
	c.Drain()
	if m.LiveBlocks() != 0 {
		t.Errorf("LiveBlocks = %d after freeing everything", m.LiveBlocks())
	}
	if m.LiveWords() != 0 {
		t.Errorf("LiveWords = %d after freeing everything", m.LiveWords())
	}
}

func TestHugeAllocationRoundTrip(t *testing.T) {
	m := New(1 << 16)
	c := m.NewThreadCache()
	a := c.Alloc(10000)
	m.StorePlain(a+9999, 5)
	c.Free(a, 10000)
	b := c.Alloc(10000)
	if b != a {
		t.Errorf("huge block not recycled: got %d, want %d", b, a)
	}
	if m.LoadPlain(b+9999) != 0 {
		t.Error("recycled huge block not zeroed")
	}
}

func TestArenaExhaustionPanics(t *testing.T) {
	m := New(64)
	c := m.NewThreadCache()
	defer func() {
		if recover() == nil {
			t.Error("no panic on arena exhaustion")
		}
	}()
	for i := 0; i < 1000; i++ {
		c.Alloc(8)
	}
}

// TestConcurrentAllocFree hammers the central lists from several thread
// caches and verifies no block is ever handed to two owners at once.
func TestConcurrentAllocFree(t *testing.T) {
	m := New(1 << 20)
	const threads = 8
	var mu sync.Mutex
	owned := make(map[Addr]int)
	var wg sync.WaitGroup
	for id := 0; id < threads; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := m.NewThreadCache()
			rng := rand.New(rand.NewSource(int64(id)))
			var mine []Addr
			for i := 0; i < 1000; i++ {
				if len(mine) == 0 || rng.Intn(2) == 0 {
					a := c.Alloc(8)
					mu.Lock()
					if prev, dup := owned[a]; dup {
						mu.Unlock()
						t.Errorf("block %d double-allocated (owners %d and %d)", a, prev, id)
						return
					}
					owned[a] = id
					mu.Unlock()
					mine = append(mine, a)
				} else {
					j := rng.Intn(len(mine))
					a := mine[j]
					mu.Lock()
					delete(owned, a)
					mu.Unlock()
					c.Free(a, 8)
					mine[j] = mine[len(mine)-1]
					mine = mine[:len(mine)-1]
				}
			}
			for _, a := range mine {
				mu.Lock()
				delete(owned, a)
				mu.Unlock()
				c.Free(a, 8)
			}
			c.Drain()
		}(id)
	}
	wg.Wait()
	if m.LiveBlocks() != 0 {
		t.Errorf("LiveBlocks = %d at end", m.LiveBlocks())
	}
}

// TestQuickAllocSizes property: any size in [1, 4096] yields a block whose
// words are all addressable and zero.
func TestQuickAllocSizes(t *testing.T) {
	m := New(1 << 20)
	c := m.NewThreadCache()
	f := func(raw uint16) bool {
		n := 1 + int(raw)%4096
		a := c.Alloc(n)
		for i := 0; i < n; i++ {
			if m.LoadPlain(a+Addr(i)) != 0 {
				return false
			}
		}
		c.Free(a, n)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRefillBatchPositive(t *testing.T) {
	for cl := range classSizes {
		if refillBatch(cl) < 2 {
			t.Errorf("refillBatch(%d) = %d, want >= 2", cl, refillBatch(cl))
		}
	}
}
