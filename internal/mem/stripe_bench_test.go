package mem

import (
	"sync/atomic"
	"testing"
)

// The striping microbenchmarks quantify the satellite claim that plain
// operations on distinct stripes no longer contend: each parallel worker
// hammers its own line, either spread across stripes (distinct) or folded
// onto one stripe (shared — lines l and l+StripeCount collide by
// construction). Compare:
//
//	go test ./internal/mem -bench 'PlainOps.*Stripe' -cpu 1,4,8
//
// On the single-clock substrate both cases serialized on one mutex; under
// striping only the shared-stripe case does.

func benchPlainOps(b *testing.B, m *Memory, nextLine func(worker int) uint64) {
	var worker atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		id := int(worker.Add(1) - 1)
		a := Addr(nextLine(id) * LineWords)
		i := uint64(0)
		for pb.Next() {
			switch i % 4 {
			case 0, 1:
				m.StorePlain(a, i)
			case 2:
				m.AddPlain(a+1, 1)
			case 3:
				m.CASPlain(a+2, m.LoadPlain(a+2), i)
			}
			i++
		}
	})
}

func BenchmarkPlainOpsDistinctStripes(b *testing.B) {
	m := New(1 << 20)
	// Worker w owns line w+1: consecutive lines land on consecutive
	// stripes, so every worker mutates a different stripe.
	benchPlainOps(b, m, func(w int) uint64 { return uint64(w + 1) })
}

func BenchmarkPlainOpsSharedStripe(b *testing.B) {
	m := New(1 << 20)
	// Worker w owns line (w+1)*StripeCount: distinct lines, identical
	// stripe — all plain ops funnel through one seqlock and one mutex, the
	// behaviour every op had on the single-clock substrate.
	s := uint64(m.StripeCount())
	benchPlainOps(b, m, func(w int) uint64 { return uint64(w+1) * s })
}

func BenchmarkPlainOpsSingleStripeSubstrate(b *testing.B) {
	// The pre-striping substrate for reference: -stripes 1 makes every
	// line share the one stripe regardless of layout.
	m := NewStriped(1<<20, 1)
	benchPlainOps(b, m, func(w int) uint64 { return uint64(w + 1) })
}
