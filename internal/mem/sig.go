package mem

import "sync/atomic"

// This file adds compact write-footprint signatures to the striped
// substrate: every publish (plain mutation or commit write-back) can record
// a bloom signature of the cache lines it touched in a small per-stripe
// ring, tagged with the stripe-clock value the publish closed at. A
// validator that watched a stripe move from watermark `mark` to current
// clock `cur` can then intersect its own read signature against the
// signatures of exactly the publishes in (mark, cur] — a handful of word
// ANDs — and skip the per-entry value sweep when every one is disjoint.
//
// Safety does not rest on the filter: a signature "hit" (intersection) only
// sends the validator to the value check it would have run anyway, and a
// publish whose ring entry is missing — overwritten by ring wrap, or never
// written because signatures were disabled — fails the tag check and
// reports unknown, which also falls back to the value check. The only
// property the filter must guarantee is *no false negatives*: a publish
// that touched a line a validator read must intersect the validator's
// signature. That holds because both sides hash the same Line value with
// the same function into the same bit width (a per-Memory setting), so a
// shared line sets a shared bit.

// SigWords is the fixed word count of a Signature; the bloom width in bits
// is at most SigWords*64 and is configured per Memory (SetSignatureBits).
const SigWords = 4

// MaxSigBits is the largest supported bloom width.
const MaxSigBits = SigWords * 64

// MinSigBits is the smallest supported bloom width.
const MinSigBits = 64

// Signature is a bloom filter over cache lines: one bit per line, hashed by
// a fixed mixer into a power-of-two bit width. The zero value is empty.
type Signature [SigWords]uint64

// sigMix is a splitmix64 finalizer: full-avalanche mixing so consecutive
// line numbers (the common footprint shape) spread across the filter.
func sigMix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// AddLine sets l's bit under the given power-of-two bloom width in bits.
// Both the publisher and the validator of a Memory must use the same width
// (its SignatureBits) or intersection tests could miss shared lines.
func (g *Signature) AddLine(l Line, bits uint32) {
	h := sigMix(uint64(l)) & uint64(bits-1)
	g[h>>6] |= 1 << (h & 63)
}

// Union ors o into g.
func (g *Signature) Union(o *Signature) {
	for i := range g {
		g[i] |= o[i]
	}
}

// Intersects reports whether g and o share any bit.
func (g *Signature) Intersects(o *Signature) bool {
	return g[0]&o[0]|g[1]&o[1]|g[2]&o[2]|g[3]&o[3] != 0
}

// IsZero reports whether g is empty.
func (g *Signature) IsZero() bool {
	return g[0]|g[1]|g[2]|g[3] == 0
}

// Reset clears g.
func (g *Signature) Reset() { *g = Signature{} }

// sigRingSlots is the per-stripe ring depth: how many consecutive publishes
// of one stripe stay signature-covered. A validator whose watermark lags by
// more than this many publishes reports unknown and value-checks instead.
const sigRingSlots = 8

// sigSlot is one published signature, protected by its own tag seqlock: the
// writer (who holds the stripe's writeback lock, so writers never race each
// other) zeroes the tag, stores the signature words, then stores the final
// tag — the even stripe-clock value its publish closed at. A reader that
// loads the expected tag both before and after the signature words knows no
// overwrite overlapped its reads (0 is never a valid tag, and a wrapped
// slot carries a different clock value).
type sigSlot struct {
	tag atomic.Uint64
	sig [SigWords]atomic.Uint64
}

// sigRing is one stripe's publish-signature history, indexed by half the
// closing clock value so consecutive publishes use consecutive slots.
type sigRing struct {
	slots [sigRingSlots]sigSlot
}

// SetSignatureBits enables write-signature publication at the given bloom
// width in bits, rounded up to a power of two and clamped to
// [MinSigBits, MaxSigBits]; bits <= 0 disables publication (the default —
// the plain-mutation path then pays nothing). Like SetHook it must be
// called while no other goroutine is accessing the memory: enabling
// mid-history is safe for correctness (pre-enable publishes simply report
// unknown) but the rings themselves are swapped unsynchronized.
func (m *Memory) SetSignatureBits(bits int) {
	if bits <= 0 {
		m.sigs = nil
		m.sigBits = 0
		return
	}
	b := MinSigBits
	for b < bits && b < MaxSigBits {
		b <<= 1
	}
	m.sigBits = uint32(b)
	m.sigs = make([]sigRing, len(m.stripes))
}

// SignatureBits reports the configured bloom width in bits; 0 when
// signature publication is disabled.
func (m *Memory) SignatureBits() int { return int(m.sigBits) }

// publishSig records sig into stripe si's ring. The caller holds si's
// writeback lock with its seqlock window open (clock odd); the entry is
// tagged with the even value the window will close at, so it becomes
// readable exactly when the closed clock does.
func (m *Memory) publishSig(si int, sig *Signature) {
	t := m.stripes[si].clock.Load() + 1
	e := &m.sigs[si].slots[(t>>1)&(sigRingSlots-1)]
	e.tag.Store(0)
	for w := 0; w < SigWords; w++ {
		e.sig[w].Store(sig[w])
	}
	e.tag.Store(t)
}

// publishSig1 publishes a single-line signature for a plain mutation of a,
// under the same lock-held/window-open contract as publishSig.
func (m *Memory) publishSig1(si int, a Addr) {
	var g Signature
	g.AddLine(LineOf(a), m.sigBits)
	m.publishSig(si, &g)
}

// SigDisjointSince inspects the signatures of every publish that moved
// stripe s's clock from even value mark to even value cur. It returns
// (true, true) when all of them are disjoint from rsig — the caller's
// logged reads in s provably did not change, no value sweep needed —
// (false, true) when some publish's signature intersects rsig (a possible
// conflict: fall back to the value check), and (_, false) when any of the
// publishes is not signature-covered (ring wrapped, or publication was
// disabled when it ran): the verdict is unknowable and the caller must
// value-check.
//
// The caller must have observed both mark and cur as stable even clock
// values of s; publishes tagged beyond cur may exist concurrently and are
// ignored (the caller's own clock re-check catches them, exactly as it
// does for the value-check path).
func (m *Memory) SigDisjointSince(s int, mark, cur uint64, rsig *Signature) (disjoint, known bool) {
	if m.sigs == nil || cur < mark {
		return false, false
	}
	n := (cur - mark) >> 1
	if n == 0 {
		return true, true
	}
	if n > sigRingSlots {
		return false, false
	}
	r := &m.sigs[s]
	for t := mark + 2; t <= cur; t += 2 {
		e := &r.slots[(t>>1)&(sigRingSlots-1)]
		if e.tag.Load() != t {
			return false, false
		}
		var g Signature
		for w := range g {
			g[w] = e.sig[w].Load()
		}
		if e.tag.Load() != t {
			return false, false
		}
		if g.Intersects(rsig) {
			return false, true
		}
	}
	return true, true
}
