// Package mem provides the word-addressable shared memory on which every
// transactional-memory implementation in this repository operates.
//
// The memory plays the role of RAM in the reproduction: hardware
// transactions (package htm) speculate over it, software transactions read
// and write it directly, and non-transactional ("plain") code accesses it
// through the atomic helpers below. Real Haswell RTM detects conflicts per
// cache line, so the substrate mirrors that granularity: the word array is
// partitioned into S padded stripes (line-interleaved), each with its own
// seqlock version clock and writeback mutex. A mutation only perturbs the
// stripes it touches, so disjoint-line commits proceed in parallel and only
// transactions whose footprint intersects a mutated stripe revalidate.
//
// Three properties are load-bearing for the rest of the system:
//
//  1. Each stripe clock is a seqlock: every mutation of a word moves its
//     stripe's clock to an odd value before the store and back to an even
//     value afterwards, and a failed (nothing-published) commit that opened
//     a window restores the clock to its prior even value. A reader that
//     observes an even, unchanged stripe clock around a read therefore
//     observed stable words: an unchanged even clock proves no store
//     happened in that stripe in between.
//  2. HTM commits publish their entire write buffer while holding the
//     writeback locks of every touched stripe — the same locks plain
//     mutators take — with all touched windows open, so a commit is atomic
//     with respect to all other memory traffic (strong isolation).
//     Multi-stripe lock acquisition is in canonical ascending stripe order,
//     which makes it deadlock-free. Read-only commits publish nothing and
//     take no lock at all: they validate under the per-stripe seqlock read
//     protocol — see CommitWrites and ValidateLockFree.
//  3. A global commit ticket (an atomic counter, never a lock) counts
//     publishes for event stamping and linearization ordering. Clock()
//     derives from it for compatibility, but it is a monotonic mutation
//     counter only — NOT a seqlock; cross-stripe consistency always comes
//     from the per-stripe clocks.
package mem

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
)

// Addr is a word index into a Memory. Address 0 is reserved and is never
// returned by the allocator, so it can serve as a nil pointer when
// applications store addresses inside transactional memory.
type Addr uint64

// Nil is the reserved null address.
const Nil Addr = 0

// LineWords is the number of 8-byte words per simulated cache line (64-byte
// lines, matching the Haswell L1 the paper evaluates on). HTM capacity is
// accounted in distinct lines, as real transactional caches do.
const LineWords = 8

// lineShift is log2(LineWords).
const lineShift = 3

// Line identifies a cache line within a Memory.
type Line uint64

// LineOf returns the cache line containing addr.
func LineOf(a Addr) Line { return Line(a >> lineShift) }

// DefaultStripes is the stripe count New uses. 64 stripes keep the
// all-stripe sweep of ValidateLockFree cheap while making same-stripe
// collisions of disjoint-line commits rare at benchmark thread counts.
const DefaultStripes = 64

// MaxStripes bounds the stripe count so touched-stripe sets fit in a small
// fixed bitmap on the commit path.
const MaxStripes = 1024

// stripeWords is MaxStripes/64: the uint64 count of a full stripe bitmap.
const stripeWords = MaxStripes / 64

// stripe is one seqlock-protected partition of the word array. The padding
// gives every stripe its own cache line so clock traffic on one stripe does
// not false-share with its neighbours.
type stripe struct {
	clock atomic.Uint64
	wb    sync.Mutex
	_     [48]byte
}

// HookOp identifies which substrate boundary a Hook observes.
type HookOp uint8

const (
	// HookLoad fires before a plain atomic load.
	HookLoad HookOp = iota
	// HookStore fires before a plain atomic store takes its stripe lock.
	HookStore
	// HookCAS fires before a plain compare-and-swap takes its stripe lock.
	HookCAS
	// HookAdd fires before a plain fetch-and-add takes its stripe lock.
	HookAdd
	// HookCommit fires before CommitWrites locks the touched stripes of a
	// non-empty write buffer.
	HookCommit
)

// Hook receives control at substrate boundaries. The deterministic schedule
// explorer (internal/explore) installs one to serialize worker goroutines:
// Yield parks the calling goroutine until an external scheduler resumes it.
//
// AtomicBegin/AtomicEnd bracket regions where the caller holds stripe
// writeback locks with seqlock windows open (the locked span of
// CommitWrites). Yield must not park inside such a region — a parked holder
// would hang every seqlock reader — so hooks suppress yields between the
// two calls. The bracket is maintained by this package; hook implementations
// only need to honor it.
type Hook interface {
	Yield(op HookOp, a Addr)
	AtomicBegin()
	AtomicEnd()
}

// Memory is a flat array of 64-bit words striped over per-line seqlocks.
// All fields are private; access goes through the methods below so that the
// clock discipline can never be bypassed by accident.
type Memory struct {
	words   []uint64
	stripes []stripe
	mask    uint64 // len(stripes)-1; stripe of a = (a>>lineShift)&mask

	// ticket counts publishes (plain mutations and commit write-backs).
	// It orders events for observability but carries no seqlock meaning.
	ticket atomic.Uint64

	// hook, when non-nil, observes every plain access and commit (see Hook).
	// Costs one nil check per operation when unset.
	hook Hook

	// sigs, when non-nil, holds one publish-signature ring per stripe and
	// every mutation publishes its write signature into it (see sig.go).
	// sigBits is the bloom width; both are set by SetSignatureBits and are
	// nil/0 by default, so the plain paths pay one nil check when disabled.
	sigs    []sigRing
	sigBits uint32

	// persister, when non-nil, receives every committed write set before its
	// windows close (see Persister). Costs one nil check per commit when
	// unset, which keeps the persistence-off hot path allocation- and
	// branch-identical to before.
	persister Persister

	alloc allocState
}

// Persister consumes committed write sets for the durability plane
// (internal/persist implements it with a per-stripe redo log). Append is
// called inside CommitWrites' locked span — after the stores, before the
// seqlock windows close — so no reader can certify a read of the commit's
// values before the commit is in the log; eager software paths call it via
// AppendRedo under the same ordering obligation. Append must not block on
// I/O and must not touch the memory it persists.
type Persister interface {
	Append(ticket uint64, writes []WriteEntry)
}

// New creates a memory of the given size in words with DefaultStripes
// stripes. The first line is reserved (address 0 is nil), so the usable
// arena starts at LineWords.
func New(sizeWords int) *Memory { return NewStriped(sizeWords, DefaultStripes) }

// NewStriped creates a memory with an explicit stripe count, rounded up to
// a power of two and clamped to [1, MaxStripes]. A single stripe reproduces
// the original global-seqlock substrate exactly: one clock, one writeback
// lock, every mutation serialized.
func NewStriped(sizeWords, stripes int) *Memory {
	if sizeWords < 2*LineWords {
		sizeWords = 2 * LineWords
	}
	if stripes < 1 {
		stripes = 1
	}
	if stripes > MaxStripes {
		stripes = MaxStripes
	}
	n := 1
	for n < stripes {
		n <<= 1
	}
	m := &Memory{
		words:   make([]uint64, sizeWords),
		stripes: make([]stripe, n),
		mask:    uint64(n - 1),
	}
	m.alloc.init(Addr(LineWords), Addr(sizeWords))
	return m
}

// SetHook installs (or, with nil, removes) the substrate hook. It must be
// called while no other goroutine is accessing the memory; the explorer
// installs it before starting its workers.
func (m *Memory) SetHook(h Hook) { m.hook = h }

// SetPersister attaches (or, with nil, detaches) the durability plane. Like
// SetHook it must be called while no other goroutine is accessing the
// memory: servers attach after boot-time recovery and detach only after
// draining every committer.
func (m *Memory) SetPersister(p Persister) { m.persister = p }

// Persisting reports whether a persister is attached; eager software commit
// paths consult it before assembling a redo entry.
func (m *Memory) Persisting() bool { return m.persister != nil }

// AppendRedo hands an eagerly-published write set to the attached persister
// (no-op when none is attached). Callers that publish via StorePlain during
// execution — the full-software fallback writing under the clock lock —
// must call it with the final values of every written word *before*
// releasing the lock that hides those values from committing readers.
func (m *Memory) AppendRedo(writes []WriteEntry) {
	if m.persister != nil {
		m.persister.Append(m.ticket.Load()+1, writes)
	}
}

// AllocMark returns the bump-arena watermark: every address below it was
// handed out (or reserved) already, every address at or above it is still
// virgin arena. The persistence plane uses it to bound the data range to
// persist, excluding the TM metadata words allocated before it.
func (m *Memory) AllocMark() Addr {
	m.alloc.mu.Lock()
	defer m.alloc.mu.Unlock()
	return m.alloc.next
}

// Size returns the memory size in words.
func (m *Memory) Size() int { return len(m.words) }

// StripeCount returns the number of stripes (a power of two).
func (m *Memory) StripeCount() int { return len(m.stripes) }

// StripeOf returns the stripe index of addr. Stripes interleave by cache
// line: consecutive lines land on consecutive stripes, so a contiguous
// multi-line footprint spreads across stripes the way it spreads across
// cache sets in hardware.
func (m *Memory) StripeOf(a Addr) int { return int((uint64(a) >> lineShift) & m.mask) }

// StripeClock returns the current seqlock clock of stripe s. Odd means a
// mutation window is open. Readers needing a consistent view of words in s
// use the seqlock read protocol: observe an even value, read, observe the
// same value.
func (m *Memory) StripeClock(s int) uint64 { return m.stripes[s].clock.Load() }

// Ticket returns the global commit ticket: the number of publishes (plain
// mutations and commit write-backs) completed so far. It is monotonic and
// lock-free, suitable for stamping events into a global order, but it is
// not a seqlock — use the per-stripe clocks for consistency.
func (m *Memory) Ticket() uint64 { return m.ticket.Load() }

// Clock returns a compatibility view of the retired global memory clock:
// twice the commit ticket, so it still advances by exactly 2 per mutation
// and never decreases. Unlike the per-stripe clocks it is never odd and
// carries no seqlock meaning; it exists for event stamping and for tests
// that count mutations.
func (m *Memory) Clock() uint64 { return 2 * m.ticket.Load() }

// ClockStable is retained for compatibility; Clock is always even (stable)
// under striping, so it returns it directly.
func (m *Memory) ClockStable() uint64 { return m.Clock() }

// beginMutate takes addr's stripe writeback lock and opens its seqlock
// write window; endMutate closes the window, retires a ticket, and releases
// the lock. Every unconditional single-word mutation is bracketed by this
// pair; conditional mutators (CASPlain) take the lock first and open the
// window only once they know they will mutate.
func (m *Memory) beginMutate(s *stripe) {
	s.wb.Lock()
	s.clock.Add(1)
}

func (m *Memory) endMutate(s *stripe) {
	s.clock.Add(1)
	m.ticket.Add(1)
	s.wb.Unlock()
}

func (m *Memory) check(a Addr) {
	if a == Nil || int(a) >= len(m.words) {
		panic(fmt.Sprintf("mem: address %d out of range [%d, %d)", a, LineWords, len(m.words)))
	}
}

// LoadPlain performs a non-transactional atomic read of a word.
func (m *Memory) LoadPlain(a Addr) uint64 {
	m.check(a)
	if h := m.hook; h != nil {
		h.Yield(HookLoad, a)
	}
	return atomic.LoadUint64(&m.words[a])
}

// StorePlain performs a non-transactional atomic write of a word under the
// seqlock discipline of its stripe — only that stripe's clock moves, so
// stores to distinct stripes neither contend nor invalidate each other's
// readers.
func (m *Memory) StorePlain(a Addr, v uint64) {
	m.check(a)
	if h := m.hook; h != nil {
		h.Yield(HookStore, a)
	}
	si := m.StripeOf(a)
	s := &m.stripes[si]
	m.beginMutate(s)
	atomic.StoreUint64(&m.words[a], v)
	if m.sigs != nil {
		m.publishSig1(si, a)
	}
	m.endMutate(s)
}

// CASPlain performs a non-transactional compare-and-swap. The stripe clock
// advances only when the swap succeeds: the comparison runs under the
// stripe's writeback lock, and the seqlock window opens only for the actual
// store.
func (m *Memory) CASPlain(a Addr, old, new uint64) bool {
	m.check(a)
	if h := m.hook; h != nil {
		h.Yield(HookCAS, a)
	}
	si := m.StripeOf(a)
	s := &m.stripes[si]
	s.wb.Lock()
	if atomic.LoadUint64(&m.words[a]) != old {
		s.wb.Unlock()
		return false
	}
	s.clock.Add(1)
	atomic.StoreUint64(&m.words[a], new)
	if m.sigs != nil {
		m.publishSig1(si, a)
	}
	m.endMutate(s)
	return true
}

// AddPlain performs a non-transactional atomic fetch-and-add and returns the
// new value.
func (m *Memory) AddPlain(a Addr, delta uint64) uint64 {
	m.check(a)
	if h := m.hook; h != nil {
		h.Yield(HookAdd, a)
	}
	si := m.StripeOf(a)
	s := &m.stripes[si]
	m.beginMutate(s)
	v := atomic.LoadUint64(&m.words[a]) + delta
	atomic.StoreUint64(&m.words[a], v)
	if m.sigs != nil {
		m.publishSig1(si, a)
	}
	m.endMutate(s)
	return v
}

// SubPlain performs a non-transactional atomic fetch-and-subtract and
// returns the new value.
func (m *Memory) SubPlain(a Addr, delta uint64) uint64 {
	return m.AddPlain(a, ^(delta - 1)) // two's-complement subtraction
}

// loadRaw reads a word without bounds checking; used on the commit path
// where addresses were validated at log time.
func (m *Memory) loadRaw(a Addr) uint64 { return atomic.LoadUint64(&m.words[a]) }

// WriteEntry is one buffered speculative write, as published by CommitWrites.
type WriteEntry struct {
	Addr  Addr
	Value uint64
}

// stripeBits is a fixed bitmap over stripe indices; forEach visits set
// stripes in canonical ascending order.
type stripeBits [stripeWords]uint64

func (b *stripeBits) set(s int)      { b[s>>6] |= 1 << (uint(s) & 63) }
func (b *stripeBits) has(s int) bool { return b[s>>6]&(1<<(uint(s)&63)) != 0 }

func (b *stripeBits) forEach(fn func(s int)) {
	for w, word := range b {
		for word != 0 {
			fn(w<<6 + bits.TrailingZeros64(word))
			word &= word - 1
		}
	}
}

// CommitWrites atomically publishes a speculative write buffer. For a
// non-empty buffer it takes the writeback locks of every touched stripe in
// canonical ascending index order (so concurrent multi-stripe commits
// cannot deadlock), opens all their seqlock windows, calls validate, and on
// success stores every entry, closes the windows, and retires one ticket.
// It reports whether the commit succeeded.
//
// The windows are open *during* validation so that a validating reader in
// another thread cannot certify its read set between this commit's
// validation and its publish: any stripe this commit will mutate already
// reads odd. validate therefore must not use the seqlock read protocol on
// the touched stripes (it would spin forever); the htm commit path checks
// reads in its own write stripes by value directly, which is stable because
// this thread holds their locks and has published nothing yet.
//
// On validation failure nothing has been stored, so each opened window is
// restored by moving the clock back to its prior even value. A clock that
// returns to the same even value therefore still certifies "no store
// happened" to seqlock readers — restores only occur on publish-free paths.
//
// A read-only caller passes an empty writes slice; since nothing is
// published, the commit takes no lock, moves no clock and retires no
// ticket. Instead validate runs under the per-stripe seqlock read protocol
// (ValidateLockFree), which yields the same verdict an under-the-locks
// validation would have produced.
func (m *Memory) CommitWrites(writes []WriteEntry, validate func() bool) bool {
	if len(writes) == 0 {
		return m.ValidateLockFree(validate)
	}
	var touched stripeBits
	for i := range writes {
		touched.set(m.StripeOf(writes[i].Addr))
	}
	h := m.hook
	if h != nil {
		h.Yield(HookCommit, writes[0].Addr)
		// The locked span below runs validate with windows open; a parked
		// holder would hang every seqlock reader, so nested yields (the
		// LoadPlains of the commit validation) are suppressed until the
		// locks drop.
		h.AtomicBegin()
	}
	touched.forEach(func(s int) { m.stripes[s].wb.Lock() })
	touched.forEach(func(s int) { m.stripes[s].clock.Add(1) })
	ok := validate == nil || validate()
	if ok {
		for _, w := range writes {
			atomic.StoreUint64(&m.words[w.Addr], w.Value)
		}
		if m.sigs != nil {
			// Publish the commit's whole write signature into every touched
			// stripe's ring (a per-stripe split would buy little: a validator
			// only consults stripes in its own footprint anyway).
			var g Signature
			for i := range writes {
				g.AddLine(LineOf(writes[i].Addr), m.sigBits)
			}
			touched.forEach(func(s int) { m.publishSig(s, &g) })
		}
		if m.persister != nil {
			// Log before the windows close: a reader can only certify a read
			// of these values after the clocks return even, which is after the
			// record exists — so the log's sequence order extends every
			// reads-from edge and replaying a sequence prefix is consistent.
			m.persister.Append(m.ticket.Load()+1, writes)
		}
		touched.forEach(func(s int) { m.stripes[s].clock.Add(1) })
		m.ticket.Add(1)
	} else {
		// Nothing was published: restore every window to its prior even
		// value instead of closing it forward, so readers watermarked at
		// that value are not forced into a spurious revalidation.
		touched.forEach(func(s int) { m.stripes[s].clock.Add(^uint64(0)) })
	}
	touched.forEach(func(s int) { m.stripes[s].wb.Unlock() })
	if h != nil {
		h.AtomicEnd()
	}
	return ok
}

// ValidateLockFree runs validate under the all-stripe seqlock read
// protocol: record a stable (all-even) vector of stripe clocks, run
// validate, and accept its verdict only if every stripe clock is unchanged
// afterwards. Each stripe's unchanged even clock proves no store touched it
// between its two samples — an interval that covers the whole validate call
// — so validate saw frozen memory and its verdict is exactly what it would
// have returned while holding every writeback lock. If any clock moved, the
// verdict may be torn and the validation retries over a new stable vector.
// A nil validate trivially succeeds.
//
// This is the generic whole-memory form; callers that know their read
// footprint (htm transactions) sweep only the stripes they touched.
func (m *Memory) ValidateLockFree(validate func() bool) bool {
	if validate == nil {
		return true
	}
	marks := make([]uint64, len(m.stripes))
	for {
		for s := range m.stripes {
			marks[s] = m.stripeClockStable(s)
		}
		ok := validate()
		clean := true
		for s := range m.stripes {
			if m.stripes[s].clock.Load() != marks[s] {
				clean = false
				break
			}
		}
		if clean {
			return ok
		}
	}
}

// stripeClockStable spins until stripe s's clock is even (no mutation in
// flight) and returns that stable value.
func (m *Memory) stripeClockStable(s int) uint64 {
	for {
		c := m.stripes[s].clock.Load()
		if c&1 == 0 {
			return c
		}
		runtime.Gosched()
	}
}

// Snapshot copies len(dst) words starting at a into dst as one consistent
// snapshot: it records a stable clock vector for every stripe the range
// touches, copies, and retries until no touched stripe's clock moved across
// the copy. Each unchanged even stripe clock proves no store landed in that
// stripe during the copy, so the words in dst coexisted in memory at every
// instant of the copy interval. Multi-word test assertions use this instead
// of per-word plain loads, which can tear against concurrent commits.
func (m *Memory) Snapshot(a Addr, dst []uint64) {
	m.snapshot(a, 1, dst, 0)
}

// SnapshotTry is Snapshot with a bounded retry budget: it attempts at most
// attempts seqlock-validated copy passes and reports whether one of them was
// clean (every touched stripe clock unchanged across the copy — the same
// per-stripe read protocol ValidateLockFree uses, so a true return certifies
// dst is a consistent cut of memory). A false return means a concurrent
// writer dirtied every pass and dst must be discarded; callers with
// progress obligations (the service snapshot-scan fast path) fall back to an
// instrumented transactional read instead of spinning. Validation is
// O(touched stripes) per pass, not O(words). attempts < 1 is treated as 1.
func (m *Memory) SnapshotTry(a Addr, dst []uint64, attempts int) bool {
	if attempts < 1 {
		attempts = 1
	}
	return m.snapshot(a, 1, dst, attempts)
}

// SnapshotStrideTry is SnapshotTry over a strided footprint: dst[i] is
// filled from address a + i*stride under the same per-stripe seqlock
// validation. Callers that map records onto cache lines (the service layer
// puts key k's word at line k, so a key-range scan reads one word every
// LineWords) snapshot exactly the words they need instead of copying the
// whole line range. stride < 1 is treated as 1.
func (m *Memory) SnapshotStrideTry(a Addr, stride int, dst []uint64, attempts int) bool {
	if attempts < 1 {
		attempts = 1
	}
	if stride < 1 {
		stride = 1
	}
	return m.snapshot(a, stride, dst, attempts)
}

// snapshotTestHook, when non-nil, runs once per snapshot pass between the
// copy and the clock recheck. It exists so tests can dirty a touched stripe
// at the exact point a concurrent commit would, deterministically even on
// GOMAXPROCS=1 (one nil check per pass; always nil outside tests).
var snapshotTestHook func()

// snapshot is the shared bounded/unbounded copy loop; attempts == 0 retries
// forever (the Snapshot contract) and always returns true. The loop is
// deliberately closure-free: the service snapshot-scan fast path runs it on
// every eligible request and must not heap-allocate (marks escaping into a
// forEach closure would drag an 8KiB array onto the heap per call).
func (m *Memory) snapshot(a Addr, stride int, dst []uint64, attempts int) bool {
	if len(dst) == 0 {
		return true
	}
	last := a + Addr((len(dst)-1)*stride)
	m.check(a)
	m.check(last)
	var touched stripeBits
	if stride == 1 {
		for l := uint64(a) >> lineShift; l <= uint64(last)>>lineShift; l++ {
			touched.set(int(l & m.mask))
		}
	} else {
		for i := range dst {
			l := uint64(a+Addr(i*stride)) >> lineShift
			touched.set(int(l & m.mask))
		}
	}
	var marks [MaxStripes]uint64
	for try := 0; attempts == 0 || try < attempts; try++ {
		for w, word := range touched {
			for word != 0 {
				s := w<<6 + bits.TrailingZeros64(word)
				word &= word - 1
				marks[s] = m.stripeClockStable(s)
			}
		}
		for i := range dst {
			dst[i] = m.loadRaw(a + Addr(i*stride))
		}
		if snapshotTestHook != nil {
			snapshotTestHook()
		}
		clean := true
		for w, word := range touched {
			for word != 0 {
				s := w<<6 + bits.TrailingZeros64(word)
				word &= word - 1
				if m.stripes[s].clock.Load() != marks[s] {
					clean = false
				}
			}
		}
		if clean {
			return true
		}
		runtime.Gosched()
	}
	return false
}
