// Package mem provides the word-addressable shared memory on which every
// transactional-memory implementation in this repository operates.
//
// The memory plays the role of RAM in the reproduction: hardware
// transactions (package htm) speculate over it, software transactions read
// and write it directly, and non-transactional ("plain") code accesses it
// through the atomic helpers below. A single global modification counter,
// the memory clock, orders all mutations; the simulated HTM uses it to
// detect that memory moved underneath a speculative read set.
//
// Two properties are load-bearing for the rest of the system:
//
//  1. The memory clock is a seqlock: every mutation — a plain store, a plain
//     read-modify-write, or an HTM commit write-back — moves the clock to an
//     odd value before touching memory and back to an even value afterwards.
//     A speculative reader that observes an even, unchanged clock around a
//     read therefore observed a stable snapshot; any reader that can see a
//     new value is guaranteed to also see the clock move, and revalidates.
//  2. HTM commits publish their entire write buffer while holding the
//     writeback lock that plain mutators also take, so a commit is atomic
//     with respect to all other memory traffic (strong isolation).
//     Read-only commits publish nothing and therefore take no lock at all:
//     they validate under the seqlock read protocol (observe an even clock,
//     validate, observe the same clock), which is equivalent to validating
//     while holding the lock — see CommitWrites.
package mem

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Addr is a word index into a Memory. Address 0 is reserved and is never
// returned by the allocator, so it can serve as a nil pointer when
// applications store addresses inside transactional memory.
type Addr uint64

// Nil is the reserved null address.
const Nil Addr = 0

// LineWords is the number of 8-byte words per simulated cache line (64-byte
// lines, matching the Haswell L1 the paper evaluates on). HTM capacity is
// accounted in distinct lines, as real transactional caches do.
const LineWords = 8

// lineShift is log2(LineWords).
const lineShift = 3

// Line identifies a cache line within a Memory.
type Line uint64

// LineOf returns the cache line containing addr.
func LineOf(a Addr) Line { return Line(a >> lineShift) }

// Memory is a flat array of 64-bit words with a global modification clock.
// All fields are private; access goes through the methods below so that the
// clock discipline can never be bypassed by accident.
type Memory struct {
	words []uint64
	clock atomic.Uint64

	// wb serializes HTM commit write-backs and plain mutations so that a
	// commit's whole write set becomes visible atomically.
	wb sync.Mutex

	alloc allocState
}

// New creates a memory of the given size in words. The first line is
// reserved (address 0 is nil), so the usable arena starts at LineWords.
func New(sizeWords int) *Memory {
	if sizeWords < 2*LineWords {
		sizeWords = 2 * LineWords
	}
	m := &Memory{words: make([]uint64, sizeWords)}
	m.alloc.init(Addr(LineWords), Addr(sizeWords))
	return m
}

// Size returns the memory size in words.
func (m *Memory) Size() int { return len(m.words) }

// Clock returns the current value of the global memory clock. The clock
// advances on every mutation and never decreases; an odd value means a
// mutation is in flight (seqlock discipline).
func (m *Memory) Clock() uint64 { return m.clock.Load() }

// ClockStable spins until the clock is even (no mutation in flight) and
// returns that stable value.
func (m *Memory) ClockStable() uint64 {
	for {
		c := m.clock.Load()
		if c&1 == 0 {
			return c
		}
		runtime.Gosched()
	}
}

// seqOpen moves the clock to an odd value, opening a seqlock write window;
// seqClose returns it to even. These two functions are the only place the
// odd/even protocol lives: every word mutation is bracketed by them, with
// the writeback lock held (conditional mutators like CASPlain take the lock
// first and open the window only once they know they will mutate).
func (m *Memory) seqOpen()  { m.clock.Add(1) }
func (m *Memory) seqClose() { m.clock.Add(1) }

// beginMutate takes the writeback lock and opens the seqlock write window;
// endMutate closes the window and releases the lock. Every unconditional
// mutation of word contents is bracketed by this pair.
func (m *Memory) beginMutate() {
	m.wb.Lock()
	m.seqOpen()
}

func (m *Memory) endMutate() {
	m.seqClose()
	m.wb.Unlock()
}

func (m *Memory) check(a Addr) {
	if a == Nil || int(a) >= len(m.words) {
		panic(fmt.Sprintf("mem: address %d out of range [%d, %d)", a, LineWords, len(m.words)))
	}
}

// LoadPlain performs a non-transactional atomic read of a word.
func (m *Memory) LoadPlain(a Addr) uint64 {
	m.check(a)
	return atomic.LoadUint64(&m.words[a])
}

// StorePlain performs a non-transactional atomic write of a word under the
// seqlock discipline described in the package comment.
func (m *Memory) StorePlain(a Addr, v uint64) {
	m.check(a)
	m.beginMutate()
	atomic.StoreUint64(&m.words[a], v)
	m.endMutate()
}

// CASPlain performs a non-transactional compare-and-swap. The clock advances
// only when the swap succeeds: the comparison runs under the writeback lock,
// and the seqlock window opens only for the actual store.
func (m *Memory) CASPlain(a Addr, old, new uint64) bool {
	m.check(a)
	m.wb.Lock()
	if atomic.LoadUint64(&m.words[a]) != old {
		m.wb.Unlock()
		return false
	}
	m.seqOpen()
	atomic.StoreUint64(&m.words[a], new)
	m.seqClose()
	m.wb.Unlock()
	return true
}

// AddPlain performs a non-transactional atomic fetch-and-add and returns the
// new value.
func (m *Memory) AddPlain(a Addr, delta uint64) uint64 {
	m.check(a)
	m.beginMutate()
	v := atomic.LoadUint64(&m.words[a]) + delta
	atomic.StoreUint64(&m.words[a], v)
	m.endMutate()
	return v
}

// SubPlain performs a non-transactional atomic fetch-and-subtract and
// returns the new value.
func (m *Memory) SubPlain(a Addr, delta uint64) uint64 {
	return m.AddPlain(a, ^(delta - 1)) // two's-complement subtraction
}

// loadRaw reads a word without bounds checking; used on the commit path
// where addresses were validated at log time.
func (m *Memory) loadRaw(a Addr) uint64 { return atomic.LoadUint64(&m.words[a]) }

// WriteEntry is one buffered speculative write, as published by CommitWrites.
type WriteEntry struct {
	Addr  Addr
	Value uint64
}

// CommitWrites atomically publishes a speculative write buffer. For a
// non-empty buffer it takes the writeback lock, calls validate (which must
// re-check the caller's read set by value while no other mutation can
// interleave), and on success advances the clock once and stores every
// entry. It reports whether the commit succeeded.
//
// A read-only caller passes an empty writes slice; since nothing is
// published, the commit takes no lock and does not move the clock. Instead
// validate runs under the seqlock read protocol (ValidateLockFree), which
// yields the same verdict an under-the-lock validation would have produced
// at the observed clock value.
func (m *Memory) CommitWrites(writes []WriteEntry, validate func() bool) bool {
	if len(writes) == 0 {
		return m.ValidateLockFree(validate)
	}
	m.wb.Lock()
	defer m.wb.Unlock()
	if validate != nil && !validate() {
		return false
	}
	m.seqOpen()
	for _, w := range writes {
		atomic.StoreUint64(&m.words[w.Addr], w.Value)
	}
	m.seqClose()
	return true
}

// ValidateLockFree runs validate under the seqlock read protocol: spin to an
// even clock c0, run validate, and accept its verdict only if the clock
// still reads c0 afterwards. The clock is monotonic and every mutation
// passes through an odd value, so an unchanged even clock proves no
// mutation overlapped the validation — the verdict is exactly what validate
// would have returned while holding the writeback lock at clock c0. If the
// clock moved, the verdict may be torn (validate may have seen a
// half-published write set) and the validation is retried at a new stable
// clock. A nil validate trivially succeeds.
func (m *Memory) ValidateLockFree(validate func() bool) bool {
	if validate == nil {
		return true
	}
	for {
		c0 := m.clock.Load()
		if c0&1 != 0 {
			runtime.Gosched() // a write-back is in flight
			continue
		}
		ok := validate()
		if m.clock.Load() == c0 {
			return ok
		}
	}
}

// Snapshot copies n words starting at a into dst for debugging and test
// assertions. It is not atomic across words.
func (m *Memory) Snapshot(a Addr, dst []uint64) {
	for i := range dst {
		dst[i] = m.LoadPlain(a + Addr(i))
	}
}
