package mem

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// The allocator hands out blocks of transactional memory. It follows the
// tcmalloc design the paper adopts in §3.2 after finding the system malloc
// "does not scale and imposes high overheads and many false aborts":
// allocations are served from per-thread caches grouped into size classes,
// which refill from (and overflow to) central free lists in batches, and the
// central lists carve fresh runs from a bump arena.
//
// Blocks handed out by Alloc are zeroed. Zeroing happens without advancing
// the memory clock, which is safe because a block is only recycled after the
// TM layer's epoch-based reclamation (package tm) has established that no
// transaction — not even a doomed one still running on a stale snapshot —
// can hold a reference to it.

// classSizes lists the allocation size classes in words, tcmalloc-style
// (powers of two with midpoints). Requests above the largest class are
// served exactly from the arena and recycled on an exact-size central list.
var classSizes = []int{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024, 1536, 2048, 3072, 4096}

const numClasses = 24

// refillBatch is how many blocks a thread cache pulls from the central list
// at a time; smaller for large classes to bound cached memory.
func refillBatch(class int) int {
	b := 64 >> (classSizes[class] / 64)
	if b < 2 {
		b = 2
	}
	return b
}

// classFor maps a word count to the smallest size class that fits, or -1 for
// oversized requests.
func classFor(n int) int {
	for i, s := range classSizes {
		if n <= s {
			return i
		}
	}
	return -1
}

type allocState struct {
	mu      sync.Mutex
	next    Addr
	end     Addr
	central [numClasses][]Addr
	huge    map[int][]Addr

	liveBlocks atomic.Int64
	liveWords  atomic.Int64
}

func (s *allocState) init(start, end Addr) {
	s.next = start
	s.end = end
	s.huge = make(map[int][]Addr)
}

// carve takes n words from the bump arena. Callers hold s.mu.
func (s *allocState) carve(n int) (Addr, bool) {
	if s.next+Addr(n) > s.end {
		return Nil, false
	}
	a := s.next
	s.next += Addr(n)
	return a, true
}

// ThreadCache is a per-thread allocation cache. Each worker thread (each
// ThreadCtx in package tm) owns exactly one; its methods must not be called
// concurrently. Blocks freed on one thread may be reused by another, but
// only via the central lists.
type ThreadCache struct {
	mem  *Memory
	bins [numClasses][]Addr
}

// NewThreadCache creates a thread-local allocation cache over m.
func (m *Memory) NewThreadCache() *ThreadCache {
	return &ThreadCache{mem: m}
}

// Alloc returns a zeroed block of at least nWords words. It panics if the
// arena is exhausted, which in this simulator indicates an undersized
// Memory rather than a recoverable condition.
func (c *ThreadCache) Alloc(nWords int) Addr {
	if nWords <= 0 {
		panic("mem: Alloc of non-positive size")
	}
	s := &c.mem.alloc
	cl := classFor(nWords)
	if cl < 0 {
		s.mu.Lock()
		var a Addr
		if lst := s.huge[nWords]; len(lst) > 0 {
			a = lst[len(lst)-1]
			s.huge[nWords] = lst[:len(lst)-1]
		} else {
			var ok bool
			a, ok = s.carve(nWords)
			if !ok {
				s.mu.Unlock()
				panic(fmt.Sprintf("mem: arena exhausted allocating %d words", nWords))
			}
		}
		s.mu.Unlock()
		c.finish(a, nWords)
		return a
	}
	sz := classSizes[cl]
	if len(c.bins[cl]) == 0 {
		c.refill(cl)
	}
	bin := c.bins[cl]
	a := bin[len(bin)-1]
	c.bins[cl] = bin[:len(bin)-1]
	c.finish(a, sz)
	return a
}

func (c *ThreadCache) finish(a Addr, sz int) {
	c.mem.zeroRange(a, sz)
	c.mem.alloc.liveBlocks.Add(1)
	c.mem.alloc.liveWords.Add(int64(sz))
}

// refill pulls a batch of blocks of the given class from the central list,
// carving fresh ones from the arena as needed.
func (c *ThreadCache) refill(cl int) {
	s := &c.mem.alloc
	sz := classSizes[cl]
	want := refillBatch(cl)
	s.mu.Lock()
	central := s.central[cl]
	take := want
	if take > len(central) {
		take = len(central)
	}
	c.bins[cl] = append(c.bins[cl], central[len(central)-take:]...)
	s.central[cl] = central[:len(central)-take]
	for got := take; got < want; got++ {
		a, ok := s.carve(sz)
		if !ok {
			if got == 0 {
				s.mu.Unlock()
				panic(fmt.Sprintf("mem: arena exhausted allocating %d words", sz))
			}
			break
		}
		c.bins[cl] = append(c.bins[cl], a)
	}
	s.mu.Unlock()
}

// Free returns a block obtained from Alloc with the same size. The block's
// contents are left intact (see the package comment for why); it is zeroed
// again when recycled. Callers are responsible for ensuring no transaction
// can still reference the block — in this repository that guarantee comes
// from tm's epoch-based reclamation, so application code should free through
// tm.Tx.Free rather than calling this directly.
func (c *ThreadCache) Free(a Addr, nWords int) {
	if a == Nil {
		return
	}
	s := &c.mem.alloc
	cl := classFor(nWords)
	if cl < 0 {
		s.mu.Lock()
		s.huge[nWords] = append(s.huge[nWords], a)
		s.mu.Unlock()
	} else {
		sz := classSizes[cl]
		c.bins[cl] = append(c.bins[cl], a)
		if limit := 2 * refillBatch(cl); len(c.bins[cl]) > limit {
			c.flush(cl, limit/2)
		}
		nWords = sz
	}
	s.liveBlocks.Add(-1)
	s.liveWords.Add(-int64(nWords))
}

// flush returns keep..len blocks of class cl to the central list.
func (c *ThreadCache) flush(cl, keep int) {
	s := &c.mem.alloc
	bin := c.bins[cl]
	s.mu.Lock()
	s.central[cl] = append(s.central[cl], bin[keep:]...)
	s.mu.Unlock()
	c.bins[cl] = bin[:keep]
}

// Drain returns every cached block to the central lists. Tests use it to
// verify that live-block accounting balances.
func (c *ThreadCache) Drain() {
	for cl := range c.bins {
		if len(c.bins[cl]) > 0 {
			c.flush(cl, 0)
		}
	}
}

// LiveBlocks reports the number of blocks currently allocated and not freed.
func (m *Memory) LiveBlocks() int64 { return m.alloc.liveBlocks.Load() }

// LiveWords reports the number of words currently allocated and not freed.
func (m *Memory) LiveWords() int64 { return m.alloc.liveWords.Load() }

// ArenaUsed reports how many words have ever been carved from the arena.
func (m *Memory) ArenaUsed() int64 {
	m.alloc.mu.Lock()
	defer m.alloc.mu.Unlock()
	return int64(m.alloc.next) - LineWords
}

// zeroRange clears n words starting at a without advancing the memory clock.
// Only the allocator may call it, and only on quiescent blocks.
func (m *Memory) zeroRange(a Addr, n int) {
	for i := 0; i < n; i++ {
		atomic.StoreUint64(&m.words[a+Addr(i)], 0)
	}
}
